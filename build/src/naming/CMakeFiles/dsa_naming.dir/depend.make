# Empty dependencies file for dsa_naming.
# This may be replaced when dependencies are built.
