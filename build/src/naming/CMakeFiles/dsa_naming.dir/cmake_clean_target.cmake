file(REMOVE_RECURSE
  "libdsa_naming.a"
)
