file(REMOVE_RECURSE
  "CMakeFiles/dsa_naming.dir/linearly_segmented.cc.o"
  "CMakeFiles/dsa_naming.dir/linearly_segmented.cc.o.d"
  "CMakeFiles/dsa_naming.dir/symbolic.cc.o"
  "CMakeFiles/dsa_naming.dir/symbolic.cc.o.d"
  "libdsa_naming.a"
  "libdsa_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
