file(REMOVE_RECURSE
  "libdsa_stats.a"
)
