# Empty compiler generated dependencies file for dsa_stats.
# This may be replaced when dependencies are built.
