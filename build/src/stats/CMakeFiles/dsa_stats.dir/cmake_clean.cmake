file(REMOVE_RECURSE
  "CMakeFiles/dsa_stats.dir/fragmentation.cc.o"
  "CMakeFiles/dsa_stats.dir/fragmentation.cc.o.d"
  "CMakeFiles/dsa_stats.dir/histogram.cc.o"
  "CMakeFiles/dsa_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dsa_stats.dir/summary.cc.o"
  "CMakeFiles/dsa_stats.dir/summary.cc.o.d"
  "CMakeFiles/dsa_stats.dir/table.cc.o"
  "CMakeFiles/dsa_stats.dir/table.cc.o.d"
  "libdsa_stats.a"
  "libdsa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
