# Empty dependencies file for dsa_machines.
# This may be replaced when dependencies are built.
