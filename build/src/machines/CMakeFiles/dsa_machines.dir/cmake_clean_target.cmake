file(REMOVE_RECURSE
  "libdsa_machines.a"
)
