file(REMOVE_RECURSE
  "CMakeFiles/dsa_machines.dir/machine.cc.o"
  "CMakeFiles/dsa_machines.dir/machine.cc.o.d"
  "CMakeFiles/dsa_machines.dir/survey.cc.o"
  "CMakeFiles/dsa_machines.dir/survey.cc.o.d"
  "libdsa_machines.a"
  "libdsa_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
