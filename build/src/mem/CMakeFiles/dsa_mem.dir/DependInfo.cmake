
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/dsa_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/dsa_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/core_store.cc" "src/mem/CMakeFiles/dsa_mem.dir/core_store.cc.o" "gcc" "src/mem/CMakeFiles/dsa_mem.dir/core_store.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/dsa_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/dsa_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/storage_level.cc" "src/mem/CMakeFiles/dsa_mem.dir/storage_level.cc.o" "gcc" "src/mem/CMakeFiles/dsa_mem.dir/storage_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
