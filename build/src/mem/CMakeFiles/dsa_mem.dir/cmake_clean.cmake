file(REMOVE_RECURSE
  "CMakeFiles/dsa_mem.dir/backing_store.cc.o"
  "CMakeFiles/dsa_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/dsa_mem.dir/core_store.cc.o"
  "CMakeFiles/dsa_mem.dir/core_store.cc.o.d"
  "CMakeFiles/dsa_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dsa_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/dsa_mem.dir/storage_level.cc.o"
  "CMakeFiles/dsa_mem.dir/storage_level.cc.o.d"
  "libdsa_mem.a"
  "libdsa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
