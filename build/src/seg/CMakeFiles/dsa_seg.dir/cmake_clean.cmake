file(REMOVE_RECURSE
  "CMakeFiles/dsa_seg.dir/codeword.cc.o"
  "CMakeFiles/dsa_seg.dir/codeword.cc.o.d"
  "CMakeFiles/dsa_seg.dir/descriptor.cc.o"
  "CMakeFiles/dsa_seg.dir/descriptor.cc.o.d"
  "CMakeFiles/dsa_seg.dir/program_description.cc.o"
  "CMakeFiles/dsa_seg.dir/program_description.cc.o.d"
  "CMakeFiles/dsa_seg.dir/protection.cc.o"
  "CMakeFiles/dsa_seg.dir/protection.cc.o.d"
  "CMakeFiles/dsa_seg.dir/rice_image.cc.o"
  "CMakeFiles/dsa_seg.dir/rice_image.cc.o.d"
  "CMakeFiles/dsa_seg.dir/segment_manager.cc.o"
  "CMakeFiles/dsa_seg.dir/segment_manager.cc.o.d"
  "libdsa_seg.a"
  "libdsa_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
