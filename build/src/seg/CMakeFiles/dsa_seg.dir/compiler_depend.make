# Empty compiler generated dependencies file for dsa_seg.
# This may be replaced when dependencies are built.
