
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seg/codeword.cc" "src/seg/CMakeFiles/dsa_seg.dir/codeword.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/codeword.cc.o.d"
  "/root/repo/src/seg/descriptor.cc" "src/seg/CMakeFiles/dsa_seg.dir/descriptor.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/descriptor.cc.o.d"
  "/root/repo/src/seg/program_description.cc" "src/seg/CMakeFiles/dsa_seg.dir/program_description.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/program_description.cc.o.d"
  "/root/repo/src/seg/protection.cc" "src/seg/CMakeFiles/dsa_seg.dir/protection.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/protection.cc.o.d"
  "/root/repo/src/seg/rice_image.cc" "src/seg/CMakeFiles/dsa_seg.dir/rice_image.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/rice_image.cc.o.d"
  "/root/repo/src/seg/segment_manager.cc" "src/seg/CMakeFiles/dsa_seg.dir/segment_manager.cc.o" "gcc" "src/seg/CMakeFiles/dsa_seg.dir/segment_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/dsa_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/dsa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dsa_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dsa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
