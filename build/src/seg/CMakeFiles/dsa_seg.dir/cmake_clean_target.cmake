file(REMOVE_RECURSE
  "libdsa_seg.a"
)
