# Empty dependencies file for dsa_sched.
# This may be replaced when dependencies are built.
