file(REMOVE_RECURSE
  "CMakeFiles/dsa_sched.dir/multiprogramming.cc.o"
  "CMakeFiles/dsa_sched.dir/multiprogramming.cc.o.d"
  "libdsa_sched.a"
  "libdsa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
