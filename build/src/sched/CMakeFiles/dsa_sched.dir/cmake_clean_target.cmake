file(REMOVE_RECURSE
  "libdsa_sched.a"
)
