file(REMOVE_RECURSE
  "libdsa_core.a"
)
