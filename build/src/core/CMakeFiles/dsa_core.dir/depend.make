# Empty dependencies file for dsa_core.
# This may be replaced when dependencies are built.
