file(REMOVE_RECURSE
  "CMakeFiles/dsa_core.dir/characteristics.cc.o"
  "CMakeFiles/dsa_core.dir/characteristics.cc.o.d"
  "CMakeFiles/dsa_core.dir/hardware.cc.o"
  "CMakeFiles/dsa_core.dir/hardware.cc.o.d"
  "CMakeFiles/dsa_core.dir/rng.cc.o"
  "CMakeFiles/dsa_core.dir/rng.cc.o.d"
  "CMakeFiles/dsa_core.dir/strategy.cc.o"
  "CMakeFiles/dsa_core.dir/strategy.cc.o.d"
  "libdsa_core.a"
  "libdsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
