# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("stats")
subdirs("trace")
subdirs("mem")
subdirs("alloc")
subdirs("naming")
subdirs("map")
subdirs("paging")
subdirs("seg")
subdirs("vm")
subdirs("sched")
subdirs("machines")
