file(REMOVE_RECURSE
  "CMakeFiles/dsa_trace.dir/allocation.cc.o"
  "CMakeFiles/dsa_trace.dir/allocation.cc.o.d"
  "CMakeFiles/dsa_trace.dir/reference.cc.o"
  "CMakeFiles/dsa_trace.dir/reference.cc.o.d"
  "CMakeFiles/dsa_trace.dir/synthetic.cc.o"
  "CMakeFiles/dsa_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/dsa_trace.dir/trace_io.cc.o"
  "CMakeFiles/dsa_trace.dir/trace_io.cc.o.d"
  "libdsa_trace.a"
  "libdsa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
