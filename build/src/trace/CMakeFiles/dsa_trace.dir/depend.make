# Empty dependencies file for dsa_trace.
# This may be replaced when dependencies are built.
