file(REMOVE_RECURSE
  "libdsa_trace.a"
)
