file(REMOVE_RECURSE
  "CMakeFiles/dsa_paging.dir/advice.cc.o"
  "CMakeFiles/dsa_paging.dir/advice.cc.o.d"
  "CMakeFiles/dsa_paging.dir/atlas_learning.cc.o"
  "CMakeFiles/dsa_paging.dir/atlas_learning.cc.o.d"
  "CMakeFiles/dsa_paging.dir/fetch.cc.o"
  "CMakeFiles/dsa_paging.dir/fetch.cc.o.d"
  "CMakeFiles/dsa_paging.dir/frame_table.cc.o"
  "CMakeFiles/dsa_paging.dir/frame_table.cc.o.d"
  "CMakeFiles/dsa_paging.dir/hierarchy_pager.cc.o"
  "CMakeFiles/dsa_paging.dir/hierarchy_pager.cc.o.d"
  "CMakeFiles/dsa_paging.dir/lifetime.cc.o"
  "CMakeFiles/dsa_paging.dir/lifetime.cc.o.d"
  "CMakeFiles/dsa_paging.dir/m44_class.cc.o"
  "CMakeFiles/dsa_paging.dir/m44_class.cc.o.d"
  "CMakeFiles/dsa_paging.dir/opt.cc.o"
  "CMakeFiles/dsa_paging.dir/opt.cc.o.d"
  "CMakeFiles/dsa_paging.dir/pager.cc.o"
  "CMakeFiles/dsa_paging.dir/pager.cc.o.d"
  "CMakeFiles/dsa_paging.dir/replacement_factory.cc.o"
  "CMakeFiles/dsa_paging.dir/replacement_factory.cc.o.d"
  "CMakeFiles/dsa_paging.dir/replacement_simple.cc.o"
  "CMakeFiles/dsa_paging.dir/replacement_simple.cc.o.d"
  "CMakeFiles/dsa_paging.dir/stack_distance.cc.o"
  "CMakeFiles/dsa_paging.dir/stack_distance.cc.o.d"
  "CMakeFiles/dsa_paging.dir/working_set.cc.o"
  "CMakeFiles/dsa_paging.dir/working_set.cc.o.d"
  "libdsa_paging.a"
  "libdsa_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
