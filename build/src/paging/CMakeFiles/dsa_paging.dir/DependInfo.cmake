
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paging/advice.cc" "src/paging/CMakeFiles/dsa_paging.dir/advice.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/advice.cc.o.d"
  "/root/repo/src/paging/atlas_learning.cc" "src/paging/CMakeFiles/dsa_paging.dir/atlas_learning.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/atlas_learning.cc.o.d"
  "/root/repo/src/paging/fetch.cc" "src/paging/CMakeFiles/dsa_paging.dir/fetch.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/fetch.cc.o.d"
  "/root/repo/src/paging/frame_table.cc" "src/paging/CMakeFiles/dsa_paging.dir/frame_table.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/frame_table.cc.o.d"
  "/root/repo/src/paging/hierarchy_pager.cc" "src/paging/CMakeFiles/dsa_paging.dir/hierarchy_pager.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/hierarchy_pager.cc.o.d"
  "/root/repo/src/paging/lifetime.cc" "src/paging/CMakeFiles/dsa_paging.dir/lifetime.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/lifetime.cc.o.d"
  "/root/repo/src/paging/m44_class.cc" "src/paging/CMakeFiles/dsa_paging.dir/m44_class.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/m44_class.cc.o.d"
  "/root/repo/src/paging/opt.cc" "src/paging/CMakeFiles/dsa_paging.dir/opt.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/opt.cc.o.d"
  "/root/repo/src/paging/pager.cc" "src/paging/CMakeFiles/dsa_paging.dir/pager.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/pager.cc.o.d"
  "/root/repo/src/paging/replacement_factory.cc" "src/paging/CMakeFiles/dsa_paging.dir/replacement_factory.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/replacement_factory.cc.o.d"
  "/root/repo/src/paging/replacement_simple.cc" "src/paging/CMakeFiles/dsa_paging.dir/replacement_simple.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/replacement_simple.cc.o.d"
  "/root/repo/src/paging/stack_distance.cc" "src/paging/CMakeFiles/dsa_paging.dir/stack_distance.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/stack_distance.cc.o.d"
  "/root/repo/src/paging/working_set.cc" "src/paging/CMakeFiles/dsa_paging.dir/working_set.cc.o" "gcc" "src/paging/CMakeFiles/dsa_paging.dir/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
