file(REMOVE_RECURSE
  "libdsa_paging.a"
)
