# Empty dependencies file for dsa_paging.
# This may be replaced when dependencies are built.
