# Empty compiler generated dependencies file for dsa_vm.
# This may be replaced when dependencies are built.
