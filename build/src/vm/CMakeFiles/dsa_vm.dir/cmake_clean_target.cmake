file(REMOVE_RECURSE
  "libdsa_vm.a"
)
