file(REMOVE_RECURSE
  "CMakeFiles/dsa_vm.dir/overlay.cc.o"
  "CMakeFiles/dsa_vm.dir/overlay.cc.o.d"
  "CMakeFiles/dsa_vm.dir/paged_segmented_vm.cc.o"
  "CMakeFiles/dsa_vm.dir/paged_segmented_vm.cc.o.d"
  "CMakeFiles/dsa_vm.dir/paged_vm.cc.o"
  "CMakeFiles/dsa_vm.dir/paged_vm.cc.o.d"
  "CMakeFiles/dsa_vm.dir/segmented_vm.cc.o"
  "CMakeFiles/dsa_vm.dir/segmented_vm.cc.o.d"
  "CMakeFiles/dsa_vm.dir/system_builder.cc.o"
  "CMakeFiles/dsa_vm.dir/system_builder.cc.o.d"
  "libdsa_vm.a"
  "libdsa_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
