file(REMOVE_RECURSE
  "libdsa_alloc.a"
)
