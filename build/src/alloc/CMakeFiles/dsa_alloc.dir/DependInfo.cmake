
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/buddy.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/buddy.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/buddy.cc.o.d"
  "/root/repo/src/alloc/compaction.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/compaction.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/compaction.cc.o.d"
  "/root/repo/src/alloc/free_list.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/free_list.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/free_list.cc.o.d"
  "/root/repo/src/alloc/placement.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/placement.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/placement.cc.o.d"
  "/root/repo/src/alloc/rice_chain.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/rice_chain.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/rice_chain.cc.o.d"
  "/root/repo/src/alloc/variable_allocator.cc" "src/alloc/CMakeFiles/dsa_alloc.dir/variable_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/dsa_alloc.dir/variable_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dsa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
