# Empty compiler generated dependencies file for dsa_alloc.
# This may be replaced when dependencies are built.
