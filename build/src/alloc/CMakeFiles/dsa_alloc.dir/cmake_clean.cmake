file(REMOVE_RECURSE
  "CMakeFiles/dsa_alloc.dir/buddy.cc.o"
  "CMakeFiles/dsa_alloc.dir/buddy.cc.o.d"
  "CMakeFiles/dsa_alloc.dir/compaction.cc.o"
  "CMakeFiles/dsa_alloc.dir/compaction.cc.o.d"
  "CMakeFiles/dsa_alloc.dir/free_list.cc.o"
  "CMakeFiles/dsa_alloc.dir/free_list.cc.o.d"
  "CMakeFiles/dsa_alloc.dir/placement.cc.o"
  "CMakeFiles/dsa_alloc.dir/placement.cc.o.d"
  "CMakeFiles/dsa_alloc.dir/rice_chain.cc.o"
  "CMakeFiles/dsa_alloc.dir/rice_chain.cc.o.d"
  "CMakeFiles/dsa_alloc.dir/variable_allocator.cc.o"
  "CMakeFiles/dsa_alloc.dir/variable_allocator.cc.o.d"
  "libdsa_alloc.a"
  "libdsa_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
