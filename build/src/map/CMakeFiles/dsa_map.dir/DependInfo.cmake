
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/associative_memory.cc" "src/map/CMakeFiles/dsa_map.dir/associative_memory.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/associative_memory.cc.o.d"
  "/root/repo/src/map/block_table.cc" "src/map/CMakeFiles/dsa_map.dir/block_table.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/block_table.cc.o.d"
  "/root/repo/src/map/fault.cc" "src/map/CMakeFiles/dsa_map.dir/fault.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/fault.cc.o.d"
  "/root/repo/src/map/page_table.cc" "src/map/CMakeFiles/dsa_map.dir/page_table.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/page_table.cc.o.d"
  "/root/repo/src/map/relocation_limit.cc" "src/map/CMakeFiles/dsa_map.dir/relocation_limit.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/relocation_limit.cc.o.d"
  "/root/repo/src/map/two_level.cc" "src/map/CMakeFiles/dsa_map.dir/two_level.cc.o" "gcc" "src/map/CMakeFiles/dsa_map.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dsa_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/dsa_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dsa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
