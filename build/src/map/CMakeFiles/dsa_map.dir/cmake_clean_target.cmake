file(REMOVE_RECURSE
  "libdsa_map.a"
)
