file(REMOVE_RECURSE
  "CMakeFiles/dsa_map.dir/associative_memory.cc.o"
  "CMakeFiles/dsa_map.dir/associative_memory.cc.o.d"
  "CMakeFiles/dsa_map.dir/block_table.cc.o"
  "CMakeFiles/dsa_map.dir/block_table.cc.o.d"
  "CMakeFiles/dsa_map.dir/fault.cc.o"
  "CMakeFiles/dsa_map.dir/fault.cc.o.d"
  "CMakeFiles/dsa_map.dir/page_table.cc.o"
  "CMakeFiles/dsa_map.dir/page_table.cc.o.d"
  "CMakeFiles/dsa_map.dir/relocation_limit.cc.o"
  "CMakeFiles/dsa_map.dir/relocation_limit.cc.o.d"
  "CMakeFiles/dsa_map.dir/two_level.cc.o"
  "CMakeFiles/dsa_map.dir/two_level.cc.o.d"
  "libdsa_map.a"
  "libdsa_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
