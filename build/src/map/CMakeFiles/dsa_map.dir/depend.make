# Empty dependencies file for dsa_map.
# This may be replaced when dependencies are built.
