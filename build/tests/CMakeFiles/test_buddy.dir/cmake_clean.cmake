file(REMOVE_RECURSE
  "CMakeFiles/test_buddy.dir/test_buddy.cc.o"
  "CMakeFiles/test_buddy.dir/test_buddy.cc.o.d"
  "test_buddy"
  "test_buddy.pdb"
  "test_buddy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
