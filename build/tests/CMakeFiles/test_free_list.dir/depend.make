# Empty dependencies file for test_free_list.
# This may be replaced when dependencies are built.
