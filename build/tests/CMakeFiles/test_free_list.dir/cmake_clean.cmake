file(REMOVE_RECURSE
  "CMakeFiles/test_free_list.dir/test_free_list.cc.o"
  "CMakeFiles/test_free_list.dir/test_free_list.cc.o.d"
  "test_free_list"
  "test_free_list.pdb"
  "test_free_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_free_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
