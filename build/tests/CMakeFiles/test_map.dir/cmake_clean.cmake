file(REMOVE_RECURSE
  "CMakeFiles/test_map.dir/test_map.cc.o"
  "CMakeFiles/test_map.dir/test_map.cc.o.d"
  "test_map"
  "test_map.pdb"
  "test_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
