# Empty dependencies file for test_map.
# This may be replaced when dependencies are built.
