file(REMOVE_RECURSE
  "CMakeFiles/test_paging_properties.dir/test_paging_properties.cc.o"
  "CMakeFiles/test_paging_properties.dir/test_paging_properties.cc.o.d"
  "test_paging_properties"
  "test_paging_properties.pdb"
  "test_paging_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paging_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
