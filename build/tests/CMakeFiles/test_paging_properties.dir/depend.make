# Empty dependencies file for test_paging_properties.
# This may be replaced when dependencies are built.
