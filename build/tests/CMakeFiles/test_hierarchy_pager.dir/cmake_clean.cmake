file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_pager.dir/test_hierarchy_pager.cc.o"
  "CMakeFiles/test_hierarchy_pager.dir/test_hierarchy_pager.cc.o.d"
  "test_hierarchy_pager"
  "test_hierarchy_pager.pdb"
  "test_hierarchy_pager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
