# Empty dependencies file for test_hierarchy_pager.
# This may be replaced when dependencies are built.
