
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/test_core.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dsa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/dsa_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dsa_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/dsa_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/seg/CMakeFiles/dsa_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/dsa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dsa_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/dsa_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dsa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
