# Empty compiler generated dependencies file for test_rice_image.
# This may be replaced when dependencies are built.
