file(REMOVE_RECURSE
  "CMakeFiles/test_rice_image.dir/test_rice_image.cc.o"
  "CMakeFiles/test_rice_image.dir/test_rice_image.cc.o.d"
  "test_rice_image"
  "test_rice_image.pdb"
  "test_rice_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rice_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
