# Empty dependencies file for test_pager.
# This may be replaced when dependencies are built.
