file(REMOVE_RECURSE
  "CMakeFiles/test_pager.dir/test_pager.cc.o"
  "CMakeFiles/test_pager.dir/test_pager.cc.o.d"
  "test_pager"
  "test_pager.pdb"
  "test_pager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
