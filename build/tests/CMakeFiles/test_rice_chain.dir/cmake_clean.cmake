file(REMOVE_RECURSE
  "CMakeFiles/test_rice_chain.dir/test_rice_chain.cc.o"
  "CMakeFiles/test_rice_chain.dir/test_rice_chain.cc.o.d"
  "test_rice_chain"
  "test_rice_chain.pdb"
  "test_rice_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rice_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
