# Empty dependencies file for test_rice_chain.
# This may be replaced when dependencies are built.
