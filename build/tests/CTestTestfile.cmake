# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_free_list[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_allocators[1]_include.cmake")
include("/root/repo/build/tests/test_buddy[1]_include.cmake")
include("/root/repo/build/tests/test_rice_chain[1]_include.cmake")
include("/root/repo/build/tests/test_compaction[1]_include.cmake")
include("/root/repo/build/tests/test_naming[1]_include.cmake")
include("/root/repo/build/tests/test_map[1]_include.cmake")
include("/root/repo/build/tests/test_frame_table[1]_include.cmake")
include("/root/repo/build/tests/test_replacement[1]_include.cmake")
include("/root/repo/build/tests/test_pager[1]_include.cmake")
include("/root/repo/build/tests/test_paging_properties[1]_include.cmake")
include("/root/repo/build/tests/test_seg[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_machines[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy_pager[1]_include.cmake")
include("/root/repo/build/tests/test_protection[1]_include.cmake")
include("/root/repo/build/tests/test_rice_image[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_lifetime[1]_include.cmake")
include("/root/repo/build/tests/test_design_space[1]_include.cmake")
include("/root/repo/build/tests/test_cross_system[1]_include.cmake")
include("/root/repo/build/tests/test_stack_distance[1]_include.cmake")
