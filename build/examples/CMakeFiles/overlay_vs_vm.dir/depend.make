# Empty dependencies file for overlay_vs_vm.
# This may be replaced when dependencies are built.
