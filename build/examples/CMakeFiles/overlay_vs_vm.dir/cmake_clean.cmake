file(REMOVE_RECURSE
  "CMakeFiles/overlay_vs_vm.dir/overlay_vs_vm.cpp.o"
  "CMakeFiles/overlay_vs_vm.dir/overlay_vs_vm.cpp.o.d"
  "overlay_vs_vm"
  "overlay_vs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_vs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
