file(REMOVE_RECURSE
  "CMakeFiles/dsa_sim.dir/dsa_sim.cpp.o"
  "CMakeFiles/dsa_sim.dir/dsa_sim.cpp.o.d"
  "dsa_sim"
  "dsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
