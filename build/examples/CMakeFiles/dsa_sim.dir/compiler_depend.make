# Empty compiler generated dependencies file for dsa_sim.
# This may be replaced when dependencies are built.
