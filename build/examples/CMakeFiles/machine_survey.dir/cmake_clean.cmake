file(REMOVE_RECURSE
  "CMakeFiles/machine_survey.dir/machine_survey.cpp.o"
  "CMakeFiles/machine_survey.dir/machine_survey.cpp.o.d"
  "machine_survey"
  "machine_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
