# Empty compiler generated dependencies file for machine_survey.
# This may be replaced when dependencies are built.
