file(REMOVE_RECURSE
  "CMakeFiles/advisory_tuning.dir/advisory_tuning.cpp.o"
  "CMakeFiles/advisory_tuning.dir/advisory_tuning.cpp.o.d"
  "advisory_tuning"
  "advisory_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisory_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
