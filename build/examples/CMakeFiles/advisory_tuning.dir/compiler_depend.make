# Empty compiler generated dependencies file for advisory_tuning.
# This may be replaced when dependencies are built.
