file(REMOVE_RECURSE
  "../bench/bench_page_size"
  "../bench/bench_page_size.pdb"
  "CMakeFiles/bench_page_size.dir/bench_page_size.cc.o"
  "CMakeFiles/bench_page_size.dir/bench_page_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
