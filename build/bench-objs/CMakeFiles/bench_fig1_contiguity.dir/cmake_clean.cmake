file(REMOVE_RECURSE
  "../bench/bench_fig1_contiguity"
  "../bench/bench_fig1_contiguity.pdb"
  "CMakeFiles/bench_fig1_contiguity.dir/bench_fig1_contiguity.cc.o"
  "CMakeFiles/bench_fig1_contiguity.dir/bench_fig1_contiguity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
