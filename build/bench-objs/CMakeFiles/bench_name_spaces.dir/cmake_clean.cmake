file(REMOVE_RECURSE
  "../bench/bench_name_spaces"
  "../bench/bench_name_spaces.pdb"
  "CMakeFiles/bench_name_spaces.dir/bench_name_spaces.cc.o"
  "CMakeFiles/bench_name_spaces.dir/bench_name_spaces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_name_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
