# Empty dependencies file for bench_name_spaces.
# This may be replaced when dependencies are built.
