file(REMOVE_RECURSE
  "../bench/bench_placement"
  "../bench/bench_placement.pdb"
  "CMakeFiles/bench_placement.dir/bench_placement.cc.o"
  "CMakeFiles/bench_placement.dir/bench_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
