file(REMOVE_RECURSE
  "../bench/bench_replacement"
  "../bench/bench_replacement.pdb"
  "CMakeFiles/bench_replacement.dir/bench_replacement.cc.o"
  "CMakeFiles/bench_replacement.dir/bench_replacement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
