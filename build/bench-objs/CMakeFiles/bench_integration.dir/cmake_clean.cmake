file(REMOVE_RECURSE
  "../bench/bench_integration"
  "../bench/bench_integration.pdb"
  "CMakeFiles/bench_integration.dir/bench_integration.cc.o"
  "CMakeFiles/bench_integration.dir/bench_integration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
