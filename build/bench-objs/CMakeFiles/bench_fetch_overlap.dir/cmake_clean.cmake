file(REMOVE_RECURSE
  "../bench/bench_fetch_overlap"
  "../bench/bench_fetch_overlap.pdb"
  "CMakeFiles/bench_fetch_overlap.dir/bench_fetch_overlap.cc.o"
  "CMakeFiles/bench_fetch_overlap.dir/bench_fetch_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fetch_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
