# Empty compiler generated dependencies file for bench_fetch_overlap.
# This may be replaced when dependencies are built.
