# Empty compiler generated dependencies file for bench_addressing_overhead.
# This may be replaced when dependencies are built.
