file(REMOVE_RECURSE
  "../bench/bench_addressing_overhead"
  "../bench/bench_addressing_overhead.pdb"
  "CMakeFiles/bench_addressing_overhead.dir/bench_addressing_overhead.cc.o"
  "CMakeFiles/bench_addressing_overhead.dir/bench_addressing_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_addressing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
