file(REMOVE_RECURSE
  "../bench/bench_fig4_two_level"
  "../bench/bench_fig4_two_level.pdb"
  "CMakeFiles/bench_fig4_two_level.dir/bench_fig4_two_level.cc.o"
  "CMakeFiles/bench_fig4_two_level.dir/bench_fig4_two_level.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
