file(REMOVE_RECURSE
  "../bench/bench_fragmentation"
  "../bench/bench_fragmentation.pdb"
  "CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o"
  "CMakeFiles/bench_fragmentation.dir/bench_fragmentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
