# Empty dependencies file for bench_compaction.
# This may be replaced when dependencies are built.
