file(REMOVE_RECURSE
  "../bench/bench_fig2_block_table"
  "../bench/bench_fig2_block_table.pdb"
  "CMakeFiles/bench_fig2_block_table.dir/bench_fig2_block_table.cc.o"
  "CMakeFiles/bench_fig2_block_table.dir/bench_fig2_block_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_block_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
