// Multiprogramming and page-wait overlap: the fetch-strategy argument.
//
// "A large space-time product will not overly affect the performance ... if
// the time spent on fetching pages can normally be overlapped with the
// execution of other programs."
//
// Runs the same job mix at multiprogramming degrees 1..6 over a fixed core
// and one drum channel, printing CPU utilisation (climbing with overlap) and
// per-job space-time (swelling as jobs share storage).

#include <cstdio>

#include "src/sched/multiprogramming.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"

int main() {
  std::printf("Multiprogramming degree vs CPU utilisation (shared core, one drum channel)\n\n");

  dsa::Table table({"degree", "total cycles", "CPU busy", "CPU idle", "utilisation",
                    "faults", "throughput (refs/cyc)", "space-time per job"});

  for (std::size_t degree = 1; degree <= 6; ++degree) {
    dsa::MultiprogramConfig config;
    config.core_words = 16384;
    config.page_words = 512;
    config.replacement = dsa::ReplacementStrategyKind::kLru;
    config.quantum = 4000;
    dsa::MultiprogrammingSimulator sim(config);

    for (std::size_t j = 0; j < degree; ++j) {
      dsa::LoopTraceParams params;
      params.extent = 8192;
      params.body_words = 1536;
      params.advance_words = 512;
      params.iterations = 4;
      params.length = 30000;
      params.seed = 100 + j;  // distinct but statistically identical jobs
      sim.AddJob("job-" + std::to_string(j), dsa::MakeLoopTrace(params));
    }

    const dsa::MultiprogramReport report = sim.Run();
    table.AddRow()
        .AddCell(static_cast<std::uint64_t>(degree))
        .AddCell(report.total_cycles)
        .AddCell(report.cpu_busy_cycles)
        .AddCell(report.cpu_idle_cycles)
        .AddCell(report.CpuUtilization(), 3)
        .AddCell(report.faults)
        .AddCell(report.Throughput(), 5)
        .AddCell(report.TotalSpaceTime() / static_cast<double>(report.degree), 0);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Reading the table: at degree 1 the CPU idles through every page wait; as\n"
              "degree rises the waits overlap other jobs' execution and utilisation climbs,\n"
              "until shared core makes the jobs fault against each other.\n");
  return 0;
}
