// Design-space tour: walk the paper's four-axis taxonomy end to end.
//
// "The above discussions have been intended to show that each of the four
// basic characteristics is of considerable utility in describing a storage
// allocation system, and that collectively they have the advantage of
// being, to a large degree, mutually independent.  They draw attention to
// the fact that ... not all of the more promising choices of a set of
// characteristics have been tried."
//
// Builds every buildable point of the grid with the SystemBuilder, runs one
// common workload through each, and prints the taxonomy with measurements
// attached — including the authors' favoured, never-built combination.

#include <cstdio>

#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

int main() {
  dsa::WorkingSetTraceParams params;
  params.extent = 1 << 14;
  params.region_words = 128;
  params.regions_per_phase = 12;
  params.phases = 5;
  params.phase_length = 8000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(params);

  dsa::Table table({"name space", "predictions", "contiguity", "unit", "family built",
                    "fault rate", "map cost (cyc/ref)", "note"});

  const dsa::Characteristics favoured = dsa::AuthorsFavoredCharacteristics();
  std::size_t built = 0;
  std::size_t rejected = 0;

  for (dsa::NameSpaceKind ns :
       {dsa::NameSpaceKind::kLinear, dsa::NameSpaceKind::kLinearlySegmented,
        dsa::NameSpaceKind::kSymbolicallySegmented}) {
    for (dsa::PredictiveInformation predictive :
         {dsa::PredictiveInformation::kNotAccepted, dsa::PredictiveInformation::kAccepted}) {
      for (dsa::ArtificialContiguity contiguity :
           {dsa::ArtificialContiguity::kNone, dsa::ArtificialContiguity::kProvided}) {
        for (dsa::AllocationUnit unit :
             {dsa::AllocationUnit::kUniformPages, dsa::AllocationUnit::kVariableBlocks,
              dsa::AllocationUnit::kMixedPages}) {
          dsa::SystemSpec spec;
          spec.label = "tour";
          spec.characteristics = {ns, predictive,
                                  predictive == dsa::PredictiveInformation::kAccepted
                                      ? dsa::PredictionSource::kProgrammer
                                      : dsa::PredictionSource::kNone,
                                  contiguity, unit};
          spec.core_words = 8192;
          spec.page_words = 256;
          spec.max_segment_extent = 512;
          spec.workload_segment_words = 256;
          spec.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 2000);

          const char* note = "";
          if (spec.characteristics == favoured) {
            note = "<= authors' favoured combination";
          }

          if (!dsa::SpecIsBuildable(spec)) {
            ++rejected;
            table.AddRow()
                .AddCell(ToString(ns))
                .AddCell(ToString(predictive))
                .AddCell(ToString(contiguity))
                .AddCell(ToString(unit))
                .AddCell("(rejected)")
                .AddCell("-")
                .AddCell("-")
                .AddCell("variable units need segments or a map to relocate by");
            continue;
          }
          const auto system = dsa::BuildSystem(spec);
          const dsa::VmReport report = system->Run(trace);
          ++built;
          const char* family =
              unit == dsa::AllocationUnit::kVariableBlocks
                  ? "segment-unit (B5000/Rice)"
                  : (ns == dsa::NameSpaceKind::kLinear ? "paged linear (ATLAS/M44)"
                                                       : "paged segments (Fig. 4)");
          table.AddRow()
              .AddCell(ToString(ns))
              .AddCell(ToString(predictive))
              .AddCell(ToString(contiguity))
              .AddCell(ToString(unit))
              .AddCell(family)
              .AddCell(report.FaultRate(), 5)
              .AddCell(report.MeanTranslationCost(), 2)
              .AddCell(note);
        }
      }
    }
  }

  std::printf("The four-axis design space, built and measured (one workload, %zu refs):\n\n%s\n",
              trace.size(), table.Render().c_str());
  std::printf("%zu points built, %zu rejected.  The paper observed that \"not all of the\n"
              "more promising choices of a set of characteristics have been tried\" —\n"
              "here every coherent point runs, including the authors' favoured one.\n",
              built, rejected);
  return 0;
}
