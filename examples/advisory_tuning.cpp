// Predictive directives as "tuning": the M44/44X advise instructions.
//
// "Provision and debugging of predictive information should be regarded as
// an attempt to 'tune' the system for special cases."  This example runs a
// phase-structured program three ways on an M44-flavoured machine:
//   1. plain demand paging;
//   2. with *accurate* advice (will-need the next phase, wont-need the old);
//   3. with *wrong* advice (will-need pages that are never touched) — the
//      case the authors warn about when performance depends on user input.

#include <cstdio>
#include <vector>

#include "src/core/rng.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

namespace {

constexpr dsa::WordCount kPhaseWords = 8192;
constexpr std::size_t kPhases = 8;
constexpr std::size_t kRefsPerPhase = 6000;

// The program sweeps phase regions in order: phase p lives in
// [p * kPhaseWords, (p+1) * kPhaseWords).
dsa::ReferenceTrace MakePhasedTrace() {
  dsa::ReferenceTrace trace;
  trace.label = "phased-program";
  dsa::Rng rng(17);
  for (std::size_t p = 0; p < kPhases; ++p) {
    const dsa::WordCount base = p * kPhaseWords;
    for (std::size_t i = 0; i < kRefsPerPhase; ++i) {
      const dsa::Name name{base + rng.Below(kPhaseWords)};
      trace.refs.push_back({name, rng.Chance(0.25) ? dsa::AccessKind::kWrite
                                                   : dsa::AccessKind::kRead});
    }
  }
  return trace;
}

dsa::PagedVmConfig M44Config(bool advice, dsa::FetchStrategyKind fetch) {
  dsa::PagedVmConfig config;
  config.label = "M44-flavoured";
  config.address_bits = 17;  // 128K-word name space for this program
  config.core_words = 16384;
  config.page_words = 1024;
  config.backing_level =
      dsa::MakeDiskLevel("ibm1301", 9000000, /*word_time=*/2, /*seek_plus_rotation=*/20000);
  config.replacement = dsa::ReplacementStrategyKind::kM44Class;
  config.accept_advice = advice;
  config.fetch = fetch;
  return config;
}

// Runs with a per-phase advice callback invoked at each phase boundary.
dsa::VmReport RunWithAdvice(dsa::PagedLinearVm* vm, const dsa::ReferenceTrace& trace,
                            bool accurate) {
  // Re-run manually so advice can be injected between phases.
  const dsa::WordCount page = vm->config().page_words;
  dsa::VmReport dummy = vm->Run(dsa::ReferenceTrace{trace.label, {}});  // reset
  (void)dummy;
  std::size_t i = 0;
  for (std::size_t p = 0; p < kPhases; ++p) {
    // Advise at the phase boundary.  Accurate advice prefetches the phase
    // about to run and releases the one just finished.  Wrong advice is a
    // stale program description, off by one phase: it prefetches the phase
    // that just *finished* and releases the one about to be *used*.
    if (p + 1 < kPhases) {
      const dsa::WordCount prefetch_base =
          accurate ? (p + 1) * kPhaseWords : (p > 0 ? (p - 1) * kPhaseWords : p * kPhaseWords);
      for (dsa::WordCount w = 0; w < kPhaseWords; w += page) {
        vm->AdviseWillNeed(dsa::Name{prefetch_base + w});
      }
    }
    if (p > 0) {
      const dsa::WordCount release_base = accurate ? (p - 1) * kPhaseWords : p * kPhaseWords;
      for (dsa::WordCount w = 0; w < kPhaseWords; w += page) {
        vm->AdviseWontNeed(dsa::Name{release_base + w});
      }
    }
    for (std::size_t r = 0; r < kRefsPerPhase; ++r, ++i) {
      vm->Step(trace.refs[i]);
    }
  }
  dsa::VmReport report = vm->Snapshot();
  report.label = accurate ? "accurate advice" : "wrong advice";
  return report;
}

}  // namespace

int main() {
  const dsa::ReferenceTrace trace = MakePhasedTrace();
  dsa::Table table({"configuration", "faults", "fault rate", "wait fraction",
                    "space-time waiting %", "total cycles"});

  auto add_row = [&table](const dsa::VmReport& report, const char* label) {
    table.AddRow()
        .AddCell(label)
        .AddCell(report.faults)
        .AddCell(report.FaultRate(), 5)
        .AddCell(report.WaitFraction(), 3)
        .AddCell(100.0 * report.space_time.WaitingFraction(), 1)
        .AddCell(report.total_cycles);
  };

  {
    dsa::PagedLinearVm vm(M44Config(/*advice=*/false, dsa::FetchStrategyKind::kDemand));
    add_row(vm.Run(trace), "demand only");
  }
  {
    dsa::PagedLinearVm vm(M44Config(/*advice=*/true, dsa::FetchStrategyKind::kAdvised));
    add_row(RunWithAdvice(&vm, trace, /*accurate=*/true), "accurate advice");
  }
  {
    dsa::PagedLinearVm vm(M44Config(/*advice=*/true, dsa::FetchStrategyKind::kAdvised));
    add_row(RunWithAdvice(&vm, trace, /*accurate=*/false), "wrong advice");
  }

  std::printf("Advisory tuning on an M44-flavoured machine (%zu refs, %zu phases)\n\n%s\n",
              trace.size(), kPhases, table.Render().c_str());
  std::printf("Accurate advice prefetches each phase before it starts and releases the old\n"
              "one; wrong advice wastes frames and transfers.  'The general level of\n"
              "performance of the system should not be dependent on the extent and accuracy\n"
              "of predictive information supplied by users.'\n");
  return 0;
}
