// Quickstart: build a storage allocation system from a point in the paper's
// design space, run a workload through it, and read the report.
//
//   $ ./quickstart
//
// Demonstrates the SystemBuilder (pick the four characteristics + the three
// strategies), the trace generators, and the VmReport metrics — fault rate,
// translation overhead, and the Fig. 3 space-time split.

#include <cstdio>

#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace {

void RunAndPrint(dsa::StorageAllocationSystem* system, const dsa::ReferenceTrace& trace) {
  const dsa::VmReport report = system->Run(trace);
  std::printf("== %s ==\n", report.label.c_str());
  std::printf("   characteristics: %s\n", dsa::Describe(system->characteristics()).c_str());
  std::printf("   references        %llu\n",
              static_cast<unsigned long long>(report.references));
  std::printf("   faults            %llu  (rate %.5f)\n",
              static_cast<unsigned long long>(report.faults), report.FaultRate());
  std::printf("   total cycles      %llu\n",
              static_cast<unsigned long long>(report.total_cycles));
  std::printf("   mean map cost     %.2f cycles/ref\n", report.MeanTranslationCost());
  std::printf("   wait fraction     %.3f\n", report.WaitFraction());
  std::printf("   space-time        active %.0f  waiting %.0f  (waiting %.1f%%)\n",
              report.space_time.active, report.space_time.waiting,
              100.0 * report.space_time.WaitingFraction());
  std::printf("   peak residency    %llu words\n\n",
              static_cast<unsigned long long>(report.peak_resident_words));
}

}  // namespace

int main() {
  std::printf("dsa quickstart: two points in the design space, one workload\n\n");

  // A workload with phase-structured locality, twice the size of core.
  dsa::WorkingSetTraceParams workload;
  workload.extent = 32768;
  workload.region_words = 256;
  workload.regions_per_phase = 24;
  workload.phases = 6;
  workload.phase_length = 10000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(workload);

  // Point 1: an ATLAS-flavoured system — linear name space, uniform pages,
  // artificial contiguity, demand fetch, LRU replacement.
  dsa::SystemSpec paged;
  paged.label = "paged (ATLAS-flavoured)";
  paged.characteristics.name_space = dsa::NameSpaceKind::kLinear;
  paged.characteristics.contiguity = dsa::ArtificialContiguity::kProvided;
  paged.characteristics.unit = dsa::AllocationUnit::kUniformPages;
  paged.core_words = 16384;
  paged.page_words = 512;
  paged.replacement = dsa::ReplacementStrategyKind::kLru;
  auto paged_system = dsa::BuildSystem(paged);
  RunAndPrint(paged_system.get(), trace);

  // Point 2: the authors' favoured combination — symbolically segmented,
  // variable units sized to the segments.
  dsa::SystemSpec favoured;
  favoured.label = "authors' favoured (B5000-flavoured)";
  favoured.characteristics = dsa::AuthorsFavoredCharacteristics();
  favoured.core_words = 16384;
  favoured.max_segment_extent = 1024;
  favoured.workload_segment_words = 256;
  favoured.placement = dsa::PlacementStrategyKind::kBestFit;
  auto segmented_system = dsa::BuildSystem(favoured);
  RunAndPrint(segmented_system.get(), trace);

  std::printf("Both systems ran the same %zu-reference trace; compare fault rates,\n"
              "mapping overhead, and the space-time split above.\n",
              trace.size());
  return 0;
}
