// Machine survey: instantiate all seven appendix systems (A.1-A.7) and print
// the survey — design-space coordinates plus measured behaviour on a common
// pressure-scaled workload.
//
//   $ ./machine_survey [pressure]
//
// `pressure` scales each machine's workload extent relative to its core
// (default 2.0 = programs twice the size of working storage).

#include <cstdio>
#include <cstdlib>

#include "src/machines/survey.h"

int main(int argc, char** argv) {
  double pressure = 2.0;
  if (argc > 1) {
    pressure = std::atof(argv[1]);
    if (pressure <= 0.0) {
      std::fprintf(stderr, "usage: %s [pressure > 0]\n", argv[0]);
      return 1;
    }
  }

  std::printf("Appendix survey, Randell & Kuehner 1968 (workload pressure %.1fx core)\n\n",
              pressure);
  const auto rows = dsa::RunSurvey(pressure);
  std::printf("%s\n", dsa::RenderSurvey(rows).c_str());

  std::printf("Notes per machine:\n");
  for (const auto& row : rows) {
    std::printf("  [%s] %s: %s\n", row.description.appendix.c_str(),
                row.description.name.c_str(), row.description.notes.c_str());
  }
  return 0;
}
