// Overlays vs automatic virtual memory: the Introduction's motivating
// scenario.
//
// "For cases of insufficient working storage, the programmer had to devise a
// strategy for segmenting his program and/or its data, and for controlling
// the 'overlaying' of segments ...  The simplest strategies involved
// preplanned allocation and overlaying on the basis of worst case estimates
// of storage requirements."
//
// This example runs one program (larger than core) both ways:
//   1. hand-planned static overlays (dsa::StaticOverlayPlan): fixed regions,
//      whole-region swaps, worst-case style;
//   2. automatic demand paging with LRU replacement.
// Demand paging moves only the pages actually touched; static overlays move
// worst-case units.  Compare total words transferred and time.

#include <cstdio>

#include "src/trace/synthetic.h"
#include "src/vm/overlay.h"
#include "src/vm/paged_vm.h"

int main() {
  const dsa::WordCount core_words = 8192;
  const dsa::WordCount program_extent = 32768;  // 4x core
  const dsa::StorageLevel drum =
      dsa::MakeDrumLevel("drum", 1u << 20, /*word_time=*/4, /*rotational_delay=*/6000);

  // A program with phase locality: most of the time it works in a small
  // region, occasionally shifting — the case where worst-case overlays hurt.
  dsa::WorkingSetTraceParams params;
  params.extent = program_extent;
  params.region_words = 128;
  params.regions_per_phase = 16;
  params.phases = 12;
  params.phase_length = 8000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(params);

  std::printf("Program: %llu-word name space over %llu words of core, %zu references\n\n",
              static_cast<unsigned long long>(program_extent),
              static_cast<unsigned long long>(core_words), trace.size());

  // 1. Preplanned overlays: 4 regions of 2048 words resident at once.
  dsa::OverlayPlanConfig plan_config;
  plan_config.region_words = 2048;
  plan_config.resident_regions = core_words / plan_config.region_words;
  plan_config.backing = drum;
  const dsa::StaticOverlayPlan plan(plan_config);
  const dsa::OverlayReport overlays = plan.Run(trace);
  std::printf("Static overlays (%llu-word regions, %zu resident):\n",
              static_cast<unsigned long long>(plan_config.region_words),
              plan_config.resident_regions);
  std::printf("   overlay swaps       %llu  (rate %.4f/ref)\n",
              static_cast<unsigned long long>(overlays.overlay_swaps), overlays.SwapRate());
  std::printf("   words transferred   %llu\n",
              static_cast<unsigned long long>(overlays.words_transferred));
  std::printf("   total cycles        %llu\n\n",
              static_cast<unsigned long long>(overlays.total_cycles));

  // 2. Automatic demand paging, 512-word pages, LRU.
  dsa::PagedVmConfig config;
  config.label = "demand-paged";
  config.address_bits = 16;
  config.core_words = core_words;
  config.page_words = 512;
  config.backing_level = drum;
  config.replacement = dsa::ReplacementStrategyKind::kLru;
  dsa::PagedLinearVm vm(config);
  const dsa::VmReport report = vm.Run(trace);
  std::printf("Demand paging (512-word pages, LRU):\n");
  std::printf("   page faults         %llu\n", static_cast<unsigned long long>(report.faults));
  std::printf("   words transferred   %llu\n",
              static_cast<unsigned long long>(report.faults * config.page_words));
  std::printf("   total cycles        %llu\n\n",
              static_cast<unsigned long long>(report.total_cycles));

  const double speedup = static_cast<double>(overlays.total_cycles) /
                         static_cast<double>(report.total_cycles);
  std::printf("Automatic allocation moved %.1fx fewer words and ran %.2fx faster —\n"
              "the storage allocation function belongs in the system, not the program.\n",
              static_cast<double>(overlays.words_transferred) /
                  static_cast<double>(report.faults * config.page_words),
              speedup);
  return 0;
}
