// dsa_sim — command-line driver for the storage allocation simulator.
//
// Reads a reference trace (the text format of src/trace/trace_io.h) from a
// file or generates a synthetic one, builds the system described by the
// flags through the SystemBuilder, runs the trace, and prints the report.
//
// Usage:
//   dsa_sim [options]
//     --trace FILE            read a trace file (default: synthetic working-set)
//     --gen KIND              synthetic workload: working-set|loop|sequential|random|zipf
//     --name-space KIND       linear|linseg|symseg            (default linear)
//     --unit KIND             pages|blocks|mixed              (default pages)
//     --advice                accept predictive directives
//     --core WORDS            working storage size            (default 16384)
//     --page WORDS            page size                       (default 512)
//     --segment WORDS         max/workload segment size       (default 512)
//     --replacement KIND      fifo|lru|random|clock|atlas|m44|ws (default lru)
//     --fetch KIND            demand|prefetch|advised         (default demand)
//     --tlb N                 associative memory entries      (default 8)
//     --drum-latency CYCLES   backing start-up latency        (default 6000)
//     --dump-trace FILE       write the workload out in trace format and exit
//     --trace=FILE            capture the run's event stream as JSONL (note the
//                             '=': the two-token form reads a reference trace),
//                             re-verify it, and report the verifier's verdict
//     --batch DIR             multi-tenant batch: run every trace file in DIR
//                             (sorted by name) through its own instance of the
//                             configured system, sharded --jobs wide, and print
//                             per-tenant reports in name order plus a merged
//                             aggregate (order-independent registry merge).
//                             A malformed file is skipped and reported; exit
//                             code 3 distinguishes "some cells rejected" from
//                             0 "all cells ran"
//     --jobs N                worker count for --batch (default: DSA_JOBS env,
//                             else 1; 0 or 'hw' = hardware width).  Results
//                             are byte-identical at any worker count.
//     --serve SPOOL           crash-consistent service mode: admit every trace
//                             file in SPOOL (rescanned between rounds) as a
//                             tenant of a resident multi-tenant loop with
//                             periodic checkpoints; on restart the loop
//                             resumes from the last committed checkpoint and
//                             produces byte-identical outputs.  Exit code 3:
//                             some tenants rejected
//     --out DIR               service outputs (per-tenant report + event
//                             JSONL, SERVICE.txt); default SPOOL.out
//     --checkpoint DIR        checkpoint store directory; default SPOOL.ckpt
//     --checkpoint-every N    simulated cycles between checkpoint commits
//                             (default 200000; the word 'completions' commits
//                             only at tenant completions — 0 is rejected)
//     --checkpoint-full-every N
//                             every Nth commit is a full cut; the commits
//                             between are incremental deltas that re-seal
//                             only the state sections whose content changed
//                             (default 1 = every commit full).  Outputs are
//                             byte-identical at any value
//     --max-active N          cross-tenant concurrency cap (default 0 = all)
//     --drain                 serve only what is spooled at startup (no
//                             rescans), then exit
//     --crash-after N         abandon the service (exit 137, no flush) after
//                             N checkpoint commits — the deterministic kill
//                             point scripts/soak_resume.sh drives
//     --lanes N               scheduler lanes for --serve: step up to N active
//                             tenants concurrently over one shared lock-free
//                             storage heap ('hw' = hardware width; default 1;
//                             0 is rejected as ambiguous).  Outputs are
//                             byte-identical at any lane count
//     --io-fault-at K         durable-IO fault injection: fail the K-th file
//                             operation (1-based) of this process.  Applies
//                             to --serve and --batch.  Exit 137 when the
//                             injected fault was a crash (the loop halted)
//     --io-fault-len N        fault window length in ops (default 1; 0 =
//                             persistent — every op from K on fails)
//     --io-fault-err KIND     eio|enospc — the errno injected (default eio)
//     --io-fault-crash        the K-th op is a simulated crash: it and every
//                             later op fail fatally, like SIGKILL mid-write
//     --io-fault-torn N       the K-th op tears: an append/atomic-write
//                             persists only its first N bytes, then halts
//     --io-fault-rate P       also fail each op with probability P (0..1),
//                             deterministically from --io-fault-seed
//     --io-fault-seed S       seed for --io-fault-rate draws (default 0)
//     --io-fault-path SUBSTR  only ops whose path contains SUBSTR fault
//
// Examples:
//   dsa_sim --name-space symseg --unit blocks --replacement clock
//   dsa_sim --gen loop --replacement atlas --core 8192
//   dsa_sim --dump-trace /tmp/t.trace && dsa_sim --trace /tmp/t.trace
//   dsa_sim --trace=/tmp/events.jsonl
//   dsa_sim --batch /tmp/tenants --jobs 0 --trace=/tmp/batch-events
//   dsa_sim --serve /tmp/spool --out /tmp/spool.out --checkpoint-every 50000

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/fsio.h"
#include "src/exec/thread_pool.h"
#include "src/obs/export.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/obs/vm_metrics.h"
#include "src/serve/batch.h"
#include "src/serve/service.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/vm/system_builder.h"

namespace {

[[noreturn]] void Usage(const char* argv0, const char* complaint) {
  std::fprintf(stderr, "dsa_sim: %s\n(see the header comment of %s.cpp for usage)\n",
               complaint, argv0);
  std::exit(2);
}

[[noreturn]] void Usage(const char* argv0, const std::string& complaint) {
  Usage(argv0, complaint.c_str());
}

// Checked numeric parsing: trailing garbage, a leading sign, an empty value,
// and out-of-range magnitudes are usage errors, never silent zeros or wraps
// ("--lanes banana" and "--core 99999999999999999999999" both used to slip
// through strtoul unnoticed).
std::uint64_t ParseU64(const char* argv0, const std::string& flag, const std::string& text) {
  if (text.empty() || text[0] == '-' || text[0] == '+' ||
      std::isspace(static_cast<unsigned char>(text[0]))) {
    Usage(argv0, flag + " wants a plain non-negative integer, got '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE) {
    Usage(argv0, flag + " value out of range: " + text);
  }
  if (end == text.c_str() || *end != '\0') {
    Usage(argv0, flag + " wants an integer, got '" + text + "'");
  }
  return value;
}

double ParseDouble(const char* argv0, const std::string& flag, const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    Usage(argv0, flag + " wants a number, got '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE) {
    Usage(argv0, flag + " value out of range: " + text);
  }
  if (end == text.c_str() || *end != '\0') {
    Usage(argv0, flag + " wants a number, got '" + text + "'");
  }
  return value;
}

dsa::ReferenceTrace GenerateWorkload(const std::string& kind) {
  if (kind == "working-set") {
    dsa::WorkingSetTraceParams params;
    params.extent = 1 << 16;
    params.region_words = 256;
    params.regions_per_phase = 16;
    params.phases = 6;
    params.phase_length = 10000;
    return MakeWorkingSetTrace(params);
  }
  if (kind == "loop") {
    dsa::LoopTraceParams params;
    params.extent = 1 << 16;
    params.body_words = 4096;
    params.advance_words = 1024;
    params.iterations = 6;
    params.length = 60000;
    return MakeLoopTrace(params);
  }
  if (kind == "sequential") {
    dsa::SequentialTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeSequentialTrace(params);
  }
  if (kind == "random") {
    dsa::RandomTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeRandomTrace(params);
  }
  if (kind == "zipf") {
    dsa::ZipfTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeZipfTrace(params);
  }
  std::fprintf(stderr, "dsa_sim: unknown --gen kind '%s'\n", kind.c_str());
  std::exit(2);
}

// Runs service mode and prints the outcome summary.  Exit codes: 0 served
// everything, 3 some tenants rejected, 2 environment/config errors, 137
// (after a hard _Exit) when --crash-after abandoned the loop mid-run or an
// injected --io-fault-crash halted the durable-IO layer.
int RunServe(const dsa::SystemSpec& spec, const dsa::ServeConfig& config,
             bool crash_after_set, const dsa::FaultInjectingFs* fault_fs) {
  dsa::ServiceLoop loop(spec, config);
  auto outcome = loop.Run();
  if (!outcome.has_value()) {
    std::fprintf(stderr, "dsa_sim: serve: %s\n", outcome.error().Describe().c_str());
    if (fault_fs != nullptr && fault_fs->halted()) {
      // An injected crash behaves like SIGKILL at that write: no flushing,
      // no destructors, the same 137 the kill matrix expects.
      std::fflush(nullptr);
      std::_Exit(137);
    }
    return 2;
  }
  for (const std::string& line : outcome->quarantined) {
    std::fprintf(stderr, "dsa_sim: serve: quarantined: %s\n", line.c_str());
  }
  for (const std::string& line : outcome->rejected) {
    std::fprintf(stderr, "dsa_sim: serve: rejected: %s\n", line.c_str());
  }
  if (!outcome->finished) {
    // The deterministic kill point: leave the process the way SIGKILL
    // would — no flushing, no destructors — so resume starts from exactly
    // the committed cut.
    std::fflush(nullptr);
    std::_Exit(137);
  }
  std::printf(
      "== serve: %zu completed (%zu resumed), %zu rejected, %llu commits -> %s ==\n",
      outcome->tenants_completed, outcome->tenants_resumed, outcome->tenants_rejected,
      static_cast<unsigned long long>(outcome->commits), config.out_dir.c_str());
  if (outcome->io_retries > 0 || outcome->io_giveups > 0 || outcome->degraded_cycles > 0 ||
      outcome->degraded) {
    std::printf(
        "== serve io: %llu retries, %llu giveups, %llu degraded cycles%s ==\n",
        static_cast<unsigned long long>(outcome->io_retries),
        static_cast<unsigned long long>(outcome->io_giveups),
        static_cast<unsigned long long>(outcome->degraded_cycles),
        outcome->degraded ? ", DEGRADED at exit" : "");
  }
  (void)crash_after_set;
  return outcome->tenants_rejected > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  std::string event_trace_file;
  std::string dump_file;
  std::string batch_dir;
  std::string spool_dir;
  std::string out_dir;
  std::string checkpoint_dir;
  dsa::Cycles checkpoint_every = 200000;
  int checkpoint_full_every = 1;
  std::size_t max_active = 0;
  bool drain = false;
  int crash_after = -1;
  unsigned lanes = 1;
  dsa::FsFaultConfig fault_config;
  dsa::FsFaultWindow fault_window;  // staged; installed if --io-fault-at set
  bool fault_rate_set = false;
  unsigned jobs = dsa::JobsFromEnv(/*fallback=*/1);
  std::string gen_kind = "working-set";
  dsa::SystemSpec spec;
  spec.label = "dsa_sim";
  spec.core_words = 16384;
  spec.page_words = 512;
  spec.max_segment_extent = 512;
  spec.workload_segment_words = 512;
  spec.tlb_entries = 8;
  dsa::Cycles drum_latency = 6000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(argv[0], ("missing value after " + arg).c_str());
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_file = next();
    } else if (arg.rfind("--trace=", 0) == 0) {
      event_trace_file = arg.substr(std::strlen("--trace="));
      if (event_trace_file.empty()) {
        Usage(argv[0], "empty --trace= file name");
      }
    } else if (arg == "--batch") {
      batch_dir = next();
    } else if (arg == "--serve") {
      spool_dir = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--checkpoint") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      const std::string v = next();
      if (v == "completions") {
        checkpoint_every = 0;
      } else {
        checkpoint_every = ParseU64(argv[0], arg, v);
        if (checkpoint_every == 0) {
          Usage(argv[0],
                "--checkpoint-every 0 would disable the cadence; say "
                "--checkpoint-every completions to commit only at tenant completions");
        }
      }
    } else if (arg == "--checkpoint-full-every") {
      const std::uint64_t v = ParseU64(argv[0], arg, next());
      if (v == 0) {
        Usage(argv[0],
              "--checkpoint-full-every must be >= 1 (1 = every commit is a full cut)");
      }
      if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
        Usage(argv[0], "--checkpoint-full-every value out of range");
      }
      checkpoint_full_every = static_cast<int>(v);
    } else if (arg == "--max-active") {
      max_active = ParseU64(argv[0], arg, next());  // 0 = uncapped (documented)
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--crash-after") {
      const std::uint64_t v = ParseU64(argv[0], arg, next());
      if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
        Usage(argv[0], "--crash-after value out of range");
      }
      crash_after = static_cast<int>(v);
    } else if (arg == "--lanes") {
      const std::string v = next();
      if (v == "hw") {
        lanes = 0;  // ServiceLoop reads 0 as hardware width
      } else {
        const std::uint64_t n = ParseU64(argv[0], arg, v);
        if (n == 0) {
          Usage(argv[0], "--lanes 0 is ambiguous; say --lanes hw for hardware width");
        }
        if (n > 1024) {
          Usage(argv[0], "--lanes value out of range (max 1024)");
        }
        lanes = static_cast<unsigned>(n);
      }
    } else if (arg == "--io-fault-at") {
      fault_window.first_op = ParseU64(argv[0], arg, next());
      if (fault_window.first_op == 0) {
        Usage(argv[0], "--io-fault-at ops are 1-based; 0 would never fire");
      }
    } else if (arg == "--io-fault-len") {
      fault_window.ops = ParseU64(argv[0], arg, next());  // 0 = persistent (documented)
    } else if (arg == "--io-fault-err") {
      const std::string v = next();
      if (v == "eio") {
        fault_window.err = EIO;
      } else if (v == "enospc") {
        fault_window.err = ENOSPC;
      } else {
        Usage(argv[0], "bad --io-fault-err (want eio|enospc)");
      }
    } else if (arg == "--io-fault-crash") {
      fault_window.crash = true;
    } else if (arg == "--io-fault-torn") {
      fault_window.torn_bytes = ParseU64(argv[0], arg, next());
    } else if (arg == "--io-fault-path") {
      fault_window.path_contains = next();
    } else if (arg == "--io-fault-rate") {
      fault_config.fail_rate = ParseDouble(argv[0], arg, next());
      if (fault_config.fail_rate < 0.0 || fault_config.fail_rate > 1.0) {
        Usage(argv[0], "--io-fault-rate is a probability; it must lie in [0, 1]");
      }
      fault_rate_set = fault_config.fail_rate > 0.0;
    } else if (arg == "--io-fault-seed") {
      fault_config.seed = ParseU64(argv[0], arg, next());
    } else if (arg == "--jobs") {
      const std::string v = next();
      // "--jobs 0 = hardware width" is documented and used in the examples;
      // "hw" is the spelled-out synonym.
      const std::uint64_t n = v == "hw" ? 0 : ParseU64(argv[0], arg, v);
      if (n > 1024) {
        Usage(argv[0], "--jobs value out of range (max 1024)");
      }
      jobs = n == 0 ? dsa::HardwareJobs() : static_cast<unsigned>(n);
    } else if (arg == "--gen") {
      gen_kind = next();
    } else if (arg == "--dump-trace") {
      dump_file = next();
    } else if (arg == "--name-space") {
      const std::string v = next();
      if (v == "linear") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kLinear;
      } else if (v == "linseg") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kLinearlySegmented;
      } else if (v == "symseg") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kSymbolicallySegmented;
      } else {
        Usage(argv[0], "bad --name-space");
      }
    } else if (arg == "--unit") {
      const std::string v = next();
      if (v == "pages") {
        spec.characteristics.unit = dsa::AllocationUnit::kUniformPages;
      } else if (v == "blocks") {
        spec.characteristics.unit = dsa::AllocationUnit::kVariableBlocks;
      } else if (v == "mixed") {
        spec.characteristics.unit = dsa::AllocationUnit::kMixedPages;
      } else {
        Usage(argv[0], "bad --unit");
      }
    } else if (arg == "--advice") {
      spec.characteristics.predictive = dsa::PredictiveInformation::kAccepted;
      spec.characteristics.prediction_source = dsa::PredictionSource::kProgrammer;
    } else if (arg == "--core") {
      spec.core_words = ParseU64(argv[0], arg, next());
      if (spec.core_words == 0) {
        Usage(argv[0], "--core needs at least one word of working storage");
      }
    } else if (arg == "--page") {
      spec.page_words = ParseU64(argv[0], arg, next());
      if (spec.page_words == 0) {
        Usage(argv[0], "--page needs at least one word per page");
      }
    } else if (arg == "--segment") {
      spec.max_segment_extent = ParseU64(argv[0], arg, next());
      if (spec.max_segment_extent == 0) {
        Usage(argv[0], "--segment needs at least one word");
      }
      spec.workload_segment_words = spec.max_segment_extent;
    } else if (arg == "--replacement") {
      const std::string v = next();
      if (v == "fifo") {
        spec.replacement = dsa::ReplacementStrategyKind::kFifo;
      } else if (v == "lru") {
        spec.replacement = dsa::ReplacementStrategyKind::kLru;
      } else if (v == "random") {
        spec.replacement = dsa::ReplacementStrategyKind::kRandom;
      } else if (v == "clock") {
        spec.replacement = dsa::ReplacementStrategyKind::kClock;
      } else if (v == "atlas") {
        spec.replacement = dsa::ReplacementStrategyKind::kAtlasLearning;
      } else if (v == "m44") {
        spec.replacement = dsa::ReplacementStrategyKind::kM44Class;
      } else if (v == "ws") {
        spec.replacement = dsa::ReplacementStrategyKind::kWorkingSet;
      } else {
        Usage(argv[0], "bad --replacement");
      }
    } else if (arg == "--fetch") {
      const std::string v = next();
      if (v == "demand") {
        spec.fetch = dsa::FetchStrategyKind::kDemand;
      } else if (v == "prefetch") {
        spec.fetch = dsa::FetchStrategyKind::kPrefetch;
      } else if (v == "advised") {
        spec.fetch = dsa::FetchStrategyKind::kAdvised;
        spec.characteristics.predictive = dsa::PredictiveInformation::kAccepted;
      } else {
        Usage(argv[0], "bad --fetch");
      }
    } else if (arg == "--tlb") {
      spec.tlb_entries = ParseU64(argv[0], arg, next());  // 0 = no associative memory
    } else if (arg == "--drum-latency") {
      drum_latency = ParseU64(argv[0], arg, next());
    } else {
      Usage(argv[0], ("unknown option " + arg).c_str());
    }
  }
  // Geometry sanity for the paged family (the builder DSA_ASSERTs on a
  // non-power-of-two page; make bad flags a usage error, not an abort).
  if (dsa::SpecIsPagedLinear(spec)) {
    if (!std::has_single_bit(spec.page_words)) {
      Usage(argv[0], "--page must be a power of two for paged configurations");
    }
    if (spec.core_words < spec.page_words) {
      Usage(argv[0], "--core must hold at least one page (--core >= --page)");
    }
  }
  spec.backing_level = dsa::MakeDrumLevel("drum", 1u << 22, /*word_time=*/2, drum_latency);

  // Durable-IO fault injection: stack a FaultInjectingFs over the real
  // filesystem and hand it to whichever mode runs.  Kept alive for the whole
  // process — the service and batch paths only borrow the pointer.
  std::unique_ptr<dsa::FaultInjectingFs> fault_fs;
  if (fault_window.first_op > 0) {
    fault_config.windows.push_back(fault_window);
  }
  if (!fault_config.windows.empty() || fault_rate_set) {
    fault_fs = std::make_unique<dsa::FaultInjectingFs>(&dsa::SystemFs(), fault_config);
  }

  if (!spool_dir.empty()) {
    if (!batch_dir.empty() || !trace_file.empty() || !dump_file.empty()) {
      Usage(argv[0], "--serve is exclusive with --batch / --trace FILE / --dump-trace");
    }
    dsa::ServeConfig serve_config;
    serve_config.spool_dir = spool_dir;
    serve_config.out_dir = out_dir.empty() ? spool_dir + ".out" : out_dir;
    serve_config.checkpoint_dir =
        checkpoint_dir.empty() ? spool_dir + ".ckpt" : checkpoint_dir;
    serve_config.checkpoint_every = checkpoint_every;
    serve_config.checkpoint_full_every = checkpoint_full_every;
    serve_config.load_control.max_active = max_active;
    serve_config.stop_after_commits = crash_after;
    serve_config.rescan_spool = !drain;
    serve_config.lanes = lanes;
    serve_config.fs = fault_fs.get();
    return RunServe(spec, serve_config, crash_after >= 0, fault_fs.get());
  }

  if (!batch_dir.empty()) {
    if (!trace_file.empty() || !dump_file.empty()) {
      Usage(argv[0], "--batch is exclusive with --trace FILE / --dump-trace");
    }
    if (!dsa::SpecIsBuildable(spec)) {
      std::fprintf(stderr,
                   "dsa_sim: a linear name space with variable allocation units has no "
                   "relocation handle; pick --name-space linseg/symseg or --unit pages\n");
      return 2;
    }
    dsa::BatchOptions batch_options;
    batch_options.dir = batch_dir;
    batch_options.jobs = jobs;
    batch_options.event_trace_prefix = event_trace_file;
    batch_options.fs = fault_fs.get();
    return RunBatch(spec, batch_options);
  }

  // Obtain the workload.
  dsa::ReferenceTrace trace;
  if (!trace_file.empty()) {
    std::ifstream in(trace_file);
    if (!in) {
      Usage(argv[0], "cannot open --trace file");
    }
    auto parsed = dsa::ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "dsa_sim: %s:%zu: %s\n", trace_file.c_str(), parsed.error().line,
                   parsed.error().message.c_str());
      return 2;
    }
    trace = std::move(parsed.value());
  } else {
    trace = GenerateWorkload(gen_kind);
  }

  if (!dump_file.empty()) {
    std::ofstream out(dump_file);
    if (!out) {
      Usage(argv[0], "cannot open --dump-trace file");
    }
    WriteReferenceTrace(trace, &out);
    std::printf("wrote %zu references to %s\n", trace.size(), dump_file.c_str());
    return 0;
  }

  if (!dsa::SpecIsBuildable(spec)) {
    std::fprintf(stderr,
                 "dsa_sim: a linear name space with variable allocation units has no "
                 "relocation handle; pick --name-space linseg/symseg or --unit pages\n");
    return 2;
  }

  // Unbounded retention: the verifier needs the complete stream.
  dsa::EventTracer tracer(/*capacity=*/0);
  if (!event_trace_file.empty()) {
    spec.tracer = &tracer;
  }

  const auto system = dsa::BuildSystem(spec);
  const dsa::VmReport report = system->Run(trace);

  // The report block, rebuilt from the metrics registry (byte-identical to
  // the printf block it replaced; test_metrics_format pins the formatting).
  std::fputs(dsa::RenderVmReport(report, dsa::Describe(system->characteristics()), trace.label)
                 .c_str(),
             stdout);

  if (!event_trace_file.empty()) {
    const std::vector<dsa::TraceEvent> events = tracer.Snapshot();
    std::ofstream out(event_trace_file);
    if (!out) {
      Usage(argv[0], "cannot open --trace= output file");
    }
    dsa::WriteEventsJsonl(events, &out);
    out.close();

    dsa::TraceVerifierConfig verifier_config;
    verifier_config.frame_count = spec.page_words == 0
                                      ? std::nullopt
                                      : std::optional<std::size_t>(static_cast<std::size_t>(
                                            spec.core_words / spec.page_words));
    const dsa::TraceReplayVerifier verifier(verifier_config);
    const std::vector<dsa::TraceViolation> violations = verifier.Verify(events);
    std::printf("event trace      %zu events -> %s (%s)\n", events.size(),
                event_trace_file.c_str(),
                violations.empty() ? "verified" : "VERIFIER VIOLATIONS");
    if (!violations.empty()) {
      std::fputs(dsa::TraceReplayVerifier::Describe(violations).c_str(), stderr);
      return 1;
    }
  }
  return 0;
}
