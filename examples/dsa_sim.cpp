// dsa_sim — command-line driver for the storage allocation simulator.
//
// Reads a reference trace (the text format of src/trace/trace_io.h) from a
// file or generates a synthetic one, builds the system described by the
// flags through the SystemBuilder, runs the trace, and prints the report.
//
// Usage:
//   dsa_sim [options]
//     --trace FILE            read a trace file (default: synthetic working-set)
//     --gen KIND              synthetic workload: working-set|loop|sequential|random|zipf
//     --name-space KIND       linear|linseg|symseg            (default linear)
//     --unit KIND             pages|blocks|mixed              (default pages)
//     --advice                accept predictive directives
//     --core WORDS            working storage size            (default 16384)
//     --page WORDS            page size                       (default 512)
//     --segment WORDS         max/workload segment size       (default 512)
//     --replacement KIND      fifo|lru|random|clock|atlas|m44|ws (default lru)
//     --fetch KIND            demand|prefetch|advised         (default demand)
//     --tlb N                 associative memory entries      (default 8)
//     --drum-latency CYCLES   backing start-up latency        (default 6000)
//     --dump-trace FILE       write the workload out in trace format and exit
//
// Examples:
//   dsa_sim --name-space symseg --unit blocks --replacement clock
//   dsa_sim --gen loop --replacement atlas --core 8192
//   dsa_sim --dump-trace /tmp/t.trace && dsa_sim --trace /tmp/t.trace

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/vm/system_builder.h"

namespace {

[[noreturn]] void Usage(const char* argv0, const char* complaint) {
  std::fprintf(stderr, "dsa_sim: %s\n(see the header comment of %s.cpp for usage)\n",
               complaint, argv0);
  std::exit(2);
}

dsa::ReferenceTrace GenerateWorkload(const std::string& kind) {
  if (kind == "working-set") {
    dsa::WorkingSetTraceParams params;
    params.extent = 1 << 16;
    params.region_words = 256;
    params.regions_per_phase = 16;
    params.phases = 6;
    params.phase_length = 10000;
    return MakeWorkingSetTrace(params);
  }
  if (kind == "loop") {
    dsa::LoopTraceParams params;
    params.extent = 1 << 16;
    params.body_words = 4096;
    params.advance_words = 1024;
    params.iterations = 6;
    params.length = 60000;
    return MakeLoopTrace(params);
  }
  if (kind == "sequential") {
    dsa::SequentialTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeSequentialTrace(params);
  }
  if (kind == "random") {
    dsa::RandomTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeRandomTrace(params);
  }
  if (kind == "zipf") {
    dsa::ZipfTraceParams params;
    params.extent = 1 << 16;
    params.length = 60000;
    return MakeZipfTrace(params);
  }
  std::fprintf(stderr, "dsa_sim: unknown --gen kind '%s'\n", kind.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  std::string dump_file;
  std::string gen_kind = "working-set";
  dsa::SystemSpec spec;
  spec.label = "dsa_sim";
  spec.core_words = 16384;
  spec.page_words = 512;
  spec.max_segment_extent = 512;
  spec.workload_segment_words = 512;
  spec.tlb_entries = 8;
  dsa::Cycles drum_latency = 6000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(argv[0], ("missing value after " + arg).c_str());
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--gen") {
      gen_kind = next();
    } else if (arg == "--dump-trace") {
      dump_file = next();
    } else if (arg == "--name-space") {
      const std::string v = next();
      if (v == "linear") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kLinear;
      } else if (v == "linseg") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kLinearlySegmented;
      } else if (v == "symseg") {
        spec.characteristics.name_space = dsa::NameSpaceKind::kSymbolicallySegmented;
      } else {
        Usage(argv[0], "bad --name-space");
      }
    } else if (arg == "--unit") {
      const std::string v = next();
      if (v == "pages") {
        spec.characteristics.unit = dsa::AllocationUnit::kUniformPages;
      } else if (v == "blocks") {
        spec.characteristics.unit = dsa::AllocationUnit::kVariableBlocks;
      } else if (v == "mixed") {
        spec.characteristics.unit = dsa::AllocationUnit::kMixedPages;
      } else {
        Usage(argv[0], "bad --unit");
      }
    } else if (arg == "--advice") {
      spec.characteristics.predictive = dsa::PredictiveInformation::kAccepted;
      spec.characteristics.prediction_source = dsa::PredictionSource::kProgrammer;
    } else if (arg == "--core") {
      spec.core_words = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--page") {
      spec.page_words = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--segment") {
      spec.max_segment_extent = std::strtoull(next().c_str(), nullptr, 10);
      spec.workload_segment_words = spec.max_segment_extent;
    } else if (arg == "--replacement") {
      const std::string v = next();
      if (v == "fifo") {
        spec.replacement = dsa::ReplacementStrategyKind::kFifo;
      } else if (v == "lru") {
        spec.replacement = dsa::ReplacementStrategyKind::kLru;
      } else if (v == "random") {
        spec.replacement = dsa::ReplacementStrategyKind::kRandom;
      } else if (v == "clock") {
        spec.replacement = dsa::ReplacementStrategyKind::kClock;
      } else if (v == "atlas") {
        spec.replacement = dsa::ReplacementStrategyKind::kAtlasLearning;
      } else if (v == "m44") {
        spec.replacement = dsa::ReplacementStrategyKind::kM44Class;
      } else if (v == "ws") {
        spec.replacement = dsa::ReplacementStrategyKind::kWorkingSet;
      } else {
        Usage(argv[0], "bad --replacement");
      }
    } else if (arg == "--fetch") {
      const std::string v = next();
      if (v == "demand") {
        spec.fetch = dsa::FetchStrategyKind::kDemand;
      } else if (v == "prefetch") {
        spec.fetch = dsa::FetchStrategyKind::kPrefetch;
      } else if (v == "advised") {
        spec.fetch = dsa::FetchStrategyKind::kAdvised;
        spec.characteristics.predictive = dsa::PredictiveInformation::kAccepted;
      } else {
        Usage(argv[0], "bad --fetch");
      }
    } else if (arg == "--tlb") {
      spec.tlb_entries = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--drum-latency") {
      drum_latency = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      Usage(argv[0], ("unknown option " + arg).c_str());
    }
  }
  spec.backing_level = dsa::MakeDrumLevel("drum", 1u << 22, /*word_time=*/2, drum_latency);

  // Obtain the workload.
  dsa::ReferenceTrace trace;
  if (!trace_file.empty()) {
    std::ifstream in(trace_file);
    if (!in) {
      Usage(argv[0], "cannot open --trace file");
    }
    auto parsed = dsa::ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "dsa_sim: %s:%zu: %s\n", trace_file.c_str(), parsed.error().line,
                   parsed.error().message.c_str());
      return 2;
    }
    trace = std::move(parsed.value());
  } else {
    trace = GenerateWorkload(gen_kind);
  }

  if (!dump_file.empty()) {
    std::ofstream out(dump_file);
    if (!out) {
      Usage(argv[0], "cannot open --dump-trace file");
    }
    WriteReferenceTrace(trace, &out);
    std::printf("wrote %zu references to %s\n", trace.size(), dump_file.c_str());
    return 0;
  }

  if (!dsa::SpecIsBuildable(spec)) {
    std::fprintf(stderr,
                 "dsa_sim: a linear name space with variable allocation units has no "
                 "relocation handle; pick --name-space linseg/symseg or --unit pages\n");
    return 2;
  }

  const auto system = dsa::BuildSystem(spec);
  const dsa::VmReport report = system->Run(trace);

  std::printf("system           %s\n", dsa::Describe(system->characteristics()).c_str());
  std::printf("workload         %s (%llu references)\n", trace.label.c_str(),
              static_cast<unsigned long long>(report.references));
  std::printf("faults           %llu  (rate %.5f)\n",
              static_cast<unsigned long long>(report.faults), report.FaultRate());
  std::printf("bounds traps     %llu\n",
              static_cast<unsigned long long>(report.bounds_violations));
  std::printf("write-backs      %llu\n", static_cast<unsigned long long>(report.writebacks));
  std::printf("total cycles     %llu\n", static_cast<unsigned long long>(report.total_cycles));
  std::printf("mean map cost    %.2f cycles/ref\n", report.MeanTranslationCost());
  std::printf("wait fraction    %.3f\n", report.WaitFraction());
  std::printf("space-time       active %.3e, waiting %.3e (waiting %.1f%%)\n",
              report.space_time.active, report.space_time.waiting,
              100.0 * report.space_time.WaitingFraction());
  std::printf("peak residency   %llu words\n",
              static_cast<unsigned long long>(report.peak_resident_words));
  if (report.tlb_hit_rate > 0.0) {
    std::printf("assoc hit rate   %.3f\n", report.tlb_hit_rate);
  }
  return 0;
}
