// Unit tests for src/naming: linear, linearly segmented, and symbolically
// segmented name spaces — including the bookkeeping asymmetry of E8.

#include <gtest/gtest.h>

#include "src/naming/linear.h"
#include "src/naming/linearly_segmented.h"
#include "src/naming/symbolic.h"

namespace dsa {
namespace {

// --- LinearNameSpace -----------------------------------------------------------

TEST(LinearNameSpaceTest, ExtentBoundedByAddressBits) {
  LinearNameSpace names(10);
  EXPECT_EQ(names.extent(), 1024u);
  EXPECT_TRUE(names.Contains(Name{1023}));
  EXPECT_FALSE(names.Contains(Name{1024}));
}

TEST(LinearNameSpaceTest, ReducedLimit) {
  LinearNameSpace names(10, 100);
  EXPECT_TRUE(names.Contains(Name{99}));
  EXPECT_FALSE(names.Contains(Name{100}));
  names.SetExtent(200);
  EXPECT_TRUE(names.Contains(Name{150}));
}

TEST(LinearNameSpaceDeathTest, ExtentBeyondRepresentationAborts) {
  LinearNameSpace names(8);
  EXPECT_DEATH(names.SetExtent(257), "exceeds");
}

// --- LinearlySegmentedNameSpace ----------------------------------------------------

TEST(LinearlySegmentedTest, PackUnpackRoundTrip) {
  LinearlySegmentedNameSpace names(4, 20);  // 360/67 24-bit shape
  const SegmentedName original{SegmentId{5}, 123456};
  const auto packed = names.Pack(original);
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(names.Unpack(*packed), original);
}

TEST(LinearlySegmentedTest, SegmentNameOccupiesHighBits) {
  LinearlySegmentedNameSpace names(4, 20);
  const auto packed = names.Pack({SegmentId{3}, 7});
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(packed->value, (std::uint64_t{3} << 20) | 7);
}

TEST(LinearlySegmentedTest, LimitsEnforced) {
  LinearlySegmentedNameSpace names(4, 20);
  EXPECT_EQ(names.max_segments(), 16u);
  EXPECT_EQ(names.max_segment_extent(), 1u << 20);
  const auto bad_segment = names.Pack({SegmentId{16}, 0});
  ASSERT_FALSE(bad_segment.has_value());
  EXPECT_EQ(bad_segment.error(), NamePackError::kSegmentOutOfRange);
  const auto bad_offset = names.Pack({SegmentId{0}, 1u << 20});
  ASSERT_FALSE(bad_offset.has_value());
  EXPECT_EQ(bad_offset.error(), NamePackError::kOffsetOutOfRange);
}

TEST(LinearlySegmentedTest, RunAllocationIsContiguous) {
  LinearlySegmentedNameSpace names(4, 20);
  const auto a = names.AllocateRun(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, SegmentId{0});
  const auto b = names.AllocateRun(4);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, SegmentId{4});
  EXPECT_EQ(names.free_names(), 8u);
}

TEST(LinearlySegmentedTest, NameSpaceFragmentsLikeStorage) {
  LinearlySegmentedNameSpace names(4, 20);
  // Allocate 4 runs of 4, free runs 0 and 2: 8 names free, max run 4.
  const auto r0 = names.AllocateRun(4);
  const auto r1 = names.AllocateRun(4);
  const auto r2 = names.AllocateRun(4);
  const auto r3 = names.AllocateRun(4);
  ASSERT_TRUE(r0 && r1 && r2 && r3);
  names.FreeRun(*r0, 4);
  names.FreeRun(*r2, 4);
  EXPECT_EQ(names.free_names(), 8u);
  EXPECT_EQ(names.largest_free_run(), 4u);
  // "One does not need to search a dictionary for a group of available
  // contiguous segment names" — with linear names one does, and here it fails.
  EXPECT_FALSE(names.AllocateRun(8).has_value());
  EXPECT_EQ(names.run_failures(), 1u);
}

TEST(LinearlySegmentedTest, FreedRunsCoalesce) {
  LinearlySegmentedNameSpace names(4, 20);
  const auto r0 = names.AllocateRun(4);
  const auto r1 = names.AllocateRun(4);
  ASSERT_TRUE(r0 && r1);
  names.FreeRun(*r0, 4);
  names.FreeRun(*r1, 4);
  EXPECT_EQ(names.largest_free_run(), 16u);
  EXPECT_EQ(names.name_hole_count(), 1u);
}

TEST(LinearlySegmentedTest, BookkeepingOpsAccumulate) {
  LinearlySegmentedNameSpace names(6, 10);
  names.AllocateRun(2);
  const std::uint64_t after_first = names.bookkeeping_ops();
  EXPECT_GT(after_first, 0u);
  names.FreeRun(SegmentId{0}, 2);
  EXPECT_GT(names.bookkeeping_ops(), after_first);
}

// --- SymbolicSegmentDirectory -------------------------------------------------------

TEST(SymbolicDirectoryTest, CreateLookupDestroy) {
  SymbolicSegmentDirectory dir;
  const auto alpha = dir.Create("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(dir.Lookup("alpha"), alpha);
  EXPECT_EQ(dir.SymbolOf(*alpha), "alpha");
  EXPECT_TRUE(dir.Destroy("alpha"));
  EXPECT_FALSE(dir.Lookup("alpha").has_value());
}

TEST(SymbolicDirectoryTest, DuplicateSymbolRejected) {
  SymbolicSegmentDirectory dir;
  ASSERT_TRUE(dir.Create("x").has_value());
  EXPECT_FALSE(dir.Create("x").has_value());
}

TEST(SymbolicDirectoryTest, DestroyOfUnknownReturnsFalse) {
  SymbolicSegmentDirectory dir;
  EXPECT_FALSE(dir.Destroy("ghost"));
}

TEST(SymbolicDirectoryTest, IdsRecycleWithoutFragmentation) {
  SymbolicSegmentDirectory dir(/*max_segments=*/4);
  const auto a = dir.Create("a");
  const auto b = dir.Create("b");
  const auto c = dir.Create("c");
  const auto d = dir.Create("d");
  ASSERT_TRUE(a && b && c && d);
  EXPECT_FALSE(dir.Create("e").has_value());  // full
  // Destroy two arbitrary symbols; creation succeeds immediately — no
  // contiguity, no search, no tolerated fragmentation.
  dir.Destroy("b");
  dir.Destroy("d");
  EXPECT_TRUE(dir.Create("e").has_value());
  EXPECT_TRUE(dir.Create("f").has_value());
  EXPECT_EQ(dir.size(), 4u);
}

TEST(SymbolicDirectoryTest, BookkeepingIsConstantPerOperation) {
  // E8's claim in miniature: symbolic bookkeeping is one op per call,
  // regardless of churn history; linear run allocation scans holes.
  SymbolicSegmentDirectory dir;
  for (int i = 0; i < 100; ++i) {
    dir.Create("s" + std::to_string(i));
  }
  const std::uint64_t before = dir.bookkeeping_ops();
  dir.Create("one-more");
  EXPECT_EQ(dir.bookkeeping_ops(), before + 1);
}

TEST(SymbolicDirectoryTest, ReverseLookupOfUnknownIdIsEmpty) {
  SymbolicSegmentDirectory dir;
  EXPECT_FALSE(dir.SymbolOf(SegmentId{42}).has_value());
}

}  // namespace
}  // namespace dsa
