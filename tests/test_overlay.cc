// Tests for the static overlay plan and the execute-register extension to
// the two-level mapper.

#include <gtest/gtest.h>

#include "src/map/two_level.h"
#include "src/trace/synthetic.h"
#include "src/vm/overlay.h"

namespace dsa {
namespace {

OverlayPlanConfig SmallPlan() {
  OverlayPlanConfig config;
  config.region_words = 512;
  config.resident_regions = 2;
  config.backing = MakeDrumLevel("drum", 1u << 16, 2, 100);
  return config;
}

TEST(OverlayPlanTest, NoSwapsWhenProgramFitsThePlan) {
  StaticOverlayPlan plan(SmallPlan());
  SequentialTraceParams params;
  params.extent = 1024;  // exactly two regions
  params.length = 5000;
  const OverlayReport report = plan.Run(MakeSequentialTrace(params));
  EXPECT_EQ(report.overlay_swaps, 2u);  // the two initial loads only
  EXPECT_EQ(report.words_transferred, 1024u);
}

TEST(OverlayPlanTest, RegionCrossingsSwapWholeRegions) {
  StaticOverlayPlan plan(SmallPlan());
  // Ping-pong across three regions with two slots: every switch swaps.
  ReferenceTrace trace;
  trace.label = "ping-pong";
  for (int lap = 0; lap < 10; ++lap) {
    for (std::uint64_t region = 0; region < 3; ++region) {
      trace.refs.push_back({Name{region * 512}, AccessKind::kRead});
    }
  }
  const OverlayReport report = plan.Run(trace);
  // LRU on 3 regions cycled through 2 slots always evicts the region needed
  // next: every one of the 30 references swaps.
  EXPECT_EQ(report.overlay_swaps, 30u);
  EXPECT_EQ(report.words_transferred, 30u * 512);
}

TEST(OverlayPlanTest, CyclesIncludeTransfers) {
  StaticOverlayPlan plan(SmallPlan());
  ReferenceTrace trace;
  trace.refs = {{Name{0}, AccessKind::kRead}};
  const OverlayReport report = plan.Run(trace);
  const Cycles transfer = SmallPlan().backing.TransferTime(512);
  EXPECT_EQ(report.total_cycles, 1u + transfer);
  EXPECT_EQ(report.transfer_cycles, transfer);
  EXPECT_EQ(report.SwapRate(), 1.0);
}

TEST(OverlayPlanTest, PlannedCoreWordsIsWorstCase) {
  StaticOverlayPlan plan(SmallPlan());
  EXPECT_EQ(plan.PlannedCoreWords(), 1024u);
}

// --- The 360/67 ninth associative register ------------------------------------

class ExecuteRegisterTest : public ::testing::Test {
 protected:
  ExecuteRegisterTest()
      : mapper_(4, 12, 256, /*tlb_entries=*/0, MappingCostModel{},
                /*dedicated_execute_register=*/true) {
    mapper_.DefineSegment(SegmentId{1}, 1024);
    mapper_.MapPage(SegmentId{1}, PageId{0}, FrameId{2});
    mapper_.MapPage(SegmentId{1}, PageId{1}, FrameId{3});
  }
  SegmentPageMapper mapper_;
};

TEST_F(ExecuteRegisterTest, InstructionStreamHitsAfterFirstFetch) {
  // First instruction fetch walks both tables (cost 4); later fetches from
  // the same page hit the ninth register (cost 1).
  const auto first = mapper_.TranslateSegmented({SegmentId{1}, 0}, AccessKind::kExecute, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cost, 4u);
  const auto second = mapper_.TranslateSegmented({SegmentId{1}, 4}, AccessKind::kExecute, 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->cost, 1u);
  EXPECT_TRUE(second->associative_hit);
  EXPECT_EQ(second->address, PhysicalAddress{2 * 256 + 4});
  EXPECT_EQ(mapper_.execute_register_hits(), 1u);
}

TEST_F(ExecuteRegisterTest, DataAccessesDoNotUseTheRegister) {
  mapper_.TranslateSegmented({SegmentId{1}, 0}, AccessKind::kExecute, 0);
  const auto data = mapper_.TranslateSegmented({SegmentId{1}, 4}, AccessKind::kRead, 1);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->cost, 4u);  // both tables again: no TLB, register is IC-only
  EXPECT_EQ(mapper_.execute_register_hits(), 0u);
}

TEST_F(ExecuteRegisterTest, CrossingPagesReloadsTheRegister) {
  mapper_.TranslateSegmented({SegmentId{1}, 0}, AccessKind::kExecute, 0);
  const auto crossed = mapper_.TranslateSegmented({SegmentId{1}, 300}, AccessKind::kExecute, 1);
  ASSERT_TRUE(crossed.has_value());
  EXPECT_EQ(crossed->cost, 4u);  // page 1: register held page 0
  const auto back_hit = mapper_.TranslateSegmented({SegmentId{1}, 301}, AccessKind::kExecute, 2);
  ASSERT_TRUE(back_hit.has_value());
  EXPECT_EQ(back_hit->cost, 1u);
}

TEST_F(ExecuteRegisterTest, UnmapInvalidatesTheRegister) {
  mapper_.TranslateSegmented({SegmentId{1}, 0}, AccessKind::kExecute, 0);
  mapper_.UnmapPage(SegmentId{1}, PageId{0});
  const auto after = mapper_.TranslateSegmented({SegmentId{1}, 0}, AccessKind::kExecute, 1);
  ASSERT_FALSE(after.has_value());
  EXPECT_EQ(after.error().kind, FaultKind::kPageNotPresent);
}

}  // namespace
}  // namespace dsa
