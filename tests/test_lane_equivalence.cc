// lanes=1 ≡ lanes=N equivalence: the acceptance contract of the concurrent
// multi-lane executors (src/sched/multi_lane.h, src/serve/service.h with
// ServeConfig::lanes), checked at the byte level like its sibling
// test_parallel_equivalence.cc checks the sweep executor.
//
// Four properties:
//
//   * the multi-lane simulator's per-group event JSONL, reports, block
//     ledgers, merged metrics table, and merged renamed event stream are
//     byte-identical at every lane width;
//   * the lanes=1 path is pinned bit-for-bit to the PRE-lanes serial engine
//     (a plain MultiprogrammingSimulator with no backing binder), so adding
//     the concurrent layer changed nothing for serial users;
//   * the merged renamed stream replays through TraceReplayVerifier as one
//     system with the summed frame count;
//   * a full in-process service run (spool -> reports + JSONL + SERVICE.txt)
//     produces a byte-identical output tree at lanes 1, 2, and 4.
//
// The *Stress* case reruns the widest configuration under --gtest_repeat
// with rotating seeds; CI drives it under the thread sanitizer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/verifier.h"
#include "src/sched/multi_lane.h"
#include "src/sched/multiprogramming.h"
#include "src/serve/service.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

namespace fs = std::filesystem;

// --- multi-lane simulator groups --------------------------------------------

std::vector<LaneGroupSpec> BuildGroups(std::uint64_t seed) {
  // Five groups over three lanes at width 4: uneven deal, mixed schedulers,
  // one group with fault injection, two distinct page sizes so the shared
  // heap runs more than one size class.
  const SchedulerKind schedulers[] = {
      SchedulerKind::kRoundRobin, SchedulerKind::kResidencyAware,
      SchedulerKind::kRoundRobin, SchedulerKind::kResidencyAware,
      SchedulerKind::kRoundRobin};
  std::vector<LaneGroupSpec> groups;
  for (std::size_t g = 0; g < 5; ++g) {
    LaneGroupSpec spec;
    spec.label = "group-" + std::to_string(g);
    spec.config.page_words = g % 2 == 0 ? 256 : 128;
    spec.config.core_words = spec.config.page_words * (6 + g);
    spec.config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                              /*rotational_delay=*/2000);
    spec.config.quantum = 800;
    spec.config.context_switch_cycles = 10;
    spec.config.scheduler = schedulers[g];
    spec.config.load_control.policy = LoadControlPolicy::kAdaptiveFaultRate;
    spec.config.load_control.window = 20000;
    spec.config.load_control.min_window_references = 32;
    spec.config.load_control.high_fault_rate = 0.05;
    spec.config.load_control.low_fault_rate = 0.02;
    spec.config.load_control.hysteresis = 5000;
    if (g == 2) {
      spec.config.fault_injection.rates = {.transient_transfer = 0.05,
                                           .permanent_slot = 0.01};
      spec.config.fault_injection.seed = seed ^ 0xfau;
    }
    const std::size_t jobs = 2 + g % 3;
    for (std::size_t j = 0; j < jobs; ++j) {
      LoopTraceParams params;
      params.extent = 2048;
      params.body_words = 512;
      params.advance_words = 256;
      params.iterations = 3;
      params.length = 900;
      params.seed = seed * 1000003 + g * 131 + j;
      spec.jobs.emplace_back("g" + std::to_string(g) + "-j" + std::to_string(j),
                             MakeLoopTrace(params));
    }
    groups.push_back(std::move(spec));
  }
  return groups;
}

void ExpectSameOutcome(const MultiLaneOutcome& reference,
                       const MultiLaneOutcome& outcome, unsigned lanes) {
  ASSERT_EQ(outcome.groups.size(), reference.groups.size()) << "lanes=" << lanes;
  for (std::size_t g = 0; g < reference.groups.size(); ++g) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes) + " group=" + std::to_string(g));
    const LaneGroupResult& want = reference.groups[g];
    const LaneGroupResult& got = outcome.groups[g];
    EXPECT_EQ(got.label, want.label);
    EXPECT_EQ(got.events_jsonl, want.events_jsonl);
    EXPECT_EQ(got.report.total_cycles, want.report.total_cycles);
    EXPECT_EQ(got.report.faults, want.report.faults);
    EXPECT_EQ(got.report.deactivations, want.report.deactivations);
    EXPECT_EQ(got.report.reactivations, want.report.reactivations);
    // The binder ledger is a pure function of the load/evict sequence —
    // deterministic, unlike the heap's CAS-retry telemetry.
    EXPECT_EQ(got.blocks_acquired, want.blocks_acquired);
    EXPECT_EQ(got.blocks_released, want.blocks_released);
    EXPECT_EQ(got.blocks_acquired, got.blocks_released);
  }
  EXPECT_EQ(outcome.merged_metrics_table, reference.merged_metrics_table)
      << "lanes=" << lanes;
  EXPECT_EQ(outcome.merged_events, reference.merged_events) << "lanes=" << lanes;
  EXPECT_EQ(outcome.total_frames, reference.total_frames);
  EXPECT_EQ(outcome.total_jobs, reference.total_jobs);
  EXPECT_EQ(outcome.heap_outstanding, 0u)
      << "lanes=" << lanes << ": blocks leaked past the final drain";
}

TEST(LaneEquivalenceTest, MultiLaneOutputByteIdenticalAtEveryWidth) {
  const std::vector<LaneGroupSpec> groups = BuildGroups(0x1a9e5u);
  const MultiLaneOutcome reference =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 1}, groups).Run();
  for (const unsigned lanes : {2u, 3u, 4u}) {
    const MultiLaneOutcome outcome =
        MultiLaneSimulator(MultiLaneConfig{.lanes = lanes}, groups).Run();
    ExpectSameOutcome(reference, outcome, lanes);
  }
}

TEST(LaneEquivalenceTest, SmallArenasForceSharedPoolTrafficSameBytes) {
  // A tiny refill batch and watermark maximise shared-pool CAS traffic per
  // allocation — the worst case for any accidental identity leak.
  const std::vector<LaneGroupSpec> groups = BuildGroups(0xbeefu);
  MultiLaneConfig tight;
  tight.lanes = 4;
  tight.refill_batch = 1;
  tight.high_watermark = 2;
  const MultiLaneOutcome reference =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 1}, groups).Run();
  const MultiLaneOutcome outcome = MultiLaneSimulator(tight, groups).Run();
  ExpectSameOutcome(reference, outcome, 4);
}

TEST(LaneEquivalenceTest, Lanes1PinnedToPreLanesSerialEngine) {
  // Golden parity: the lanes=1 path must be bit-for-bit the pre-PR serial
  // engine.  Run every group through a plain MultiprogrammingSimulator with
  // NO backing binder and compare serialized events and report fields
  // against the multi-lane lanes=1 results.
  const std::vector<LaneGroupSpec> groups = BuildGroups(0x901du);
  const MultiLaneOutcome outcome =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 1}, groups).Run();
  ASSERT_EQ(outcome.groups.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SCOPED_TRACE("group=" + std::to_string(g));
    EventTracer tracer(/*capacity=*/0);
    MultiprogramConfig config = groups[g].config;
    config.tracer = &tracer;
    MultiprogrammingSimulator sim(config);
    for (const auto& [label, trace] : groups[g].jobs) {
      sim.AddJob(label, trace);
    }
    const MultiprogramReport report = sim.Run();
    std::ostringstream jsonl;
    WriteEventsJsonl(tracer.Snapshot(), &jsonl);
    EXPECT_EQ(outcome.groups[g].events_jsonl, jsonl.str())
        << "the concurrent layer perturbed the serial engine's event stream";
    EXPECT_EQ(outcome.groups[g].report.total_cycles, report.total_cycles);
    EXPECT_EQ(outcome.groups[g].report.faults, report.faults);
    EXPECT_EQ(outcome.groups[g].report.deactivations, report.deactivations);
    EXPECT_EQ(outcome.groups[g].report.reactivations, report.reactivations);
  }
}

TEST(LaneEquivalenceTest, MergedRenamedStreamReplaysAsOneSystem) {
  const std::vector<LaneGroupSpec> groups = BuildGroups(0x5ca1eu);
  const MultiLaneOutcome outcome =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 4}, groups).Run();

  // Each group's local stream replays against its own frame count...
  for (std::size_t g = 0; g < groups.size(); ++g) {
    TraceVerifierConfig config;
    config.frame_count = static_cast<std::size_t>(groups[g].config.core_words /
                                                  groups[g].config.page_words);
    config.page_job_shift = MultiprogrammingSimulator::kJobShift;
    const auto violations =
        TraceReplayVerifier(config).Verify(outcome.groups[g].events);
    EXPECT_TRUE(violations.empty())
        << "group " << g << ": " << TraceReplayVerifier::Describe(violations);
  }

  // ...and the renamed merge replays as ONE installation with the summed
  // frame count: disjoint frame/job/page namespaces, time-monotonic.
  TraceVerifierConfig merged_config;
  merged_config.frame_count = outcome.total_frames;
  merged_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
  const auto violations =
      TraceReplayVerifier(merged_config).Verify(outcome.merged_events);
  EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);
  std::size_t total = 0;
  for (const LaneGroupResult& result : outcome.groups) {
    total += result.events.size();
  }
  EXPECT_EQ(outcome.merged_events.size(), total);
  for (std::size_t i = 1; i < outcome.merged_events.size(); ++i) {
    ASSERT_LE(outcome.merged_events[i - 1].time, outcome.merged_events[i].time);
  }
}

// --- the service loop -------------------------------------------------------

struct Scratch {
  explicit Scratch(const std::string& tag)
      : root(fs::temp_directory_path() /
             ("dsa_lanes_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(root);
    fs::create_directories(root / "spool");
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(root, ec);
  }
  std::string Spool() const { return (root / "spool").string(); }
  std::string Out(const std::string& name) const { return (root / name).string(); }

  fs::path root;
};

SystemSpec ServeSpec() {
  SystemSpec spec;
  spec.label = "lanes-test";
  spec.core_words = 2048;
  spec.page_words = 128;  // 16 frames per tenant
  spec.tlb_entries = 4;
  spec.backing_level = MakeDrumLevel("drum", 1u << 17, /*word_time=*/2,
                                     /*rotational_delay=*/500);
  return spec;
}

void SpoolTenant(const Scratch& scratch, const std::string& name,
                 std::uint64_t seed, std::size_t phase_length) {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  params.regions_per_phase = 20;  // more regions than frames: steady faulting
  params.phase_length = phase_length;
  params.phases = 3;
  params.seed = seed;
  const ReferenceTrace trace = MakeWorkingSetTrace(params);
  std::ofstream out(fs::path(scratch.Spool()) / name);
  ASSERT_TRUE(out) << name;
  WriteReferenceTrace(trace, &out);
}

std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[entry.path().filename().string()] = std::move(bytes);
  }
  return files;
}

std::map<std::string, std::string> RunServiceAtLanes(const Scratch& scratch,
                                                     unsigned lanes,
                                                     std::size_t tenants) {
  ServeConfig config;
  config.spool_dir = scratch.Spool();
  config.out_dir = scratch.Out("lanes" + std::to_string(lanes) + ".out");
  config.checkpoint_dir = scratch.Out("lanes" + std::to_string(lanes) + ".ckpt");
  config.checkpoint_every = 20000;
  config.rescan_spool = false;
  config.lanes = lanes;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  EXPECT_TRUE(outcome.has_value()) << "lanes=" << lanes;
  if (outcome.has_value()) {
    EXPECT_TRUE(outcome->finished) << "lanes=" << lanes;
    EXPECT_EQ(outcome->tenants_completed, tenants) << "lanes=" << lanes;
    EXPECT_EQ(outcome->tenants_rejected, 0u) << "lanes=" << lanes;
  }
  return SlurpDir(config.out_dir);
}

TEST(LaneEquivalenceTest, ServiceOutputTreeByteIdenticalAcrossLanes) {
  Scratch scratch("serve");
  SpoolTenant(scratch, "alpha.trace", 11, /*phase_length=*/900);
  SpoolTenant(scratch, "beta.trace", 22, /*phase_length=*/1200);
  SpoolTenant(scratch, "gamma.trace", 33, /*phase_length=*/600);
  SpoolTenant(scratch, "delta.trace", 44, /*phase_length=*/750);

  const auto reference = RunServiceAtLanes(scratch, 1, 4);
  ASSERT_FALSE(reference.empty());
  for (const unsigned lanes : {2u, 4u}) {
    const auto tree = RunServiceAtLanes(scratch, lanes, 4);
    ASSERT_EQ(tree.size(), reference.size()) << "lanes=" << lanes;
    for (const auto& [name, bytes] : reference) {
      ASSERT_TRUE(tree.count(name)) << "lanes=" << lanes << " missing " << name;
      EXPECT_EQ(tree.at(name), bytes)
          << "lanes=" << lanes << ": " << name << " differs from the serial run";
    }
  }
}

// --- stress (rerun by ctest -L stress with --gtest_repeat under TSan) -------

TEST(LaneEquivalenceStressTest, WideLanesStayByteIdenticalUnderRotatingSeeds) {
  // --gtest_repeat reruns in-process; the counter gives every repetition a
  // fresh workload, so the TSan pass sweeps different interleavings AND
  // different load shapes.
  static std::uint64_t repeat = 0;
  const std::uint64_t seed = 0xface + 0x9e3779b97f4a7c15ULL * ++repeat;
  const std::vector<LaneGroupSpec> groups = BuildGroups(seed);
  const MultiLaneOutcome reference =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 1}, groups).Run();
  const MultiLaneOutcome outcome =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 4}, groups).Run();
  ExpectSameOutcome(reference, outcome, 4);
}

}  // namespace
}  // namespace dsa
