// Unit tests for the segregated size-class allocator family: the size-class
// map, quick lists with deferred coalescing, the slab pool, the allocator
// factory, and compaction interop.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/alloc/allocator_factory.h"
#include "src/alloc/compaction.h"
#include "src/alloc/segregated_fit.h"
#include "src/alloc/slab_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace dsa {
namespace {

// ---------------------------------------------------------------- size map

TEST(SizeClassMapTest, LinearThenGeometricBounds) {
  const SizeClassMap map{SizeClassMapConfig{}};
  // Linear region: one class per 16-word step up to 256.
  EXPECT_EQ(map.ClassFor(1), map.ClassFor(16));
  EXPECT_NE(map.ClassFor(16), map.ClassFor(17));
  EXPECT_EQ(map.ClassFor(17), map.ClassFor(32));
  EXPECT_EQ(map.UpperBound(map.ClassFor(1)), 16u);
  EXPECT_EQ(map.UpperBound(map.ClassFor(255)), 256u);
  // Geometric region above 256: each (2^k, 2^(k+1)] range is cut into 4
  // equal bands, so (256, 512] yields bounds 320/384/448/512.
  EXPECT_EQ(map.UpperBound(map.ClassFor(257)), 320u);
  EXPECT_EQ(map.UpperBound(map.ClassFor(321)), 384u);
  EXPECT_EQ(map.UpperBound(map.ClassFor(512)), 512u);
  EXPECT_EQ(map.UpperBound(map.ClassFor(513)), 640u);
  EXPECT_EQ(map.UpperBound(map.ClassFor(65536)), 65536u);
}

TEST(SizeClassMapTest, EverySizeLandsInItsClass) {
  const SizeClassMap map{SizeClassMapConfig{}};
  for (WordCount size = 1; size <= 70000; ++size) {
    const std::size_t cls = map.ClassFor(size);
    ASSERT_LT(cls, map.size());
    ASSERT_LE(size, map.UpperBound(cls)) << "size " << size;
    if (cls > 0) {
      ASSERT_GT(size, map.UpperBound(cls - 1)) << "size " << size;
    }
  }
}

TEST(SizeClassMapTest, ClassesAreMonotone) {
  const SizeClassMap map{SizeClassMapConfig{}};
  std::size_t prev = 0;
  for (WordCount size = 1; size <= 70000; ++size) {
    const std::size_t cls = map.ClassFor(size);
    ASSERT_GE(cls, prev);
    prev = cls;
  }
}

TEST(SizeClassMapTest, SingleClassSpansEverything) {
  const SizeClassMap map = SizeClassMap::SingleClass();
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.ClassFor(1), 0u);
  EXPECT_EQ(map.ClassFor(1u << 30), 0u);
}

// ----------------------------------------------------------- segregated fit

TEST(SegregatedFitTest, AllocateFreeRoundTrip) {
  SegregatedFitAllocator alloc(4096);
  const auto a = alloc.Allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->addr.value, 0u);
  EXPECT_EQ(a->size, 100u);
  EXPECT_EQ(alloc.live_words(), 100u);
  alloc.Free(a->addr);
  EXPECT_EQ(alloc.live_words(), 0u);
  alloc.DrainQuickLists();
  const auto holes = alloc.HoleSizes();
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], 4096u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(SegregatedFitTest, QuickListServesRepeatFreesInPlace) {
  SegregatedFitConfig config;
  config.quick_size_max = 64;          // park the test's 64-word frees
  config.park_watermark_words = 1024;  // and keep them parked
  SegregatedFitAllocator alloc(4096, config);
  const auto a = alloc.Allocate(64);
  const auto b = alloc.Allocate(64);
  ASSERT_TRUE(a && b);
  alloc.Free(b->addr);
  EXPECT_EQ(alloc.parked_blocks(), 1u);
  // Same class again: the parked block is handed back whole, same address.
  const auto c = alloc.Allocate(64);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->addr, b->addr);
  EXPECT_EQ(alloc.quick_stats().quick_hits, 1u);
  EXPECT_EQ(alloc.parked_blocks(), 0u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(SegregatedFitTest, QuickHitIsCheaperThanColdAllocation) {
  SegregatedFitConfig config;
  config.quick_size_max = 64;
  SegregatedFitAllocator alloc(1u << 16, config);
  // Cold path: carve from the wilderness.
  const auto a = alloc.Allocate(64);
  ASSERT_TRUE(a.has_value());
  const Cycles cold = alloc.stats().alloc_cycles;
  alloc.Free(a->addr);
  // Warm path: quick-list hit.
  const Cycles before = alloc.stats().alloc_cycles;
  ASSERT_TRUE(alloc.Allocate(64).has_value());
  const Cycles warm = alloc.stats().alloc_cycles - before;
  EXPECT_LT(warm, cold);
}

TEST(SegregatedFitTest, WatermarkTriggersFullDrain) {
  SegregatedFitConfig config;
  config.park_watermark_words = 100;
  config.quick_size_max = 64;
  SegregatedFitAllocator alloc(4096, config);
  std::vector<Block> blocks;
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(*alloc.Allocate(40));
  }
  alloc.Free(blocks[0].addr);
  alloc.Free(blocks[1].addr);
  EXPECT_EQ(alloc.parked_words(), 80u);  // under the watermark: still parked
  alloc.Free(blocks[2].addr);            // 120 > 100: full drain
  EXPECT_EQ(alloc.parked_words(), 0u);
  EXPECT_GE(alloc.quick_stats().drains, 1u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(SegregatedFitTest, OverflowingQuickListFlushesThatClass) {
  SegregatedFitConfig config;
  config.quick_list_capacity = 2;
  config.quick_size_max = 64;
  SegregatedFitAllocator alloc(1u << 16, config);
  std::vector<Block> blocks;
  for (int i = 0; i < 6; ++i) {
    blocks.push_back(*alloc.Allocate(64));
  }
  alloc.Free(blocks[0].addr);
  alloc.Free(blocks[1].addr);
  EXPECT_EQ(alloc.parked_blocks(), 2u);
  alloc.Free(blocks[2].addr);  // overflow: the class flushes, then parks
  EXPECT_EQ(alloc.parked_blocks(), 1u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(SegregatedFitTest, ClassMissEmitsEventAndDrainsParked) {
  EventTracer tracer;
  SegregatedFitConfig config;
  config.quick_size_max = 128;       // park the test's 128-word frees
  config.park_watermark_words = 256;  // keep both parked until the miss
  SegregatedFitAllocator alloc(256, config);
  alloc.SetTracer(&tracer);
  // Fill storage with two blocks, free both (both park).
  const auto a = alloc.Allocate(128);
  const auto b = alloc.Allocate(128);
  ASSERT_TRUE(a && b);
  alloc.Free(a->addr);
  alloc.Free(b->addr);
  ASSERT_EQ(alloc.parked_words(), 256u);
  // A request larger than any parked block: class miss, deferred coalesce,
  // then the merged block satisfies it.
  const auto big = alloc.Allocate(200);
  ASSERT_TRUE(big.has_value());
  bool saw_miss = false;
  bool saw_coalesce = false;
  for (const TraceEvent& event : tracer.Snapshot()) {
    saw_miss = saw_miss || event.kind == EventKind::kSizeClassMiss;
    saw_coalesce = saw_coalesce || event.kind == EventKind::kDeferredCoalesce;
  }
  EXPECT_TRUE(saw_miss);
  EXPECT_TRUE(saw_coalesce);
  EXPECT_EQ(alloc.quick_stats().class_misses, 1u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(SegregatedFitTest, EagerModeNeverParks) {
  SegregatedFitConfig config;
  config.quick_list_capacity = 0;
  SegregatedFitAllocator alloc(4096, config);
  EXPECT_EQ(alloc.name(), "segregated-fit/eager");
  const auto a = alloc.Allocate(64);
  const auto b = alloc.Allocate(64);
  ASSERT_TRUE(a && b);
  alloc.Free(a->addr);
  alloc.Free(b->addr);
  EXPECT_EQ(alloc.parked_words(), 0u);
  const auto holes = alloc.HoleSizes();
  ASSERT_EQ(holes.size(), 1u);  // eager coalescing merged everything
  EXPECT_EQ(holes[0], 4096u);
}

TEST(SegregatedFitTest, PublishesPerClassOccupancyMetrics) {
  MetricsRegistry registry;
  SegregatedFitConfig config;
  config.quick_size_max = 64;
  SegregatedFitAllocator alloc(1u << 16, config);
  const auto a = alloc.Allocate(64);
  ASSERT_TRUE(a.has_value());
  alloc.Free(a->addr);
  alloc.PublishMetrics(&registry, "alloc");
  EXPECT_EQ(registry.GetCounter("alloc.quick_parks")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("alloc.parked_words")->value(), 64u);
  const std::size_t cls = alloc.size_classes().ClassFor(64);
  const std::string base = "alloc.class" + std::string(cls < 10 ? "0" : "") +
                           std::to_string(cls) + ".parked_blocks";
  EXPECT_EQ(registry.GetCounter(base)->value(), 1u);
}

TEST(SegregatedFitTest, CompactionDrainsQuickListsAndPacks) {
  SegregatedFitConfig config;
  config.quick_size_max = 128;         // park the test's 100-word frees
  config.park_watermark_words = 1024;  // stay parked until compaction drains
  SegregatedFitAllocator alloc(4096, config);
  std::vector<Block> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(*alloc.Allocate(100));
  }
  for (int i = 0; i < 8; i += 2) {
    alloc.Free(blocks[static_cast<std::size_t>(i)].addr);
  }
  ASSERT_GT(alloc.parked_words(), 0u);
  CompactionEngine engine(CpuPackingChannel());
  const CompactionResult result = engine.Compact(&alloc, nullptr);
  EXPECT_EQ(alloc.parked_words(), 0u);  // PrepareForCompaction drained
  EXPECT_EQ(result.holes_after, 1u);
  // Live blocks are packed from address 0 upward.
  WordCount next = 0;
  for (const Block& block : alloc.LiveBlocks()) {
    EXPECT_EQ(block.addr.value, next);
    next += block.size;
  }
  EXPECT_EQ(next, alloc.reserved_words());
  EXPECT_TRUE(alloc.CheckInvariants());
}

// ------------------------------------------------------------------- slab

TEST(SlabPoolTest, GrantsWholeChunks) {
  SlabPoolAllocator alloc(1024, SlabPoolConfig{64});
  const auto a = alloc.Allocate(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->addr.value, 0u);
  EXPECT_EQ(a->size, 64u);  // whole chunk, internal waste included
  EXPECT_EQ(alloc.live_words(), 10u);
  EXPECT_EQ(alloc.reserved_words(), 64u);
}

TEST(SlabPoolTest, OversizedRequestsFail) {
  SlabPoolAllocator alloc(1024, SlabPoolConfig{64});
  EXPECT_FALSE(alloc.Allocate(65).has_value());
  EXPECT_EQ(alloc.stats().failures, 1u);
}

TEST(SlabPoolTest, FreedChunkIsReusedLifo) {
  SlabPoolAllocator alloc(1024, SlabPoolConfig{64});
  const auto a = alloc.Allocate(64);
  const auto b = alloc.Allocate(64);
  ASSERT_TRUE(a && b);
  alloc.Free(a->addr);
  const auto c = alloc.Allocate(32);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->addr, a->addr);  // most recently freed chunk first
}

TEST(SlabPoolTest, HolesMergeAcrossAdjacentFreeChunks) {
  SlabPoolAllocator alloc(256, SlabPoolConfig{64});
  const auto a = alloc.Allocate(64);
  const auto b = alloc.Allocate(64);
  const auto c = alloc.Allocate(64);
  ASSERT_TRUE(a && b && c);
  // chunks 0,1,2 live; chunk 3 free.  Free chunks 0 and 1: holes are
  // [0,128) and [192,256).
  alloc.Free(a->addr);
  alloc.Free(b->addr);
  const auto holes = alloc.HoleSizes();
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], 128u);
  EXPECT_EQ(holes[1], 64u);
}

TEST(SlabPoolTest, ExhaustionFailsCleanly) {
  SlabPoolAllocator alloc(128, SlabPoolConfig{64});
  ASSERT_TRUE(alloc.Allocate(64).has_value());
  ASSERT_TRUE(alloc.Allocate(64).has_value());
  EXPECT_FALSE(alloc.Allocate(1).has_value());
}

// ---------------------------------------------------------------- factory

TEST(AllocatorFactoryTest, BuildsEveryKind) {
  const struct {
    PlacementStrategyKind kind;
    const char* name;
  } cases[] = {
      {PlacementStrategyKind::kFirstFit, "variable/first-fit"},
      {PlacementStrategyKind::kNextFit, "variable/next-fit"},
      {PlacementStrategyKind::kBestFit, "variable/best-fit"},
      {PlacementStrategyKind::kWorstFit, "variable/worst-fit"},
      {PlacementStrategyKind::kTwoEnded, "variable/two-ended"},
      {PlacementStrategyKind::kBuddy, "buddy"},
      {PlacementStrategyKind::kRiceChain, "rice-chain"},
      {PlacementStrategyKind::kSegregatedFit, "segregated-fit"},
      {PlacementStrategyKind::kSlabPool, "slab-pool/64"},
  };
  for (const auto& c : cases) {
    const std::unique_ptr<Allocator> alloc = MakeAllocator(c.kind, 1u << 16);
    ASSERT_NE(alloc, nullptr);
    EXPECT_EQ(alloc->name(), c.name);
    EXPECT_EQ(alloc->capacity(), 1u << 16);
    // Every design satisfies a small request and accounts for it.
    const auto block = alloc->Allocate(8);
    ASSERT_TRUE(block.has_value()) << c.name;
    EXPECT_EQ(alloc->live_words(), 8u) << c.name;
    EXPECT_GE(alloc->stats().alloc_cycles, 1u) << c.name;  // the tariff is charged
  }
}

TEST(AllocatorFactoryTest, SegregatedOptionsReachTheAllocator) {
  AllocatorBuildOptions options;
  options.segregated.quick_list_capacity = 0;
  const auto alloc = MakeAllocator(PlacementStrategyKind::kSegregatedFit, 4096, options);
  EXPECT_EQ(alloc->name(), "segregated-fit/eager");
}

}  // namespace
}  // namespace dsa
