// Property and parity tests: the optimised data structures are checked
// against brutally simple reference models on randomized inputs.
//
//   * FreeList (address-ordered map + size index) vs a plain occupancy
//     bitmap: hole inventory, coalescing, and both O(log n) placement
//     queries must match a linear scan on every step of a random
//     alloc/free workload.
//   * OPT replacement (Belady farthest-next-use) vs exhaustive search over
//     every possible eviction schedule on small traces: Belady's rule must
//     achieve exactly the true minimum fault count.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "src/alloc/free_list.h"
#include "src/core/rng.h"
#include "src/paging/lifetime.h"

namespace dsa {
namespace {

// ------------------------------------------------- FreeList vs bitmap ----

// The reference model: one bool per word.  Every query is a linear scan.
class BitmapFreeModel {
 public:
  explicit BitmapFreeModel(WordCount capacity) : free_(capacity, true) {}

  void Insert(Block hole) {
    for (std::uint64_t w = hole.addr.value; w < hole.end(); ++w) {
      ASSERT_FALSE(free_[w]) << "double free at word " << w;
      free_[w] = true;
    }
  }

  void TakeRange(PhysicalAddress addr, WordCount size) {
    for (std::uint64_t w = addr.value; w < addr.value + size; ++w) {
      ASSERT_TRUE(free_[w]) << "allocating a used word " << w;
      free_[w] = false;
    }
  }

  bool RangeIsFree(PhysicalAddress addr, WordCount size) const {
    for (std::uint64_t w = addr.value; w < addr.value + size; ++w) {
      if (w >= free_.size() || !free_[w]) {
        return false;
      }
    }
    return true;
  }

  // Maximal runs of free words, in address order.
  std::vector<Block> Holes() const {
    std::vector<Block> holes;
    std::uint64_t w = 0;
    while (w < free_.size()) {
      if (!free_[w]) {
        ++w;
        continue;
      }
      const std::uint64_t start = w;
      while (w < free_.size() && free_[w]) {
        ++w;
      }
      holes.push_back(Block{PhysicalAddress{start}, w - start});
    }
    return holes;
  }

  std::optional<PhysicalAddress> BestFit(WordCount size) const {
    std::optional<Block> best;
    for (const Block& hole : Holes()) {
      if (hole.size >= size && (!best || hole.size < best->size)) {
        best = hole;  // first hole of each size wins: lowest address on ties
      }
    }
    if (!best) {
      return std::nullopt;
    }
    return best->addr;
  }

  std::optional<PhysicalAddress> WorstFit(WordCount size) const {
    std::optional<Block> worst;
    for (const Block& hole : Holes()) {
      if (hole.size >= size && (!worst || hole.size > worst->size)) {
        worst = hole;
      }
    }
    if (!worst) {
      return std::nullopt;
    }
    return worst->addr;
  }

 private:
  std::vector<bool> free_;
};

void ExpectParity(const FreeList& list, const BitmapFreeModel& model, WordCount capacity,
                  Rng* rng) {
  const std::vector<Block> expected = model.Holes();
  ASSERT_EQ(list.Holes(), expected);
  ASSERT_EQ(list.hole_count(), expected.size());

  WordCount total = 0;
  WordCount largest = 0;
  for (const Block& hole : expected) {
    total += hole.size;
    largest = std::max(largest, hole.size);
  }
  ASSERT_EQ(list.total_free(), total);
  ASSERT_EQ(list.largest_hole(), largest);

  // Probe both placement queries and the occupancy predicate at a few
  // random sizes/addresses per step.
  for (int probe = 0; probe < 4; ++probe) {
    const WordCount size = 1 + rng->Below(capacity / 4);
    ASSERT_EQ(list.SmallestHoleAtLeast(size), model.BestFit(size)) << "size " << size;
    ASSERT_EQ(list.LargestHoleAtLeast(size), model.WorstFit(size)) << "size " << size;
    const PhysicalAddress addr{rng->Below(capacity)};
    const WordCount span = 1 + rng->Below(16);
    ASSERT_EQ(list.RangeIsFree(addr, span), model.RangeIsFree(addr, span))
        << "addr " << addr.value << " span " << span;
  }
}

TEST(FreeListParityTest, RandomAllocFreeWorkloadMatchesBitmapModel) {
  constexpr WordCount kCapacity = 512;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    FreeList list(kCapacity);
    BitmapFreeModel model(kCapacity);
    std::map<std::uint64_t, WordCount> live;  // addr -> size of allocations

    for (int step = 0; step < 600; ++step) {
      const bool do_alloc = live.empty() || rng.Below(100) < 60;
      if (do_alloc) {
        const WordCount size = 1 + rng.Below(24);
        // Alternate placement flavours so both indexes get exercised.
        const auto addr = (step % 2 == 0) ? list.SmallestHoleAtLeast(size)
                                          : list.LargestHoleAtLeast(size);
        if (addr.has_value()) {
          list.TakeRange(*addr, size);
          model.TakeRange(*addr, size);
          live.emplace(addr->value, size);
        }
      } else {
        auto it = live.begin();
        std::advance(it, rng.Below(live.size()));
        list.Insert(Block{PhysicalAddress{it->first}, it->second});
        model.Insert(Block{PhysicalAddress{it->first}, it->second});
        live.erase(it);
      }
      ExpectParity(list, model, kCapacity, &rng);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "parity broke at seed " << seed << " step " << step;
      }
    }

    // Free everything: coalescing must recover the single original hole.
    for (const auto& [addr, size] : live) {
      list.Insert(Block{PhysicalAddress{addr}, size});
    }
    EXPECT_EQ(list.hole_count(), 1u) << "seed " << seed;
    EXPECT_EQ(list.total_free(), kCapacity) << "seed " << seed;
    EXPECT_EQ(list.largest_hole(), kCapacity) << "seed " << seed;
  }
}

// ------------------------------------------------ OPT vs brute force -----

// True minimum fault count over every possible eviction schedule, by
// exhaustive recursion.  Exponential — keep traces tiny.
std::uint64_t BruteForceMinFaults(const std::vector<PageId>& refs, std::size_t position,
                                  std::vector<std::uint64_t> resident, std::size_t frames) {
  if (position == refs.size()) {
    return 0;
  }
  const std::uint64_t page = refs[position].value;
  if (std::find(resident.begin(), resident.end(), page) != resident.end()) {
    return BruteForceMinFaults(refs, position + 1, std::move(resident), frames);
  }
  if (resident.size() < frames) {
    resident.push_back(page);
    std::sort(resident.begin(), resident.end());  // canonical: set, not history
    return 1 + BruteForceMinFaults(refs, position + 1, std::move(resident), frames);
  }
  std::uint64_t best = UINT64_MAX;
  for (std::size_t victim = 0; victim < resident.size(); ++victim) {
    std::vector<std::uint64_t> next = resident;
    next[victim] = page;
    std::sort(next.begin(), next.end());
    best = std::min(best,
                    1 + BruteForceMinFaults(refs, position + 1, std::move(next), frames));
  }
  return best;
}

std::uint64_t OptFaults(const std::vector<PageId>& refs, std::size_t frames) {
  const LifetimeCurve curve = ComputeLifetimeCurve(refs, {frames},
                                                   ReplacementStrategyKind::kOpt);
  return curve.points.at(0).faults;
}

std::vector<PageId> RandomPageString(Rng* rng, std::size_t length, std::uint64_t pages) {
  std::vector<PageId> refs;
  refs.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    refs.push_back(PageId{rng->Below(pages)});
  }
  return refs;
}

TEST(OptParityTest, BeladyMatchesExhaustiveMinimumOnRandomTraces) {
  Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    const std::size_t frames = 2 + rng.Below(2);        // 2 or 3 frames
    const std::uint64_t pages = frames + 1 + rng.Below(3);  // up to frames+3 pages
    const std::vector<PageId> refs = RandomPageString(&rng, 12, pages);
    EXPECT_EQ(OptFaults(refs, frames), BruteForceMinFaults(refs, 0, {}, frames))
        << "round " << round << " frames " << frames << " pages " << pages;
  }
}

TEST(OptParityTest, BeladyMatchesExhaustiveMinimumOnAdversarialShapes) {
  // Shapes with known optima: pure loops (where LRU is pessimal) and
  // phase flips.
  const std::vector<std::vector<std::uint64_t>> traces = {
      {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2},  // loop of 3 over 2 frames
      {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3},  // loop of 4 over 3 frames
      {0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2},  // runs then recall
      {0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6},  // one hot page
  };
  for (const auto& raw : traces) {
    std::vector<PageId> refs;
    for (std::uint64_t p : raw) {
      refs.push_back(PageId{p});
    }
    for (std::size_t frames : {2u, 3u}) {
      EXPECT_EQ(OptFaults(refs, frames), BruteForceMinFaults(refs, 0, {}, frames))
          << "frames " << frames;
    }
  }
}

TEST(OptParityTest, NoOnlinePolicyBeatsOpt) {
  // Sanity anchor for the parity: on the same random strings, LRU and FIFO
  // never fault less than OPT.
  Rng rng(777);
  for (int round = 0; round < 10; ++round) {
    const std::vector<PageId> refs = RandomPageString(&rng, 200, 8);
    for (std::size_t frames : {2u, 4u}) {
      const std::uint64_t opt = OptFaults(refs, frames);
      for (ReplacementStrategyKind policy :
           {ReplacementStrategyKind::kLru, ReplacementStrategyKind::kFifo}) {
        const LifetimeCurve curve = ComputeLifetimeCurve(refs, {frames}, policy);
        EXPECT_GE(curve.points.at(0).faults, opt)
            << ToString(policy) << " beat OPT at " << frames << " frames";
      }
    }
  }
}

}  // namespace
}  // namespace dsa
