// Integration tests for the three VM families and the SystemBuilder.

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"
#include "src/vm/segmented_vm.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

PagedVmConfig SmallPagedConfig() {
  PagedVmConfig config;
  config.label = "test-paged";
  config.address_bits = 14;  // 16K-word name space
  config.core_words = 4096;
  config.page_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                       /*rotational_delay=*/500);
  config.replacement = ReplacementStrategyKind::kLru;
  return config;
}

ReferenceTrace SmallWorkload() {
  WorkingSetTraceParams params;
  params.extent = 1 << 14;
  params.region_words = 128;
  params.regions_per_phase = 8;
  params.phases = 4;
  params.phase_length = 4000;
  return MakeWorkingSetTrace(params);
}

// --- PagedLinearVm -----------------------------------------------------------------

TEST(PagedVmTest, CompulsoryFaultsOnSequentialSweep) {
  PagedVmConfig config = SmallPagedConfig();
  config.core_words = 1 << 14;  // everything fits: only compulsory misses
  PagedLinearVm vm(config);
  SequentialTraceParams params;
  params.extent = 1 << 14;
  params.length = 1 << 14;
  const VmReport report = vm.Run(MakeSequentialTrace(params));
  EXPECT_EQ(report.faults, (1u << 14) / 256);
  EXPECT_EQ(report.references, 1u << 14);
}

TEST(PagedVmTest, ReportCyclesDecompose) {
  PagedLinearVm vm(SmallPagedConfig());
  const VmReport report = vm.Run(SmallWorkload());
  EXPECT_EQ(report.total_cycles,
            report.compute_cycles + report.translation_cycles + report.wait_cycles);
  EXPECT_GT(report.faults, 0u);
  EXPECT_GT(report.space_time.total(), 0.0);
  EXPECT_LE(report.peak_resident_words, 4096u);
}

TEST(PagedVmTest, RunsAreReproducible) {
  PagedLinearVm vm(SmallPagedConfig());
  const ReferenceTrace trace = SmallWorkload();
  const VmReport a = vm.Run(trace);
  const VmReport b = vm.Run(trace);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.space_time.active, b.space_time.active);
}

TEST(PagedVmTest, SlowerBackingRaisesWaitingShareOfSpaceTime) {
  // Fig. 3's argument: the waiting shading grows with page-fetch time.
  PagedVmConfig fast = SmallPagedConfig();
  fast.backing_level = MakeDrumLevel("fast", 1u << 16, 1, 50);
  PagedVmConfig slow = SmallPagedConfig();
  slow.backing_level = MakeDiskLevel("slow", 1u << 16, 4, 20000);
  const ReferenceTrace trace = SmallWorkload();
  const VmReport fast_report = PagedLinearVm(fast).Run(trace);
  const VmReport slow_report = PagedLinearVm(slow).Run(trace);
  EXPECT_LT(fast_report.space_time.WaitingFraction(),
            slow_report.space_time.WaitingFraction());
}

TEST(PagedVmTest, OutOfNameSpaceCountsAsBoundsViolation) {
  PagedLinearVm vm(SmallPagedConfig());
  ReferenceTrace trace;
  trace.label = "bad";
  trace.refs = {{Name{1 << 14}, AccessKind::kRead}, {Name{0}, AccessKind::kRead}};
  const VmReport report = vm.Run(trace);
  EXPECT_EQ(report.bounds_violations, 1u);
  EXPECT_EQ(report.faults, 1u);  // the valid reference still pages in
}

TEST(PagedVmTest, TlbCutsTranslationCost) {
  PagedVmConfig no_tlb = SmallPagedConfig();
  no_tlb.tlb_entries = 0;
  PagedVmConfig with_tlb = SmallPagedConfig();
  with_tlb.tlb_entries = 8;
  const ReferenceTrace trace = SmallWorkload();
  const VmReport without = PagedLinearVm(no_tlb).Run(trace);
  const VmReport with = PagedLinearVm(with_tlb).Run(trace);
  EXPECT_LT(with.MeanTranslationCost(), without.MeanTranslationCost());
  EXPECT_GT(with.tlb_hit_rate, 0.5);
}

TEST(PagedVmTest, AtlasMapperHasConstantCost) {
  PagedVmConfig config = SmallPagedConfig();
  config.mapper = PagedMapperKind::kAtlasRegisters;
  PagedLinearVm vm(config);
  const VmReport report = vm.Run(SmallWorkload());
  // One associative search per translation; faulting references retry once.
  EXPECT_LE(report.MeanTranslationCost(), 1.1);
  EXPECT_GE(report.MeanTranslationCost(), 1.0);
}

TEST(PagedVmTest, AdviceImprovesPhasedWorkload) {
  PagedVmConfig plain = SmallPagedConfig();
  PagedVmConfig advised = SmallPagedConfig();
  advised.accept_advice = true;
  advised.fetch = FetchStrategyKind::kAdvised;

  // Phased program: 2 phases over disjoint 4K regions.
  ReferenceTrace trace;
  trace.label = "phased";
  Rng rng(5);
  for (int phase = 0; phase < 2; ++phase) {
    const WordCount base = static_cast<WordCount>(phase) * 4096;
    for (int i = 0; i < 4000; ++i) {
      trace.refs.push_back({Name{base + rng.Below(4096)}, AccessKind::kRead});
    }
  }

  PagedLinearVm vm(advised);
  // Run manually, advising the phase change shortly before it happens: the
  // old phase will not be needed, the new one will.
  VmReport ignore = vm.Run(ReferenceTrace{"reset", {}});
  (void)ignore;
  for (std::size_t i = 0; i < trace.refs.size(); ++i) {
    if (i == 4000) {  // the phase boundary: the old phase is dead
      for (WordCount w = 0; w < 4096; w += 256) {
        vm.AdviseWontNeed(Name{w});
      }
      for (WordCount w = 4096; w < 8192; w += 256) {
        vm.AdviseWillNeed(Name{w});
      }
    }
    vm.Step(trace.refs[i]);
  }
  const VmReport with_advice = vm.Snapshot();
  const VmReport without = PagedLinearVm(plain).Run(trace);
  EXPECT_LT(with_advice.faults, without.faults);
}

TEST(PagedVmDeathTest, CoreMustBePageMultiple) {
  PagedVmConfig config = SmallPagedConfig();
  config.core_words = 1000;
  EXPECT_DEATH(PagedLinearVm vm(config), "integral number");
}

// --- SegmentedVm --------------------------------------------------------------------

TEST(SegmentedVmTest, RunsWorkloadAndReports) {
  SegmentedVmConfig config;
  config.core_words = 4096;
  config.max_segment_extent = 512;
  config.workload_segment_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, 2, 500);
  SegmentedVm vm(config);
  const VmReport report = vm.Run(SmallWorkload());
  EXPECT_GT(report.faults, 0u);
  EXPECT_EQ(report.references, SmallWorkload().size());
  EXPECT_EQ(report.total_cycles,
            report.compute_cycles + report.translation_cycles + report.wait_cycles);
  EXPECT_LE(report.peak_resident_words, 4096u);
}

TEST(SegmentedVmTest, CharacteristicsFollowNaming) {
  SegmentedVmConfig config;
  config.symbolic_names = true;
  SegmentedVm symbolic(config);
  EXPECT_EQ(symbolic.characteristics().name_space, NameSpaceKind::kSymbolicallySegmented);
  config.symbolic_names = false;
  SegmentedVm linear(config);
  EXPECT_EQ(linear.characteristics().name_space, NameSpaceKind::kLinearlySegmented);
  EXPECT_EQ(linear.characteristics().unit, AllocationUnit::kVariableBlocks);
}

TEST(SegmentedVmTest, DescriptorCacheCutsMappingCost) {
  SegmentedVmConfig plain;
  plain.core_words = 4096;
  plain.workload_segment_words = 256;
  plain.max_segment_extent = 512;
  SegmentedVmConfig cached = plain;
  cached.descriptor_cache_entries = 24;
  const ReferenceTrace trace = SmallWorkload();
  const VmReport without = SegmentedVm(plain).Run(trace);
  const VmReport with = SegmentedVm(cached).Run(trace);
  EXPECT_LT(with.MeanTranslationCost(), without.MeanTranslationCost());
  EXPECT_GT(with.tlb_hit_rate, 0.5);
}

// --- PagedSegmentedVm ----------------------------------------------------------------

TEST(PagedSegmentedVmTest, RunsWorkloadAndReports) {
  PagedSegmentedVmConfig config;
  config.segment_bits = 6;
  config.offset_bits = 14;
  config.core_words = 4096;
  config.page_words = 256;
  config.workload_segment_words = 1024;
  config.tlb_entries = 8;
  config.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  PagedSegmentedVm vm(config);
  const VmReport report = vm.Run(SmallWorkload());
  EXPECT_GT(report.faults, 0u);
  EXPECT_GT(report.tlb_hit_rate, 0.0);
  EXPECT_EQ(report.total_cycles,
            report.compute_cycles + report.translation_cycles + report.wait_cycles);
}

TEST(PagedSegmentedVmTest, SegmentsLargerThanCoreAreUsable) {
  // "In the MULTICS system each segment can be larger than actual physical
  // working storage."
  PagedSegmentedVmConfig config;
  config.segment_bits = 4;
  config.offset_bits = 16;
  config.core_words = 2048;
  config.page_words = 256;
  config.workload_segment_words = 8192;  // 4x core
  config.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  PagedSegmentedVm vm(config);
  SequentialTraceParams params;
  params.extent = 8192;
  params.length = 16384;
  const VmReport report = vm.Run(MakeSequentialTrace(params));
  EXPECT_EQ(report.bounds_violations, 0u);
  EXPECT_GT(report.faults, 8192u / 256 - 1);
}

TEST(PagedSegmentedVmTest, AdviceRoundTrips) {
  PagedSegmentedVmConfig config;
  config.segment_bits = 6;
  config.offset_bits = 14;
  config.core_words = 4096;
  config.page_words = 256;
  config.workload_segment_words = 1024;
  config.accept_advice = true;
  config.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  PagedSegmentedVm vm(config);
  vm.AdviseKeepResident(SegmentedName{SegmentId{0}, 0});
  vm.AdviseWillNeed(SegmentedName{SegmentId{1}, 0});
  vm.AdviseWontNeed(SegmentedName{SegmentId{1}, 512});
  // No crash and the system still runs.
  const VmReport report = vm.Run(SmallWorkload());
  EXPECT_GT(report.references, 0u);
}

// --- SystemBuilder -----------------------------------------------------------------------

TEST(SystemBuilderTest, LinearPagedSpecBuildsPagedVm) {
  SystemSpec spec;
  spec.characteristics.name_space = NameSpaceKind::kLinear;
  spec.characteristics.unit = AllocationUnit::kUniformPages;
  spec.core_words = 4096;
  spec.page_words = 256;
  const auto system = BuildSystem(spec);
  EXPECT_EQ(system->characteristics().name_space, NameSpaceKind::kLinear);
  EXPECT_EQ(system->characteristics().unit, AllocationUnit::kUniformPages);
  const VmReport report = system->Run(SmallWorkload());
  EXPECT_GT(report.references, 0u);
}

TEST(SystemBuilderTest, SymbolicVariableSpecBuildsSegmentedVm) {
  SystemSpec spec;
  spec.characteristics = AuthorsFavoredCharacteristics();
  spec.core_words = 4096;
  spec.max_segment_extent = 512;
  spec.workload_segment_words = 256;
  const auto system = BuildSystem(spec);
  EXPECT_EQ(system->characteristics().name_space, NameSpaceKind::kSymbolicallySegmented);
  EXPECT_EQ(system->characteristics().unit, AllocationUnit::kVariableBlocks);
}

TEST(SystemBuilderTest, LinearlySegmentedPagedSpecBuildsTwoLevel) {
  SystemSpec spec;
  spec.characteristics.name_space = NameSpaceKind::kLinearlySegmented;
  spec.characteristics.unit = AllocationUnit::kMixedPages;
  spec.core_words = 4096;
  spec.page_words = 256;
  spec.workload_segment_words = 1024;
  const auto system = BuildSystem(spec);
  EXPECT_EQ(system->characteristics().unit, AllocationUnit::kMixedPages);
  const VmReport report = system->Run(SmallWorkload());
  EXPECT_GT(report.faults, 0u);
}

TEST(SystemBuilderTest, LinearVariableIsUnbuildable) {
  SystemSpec spec;
  spec.characteristics.name_space = NameSpaceKind::kLinear;
  spec.characteristics.unit = AllocationUnit::kVariableBlocks;
  EXPECT_FALSE(SpecIsBuildable(spec));
  EXPECT_DEATH(BuildSystem(spec), "design space");
}

TEST(SystemBuilderTest, PredictiveAxisControlsAdvice) {
  SystemSpec spec;
  spec.characteristics.predictive = PredictiveInformation::kAccepted;
  spec.core_words = 4096;
  spec.page_words = 256;
  const auto system = BuildSystem(spec);
  EXPECT_EQ(system->characteristics().predictive, PredictiveInformation::kAccepted);
}

}  // namespace
}  // namespace dsa
