// Unit tests for src/seg: descriptors/PRT, codewords, the segment manager,
// and ACSI-MATIC program descriptions.

#include <gtest/gtest.h>

#include <memory>

#include "src/seg/codeword.h"
#include "src/seg/descriptor.h"
#include "src/seg/program_description.h"
#include "src/seg/segment_manager.h"

namespace dsa {
namespace {

// --- ProgramReferenceTable -------------------------------------------------------

TEST(PrtTest, AllocatesLowestFreeEntry) {
  ProgramReferenceTable prt(4);
  EXPECT_EQ(prt.AllocateEntry(100), std::optional<std::size_t>{0});
  EXPECT_EQ(prt.AllocateEntry(200), std::optional<std::size_t>{1});
  prt.ReleaseEntry(0);
  EXPECT_EQ(prt.AllocateEntry(300), std::optional<std::size_t>{0});
}

TEST(PrtTest, FullTableRejects) {
  ProgramReferenceTable prt(1);
  ASSERT_TRUE(prt.AllocateEntry(10).has_value());
  EXPECT_FALSE(prt.AllocateEntry(10).has_value());
}

TEST(PrtTest, PresenceLifecycle) {
  ProgramReferenceTable prt(2);
  const std::size_t index = *prt.AllocateEntry(64);
  EXPECT_FALSE(prt.entry(index).presence);
  prt.MarkPresent(index, PhysicalAddress{512});
  EXPECT_TRUE(prt.entry(index).presence);
  EXPECT_EQ(prt.entry(index).base, PhysicalAddress{512});
  EXPECT_EQ(prt.entry(index).extent, 64u);
  prt.MarkAbsent(index);
  EXPECT_FALSE(prt.entry(index).presence);
}

TEST(PrtDeathTest, ReadingUnusedEntryAborts) {
  ProgramReferenceTable prt(2);
  EXPECT_DEATH(prt.entry(0), "unused");
}

// --- Codewords ---------------------------------------------------------------------

TEST(CodewordTest, ResolvesWithAutoIndexing) {
  IndexRegisterFile registers;
  registers.Set(3, 100);
  Codeword codeword;
  codeword.presence = true;
  codeword.base = PhysicalAddress{5000};
  codeword.extent = 200;
  codeword.index_register = 3;
  const auto addr = ResolveCodeword(codeword, registers, 50);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, PhysicalAddress{5150});  // base + offset + index register
}

TEST(CodewordTest, ZeroIndexRegisterIsPlainAccess) {
  IndexRegisterFile registers;
  Codeword codeword;
  codeword.presence = true;
  codeword.base = PhysicalAddress{10};
  codeword.extent = 8;
  const auto addr = ResolveCodeword(codeword, registers, 7);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, PhysicalAddress{17});
}

TEST(CodewordTest, BoundsCheckedAfterIndexing) {
  IndexRegisterFile registers;
  registers.Set(0, 190);
  Codeword codeword;
  codeword.presence = true;
  codeword.extent = 200;
  const auto addr = ResolveCodeword(codeword, registers, 15);  // 205 >= 200
  ASSERT_FALSE(addr.has_value());
  EXPECT_EQ(addr.error().kind, FaultKind::kBoundsViolation);
}

TEST(CodewordTest, AbsentSegmentTraps) {
  IndexRegisterFile registers;
  Codeword codeword;
  codeword.presence = false;
  codeword.extent = 100;
  const auto addr = ResolveCodeword(codeword, registers, 5);
  ASSERT_FALSE(addr.has_value());
  EXPECT_EQ(addr.error().kind, FaultKind::kSegmentNotPresent);
}

// --- SegmentManager ------------------------------------------------------------------

class SegmentManagerTest : public ::testing::Test {
 protected:
  SegmentManagerTest() { Rebuild({}); }

  void Rebuild(SegmentManagerConfig config) {
    if (config.core_words == 24000) {
      config.core_words = 2048;  // small core so eviction is reachable
      config.max_segment_extent = 1024;
    }
    backing_ = std::make_unique<BackingStore>(
        MakeDrumLevel("drum", 1u << 20, /*word_time=*/2, /*rotational_delay=*/100));
    manager_ = std::make_unique<SegmentManager>(config, backing_.get(), nullptr);
  }

  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<SegmentManager> manager_;
};

TEST_F(SegmentManagerTest, FetchOnFirstReference) {
  const SegmentId seg = manager_->Create(100);
  EXPECT_FALSE(manager_->IsResident(seg));
  const auto outcome = manager_->Access(seg, 0, AccessKind::kRead, 0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->segment_fault);
  EXPECT_GT(outcome->wait_cycles, 0u);
  EXPECT_TRUE(manager_->IsResident(seg));
  // Second access is a hit with no wait.
  const auto again = manager_->Access(seg, 50, AccessKind::kRead, 1000);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->segment_fault);
  EXPECT_EQ(again->address, PhysicalAddress{outcome->address.value + 50});
}

TEST_F(SegmentManagerTest, BoundsViolationIntercepted) {
  const SegmentId seg = manager_->Create(100);
  const auto outcome = manager_->Access(seg, 100, AccessKind::kRead, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, FaultKind::kBoundsViolation);
}

TEST_F(SegmentManagerTest, UnknownSegmentIsInvalid) {
  const auto outcome = manager_->Access(SegmentId{99}, 0, AccessKind::kRead, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, FaultKind::kInvalidSegment);
}

TEST_F(SegmentManagerTest, EvictionMakesRoom) {
  // Core is 2048 words; three 1000-word segments cannot coexist.
  const SegmentId a = manager_->Create(1000);
  const SegmentId b = manager_->Create(1000);
  const SegmentId c = manager_->Create(1000);
  Cycles now = 0;
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, now).has_value());
  ASSERT_TRUE(manager_->Access(b, 0, AccessKind::kRead, now).has_value());
  const auto outcome = manager_->Access(c, 0, AccessKind::kRead, now);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(manager_->IsResident(c));
  EXPECT_EQ(manager_->stats().evictions, 1u);
  EXPECT_FALSE(manager_->IsResident(a) && manager_->IsResident(b));
}

TEST_F(SegmentManagerTest, ModifiedSegmentWrittenBackOnEviction) {
  const SegmentId a = manager_->Create(1000);
  const SegmentId b = manager_->Create(1000);
  const SegmentId c = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kWrite, 0).has_value());
  ASSERT_TRUE(manager_->Access(b, 0, AccessKind::kRead, 1).has_value());
  ASSERT_TRUE(manager_->Access(c, 0, AccessKind::kRead, 2).has_value());
  EXPECT_GE(manager_->stats().writebacks, 1u);
}

TEST_F(SegmentManagerTest, RoundTripPreservesResidencyAccounting) {
  const SegmentId a = manager_->Create(500);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, 0).has_value());
  EXPECT_EQ(manager_->ResidentWords(), 500u);
  manager_->AdviseWontNeed(a, 10);
  EXPECT_EQ(manager_->ResidentWords(), 0u);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, 20).has_value());
  EXPECT_EQ(manager_->ResidentWords(), 500u);
}

TEST_F(SegmentManagerTest, PinnedSegmentSurvivesPressure) {
  const SegmentId keep = manager_->Create(800);
  ASSERT_TRUE(manager_->Access(keep, 0, AccessKind::kRead, 0).has_value());
  manager_->AdviseKeepResident(keep);
  for (int i = 0; i < 6; ++i) {
    const SegmentId other = manager_->Create(1000);
    ASSERT_TRUE(manager_->Access(other, 0, AccessKind::kRead, 10 + i).has_value());
  }
  EXPECT_TRUE(manager_->IsResident(keep));
}

TEST_F(SegmentManagerTest, WillNeedFetchesOnlyIntoExistingRoom) {
  const SegmentId a = manager_->Create(1000);
  const Cycles cost = manager_->AdviseWillNeed(a, 0);
  EXPECT_GT(cost, 0u);
  EXPECT_TRUE(manager_->IsResident(a));
  // Fill the rest of core, then advise another: no eviction for advice.
  const SegmentId b = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(b, 0, AccessKind::kRead, 1).has_value());
  const SegmentId c = manager_->Create(1000);
  EXPECT_EQ(manager_->AdviseWillNeed(c, 2), 0u);
  EXPECT_FALSE(manager_->IsResident(c));
  EXPECT_EQ(manager_->stats().evictions, 0u);
}

TEST_F(SegmentManagerTest, DestroyReleasesCoreAndBacking) {
  const SegmentId a = manager_->Create(500);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kWrite, 0).has_value());
  manager_->AdviseWontNeed(a, 1);  // forces a write-back copy
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, 2).has_value());
  manager_->Destroy(a);
  EXPECT_FALSE(manager_->Exists(a));
  EXPECT_EQ(manager_->ResidentWords(), 0u);
  EXPECT_EQ(backing_->slot_count(), 0u);
}

TEST_F(SegmentManagerTest, DynamicSegmentsGrowAndShrink) {
  const SegmentId a = manager_->Create(100);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, 0).has_value());
  // Grow while resident.
  const auto grown = manager_->Resize(a, 400, 1);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(manager_->ExtentOf(a), 400u);
  EXPECT_TRUE(manager_->Access(a, 399, AccessKind::kRead, 2).has_value());
  // Shrink: the tail becomes a bounds violation.
  ASSERT_TRUE(manager_->Resize(a, 50, 3).has_value());
  const auto tail = manager_->Access(a, 60, AccessKind::kRead, 4);
  ASSERT_FALSE(tail.has_value());
  EXPECT_EQ(tail.error().kind, FaultKind::kBoundsViolation);
}

TEST_F(SegmentManagerTest, ResizeBeyondMaximumRejected) {
  const SegmentId a = manager_->Create(100);
  const auto outcome = manager_->Resize(a, 4096, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, FaultKind::kBoundsViolation);
}

TEST_F(SegmentManagerTest, CompactionRescuesFragmentedCore) {
  SegmentManagerConfig config;
  config.core_words = 2048;
  config.max_segment_extent = 1024;
  config.compact_on_fragmentation = true;
  Rebuild(config);
  // Fill core with four 512-word segments, release two alternating ones:
  // 1024 words free but the largest hole is 512.
  SegmentId segs[4];
  for (auto& seg : segs) {
    seg = manager_->Create(512);
    ASSERT_TRUE(manager_->Access(seg, 0, AccessKind::kRead, 0).has_value());
  }
  manager_->AdviseWontNeed(segs[0], 1);
  manager_->AdviseWontNeed(segs[2], 1);
  // A 1024-word segment now requires compaction rather than eviction.
  const SegmentId big = manager_->Create(1024);
  ASSERT_TRUE(manager_->Access(big, 0, AccessKind::kRead, 2).has_value());
  EXPECT_EQ(manager_->stats().compactions, 1u);
  EXPECT_EQ(manager_->stats().evictions, 2u);  // only the advised releases
  // The surviving segments must still be accessible at their new homes.
  EXPECT_TRUE(manager_->Access(segs[1], 100, AccessKind::kRead, 3).has_value());
  EXPECT_TRUE(manager_->Access(segs[3], 100, AccessKind::kRead, 3).has_value());
}

TEST_F(SegmentManagerTest, RiceSecondChancePrefersCleanBackedSegments) {
  SegmentManagerConfig config;
  config.core_words = 2048;
  config.max_segment_extent = 1024;
  config.replacement = SegmentReplacementKind::kRiceSecondChance;
  Rebuild(config);
  const SegmentId clean = manager_->Create(1000);
  const SegmentId dirty = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(clean, 0, AccessKind::kRead, 0).has_value());
  // Give `clean` a backing copy by evicting and refetching it.
  manager_->AdviseWontNeed(clean, 1);
  ASSERT_TRUE(manager_->Access(clean, 0, AccessKind::kRead, 2).has_value());
  ASSERT_TRUE(manager_->Access(dirty, 0, AccessKind::kWrite, 3).has_value());
  const std::uint64_t writebacks_before = manager_->stats().writebacks;
  // Pressure: the clean, backed segment should be the victim (free discard).
  const SegmentId incoming = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(incoming, 0, AccessKind::kRead, 4).has_value());
  EXPECT_FALSE(manager_->IsResident(clean));
  EXPECT_TRUE(manager_->IsResident(dirty));
  EXPECT_EQ(manager_->stats().writebacks, writebacks_before);
}

TEST_F(SegmentManagerTest, CyclicReplacementSweepsSegments) {
  const SegmentId a = manager_->Create(1000);
  const SegmentId b = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(a, 0, AccessKind::kRead, 0).has_value());
  ASSERT_TRUE(manager_->Access(b, 0, AccessKind::kRead, 1).has_value());
  const SegmentId c = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(c, 0, AccessKind::kRead, 2).has_value());
  EXPECT_FALSE(manager_->IsResident(a));  // cursor starts at the lowest id
  const SegmentId d = manager_->Create(1000);
  ASSERT_TRUE(manager_->Access(d, 0, AccessKind::kRead, 3).has_value());
  EXPECT_FALSE(manager_->IsResident(b));  // sweep continues, not LRU/restart
}

TEST(SegmentManagerDeathTest, OversizedCreateAborts) {
  BackingStore backing(MakeDrumLevel("drum", 1u << 20, 2, 100));
  SegmentManagerConfig config;
  config.core_words = 2048;
  config.max_segment_extent = 1024;
  SegmentManager manager(config, &backing, nullptr);
  EXPECT_DEATH(manager.Create(2000), "maximum extent");
}

// --- ProgramDescription ----------------------------------------------------------------

TEST(ProgramDescriptionTest, AppliesPreloadAndPinning) {
  BackingStore backing(MakeDrumLevel("drum", 1u << 20, 2, 100));
  SegmentManagerConfig config;
  config.core_words = 4096;
  config.max_segment_extent = 1024;
  SegmentManager manager(config, &backing, nullptr);
  const SegmentId hot = manager.Create(512);
  const SegmentId cold = manager.Create(512);

  ProgramDescription description;
  description.Add({hot, PreferredMedium::kWorkingStorage, /*may_be_overlaid=*/false});
  description.Add({cold, PreferredMedium::kBackingStorage, /*may_be_overlaid=*/true});
  const Cycles transfer = description.ApplyTo(&manager, 0);
  EXPECT_GT(transfer, 0u);
  EXPECT_TRUE(manager.IsResident(hot));
  EXPECT_FALSE(manager.IsResident(cold));
  // The pinned segment survives heavy pressure.
  for (int i = 0; i < 8; ++i) {
    const SegmentId filler = manager.Create(1024);
    ASSERT_TRUE(manager.Access(filler, 0, AccessKind::kRead, 10 + i).has_value());
  }
  EXPECT_TRUE(manager.IsResident(hot));
}

TEST(ProgramDescriptionTest, UpdateReplacesDirective) {
  ProgramDescription description;
  description.Add({SegmentId{1}, PreferredMedium::kWorkingStorage, false});
  description.Update({SegmentId{1}, PreferredMedium::kBackingStorage, true});
  ASSERT_EQ(description.directives().size(), 1u);
  EXPECT_EQ(description.directives()[0].medium, PreferredMedium::kBackingStorage);
  description.Update({SegmentId{2}, PreferredMedium::kWorkingStorage, true});
  EXPECT_EQ(description.directives().size(), 2u);
}

TEST(ProgramDescriptionTest, UnknownSegmentsSkipped) {
  BackingStore backing(MakeDrumLevel("drum", 1u << 20, 2, 100));
  SegmentManagerConfig config;
  config.core_words = 2048;
  config.max_segment_extent = 1024;
  SegmentManager manager(config, &backing, nullptr);
  ProgramDescription description;
  description.Add({SegmentId{42}, PreferredMedium::kWorkingStorage, false});
  EXPECT_EQ(description.ApplyTo(&manager, 0), 0u);
}

}  // namespace
}  // namespace dsa
