// Tests for the seven appendix machine models and the survey harness.

#include <gtest/gtest.h>

#include "src/machines/survey.h"

namespace dsa {
namespace {

TEST(MachinesTest, AllSevenBuild) {
  const auto machines = MakeAllMachines();
  ASSERT_EQ(machines.size(), 7u);
  for (const Machine& machine : machines) {
    EXPECT_NE(machine.system, nullptr) << machine.description.name;
    EXPECT_FALSE(machine.description.notes.empty());
  }
}

TEST(MachinesTest, AppendixOrderAndNames) {
  const auto machines = MakeAllMachines();
  EXPECT_EQ(machines[0].description.appendix, "A.1");
  EXPECT_EQ(machines[0].description.name, "Ferranti ATLAS");
  EXPECT_EQ(machines[2].description.name, "Burroughs B5000");
  EXPECT_EQ(machines[6].description.appendix, "A.7");
}

TEST(MachinesTest, CharacteristicsMatchThePaper) {
  const auto machines = MakeAllMachines();
  // ATLAS: linear, no predictions, artificial contiguity, uniform pages.
  const Characteristics& atlas = machines[0].description.characteristics;
  EXPECT_EQ(atlas.name_space, NameSpaceKind::kLinear);
  EXPECT_EQ(atlas.predictive, PredictiveInformation::kNotAccepted);
  EXPECT_EQ(atlas.contiguity, ArtificialContiguity::kProvided);
  EXPECT_EQ(atlas.unit, AllocationUnit::kUniformPages);
  // M44/44X accepts the advise instructions.
  EXPECT_EQ(machines[1].description.characteristics.predictive,
            PredictiveInformation::kAccepted);
  // B5000: symbolically segmented variable blocks, no artificial contiguity.
  const Characteristics& b5000 = machines[2].description.characteristics;
  EXPECT_EQ(b5000.name_space, NameSpaceKind::kSymbolicallySegmented);
  EXPECT_EQ(b5000.unit, AllocationUnit::kVariableBlocks);
  EXPECT_EQ(b5000.contiguity, ArtificialContiguity::kNone);
  // MULTICS: linearly segmented, mixed page sizes, predictions accepted.
  const Characteristics& multics = machines[5].description.characteristics;
  EXPECT_EQ(multics.name_space, NameSpaceKind::kLinearlySegmented);
  EXPECT_EQ(multics.unit, AllocationUnit::kMixedPages);
  EXPECT_EQ(multics.predictive, PredictiveInformation::kAccepted);
  // 360/67: linearly segmented uniform pages, no predictions.
  const Characteristics& m67 = machines[6].description.characteristics;
  EXPECT_EQ(m67.name_space, NameSpaceKind::kLinearlySegmented);
  EXPECT_EQ(m67.unit, AllocationUnit::kUniformPages);
  EXPECT_EQ(m67.predictive, PredictiveInformation::kNotAccepted);
}

TEST(MachinesTest, HardwareFacilitiesMatchThePaper) {
  const auto machines = MakeAllMachines();
  // ATLAS pioneered trapping and mapping.
  EXPECT_TRUE(machines[0].description.facilities.Has(HardwareFacility::kAddressMapping));
  EXPECT_TRUE(
      machines[0].description.facilities.Has(HardwareFacility::kInvalidAccessTrapping));
  // B5000 has no small associative memory; the B8500 adds one.
  EXPECT_FALSE(machines[2].description.facilities.Has(
      HardwareFacility::kAddressingOverheadReduction));
  EXPECT_TRUE(machines[4].description.facilities.Has(
      HardwareFacility::kAddressingOverheadReduction));
  // 360/67 records use and modification automatically.
  EXPECT_TRUE(
      machines[6].description.facilities.Has(HardwareFacility::kInformationGathering));
}

TEST(MachinesTest, EachMachineRunsAWorkload) {
  for (Machine& machine : MakeAllMachines()) {
    const ReferenceTrace trace = SurveyWorkload(16384, 1.5, 6000, 3);
    const VmReport report = machine.system->Run(trace);
    EXPECT_EQ(report.references, trace.size()) << machine.description.name;
    EXPECT_GT(report.faults, 0u) << machine.description.name;
    EXPECT_EQ(report.bounds_violations, 0u) << machine.description.name;
    EXPECT_GT(report.total_cycles, 0u) << machine.description.name;
  }
}

TEST(MachinesTest, B8500DescriptorCacheBeatsB5000MappingCost) {
  Machine b5000 = MakeB5000Machine();
  Machine b8500 = MakeB8500Machine();
  const ReferenceTrace trace = SurveyWorkload(24000, 1.5, 8000, 5);
  const VmReport plain = b5000.system->Run(trace);
  const VmReport cached = b8500.system->Run(trace);
  EXPECT_LT(cached.MeanTranslationCost(), plain.MeanTranslationCost());
  EXPECT_GT(cached.tlb_hit_rate, 0.5);
}

TEST(MachinesTest, M44PageSizeIsConfigurable) {
  // "The page size may be varied at system start-up for experimentation."
  Machine small_pages = MakeM44Machine(512);
  Machine large_pages = MakeM44Machine(4096);
  const ReferenceTrace trace = SurveyWorkload(32768, 1.5, 6000, 9);
  const VmReport small = small_pages.system->Run(trace);
  const VmReport large = large_pages.system->Run(trace);
  EXPECT_GT(small.faults, 0u);
  EXPECT_GT(large.faults, 0u);
  // Smaller pages mean more faults but tighter residency on this workload.
  EXPECT_GE(small.faults, large.faults);
}

TEST(SurveyTest, SurveyWorkloadScalesWithCore) {
  const ReferenceTrace small = SurveyWorkload(8192, 2.0, 4000, 1);
  const ReferenceTrace large = SurveyWorkload(65536, 2.0, 4000, 1);
  EXPECT_LE(small.NameExtent(), 2 * 8192u);
  EXPECT_GT(large.NameExtent(), 2 * 8192u);
}

TEST(SurveyTest, RunSurveyCoversAllMachinesAndRenders) {
  const auto rows = RunSurvey(/*pressure=*/1.5, /*length=*/4000, /*seed=*/2);
  ASSERT_EQ(rows.size(), 7u);
  const std::string text = RenderSurvey(rows);
  for (const SurveyRow& row : rows) {
    EXPECT_NE(text.find(row.description.name), std::string::npos);
    EXPECT_EQ(row.report.references, 4000u);
  }
  EXPECT_NE(text.find("fault rate"), std::string::npos);
  EXPECT_NE(text.find("symbolically segmented"), std::string::npos);
}

}  // namespace
}  // namespace dsa
