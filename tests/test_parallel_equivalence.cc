// jobs=1 ≡ jobs=N equivalence: the acceptance contract of the parallel
// sweep executor, checked at the byte level.
//
// Two sweeps are exercised at 1, 2, and hardware-width workers:
//
//   * a shortened chaos-soak matrix (scheduler/load-control configs x fault
//     schedules x degrees, each cell a full MultiprogrammingSimulator run
//     with its own EventTracer) — per-cell event streams are serialised to
//     JSONL and compared byte for byte against the serial run, each stream
//     is replayed through the TraceReplayVerifier, and the cells' metrics
//     registries are folded in index order and compared as rendered text;
//
//   * the bench_overload degree sweep (bench/overload_sweep.h), compared
//     cell by cell through Cell::operator==.
//
// Everything here is fast enough for the unit label: the point is that the
// equivalence holds on every `ctest -L unit` run, not only in the soak pass.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench/overload_sweep.h"
#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

constexpr std::size_t kFrames = 8;
constexpr std::size_t kJobLength = 1200;

std::vector<unsigned> WorkerWidths() {
  std::vector<unsigned> widths = {1, 2};
  if (HardwareJobs() > 2) {
    widths.push_back(HardwareJobs());
  }
  return widths;
}

// --- the shortened soak matrix ----------------------------------------------

struct EquivCell {
  SchedulerKind scheduler;
  LoadControlPolicy policy;
  FaultRates rates;
  std::size_t degree;
  std::uint64_t seed;
};

std::vector<EquivCell> EquivMatrix() {
  const SchedulerKind schedulers[] = {SchedulerKind::kRoundRobin,
                                      SchedulerKind::kResidencyAware};
  const FaultRates fault_schedules[] = {
      {}, {.transient_transfer = 0.05, .permanent_slot = 0.01}};
  const std::size_t degrees[] = {3, 6};
  std::vector<EquivCell> cells;
  std::uint64_t index = 0;
  for (const SchedulerKind scheduler : schedulers) {
    for (const FaultRates& rates : fault_schedules) {
      for (const std::size_t degree : degrees) {
        EquivCell cell;
        cell.scheduler = scheduler;
        cell.policy = scheduler == SchedulerKind::kRoundRobin
                          ? LoadControlPolicy::kAdaptiveFaultRate
                          : LoadControlPolicy::kWorkingSetAdmission;
        cell.rates = rates;
        cell.degree = degree;
        cell.seed = 0xe01u ^ 0x50a4u ^ (index * 0x9e3779b9u);
        cells.push_back(cell);
        ++index;
      }
    }
  }
  return cells;
}

// One cell's complete observable output, reduced to bytes.
struct CellOutput {
  std::string events_jsonl;
  std::string metrics_table;
  std::uint64_t total_cycles{0};
  std::uint64_t faults{0};
  std::vector<TraceEvent> events;  // kept for the replay verifier
};

CellOutput RunEquivCell(const EquivCell& cell) {
  MultiprogramConfig config;
  config.core_words = kFrames * 256;
  config.page_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                       /*rotational_delay=*/2000);
  config.quantum = 800;
  config.context_switch_cycles = 10;
  config.scheduler = cell.scheduler;
  config.load_control.policy = cell.policy;
  if (cell.policy == LoadControlPolicy::kAdaptiveFaultRate) {
    config.load_control.window = 20000;
    config.load_control.min_window_references = 32;
    config.load_control.high_fault_rate = 0.05;
    config.load_control.low_fault_rate = 0.02;
    config.load_control.hysteresis = 5000;
  } else {
    config.load_control.working_set_tau = 4000;
    config.load_control.hysteresis = 2000;
  }
  config.fault_injection.rates = cell.rates;
  config.fault_injection.seed = cell.seed;

  EventTracer tracer(/*capacity=*/0);
  config.tracer = &tracer;
  MultiprogrammingSimulator sim(config);
  for (std::size_t j = 0; j < cell.degree; ++j) {
    LoopTraceParams params;
    params.extent = 2048;
    params.body_words = 512;
    params.advance_words = 256;
    params.iterations = 3;
    params.length = kJobLength;
    params.seed = cell.seed * 1000003 + j;
    sim.AddJob("equiv-" + std::to_string(j), MakeLoopTrace(params));
  }
  const MultiprogramReport report = sim.Run();

  CellOutput output;
  output.events = tracer.Snapshot();
  std::ostringstream jsonl;
  WriteEventsJsonl(output.events, &jsonl);
  output.events_jsonl = jsonl.str();
  output.total_cycles = report.total_cycles;
  output.faults = report.faults;
  MetricsRegistry registry;
  registry.GetCounter("mp/total_cycles")->Set(report.total_cycles);
  registry.GetCounter("mp/faults")->Set(report.faults);
  registry.GetCounter("mp/deactivations")->Set(report.deactivations);
  registry.GetCounter("mp/reactivations")->Set(report.reactivations);
  output.metrics_table = registry.RenderTable();
  return output;
}

TEST(ParallelEquivalenceTest, SoakMatrixIsByteIdenticalAtEveryWidth) {
  const std::vector<EquivCell> cells = EquivMatrix();

  // Serial reference first: per-cell bytes plus the index-order fold.
  SweepRunner serial(1);
  const std::vector<CellOutput> reference =
      serial.Run(cells.size(), [&](std::size_t i) { return RunEquivCell(cells[i]); });

  // Each reference stream must replay cleanly — equivalence against a
  // corrupt baseline would be vacuous.
  TraceVerifierConfig verifier_config;
  verifier_config.frame_count = kFrames;
  verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const auto violations =
        TraceReplayVerifier(verifier_config).Verify(reference[i].events);
    EXPECT_TRUE(violations.empty())
        << "cell " << i << ": " << TraceReplayVerifier::Describe(violations);
  }

  MetricsRegistry reference_fold;
  for (const CellOutput& output : reference) {
    MetricsRegistry cell_registry;
    cell_registry.GetCounter("mp/total_cycles")->Increment(output.total_cycles);
    cell_registry.GetCounter("mp/faults")->Increment(output.faults);
    MergeRegistryInto(&reference_fold, cell_registry);
  }
  const std::string reference_table = reference_fold.RenderTable();

  for (const unsigned jobs : WorkerWidths()) {
    SweepRunner runner(jobs);
    const std::vector<CellOutput> outputs =
        runner.Run(cells.size(), [&](std::size_t i) { return RunEquivCell(cells[i]); });
    ASSERT_EQ(outputs.size(), reference.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " cell=" + std::to_string(i));
      // Byte-identical serialised event stream and rendered metrics: the
      // strongest equivalence we can state without hashing internals.
      EXPECT_EQ(outputs[i].events_jsonl, reference[i].events_jsonl);
      EXPECT_EQ(outputs[i].metrics_table, reference[i].metrics_table);
      EXPECT_EQ(outputs[i].total_cycles, reference[i].total_cycles);
      EXPECT_EQ(outputs[i].faults, reference[i].faults);
    }

    MetricsRegistry fold;
    for (const CellOutput& output : outputs) {
      MetricsRegistry cell_registry;
      cell_registry.GetCounter("mp/total_cycles")->Increment(output.total_cycles);
      cell_registry.GetCounter("mp/faults")->Increment(output.faults);
      MergeRegistryInto(&fold, cell_registry);
    }
    EXPECT_EQ(fold.RenderTable(), reference_table) << "jobs=" << jobs;
  }
}

// --- the bench sweep --------------------------------------------------------

TEST(ParallelEquivalenceTest, OverloadSweepMatchesSerialAtEveryWidth) {
  constexpr std::size_t kShortJob = 1500;
  const auto reference = overload_sweep::RunSweep(kShortJob, /*jobs=*/1);
  for (const unsigned jobs : WorkerWidths()) {
    if (jobs == 1) {
      continue;
    }
    const auto parallel = overload_sweep::RunSweep(kShortJob, jobs);
    ASSERT_EQ(parallel.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t p = 0; p < reference.size(); ++p) {
      for (std::size_t d = 0; d < reference[p].size(); ++d) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs) + " policy=" + std::to_string(p) +
                     " degree-slot=" + std::to_string(d));
        EXPECT_TRUE(parallel[p][d] == reference[p][d]);
      }
    }
  }
}

// --- merged event streams ---------------------------------------------------

TEST(ParallelEquivalenceTest, MergedStreamIsSchedulingInvariant) {
  // MergeEventStreams over per-cell captures is a pure function of the
  // per-cell streams, so any worker count that reproduces the cells (the
  // tests above) reproduces the merged stream too.  Checked directly: merge
  // the serial captures twice in different "completion orders" — the merge
  // input is the index-ordered vector both times, so bytes must match.
  const std::vector<EquivCell> cells = EquivMatrix();
  SweepRunner runner(2);
  const std::vector<CellOutput> outputs =
      runner.Run(cells.size(), [&](std::size_t i) { return RunEquivCell(cells[i]); });
  std::vector<std::vector<TraceEvent>> streams;
  streams.reserve(outputs.size());
  for (const CellOutput& output : outputs) {
    streams.push_back(output.events);
  }
  const std::vector<TraceEvent> merged_once = MergeEventStreams(streams);
  const std::vector<TraceEvent> merged_twice = MergeEventStreams(streams);
  EXPECT_EQ(merged_once, merged_twice);
  std::size_t total = 0;
  for (const auto& stream : streams) {
    total += stream.size();
  }
  EXPECT_EQ(merged_once.size(), total);
  for (std::size_t i = 1; i < merged_once.size(); ++i) {
    ASSERT_LE(merged_once[i - 1].time, merged_once[i].time) << "merge broke monotonicity";
  }
}

}  // namespace
}  // namespace dsa
