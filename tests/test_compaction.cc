// Unit tests for the compaction engine (storage packing, hardware
// facility iii).

#include <gtest/gtest.h>

#include <vector>

#include "src/alloc/compaction.h"
#include "src/alloc/variable_allocator.h"

namespace dsa {
namespace {

struct Fragmented {
  std::unique_ptr<VariableAllocator> alloc;
  std::vector<Block> live;
};

// Builds a checkerboard heap: allocate 8 x 100, free every other block.
Fragmented MakeCheckerboard() {
  Fragmented f;
  f.alloc = std::make_unique<VariableAllocator>(
      1000, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  std::vector<Block> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(*f.alloc->Allocate(100));
  }
  for (int i = 0; i < 8; i += 2) {
    f.alloc->Free(blocks[static_cast<std::size_t>(i)].addr);
  }
  for (int i = 1; i < 8; i += 2) {
    f.live.push_back(blocks[static_cast<std::size_t>(i)]);
  }
  return f;
}

TEST(CompactionTest, ProducesSingleHole) {
  Fragmented f = MakeCheckerboard();
  ASSERT_EQ(f.alloc->free_list().hole_count(), 5u);  // 4 gaps + tail
  CompactionEngine engine(CpuPackingChannel());
  const CompactionResult result = engine.Compact(f.alloc.get(), nullptr);
  EXPECT_EQ(f.alloc->free_list().hole_count(), 1u);
  EXPECT_EQ(result.holes_before, 5u);
  EXPECT_EQ(result.holes_after, 1u);
  EXPECT_EQ(f.alloc->free_list().largest_hole(), 600u);
}

TEST(CompactionTest, MovesOnlyWhatMust) {
  Fragmented f = MakeCheckerboard();
  CompactionEngine engine(CpuPackingChannel());
  const CompactionResult result = engine.Compact(f.alloc.get(), nullptr);
  EXPECT_EQ(result.blocks_moved, 4u);
  EXPECT_EQ(result.words_moved, 400u);
}

TEST(CompactionTest, AlreadyCompactHeapIsUntouched) {
  VariableAllocator alloc(1000, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  alloc.Allocate(100);
  alloc.Allocate(100);
  CompactionEngine engine(CpuPackingChannel());
  const CompactionResult result = engine.Compact(&alloc, nullptr);
  EXPECT_EQ(result.blocks_moved, 0u);
  EXPECT_EQ(result.words_moved, 0u);
  EXPECT_EQ(result.move_cycles, 0u);
}

TEST(CompactionTest, RelocationCallbackSeesEveryMove) {
  Fragmented f = MakeCheckerboard();
  CompactionEngine engine(CpuPackingChannel());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> moves;
  engine.Compact(f.alloc.get(), nullptr,
                 [&moves](PhysicalAddress from, PhysicalAddress to, WordCount size) {
                   EXPECT_EQ(size, 100u);
                   moves.emplace_back(from.value, to.value);
                 });
  ASSERT_EQ(moves.size(), 4u);
  // Live blocks at 100,300,500,700 slide to 0,100,200,300.
  EXPECT_EQ(moves[0], (std::pair<std::uint64_t, std::uint64_t>{100, 0}));
  EXPECT_EQ(moves[3], (std::pair<std::uint64_t, std::uint64_t>{700, 300}));
}

TEST(CompactionTest, ContentsSurviveTheMove) {
  CoreStore store(1000);
  Fragmented f = MakeCheckerboard();
  // Tag each live block's words with its original base address.
  for (const Block& block : f.live) {
    for (WordCount w = 0; w < block.size; ++w) {
      store.Write(PhysicalAddress{block.addr.value + w}, block.addr.value);
    }
  }
  CompactionEngine engine(CpuPackingChannel());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> moves;
  engine.Compact(f.alloc.get(), &store,
                 [&moves](PhysicalAddress from, PhysicalAddress to, WordCount size) {
                   (void)size;
                   moves.emplace_back(from.value, to.value);
                 });
  for (const auto& [from, to] : moves) {
    for (WordCount w = 0; w < 100; ++w) {
      EXPECT_EQ(store.Read(PhysicalAddress{to + w}), from) << "word " << w;
    }
  }
}

TEST(CompactionTest, CpuChannelChargesCpuCycles) {
  Fragmented f = MakeCheckerboard();
  CompactionEngine engine(CpuPackingChannel());
  const CompactionResult result = engine.Compact(f.alloc.get(), nullptr);
  EXPECT_EQ(result.move_cycles, 400u * 4);  // 4 cycles/word CPU copy
  EXPECT_EQ(result.cpu_cycles, result.move_cycles);
}

TEST(CompactionTest, AutonomousChannelFreesTheCpu) {
  Fragmented f = MakeCheckerboard();
  CompactionEngine engine(AutonomousPackingChannel());
  const CompactionResult result = engine.Compact(f.alloc.get(), nullptr);
  EXPECT_EQ(result.cpu_cycles, 0u);
  EXPECT_EQ(result.move_cycles, 4 * (64u + 100));  // setup + 1 cycle/word per move
  EXPECT_LT(result.move_cycles, 400u * 4);          // cheaper than the CPU loop
}

TEST(CompactionTest, AllocatorUsableAfterCompaction) {
  Fragmented f = MakeCheckerboard();
  CompactionEngine engine(CpuPackingChannel());
  engine.Compact(f.alloc.get(), nullptr);
  // The 600-word hole now satisfies what fragmentation previously blocked.
  const auto big = f.alloc->Allocate(500);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->addr, PhysicalAddress{400});
}

}  // namespace
}  // namespace dsa
