// Unit tests for src/exec (ThreadPool, SweepRunner, JobsFromEnv) and the
// order-independent observability merges in src/obs/merge.h that parallel
// sweeps rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/obs/event.h"
#include "src/obs/merge.h"
#include "src/obs/metrics.h"

namespace dsa {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << workers << " workers";
    }
  }
}

TEST(ThreadPoolTest, ZeroWorkersClampsToSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  int calls = 0;
  pool.ParallelFor(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, SerialPoolPreservesIndexOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.ParallelFor(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, StealingCoversImbalancedBatches) {
  // One index is dealt per lane round-robin; a count far above the lane
  // count with wildly uneven per-cell cost forces steals.  Correctness is
  // still exactly-once coverage.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](std::size_t i) {
    volatile std::uint64_t sink = 0;
    const std::size_t spin = (i % 8 == 0) ? 200000 : 10;
    for (std::size_t k = 0; k < spin; ++k) {
      sink += k;
    }
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPoolTest, FirstExceptionIsRethrownAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(32,
                       [&](std::size_t i) {
                         if (i == 7) {
                           throw std::runtime_error("cell 7 failed");
                         }
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // The batch drains before rethrowing: no cell is left mid-flight, and the
  // pool stays usable.
  std::atomic<int> after{0};
  pool.ParallelFor(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

// --- JobsFromEnv ------------------------------------------------------------

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    if (value == nullptr) {
      unsetenv("DSA_JOBS");
    } else {
      setenv("DSA_JOBS", value, 1);
    }
  }
  ~EnvGuard() { unsetenv("DSA_JOBS"); }
};

TEST(JobsFromEnvTest, UnsetUsesFallback) {
  EnvGuard guard(nullptr);
  EXPECT_EQ(JobsFromEnv(3), 3u);
}

TEST(JobsFromEnvTest, PositiveIntegerWins) {
  EnvGuard guard("6");
  EXPECT_EQ(JobsFromEnv(1), 6u);
}

TEST(JobsFromEnvTest, ZeroAndAutoMeanHardwareWidth) {
  {
    EnvGuard guard("0");
    EXPECT_EQ(JobsFromEnv(1), HardwareJobs());
  }
  {
    EnvGuard guard("auto");
    EXPECT_EQ(JobsFromEnv(1), HardwareJobs());
  }
}

TEST(JobsFromEnvTest, MalformedFallsBack) {
  EnvGuard guard("lots");
  EXPECT_EQ(JobsFromEnv(2), 2u);
}

TEST(JobsFromEnvTest, HardwareJobsIsNeverZero) { EXPECT_GE(HardwareJobs(), 1u); }

// --- SweepRunner ------------------------------------------------------------

TEST(SweepRunnerTest, ResultsLandInIndexOrderAtAnyWidth) {
  const std::vector<std::string> serial =
      SweepRunner(1).Run(50, [](std::size_t i) { return "cell-" + std::to_string(i); });
  for (const unsigned jobs : {2u, 3u, 8u}) {
    const std::vector<std::string> parallel = SweepRunner(jobs).Run(
        50, [](std::size_t i) { return "cell-" + std::to_string(i); });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(SweepRunnerTest, SingleJobRunnerOwnsNoPool) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1u);
  SweepRunner wide(4);
  EXPECT_EQ(wide.jobs(), 4u);
}

TEST(SweepRunnerTest, ForEachCoversEveryIndex) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(200);
  runner.ForEach(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunnerTest, EmptySweepIsANoOp) {
  const std::vector<int> slots = SweepRunner(4).Run(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(slots.empty());
}

// --- MergeRegistryInto ------------------------------------------------------

MetricsRegistry MakeCellRegistry(std::uint64_t faults, double rate) {
  MetricsRegistry registry;
  registry.GetCounter("vm/faults")->Increment(faults);
  registry.GetGauge("vm/fault_rate")->Set(rate);
  registry.GetHistogram("vm/latency")->Add(faults + 1);
  return registry;
}

TEST(MergeTest, CountersAddAndGaugesTakeLastInFoldOrder) {
  MetricsRegistry merged;
  MergeRegistryInto(&merged, MakeCellRegistry(10, 0.1));
  MergeRegistryInto(&merged, MakeCellRegistry(32, 0.4));
  EXPECT_EQ(merged.CounterValue("vm/faults"), 42u);
  EXPECT_DOUBLE_EQ(merged.GaugeValue("vm/fault_rate"), 0.4);
}

TEST(MergeTest, FoldingInIndexOrderIsByteDeterministic) {
  // Two registries with the same cells folded in the same order must render
  // identically — this is the property the parallel sweeps lean on.
  MetricsRegistry a;
  MetricsRegistry b;
  for (int i = 0; i < 5; ++i) {
    MergeRegistryInto(&a, MakeCellRegistry(i * 3, 0.01 * i));
    MergeRegistryInto(&b, MakeCellRegistry(i * 3, 0.01 * i));
  }
  EXPECT_EQ(a.RenderTable(), b.RenderTable());
}

// --- MergeEventStreams ------------------------------------------------------

TraceEvent At(std::uint64_t time, std::uint64_t tag) {
  TraceEvent event;
  event.time = time;
  event.kind = EventKind::kPageFault;
  event.a = tag;  // payload tag used to observe the merge's tiebreak order
  return event;
}

TEST(MergeTest, EventStreamsInterleaveByTimeThenStreamIndex) {
  const std::vector<std::vector<TraceEvent>> streams = {
      {At(1, 0), At(5, 0), At(9, 0)},
      {At(2, 1), At(5, 1)},
      {At(5, 2)},
  };
  const std::vector<TraceEvent> merged = MergeEventStreams(streams);
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged[0].time, 1u);
  EXPECT_EQ(merged[1].time, 2u);
  // The three time-5 events arrive in stream-index order: the tiebreak that
  // keeps the merge a pure function of the inputs.
  EXPECT_EQ(merged[2].a, 0u);
  EXPECT_EQ(merged[3].a, 1u);
  EXPECT_EQ(merged[4].a, 2u);
  EXPECT_EQ(merged[5].time, 9u);
}

TEST(MergeTest, EmptyAndSingletonStreams) {
  EXPECT_TRUE(MergeEventStreams({}).empty());
  EXPECT_TRUE(MergeEventStreams({{}, {}}).empty());
  const std::vector<TraceEvent> merged = MergeEventStreams({{}, {At(3, 1)}, {}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].time, 3u);
}

}  // namespace
}  // namespace dsa
