// Tests for paging over a drum+disk backing hierarchy.

#include <gtest/gtest.h>

#include <memory>

#include "src/paging/hierarchy_pager.h"
#include "src/paging/replacement_simple.h"

namespace dsa {
namespace {

HierarchyPagerConfig SmallConfig() {
  HierarchyPagerConfig config;
  config.page_words = 64;
  config.frames = 4;
  config.drum_pages = 8;
  config.drum_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                    /*rotational_delay=*/200);
  config.disk_level = MakeDiskLevel("disk", 1u << 20, /*word_time=*/4,
                                    /*seek_plus_rotation=*/5000);
  return config;
}

HierarchyPager MakePager(HierarchyPagerConfig config = SmallConfig()) {
  return HierarchyPager(config, std::make_unique<LruReplacement>());
}

TEST(HierarchyPagerTest, FirstTouchIsZeroFillWithNoTransfer) {
  HierarchyPager pager = MakePager();
  const Cycles wait = *pager.Access(PageId{1}, AccessKind::kRead, 0);
  EXPECT_EQ(wait, 0u);
  EXPECT_EQ(pager.stats().zero_fills, 1u);
  EXPECT_EQ(pager.stats().drum_hits, 0u);
  EXPECT_TRUE(pager.IsResident(PageId{1}));
}

TEST(HierarchyPagerTest, EvictedPageLandsOnDrumAndComesBackFast) {
  HierarchyPager pager = MakePager();
  Cycles now = 0;
  // Fill the 4 frames, then push page 0 out.
  for (std::uint64_t p = 0; p <= 4; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  EXPECT_FALSE(pager.IsResident(PageId{0}));
  EXPECT_EQ(pager.drum_page_count(), 1u);
  // Refetch once the drum channel is quiet.  The fault must first write the
  // LRU victim to the drum, then read page 0 behind it on the same channel:
  // two drum transfers of (200 + 64*2) = 328 cycles each — still far below
  // the disk's 5000-cycle start-up.
  const Cycles wait = *pager.Access(PageId{0}, AccessKind::kRead, now + 100000);
  EXPECT_EQ(pager.stats().drum_hits, 1u);
  EXPECT_EQ(wait, 2 * (200u + 64 * 2));
}

TEST(HierarchyPagerTest, DrumOverflowDemotesToDisk) {
  HierarchyPagerConfig config = SmallConfig();
  config.drum_pages = 2;  // tiny drum: the third eviction demotes
  HierarchyPager pager(config, std::make_unique<LruReplacement>());
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 12; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  EXPECT_GT(pager.stats().demotions, 0u);
  EXPECT_LE(pager.drum_page_count(), 2u);
}

TEST(HierarchyPagerTest, DiskFaultCostsMoreThanDrumFault) {
  HierarchyPagerConfig config = SmallConfig();
  config.drum_pages = 1;
  HierarchyPager pager(config, std::make_unique<LruReplacement>());
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 8; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  // Pages 0..2 have been demoted to disk; page 6 sits on the drum (page 7's
  // eviction may vary) — fetch the definitely-disk page 0.
  const Cycles disk_wait = *pager.Access(PageId{0}, AccessKind::kRead, now + 100000);
  EXPECT_GE(disk_wait, 5000u);
  EXPECT_GT(pager.stats().disk_hits, 0u);
}

TEST(HierarchyPagerTest, PromotionStagesDiskFaultedPagesOnDrum) {
  HierarchyPagerConfig config = SmallConfig();
  config.drum_pages = 1;
  config.demotion = DemotionPolicy::kAlwaysDisk;
  config.promote_on_disk_fault = true;
  HierarchyPager pager(config, std::make_unique<LruReplacement>());
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 8; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  // Fault page 0 back from disk (promotion evidence), then evict it again.
  now += *pager.Access(PageId{0}, AccessKind::kRead, now) + 1;
  for (std::uint64_t p = 20; p < 24; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  // The re-eviction staged page 0 on the drum despite kAlwaysDisk.
  EXPECT_EQ(pager.drum_page_count(), 1u);
  const Cycles wait = *pager.Access(PageId{0}, AccessKind::kRead, now + 100000);
  EXPECT_EQ(pager.stats().drum_hits, 1u);
  EXPECT_LT(wait, 5000u);
}

TEST(HierarchyPagerTest, AlwaysDiskPolicySkipsTheDrum) {
  HierarchyPagerConfig config = SmallConfig();
  config.demotion = DemotionPolicy::kAlwaysDisk;
  config.promote_on_disk_fault = false;
  HierarchyPager pager(config, std::make_unique<LruReplacement>());
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 12; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  EXPECT_EQ(pager.drum_page_count(), 0u);
  EXPECT_EQ(pager.stats().demotions, 0u);
}

TEST(HierarchyPagerTest, DrumServiceFractionSummarises) {
  HierarchyPager pager = MakePager();
  Cycles now = 0;
  // Loop over 6 pages with 4 frames: steady re-faulting, all served by drum.
  for (int lap = 0; lap < 10; ++lap) {
    for (std::uint64_t p = 0; p < 6; ++p) {
      now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
    }
  }
  EXPECT_GT(pager.stats().drum_hits, 0u);
  EXPECT_DOUBLE_EQ(pager.stats().DrumServiceFraction(), 1.0);
}

TEST(HierarchyPagerTest, StatsAccumulateConsistently) {
  HierarchyPager pager = MakePager();
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 20; ++p) {
    now += *pager.Access(PageId{p % 7}, AccessKind::kWrite, now) + 1;
  }
  const HierarchyPagerStats& stats = pager.stats();
  EXPECT_EQ(stats.accesses, 20u);
  EXPECT_EQ(stats.faults, stats.drum_hits + stats.disk_hits + stats.zero_fills);
  EXPECT_GE(stats.writebacks, stats.demotions);
}

}  // namespace
}  // namespace dsa
