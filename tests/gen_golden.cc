// Regenerates the golden event streams under tests/golden/ from the run
// definitions in golden_runs.h.  Invoked by scripts/regen_golden.sh; refuses
// to write a stream the replay verifier rejects, so a regression can never
// be baked into the goldens.
//
// Usage: gen_golden OUTPUT_DIR

#include <cstdio>
#include <fstream>

#include "tests/golden_runs.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUTPUT_DIR\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  for (const dsa::golden::GoldenRun& run : dsa::golden::GoldenRuns()) {
    const dsa::golden::GoldenResult result = dsa::golden::RunGolden(run);

    dsa::TraceVerifierConfig config;
    config.frame_count = result.frame_count;
    const auto violations = dsa::TraceReplayVerifier(config).Verify(result.events);
    if (!violations.empty()) {
      std::fprintf(stderr, "gen_golden: run '%s' violates trace invariants:\n%s",
                   run.name.c_str(),
                   dsa::TraceReplayVerifier::Describe(violations).c_str());
      return 1;
    }

    const std::string path = dir + "/" + run.name + ".jsonl";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "gen_golden: cannot write %s\n", path.c_str());
      return 1;
    }
    out << result.jsonl;
    out.close();
    std::printf("wrote %zu events to %s\n", result.events.size(), path.c_str());
  }
  return 0;
}
