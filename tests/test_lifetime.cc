// Tests for the lifetime/fault-rate curve analysis.

#include <gtest/gtest.h>

#include "src/paging/lifetime.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

std::vector<PageId> LocalityString() {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  params.regions_per_phase = 6;
  params.phases = 4;
  params.phase_length = 5000;
  return MakeWorkingSetTrace(params).PageString(128);
}

TEST(LifetimeCurveTest, PointsCoverRequestedSizes) {
  const auto curve = ComputeLifetimeCurve(LocalityString(), {4, 8, 16},
                                          ReplacementStrategyKind::kLru);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_EQ(curve.points[0].frames, 4u);
  EXPECT_EQ(curve.points[2].frames, 16u);
  EXPECT_EQ(curve.policy, ReplacementStrategyKind::kLru);
}

TEST(LifetimeCurveTest, FaultRateFallsAndLifetimeRisesWithMemoryUnderLru) {
  const auto curve = ComputeLifetimeCurve(LocalityString(), {2, 4, 8, 16, 32, 64},
                                          ReplacementStrategyKind::kLru);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_LE(curve.points[i].fault_rate, curve.points[i - 1].fault_rate)
        << "at " << curve.points[i].frames << " frames";
    EXPECT_GE(curve.points[i].mean_lifetime, curve.points[i - 1].mean_lifetime);
  }
}

TEST(LifetimeCurveTest, LifetimeIsReciprocalOfFaultRate) {
  const auto refs = LocalityString();
  const auto curve = ComputeLifetimeCurve(refs, {8}, ReplacementStrategyKind::kLru);
  const LifetimePoint& point = curve.points[0];
  ASSERT_GT(point.faults, 0u);
  EXPECT_NEAR(point.mean_lifetime * point.fault_rate, 1.0, 1e-9);
}

TEST(LifetimeCurveTest, CompulsoryOnlyAtFullMemory) {
  const auto refs = LocalityString();
  std::set<std::uint64_t> distinct;
  for (const PageId page : refs) {
    distinct.insert(page.value);
  }
  const auto curve =
      ComputeLifetimeCurve(refs, {distinct.size() + 1}, ReplacementStrategyKind::kFifo);
  EXPECT_EQ(curve.points[0].faults, distinct.size());
}

TEST(LifetimeCurveTest, KneeDetectsTheFlatteningPoint) {
  const auto curve = ComputeLifetimeCurve(LocalityString(), {2, 4, 8, 16, 32, 64, 128},
                                          ReplacementStrategyKind::kLru);
  const std::size_t knee = curve.KneeFrames(0.10);
  EXPECT_GT(knee, 2u);
  EXPECT_LE(knee, 128u);
  // The knee's fault rate is within tolerance of the floor.
  const double floor_rate = curve.points.back().fault_rate;
  for (const LifetimePoint& point : curve.points) {
    if (point.frames == knee) {
      EXPECT_LE(point.fault_rate, floor_rate * 1.10 + 1e-12);
    }
  }
}

TEST(LifetimeCurveTest, OptCurveLowerBoundsLru) {
  const auto refs = LocalityString();
  const std::vector<std::size_t> sizes = {4, 8, 16, 32};
  const auto opt = ComputeLifetimeCurve(refs, sizes, ReplacementStrategyKind::kOpt);
  const auto lru = ComputeLifetimeCurve(refs, sizes, ReplacementStrategyKind::kLru);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LE(opt.points[i].faults, lru.points[i].faults) << sizes[i] << " frames";
  }
}

TEST(LifetimeCurveTest, EmptyCurveKneeIsZero) {
  LifetimeCurve curve;
  EXPECT_EQ(curve.KneeFrames(), 0u);
}

}  // namespace
}  // namespace dsa
