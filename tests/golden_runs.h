// The canonical golden-trace runs, shared by test_golden_traces (which
// byte-compares against tests/golden/*.jsonl) and gen_golden (which
// regenerates those files via scripts/regen_golden.sh).
//
// Keeping the run definitions in one header is what makes the golden files
// trustworthy: the regenerator and the comparator cannot drift apart.  Every
// parameter below is pinned — changing any of them is a deliberate
// regeneration event, not an accident.

#ifndef TESTS_GOLDEN_RUNS_H_
#define TESTS_GOLDEN_RUNS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/obs/vm_metrics.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace dsa::golden {

struct GoldenRun {
  std::string name;  // file stem under tests/golden/
  SystemSpec spec;
  ReferenceTrace trace;
};

inline std::vector<GoldenRun> GoldenRuns() {
  std::vector<GoldenRun> runs;

  // A small paged linear system under a phase-changing working set: the
  // richest flat-pager stream (faults, victims, transfers, write-backs).
  {
    GoldenRun run;
    run.name = "paged";
    run.spec.label = "golden-paged";
    run.spec.core_words = 4096;
    run.spec.page_words = 256;  // 16 frames
    run.spec.tlb_entries = 8;
    run.spec.backing_level =
        MakeDrumLevel("drum", 1u << 18, /*word_time=*/2, /*rotational_delay=*/600);
    // 24 hot regions over 16 frames: the pager faults and evicts
    // continuously, so the stream exercises every flat-pager event kind.
    WorkingSetTraceParams params;
    params.extent = 1 << 14;
    params.region_words = 256;
    params.regions_per_phase = 24;
    params.phase_length = 1500;
    params.phases = 3;
    params.seed = 41;
    run.trace = MakeWorkingSetTrace(params);
    runs.push_back(std::move(run));
  }

  // A symbolically segmented, variable-unit system whose working set spans
  // 32 segments while core holds 8: exercises segment faults, alloc/free,
  // eviction write-backs, and (on fragmentation) compaction events.
  {
    GoldenRun run;
    run.name = "segmented";
    run.spec.label = "golden-segmented";
    run.spec.characteristics.name_space = NameSpaceKind::kSymbolicallySegmented;
    run.spec.characteristics.unit = AllocationUnit::kVariableBlocks;
    run.spec.core_words = 2048;
    run.spec.max_segment_extent = 256;
    run.spec.workload_segment_words = 256;
    run.spec.backing_level =
        MakeDrumLevel("drum", 1u << 18, /*word_time=*/2, /*rotational_delay=*/600);
    WorkingSetTraceParams params;
    params.extent = 1 << 13;
    params.region_words = 256;
    params.regions_per_phase = 12;
    params.phase_length = 1200;
    params.phases = 3;
    params.seed = 42;
    run.trace = MakeWorkingSetTrace(params);
    runs.push_back(std::move(run));
  }

  // The paged run again with the storage fault injector turned up: the
  // stream gains fault-recovery, frame-retire, and relocation events while
  // every verifier invariant must still hold.
  {
    GoldenRun run;
    run.name = "fault_injected";
    run.spec.label = "golden-fault-injected";
    run.spec.core_words = 4096;
    run.spec.page_words = 256;
    run.spec.tlb_entries = 8;
    run.spec.backing_level =
        MakeDrumLevel("drum", 1u << 18, /*word_time=*/2, /*rotational_delay=*/600);
    run.spec.fault_injection.seed = 43;
    run.spec.fault_injection.rates.transient_transfer = 0.15;
    run.spec.fault_injection.rates.permanent_slot = 0.05;
    run.spec.fault_injection.rates.frame_failure = 0.01;
    WorkingSetTraceParams params;
    params.extent = 1 << 14;
    params.region_words = 256;
    params.regions_per_phase = 24;
    params.phase_length = 1500;
    params.phases = 3;
    params.seed = 41;
    run.trace = MakeWorkingSetTrace(params);
    runs.push_back(std::move(run));
  }

  return runs;
}

struct GoldenResult {
  std::vector<TraceEvent> events;
  std::string jsonl;
  std::string report;
  std::size_t frame_count{0};
};

// Builds the run's system with an unbounded tracer attached, executes the
// trace, and returns the captured stream plus the rendered report.
inline GoldenResult RunGolden(const GoldenRun& run) {
  SystemSpec spec = run.spec;
  EventTracer tracer(/*capacity=*/0);
  spec.tracer = &tracer;
  const auto system = BuildSystem(spec);
  const VmReport report = system->Run(run.trace);

  GoldenResult result;
  result.events = tracer.Snapshot();
  result.jsonl = EventsToJsonl(result.events);
  result.report =
      RenderVmReport(report, Describe(system->characteristics()), run.trace.label);
  result.frame_count = static_cast<std::size_t>(spec.core_words / spec.page_words);
  return result;
}

}  // namespace dsa::golden

#endif  // TESTS_GOLDEN_RUNS_H_
