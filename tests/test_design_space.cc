// The taxonomy, exhaustively: every point of the paper's four-axis design
// space is either buildable into a runnable system whose reported
// characteristics echo the request, or is rejected for the one documented
// reason (linear names + variable units).

#include <gtest/gtest.h>

#include <tuple>

#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

using DesignPoint =
    std::tuple<NameSpaceKind, PredictiveInformation, ArtificialContiguity, AllocationUnit>;

class DesignSpaceTest : public ::testing::TestWithParam<DesignPoint> {
 protected:
  SystemSpec SpecFor(const DesignPoint& point) const {
    SystemSpec spec;
    spec.label = "grid-point";
    spec.characteristics.name_space = std::get<0>(point);
    spec.characteristics.predictive = std::get<1>(point);
    spec.characteristics.prediction_source =
        std::get<1>(point) == PredictiveInformation::kAccepted ? PredictionSource::kProgrammer
                                                               : PredictionSource::kNone;
    spec.characteristics.contiguity = std::get<2>(point);
    spec.characteristics.unit = std::get<3>(point);
    spec.core_words = 4096;
    spec.page_words = 256;
    spec.max_segment_extent = 512;
    spec.workload_segment_words = 256;
    spec.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
    return spec;
  }

  static ReferenceTrace Workload() {
    WorkingSetTraceParams params;
    params.extent = 1 << 13;
    params.region_words = 128;
    params.regions_per_phase = 8;
    params.phases = 3;
    params.phase_length = 3000;
    return MakeWorkingSetTrace(params);
  }
};

TEST_P(DesignSpaceTest, BuildableOrDocumentedRejection) {
  const SystemSpec spec = SpecFor(GetParam());
  const Characteristics& c = spec.characteristics;
  const bool expect_rejection = c.name_space == NameSpaceKind::kLinear &&
                                c.unit == AllocationUnit::kVariableBlocks;
  EXPECT_EQ(SpecIsBuildable(spec), !expect_rejection);
  if (expect_rejection) {
    return;
  }

  const auto system = BuildSystem(spec);
  ASSERT_NE(system, nullptr);
  const Characteristics built = system->characteristics();

  // The binding axes round-trip exactly.
  if (c.name_space == NameSpaceKind::kSymbolicallySegmented &&
      c.unit != AllocationUnit::kVariableBlocks) {
    // Symbolic naming over pages is realised by the linearly-segmented
    // hardware family (the MULTICS convention); the hardware name space is
    // what the system reports.
    EXPECT_EQ(built.name_space, NameSpaceKind::kLinearlySegmented);
  } else {
    EXPECT_EQ(built.name_space, c.name_space);
  }
  EXPECT_EQ(built.predictive, c.predictive);
  if (c.unit != AllocationUnit::kVariableBlocks) {
    EXPECT_EQ(built.unit, c.unit);
  } else {
    EXPECT_EQ(built.unit, AllocationUnit::kVariableBlocks);
  }

  // Every built system runs the workload to completion, deterministically.
  const ReferenceTrace trace = Workload();
  const VmReport first = system->Run(trace);
  EXPECT_EQ(first.references, trace.size());
  EXPECT_GT(first.total_cycles, 0u);
  const VmReport second = system->Run(trace);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.total_cycles, second.total_cycles);
}

std::string DesignPointName(const ::testing::TestParamInfo<DesignPoint>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case NameSpaceKind::kLinear:
      name += "Linear";
      break;
    case NameSpaceKind::kLinearlySegmented:
      name += "LinSeg";
      break;
    case NameSpaceKind::kSymbolicallySegmented:
      name += "SymSeg";
      break;
  }
  name += std::get<1>(info.param) == PredictiveInformation::kAccepted ? "Advice" : "NoAdvice";
  name += std::get<2>(info.param) == ArtificialContiguity::kProvided ? "Mapped" : "Direct";
  switch (std::get<3>(info.param)) {
    case AllocationUnit::kUniformPages:
      name += "Pages";
      break;
    case AllocationUnit::kVariableBlocks:
      name += "Blocks";
      break;
    case AllocationUnit::kMixedPages:
      name += "Mixed";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, DesignSpaceTest,
    ::testing::Combine(::testing::Values(NameSpaceKind::kLinear,
                                         NameSpaceKind::kLinearlySegmented,
                                         NameSpaceKind::kSymbolicallySegmented),
                       ::testing::Values(PredictiveInformation::kNotAccepted,
                                         PredictiveInformation::kAccepted),
                       ::testing::Values(ArtificialContiguity::kNone,
                                         ArtificialContiguity::kProvided),
                       ::testing::Values(AllocationUnit::kUniformPages,
                                         AllocationUnit::kVariableBlocks,
                                         AllocationUnit::kMixedPages)),
    DesignPointName);

}  // namespace
}  // namespace dsa
