// Tests for the in-band Rice storage image: chain links, back references,
// and codewords all living in CoreStore words.

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/seg/rice_image.h"

namespace dsa {
namespace {

class RiceImageTest : public ::testing::Test {
 protected:
  RiceImageTest() : store_(1024), image_(&store_, /*codeword_slots=*/16) {}

  CoreStore store_;
  RiceStorageImage image_;
};

TEST_F(RiceImageTest, InitialChainIsOneBlock) {
  const auto chain = image_.ChainBlocks();
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].addr, PhysicalAddress{16});
  EXPECT_EQ(chain[0].size, 1024u - 16);
}

TEST_F(RiceImageTest, ActivateWritesCodewordAndBackReference) {
  const auto base = image_.Activate(3, 100);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(*base, PhysicalAddress{17});  // first data word after the header
  const Codeword codeword = image_.ReadCodeword(3);
  EXPECT_TRUE(codeword.presence);
  EXPECT_EQ(codeword.base, *base);
  EXPECT_EQ(codeword.extent, 100u);
  EXPECT_TRUE(image_.BackReferencesIntact());
}

TEST_F(RiceImageTest, SequentialActivationsPackStorage) {
  const auto a = image_.Activate(0, 50);
  const auto b = image_.Activate(1, 60);
  ASSERT_TRUE(a && b);
  // b starts right after a's 50 payload words + 1 header word.
  EXPECT_EQ(b->value, a->value + 51);
  EXPECT_EQ(image_.ChainBlocks().size(), 1u);  // the shrinking tail block
}

TEST_F(RiceImageTest, DeactivateThreadsBlockAtChainHead) {
  const auto a = image_.Activate(0, 50);
  image_.Activate(1, 60);
  ASSERT_TRUE(a.has_value());
  image_.Deactivate(0);
  const auto chain = image_.ChainBlocks();
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].addr.value, a->value - 1);  // most recently freed first
  EXPECT_EQ(chain[0].size, 51u);
  EXPECT_FALSE(image_.ReadCodeword(0).presence);
}

TEST_F(RiceImageTest, LeftoverReplacesBlockInChain) {
  const auto a = image_.Activate(0, 100);
  image_.Activate(1, 100);
  ASSERT_TRUE(a.has_value());
  image_.Deactivate(0);
  // Reuse 40 of the 101-word inactive block: leftover keeps the chain spot.
  const auto b = image_.Activate(2, 40);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->value, a->value);  // same payload start as the freed segment
  const auto chain = image_.ChainBlocks();
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].size, 101u - 41);
}

TEST_F(RiceImageTest, CombiningMergesAdjacentInactiveBlocks) {
  const auto a = image_.Activate(0, 100);
  const auto b = image_.Activate(1, 100);
  // Fill the remaining tail exactly (1008 data words - 2x101 - header).
  const auto filler = image_.Activate(2, 1008 - 2 * 101 - 1);
  ASSERT_TRUE(a && b && filler);
  EXPECT_TRUE(image_.ChainBlocks().empty());
  image_.Deactivate(0);
  image_.Deactivate(1);
  EXPECT_EQ(image_.ChainBlocks().size(), 2u);
  // Neither 101-word block fits a 180-word segment; only combining them
  // into one 202-word block can satisfy it.
  const auto big = image_.Activate(3, 180);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->value, a->value);
  EXPECT_TRUE(image_.BackReferencesIntact());
}

TEST_F(RiceImageTest, FailureWhenNothingSuffices) {
  ASSERT_TRUE(image_.Activate(0, 900).has_value());
  EXPECT_FALSE(image_.Activate(1, 200).has_value());
  // The failed activation left no trace.
  EXPECT_FALSE(image_.ReadCodeword(1).presence);
  EXPECT_TRUE(image_.BackReferencesIntact());
}

TEST_F(RiceImageTest, ChurnPreservesInvariants) {
  Rng rng(12);
  std::vector<std::size_t> active;
  for (int op = 0; op < 2000; ++op) {
    if (!active.empty() && rng.Chance(0.5)) {
      const std::size_t i = rng.Below(active.size());
      image_.Deactivate(active[i]);
      active[i] = active.back();
      active.pop_back();
    } else {
      // Find a free codeword slot.
      std::size_t slot = 16;
      for (std::size_t s = 0; s < 16; ++s) {
        if (!image_.ReadCodeword(s).presence) {
          slot = s;
          break;
        }
      }
      if (slot == 16) {
        continue;
      }
      if (image_.Activate(slot, rng.Between(5, 120)).has_value()) {
        active.push_back(slot);
      }
    }
    ASSERT_TRUE(image_.BackReferencesIntact()) << "after op " << op;
    // Chain blocks and active blocks exactly tile the data region.
    WordCount chain_words = 0;
    for (const Block& block : image_.ChainBlocks()) {
      chain_words += block.size;
    }
    WordCount active_words = 0;
    for (std::size_t slot : active) {
      active_words += image_.ReadCodeword(slot).extent + 1;
    }
    ASSERT_EQ(chain_words + active_words, image_.data_region_words()) << "after op " << op;
  }
}

TEST_F(RiceImageTest, PayloadSurvivesNeighbourChurn) {
  const auto keep = image_.Activate(0, 64);
  ASSERT_TRUE(keep.has_value());
  for (WordCount w = 0; w < 64; ++w) {
    store_.Write(PhysicalAddress{keep->value + w}, 0xabcd0000u + w);
  }
  // Churn other segments around it.
  const auto other = image_.Activate(1, 128);
  ASSERT_TRUE(other.has_value());
  image_.Deactivate(1);
  image_.Activate(2, 30);
  image_.Activate(3, 70);
  for (WordCount w = 0; w < 64; ++w) {
    EXPECT_EQ(store_.Read(PhysicalAddress{keep->value + w}), 0xabcd0000u + w);
  }
}

TEST(RiceImageDeathTest, DoubleActivateAborts) {
  CoreStore store(256);
  RiceStorageImage image(&store, 4);
  ASSERT_TRUE(image.Activate(0, 10).has_value());
  EXPECT_DEATH(image.Activate(0, 10), "already active");
}

TEST(RiceImageDeathTest, DeactivateAbsentAborts) {
  CoreStore store(256);
  RiceStorageImage image(&store, 4);
  EXPECT_DEATH(image.Deactivate(0), "absent");
}

}  // namespace
}  // namespace dsa
