// Unit tests for the Rice University inactive-block chain allocator
// (Appendix A.4).

#include <gtest/gtest.h>

#include "src/alloc/rice_chain.h"

namespace dsa {
namespace {

TEST(RiceChainTest, SequentialInitialPlacement) {
  RiceChainAllocator alloc(1000);
  EXPECT_EQ(alloc.Allocate(100)->addr, PhysicalAddress{0});
  EXPECT_EQ(alloc.Allocate(100)->addr, PhysicalAddress{100});
  EXPECT_EQ(alloc.Allocate(100)->addr, PhysicalAddress{200});
  EXPECT_EQ(alloc.chain_length(), 1u);  // the shrinking initial block
}

TEST(RiceChainTest, LeftoverReplacesBlockInChain) {
  RiceChainAllocator alloc(1000);
  const auto a = alloc.Allocate(100);
  alloc.Allocate(100);
  alloc.Free(a->addr);  // head of chain: [0,100)
  // Allocate 40 from the freed block: leftover [40,100) keeps chain position.
  const auto b = alloc.Allocate(40);
  EXPECT_EQ(b->addr, PhysicalAddress{0});
  EXPECT_EQ(alloc.chain_length(), 2u);  // leftover + initial block
  // The leftover is found first on the next small request.
  EXPECT_EQ(alloc.Allocate(60)->addr, PhysicalAddress{40});
}

TEST(RiceChainTest, ExactFitRemovesChainEntry) {
  RiceChainAllocator alloc(1000);
  const auto a = alloc.Allocate(100);
  alloc.Allocate(100);
  alloc.Free(a->addr);
  EXPECT_EQ(alloc.chain_length(), 2u);
  alloc.Allocate(100);  // exact fit for the freed block
  EXPECT_EQ(alloc.chain_length(), 1u);
}

TEST(RiceChainTest, MostRecentlyFreedSearchedFirst) {
  RiceChainAllocator alloc(300);
  const auto a = alloc.Allocate(100);
  const auto b = alloc.Allocate(100);
  const auto c = alloc.Allocate(100);
  ASSERT_TRUE(a && b && c);
  alloc.Free(a->addr);
  alloc.Free(c->addr);  // chain: c, a
  EXPECT_EQ(alloc.Allocate(50)->addr, c->addr);
}

TEST(RiceChainTest, CombiningMergesAdjacentInactiveBlocks) {
  RiceChainAllocator alloc(300);
  const auto a = alloc.Allocate(100);
  const auto b = alloc.Allocate(100);
  const auto c = alloc.Allocate(100);
  ASSERT_TRUE(a && b && c);
  alloc.Free(a->addr);
  alloc.Free(b->addr);
  // Chain holds two adjacent 100-word blocks; a 150-word request needs the
  // combining pass.
  const auto big = alloc.Allocate(150);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->addr, PhysicalAddress{0});
  EXPECT_EQ(alloc.combines(), 1u);
}

TEST(RiceChainTest, ReplacementHookAppliedIteratively) {
  RiceChainAllocator alloc(300);
  std::vector<PhysicalAddress> victims;
  for (int i = 0; i < 3; ++i) {
    victims.push_back(alloc.Allocate(100)->addr);
  }
  // Hook releases live blocks lowest-address-first, one per invocation —
  // "applied iteratively until a block of sufficient size is released."
  alloc.set_replacement_hook([](RiceChainAllocator* a) {
    const auto live = a->LiveBlocks();
    if (live.empty()) {
      return false;
    }
    a->Free(live.front().addr);
    return true;
  });
  const auto big = alloc.Allocate(250);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->addr, PhysicalAddress{0});
  EXPECT_GE(alloc.replacement_invocations(), 2u);  // one eviction was not enough
}

TEST(RiceChainTest, HookGivingUpYieldsFailure) {
  RiceChainAllocator alloc(100);
  alloc.Allocate(100);
  alloc.set_replacement_hook([](RiceChainAllocator*) { return false; });
  EXPECT_FALSE(alloc.Allocate(50).has_value());
  EXPECT_EQ(alloc.stats().failures, 1u);
  EXPECT_EQ(alloc.replacement_invocations(), 1u);
}

TEST(RiceChainTest, NoHookMeansPlainFailure) {
  RiceChainAllocator alloc(100);
  alloc.Allocate(100);
  EXPECT_FALSE(alloc.Allocate(1).has_value());
  EXPECT_EQ(alloc.replacement_invocations(), 0u);
}

TEST(RiceChainTest, HoleSizesMergeAdjacency) {
  RiceChainAllocator alloc(300);
  const auto a = alloc.Allocate(100);
  const auto b = alloc.Allocate(100);
  ASSERT_TRUE(a && b);
  alloc.Free(b->addr);
  alloc.Free(a->addr);
  // Chain entries are [0,100) and [100,200) plus the initial [200,300):
  // physically one hole.
  const auto holes = alloc.HoleSizes();
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], 300u);
}

TEST(RiceChainTest, SearchLengthAccounted) {
  RiceChainAllocator alloc(1000);
  alloc.Allocate(100);
  EXPECT_EQ(alloc.chain_blocks_examined(), 1u);
}

TEST(RiceChainDeathTest, UnknownFreeAborts) {
  RiceChainAllocator alloc(100);
  EXPECT_DEATH(alloc.Free(PhysicalAddress{10}), "unknown block");
}

}  // namespace
}  // namespace dsa
