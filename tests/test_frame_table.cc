// Unit tests for the frame table and its hardware usage sensors.

#include <gtest/gtest.h>

#include "src/paging/frame_table.h"

namespace dsa {
namespace {

TEST(FrameTableTest, FreeFramesPopLowestFirst) {
  FrameTable table(4);
  EXPECT_EQ(table.free_count(), 4u);
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{0});
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{1});
  EXPECT_EQ(table.free_count(), 2u);
}

TEST(FrameTableTest, LoadRecordsPageAndTimes) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{9}, 100);
  const FrameInfo& info = table.info(frame);
  EXPECT_TRUE(info.occupied);
  EXPECT_EQ(info.page, PageId{9});
  EXPECT_EQ(info.load_time, 100u);
  EXPECT_EQ(info.last_use, 100u);
  EXPECT_FALSE(info.use);
  EXPECT_EQ(table.occupied_count(), 1u);
}

TEST(FrameTableTest, TouchSetsSensors) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 5, /*write=*/false, /*idle_threshold=*/100);
  EXPECT_TRUE(table.info(frame).use);
  EXPECT_FALSE(table.info(frame).modified);
  table.Touch(frame, 6, /*write=*/true, 100);
  EXPECT_TRUE(table.info(frame).modified);
  EXPECT_EQ(table.info(frame).last_use, 6u);
}

TEST(FrameTableTest, IdlePeriodsRecordedBeyondThreshold) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 10, false, /*idle_threshold=*/100);
  EXPECT_EQ(table.info(frame).previous_idle, 0u);  // short gap: same use period
  table.Touch(frame, 500, false, 100);
  EXPECT_EQ(table.info(frame).previous_idle, 490u);  // completed inactivity period
  table.Touch(frame, 505, false, 100);
  EXPECT_EQ(table.info(frame).previous_idle, 490u);  // short gap preserves the record
}

TEST(FrameTableTest, EvictReturnsFrameToFreePool) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Evict(frame);
  EXPECT_FALSE(table.info(frame).occupied);
  EXPECT_EQ(table.free_count(), 2u);
}

TEST(FrameTableTest, PinnedFramesAreNotCandidates) {
  FrameTable table(3);
  const FrameId a = *table.TakeFreeFrame();
  const FrameId b = *table.TakeFreeFrame();
  table.Load(a, PageId{1}, 0);
  table.Load(b, PageId{2}, 0);
  table.Pin(a);
  const auto candidates = table.EvictionCandidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], b);
  table.Unpin(a);
  EXPECT_EQ(table.EvictionCandidates().size(), 2u);
}

TEST(FrameTableTest, ClearSensors) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 1, true, 10);
  table.ClearUse(frame);
  table.ClearModified(frame);
  EXPECT_FALSE(table.info(frame).use);
  EXPECT_FALSE(table.info(frame).modified);
}

TEST(FrameTableTest, ExhaustedFreePoolReturnsNullopt) {
  FrameTable table(1);
  EXPECT_TRUE(table.TakeFreeFrame().has_value());
  EXPECT_FALSE(table.TakeFreeFrame().has_value());
}

TEST(FrameTableDeathTest, DoubleLoadAborts) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  EXPECT_DEATH(table.Load(frame, PageId{2}, 1), "occupied");
}

TEST(FrameTableDeathTest, EvictingPinnedFrameAborts) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Pin(frame);
  EXPECT_DEATH(table.Evict(frame), "pinned");
}

TEST(FrameTableDeathTest, TouchingEmptyFrameAborts) {
  FrameTable table(1);
  EXPECT_DEATH(table.Touch(FrameId{0}, 0, false, 1), "empty");
}

}  // namespace
}  // namespace dsa
