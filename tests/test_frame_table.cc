// Unit tests for the frame table and its hardware usage sensors.

#include <gtest/gtest.h>

#include "src/paging/frame_table.h"

namespace dsa {
namespace {

TEST(FrameTableTest, FreeFramesPopLowestFirst) {
  FrameTable table(4);
  EXPECT_EQ(table.free_count(), 4u);
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{0});
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{1});
  EXPECT_EQ(table.free_count(), 2u);
}

TEST(FrameTableTest, LoadRecordsPageAndTimes) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{9}, 100);
  const FrameInfo& info = table.info(frame);
  EXPECT_TRUE(info.occupied);
  EXPECT_EQ(info.page, PageId{9});
  EXPECT_EQ(info.load_time, 100u);
  EXPECT_EQ(info.last_use, 100u);
  EXPECT_FALSE(info.use);
  EXPECT_EQ(table.occupied_count(), 1u);
}

TEST(FrameTableTest, TouchSetsSensors) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 5, /*write=*/false, /*idle_threshold=*/100);
  EXPECT_TRUE(table.info(frame).use);
  EXPECT_FALSE(table.info(frame).modified);
  table.Touch(frame, 6, /*write=*/true, 100);
  EXPECT_TRUE(table.info(frame).modified);
  EXPECT_EQ(table.info(frame).last_use, 6u);
}

TEST(FrameTableTest, IdlePeriodsRecordedBeyondThreshold) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 10, false, /*idle_threshold=*/100);
  EXPECT_EQ(table.info(frame).previous_idle, 0u);  // short gap: same use period
  table.Touch(frame, 500, false, 100);
  EXPECT_EQ(table.info(frame).previous_idle, 490u);  // completed inactivity period
  table.Touch(frame, 505, false, 100);
  EXPECT_EQ(table.info(frame).previous_idle, 490u);  // short gap preserves the record
}

TEST(FrameTableTest, EvictReturnsFrameToFreePool) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Evict(frame);
  EXPECT_FALSE(table.info(frame).occupied);
  EXPECT_EQ(table.free_count(), 2u);
}

TEST(FrameTableTest, PinnedFramesAreNotCandidates) {
  FrameTable table(3);
  const FrameId a = *table.TakeFreeFrame();
  const FrameId b = *table.TakeFreeFrame();
  table.Load(a, PageId{1}, 0);
  table.Load(b, PageId{2}, 0);
  table.Pin(a);
  const auto candidates = table.EvictionCandidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], b);
  table.Unpin(a);
  EXPECT_EQ(table.EvictionCandidates().size(), 2u);
}

TEST(FrameTableTest, ClearSensors) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Touch(frame, 1, true, 10);
  table.ClearUse(frame);
  table.ClearModified(frame);
  EXPECT_FALSE(table.info(frame).use);
  EXPECT_FALSE(table.info(frame).modified);
}

TEST(FrameTableTest, ExhaustedFreePoolReturnsNullopt) {
  FrameTable table(1);
  EXPECT_TRUE(table.TakeFreeFrame().has_value());
  EXPECT_FALSE(table.TakeFreeFrame().has_value());
}

TEST(FrameTableTest, RetiredFrameLeavesFreePool) {
  FrameTable table(3);
  table.RetireFrame(FrameId{1});
  EXPECT_EQ(table.retired_count(), 1u);
  EXPECT_EQ(table.usable_frame_count(), 2u);
  EXPECT_TRUE(table.info(FrameId{1}).retired);
  // The free pool skips the retired frame entirely.
  EXPECT_EQ(table.free_count(), 2u);
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{0});
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{2});
  EXPECT_FALSE(table.TakeFreeFrame().has_value());
}

TEST(FrameTableTest, RetireAfterEvictRemovesFrameFromCirculation) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Evict(frame);  // back in the free pool...
  table.RetireFrame(frame);  // ...and now gone for good
  EXPECT_EQ(table.usable_frame_count(), 1u);
  EXPECT_EQ(table.TakeFreeFrame(), FrameId{1});
  EXPECT_FALSE(table.TakeFreeFrame().has_value());
  EXPECT_TRUE(table.EvictionCandidates().empty());
}

TEST(FrameTableDeathTest, DoubleLoadAborts) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  EXPECT_DEATH(table.Load(frame, PageId{2}, 1), "occupied");
}

TEST(FrameTableDeathTest, EvictingPinnedFrameAborts) {
  FrameTable table(1);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Pin(frame);
  EXPECT_DEATH(table.Evict(frame), "pinned");
}

TEST(FrameTableDeathTest, TouchingEmptyFrameAborts) {
  FrameTable table(1);
  EXPECT_DEATH(table.Touch(FrameId{0}, 0, false, 1), "empty");
}

// Double-vacating a frame must remain a hard abort: a second Evict means the
// caller's residency bookkeeping has already diverged from the table's.
TEST(FrameTableDeathTest, DoubleEvictAborts) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  table.Evict(frame);
  EXPECT_DEATH(table.Evict(frame), "empty");
}

TEST(FrameTableDeathTest, RetiringOccupiedFrameAborts) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{1}, 0);
  EXPECT_DEATH(table.RetireFrame(frame), "occupied");
}

TEST(FrameTableDeathTest, RetiringFrameTwiceAborts) {
  FrameTable table(2);
  table.RetireFrame(FrameId{0});
  EXPECT_DEATH(table.RetireFrame(FrameId{0}), "twice");
}

TEST(FrameTableDeathTest, ReturningRetiredFrameAborts) {
  FrameTable table(2);
  const FrameId frame = *table.TakeFreeFrame();
  table.RetireFrame(frame);
  EXPECT_DEATH(table.ReturnFreeFrame(frame), "retired");
}

TEST(FrameTableDeathTest, LoadingIntoRetiredFrameAborts) {
  FrameTable table(2);
  table.RetireFrame(FrameId{0});
  EXPECT_DEATH(table.Load(FrameId{0}, PageId{1}, 0), "retired");
}

}  // namespace
}  // namespace dsa
