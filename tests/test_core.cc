// Unit tests for src/core: strong ids, Expected, Clock, Rng, and the
// taxonomy types.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/core/characteristics.h"
#include "src/core/clock.h"
#include "src/core/expected.h"
#include "src/core/hardware.h"
#include "src/core/rng.h"
#include "src/core/strategy.h"
#include "src/core/types.h"

namespace dsa {
namespace {

// --- StrongId ---------------------------------------------------------------

TEST(StrongIdTest, DefaultIsZero) {
  PageId page;
  EXPECT_EQ(page.value, 0u);
}

TEST(StrongIdTest, ComparesByValue) {
  EXPECT_EQ(PageId{7}, PageId{7});
  EXPECT_NE(PageId{7}, PageId{8});
  EXPECT_LT(PageId{7}, PageId{8});
  EXPECT_GT(FrameId{9}, FrameId{1});
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<PageId, FrameId>);
  static_assert(!std::is_same_v<Name, PhysicalAddress>);
}

TEST(StrongIdTest, HashableInUnorderedContainers) {
  std::unordered_set<PageId> pages;
  pages.insert(PageId{1});
  pages.insert(PageId{2});
  pages.insert(PageId{1});
  EXPECT_EQ(pages.size(), 2u);
}

TEST(AccessKindTest, ToStringCoversAllKinds) {
  EXPECT_STREQ(ToString(AccessKind::kRead), "read");
  EXPECT_STREQ(ToString(AccessKind::kWrite), "write");
  EXPECT_STREQ(ToString(AccessKind::kExecute), "execute");
}

// --- Expected ---------------------------------------------------------------

TEST(ExpectedTest, HoldsValue) {
  Expected<int, std::string> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(-1), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int, std::string> e = MakeUnexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(ExpectedTest, BoolConversion) {
  Expected<int, int> good = 1;
  Expected<int, int> bad = MakeUnexpected(2);
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_FALSE(static_cast<bool>(bad));
}

TEST(ExpectedTest, ArrowOperator) {
  struct Payload {
    int x;
  };
  Expected<Payload, int> e = Payload{5};
  EXPECT_EQ(e->x, 5);
}

TEST(ExpectedTest, RvalueValueOrMovesInsteadOfCopying) {
  Expected<std::unique_ptr<int>, int> good = std::make_unique<int>(7);
  std::unique_ptr<int> taken = std::move(good).value_or(nullptr);
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);

  Expected<std::unique_ptr<int>, int> bad = MakeUnexpected(1);
  std::unique_ptr<int> fallback = std::move(bad).value_or(std::make_unique<int>(9));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(*fallback, 9);
}

TEST(ExpectedTest, StatusCarriesOkOrError) {
  Status<std::string> ok = Ok();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, Monostate{});

  Status<std::string> failed = MakeUnexpected(std::string("write-back lost"));
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error(), "write-back lost");
  EXPECT_FALSE(static_cast<bool>(failed));
}

TEST(ExpectedDeathTest, ValueOnErrorAborts) {
  Expected<int, int> e = MakeUnexpected(3);
  EXPECT_DEATH(e.value(), "Expected::value");
}

TEST(ExpectedDeathTest, ErrorOnValueAborts) {
  Expected<int, int> e = 3;
  EXPECT_DEATH(e.error(), "Expected::error");
}

// --- Clock ------------------------------------------------------------------

TEST(ClockTest, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(5);
  clock.Advance(7);
  EXPECT_EQ(clock.now(), 12u);
}

TEST(ClockTest, AdvanceToMovesForward) {
  Clock clock;
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(100);  // no-op allowed
  EXPECT_EQ(clock.now(), 100u);
}

TEST(ClockTest, ResetReturnsToZero) {
  Clock clock;
  clock.Advance(9);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(ClockDeathTest, CannotMoveBackwards) {
  Clock clock;
  clock.Advance(10);
  EXPECT_DEATH(clock.AdvanceTo(5), "backwards");
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(15);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, ExponentialSizeBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t s = rng.ExponentialSize(64.0, 1000);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 1000u);
  }
}

TEST(RngTest, ExponentialSizeMeanRoughlyMatches) {
  Rng rng(19);
  double sum = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.ExponentialSize(100.0, 1u << 30));
  }
  // Mean of 1 + Exp(100) is ~101; allow generous tolerance.
  EXPECT_NEAR(sum / trials, 101.0, 5.0);
}

TEST(RngTest, ReseedReproduces) {
  Rng rng(21);
  const std::uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(21);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, ForkIsPureFunctionOfSeedAndStream) {
  // Forking neither draws from nor perturbs the parent, so forks taken
  // before and after heavy parent use — or from a fresh generator with the
  // same seed — are the same stream.  This is what makes per-cell forks
  // independent of sweep scheduling order.
  Rng parent(1967);
  Rng early = parent.Fork(5);
  for (int i = 0; i < 1000; ++i) {
    parent.Next();
  }
  Rng late = parent.Fork(5);
  Rng fresh = Rng(1967).Fork(5);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t expected = fresh.Next();
    EXPECT_EQ(early.Next(), expected);
    EXPECT_EQ(late.Next(), expected);
  }
}

TEST(RngTest, ForkedStreamsAreMutuallyDistinct) {
  Rng parent(7);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  Rng c = parent.Fork(2);
  int disagreements = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t va = a.Next();
    const std::uint64_t vb = b.Next();
    const std::uint64_t vc = c.Next();
    disagreements += (va != vb) + (vb != vc) + (va != vc);
  }
  // Independent 64-bit streams should essentially never collide pointwise.
  EXPECT_GE(disagreements, 3 * 256 - 3);
}

TEST(RngTest, ForkedStreamNeverOverlapsParentOverLongHorizon) {
  // The header's non-overlap promise: draw 2^17 values from the parent and
  // from one fork; no window of the child sequence may appear in the
  // parent's (checked via 64-bit draw membership — a single shared value
  // would already be suspicious at this horizon, ~2^34 birthday pairs vs
  // 2^64 space).
  constexpr std::size_t kHorizon = std::size_t{1} << 17;
  Rng parent(0xDEADBEEF);
  Rng child = parent.Fork(3);
  std::unordered_set<std::uint64_t> parent_draws;
  parent_draws.reserve(kHorizon);
  for (std::size_t i = 0; i < kHorizon; ++i) {
    parent_draws.insert(parent.Next());
  }
  std::size_t collisions = 0;
  for (std::size_t i = 0; i < kHorizon; ++i) {
    collisions += parent_draws.count(child.Next());
  }
  EXPECT_EQ(collisions, 0u);
}

TEST(RngTest, Fork2StreamsDistinctAcrossGridAndAgainstFlatForks) {
  // The header's Fork2 promise: over a (2^8 x 2^8) grid of (outer, inner)
  // pairs, every hierarchical stream is distinct — from each other and from
  // the flat Fork streams of the same parent.  First draws landing in a
  // shared set is a birthday test (~2^17 streams against 2^64 space: any
  // collision means structural correlation, not chance).
  Rng parent(1967);
  std::unordered_set<std::uint64_t> first_draws;
  for (std::uint64_t flat = 0; flat < 256; ++flat) {
    EXPECT_TRUE(first_draws.insert(parent.Fork(flat).Next()).second);
  }
  for (std::uint64_t outer = 0; outer < 256; ++outer) {
    for (std::uint64_t inner = 0; inner < 256; ++inner) {
      EXPECT_TRUE(first_draws.insert(parent.Fork2(outer, inner).Next()).second)
          << "Fork2(" << outer << ", " << inner << ") collided";
    }
  }
}

TEST(RngTest, Fork2IsPureAndEqualsNestedForks) {
  Rng parent(42);
  Rng direct = parent.Fork2(9, 4);
  for (int i = 0; i < 100; ++i) {
    parent.Next();
  }
  Rng nested = parent.Fork(9).Fork(4);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(direct.Next(), nested.Next());
  }
}

// --- Characteristics ----------------------------------------------------------

TEST(CharacteristicsTest, DefaultIsLinearPagedNoPrediction) {
  Characteristics c;
  EXPECT_EQ(c.name_space, NameSpaceKind::kLinear);
  EXPECT_EQ(c.predictive, PredictiveInformation::kNotAccepted);
  EXPECT_EQ(c.contiguity, ArtificialContiguity::kNone);
  EXPECT_EQ(c.unit, AllocationUnit::kUniformPages);
}

TEST(CharacteristicsTest, AuthorsFavoredMatchesTheSummarySection) {
  const Characteristics c = AuthorsFavoredCharacteristics();
  EXPECT_EQ(c.name_space, NameSpaceKind::kSymbolicallySegmented);
  EXPECT_EQ(c.predictive, PredictiveInformation::kAccepted);
  EXPECT_EQ(c.contiguity, ArtificialContiguity::kProvided);
  EXPECT_EQ(c.unit, AllocationUnit::kVariableBlocks);
}

TEST(CharacteristicsTest, DescribeMentionsEveryAxis) {
  const std::string text = Describe(AuthorsFavoredCharacteristics());
  EXPECT_NE(text.find("symbolically segmented"), std::string::npos);
  EXPECT_NE(text.find("accepted"), std::string::npos);
  EXPECT_NE(text.find("artificial contiguity"), std::string::npos);
  EXPECT_NE(text.find("variable blocks"), std::string::npos);
}

TEST(CharacteristicsTest, EqualityIsMemberwise) {
  Characteristics a = AuthorsFavoredCharacteristics();
  Characteristics b = a;
  EXPECT_EQ(a, b);
  b.unit = AllocationUnit::kUniformPages;
  EXPECT_NE(a, b);
}

TEST(StrategyTest, ToStringCoversEveryKind) {
  EXPECT_STREQ(ToString(FetchStrategyKind::kDemand), "demand");
  EXPECT_STREQ(ToString(FetchStrategyKind::kPrefetch), "prefetch");
  EXPECT_STREQ(ToString(FetchStrategyKind::kAdvised), "advised");
  EXPECT_STREQ(ToString(PlacementStrategyKind::kBestFit), "best-fit");
  EXPECT_STREQ(ToString(PlacementStrategyKind::kTwoEnded), "two-ended");
  EXPECT_STREQ(ToString(PlacementStrategyKind::kRiceChain), "rice-chain");
  EXPECT_STREQ(ToString(ReplacementStrategyKind::kAtlasLearning), "atlas-learning");
  EXPECT_STREQ(ToString(ReplacementStrategyKind::kM44Class), "m44-class");
  EXPECT_STREQ(ToString(ReplacementStrategyKind::kOpt), "opt");
}

// --- HardwareFacilitySet ------------------------------------------------------

TEST(HardwareFacilityTest, EmptySetDescribesAsNone) {
  HardwareFacilitySet set;
  EXPECT_EQ(set.Describe(), "(none)");
  EXPECT_FALSE(set.Has(HardwareFacility::kAddressMapping));
}

TEST(HardwareFacilityTest, AddAndQuery) {
  HardwareFacilitySet set;
  set.Add(HardwareFacility::kAddressMapping).Add(HardwareFacility::kStoragePacking);
  EXPECT_TRUE(set.Has(HardwareFacility::kAddressMapping));
  EXPECT_TRUE(set.Has(HardwareFacility::kStoragePacking));
  EXPECT_FALSE(set.Has(HardwareFacility::kInvalidAccessTrapping));
}

TEST(HardwareFacilityTest, DescribeListsInCatalogueOrder) {
  HardwareFacilitySet set;
  set.Add(HardwareFacility::kInvalidAccessTrapping).Add(HardwareFacility::kAddressMapping);
  EXPECT_EQ(set.Describe(), "address mapping, invalid access trapping");
}

}  // namespace
}  // namespace dsa
