// Fault-point sweep for the durable-IO seam (ctest label: faultpoint).
//
// The headline matrix: count the N filesystem operations a reference serve
// run performs, then for EVERY op index k <= N run the service again with
//
//   (a) a transient EIO window opening at op k — the service must retry,
//       degrade if the window outlasts the retry budget, keep stepping
//       tenants, recover when the window closes, and land an output tree
//       byte-identical to the undisturbed run (IO.txt/IO.events.jsonl
//       excepted: those exist precisely BECAUSE the run was disturbed); or
//   (b) a simulated crash at op k (optionally tearing the write at a byte
//       offset) — the run must die like SIGKILL would, and a clean restart
//       must finish with a byte-identical tree, at every possible crash
//       point, not just at commit boundaries like the resume matrix.
//
// Alongside: the persistent-ENOSPC endgame (every tenant completes, the
// daemon exits alive-but-degraded with honest giveup/degraded counters) and
// the degraded -> recovered round trip with its IO report and event stream.
//
// The sweeps shard over the SweepRunner; every cell owns its directories
// and its own Fs chain, so the op counters stay deterministic per cell.
// Every cell runs at checkpoint_full_every=3, so the checkpoints under
// fault are mixed full+delta chains — the sweep doubles as the delta
// path's crash/transient-fault certification at every op index.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/core/fsio.h"
#include "src/exec/sweep_runner.h"
#include "src/serve/service.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

namespace fs = std::filesystem;

SystemSpec ServeSpec() {
  SystemSpec spec;
  spec.label = "faultpoint-test";
  spec.core_words = 2048;
  spec.page_words = 128;  // 16 frames
  spec.tlb_entries = 4;
  spec.backing_level = MakeDrumLevel("drum", 1u << 17, /*word_time=*/2,
                                     /*rotational_delay=*/500);
  return spec;
}

struct Scratch {
  explicit Scratch(const std::string& tag)
      : root(fs::temp_directory_path() /
             ("dsa_faultpoint_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(root);
    fs::create_directories(root / "spool");
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(root, ec);
  }
  std::string Spool() const { return (root / "spool").string(); }
  std::string Out(const std::string& name) const { return (root / name).string(); }

  fs::path root;
};

void SpoolTenant(const Scratch& scratch, const std::string& name,
                 std::uint64_t seed, std::size_t phase_length) {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  params.regions_per_phase = 20;  // more regions than frames: steady faulting
  params.phase_length = phase_length;
  params.phases = 2;
  params.seed = seed;
  const ReferenceTrace trace = MakeWorkingSetTrace(params);
  std::ofstream out(fs::path(scratch.Spool()) / name);
  ASSERT_TRUE(out) << name;
  WriteReferenceTrace(trace, &out);
}

void SpoolTwoTenants(const Scratch& scratch) {
  SpoolTenant(scratch, "alpha.trace", 11, /*phase_length=*/600);
  SpoolTenant(scratch, "beta.trace", 22, /*phase_length=*/400);
}

ServeConfig ConfigFor(const Scratch& scratch, const std::string& tag) {
  ServeConfig config;
  config.spool_dir = scratch.Spool();
  config.out_dir = scratch.Out(tag + ".out");
  config.checkpoint_dir = scratch.Out(tag + ".ckpt");
  config.checkpoint_every = 12000;
  // Every third commit full, the rest deltas: both sweeps then inject their
  // faults into mixed full+delta chains at every op index, proving the
  // delta path restores byte-identically under exactly the same IO abuse
  // the flat path survives.
  config.checkpoint_full_every = 3;
  config.rescan_spool = false;
  return config;
}

std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[entry.path().filename().string()] = std::move(bytes);
  }
  return files;
}

bool IsIoReportFile(const std::string& name) {
  return name == "IO.txt" || name == "IO.events.jsonl";
}

// Byte-compares `actual` against `expected`, tolerating (only) the IO
// report files on the actual side.  Returns "" on match.
std::string DiffIgnoringIoReport(const std::map<std::string, std::string>& expected,
                                 const std::map<std::string, std::string>& actual) {
  for (const auto& [name, bytes] : expected) {
    auto it = actual.find(name);
    if (it == actual.end()) {
      return "missing output " + name;
    }
    if (it->second != bytes) {
      return name + " differs from the undisturbed run";
    }
  }
  for (const auto& [name, bytes] : actual) {
    if (expected.find(name) == expected.end() && !IsIoReportFile(name)) {
      return "unexpected extra output " + name;
    }
  }
  return std::string();
}

// The reference run, instrumented only to COUNT ops: an empty fault
// schedule injects nothing, so this both measures N and proves the
// decorator is transparent (the tree must match an un-instrumented run).
struct Reference {
  std::map<std::string, std::string> tree;
  std::uint64_t ops{0};
};

Reference RunReference(const Scratch& scratch) {
  Reference ref;
  ServeConfig plain_config = ConfigFor(scratch, "plain");
  {
    ServiceLoop loop(ServeSpec(), plain_config);
    auto outcome = loop.Run();
    EXPECT_TRUE(outcome.has_value());
    if (outcome.has_value()) {
      EXPECT_TRUE(outcome->finished);
      EXPECT_FALSE(outcome->degraded);
      EXPECT_EQ(outcome->io_retries, 0u);
      EXPECT_EQ(outcome->io_giveups, 0u);
    }
  }
  ref.tree = SlurpDir(plain_config.out_dir);
  EXPECT_EQ(ref.tree.count("IO.txt"), 0u)
      << "a clean run must not grow an IO report";

  FaultInjectingFs counter(&SystemFs(), FsFaultConfig{});
  ServeConfig config = ConfigFor(scratch, "ref");
  config.fs = &counter;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  EXPECT_TRUE(outcome.has_value());
  if (outcome.has_value()) {
    EXPECT_TRUE(outcome->finished);
  }
  ref.ops = counter.ops_issued();
  EXPECT_EQ(counter.faults_injected(), 0u);
  const auto instrumented = SlurpDir(config.out_dir);
  EXPECT_EQ(ref.tree, instrumented)
      << "an empty fault schedule must be byte-transparent";
  return ref;
}

// Restarts the service with a clean filesystem until it finishes, the way
// the daemon supervisor would after a crash; returns "" or a failure.
std::string FinishCleanly(ServeConfig config,
                          const std::map<std::string, std::string>& expected,
                          const std::string& tag) {
  config.fs = nullptr;
  for (int attempt = 0; attempt < 4; ++attempt) {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    if (!outcome.has_value()) {
      return tag + ": clean restart errored: " + outcome.error().Describe();
    }
    if (outcome->finished) {
      if (outcome->degraded) {
        return tag + ": clean restart ended degraded";
      }
      const auto actual = SlurpDir(config.out_dir);
      if (actual != expected) {
        const std::string diff = DiffIgnoringIoReport(expected, actual);
        return tag + ": " + (diff.empty() ? "IO report left by a clean restart" : diff);
      }
      return std::string();
    }
  }
  return tag + ": service never finished after restarts";
}

TEST(IoFaultPointTest, TransientWindowAtEveryOpHealsByteIdentical) {
  Scratch scratch("eio");
  SpoolTwoTenants(scratch);
  const Reference ref = RunReference(scratch);
  ASSERT_GE(ref.ops, 20u) << "reference run too small for a meaningful sweep";

  // The window outlasts the per-op retry budget (4 tries) but not the
  // final-flush re-attempts (8 x 4), so every hit gives up at least once,
  // degrades, and still heals before the loop runs out of patience.
  SweepRunner runner(/*jobs=*/4);
  const std::vector<std::string> failures =
      runner.Run(ref.ops, [&](std::size_t cell) -> std::string {
        const std::uint64_t k = cell + 1;
        const std::string tag = "eio" + std::to_string(k);
        FsFaultConfig schedule;
        FsFaultWindow window;
        window.first_op = k;
        window.ops = 24;
        window.err = EIO;
        schedule.windows.push_back(window);
        FaultInjectingFs faulty(&SystemFs(), schedule);
        ServeConfig config = ConfigFor(scratch, tag);
        config.fs = &faulty;
        ServiceLoop loop(ServeSpec(), config);
        auto outcome = loop.Run();
        if (faulty.faults_injected() == 0) {
          return tag + ": the window never fired (op numbering drifted?)";
        }
        if (!outcome.has_value()) {
          // The window swallowed startup (spool admission / store recovery
          // have no committed state to limp along with): a typed
          // environment error, answered by a supervisor restart.
          return FinishCleanly(config, ref.tree, tag);
        }
        if (!outcome->finished) {
          return tag + ": loop stopped without a kill point";
        }
        if (outcome->degraded) {
          return tag + ": transient window must heal before exit";
        }
        if (outcome->io_retries == 0 && outcome->io_giveups == 0) {
          return tag + ": injected faults left no retry/giveup trace";
        }
        const std::string diff = DiffIgnoringIoReport(ref.tree, SlurpDir(config.out_dir));
        return diff.empty() ? std::string() : tag + ": " + diff;
      });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(IoFaultPointTest, CrashAtEveryOpRestartsByteIdentical) {
  Scratch scratch("crash");
  SpoolTwoTenants(scratch);
  const Reference ref = RunReference(scratch);
  ASSERT_GE(ref.ops, 20u);

  SweepRunner runner(/*jobs=*/4);
  const std::vector<std::string> failures =
      runner.Run(ref.ops, [&](std::size_t cell) -> std::string {
        const std::uint64_t k = cell + 1;
        const std::string tag = "crash" + std::to_string(k);
        FsFaultConfig schedule;
        FsFaultWindow window;
        window.first_op = k;
        window.crash = true;
        // Tear write ops at a rotating byte offset, so the sweep also
        // covers partially-persisted appends and half-written temp files.
        window.torn_bytes = k % 13;
        schedule.windows.push_back(window);
        FaultInjectingFs faulty(&SystemFs(), schedule);
        ServeConfig config = ConfigFor(scratch, tag);
        config.fs = &faulty;
        ServiceLoop loop(ServeSpec(), config);
        auto outcome = loop.Run();
        if (outcome.has_value()) {
          return tag + ": a crashed filesystem cannot serve to completion";
        }
        if (!faulty.halted()) {
          return tag + ": crash window fired without latching halted()";
        }
        return FinishCleanly(config, ref.tree, tag);
      });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(IoFaultPointTest, PersistentEnospcFinishesDegradedButAlive) {
  Scratch scratch("enospc");
  SpoolTwoTenants(scratch);
  const Reference ref = RunReference(scratch);
  ASSERT_GE(ref.ops, 20u);

  // The disk "fills" halfway through the run and never recovers.  The
  // daemon must still step every tenant to completion and exit finished —
  // degraded, with honest counters — never hang or abort.
  FsFaultConfig schedule;
  FsFaultWindow window;
  window.first_op = ref.ops / 2;
  window.ops = 0;  // persistent
  window.err = ENOSPC;
  schedule.windows.push_back(window);
  FaultInjectingFs faulty(&SystemFs(), schedule);
  ServeConfig config = ConfigFor(scratch, "enospc");
  config.fs = &faulty;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  ASSERT_TRUE(outcome.has_value()) << outcome.error().Describe();
  EXPECT_TRUE(outcome->finished) << "degraded is not dead";
  EXPECT_TRUE(outcome->degraded);
  EXPECT_EQ(outcome->tenants_completed, 2u)
      << "tenants must keep stepping while durable IO is down";
  EXPECT_GT(outcome->io_giveups, 0u);
  EXPECT_GT(outcome->degraded_cycles, 0u);
  EXPECT_GT(outcome->reports_unwritten, 0u);
}

TEST(IoFaultPointTest, DegradedRecoveredRoundTripReportsItself) {
  Scratch scratch("roundtrip");
  SpoolTwoTenants(scratch);
  const Reference ref = RunReference(scratch);
  ASSERT_GE(ref.ops, 20u);

  FsFaultConfig schedule;
  FsFaultWindow window;
  window.first_op = ref.ops / 2;
  window.ops = 24;
  window.err = EIO;
  schedule.windows.push_back(window);
  FaultInjectingFs faulty(&SystemFs(), schedule);
  ServeConfig config = ConfigFor(scratch, "roundtrip");
  config.fs = &faulty;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  ASSERT_TRUE(outcome.has_value()) << outcome.error().Describe();
  ASSERT_TRUE(outcome->finished);
  EXPECT_FALSE(outcome->degraded) << "the window closed; the service must re-arm";
  EXPECT_GT(outcome->io_giveups, 0u);
  EXPECT_GT(outcome->degraded_cycles, 0u);
  EXPECT_EQ(outcome->reports_unwritten, 0u);

  const auto actual = SlurpDir(config.out_dir);
  EXPECT_EQ(DiffIgnoringIoReport(ref.tree, actual), "");
  // The disturbance is the one thing that MAY differ from the clean tree,
  // and it must say what happened.
  ASSERT_EQ(actual.count("IO.txt"), 1u);
  const std::string& io = actual.at("IO.txt");
  EXPECT_NE(io.find("io_retries"), std::string::npos) << io;
  EXPECT_NE(io.find("io_giveups"), std::string::npos) << io;
  EXPECT_NE(io.find("degraded_cycles"), std::string::npos) << io;
  ASSERT_EQ(actual.count("IO.events.jsonl"), 1u);
  const std::string& events = actual.at("IO.events.jsonl");
  EXPECT_NE(events.find("service-degraded"), std::string::npos) << events;
  EXPECT_NE(events.find("service-recovered"), std::string::npos) << events;
}

}  // namespace
}  // namespace dsa
