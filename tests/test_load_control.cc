// Unit tests for the thrashing detector, working-set estimator, and the
// load controller's three policies.

#include <gtest/gtest.h>

#include "src/sched/load_control.h"

namespace dsa {
namespace {

TEST(ThrashingDetectorTest, FaultRateIsWindowed) {
  ThrashingDetector detector(8000);  // 8 buckets of 1000
  for (Cycles t = 100; t <= 1000; t += 100) {
    detector.RecordReference(t);
    detector.RecordFault(t, 500);
  }
  ThrashingSignals signals = detector.Signals(1000);
  EXPECT_EQ(signals.window_references, 10u);
  EXPECT_EQ(signals.window_faults, 10u);
  EXPECT_DOUBLE_EQ(signals.fault_rate, 1.0);

  // Quiet references later dilute the rate...
  for (Cycles t = 1100; t <= 2000; t += 100) {
    detector.RecordReference(t);
  }
  signals = detector.Signals(2000);
  EXPECT_EQ(signals.window_references, 20u);
  EXPECT_DOUBLE_EQ(signals.fault_rate, 0.5);

  // ...and once the window slides fully past the faults the rate is zero.
  for (Cycles t = 9100; t <= 10000; t += 100) {
    detector.RecordReference(t);
  }
  signals = detector.Signals(10000);
  EXPECT_EQ(signals.window_faults, 0u);
  EXPECT_DOUBLE_EQ(signals.fault_rate, 0.0);
}

TEST(ThrashingDetectorTest, FaultWaitCyclesAreWindowed) {
  ThrashingDetector detector(8000);  // 8 buckets of 1000
  detector.RecordFault(100, 500);
  detector.RecordFault(200, 700);
  ThrashingSignals signals = detector.Signals(200);
  EXPECT_EQ(signals.fault_wait_cycles, 1200u);
  EXPECT_EQ(signals.window_faults, 2u);

  // Sliding the window past the faults drops their waits with them.
  signals = detector.Signals(9000);
  EXPECT_EQ(signals.fault_wait_cycles, 0u);
  EXPECT_EQ(signals.window_faults, 0u);
}

TEST(ThrashingDetectorTest, LongGapClearsTheWholeWindow) {
  ThrashingDetector detector(800);
  detector.RecordFault(10, 100);
  detector.RecordReference(10);
  EXPECT_GT(detector.Signals(10).fault_rate, 0.0);
  // A jump of many windows with no recordings leaves nothing behind.
  EXPECT_EQ(detector.Signals(100000).window_references, 0u);
  EXPECT_DOUBLE_EQ(detector.Signals(100000).fault_rate, 0.0);
}

TEST(ThrashingDetectorTest, IdleBusyRatioClampsToOne) {
  ThrashingDetector detector(1000);
  detector.RecordIdle(500, 5000);  // more idle than window (burst attribution)
  const ThrashingSignals signals = detector.Signals(500);
  EXPECT_DOUBLE_EQ(signals.idle_busy_ratio, 1.0);
}

TEST(ThrashingDetectorTest, WaitingShareTracksSpaceTime) {
  ThrashingDetector detector(1000);
  detector.RecordSpaceTime(100, 300.0, 100.0);
  const ThrashingSignals signals = detector.Signals(100);
  EXPECT_DOUBLE_EQ(signals.waiting_share, 0.25);
}

TEST(JobWorkingSetEstimatorTest, CountsDistinctRecentPagesAndDecays) {
  JobWorkingSetEstimator estimator(/*tau=*/1000, /*page_words=*/256);
  estimator.Touch(1, 100);
  estimator.Touch(2, 200);
  estimator.Touch(1, 300);  // re-touch: still one page
  EXPECT_EQ(estimator.Estimate(300), 2u * 256u);
  // Page 2's touch ages out first.
  EXPECT_EQ(estimator.Estimate(1250), 1u * 256u);
  // Everything decays once tau passes with no touches.
  EXPECT_EQ(estimator.Estimate(5000), 0u);
}

LoadControlConfig AdaptiveConfig() {
  LoadControlConfig config;
  config.policy = LoadControlPolicy::kAdaptiveFaultRate;
  config.window = 8000;
  config.min_window_references = 8;
  config.high_fault_rate = 0.2;
  config.low_fault_rate = 0.05;
  config.hysteresis = 1000;
  return config;
}

TEST(LoadControllerTest, FixedPolicyIsTheStaticCap) {
  LoadControlConfig config;
  config.policy = LoadControlPolicy::kFixed;
  config.max_active = 2;
  LoadController controller(config, 4096, 256);
  EXPECT_TRUE(controller.MayActivate(0, 0, 0, false, 0));
  EXPECT_TRUE(controller.MayActivate(1, 0, 0, false, 0));
  EXPECT_FALSE(controller.MayActivate(2, 0, 0, false, 0));
  // The fixed policy never sheds, whatever the signals.
  for (Cycles t = 100; t < 5000; t += 100) {
    controller.detector().RecordReference(t);
    controller.detector().RecordFault(t, 1000);
  }
  EXPECT_FALSE(controller.ShouldShed(2, 0, 5000));
}

TEST(LoadControllerTest, AdaptiveShedsAboveTheKneeWithHysteresis) {
  LoadController controller(AdaptiveConfig(), 4096, 256);
  // Saturate the window with faults.
  for (Cycles t = 100; t <= 2000; t += 100) {
    controller.detector().RecordReference(t);
    controller.detector().RecordFault(t, 2000);
  }
  EXPECT_TRUE(controller.ShouldShed(4, 0, 2000));
  controller.NoteDecision(2000);
  // Still thrashing, but inside the hysteresis interval: hold.
  EXPECT_FALSE(controller.ShouldShed(4, 0, 2500));
  EXPECT_TRUE(controller.ShouldShed(4, 0, 3100));
}

TEST(LoadControllerTest, AdaptiveNeverShedsBelowMinActive) {
  LoadController controller(AdaptiveConfig(), 4096, 256);
  for (Cycles t = 100; t <= 2000; t += 100) {
    controller.detector().RecordReference(t);
    controller.detector().RecordFault(t, 2000);
  }
  EXPECT_FALSE(controller.ShouldShed(1, 0, 2000));
}

TEST(LoadControllerTest, AdaptiveReadmitsOnlyBelowTheLowWaterMark) {
  LoadController controller(AdaptiveConfig(), 4096, 256);
  for (Cycles t = 100; t <= 2000; t += 100) {
    controller.detector().RecordReference(t);
    controller.detector().RecordFault(t, 2000);
  }
  controller.NoteDecision(2000);
  // Hot window: a shed job must not bounce straight back in.
  EXPECT_FALSE(controller.MayActivate(2, 0, 0, /*reactivation=*/true, 4000));
  // Fault-free references slide the window calm again.
  for (Cycles t = 8100; t <= 12000; t += 100) {
    controller.detector().RecordReference(t);
  }
  EXPECT_TRUE(controller.MayActivate(2, 0, 0, /*reactivation=*/true, 12000));
}

TEST(LoadControllerTest, AdaptiveColdStartAdmitsFreely) {
  LoadController controller(AdaptiveConfig(), 4096, 256);
  // No window history at all: admission is not blocked.
  EXPECT_TRUE(controller.MayActivate(3, 0, 0, /*reactivation=*/false, 0));
}

TEST(LoadControllerTest, EmptyActiveSetForcesAdmission) {
  LoadController controller(AdaptiveConfig(), 4096, 256);
  for (Cycles t = 100; t <= 2000; t += 100) {
    controller.detector().RecordReference(t);
    controller.detector().RecordFault(t, 2000);
  }
  // Even a thrashing window cannot starve the machine entirely.
  EXPECT_TRUE(controller.MayActivate(0, 0, 0, /*reactivation=*/true, 2000));
}

TEST(LoadControllerTest, WorkingSetAdmissionFitsCore) {
  LoadControlConfig config;
  config.policy = LoadControlPolicy::kWorkingSetAdmission;
  config.working_set_tau = 1000;
  config.hysteresis = 0;
  LoadController controller(config, /*core_words=*/1024, /*page_words=*/256);
  // 512 words active + 256 incoming fits in 1024...
  EXPECT_TRUE(controller.MayActivate(1, 512, 256, false, 0));
  // ...but an 768-word incoming working set does not.
  EXPECT_FALSE(controller.MayActivate(1, 512, 768, false, 0));
  // An unknown (zero) estimate still charges one page.
  EXPECT_FALSE(controller.MayActivate(1, 1024, 0, false, 0));
  // Shed exactly when the active estimates overcommit core.
  EXPECT_FALSE(controller.ShouldShed(2, 1024, 100));
  EXPECT_TRUE(controller.ShouldShed(2, 1025, 100));
}

TEST(LoadControllerTest, PolicyNamesAreStable) {
  EXPECT_STREQ(ToString(LoadControlPolicy::kFixed), "fixed");
  EXPECT_STREQ(ToString(LoadControlPolicy::kAdaptiveFaultRate), "adaptive-fault-rate");
  EXPECT_STREQ(ToString(LoadControlPolicy::kWorkingSetAdmission), "working-set-admission");
}

TEST(LoadControllerDeathTest, RejectsDegenerateConfigs) {
  LoadControlConfig zero_min;
  zero_min.min_active = 0;
  EXPECT_DEATH(LoadController(zero_min, 4096, 256), "min_active");

  LoadControlConfig inverted;
  inverted.policy = LoadControlPolicy::kAdaptiveFaultRate;
  inverted.high_fault_rate = 0.01;
  inverted.low_fault_rate = 0.5;
  EXPECT_DEATH(LoadController(inverted, 4096, 256), "knee inverted");

  LoadControlConfig zero_window;
  zero_window.window = 0;
  EXPECT_DEATH(LoadController(zero_window, 4096, 256), "window");

  LoadControlConfig cap_below_min;
  cap_below_min.max_active = 1;
  cap_below_min.min_active = 2;
  EXPECT_DEATH(LoadController(cap_below_min, 4096, 256), "max_active below min_active");
}

}  // namespace
}  // namespace dsa
