// Unit tests for the replacement strategies on hand-built frame states.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/paging/atlas_learning.h"
#include "src/paging/m44_class.h"
#include "src/paging/opt.h"
#include "src/paging/replacement_factory.h"
#include "src/paging/replacement_simple.h"
#include "src/paging/working_set.h"

namespace dsa {
namespace {

// Loads pages 0..n-1 into frames 0..n-1 at times 0,10,20,...
FrameTable LoadedTable(std::size_t n) {
  FrameTable table(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FrameId frame = *table.TakeFreeFrame();
    table.Load(frame, PageId{i}, i * 10);
  }
  return table;
}

TEST(FifoReplacementTest, EvictsOldestLoad) {
  FrameTable table = LoadedTable(3);
  table.Touch(FrameId{0}, 100, false, 1);  // recency must not matter
  FifoReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 200), FrameId{0});
}

TEST(FifoReplacementTest, SkipsPinnedFrames) {
  FrameTable table = LoadedTable(3);
  table.Pin(FrameId{0});
  FifoReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 200), FrameId{1});
}

TEST(LruReplacementTest, EvictsLeastRecentlyUsed) {
  FrameTable table = LoadedTable(3);
  table.Touch(FrameId{0}, 100, false, 1);
  table.Touch(FrameId{2}, 110, false, 1);
  // Frame 1 was last used at load (time 10).
  LruReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 200), FrameId{1});
}

TEST(RandomReplacementTest, OnlyPicksCandidates) {
  FrameTable table = LoadedTable(4);
  table.Pin(FrameId{2});
  RandomReplacement policy(7);
  for (int i = 0; i < 100; ++i) {
    const FrameId victim = policy.ChooseVictim(&table, 0);
    EXPECT_NE(victim, FrameId{2});
    EXPECT_TRUE(table.info(victim).occupied);
  }
}

TEST(RandomReplacementTest, EventuallyPicksEveryCandidate) {
  FrameTable table = LoadedTable(4);
  RandomReplacement policy(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(policy.ChooseVictim(&table, 0).value);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ClockReplacementTest, SecondChanceClearsUseBits) {
  FrameTable table = LoadedTable(3);
  table.Touch(FrameId{0}, 50, false, 1);
  table.Touch(FrameId{1}, 51, false, 1);
  // Frame 2 unused: the hand passes 0 and 1 (clearing), victims 2.
  ClockReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 100), FrameId{2});
  EXPECT_FALSE(table.info(FrameId{0}).use);
  EXPECT_FALSE(table.info(FrameId{1}).use);
}

TEST(ClockReplacementTest, AllUsedDegradesToSweep) {
  FrameTable table = LoadedTable(3);
  for (std::size_t i = 0; i < 3; ++i) {
    table.Touch(FrameId{i}, 50, false, 1);
  }
  ClockReplacement policy;
  // First sweep clears everything; second finds frame 0.
  EXPECT_EQ(policy.ChooseVictim(&table, 100), FrameId{0});
}

TEST(ClockReplacementTest, HandAdvancesBetweenDecisions) {
  FrameTable table = LoadedTable(3);
  ClockReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 0), FrameId{0});
  // Frame 0 still occupied in this test (we did not evict); the hand moved on.
  EXPECT_EQ(policy.ChooseVictim(&table, 0), FrameId{1});
}

TEST(M44ClassReplacementTest, PrefersUnusedCleanPages) {
  FrameTable table = LoadedTable(4);
  table.Touch(FrameId{0}, 50, true, 1);   // used+dirty  (class 3)
  table.Touch(FrameId{1}, 51, false, 1);  // used+clean  (class 2)
  // Make frame 2 dirty but clear its use bit: unused+dirty (class 1).
  table.Touch(FrameId{2}, 52, true, 1);
  table.ClearUse(FrameId{2});
  // Frame 3 untouched: unused+clean (class 0) — the only acceptable victim.
  M44ClassReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 100), FrameId{3});
}

TEST(M44ClassReplacementTest, FallsToHigherClassWhenLowerEmpty) {
  FrameTable table = LoadedTable(2);
  table.Touch(FrameId{0}, 50, true, 1);   // used+dirty
  table.Touch(FrameId{1}, 51, false, 1);  // used+clean
  M44ClassReplacement policy;
  EXPECT_EQ(policy.ChooseVictim(&table, 100), FrameId{1});
}

TEST(M44ClassReplacementTest, ClearsUseWindowAfterDeciding) {
  FrameTable table = LoadedTable(2);
  table.Touch(FrameId{0}, 50, false, 1);
  table.Touch(FrameId{1}, 51, false, 1);
  M44ClassReplacement policy;
  policy.ChooseVictim(&table, 100);
  EXPECT_FALSE(table.info(FrameId{0}).use);
  EXPECT_FALSE(table.info(FrameId{1}).use);
}

TEST(M44ClassReplacementTest, RandomAmongEqualCandidates) {
  FrameTable table = LoadedTable(4);  // all class 0
  M44ClassReplacement policy(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(policy.ChooseVictim(&table, 0).value);
  }
  EXPECT_GT(seen.size(), 1u) << "selection is not random among equals";
}

TEST(AtlasLearningTest, PrefersPageThatOutlivedItsPattern) {
  FrameTable table = LoadedTable(3);
  AtlasLearningReplacement policy;
  // Give every page a learned inactivity period of 200 cycles.
  for (std::size_t i = 0; i < 3; ++i) {
    policy.OnAccess(FrameId{i}, PageId{i}, 200, false);
    policy.OnAccess(FrameId{i}, PageId{i}, 400, false);  // gap 200 -> learned period
  }
  // Pages 0 and 1 stay in use; page 2 goes quiet far beyond its period.
  policy.OnAccess(FrameId{0}, PageId{0}, 950, false);
  policy.OnAccess(FrameId{1}, PageId{1}, 960, false);
  EXPECT_EQ(policy.ChooseVictim(&table, 1000), FrameId{2});
}

TEST(AtlasLearningTest, HistorySurvivesEviction) {
  // The learning program tracks pages, not frames: a page's learned period
  // must persist across an evict/reload cycle.
  FrameTable table(1);
  AtlasLearningReplacement policy;
  const FrameId frame = *table.TakeFreeFrame();
  table.Load(frame, PageId{7}, 0);
  policy.OnAccess(frame, PageId{7}, 100, false);
  policy.OnAccess(frame, PageId{7}, 400, false);  // learned period 300
  policy.OnEvict(frame, PageId{7});
  table.Evict(frame);
  // Reload and re-access: the page is "in use" with its old pattern, so it
  // is not declared abandoned a mere 50 cycles after its last touch.
  const FrameId again = *table.TakeFreeFrame();
  table.Load(again, PageId{7}, 500);
  policy.OnAccess(again, PageId{7}, 500, false);
  // idle = 50 < learned 300: rule 1 must NOT fire; rule 2 returns the only
  // candidate.
  EXPECT_EQ(policy.ChooseVictim(&table, 550), again);
}

TEST(AtlasLearningTest, AllInUsePicksFarthestPredictedReuse) {
  FrameTable table(2);
  const FrameId a = *table.TakeFreeFrame();
  const FrameId b = *table.TakeFreeFrame();
  table.Load(a, PageId{0}, 0);
  table.Load(b, PageId{1}, 0);
  AtlasLearningReplacement policy;
  // Page 0: period 100, last used t=1000 -> predicted reuse 1100.
  policy.OnAccess(a, PageId{0}, 900, false);
  policy.OnAccess(a, PageId{0}, 1000, false);
  // Page 1: period 300, last used t=1000 -> predicted reuse 1300.
  policy.OnAccess(b, PageId{1}, 700, false);
  policy.OnAccess(b, PageId{1}, 1000, false);
  // Neither is abandoned at t=1010; page 1's predicted reuse is farther.
  EXPECT_EQ(policy.ChooseVictim(&table, 1010), b);
}

TEST(WorkingSetTest, ReleasesPagesOutsideTau) {
  FrameTable table = LoadedTable(3);
  table.Touch(FrameId{0}, 1000, false, 1);
  // Frames 1 and 2 were last used at their load times (10, 20).
  WorkingSetReplacement policy(/*tau=*/500);
  const auto released = policy.FramesToRelease(&table, 1000);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0], FrameId{1});
  EXPECT_EQ(released[1], FrameId{2});
}

TEST(WorkingSetTest, NothingReleasedInsideTau) {
  FrameTable table = LoadedTable(3);
  WorkingSetReplacement policy(500);
  EXPECT_TRUE(policy.FramesToRelease(&table, 100).empty());
}

TEST(WorkingSetTest, VictimFallsBackToLru) {
  FrameTable table = LoadedTable(3);
  table.Touch(FrameId{0}, 100, false, 1);
  WorkingSetReplacement policy(10000);
  EXPECT_EQ(policy.ChooseVictim(&table, 200), FrameId{1});
}

// --- OPT ------------------------------------------------------------------------

TEST(OptReplacementTest, EvictsFarthestNextUse) {
  // Reference string: 0 1 2 0 1 3 0 1 ; at the fault on 3, pages 0 and 1
  // recur but page 2 never does — OPT must evict page 2.
  const std::vector<PageId> refs = {PageId{0}, PageId{1}, PageId{2}, PageId{0},
                                    PageId{1}, PageId{3}, PageId{0}, PageId{1}};
  OptReplacement policy(refs);
  FrameTable table(3);
  // Simulate: load 0,1,2 and notify accesses 0..4.
  for (std::size_t i = 0; i < 3; ++i) {
    const FrameId f = *table.TakeFreeFrame();
    table.Load(f, refs[i], i);
    policy.OnAccess(f, refs[i], i, false);
  }
  policy.OnAccess(FrameId{0}, PageId{0}, 3, false);
  policy.OnAccess(FrameId{1}, PageId{1}, 4, false);
  // Fault on page 3 (position 5): victim must be frame 2 (page 2).
  EXPECT_EQ(policy.ChooseVictim(&table, 5), FrameId{2});
}

TEST(OptReplacementTest, TiesBrokenButValid) {
  const std::vector<PageId> refs = {PageId{0}, PageId{1}, PageId{2}};
  OptReplacement policy(refs);
  FrameTable table(2);
  for (std::size_t i = 0; i < 2; ++i) {
    const FrameId f = *table.TakeFreeFrame();
    table.Load(f, refs[i], i);
    policy.OnAccess(f, refs[i], i, false);
  }
  // Neither 0 nor 1 recurs: any occupied frame is optimal.
  const FrameId victim = policy.ChooseVictim(&table, 2);
  EXPECT_TRUE(table.info(victim).occupied);
}

TEST(OptReplacementDeathTest, WrongStringDetected) {
  OptReplacement policy({PageId{0}, PageId{1}});
  FrameTable table(1);
  const FrameId f = *table.TakeFreeFrame();
  table.Load(f, PageId{5}, 0);
  EXPECT_DEATH(policy.OnAccess(f, PageId{5}, 0, false), "different reference string");
}

// --- Factory -----------------------------------------------------------------------

TEST(ReplacementFactoryTest, BuildsEveryOnlineKind) {
  for (ReplacementStrategyKind kind : OnlineReplacementKinds()) {
    const auto policy = MakeReplacementPolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
  }
}

TEST(ReplacementFactoryTest, OptRequiresReferenceString) {
  ReplacementOptions options;
  options.page_string = {PageId{0}};
  const auto policy = MakeReplacementPolicy(ReplacementStrategyKind::kOpt, options);
  EXPECT_EQ(policy->kind(), ReplacementStrategyKind::kOpt);
}

TEST(ReplacementFactoryDeathTest, OptWithoutStringAborts) {
  EXPECT_DEATH(MakeReplacementPolicy(ReplacementStrategyKind::kOpt), "reference string");
}

}  // namespace
}  // namespace dsa
