// Golden-trace regression tests: every canonical run's event stream must be
// byte-identical to the committed tests/golden/*.jsonl capture, and every
// committed capture must satisfy the replay verifier.
//
// A byte diff here means engine behaviour changed.  If the change is
// intentional, regenerate with scripts/regen_golden.sh and review the JSONL
// diff like any other code change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "tests/golden_runs.h"

namespace dsa {
namespace {

#ifndef DSA_GOLDEN_DIR
#error "DSA_GOLDEN_DIR must point at tests/golden"
#endif

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Line number (1-based) of the first differing line, for a readable failure.
std::string FirstDiff(const std::string& expected, const std::string& actual) {
  std::istringstream a(expected);
  std::istringstream b(actual);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) {
      return "streams identical";
    }
    if (!ga || !gb || la != lb) {
      return "line " + std::to_string(line) + ":\n  golden: " + (ga ? la : "<eof>") +
             "\n  actual: " + (gb ? lb : "<eof>");
    }
  }
}

class GoldenTraceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenTraceTest, StreamMatchesCommittedCapture) {
  const golden::GoldenRun run = golden::GoldenRuns()[GetParam()];
  const golden::GoldenResult result = golden::RunGolden(run);

  const std::string path = std::string(DSA_GOLDEN_DIR) + "/" + run.name + ".jsonl";
  const std::string committed = ReadFileOrEmpty(path);
  ASSERT_FALSE(committed.empty()) << "missing golden capture " << path
                                  << " — run scripts/regen_golden.sh";

  EXPECT_GT(result.events.size(), 0u);
  EXPECT_EQ(committed, result.jsonl)
      << "event stream diverged from " << path << " at " << FirstDiff(committed, result.jsonl)
      << "\nIf intentional, regenerate with scripts/regen_golden.sh.";
}

TEST_P(GoldenTraceTest, StreamPassesReplayVerifier) {
  const golden::GoldenRun run = golden::GoldenRuns()[GetParam()];
  const golden::GoldenResult result = golden::RunGolden(run);

  TraceVerifierConfig config;
  config.frame_count = result.frame_count;
  const auto violations = TraceReplayVerifier(config).Verify(result.events);
  EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);
}

TEST_P(GoldenTraceTest, CommittedCaptureRoundTripsThroughParser) {
  const golden::GoldenRun run = golden::GoldenRuns()[GetParam()];
  const std::string path = std::string(DSA_GOLDEN_DIR) + "/" + run.name + ".jsonl";
  const std::string committed = ReadFileOrEmpty(path);
  ASSERT_FALSE(committed.empty()) << "missing golden capture " << path;

  const auto parsed = ParseEventsJsonl(committed);
  ASSERT_TRUE(parsed.has_value())
      << path << ":" << parsed.error().line << ": " << parsed.error().message;
  EXPECT_EQ(EventsToJsonl(parsed.value()), committed);
}

INSTANTIATE_TEST_SUITE_P(AllRuns, GoldenTraceTest,
                         ::testing::Range<std::size_t>(0, golden::GoldenRuns().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return golden::GoldenRuns()[info.param].name;
                         });

}  // namespace
}  // namespace dsa
