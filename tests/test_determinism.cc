// Determinism seed-matrix tests: the whole simulator is a pure function of
// (spec, trace, seeds).  Same seed must mean a bit-identical report AND a
// bit-identical event stream; a different seed must actually change the
// stream; and a zero-rate fault injector must consume no randomness — its
// presence is unobservable, draw for draw.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/tracer.h"
#include "src/obs/vm_metrics.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

SystemSpec SmallPagedSpec() {
  SystemSpec spec;
  spec.label = "determinism";
  spec.core_words = 2048;
  spec.page_words = 128;  // 16 frames
  spec.tlb_entries = 4;
  spec.backing_level = MakeDrumLevel("drum", 1u << 17, /*word_time=*/2,
                                     /*rotational_delay=*/500);
  return spec;
}

ReferenceTrace TraceWithSeed(std::uint64_t seed) {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  params.regions_per_phase = 6;
  params.phase_length = 1200;
  params.phases = 2;
  params.seed = seed;
  return MakeWorkingSetTrace(params);
}

struct RunOutput {
  std::string report;
  std::string jsonl;
};

RunOutput RunOnce(const SystemSpec& base, const ReferenceTrace& trace) {
  SystemSpec spec = base;
  EventTracer tracer(/*capacity=*/0);
  spec.tracer = &tracer;
  const auto system = BuildSystem(spec);
  const VmReport report = system->Run(trace);
  RunOutput out;
  out.report = RenderVmReport(report, Describe(system->characteristics()), trace.label);
  out.jsonl = EventsToJsonl(tracer.Snapshot());
  return out;
}

TEST(DeterminismTest, SameSeedSameSpecBitIdenticalAcrossRepeats) {
  const SystemSpec spec = SmallPagedSpec();
  for (std::uint64_t seed : {1u, 7u, 99u, 12345u}) {
    const ReferenceTrace trace = TraceWithSeed(seed);
    const RunOutput first = RunOnce(spec, trace);
    const RunOutput second = RunOnce(spec, trace);
    EXPECT_EQ(first.report, second.report) << "seed " << seed;
    EXPECT_EQ(first.jsonl, second.jsonl) << "seed " << seed;
    if (DSA_TRACE) {
      EXPECT_FALSE(first.jsonl.empty()) << "seed " << seed;
    }
  }
}

TEST(DeterminismTest, SameSeedRegeneratedTraceIsBitIdentical) {
  // The synthetic generators themselves are part of the determinism
  // contract: regenerating the workload must not perturb anything.
  const SystemSpec spec = SmallPagedSpec();
  const RunOutput a = RunOnce(spec, TraceWithSeed(7));
  const RunOutput b = RunOnce(spec, TraceWithSeed(7));
  EXPECT_EQ(a.jsonl, b.jsonl);
}

TEST(DeterminismTest, DifferentWorkloadSeedsProduceDifferentStreams) {
  // Report + stream together: with tracing compiled out (-DDSA_TRACE=0)
  // the streams are empty and the reports must still tell the seeds apart.
  const SystemSpec spec = SmallPagedSpec();
  const std::vector<std::uint64_t> seeds = {1, 7, 99, 12345};
  std::vector<std::string> streams;
  for (std::uint64_t seed : seeds) {
    const RunOutput out = RunOnce(spec, TraceWithSeed(seed));
    streams.push_back(out.report + out.jsonl);
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      EXPECT_NE(streams[i], streams[j])
          << "seeds " << seeds[i] << " and " << seeds[j] << " collided";
    }
  }
}

TEST(DeterminismTest, DifferentInjectorSeedsProduceDifferentFaultSchedules) {
  SystemSpec spec = SmallPagedSpec();
  spec.fault_injection.rates.transient_transfer = 0.10;
  const ReferenceTrace trace = TraceWithSeed(7);

  spec.fault_injection.seed = 1001;
  const RunOutput a = RunOnce(spec, trace);
  spec.fault_injection.seed = 1002;
  const RunOutput b = RunOnce(spec, trace);
  // A different fault schedule shows up in the wait cycles of the report
  // even when the stream is compiled out.
  EXPECT_NE(a.report + a.jsonl, b.report + b.jsonl);

  spec.fault_injection.seed = 1001;
  const RunOutput a_again = RunOnce(spec, trace);
  EXPECT_EQ(a.jsonl, a_again.jsonl);
  EXPECT_EQ(a.report, a_again.report);
}

TEST(DeterminismTest, ZeroRateInjectorConsumesNoRandomness) {
  // All-zero rates must be indistinguishable from no injector at all:
  // identical stream, identical report, regardless of the injector's seed.
  const ReferenceTrace trace = TraceWithSeed(99);
  const RunOutput bare = RunOnce(SmallPagedSpec(), trace);

  for (std::uint64_t seed : {1u, 0xdeadbeefu}) {
    SystemSpec spec = SmallPagedSpec();
    spec.fault_injection.seed = seed;  // rates stay all-zero
    const RunOutput with = RunOnce(spec, trace);
    EXPECT_EQ(bare.jsonl, with.jsonl) << "injector seed " << seed;
    EXPECT_EQ(bare.report, with.report) << "injector seed " << seed;
  }
}

TEST(DeterminismTest, SegmentedFamilyIsDeterministicToo) {
  SystemSpec spec;
  spec.label = "determinism-seg";
  spec.characteristics.name_space = NameSpaceKind::kSymbolicallySegmented;
  spec.characteristics.unit = AllocationUnit::kVariableBlocks;
  spec.core_words = 2048;
  spec.max_segment_extent = 128;
  spec.workload_segment_words = 128;
  LoopTraceParams params;
  params.extent = 1 << 13;
  params.body_words = 1024;
  params.advance_words = 256;
  params.iterations = 3;
  params.length = 2500;
  params.seed = 21;
  const ReferenceTrace trace = MakeLoopTrace(params);

  const RunOutput a = RunOnce(spec, trace);
  const RunOutput b = RunOnce(spec, trace);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.jsonl, b.jsonl);
  if (DSA_TRACE) {
    EXPECT_FALSE(a.jsonl.empty());
  }
}

}  // namespace
}  // namespace dsa
