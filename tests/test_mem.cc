// Unit tests for src/mem: storage levels, the core store, backing stores,
// channels, and the hierarchy.

#include <gtest/gtest.h>

#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/core_store.h"
#include "src/mem/hierarchy.h"
#include "src/mem/storage_level.h"

namespace dsa {
namespace {

// --- StorageLevel ---------------------------------------------------------------

TEST(StorageLevelTest, TransferTimeIsLatencyPlusWords) {
  const StorageLevel drum = MakeDrumLevel("drum", 1000, /*word_time=*/4,
                                          /*rotational_delay=*/6000);
  EXPECT_EQ(drum.TransferTime(0), 6000u);
  EXPECT_EQ(drum.TransferTime(512), 6000u + 4 * 512);
}

TEST(StorageLevelTest, CoreHasNoStartupLatency) {
  const StorageLevel core = MakeCoreLevel("core", 1000, 1);
  EXPECT_EQ(core.TransferTime(100), 100u);
  EXPECT_EQ(core.kind, StorageLevelKind::kCore);
}

TEST(StorageLevelTest, FactoriesSetKinds) {
  EXPECT_EQ(MakeDiskLevel("d", 1, 1, 1).kind, StorageLevelKind::kDisk);
  EXPECT_EQ(MakeTapeLevel("t", 1, 1, 1).kind, StorageLevelKind::kTape);
  EXPECT_STREQ(ToString(StorageLevelKind::kDrum), "drum");
}

// --- CoreStore ------------------------------------------------------------------

TEST(CoreStoreTest, ReadsBackWrites) {
  CoreStore store(64);
  store.Write(PhysicalAddress{10}, 0xdeadbeef);
  EXPECT_EQ(store.Read(PhysicalAddress{10}), 0xdeadbeefu);
  EXPECT_EQ(store.Read(PhysicalAddress{11}), 0u);  // zero-initialised
}

TEST(CoreStoreTest, MoveCopiesAndCharges) {
  CoreStore store(64);
  for (std::uint64_t i = 0; i < 8; ++i) {
    store.Write(PhysicalAddress{i}, i + 100);
  }
  const Cycles cost = store.Move(PhysicalAddress{0}, PhysicalAddress{32}, 8, 4);
  EXPECT_EQ(cost, 32u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(store.Read(PhysicalAddress{32 + i}), i + 100);
  }
}

TEST(CoreStoreTest, OverlappingSlideDownPreservesContents) {
  CoreStore store(64);
  for (std::uint64_t i = 0; i < 16; ++i) {
    store.Write(PhysicalAddress{8 + i}, i + 1);
  }
  // Slide a 16-word block down by 4: destination overlaps source.
  store.Move(PhysicalAddress{8}, PhysicalAddress{4}, 16, 1);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(store.Read(PhysicalAddress{4 + i}), i + 1);
  }
}

TEST(CoreStoreTest, RangeReadWriteRoundTrip) {
  CoreStore store(32);
  std::vector<Word> data{1, 2, 3, 4};
  store.WriteRange(PhysicalAddress{5}, data);
  std::vector<Word> out;
  store.ReadRange(PhysicalAddress{5}, 4, &out);
  EXPECT_EQ(out, data);
}

TEST(CoreStoreTest, FillSetsRange) {
  CoreStore store(16);
  store.Fill(PhysicalAddress{2}, 3, 9);
  EXPECT_EQ(store.Read(PhysicalAddress{2}), 9u);
  EXPECT_EQ(store.Read(PhysicalAddress{4}), 9u);
  EXPECT_EQ(store.Read(PhysicalAddress{5}), 0u);
}

TEST(CoreStoreDeathTest, OutOfBoundsAccessAborts) {
  CoreStore store(8);
  EXPECT_DEATH(store.Read(PhysicalAddress{8}), "out of bounds");
  EXPECT_DEATH(store.Write(PhysicalAddress{100}, 1), "out of bounds");
  EXPECT_DEATH(store.Move(PhysicalAddress{4}, PhysicalAddress{6}, 4, 1), "out of bounds");
}

// --- BackingStore ----------------------------------------------------------------

TEST(BackingStoreTest, FetchOfUnstoredSlotZeroFills) {
  BackingStore store(MakeDrumLevel("drum", 4096, 4, 100));
  std::vector<Word> out;
  const Cycles cost = store.Fetch(7, 16, &out);
  EXPECT_EQ(cost, 100u + 16 * 4);
  ASSERT_EQ(out.size(), 16u);
  for (Word w : out) {
    EXPECT_EQ(w, 0u);
  }
  EXPECT_FALSE(store.Contains(7));
}

TEST(BackingStoreTest, StoreFetchRoundTrip) {
  BackingStore store(MakeDrumLevel("drum", 4096, 4, 100));
  store.Store(3, {11, 22, 33});
  std::vector<Word> out;
  store.Fetch(3, 3, &out);
  EXPECT_EQ(out, (std::vector<Word>{11, 22, 33}));
  EXPECT_TRUE(store.Contains(3));
}

TEST(BackingStoreTest, FetchPadsShortSlots) {
  BackingStore store(MakeDrumLevel("drum", 4096, 4, 100));
  store.Store(1, {5});
  std::vector<Word> out;
  store.Fetch(1, 3, &out);
  EXPECT_EQ(out, (std::vector<Word>{5, 0, 0}));
}

TEST(BackingStoreTest, DiscardRemovesSlot) {
  BackingStore store(MakeDrumLevel("drum", 4096, 4, 100));
  store.Store(1, {5});
  store.Discard(1);
  EXPECT_FALSE(store.Contains(1));
  EXPECT_EQ(store.OccupiedWords(), 0u);
}

TEST(BackingStoreTest, AccountingCountersAdvance) {
  BackingStore store(MakeDrumLevel("drum", 4096, 4, 100));
  store.Store(1, {1, 2});
  std::vector<Word> out;
  store.Fetch(1, 2, &out);
  EXPECT_EQ(store.stores(), 1u);
  EXPECT_EQ(store.fetches(), 1u);
  EXPECT_EQ(store.busy_cycles(), (100u + 8) * 2);
  EXPECT_EQ(store.OccupiedWords(), 2u);
  EXPECT_EQ(store.slot_count(), 1u);
}

// --- TransferChannel --------------------------------------------------------------

TEST(TransferChannelTest, IdleChannelStartsImmediately) {
  TransferChannel channel;
  const StorageLevel drum = MakeDrumLevel("drum", 4096, 4, 100);
  const auto done = channel.Schedule(drum, 10, /*now=*/50);
  EXPECT_EQ(done.start, 50u);
  EXPECT_EQ(done.finish, 50u + 100 + 40);
}

TEST(TransferChannelTest, BusyChannelQueues) {
  TransferChannel channel;
  const StorageLevel drum = MakeDrumLevel("drum", 4096, 4, 100);
  const auto first = channel.Schedule(drum, 10, 0);
  const auto second = channel.Schedule(drum, 10, 0);
  EXPECT_EQ(second.start, first.finish);
  EXPECT_EQ(channel.queueing_cycles(), first.finish);
  EXPECT_EQ(channel.transfers(), 2u);
}

TEST(TransferChannelTest, LaterRequestAfterDrainDoesNotQueue) {
  TransferChannel channel;
  const StorageLevel drum = MakeDrumLevel("drum", 4096, 4, 100);
  const auto first = channel.Schedule(drum, 10, 0);
  const auto second = channel.Schedule(drum, 10, first.finish + 5);
  EXPECT_EQ(second.start, first.finish + 5);
}

TEST(TransferChannelTest, ResetClearsState) {
  TransferChannel channel;
  channel.Schedule(MakeDrumLevel("drum", 4096, 4, 100), 10, 0);
  channel.Reset();
  EXPECT_EQ(channel.busy_until(), 0u);
  EXPECT_EQ(channel.transfers(), 0u);
}

// --- PackingChannel ----------------------------------------------------------------

TEST(PackingChannelTest, CpuCopyScalesPerWord) {
  const PackingChannel cpu = CpuPackingChannel();
  EXPECT_FALSE(cpu.autonomous);
  EXPECT_EQ(cpu.MoveCost(0), 0u);
  EXPECT_EQ(cpu.MoveCost(100), 400u);
}

TEST(PackingChannelTest, AutonomousChannelHasSetupButCheaperWords) {
  const PackingChannel channel = AutonomousPackingChannel();
  EXPECT_TRUE(channel.autonomous);
  EXPECT_EQ(channel.MoveCost(100), 64u + 100);
  // Crossover: for large moves the autonomous channel wins.
  EXPECT_LT(channel.MoveCost(1000), CpuPackingChannel().MoveCost(1000));
}

TEST(BackingStoreTest, MarkBadRetiresSlotAndDropsContent) {
  BackingStore store(MakeDrumLevel("drum", 1024, 2, 100));
  store.Store(3, std::vector<Word>(16, Word{7}));
  ASSERT_TRUE(store.Contains(3));
  ASSERT_EQ(store.OccupiedWords(), 16u);

  store.MarkBad(3);
  EXPECT_TRUE(store.IsBad(3));
  EXPECT_FALSE(store.Contains(3));   // the content went with the sector
  EXPECT_EQ(store.OccupiedWords(), 0u);
  EXPECT_EQ(store.bad_slot_count(), 1u);
  EXPECT_FALSE(store.IsBad(4));
}

TEST(BackingStoreTest, SpareSlotsAllocateAboveCallerRange) {
  BackingStore store(MakeDrumLevel("drum", 128, 2, 100));
  const auto first = store.AllocateSpareSlot(16);
  const auto second = store.AllocateSpareSlot(16);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_GE(*first, BackingStore::kSpareSlotBase);
  EXPECT_NE(*first, *second);
}

TEST(BackingStoreTest, SpareSlotAllocationRespectsCapacity) {
  BackingStore store(MakeDrumLevel("drum", 128, 2, 100));
  store.Store(0, std::vector<Word>(100, Word{1}));
  EXPECT_TRUE(store.HasRoomFor(28));
  EXPECT_FALSE(store.HasRoomFor(29));
  EXPECT_FALSE(store.AllocateSpareSlot(64).has_value());  // would overflow
  EXPECT_TRUE(store.AllocateSpareSlot(16).has_value());
}

// Transfers against a retired slot must remain hard aborts: the resilience
// layer is required to relocate first, never to retry a dead sector.
TEST(BackingStoreDeathTest, StoreToBadSlotAborts) {
  BackingStore store(MakeDrumLevel("drum", 1024, 2, 100));
  store.MarkBad(5);
  EXPECT_DEATH(store.Store(5, std::vector<Word>(4, Word{0})), "retired");
}

TEST(BackingStoreDeathTest, FetchFromBadSlotAborts) {
  BackingStore store(MakeDrumLevel("drum", 1024, 2, 100));
  store.MarkBad(5);
  std::vector<Word> out;
  EXPECT_DEATH(store.Fetch(5, 4, &out), "retired");
}

// --- StorageHierarchy ----------------------------------------------------------------

TEST(StorageHierarchyTest, BuildsLevelsAndChannels) {
  StorageHierarchy hierarchy(MakeCoreLevel("core", 1024, 1));
  const std::size_t drum = hierarchy.AddBackingLevel(MakeDrumLevel("drum", 8192, 4, 100));
  const std::size_t disk = hierarchy.AddBackingLevel(MakeDiskLevel("disk", 65536, 8, 5000));
  EXPECT_EQ(hierarchy.backing_level_count(), 2u);
  EXPECT_EQ(hierarchy.backing(drum).level().kind, StorageLevelKind::kDrum);
  EXPECT_EQ(hierarchy.backing(disk).level().kind, StorageLevelKind::kDisk);
  hierarchy.channel(drum).Schedule(hierarchy.backing(drum).level(), 4, 0);
  EXPECT_EQ(hierarchy.channel(drum).transfers(), 1u);
}

// An out-of-range level index is a structural bug in the caller, not a
// runtime condition to degrade around: it must stay a hard abort.
TEST(StorageHierarchyDeathTest, OutOfRangeLevelIndexAborts) {
  StorageHierarchy hierarchy(MakeCoreLevel("core", 1024, 1));
  hierarchy.AddBackingLevel(MakeDrumLevel("drum", 8192, 4, 100));
  EXPECT_DEATH(hierarchy.backing(1), "out of range");
  EXPECT_DEATH(hierarchy.channel(1), "out of range");
}

TEST(StorageHierarchyTest, DescribeListsEveryLevel) {
  StorageHierarchy hierarchy(MakeCoreLevel("core", 1024, 1));
  hierarchy.AddBackingLevel(MakeDrumLevel("drum", 8192, 4, 100));
  const std::string text = hierarchy.Describe();
  EXPECT_NE(text.find("core"), std::string::npos);
  EXPECT_NE(text.find("drum"), std::string::npos);
  EXPECT_NE(text.find("8192"), std::string::npos);
}

}  // namespace
}  // namespace dsa
