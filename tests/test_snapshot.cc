// Snapshot substrate tests: writer/reader primitive round-trips, the
// container's corruption taxonomy (truncated / flipped byte / bad magic /
// stale version -> typed errors, zero-value reads, no aborts), Rng
// State()/Restore() continuation purity over 2^17 draws, and the headline
// component guarantee — a PagedLinearVm checkpointed mid-run and reloaded
// into a fresh instance continues bit-identically to the uninterrupted run,
// across every replacement policy service mode can host.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/core/snapshot.h"
#include "src/obs/metrics.h"
#include "src/obs/vm_metrics.h"
#include "src/sched/load_control.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

TEST(SnapshotPrimitivesTest, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.U8(0xab);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefULL);
  w.F64(0.6180339887498949);
  w.F64(-0.0);
  w.Str("hello snapshot");
  w.Str("");
  const std::string sealed = w.Seal();

  SnapshotReader r(sealed);
  ASSERT_TRUE(r.ok()) << r.error().Describe();
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.F64(), 0.6180339887498949);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero)) << "-0.0 must round-trip bit-exactly";
  EXPECT_EQ(r.Str(), "hello snapshot");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(SnapshotPrimitivesTest, SealIsDeterministic) {
  auto build = [] {
    SnapshotWriter w;
    w.U64(42);
    w.Str("tenant");
    return w.Seal();
  };
  EXPECT_EQ(build(), build());
}

TEST(SnapshotPrimitivesTest, CountEnforcesAllocationLimit) {
  SnapshotWriter w;
  w.U64(1u << 20);  // a "length" far beyond what the caller will accept
  const std::string sealed_bytes = w.Seal();
  SnapshotReader r(sealed_bytes);
  EXPECT_EQ(r.Count(1024), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kBadValue);
}

TEST(SnapshotPrimitivesTest, AtEndRejectsTrailingGarbage) {
  SnapshotWriter w;
  w.U64(1);
  w.U64(2);
  const std::string sealed_bytes = w.Seal();
  SnapshotReader r(sealed_bytes);
  (void)r.U64();
  EXPECT_FALSE(r.AtEnd()) << "one u64 of payload remains";
  (void)r.U64();
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotPrimitivesTest, ReadsPastEndLatchTruncatedAndReturnZero) {
  SnapshotWriter w;
  w.U32(7);
  const std::string sealed_bytes = w.Seal();
  SnapshotReader r(sealed_bytes);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u) << "read past end must return a zero value";
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kTruncated);
  // Every subsequent read stays zero; the first error is latched.
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kTruncated);
}

std::string SampleSealed() {
  SnapshotWriter w;
  w.U64(123456789);
  w.Str("payload under test");
  w.F64(3.5);
  return w.Seal();
}

TEST(SnapshotCorruptionTest, TruncatedFileIsTyped) {
  const std::string sealed = SampleSealed();
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{19},
                           sealed.size() - 1}) {
    const std::string cut = sealed.substr(0, keep);
    SnapshotReader r(cut);
    EXPECT_FALSE(r.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(r.error().kind, SnapshotErrorKind::kTruncated) << "kept " << keep;
    EXPECT_EQ(r.U64(), 0u);
  }
}

TEST(SnapshotCorruptionTest, EveryFlippedPayloadByteIsCaught) {
  const std::string sealed = SampleSealed();
  // Header: magic(8) + version(4) + length(8) + checksum(8).
  const std::size_t payload_start = 28;
  for (std::size_t i = payload_start; i < sealed.size(); ++i) {
    std::string bent = sealed;
    bent[i] = static_cast<char>(bent[i] ^ 0x40);
    SnapshotReader r(bent);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i;
    EXPECT_EQ(r.error().kind, SnapshotErrorKind::kBadChecksum) << "flip at " << i;
  }
}

TEST(SnapshotCorruptionTest, FlippedChecksumByteIsCaught) {
  std::string bent = SampleSealed();
  bent[20] = static_cast<char>(bent[20] ^ 0x01);  // first checksum byte
  SnapshotReader r(bent);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kBadChecksum);
}

TEST(SnapshotCorruptionTest, BadMagicIsTyped) {
  std::string bent = SampleSealed();
  bent[0] = 'X';
  SnapshotReader r(bent);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kBadMagic);

  SnapshotReader garbage("definitely not a snapshot, longer than a header");
  EXPECT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.error().kind, SnapshotErrorKind::kBadMagic);
}

TEST(SnapshotCorruptionTest, StaleVersionIsTypedNotGuessed) {
  std::string bent = SampleSealed();
  bent[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version LSB
  SnapshotReader r(bent);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kStaleVersion);
}

TEST(SnapshotCorruptionTest, LyingLengthFieldIsTruncated) {
  std::string bent = SampleSealed();
  bent[12] = static_cast<char>(bent[12] + 1);  // length LSB: promise more bytes
  SnapshotReader r(bent);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, SnapshotErrorKind::kTruncated);
}

// ---------------------------------------------------------------------------
// Rng State()/Restore() purity.

constexpr std::size_t kDrawHorizon = std::size_t{1} << 17;

TEST(RngSnapshotTest, RestoredStreamContinuesIdenticallyOverLongHorizon) {
  Rng original(0xfeedfaceULL);
  // Burn an odd prefix so the captured state is mid-stream, not post-seed.
  for (int i = 0; i < 12345; ++i) {
    (void)original.Next();
  }
  const RngState state = original.State();

  Rng restored(1);  // deliberately different seed; Restore must overwrite all
  restored.Restore(state);
  for (std::size_t i = 0; i < kDrawHorizon; ++i) {
    ASSERT_EQ(original.Next(), restored.Next()) << "diverged at draw " << i;
  }
}

TEST(RngSnapshotTest, RestoredGeneratorForksIdenticalChildren) {
  Rng original(0x5eedULL);
  for (int i = 0; i < 999; ++i) {
    (void)original.Next();
  }
  Rng restored(2);
  restored.Restore(original.State());

  for (std::uint64_t stream : {0ULL, 1ULL, 7ULL, 1000ULL}) {
    Rng a = original.Fork(stream);
    Rng b = restored.Fork(stream);
    for (std::size_t i = 0; i < kDrawHorizon / 8; ++i) {
      ASSERT_EQ(a.Next(), b.Next())
          << "fork stream " << stream << " diverged at draw " << i;
    }
  }
}

TEST(RngSnapshotTest, StateRoundTripsThroughSnapshotBytes) {
  Rng original(0xabcdefULL);
  for (int i = 0; i < 777; ++i) {
    (void)original.Next();
  }
  SnapshotWriter w;
  SaveRngState(&w, original.State());
  const std::string sealed_bytes = w.Seal();
  SnapshotReader r(sealed_bytes);
  const RngState loaded = LoadRngState(&r);
  ASSERT_TRUE(r.ok() && r.AtEnd());
  EXPECT_EQ(loaded, original.State());
}

// ---------------------------------------------------------------------------
// Component round-trips.

TEST(ComponentSnapshotTest, MetricsRegistryRoundTripsAndMerges) {
  MetricsRegistry reg;
  reg.GetCounter("vm/references")->Increment(100);
  reg.GetCounter("vm/faults")->Increment(7);
  SnapshotWriter w;
  reg.SaveState(&w);
  const std::string sealed = w.Seal();

  MetricsRegistry fresh;
  SnapshotReader r(sealed);
  fresh.LoadState(&r);
  ASSERT_TRUE(r.ok() && r.AtEnd()) << r.error().Describe();
  EXPECT_EQ(fresh.CounterValue("vm/references"), 100u);
  EXPECT_EQ(fresh.CounterValue("vm/faults"), 7u);

  // LoadState merges by NAME (new names register, existing names must agree
  // on kind) but restores each metric's value verbatim — the snapshot is
  // authoritative, pre-existing counts are overwritten, not accumulated.
  MetricsRegistry merged;
  merged.GetCounter("vm/references")->Increment(11);
  merged.GetCounter("local/only")->Increment(5);
  SnapshotReader r2(sealed);
  merged.LoadState(&r2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(merged.CounterValue("vm/references"), 100u);
  EXPECT_EQ(merged.CounterValue("local/only"), 5u);
}

TEST(ComponentSnapshotTest, LoadControllerRoundTripsDecisionState) {
  LoadControlConfig config;
  config.policy = LoadControlPolicy::kAdaptiveFaultRate;
  LoadController a(config, /*core_words=*/4096, /*page_words=*/128);
  // Feed an arbitrary but deterministic signal history.
  for (Cycles now = 0; now < 50000; now += 1000) {
    a.detector().RecordReference(now);
    if (now % 3000 == 0) {
      a.detector().RecordFault(now, /*wait=*/400);
    }
    a.detector().RecordSpaceTime(now, /*active_wt=*/static_cast<double>(now) * 10.0,
                                 /*waiting_wt=*/static_cast<double>(now) * 2.0);
  }
  SnapshotWriter w;
  a.SaveState(&w);
  const std::string sealed = w.Seal();

  LoadController b(config, 4096, 128);
  SnapshotReader r(sealed);
  b.LoadState(&r);
  ASSERT_TRUE(r.ok() && r.AtEnd()) << r.error().Describe();

  // The restored controller must make the same decisions the original
  // would: serialize both again and compare bytes.
  SnapshotWriter wa;
  a.SaveState(&wa);
  SnapshotWriter wb;
  b.SaveState(&wb);
  EXPECT_EQ(wa.Seal(), wb.Seal());
}

// ---------------------------------------------------------------------------
// PagedLinearVm mid-run checkpointing.

SystemSpec ServeSpec(ReplacementStrategyKind replacement) {
  SystemSpec spec;
  spec.label = "snapshot-vm";
  spec.core_words = 2048;
  spec.page_words = 128;  // 16 frames
  spec.tlb_entries = 4;
  spec.replacement = replacement;
  spec.backing_level = MakeDrumLevel("drum", 1u << 17, /*word_time=*/2,
                                     /*rotational_delay=*/500);
  return spec;
}

ReferenceTrace VmTrace() {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  params.regions_per_phase = 6;
  params.phase_length = 1500;
  params.phases = 3;
  params.seed = 97;
  return MakeWorkingSetTrace(params);
}

std::string StepAll(PagedLinearVm* vm, const ReferenceTrace& trace,
                    std::size_t from) {
  for (std::size_t i = from; i < trace.refs.size(); ++i) {
    vm->Step(trace.refs[i]);
  }
  VmReport report = vm->Snapshot();
  report.label = trace.label;
  return RenderVmReport(report, Describe(vm->characteristics()), trace.label);
}

TEST(PagedVmSnapshotTest, MidRunSaveLoadContinuesBitIdenticallyAcrossPolicies) {
  const ReferenceTrace trace = VmTrace();
  for (ReplacementStrategyKind policy :
       {ReplacementStrategyKind::kLru, ReplacementStrategyKind::kFifo,
        ReplacementStrategyKind::kClock, ReplacementStrategyKind::kRandom,
        ReplacementStrategyKind::kM44Class, ReplacementStrategyKind::kWorkingSet}) {
    const SystemSpec spec = ServeSpec(policy);

    PagedLinearVm straight(PagedConfigFromSpec(spec));
    const std::string expected = StepAll(&straight, trace, 0);

    // Interrupt at several cut points, including mid-phase ones.
    for (std::size_t cut : {std::size_t{1}, trace.refs.size() / 3,
                            trace.refs.size() / 2,
                            trace.refs.size() - 1}) {
      PagedLinearVm first(PagedConfigFromSpec(spec));
      for (std::size_t i = 0; i < cut; ++i) {
        first.Step(trace.refs[i]);
      }
      SnapshotWriter w;
      first.SaveState(&w);
      const std::string sealed = w.Seal();

      PagedLinearVm resumed(PagedConfigFromSpec(spec));
      SnapshotReader r(sealed);
      resumed.LoadState(&r);
      ASSERT_TRUE(r.ok()) << ToString(policy) << " cut " << cut << ": "
                          << r.error().Describe();
      ASSERT_TRUE(r.AtEnd()) << ToString(policy) << " cut " << cut
                             << ": trailing bytes after LoadState";
      EXPECT_EQ(StepAll(&resumed, trace, cut), expected)
          << ToString(policy) << " cut at " << cut;
    }
  }
}

TEST(PagedVmSnapshotTest, SaveStateIsDeterministicForIdenticalState) {
  const SystemSpec spec = ServeSpec(ReplacementStrategyKind::kLru);
  const ReferenceTrace trace = VmTrace();
  auto capture = [&] {
    PagedLinearVm vm(PagedConfigFromSpec(spec));
    for (std::size_t i = 0; i < trace.refs.size() / 2; ++i) {
      vm.Step(trace.refs[i]);
    }
    SnapshotWriter w;
    vm.SaveState(&w);
    return w.Seal();
  };
  EXPECT_EQ(capture(), capture());
}

TEST(PagedVmSnapshotTest, CorruptVmSnapshotFailsTypedWithoutCrashing) {
  const SystemSpec spec = ServeSpec(ReplacementStrategyKind::kLru);
  const ReferenceTrace trace = VmTrace();
  PagedLinearVm vm(PagedConfigFromSpec(spec));
  for (std::size_t i = 0; i < 1000; ++i) {
    vm.Step(trace.refs[i]);
  }
  SnapshotWriter w;
  vm.SaveState(&w);
  const std::string sealed = w.Seal();

  // Truncation, payload flips at several depths, and a stale version must
  // all surface as reader errors — never an abort, never a partial load
  // that silently "works".
  std::vector<std::string> corrupt;
  corrupt.push_back(sealed.substr(0, sealed.size() / 2));
  for (std::size_t at : {std::size_t{28}, sealed.size() / 2, sealed.size() - 1}) {
    std::string bent = sealed;
    bent[at] = static_cast<char>(bent[at] ^ 0x10);
    corrupt.push_back(std::move(bent));
  }
  {
    std::string stale = sealed;
    stale[8] = static_cast<char>(kSnapshotFormatVersion + 3);
    corrupt.push_back(std::move(stale));
  }
  for (const std::string& bytes : corrupt) {
    PagedLinearVm fresh(PagedConfigFromSpec(spec));
    SnapshotReader r(bytes);
    fresh.LoadState(&r);
    EXPECT_FALSE(r.ok() && r.AtEnd());
    if (!r.ok()) {
      EXPECT_FALSE(r.error().Describe().empty());
    }
  }
}

TEST(PagedVmSnapshotTest, FaultInjectedRunResumesIdentically) {
  // The injector's Rng stream is part of the checkpoint: a resumed run must
  // see the same fault schedule tail.
  SystemSpec spec = ServeSpec(ReplacementStrategyKind::kLru);
  spec.fault_injection.rates.transient_transfer = 0.05;
  spec.fault_injection.seed = 4242;
  const ReferenceTrace trace = VmTrace();

  PagedLinearVm straight(PagedConfigFromSpec(spec));
  const std::string expected = StepAll(&straight, trace, 0);

  const std::size_t cut = trace.refs.size() / 2;
  PagedLinearVm first(PagedConfigFromSpec(spec));
  for (std::size_t i = 0; i < cut; ++i) {
    first.Step(trace.refs[i]);
  }
  SnapshotWriter w;
  first.SaveState(&w);
  PagedLinearVm resumed(PagedConfigFromSpec(spec));
  const std::string sealed_bytes = w.Seal();
  SnapshotReader r(sealed_bytes);
  resumed.LoadState(&r);
  ASSERT_TRUE(r.ok() && r.AtEnd()) << r.error().Describe();
  EXPECT_EQ(StepAll(&resumed, trace, cut), expected);
}

// --- Sectioned snapshots: the delta-checkpoint substrate.

std::string SealThreeSections(const std::string& b_body) {
  SectionedSnapshotWriter w;
  w.Begin("alpha")->U64(11);
  w.Section("beta", b_body);
  SnapshotWriter* c = w.Begin("gamma");
  c->Str("third");
  c->Bool(true);
  return w.SealFull();
}

TEST(SectionedSnapshotTest, FullSealRoundTripsInOrder) {
  auto resolved = ResolveSectionChain({SealThreeSections("bb")});
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Describe();
  SectionSource src = std::move(resolved.value());
  EXPECT_EQ(src.section_count(), 3u);
  EXPECT_TRUE(src.Has("beta"));
  EXPECT_FALSE(src.Has("delta"));

  SnapshotReader a = src.Open("alpha");
  EXPECT_EQ(a.U64(), 11u);
  EXPECT_TRUE(src.Close(&a, "alpha"));
  SnapshotReader b = src.Open("beta");
  // "beta" was added pre-serialized: its body is the raw bytes verbatim.
  EXPECT_EQ(b.U8(), 'b');
  EXPECT_EQ(b.U8(), 'b');
  EXPECT_TRUE(src.Close(&b, "beta"));
  SnapshotReader c = src.Open("gamma");
  EXPECT_EQ(c.Str(), "third");
  EXPECT_TRUE(c.Bool());
  EXPECT_TRUE(src.Close(&c, "gamma"));
  src.FailIfUnopened();
  EXPECT_TRUE(src.ok()) << src.error().Describe();
}

TEST(SectionedSnapshotTest, DeltaSealRefsUnchangedSectionsAndResolves) {
  SectionedSnapshotWriter base_w;
  base_w.Begin("stable")->U64(1);
  base_w.Begin("hot")->U64(2);
  const SectionBaseline baseline = base_w.Digest();
  const std::string full = base_w.SealFull();

  SectionedSnapshotWriter next_w;
  next_w.Begin("stable")->U64(1);  // unchanged -> becomes a hash ref
  next_w.Begin("hot")->U64(99);    // changed -> stays inline
  const std::string delta = next_w.SealDelta(baseline);
  EXPECT_LT(delta.size(), next_w.SealFull().size());

  auto resolved = ResolveSectionChain({full, delta});
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Describe();
  SectionSource src = std::move(resolved.value());
  SnapshotReader s = src.Open("stable");
  EXPECT_EQ(s.U64(), 1u);
  EXPECT_TRUE(src.Close(&s, "stable"));
  SnapshotReader h = src.Open("hot");
  EXPECT_EQ(h.U64(), 99u);
  EXPECT_TRUE(src.Close(&h, "hot"));
  src.FailIfUnopened();
  EXPECT_TRUE(src.ok()) << src.error().Describe();
}

TEST(SectionedSnapshotTest, MisChainedDeltaFailsChecksum) {
  // A delta sealed against base A resolved over base B: the ref's recorded
  // hash cannot match B's body, and the chain must fail typed rather than
  // restore mixed state.
  SectionedSnapshotWriter a;
  a.Begin("s")->U64(1);
  const SectionBaseline base_a = a.Digest();

  SectionedSnapshotWriter b;
  b.Begin("s")->U64(2);
  const std::string full_b = b.SealFull();

  SectionedSnapshotWriter d;
  d.Begin("s")->U64(1);  // unchanged vs A -> sealed as a ref to A's hash
  const std::string delta_over_a = d.SealDelta(base_a);

  auto resolved = ResolveSectionChain({full_b, delta_over_a});
  ASSERT_FALSE(resolved.has_value());
  EXPECT_EQ(resolved.error().kind, SnapshotErrorKind::kBadChecksum);
}

TEST(SectionedSnapshotTest, DeltaHeadAndRefToAbsentSectionAreTyped) {
  SectionedSnapshotWriter base_w;
  base_w.Begin("only")->U64(5);
  const SectionBaseline baseline = base_w.Digest();
  const std::string full = base_w.SealFull();

  SectionedSnapshotWriter d;
  d.Begin("only")->U64(5);
  const std::string delta = d.SealDelta(baseline);

  // A chain headed by a delta has no base to resolve against.
  auto headless = ResolveSectionChain({delta});
  ASSERT_FALSE(headless.has_value());
  EXPECT_EQ(headless.error().kind, SnapshotErrorKind::kBadValue);

  // A delta ref naming a section the base never had.
  SectionedSnapshotWriter other;
  other.Begin("elsewhere")->U64(7);
  const std::string full_other = other.SealFull();
  auto absent = ResolveSectionChain({full_other, delta});
  ASSERT_FALSE(absent.has_value());
  EXPECT_EQ(absent.error().kind, SnapshotErrorKind::kBadValue);
}

TEST(SectionedSnapshotTest, MissingSectionOpenAndUnopenedSectionsLatch) {
  {
    auto resolved = ResolveSectionChain({SealThreeSections("x")});
    ASSERT_TRUE(resolved.has_value());
    SectionSource src = std::move(resolved.value());
    SnapshotReader ghost = src.Open("no-such-section");
    EXPECT_FALSE(ghost.ok());
    EXPECT_FALSE(src.ok());
    EXPECT_EQ(src.error().kind, SnapshotErrorKind::kBadValue);
  }
  {
    auto resolved = ResolveSectionChain({SealThreeSections("x")});
    ASSERT_TRUE(resolved.has_value());
    SectionSource src = std::move(resolved.value());
    SnapshotReader a = src.Open("alpha");
    EXPECT_EQ(a.U64(), 11u);
    EXPECT_TRUE(src.Close(&a, "alpha"));
    src.FailIfUnopened();  // beta and gamma were trusted but never read
    EXPECT_FALSE(src.ok());
    EXPECT_EQ(src.error().kind, SnapshotErrorKind::kBadValue);
  }
}

TEST(SectionedSnapshotTest, PagedVmSectionedSaveMatchesChainRestore) {
  // The component-level delta property: step, full-cut, step more, delta-cut,
  // restore through the chain, and the restored VM both re-seals identically
  // and continues identically.
  SystemSpec spec = ServeSpec(ReplacementStrategyKind::kLru);
  const ReferenceTrace trace = VmTrace();
  PagedLinearVm vm(PagedConfigFromSpec(spec));
  const std::size_t cut = trace.refs.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) {
    vm.Step(trace.refs[i]);
  }
  SectionedSnapshotWriter full_w;
  vm.SaveSections(&full_w);
  const SectionBaseline baseline = full_w.Digest();
  const std::string full = full_w.SealFull();

  const std::size_t second = cut + (trace.refs.size() - cut) / 2;
  for (std::size_t i = cut; i < second; ++i) {
    vm.Step(trace.refs[i]);
  }
  SectionedSnapshotWriter delta_w;
  vm.SaveSections(&delta_w);
  const std::string delta = delta_w.SealDelta(baseline);
  EXPECT_LT(delta.size(), full.size());

  auto resolved = ResolveSectionChain({full, delta});
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Describe();
  SectionSource src = std::move(resolved.value());
  PagedLinearVm restored(PagedConfigFromSpec(spec));
  restored.LoadSections(&src);
  src.FailIfUnopened();
  ASSERT_TRUE(src.ok()) << src.error().Describe();

  SectionedSnapshotWriter lhs;
  vm.SaveSections(&lhs);
  SectionedSnapshotWriter rhs;
  restored.SaveSections(&rhs);
  EXPECT_EQ(lhs.SealFull(), rhs.SealFull());
  EXPECT_EQ(StepAll(&vm, trace, second), StepAll(&restored, trace, second));
}

}  // namespace
}  // namespace dsa
