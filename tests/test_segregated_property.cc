// Property suites for the segregated allocator family.
//
//   parity      a SegregatedFitAllocator collapsed to one size class with
//               quick lists disabled IS address-ordered first fit: on random
//               traces it must bit-match VariableAllocator+FirstFitPlacement
//               — every placement, every failure, every hole.
//   invariants  under random churn with quick lists on, the structural
//               audit (block-map tiling, exact index membership, no dual
//               membership, byte conservation) holds at every step.
//   compaction  PrepareForCompaction leaves zero parked words, and packing
//               a quick-listed heap produces the same single hole an eager
//               heap would.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/alloc/compaction.h"
#include "src/alloc/segregated_fit.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/rng.h"
#include "src/trace/allocation.h"

namespace dsa {
namespace {

constexpr WordCount kCapacity = 1u << 14;

SegregatedFitConfig FirstFitParityConfig() {
  SegregatedFitConfig config;
  config.single_class = true;
  config.quick_list_capacity = 0;
  config.min_split_remainder = 1;  // FreeList splits any nonzero remainder
  return config;
}

AllocationTrace RandomTrace(std::uint64_t seed, std::size_t operations) {
  AllocationTraceParams params;
  params.operations = operations;
  params.distribution = SizeDistribution::kExponential;
  params.min_size = 1;
  params.max_size = 1024;
  params.mean_size = 96.0;
  params.target_live = 96;
  params.seed = seed;
  return MakeAllocationTrace(params);
}

TEST(SegregatedParityProperty, SingleClassEagerIsFirstFit) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AllocationTrace trace = RandomTrace(seed, 4000);
    SegregatedFitAllocator seg(kCapacity, FirstFitParityConfig());
    VariableAllocator ref(kCapacity, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));

    std::unordered_map<std::uint64_t, PhysicalAddress> seg_live;
    std::unordered_map<std::uint64_t, PhysicalAddress> ref_live;
    std::size_t step = 0;
    for (const AllocOp& op : trace.ops) {
      ++step;
      if (op.kind == AllocOpKind::kAllocate) {
        const auto a = seg.Allocate(op.size);
        const auto b = ref.Allocate(op.size);
        ASSERT_EQ(a.has_value(), b.has_value())
            << "seed " << seed << " step " << step << " size " << op.size;
        if (a) {
          ASSERT_EQ(a->addr, b->addr) << "seed " << seed << " step " << step;
          ASSERT_EQ(a->size, b->size) << "seed " << seed << " step " << step;
          seg_live.emplace(op.request, a->addr);
          ref_live.emplace(op.request, b->addr);
        }
      } else {
        const auto sit = seg_live.find(op.request);
        if (sit != seg_live.end()) {
          seg.Free(sit->second);
          ref.Free(ref_live.at(op.request));
          seg_live.erase(sit);
          ref_live.erase(op.request);
        }
      }
      if (step % 256 == 0) {
        ASSERT_EQ(seg.HoleSizes(), ref.HoleSizes()) << "seed " << seed << " step " << step;
      }
    }
    EXPECT_EQ(seg.HoleSizes(), ref.HoleSizes()) << "seed " << seed;
    EXPECT_EQ(seg.stats().failures, ref.stats().failures) << "seed " << seed;
    EXPECT_EQ(seg.live_words(), ref.live_words()) << "seed " << seed;
    std::string error;
    EXPECT_TRUE(seg.CheckInvariants(&error)) << "seed " << seed << ": " << error;
  }
}

TEST(SegregatedInvariantProperty, ChurnPreservesStructuralInvariants) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const AllocationTrace trace = RandomTrace(seed, 6000);
    SegregatedFitAllocator alloc(kCapacity);  // quick lists on, default config
    std::unordered_map<std::uint64_t, PhysicalAddress> live;
    std::size_t step = 0;
    std::string error;
    for (const AllocOp& op : trace.ops) {
      ++step;
      if (op.kind == AllocOpKind::kAllocate) {
        if (const auto block = alloc.Allocate(op.size)) {
          live.emplace(op.request, block->addr);
        }
      } else if (const auto it = live.find(op.request); it != live.end()) {
        alloc.Free(it->second);
        live.erase(it);
      }
      if (step % 64 == 0) {
        ASSERT_TRUE(alloc.CheckInvariants(&error))
            << "seed " << seed << " step " << step << ": " << error;
      }
    }
    ASSERT_TRUE(alloc.CheckInvariants(&error)) << "seed " << seed << ": " << error;
  }
}

TEST(SegregatedInvariantProperty, ZipfPhaseAndMeasuredTracesReplayClean) {
  std::vector<AllocationTrace> traces;
  AllocationTraceParams zipf;
  zipf.operations = 4000;
  zipf.distribution = SizeDistribution::kZipf;
  zipf.min_size = 8;
  zipf.max_size = 1024;
  zipf.target_live = 128;
  zipf.seed = 21;
  traces.push_back(MakeAllocationTrace(zipf));
  PhaseTraceParams phase;
  phase.operations = 4000;
  phase.seed = 22;
  traces.push_back(MakePhaseAllocationTrace(phase));
  MeasuredTraceParams measured;
  measured.allocations = 2000;
  measured.seed = 23;
  traces.push_back(MakeMeasuredAllocationTrace(measured));

  for (const AllocationTrace& trace : traces) {
    SegregatedFitAllocator alloc(1u << 16);
    std::unordered_map<std::uint64_t, PhysicalAddress> live;
    for (const AllocOp& op : trace.ops) {
      if (op.kind == AllocOpKind::kAllocate) {
        if (const auto block = alloc.Allocate(op.size)) {
          live.emplace(op.request, block->addr);
        }
      } else if (const auto it = live.find(op.request); it != live.end()) {
        alloc.Free(it->second);
        live.erase(it);
      }
    }
    std::string error;
    EXPECT_TRUE(alloc.CheckInvariants(&error)) << trace.label << ": " << error;
    // The measured trace frees everything it allocated; a fully drained
    // heap must coalesce back to one hole.
    if (trace.label == "alloc-measured" && alloc.live_words() == 0) {
      alloc.DrainQuickLists();
      EXPECT_EQ(alloc.HoleSizes().size(), 1u);
    }
  }
}

TEST(SegregatedCompactionProperty, DrainBeforePackLeavesZeroParked) {
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    const AllocationTrace trace = RandomTrace(seed, 3000);
    SegregatedFitAllocator alloc(kCapacity);
    std::unordered_map<std::uint64_t, PhysicalAddress> live;
    for (const AllocOp& op : trace.ops) {
      if (op.kind == AllocOpKind::kAllocate) {
        if (const auto block = alloc.Allocate(op.size)) {
          live.emplace(op.request, block->addr);
        }
      } else if (const auto it = live.find(op.request); it != live.end()) {
        alloc.Free(it->second);
        live.erase(it);
      }
    }
    CompactionEngine engine(CpuPackingChannel());
    const CompactionResult result = engine.Compact(&alloc, nullptr);
    EXPECT_EQ(alloc.parked_words(), 0u) << "seed " << seed;
    EXPECT_EQ(alloc.parked_blocks(), 0u) << "seed " << seed;
    EXPECT_LE(result.holes_after, 1u) << "seed " << seed;
    // Packed: live blocks tile [0, reserved_words).
    WordCount next = 0;
    for (const Block& block : alloc.LiveBlocks()) {
      ASSERT_EQ(block.addr.value, next) << "seed " << seed;
      next += block.size;
    }
    EXPECT_EQ(next, alloc.reserved_words()) << "seed " << seed;
    std::string error;
    EXPECT_TRUE(alloc.CheckInvariants(&error)) << "seed " << seed << ": " << error;
  }
}

}  // namespace
}  // namespace dsa
