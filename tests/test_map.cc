// Unit tests for src/map: every mapping mechanism in the paper's catalogue,
// plus the associative memory that makes them affordable.

#include <gtest/gtest.h>

#include "src/map/associative_memory.h"
#include "src/map/block_table.h"
#include "src/map/mapper.h"
#include "src/map/page_table.h"
#include "src/map/relocation_limit.h"
#include "src/map/two_level.h"

namespace dsa {
namespace {

// --- IdentityMapper -------------------------------------------------------------

TEST(IdentityMapperTest, NamesAreAddresses) {
  IdentityMapper mapper(100);
  const auto t = mapper.Translate(Name{42}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{42});
  EXPECT_EQ(t->cost, 0u);
}

TEST(IdentityMapperTest, OutOfExtentFaults) {
  IdentityMapper mapper(100);
  const auto t = mapper.Translate(Name{100}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kInvalidName);
  EXPECT_EQ(mapper.faults(), 1u);
}

// --- RelocationLimitMapper --------------------------------------------------------

TEST(RelocationLimitTest, AddsRelocationAfterLimitCheck) {
  RelocationLimitMapper mapper(PhysicalAddress{5000}, 100);
  const auto t = mapper.Translate(Name{42}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{5042});
  EXPECT_EQ(t->cost, 2u);  // limit check + relocation add
}

TEST(RelocationLimitTest, LimitViolationTrapped) {
  RelocationLimitMapper mapper(PhysicalAddress{5000}, 100);
  const auto t = mapper.Translate(Name{100}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kBoundsViolation);
}

TEST(RelocationLimitTest, ReloadMovesTheProgram) {
  RelocationLimitMapper mapper(PhysicalAddress{0}, 100);
  mapper.Load(PhysicalAddress{900}, 50);
  const auto t = mapper.Translate(Name{10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{910});
  EXPECT_FALSE(mapper.Translate(Name{60}, AccessKind::kRead, 0).has_value());
}

TEST(RelocationLimitTest, MeanCostIsTwoRegisterOps) {
  RelocationLimitMapper mapper(PhysicalAddress{0}, 100);
  for (int i = 0; i < 10; ++i) {
    mapper.Translate(Name{static_cast<std::uint64_t>(i)}, AccessKind::kRead, 0);
  }
  EXPECT_DOUBLE_EQ(mapper.MeanTranslationCost(), 2.0);
}

// --- BlockTableMapper (Fig. 2) -----------------------------------------------------

TEST(BlockTableTest, HighBitsIndexTheTable) {
  BlockTableMapper mapper(/*block_words=*/256, /*blocks=*/8);
  mapper.SetBlock(0, PhysicalAddress{1024});
  mapper.SetBlock(1, PhysicalAddress{0});
  const auto t0 = mapper.Translate(Name{10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t0.has_value());
  EXPECT_EQ(t0->address, PhysicalAddress{1034});
  const auto t1 = mapper.Translate(Name{256 + 10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->address, PhysicalAddress{10});
}

TEST(BlockTableTest, ScatteredBlocksAppearContiguous) {
  // The Fig. 1 picture: name-contiguous blocks at scattered addresses.
  BlockTableMapper mapper(128, 4);
  mapper.SetBlock(0, PhysicalAddress{896});
  mapper.SetBlock(1, PhysicalAddress{128});
  mapper.SetBlock(2, PhysicalAddress{640});
  mapper.SetBlock(3, PhysicalAddress{0});
  // A sweep over names 0..511 never faults although no two blocks abut.
  for (std::uint64_t n = 0; n < 512; ++n) {
    EXPECT_TRUE(mapper.Translate(Name{n}, AccessKind::kRead, 0).has_value());
  }
}

TEST(BlockTableTest, UnmappedBlockFaults) {
  BlockTableMapper mapper(256, 8);
  const auto t = mapper.Translate(Name{300}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kPageNotPresent);
  EXPECT_EQ(t.error().page, PageId{1});
}

TEST(BlockTableTest, NameBeyondTableFaults) {
  BlockTableMapper mapper(256, 4);
  const auto t = mapper.Translate(Name{4 * 256}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kInvalidName);
}

TEST(BlockTableTest, CostIsTableReferencePlusAdd) {
  BlockTableMapper mapper(256, 8);
  mapper.SetBlock(0, PhysicalAddress{0});
  const auto t = mapper.Translate(Name{1}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cost, 3u);  // core_reference(2) + register_op(1)
  EXPECT_EQ(mapper.TableWords(), 8u);
}

TEST(BlockTableTest, ClearBlockRevokesMapping) {
  BlockTableMapper mapper(256, 8);
  mapper.SetBlock(0, PhysicalAddress{0});
  mapper.ClearBlock(0);
  EXPECT_FALSE(mapper.Translate(Name{0}, AccessKind::kRead, 0).has_value());
}

// --- AssociativeMemory --------------------------------------------------------------

TEST(AssociativeMemoryTest, HitsAfterInsert) {
  AssociativeMemory memory(4);
  memory.Insert(7, 70, 0);
  EXPECT_EQ(memory.Lookup(7, 1), std::optional<std::uint64_t>{70});
  EXPECT_EQ(memory.hits(), 1u);
  EXPECT_EQ(memory.misses(), 0u);
}

TEST(AssociativeMemoryTest, MissesOnUnknownKey) {
  AssociativeMemory memory(4);
  EXPECT_FALSE(memory.Lookup(9, 0).has_value());
  EXPECT_EQ(memory.misses(), 1u);
}

TEST(AssociativeMemoryTest, LruEvictionOnOverflow) {
  AssociativeMemory memory(2);
  memory.Insert(1, 10, 0);
  memory.Insert(2, 20, 1);
  memory.Lookup(1, 2);       // refresh key 1
  memory.Insert(3, 30, 3);   // evicts key 2 (least recently used)
  EXPECT_TRUE(memory.Lookup(1, 4).has_value());
  EXPECT_FALSE(memory.Lookup(2, 5).has_value());
  EXPECT_TRUE(memory.Lookup(3, 6).has_value());
}

TEST(AssociativeMemoryTest, InsertRefreshesExistingKey) {
  AssociativeMemory memory(2);
  memory.Insert(1, 10, 0);
  memory.Insert(1, 11, 1);
  EXPECT_EQ(memory.size(), 1u);
  EXPECT_EQ(memory.Lookup(1, 2), std::optional<std::uint64_t>{11});
}

TEST(AssociativeMemoryTest, InvalidateRemovesOneKey) {
  AssociativeMemory memory(4);
  memory.Insert(1, 10, 0);
  memory.Insert(2, 20, 0);
  memory.Invalidate(1);
  EXPECT_FALSE(memory.Lookup(1, 1).has_value());
  EXPECT_TRUE(memory.Lookup(2, 1).has_value());
}

TEST(AssociativeMemoryTest, ZeroCapacityAlwaysMisses) {
  AssociativeMemory memory(0);
  memory.Insert(1, 10, 0);
  EXPECT_FALSE(memory.Lookup(1, 1).has_value());
  EXPECT_EQ(memory.HitRate(), 0.0);
}

// --- PageTableMapper ------------------------------------------------------------------

TEST(PageTableMapperTest, MissThenHitCostDifference) {
  PageTableMapper mapper(/*page_words=*/512, /*pages=*/16, /*tlb_entries=*/4);
  mapper.Map(PageId{0}, FrameId{3});
  // First access: TLB probe (1) + table reference (2).
  const auto miss = mapper.Translate(Name{100}, AccessKind::kRead, 0);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->cost, 3u);
  EXPECT_FALSE(miss->associative_hit);
  // Second access: TLB hit (1).
  const auto hit = mapper.Translate(Name{101}, AccessKind::kRead, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 1u);
  EXPECT_TRUE(hit->associative_hit);
  EXPECT_EQ(hit->address, PhysicalAddress{3 * 512 + 101});
}

TEST(PageTableMapperTest, NoTlbAlwaysPaysTableReference) {
  PageTableMapper mapper(512, 16, 0);
  mapper.Map(PageId{0}, FrameId{0});
  for (int i = 0; i < 3; ++i) {
    const auto t = mapper.Translate(Name{0}, AccessKind::kRead, 0);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->cost, 2u);
  }
}

TEST(PageTableMapperTest, AbsentPageFaultsWithPageId) {
  PageTableMapper mapper(512, 16, 4);
  const auto t = mapper.Translate(Name{512 * 5 + 7}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kPageNotPresent);
  EXPECT_EQ(t.error().page, PageId{5});
}

TEST(PageTableMapperTest, UnmapShootsDownTlb) {
  PageTableMapper mapper(512, 16, 4);
  mapper.Map(PageId{0}, FrameId{1});
  mapper.Translate(Name{0}, AccessKind::kRead, 0);  // fills the TLB
  mapper.Unmap(PageId{0});
  const auto t = mapper.Translate(Name{0}, AccessKind::kRead, 1);
  ASSERT_FALSE(t.has_value()) << "stale TLB entry survived the unmap";
}

TEST(PageTableMapperTest, NameBeyondTableIsInvalid) {
  PageTableMapper mapper(512, 4, 0);
  const auto t = mapper.Translate(Name{512 * 4}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kInvalidName);
}

// --- AtlasPageRegisterMapper -------------------------------------------------------------

TEST(AtlasMapperTest, AssociativeSearchMapsDirectly) {
  AtlasPageRegisterMapper mapper(512, /*frames=*/4);
  mapper.LoadFrame(FrameId{2}, PageId{7});
  const auto t = mapper.Translate(Name{7 * 512 + 9}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{2 * 512 + 9});
  EXPECT_EQ(t->cost, 1u);  // one parallel associative search
  EXPECT_TRUE(t->associative_hit);
}

TEST(AtlasMapperTest, MissIsThePageFault) {
  AtlasPageRegisterMapper mapper(512, 4);
  const auto t = mapper.Translate(Name{3 * 512}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kPageNotPresent);
  EXPECT_EQ(t.error().page, PageId{3});
}

TEST(AtlasMapperTest, ClearFrameRevokes) {
  AtlasPageRegisterMapper mapper(512, 4);
  mapper.LoadFrame(FrameId{0}, PageId{1});
  mapper.ClearFrame(FrameId{0});
  EXPECT_FALSE(mapper.Translate(Name{512}, AccessKind::kRead, 0).has_value());
}

// --- SegmentPageMapper (Fig. 4) -------------------------------------------------------------

class SegmentPageMapperTest : public ::testing::Test {
 protected:
  SegmentPageMapperTest() : mapper_(4, 12, 256, 4) {
    mapper_.DefineSegment(SegmentId{1}, 1000);
    mapper_.MapPage(SegmentId{1}, PageId{0}, FrameId{5});
  }
  SegmentPageMapper mapper_;
};

TEST_F(SegmentPageMapperTest, TwoLevelTranslationResolves) {
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{5 * 256 + 10});
  // TLB probe (1) + segment table (2) + page table (2).
  EXPECT_EQ(t->cost, 5u);
}

TEST_F(SegmentPageMapperTest, TlbHitSkipsBothTables) {
  mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 20}, AccessKind::kRead, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cost, 1u);
  EXPECT_TRUE(t->associative_hit);
}

TEST_F(SegmentPageMapperTest, BoundsViolationInterceptsBadSubscript) {
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 1000}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kBoundsViolation);
}

TEST_F(SegmentPageMapperTest, UndefinedSegmentIsInvalid) {
  const auto t = mapper_.TranslateSegmented({SegmentId{2}, 0}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kInvalidSegment);
}

TEST_F(SegmentPageMapperTest, AbsentPageFaults) {
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 300}, AccessKind::kRead, 0);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kPageNotPresent);
  EXPECT_EQ(t.error().page, PageId{1});
}

TEST_F(SegmentPageMapperTest, LinearViewUnpacksHighBits) {
  // Linear name = (segment << offset_bits) | offset.
  const auto t =
      mapper_.Translate(Name{(std::uint64_t{1} << 12) | 10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{5 * 256 + 10});
}

TEST_F(SegmentPageMapperTest, ResizeGrowKeepsMappings) {
  mapper_.ResizeSegment(SegmentId{1}, 2000);
  EXPECT_EQ(mapper_.SegmentExtent(SegmentId{1}), 2000u);
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->address, PhysicalAddress{5 * 256 + 10});
  // The new tail pages exist but are absent.
  const auto tail = mapper_.TranslateSegmented({SegmentId{1}, 1500}, AccessKind::kRead, 0);
  ASSERT_FALSE(tail.has_value());
  EXPECT_EQ(tail.error().kind, FaultKind::kPageNotPresent);
}

TEST_F(SegmentPageMapperTest, ResizeShrinkInvalidatesTail) {
  mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);  // TLB fill
  mapper_.ResizeSegment(SegmentId{1}, 5);
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 1);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kBoundsViolation);
}

TEST_F(SegmentPageMapperTest, DestroySegmentInvalidatesEverything) {
  mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);  // TLB fill
  mapper_.DestroySegment(SegmentId{1});
  EXPECT_FALSE(mapper_.SegmentIsDefined(SegmentId{1}));
  const auto t = mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 1);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error().kind, FaultKind::kInvalidSegment);
}

TEST_F(SegmentPageMapperTest, TableWordsCountSegmentAndPageTables) {
  // 16 segment entries + ceil(1000/256)=4 page entries.
  EXPECT_EQ(mapper_.TableWords(), 16u + 4u);
  mapper_.DefineSegment(SegmentId{2}, 256);
  EXPECT_EQ(mapper_.TableWords(), 16u + 4u + 1u);
}

TEST_F(SegmentPageMapperTest, UnmapPageInvalidatesItsTlbEntryOnly) {
  mapper_.DefineSegment(SegmentId{2}, 512);
  mapper_.MapPage(SegmentId{2}, PageId{0}, FrameId{6});
  mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 0);
  mapper_.TranslateSegmented({SegmentId{2}, 10}, AccessKind::kRead, 1);
  mapper_.UnmapPage(SegmentId{1}, PageId{0});
  EXPECT_FALSE(mapper_.TranslateSegmented({SegmentId{1}, 10}, AccessKind::kRead, 2).has_value());
  const auto still = mapper_.TranslateSegmented({SegmentId{2}, 10}, AccessKind::kRead, 3);
  EXPECT_TRUE(still.has_value());
  EXPECT_TRUE(still->associative_hit);
}

// --- Mapper accounting -----------------------------------------------------------------------

TEST(MapperAccountingTest, MeanCostAveragesOverTranslations) {
  PageTableMapper mapper(512, 4, 2);
  mapper.Map(PageId{0}, FrameId{0});
  mapper.Translate(Name{0}, AccessKind::kRead, 0);  // cost 3 (probe+table)
  mapper.Translate(Name{1}, AccessKind::kRead, 1);  // cost 1 (hit)
  EXPECT_EQ(mapper.translations(), 2u);
  EXPECT_DOUBLE_EQ(mapper.MeanTranslationCost(), 2.0);
}

}  // namespace
}  // namespace dsa
