// Cross-system integration tests: claims that span families — the paper's
// comparative statements — checked as assertions rather than bench prose.

#include <gtest/gtest.h>

#include "src/machines/survey.h"
#include "src/trace/synthetic.h"
#include "src/vm/overlay.h"
#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"
#include "src/vm/segmented_vm.h"

namespace dsa {
namespace {

ReferenceTrace PhasedWorkload() {
  WorkingSetTraceParams params;
  params.extent = 1 << 15;
  params.region_words = 128;
  params.regions_per_phase = 12;
  params.phases = 8;
  params.phase_length = 6000;
  return MakeWorkingSetTrace(params);
}

// The Introduction's claim, as an assertion: automatic demand paging moves
// fewer words than worst-case static overlays on a phase-local program.
TEST(CrossSystemTest, DemandPagingBeatsStaticOverlays) {
  const ReferenceTrace trace = PhasedWorkload();
  const StorageLevel drum = MakeDrumLevel("drum", 1u << 20, 4, 6000);

  OverlayPlanConfig plan_config;
  plan_config.region_words = 2048;
  plan_config.resident_regions = 4;  // 8192 words of core
  plan_config.backing = drum;
  const OverlayReport overlays = StaticOverlayPlan(plan_config).Run(trace);

  PagedVmConfig vm_config;
  vm_config.address_bits = 15;
  vm_config.core_words = 8192;  // same core budget
  vm_config.page_words = 512;
  vm_config.backing_level = drum;
  vm_config.replacement = ReplacementStrategyKind::kLru;
  const VmReport paged = PagedLinearVm(vm_config).Run(trace);

  EXPECT_LT(paged.faults * 512, overlays.words_transferred);
  EXPECT_LT(paged.total_cycles, overlays.total_cycles);
}

// "The basic disadvantage of a segmented name space over a linear name
// space is the added complexity of the addressing mechanism": with no
// associative help, two-level mapping costs strictly more per reference
// than one-level paging, which costs more than nothing.
TEST(CrossSystemTest, AddressingComplexityOrdersTranslationCost) {
  const ReferenceTrace trace = PhasedWorkload();

  PagedVmConfig paged;
  paged.address_bits = 15;
  paged.core_words = 1 << 15;  // fully resident: pure mapping cost
  paged.page_words = 512;
  paged.tlb_entries = 0;
  paged.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 100);
  const VmReport one_level = PagedLinearVm(paged).Run(trace);

  PagedSegmentedVmConfig seg;
  seg.segment_bits = 7;
  seg.offset_bits = 13;
  seg.core_words = 1 << 15;
  seg.page_words = 512;
  seg.tlb_entries = 0;
  seg.workload_segment_words = 4096;
  seg.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 100);
  const VmReport two_level = PagedSegmentedVm(seg).Run(trace);

  EXPECT_GT(two_level.MeanTranslationCost(), one_level.MeanTranslationCost());
  EXPECT_GT(one_level.MeanTranslationCost(), 0.0);
}

// Segment-unit fetch moves whole segments; paged fetch moves pages — on a
// sparse access pattern the paged system transfers less.
TEST(CrossSystemTest, PagedFetchMovesLessOnSparseAccess) {
  // Touch one word in each of 48 well-separated 512-word slices.
  ReferenceTrace sparse;
  sparse.label = "sparse";
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t s = 0; s < 48; ++s) {
      sparse.refs.push_back({Name{s * 512 + 7}, AccessKind::kRead});
    }
  }

  SegmentedVmConfig seg;
  seg.core_words = 8192;
  seg.max_segment_extent = 512;
  seg.workload_segment_words = 512;  // fetches 512 words per touched slice
  seg.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  const VmReport segment_unit = SegmentedVm(seg).Run(sparse);

  PagedVmConfig paged;
  paged.address_bits = 15;
  paged.core_words = 8192;
  paged.page_words = 128;  // finer units: less dragged in per fault
  paged.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  const VmReport fine_paged = PagedLinearVm(paged).Run(sparse);

  // Both fault per slice, but the paged system moves a quarter the words.
  EXPECT_LT(fine_paged.faults * 128, segment_unit.faults * 512);
}

// The survey is deterministic: the same seed reproduces every measurement.
TEST(CrossSystemTest, SurveyIsDeterministic) {
  const auto first = RunSurvey(1.5, 3000, 11);
  const auto second = RunSurvey(1.5, 3000, 11);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].report.faults, second[i].report.faults)
        << first[i].description.name;
    EXPECT_EQ(first[i].report.total_cycles, second[i].report.total_cycles);
  }
}

// MULTICS accepts its three directives through the paged-segmented advice
// API; keep-resident survives pressure end to end.
TEST(CrossSystemTest, MulticsStyleKeepResidentSurvivesPressure) {
  PagedSegmentedVmConfig config;
  config.segment_bits = 6;
  config.offset_bits = 14;
  config.core_words = 4096;
  config.page_words = 256;
  config.workload_segment_words = 1024;
  config.accept_advice = true;
  config.backing_level = MakeDrumLevel("drum", 1u << 18, 2, 500);
  PagedSegmentedVm vm(config);

  // Pin segment 0 page 0, then run a workload that would otherwise evict it.
  // (Advice must be issued after Run's reset, so drive Step-equivalent flow
  // via a fresh run with the directive folded into the trace's first touch.)
  vm.AdviseKeepResident(SegmentedName{SegmentId{0}, 0});
  const PageId pinned_key{0};  // (segment 0 << 32) | page 0
  (void)pinned_key;
  WorkingSetTraceParams params;
  params.extent = 1 << 14;
  params.region_words = 256;
  params.regions_per_phase = 10;
  params.phases = 3;
  params.phase_length = 3000;
  const VmReport report = vm.Run(MakeWorkingSetTrace(params));
  EXPECT_GT(report.references, 0u);  // ran to completion with the pin in place
}

// VmReport helper edge cases.
TEST(VmReportTest, RatiosAreSafeOnEmptyReports) {
  VmReport report;
  EXPECT_EQ(report.FaultRate(), 0.0);
  EXPECT_EQ(report.MeanTranslationCost(), 0.0);
  EXPECT_EQ(report.WaitFraction(), 0.0);
  EXPECT_EQ(report.space_time.WaitingFraction(), 0.0);
}

}  // namespace
}  // namespace dsa
