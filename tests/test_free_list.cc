// Unit tests for the coalescing free list, the invariant bed under every
// variable-unit allocator.

#include <gtest/gtest.h>

#include "src/alloc/free_list.h"

namespace dsa {
namespace {

TEST(FreeListTest, StartsAsOneHole) {
  FreeList list(1000);
  EXPECT_EQ(list.hole_count(), 1u);
  EXPECT_EQ(list.total_free(), 1000u);
  EXPECT_EQ(list.largest_hole(), 1000u);
}

TEST(FreeListTest, TakeFromMiddleSplitsHole) {
  FreeList list(1000);
  list.TakeRange(PhysicalAddress{100}, 50);
  EXPECT_EQ(list.hole_count(), 2u);
  EXPECT_EQ(list.total_free(), 950u);
  const auto holes = list.Holes();
  EXPECT_EQ(holes[0], (Block{PhysicalAddress{0}, 100}));
  EXPECT_EQ(holes[1], (Block{PhysicalAddress{150}, 850}));
}

TEST(FreeListTest, TakeAtHoleStartLeavesOneRemainder) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{0}, 30);
  EXPECT_EQ(list.hole_count(), 1u);
  EXPECT_EQ(list.Holes()[0], (Block{PhysicalAddress{30}, 70}));
}

TEST(FreeListTest, TakeWholeHoleRemovesIt) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{0}, 100);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.total_free(), 0u);
}

TEST(FreeListTest, InsertCoalescesWithPredecessor) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{50}, 50);  // hole [0,50)
  list.Insert(Block{PhysicalAddress{50}, 10});
  EXPECT_EQ(list.hole_count(), 1u);
  EXPECT_EQ(list.Holes()[0], (Block{PhysicalAddress{0}, 60}));
}

TEST(FreeListTest, InsertCoalescesWithSuccessor) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{0}, 50);  // hole [50,100)
  list.Insert(Block{PhysicalAddress{40}, 10});
  EXPECT_EQ(list.hole_count(), 1u);
  EXPECT_EQ(list.Holes()[0], (Block{PhysicalAddress{40}, 60}));
}

TEST(FreeListTest, InsertCoalescesBothSides) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{40}, 20);  // holes [0,40) and [60,100)
  ASSERT_EQ(list.hole_count(), 2u);
  list.Insert(Block{PhysicalAddress{40}, 20});
  EXPECT_EQ(list.hole_count(), 1u);
  EXPECT_EQ(list.Holes()[0], (Block{PhysicalAddress{0}, 100}));
}

TEST(FreeListTest, InsertIsolatedHoleStaysSeparate) {
  FreeList list;
  list.Insert(Block{PhysicalAddress{0}, 10});
  list.Insert(Block{PhysicalAddress{20}, 10});
  EXPECT_EQ(list.hole_count(), 2u);
  EXPECT_EQ(list.total_free(), 20u);
}

TEST(FreeListTest, RangeIsFreeChecksContainment) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{40}, 20);
  EXPECT_TRUE(list.RangeIsFree(PhysicalAddress{0}, 40));
  EXPECT_TRUE(list.RangeIsFree(PhysicalAddress{60}, 40));
  EXPECT_FALSE(list.RangeIsFree(PhysicalAddress{30}, 20));  // straddles the allocation
  EXPECT_FALSE(list.RangeIsFree(PhysicalAddress{40}, 1));
  EXPECT_TRUE(list.RangeIsFree(PhysicalAddress{0}, 0));  // empty range trivially free
}

TEST(FreeListTest, HoleSizesMatchHoles) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{10}, 5);
  list.TakeRange(PhysicalAddress{50}, 5);
  const auto sizes = list.HoleSizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 10u);
  EXPECT_EQ(sizes[1], 35u);
  EXPECT_EQ(sizes[2], 45u);
}

TEST(FreeListTest, ClearEmptiesEverything) {
  FreeList list(100);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.total_free(), 0u);
}

TEST(FreeListDeathTest, DoubleFreeDetected) {
  FreeList list(100);
  EXPECT_DEATH(list.Insert(Block{PhysicalAddress{10}, 5}), "double free");
}

TEST(FreeListDeathTest, OverlappingInsertDetected) {
  FreeList list;
  list.Insert(Block{PhysicalAddress{0}, 10});
  EXPECT_DEATH(list.Insert(Block{PhysicalAddress{5}, 10}), "double free");
}

TEST(FreeListDeathTest, TakeOutsideAnyHoleDetected) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{0}, 100);
  EXPECT_DEATH(list.TakeRange(PhysicalAddress{0}, 1), "hole");
}

TEST(FreeListDeathTest, TakeStraddlingHolesDetected) {
  FreeList list(100);
  list.TakeRange(PhysicalAddress{40}, 20);
  EXPECT_DEATH(list.TakeRange(PhysicalAddress{30}, 40), "single hole");
}

}  // namespace
}  // namespace dsa
