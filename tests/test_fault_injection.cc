// Fault-injection and resilience tests.
//
//   * The fault-parity guarantee: a zero-rate FaultInjector is bit-identical
//     in observable behaviour to no injector at all — victim sequences,
//     fault counts, every PagerStats field, and the backing store's transfer
//     counters all agree.
//   * Determinism: same injector seed + same trace => identical
//     ReliabilityStats.
//   * Recovery paths, scripted fault by fault: transient retries (with fresh
//     latency charges), retry exhaustion, permanent-slot relocation
//     round-trips, frame-failure retirement, and the all-pinned
//     kNoUsableFrames error.
//   * The same guarantees for the HierarchyPager.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "src/core/rng.h"
#include "src/mem/fault_injection.h"
#include "src/paging/hierarchy_pager.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_naive.h"
#include "src/paging/replacement_simple.h"

namespace dsa {
namespace {

// --- scripted injector -------------------------------------------------------

// Replays an exact fault schedule instead of drawing randomly; unscripted
// draws are clean.  Rates stay zero so the base class never consumes RNG.
class ScriptedInjector : public FaultInjector {
 public:
  explicit ScriptedInjector(int max_retries = 3) : FaultInjector(MakeConfig(max_retries)) {}

  TransferFaultKind DrawTransferFault(std::size_t level) override {
    (void)level;
    if (transfer_script_.empty()) {
      return TransferFaultKind::kNone;
    }
    const TransferFaultKind next = transfer_script_.front();
    transfer_script_.pop_front();
    return next;
  }

  bool DrawFrameFailure() override {
    if (frame_script_.empty()) {
      return false;
    }
    const bool next = frame_script_.front();
    frame_script_.pop_front();
    return next;
  }

  void ScriptTransfer(TransferFaultKind kind) { transfer_script_.push_back(kind); }
  void ScriptFrameFailure(bool fails) { frame_script_.push_back(fails); }

 private:
  static FaultInjectorConfig MakeConfig(int max_retries) {
    FaultInjectorConfig config;
    config.max_retries = max_retries;
    return config;
  }

  std::deque<TransferFaultKind> transfer_script_;
  std::deque<bool> frame_script_;
};

// --- injector unit behaviour -------------------------------------------------

TEST(FaultInjectorTest, ZeroRatesDrawNothing) {
  FaultInjector injector{FaultInjectorConfig{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.DrawTransferFault(0), TransferFaultKind::kNone);
    EXPECT_FALSE(injector.DrawFrameFailure());
  }
}

TEST(FaultInjectorTest, CertainRatesAlwaysFire) {
  FaultInjectorConfig config;
  config.rates.transient_transfer = 1.0;
  config.rates.frame_failure = 1.0;
  FaultInjector injector(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.DrawTransferFault(0), TransferFaultKind::kTransient);
    EXPECT_TRUE(injector.DrawFrameFailure());
  }
}

TEST(FaultInjectorTest, PerLevelOverridesApply) {
  FaultInjectorConfig config;
  config.rates.transient_transfer = 1.0;   // default: always transient
  config.level_rates[1] = FaultRates{};    // level 1: quiet
  FaultInjector injector(config);
  EXPECT_EQ(injector.DrawTransferFault(0), TransferFaultKind::kTransient);
  EXPECT_EQ(injector.DrawTransferFault(1), TransferFaultKind::kNone);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjectorConfig config;
  config.seed = 77;
  config.rates.transient_transfer = 0.3;
  config.rates.permanent_slot = 0.1;
  config.rates.frame_failure = 0.2;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a.DrawTransferFault(0), b.DrawTransferFault(0)) << "draw " << i;
    ASSERT_EQ(a.DrawFrameFailure(), b.DrawFrameFailure()) << "draw " << i;
  }
}

// --- pager-level parity ------------------------------------------------------

// Records every victim a wrapped policy chooses.
class RecordingPolicy : public ReplacementPolicy {
 public:
  RecordingPolicy(std::unique_ptr<ReplacementPolicy> inner, std::vector<FrameId>* victims)
      : inner_(std::move(inner)), victims_(victims) {}

  void OnLoad(FrameId frame, PageId page, Cycles now) override {
    inner_->OnLoad(frame, page, now);
  }
  void OnAccess(FrameId frame, PageId page, Cycles now, bool write) override {
    inner_->OnAccess(frame, page, now, write);
  }
  void OnEvict(FrameId frame, PageId page) override { inner_->OnEvict(frame, page); }
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override {
    const FrameId victim = inner_->ChooseVictim(frames, now);
    victims_->push_back(victim);
    return victim;
  }
  std::vector<FrameId> FramesToRelease(FrameTable* frames, Cycles now) override {
    return inner_->FramesToRelease(frames, now);
  }
  ReplacementStrategyKind kind() const override { return inner_->kind(); }

 private:
  std::unique_ptr<ReplacementPolicy> inner_;
  std::vector<FrameId>* victims_;
};

std::vector<PageId> MixedPageTrace(std::uint64_t seed, std::size_t length,
                                   std::uint64_t pages) {
  Rng rng(seed);
  std::vector<PageId> refs;
  refs.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    // Mix a hot region with uniform spray so hits and faults interleave.
    if (rng.Below(100) < 60) {
      refs.push_back(PageId{rng.Below(pages / 8)});
    } else {
      refs.push_back(PageId{rng.Below(pages)});
    }
  }
  return refs;
}

struct Replay {
  PagerStats stats;
  std::vector<FrameId> victims;
  std::uint64_t backing_stores{0};
  std::uint64_t backing_fetches{0};
  Cycles end_time{0};
};

// Replays a trace (every third reference writes, so dirty evictions exercise
// the write-back paths) and snapshots everything observable.
Replay ReplayTrace(const std::vector<PageId>& refs, std::size_t frames,
                   std::unique_ptr<ReplacementPolicy> policy, FaultInjector* injector) {
  Replay replay;
  BackingStore backing(MakeDrumLevel("drum", 1u << 20, /*word_time=*/2,
                                     /*rotational_delay=*/100));
  TransferChannel channel;
  PagerConfig config;
  config.page_words = 16;
  config.frames = frames;
  Pager pager(config, &backing, &channel,
              std::make_unique<RecordingPolicy>(std::move(policy), &replay.victims),
              std::make_unique<DemandFetch>(), /*advice=*/nullptr, injector);
  Cycles now = 0;
  std::size_t i = 0;
  for (const PageId page : refs) {
    const AccessKind kind = (i++ % 3 == 0) ? AccessKind::kWrite : AccessKind::kRead;
    const auto outcome = pager.Access(page, kind, now);
    now += 1 + (outcome.has_value() ? outcome->wait_cycles : outcome.error().wait_cycles);
  }
  replay.stats = pager.stats();
  replay.backing_stores = backing.stores();
  replay.backing_fetches = backing.fetches();
  replay.end_time = now;
  return replay;
}

void ExpectStatsEqual(const PagerStats& a, const PagerStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.demand_fetches, b.demand_fetches);
  EXPECT_EQ(a.extra_fetches, b.extra_fetches);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.advised_releases, b.advised_releases);
  EXPECT_EQ(a.policy_releases, b.policy_releases);
  EXPECT_EQ(a.wait_cycles, b.wait_cycles);
  EXPECT_EQ(a.transfer_cycles, b.transfer_cycles);
}

void ExpectReliabilityEqual(const ReliabilityStats& a, const ReliabilityStats& b) {
  EXPECT_EQ(a.transient_errors, b.transient_errors);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_cycles, b.retry_cycles);
  EXPECT_EQ(a.slot_failures, b.slot_failures);
  EXPECT_EQ(a.relocations, b.relocations);
  EXPECT_EQ(a.spill_relocations, b.spill_relocations);
  EXPECT_EQ(a.frame_failures, b.frame_failures);
  EXPECT_EQ(a.retired_frames, b.retired_frames);
  EXPECT_EQ(a.residual_frames, b.residual_frames);
  EXPECT_EQ(a.failed_accesses, b.failed_accesses);
  EXPECT_EQ(a.lost_pages, b.lost_pages);
}

TEST(FaultParityTest, ZeroRateInjectorIsBitIdenticalToNoInjector) {
  for (std::uint64_t seed : {17u, 170u, 1700u}) {
    const auto refs = MixedPageTrace(seed, 20000, 256);
    FaultInjector zero_rate{FaultInjectorConfig{}};
    const Replay without =
        ReplayTrace(refs, 64, std::make_unique<LruReplacement>(), nullptr);
    const Replay with =
        ReplayTrace(refs, 64, std::make_unique<LruReplacement>(), &zero_rate);
    ExpectStatsEqual(without.stats, with.stats);
    ASSERT_EQ(without.victims, with.victims) << "seed " << seed;
    EXPECT_EQ(without.backing_stores, with.backing_stores);
    EXPECT_EQ(without.backing_fetches, with.backing_fetches);
    EXPECT_EQ(without.end_time, with.end_time);
    EXPECT_TRUE(with.stats.reliability.Quiet());
    EXPECT_EQ(with.stats.reliability.residual_frames, 64u);
  }
}

// The O(1) intrusive-list engines and the naive scan engines must stay in
// lockstep when frames retire mid-trace: retired frames are out of every
// victim scan by construction, whichever engine runs.
TEST(FaultParityTest, ScanEnginesAgreeUnderFrameRetirement) {
  const auto refs = MixedPageTrace(29, 12000, 256);
  FaultInjectorConfig config;
  config.seed = 5150;
  config.rates.frame_failure = 0.01;
  FaultInjector injector_fast(config);
  FaultInjector injector_scan(config);
  const Replay fast =
      ReplayTrace(refs, 48, std::make_unique<LruReplacement>(), &injector_fast);
  const Replay scan =
      ReplayTrace(refs, 48, std::make_unique<ScanLruReplacement>(), &injector_scan);
  EXPECT_GT(fast.stats.reliability.frame_failures, 0u);
  ExpectStatsEqual(fast.stats, scan.stats);
  ExpectReliabilityEqual(fast.stats.reliability, scan.stats.reliability);
  ASSERT_EQ(fast.victims, scan.victims);
  EXPECT_EQ(fast.end_time, scan.end_time);
}

TEST(FaultParityTest, SameSeedSameTraceSameReliabilityStats) {
  const auto refs = MixedPageTrace(3, 15000, 256);
  FaultInjectorConfig config;
  config.seed = 424242;
  config.rates.transient_transfer = 0.01;
  config.rates.permanent_slot = 0.002;
  config.rates.frame_failure = 0.0005;
  Replay a, b;
  {
    FaultInjector injector(config);
    a = ReplayTrace(refs, 64, std::make_unique<LruReplacement>(), &injector);
  }
  {
    FaultInjector injector(config);
    b = ReplayTrace(refs, 64, std::make_unique<LruReplacement>(), &injector);
  }
  ExpectStatsEqual(a.stats, b.stats);
  ExpectReliabilityEqual(a.stats.reliability, b.stats.reliability);
  ASSERT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_FALSE(a.stats.reliability.Quiet());  // the rates are high enough to fire
}

// --- scripted recovery paths -------------------------------------------------

constexpr WordCount kPage = 64;
constexpr std::size_t kFrames = 3;

// Bundles a pager with the stores it points at, so several rigs can coexist
// in one test without dangling pointers.
struct PagerRig {
  std::unique_ptr<BackingStore> backing;
  std::unique_ptr<TransferChannel> channel;
  std::unique_ptr<AdviceRegistry> advice;
  std::unique_ptr<Pager> pager;
};

PagerRig MakeRig(FaultInjector* injector, bool with_advice = false) {
  PagerRig rig;
  rig.backing = std::make_unique<BackingStore>(
      MakeDrumLevel("drum", 1u << 16, /*word_time=*/2, /*rotational_delay=*/100));
  rig.channel = std::make_unique<TransferChannel>();
  if (with_advice) {
    rig.advice = std::make_unique<AdviceRegistry>();
  }
  PagerConfig config;
  config.page_words = kPage;
  config.frames = kFrames;
  rig.pager = std::make_unique<Pager>(config, rig.backing.get(), rig.channel.get(),
                                      std::make_unique<LruReplacement>(),
                                      std::make_unique<DemandFetch>(), rig.advice.get(),
                                      injector);
  return rig;
}

TEST(ResilientPagerTest, TransientErrorRetriesWithFreshLatencyCharge) {
  ScriptedInjector clean;
  PagerRig reference = MakeRig(&clean);
  const Cycles clean_wait =
      reference.pager->Access(PageId{0}, AccessKind::kRead, 0)->wait_cycles;

  ScriptedInjector faulty;
  faulty.ScriptTransfer(TransferFaultKind::kTransient);  // fetch attempt 1 fails
  PagerRig rig = MakeRig(&faulty);                       // attempt 2 is clean
  const auto outcome = rig.pager->Access(PageId{0}, AccessKind::kRead, 0);
  ASSERT_TRUE(outcome.has_value());
  // The retry re-ran the whole transfer: rotational latency + words, twice.
  EXPECT_EQ(outcome->wait_cycles, 2 * clean_wait);
  const ReliabilityStats& rel = rig.pager->stats().reliability;
  EXPECT_EQ(rel.transient_errors, 1u);
  EXPECT_EQ(rel.retries, 1u);
  EXPECT_EQ(rel.retry_cycles, clean_wait);
  EXPECT_EQ(rel.failed_accesses, 0u);
  EXPECT_TRUE(rig.pager->IsResident(PageId{0}));
}

TEST(ResilientPagerTest, RetryExhaustionReturnsTransferFailed) {
  FaultInjectorConfig config;
  config.max_retries = 2;
  config.rates.transient_transfer = 1.0;
  FaultInjector injector(config);
  PagerRig rig = MakeRig(&injector);
  const auto outcome = rig.pager->Access(PageId{0}, AccessKind::kRead, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, PageAccessErrorKind::kTransferFailed);
  EXPECT_GT(outcome.error().wait_cycles, 0u);  // the failed attempts cost time
  const ReliabilityStats& rel = rig.pager->stats().reliability;
  EXPECT_EQ(rel.transient_errors, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(rel.retries, 2u);
  EXPECT_EQ(rel.failed_accesses, 1u);
  EXPECT_FALSE(rig.pager->IsResident(PageId{0}));
  // The frame went back to the free pool; the pager runs on at capacity.
  EXPECT_EQ(rig.pager->frames().free_count(), kFrames);
}

TEST(ResilientPagerTest, PermanentWriteFailureRelocatesAndRoundTrips) {
  ScriptedInjector injector;
  PagerRig rig = MakeRig(&injector);
  Pager& pager = *rig.pager;
  Cycles now = 0;
  now += pager.Access(PageId{0}, AccessKind::kWrite, now)->wait_cycles + 1;  // dirty
  for (std::uint64_t p = 1; p < kFrames; ++p) {
    now += pager.Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  // The next fault evicts dirty page 0.  Script its write-back: the first
  // store's write-check finds a bad sector, the retry relocates to a spare.
  injector.ScriptTransfer(TransferFaultKind::kPermanentSlot);  // write-back try 1
  injector.ScriptTransfer(TransferFaultKind::kNone);           // write-back try 2
  now += pager.Access(PageId{3}, AccessKind::kRead, now)->wait_cycles + 1;

  const ReliabilityStats& rel = pager.stats().reliability;
  EXPECT_EQ(rel.slot_failures, 1u);
  EXPECT_EQ(rel.relocations, 1u);
  EXPECT_EQ(rel.lost_pages, 0u);
  EXPECT_TRUE(rig.backing->IsBad(0));  // page 0's identity slot is retired
  EXPECT_EQ(rig.backing->bad_slot_count(), 1u);

  // Fetching page 0 back must read the spare slot, not the bad one.
  const auto again = pager.Access(PageId{0}, AccessKind::kRead, now);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->faulted);
  EXPECT_TRUE(pager.IsResident(PageId{0}));
  EXPECT_EQ(rel.failed_accesses, 0u);
}

TEST(ResilientPagerTest, PermanentReadFailureLosesOnlyCopy) {
  ScriptedInjector injector;
  PagerRig rig = MakeRig(&injector);
  Pager& pager = *rig.pager;
  Cycles now = 0;
  now += pager.Access(PageId{0}, AccessKind::kWrite, now)->wait_cycles + 1;  // dirty
  for (std::uint64_t p = 1; p <= kFrames; ++p) {  // evicts page 0, writes it back
    now += pager.Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  ASSERT_TRUE(rig.backing->Contains(0));

  // The drum copy is the page's only copy; reading it hits a bad sector.
  injector.ScriptTransfer(TransferFaultKind::kPermanentSlot);
  const auto outcome = pager.Access(PageId{0}, AccessKind::kRead, now);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, PageAccessErrorKind::kSlotUnreadable);
  const ReliabilityStats& rel = pager.stats().reliability;
  EXPECT_EQ(rel.lost_pages, 1u);
  EXPECT_EQ(rel.slot_failures, 1u);
  EXPECT_EQ(rel.failed_accesses, 1u);

  // The page is gone but the pager is not: re-touching it zero-fills.
  const auto retry = pager.Access(PageId{0}, AccessKind::kRead, now + 1000000);
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(pager.IsResident(PageId{0}));
}

TEST(ResilientPagerTest, FrameFailureRetiresAndPagerKeepsRunning) {
  ScriptedInjector clean;
  PagerRig reference = MakeRig(&clean);
  const Cycles clean_wait =
      reference.pager->Access(PageId{0}, AccessKind::kRead, 0)->wait_cycles;

  ScriptedInjector injector;
  injector.ScriptFrameFailure(true);  // the first landing takes a parity hit
  PagerRig rig = MakeRig(&injector);
  Pager& pager = *rig.pager;
  const auto outcome = pager.Access(PageId{0}, AccessKind::kRead, 0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(pager.IsResident(PageId{0}));

  const ReliabilityStats& rel = pager.stats().reliability;
  EXPECT_EQ(rel.frame_failures, 1u);
  EXPECT_EQ(rel.retired_frames, 1u);
  EXPECT_EQ(rel.residual_frames, kFrames - 1);
  EXPECT_EQ(pager.frames().usable_frame_count(), kFrames - 1);
  // The failed landing's transfer ran before the parity hit: its time is
  // charged on top of the good landing's.
  EXPECT_EQ(outcome->wait_cycles, 2 * clean_wait);

  // The pager keeps serving with the shrunken frame pool.
  Cycles now = outcome->wait_cycles + 1;
  for (std::uint64_t p = 1; p < 4; ++p) {
    const auto next = pager.Access(PageId{p}, AccessKind::kRead, now);
    ASSERT_TRUE(next.has_value());
    now += next->wait_cycles + 1;
  }
  EXPECT_EQ(pager.frames().usable_frame_count(), kFrames - 1);
}

TEST(ResilientPagerTest, RetireFramePublicApi) {
  ScriptedInjector injector;
  PagerRig rig = MakeRig(&injector);
  Pager& pager = *rig.pager;
  Cycles now = 0;
  now += pager.Access(PageId{0}, AccessKind::kWrite, now)->wait_cycles + 1;
  const FrameId frame = *pager.FrameOf(PageId{0});

  // Retiring an occupied frame evicts (and writes back) first.
  EXPECT_TRUE(pager.RetireFrame(frame, now));
  EXPECT_FALSE(pager.IsResident(PageId{0}));
  EXPECT_EQ(pager.stats().writebacks, 1u);
  EXPECT_EQ(pager.frames().usable_frame_count(), kFrames - 1);
  EXPECT_EQ(pager.stats().reliability.retired_frames, 1u);

  // Already retired, out of range: refused.
  EXPECT_FALSE(pager.RetireFrame(frame, now));
  EXPECT_FALSE(pager.RetireFrame(FrameId{kFrames + 7}, now));

  // The last usable frame can never be retired.
  std::size_t retired = 0;
  for (std::size_t f = 0; f < kFrames; ++f) {
    if (pager.RetireFrame(FrameId{f}, now)) {
      ++retired;
    }
  }
  EXPECT_EQ(retired, 1u);
  EXPECT_EQ(pager.frames().usable_frame_count(), 1u);
  const auto outcome = pager.Access(PageId{9}, AccessKind::kRead, now);
  ASSERT_TRUE(outcome.has_value());  // one frame still pages
}

TEST(ResilientPagerTest, AllFramesPinnedReturnsNoUsableFrames) {
  PagerRig rig = MakeRig(nullptr, /*with_advice=*/true);
  Pager& pager = *rig.pager;
  Cycles now = 0;
  for (std::uint64_t p = 0; p < kFrames; ++p) {
    now += pager.Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
    pager.AdviseKeepResident(PageId{p});
  }
  const auto outcome = pager.Access(PageId{9}, AccessKind::kRead, now);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, PageAccessErrorKind::kNoUsableFrames);
  EXPECT_EQ(pager.stats().reliability.failed_accesses, 1u);
}

// --- hierarchy pager ---------------------------------------------------------

HierarchyPagerConfig SmallHierarchy() {
  HierarchyPagerConfig config;
  config.page_words = 64;
  config.frames = 3;
  config.drum_pages = 2;
  return config;
}

struct HierarchyReplay {
  HierarchyPagerStats stats;
  Cycles end_time{0};
};

HierarchyReplay ReplayHierarchy(const std::vector<PageId>& refs, FaultInjector* injector) {
  HierarchyPager pager(SmallHierarchy(), std::make_unique<LruReplacement>(), injector);
  Cycles now = 0;
  for (const PageId page : refs) {
    const auto outcome = pager.Access(page, AccessKind::kRead, now);
    now += 1 + (outcome.has_value() ? *outcome : outcome.error().wait_cycles);
  }
  return HierarchyReplay{pager.stats(), now};
}

TEST(HierarchyFaultTest, ZeroRateInjectorMatchesNoInjector) {
  const auto refs = MixedPageTrace(8, 5000, 32);
  FaultInjector zero_rate{FaultInjectorConfig{}};
  const HierarchyReplay without = ReplayHierarchy(refs, nullptr);
  const HierarchyReplay with = ReplayHierarchy(refs, &zero_rate);
  EXPECT_EQ(without.stats.accesses, with.stats.accesses);
  EXPECT_EQ(without.stats.faults, with.stats.faults);
  EXPECT_EQ(without.stats.drum_hits, with.stats.drum_hits);
  EXPECT_EQ(without.stats.disk_hits, with.stats.disk_hits);
  EXPECT_EQ(without.stats.zero_fills, with.stats.zero_fills);
  EXPECT_EQ(without.stats.demotions, with.stats.demotions);
  EXPECT_EQ(without.stats.writebacks, with.stats.writebacks);
  EXPECT_EQ(without.stats.wait_cycles, with.stats.wait_cycles);
  EXPECT_EQ(without.end_time, with.end_time);
  EXPECT_TRUE(with.stats.reliability.Quiet());
}

TEST(HierarchyFaultTest, TransientDrumFetchRetries) {
  // Reference run: fill three frames, spill page 0 to the drum, re-fault it.
  ScriptedInjector clean;
  HierarchyPager reference(SmallHierarchy(), std::make_unique<LruReplacement>(), &clean);
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 4; ++p) {  // p=3 evicts page 0 to the drum
    now += *reference.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  const Cycles clean_wait = *reference.Access(PageId{0}, AccessKind::kRead, now + 500000);
  ASSERT_GT(clean_wait, 0u);

  ScriptedInjector faulty;
  HierarchyPager pager(SmallHierarchy(), std::make_unique<LruReplacement>(), &faulty);
  now = 0;
  for (std::uint64_t p = 0; p < 4; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  // Re-faulting page 0 first evicts the LRU frame to the drum (one clean
  // store draw), then fetches page 0 — whose first attempt glitches.
  faulty.ScriptTransfer(TransferFaultKind::kNone);       // eviction's drum store
  faulty.ScriptTransfer(TransferFaultKind::kTransient);  // drum fetch attempt 1
  const auto outcome = pager.Access(PageId{0}, AccessKind::kRead, now + 500000);
  ASSERT_TRUE(outcome.has_value());
  const ReliabilityStats& rel = pager.stats().reliability;
  EXPECT_EQ(rel.transient_errors, 1u);
  EXPECT_EQ(rel.retries, 1u);
  // The retry's full transfer time is exactly the extra stall over the
  // clean run.
  EXPECT_GT(*outcome, clean_wait);
  EXPECT_EQ(rel.retry_cycles, *outcome - clean_wait);
  EXPECT_EQ(pager.stats().drum_hits, reference.stats().drum_hits);
  EXPECT_TRUE(pager.IsResident(PageId{0}));
}

TEST(HierarchyFaultTest, PermanentDrumStoreFailureRelocates) {
  ScriptedInjector injector;
  HierarchyPager pager(SmallHierarchy(), std::make_unique<LruReplacement>(), &injector);
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 3; ++p) {
    now += *pager.Access(PageId{p}, AccessKind::kRead, now) + 1;
  }
  // Page 3 evicts page 0 to the drum; the first landing's write-check finds
  // a bad sector and the retry relocates within the drum.
  injector.ScriptTransfer(TransferFaultKind::kPermanentSlot);  // drum store try 1
  injector.ScriptTransfer(TransferFaultKind::kNone);           // drum store try 2
  now += *pager.Access(PageId{3}, AccessKind::kRead, now) + 1;
  const ReliabilityStats& rel = pager.stats().reliability;
  EXPECT_EQ(rel.slot_failures, 1u);
  EXPECT_EQ(rel.relocations, 1u);
  EXPECT_EQ(rel.lost_pages, 0u);

  // Page 0 still fetches back fine — from its spare drum slot.
  const auto again = pager.Access(PageId{0}, AccessKind::kRead, now + 500000);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(pager.stats().drum_hits, 1u);
  EXPECT_EQ(rel.failed_accesses, 0u);
  EXPECT_TRUE(pager.IsResident(PageId{0}));
}

}  // namespace
}  // namespace dsa
