// Golden parity tests: the O(1)/O(log n) hot-path engines must be
// behaviourally indistinguishable from the naive scan implementations they
// replaced.
//
//   * LRU / FIFO: the intrusive-list policies (replacement_simple.h) against
//     the full-scan references (replacement_naive.h), both at the policy
//     level over randomized frame-table histories and at the pager level
//     over randomized reference traces — identical victim sequences and
//     fault counts.
//   * Best fit / worst fit: the size-indexed FreeList queries against a
//     literal scan of the address-ordered hole map, over randomized
//     allocate/free histories.
//   * Stack distances: the Fenwick-tree engine against the explicit
//     LRU-stack walk.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/alloc/free_list.h"
#include "src/core/rng.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_naive.h"
#include "src/paging/replacement_simple.h"
#include "src/paging/stack_distance.h"

namespace dsa {
namespace {

// --- policy-level parity ----------------------------------------------------

// Drives a random load/touch/evict/pin history (strictly increasing clock,
// as the pager guarantees) and checks that every victim decision agrees
// with the scan reference.
template <typename Optimized, typename Naive>
void PolicyParityOnRandomHistory(std::uint64_t seed) {
  constexpr std::size_t kFrames = 48;
  FrameTable table(kFrames);
  Optimized optimized;
  Naive naive;
  Rng rng(seed);
  Cycles now = 1;
  std::uint64_t next_page = 0;

  for (int step = 0; step < 4000; ++step) {
    now += 1 + rng.Below(3);
    const std::uint64_t op = rng.Below(100);
    if (op < 45) {  // load into a free frame if any
      if (auto frame = table.TakeFreeFrame()) {
        table.Load(*frame, PageId{next_page++}, now);
      }
    } else if (op < 80) {  // touch a random occupied frame
      const FrameId frame{rng.Below(kFrames)};
      if (table.info(frame).occupied) {
        table.Touch(frame, now, rng.Below(2) == 0, /*idle_threshold=*/64);
      }
    } else if (op < 90) {  // evict a random candidate
      const FrameId frame{rng.Below(kFrames)};
      if (table.info(frame).occupied && !table.info(frame).pinned) {
        table.Evict(frame);
      }
    } else if (op < 95) {  // pin
      const FrameId frame{rng.Below(kFrames)};
      if (table.info(frame).occupied) {
        table.Pin(frame);
      }
    } else {  // unpin
      const FrameId frame{rng.Below(kFrames)};
      if (table.info(frame).occupied) {
        table.Unpin(frame);
      }
    }

    if (table.HasEvictionCandidates()) {
      ASSERT_EQ(optimized.ChooseVictim(&table, now), naive.ChooseVictim(&table, now))
          << "divergence at step " << step << " (seed " << seed << ")";
    }
    ASSERT_EQ(table.HasEvictionCandidates(), !table.EvictionCandidates().empty());
  }
}

TEST(ReplacementParityTest, LruMatchesScanOnRandomHistories) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    PolicyParityOnRandomHistory<LruReplacement, ScanLruReplacement>(seed);
  }
}

TEST(ReplacementParityTest, FifoMatchesScanOnRandomHistories) {
  for (std::uint64_t seed : {55u, 66u, 77u, 88u}) {
    PolicyParityOnRandomHistory<FifoReplacement, ScanFifoReplacement>(seed);
  }
}

// --- pager-level parity -----------------------------------------------------

// Records every victim a wrapped policy chooses.
class RecordingPolicy : public ReplacementPolicy {
 public:
  RecordingPolicy(std::unique_ptr<ReplacementPolicy> inner, std::vector<FrameId>* victims)
      : inner_(std::move(inner)), victims_(victims) {}

  void OnLoad(FrameId frame, PageId page, Cycles now) override {
    inner_->OnLoad(frame, page, now);
  }
  void OnAccess(FrameId frame, PageId page, Cycles now, bool write) override {
    inner_->OnAccess(frame, page, now, write);
  }
  void OnEvict(FrameId frame, PageId page) override { inner_->OnEvict(frame, page); }
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override {
    const FrameId victim = inner_->ChooseVictim(frames, now);
    victims_->push_back(victim);
    return victim;
  }
  std::vector<FrameId> FramesToRelease(FrameTable* frames, Cycles now) override {
    return inner_->FramesToRelease(frames, now);
  }
  ReplacementStrategyKind kind() const override { return inner_->kind(); }

 private:
  std::unique_ptr<ReplacementPolicy> inner_;
  std::vector<FrameId>* victims_;
};

struct PagerReplay {
  std::uint64_t faults{0};
  std::vector<FrameId> victims;
};

PagerReplay ReplayTrace(const std::vector<PageId>& refs, std::size_t frames,
                        std::unique_ptr<ReplacementPolicy> policy) {
  PagerReplay replay;
  BackingStore backing(MakeDrumLevel("drum", 1u << 20, /*word_time=*/2,
                                     /*rotational_delay=*/100));
  PagerConfig config;
  config.page_words = 16;
  config.frames = frames;
  Pager pager(config, &backing, nullptr,
              std::make_unique<RecordingPolicy>(std::move(policy), &replay.victims),
              std::make_unique<DemandFetch>(), nullptr);
  Cycles now = 0;
  for (const PageId page : refs) {
    const auto outcome = pager.Access(page, AccessKind::kRead, now);
    now += 1 + outcome->wait_cycles;
  }
  replay.faults = pager.stats().faults;
  return replay;
}

std::vector<PageId> RandomPageTrace(std::uint64_t seed, std::size_t length,
                                    std::uint64_t pages) {
  Rng rng(seed);
  std::vector<PageId> refs;
  refs.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    // Mix a hot region with uniform spray so hits and faults interleave.
    if (rng.Below(100) < 60) {
      refs.push_back(PageId{rng.Below(pages / 8)});
    } else {
      refs.push_back(PageId{rng.Below(pages)});
    }
  }
  return refs;
}

TEST(ReplacementParityTest, PagerLruIdenticalFaultsAndVictims) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const auto refs = RandomPageTrace(seed, 20000, 256);
    const PagerReplay fast = ReplayTrace(refs, 64, std::make_unique<LruReplacement>());
    const PagerReplay slow = ReplayTrace(refs, 64, std::make_unique<ScanLruReplacement>());
    EXPECT_EQ(fast.faults, slow.faults) << "seed " << seed;
    ASSERT_EQ(fast.victims, slow.victims) << "seed " << seed;
  }
}

TEST(ReplacementParityTest, PagerFifoIdenticalFaultsAndVictims) {
  for (std::uint64_t seed : {404u, 505u, 606u}) {
    const auto refs = RandomPageTrace(seed, 20000, 256);
    const PagerReplay fast = ReplayTrace(refs, 64, std::make_unique<FifoReplacement>());
    const PagerReplay slow = ReplayTrace(refs, 64, std::make_unique<ScanFifoReplacement>());
    EXPECT_EQ(fast.faults, slow.faults) << "seed " << seed;
    ASSERT_EQ(fast.victims, slow.victims) << "seed " << seed;
  }
}

// --- placement parity -------------------------------------------------------

// The original full-scan best fit: smallest sufficient hole, lowest address
// among equals, in address order.
std::optional<PhysicalAddress> NaiveBestFit(const FreeList& holes, WordCount size) {
  std::optional<PhysicalAddress> best;
  WordCount best_size = 0;
  for (const auto& [start, hole_size] : holes) {
    if (hole_size < size) {
      continue;
    }
    if (!best.has_value() || hole_size < best_size) {
      best = PhysicalAddress{start};
      best_size = hole_size;
    }
  }
  return best;
}

// The original full-scan worst fit: largest sufficient hole, lowest address
// among equals.
std::optional<PhysicalAddress> NaiveWorstFit(const FreeList& holes, WordCount size) {
  std::optional<PhysicalAddress> worst;
  WordCount worst_size = 0;
  for (const auto& [start, hole_size] : holes) {
    if (hole_size >= size && hole_size > worst_size) {
      worst = PhysicalAddress{start};
      worst_size = hole_size;
    }
  }
  return worst;
}

void PlacementParityOnRandomHistory(std::uint64_t seed) {
  constexpr WordCount kCapacity = 1 << 16;
  FreeList holes(kCapacity);
  std::map<std::uint64_t, WordCount> live;  // allocated start -> size
  Rng rng(seed);

  for (int step = 0; step < 3000; ++step) {
    const WordCount request = 1 + rng.Below(700);

    // Every probe agrees with the scans before any mutation.
    ASSERT_EQ(holes.SmallestHoleAtLeast(request), NaiveBestFit(holes, request))
        << "best-fit divergence at step " << step << " (seed " << seed << ")";
    ASSERT_EQ(holes.LargestHoleAtLeast(request), NaiveWorstFit(holes, request))
        << "worst-fit divergence at step " << step << " (seed " << seed << ")";
    WordCount largest = 0;
    for (const auto& [start, hole_size] : holes) {
      largest = std::max(largest, hole_size);
    }
    ASSERT_EQ(holes.largest_hole(), largest);

    if (rng.Below(100) < 60 || live.empty()) {  // allocate best-fit
      if (const auto addr = holes.SmallestHoleAtLeast(request)) {
        holes.TakeRange(*addr, request);
        live.emplace(addr->value, request);
      }
    } else {  // free a random live block
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      holes.Insert(Block{PhysicalAddress{it->first}, it->second});
      live.erase(it);
    }
  }
}

TEST(PlacementParityTest, IndexedFitsMatchScansOnRandomHistories) {
  for (std::uint64_t seed : {7u, 17u, 27u, 37u}) {
    PlacementParityOnRandomHistory(seed);
  }
}

// --- stack-distance parity --------------------------------------------------

// The original explicit-stack implementation: O(n * distinct), exact by
// construction.
StackDistanceProfile NaiveStackDistances(const std::vector<PageId>& refs) {
  StackDistanceProfile profile;
  profile.total_references = refs.size();
  std::list<std::uint64_t> stack;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> where;
  for (const PageId page : refs) {
    auto it = where.find(page.value);
    if (it == where.end()) {
      ++profile.cold_references;
    } else {
      std::size_t depth = 1;
      for (auto walk = stack.begin(); walk != it->second; ++walk) {
        ++depth;
      }
      if (profile.distance_counts.size() < depth) {
        profile.distance_counts.resize(depth, 0);
      }
      ++profile.distance_counts[depth - 1];
      stack.erase(it->second);
    }
    stack.push_front(page.value);
    where[page.value] = stack.begin();
  }
  return profile;
}

TEST(StackDistanceParityTest, FenwickMatchesExplicitStack) {
  for (std::uint64_t seed : {3u, 13u, 23u}) {
    const auto refs = RandomPageTrace(seed, 30000, 512);
    const StackDistanceProfile fast = ComputeStackDistances(refs);
    const StackDistanceProfile slow = NaiveStackDistances(refs);
    EXPECT_EQ(fast.cold_references, slow.cold_references) << "seed " << seed;
    EXPECT_EQ(fast.total_references, slow.total_references) << "seed " << seed;
    ASSERT_EQ(fast.distance_counts, slow.distance_counts) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dsa
