// Tests for segment protection and the sharing directory.

#include <gtest/gtest.h>

#include "src/seg/protection.h"
#include "src/seg/segment_manager.h"

namespace dsa {
namespace {

TEST(SegmentProtectionTest, PermitsFollowFlags) {
  EXPECT_TRUE(FullAccessProtection().Permits(AccessKind::kWrite));
  EXPECT_FALSE(ReadOnlyProtection().Permits(AccessKind::kWrite));
  EXPECT_FALSE(ReadOnlyProtection().Permits(AccessKind::kExecute));
  EXPECT_TRUE(PureProcedureProtection().Permits(AccessKind::kExecute));
  EXPECT_FALSE(PureProcedureProtection().Permits(AccessKind::kWrite));
}

TEST(SegmentProtectionTest, DescribeRendersRwx) {
  EXPECT_EQ(Describe(FullAccessProtection()), "rwx");
  EXPECT_EQ(Describe(ReadOnlyProtection()), "r--");
  EXPECT_EQ(Describe(PureProcedureProtection()), "r-x");
  EXPECT_EQ(Describe(SegmentProtection{false, false, false}), "---");
}

TEST(SharingDirectoryTest, GrantAndQuery) {
  SharingDirectory directory;
  directory.Grant(JobId{1}, SegmentId{7}, PureProcedureProtection());
  EXPECT_TRUE(directory.HasAccess(JobId{1}, SegmentId{7}));
  EXPECT_FALSE(directory.HasAccess(JobId{2}, SegmentId{7}));
  EXPECT_TRUE(directory.RightsOf(JobId{1}, SegmentId{7}).execute);
  EXPECT_FALSE(directory.RightsOf(JobId{2}, SegmentId{7}).read);
}

TEST(SharingDirectoryTest, SharedSegmentCarriesDifferentRights) {
  // The pure-procedure convention: the owner writes, everyone else executes.
  SharingDirectory directory;
  directory.Grant(JobId{0}, SegmentId{3}, FullAccessProtection());
  directory.Grant(JobId{1}, SegmentId{3}, PureProcedureProtection());
  directory.Grant(JobId{2}, SegmentId{3}, PureProcedureProtection());
  EXPECT_EQ(directory.SharerCount(SegmentId{3}), 3u);
  EXPECT_TRUE(directory.RightsOf(JobId{0}, SegmentId{3}).write);
  EXPECT_FALSE(directory.RightsOf(JobId{1}, SegmentId{3}).write);
}

TEST(SharingDirectoryTest, RevokeDropsSharer) {
  SharingDirectory directory;
  directory.Grant(JobId{1}, SegmentId{3}, FullAccessProtection());
  directory.Grant(JobId{2}, SegmentId{3}, ReadOnlyProtection());
  directory.Revoke(JobId{1}, SegmentId{3});
  EXPECT_EQ(directory.SharerCount(SegmentId{3}), 1u);
  EXPECT_FALSE(directory.HasAccess(JobId{1}, SegmentId{3}));
  directory.Revoke(JobId{2}, SegmentId{3});
  EXPECT_EQ(directory.SharerCount(SegmentId{3}), 0u);
}

TEST(SharingDirectoryTest, RegrantDoesNotDoubleCount) {
  SharingDirectory directory;
  directory.Grant(JobId{1}, SegmentId{3}, ReadOnlyProtection());
  directory.Grant(JobId{1}, SegmentId{3}, FullAccessProtection());
  EXPECT_EQ(directory.SharerCount(SegmentId{3}), 1u);
  EXPECT_TRUE(directory.RightsOf(JobId{1}, SegmentId{3}).write);
}

class ProtectedSegmentManagerTest : public ::testing::Test {
 protected:
  ProtectedSegmentManagerTest()
      : backing_(MakeDrumLevel("drum", 1u << 18, 2, 100)) {
    SegmentManagerConfig config;
    config.core_words = 4096;
    config.max_segment_extent = 1024;
    manager_ = std::make_unique<SegmentManager>(config, &backing_, nullptr);
  }

  BackingStore backing_;
  std::unique_ptr<SegmentManager> manager_;
};

TEST_F(ProtectedSegmentManagerTest, WriteToReadOnlySegmentTraps) {
  const SegmentId seg = manager_->Create(128);
  manager_->SetProtection(seg, ReadOnlyProtection());
  const auto read = manager_->Access(seg, 0, AccessKind::kRead, 0);
  EXPECT_TRUE(read.has_value());
  const auto write = manager_->Access(seg, 0, AccessKind::kWrite, 1);
  ASSERT_FALSE(write.has_value());
  EXPECT_EQ(write.error().kind, FaultKind::kProtectionViolation);
}

TEST_F(ProtectedSegmentManagerTest, ForbiddenAccessDoesNotFetch) {
  const SegmentId seg = manager_->Create(128);
  manager_->SetProtection(seg, ReadOnlyProtection());
  const auto write = manager_->Access(seg, 0, AccessKind::kWrite, 0);
  ASSERT_FALSE(write.has_value());
  EXPECT_FALSE(manager_->IsResident(seg)) << "a trapped access must not load the segment";
  EXPECT_EQ(manager_->stats().segment_faults, 0u);
}

TEST_F(ProtectedSegmentManagerTest, ExecuteOnlyConvention) {
  const SegmentId proc = manager_->Create(256);
  manager_->SetProtection(proc, PureProcedureProtection());
  EXPECT_TRUE(manager_->Access(proc, 0, AccessKind::kExecute, 0).has_value());
  EXPECT_TRUE(manager_->Access(proc, 0, AccessKind::kRead, 1).has_value());
  const auto write = manager_->Access(proc, 0, AccessKind::kWrite, 2);
  ASSERT_FALSE(write.has_value());
  EXPECT_EQ(write.error().kind, FaultKind::kProtectionViolation);
}

TEST_F(ProtectedSegmentManagerTest, DefaultIsFullAccess) {
  const SegmentId seg = manager_->Create(64);
  EXPECT_EQ(manager_->ProtectionOf(seg), FullAccessProtection());
  EXPECT_TRUE(manager_->Access(seg, 0, AccessKind::kWrite, 0).has_value());
}

TEST_F(ProtectedSegmentManagerTest, BoundsCheckedBeforeProtection) {
  const SegmentId seg = manager_->Create(64);
  manager_->SetProtection(seg, ReadOnlyProtection());
  const auto outcome = manager_->Access(seg, 64, AccessKind::kWrite, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, FaultKind::kBoundsViolation);
}

}  // namespace
}  // namespace dsa
