// Unit tests for the placement strategies over crafted hole configurations.

#include <gtest/gtest.h>

#include "src/alloc/placement.h"

namespace dsa {
namespace {

// Builds holes [0,10), [100,130), [200,220) — sizes 10, 30, 20.
FreeList ThreeHoles() {
  FreeList list;
  list.Insert(Block{PhysicalAddress{0}, 10});
  list.Insert(Block{PhysicalAddress{100}, 30});
  list.Insert(Block{PhysicalAddress{200}, 20});
  return list;
}

TEST(FirstFitTest, TakesLowestFittingHole) {
  FreeList holes = ThreeHoles();
  FirstFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{0});
  EXPECT_EQ(policy.Choose(holes, 15), PhysicalAddress{100});
  EXPECT_EQ(policy.Choose(holes, 25), PhysicalAddress{100});
}

TEST(FirstFitTest, FailsWhenNothingFits) {
  FreeList holes = ThreeHoles();
  FirstFitPlacement policy;
  EXPECT_FALSE(policy.Choose(holes, 31).has_value());
}

TEST(FirstFitTest, CountsSearchLength) {
  FreeList holes = ThreeHoles();
  FirstFitPlacement policy;
  policy.Choose(holes, 25);  // examines holes 1 and 2
  EXPECT_EQ(policy.holes_examined(), 2u);
  EXPECT_EQ(policy.choices(), 1u);
  EXPECT_DOUBLE_EQ(policy.MeanSearchLength(), 2.0);
}

TEST(BestFitTest, TakesSmallestSufficientHole) {
  FreeList holes = ThreeHoles();
  BestFitPlacement policy;
  // Request 15: candidates are the 30- and 20-word holes; best is 20.
  EXPECT_EQ(policy.Choose(holes, 15), PhysicalAddress{200});
  // Request 5: the 10-word hole wins.
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{0});
}

TEST(BestFitTest, ExactFitFoundInOneProbe) {
  FreeList holes = ThreeHoles();
  BestFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{0});
  EXPECT_EQ(policy.holes_examined(), 1u);
}

TEST(BestFitTest, IndexedSearchIsOneProbeRegardlessOfHoleCount) {
  // Best fit resolves through the free list's size index: one probe per
  // request, never a scan over every hole.
  FreeList holes = ThreeHoles();
  BestFitPlacement policy;
  policy.Choose(holes, 15);
  EXPECT_EQ(policy.holes_examined(), 1u);
}

TEST(WorstFitTest, TakesLargestHole) {
  FreeList holes = ThreeHoles();
  WorstFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{100});
}

TEST(WorstFitTest, FailsWhenNothingFits) {
  FreeList holes = ThreeHoles();
  WorstFitPlacement policy;
  EXPECT_FALSE(policy.Choose(holes, 100).has_value());
}

TEST(NextFitTest, AdvancesPastPreviousAllocation) {
  FreeList holes = ThreeHoles();
  NextFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{0});
  // The rover is now past address 5; next search starts from the 30-word hole.
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{0});  // hole 0 still has room at [0,10)
}

TEST(NextFitTest, WrapsAroundToTheBeginning) {
  FreeList holes;
  holes.Insert(Block{PhysicalAddress{0}, 20});
  holes.Insert(Block{PhysicalAddress{100}, 10});
  NextFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{0});   // rover -> 10
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{0});   // [0,20) still fits from rover? no:
  // after first choice rover=10; hole [0,20) ends past rover so it is scanned
  // and fits.  A larger request must come from the wrap.
}

TEST(NextFitTest, UsesLaterHoleBeforeWrapping) {
  FreeList holes;
  holes.Insert(Block{PhysicalAddress{0}, 10});
  holes.Insert(Block{PhysicalAddress{100}, 10});
  NextFitPlacement policy;
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{0});    // rover -> 10
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{100});  // skips the consumed low hole
}

TEST(TwoEndedTest, LargeRequestsFromBottom) {
  FreeList holes = ThreeHoles();
  TwoEndedPlacement policy(/*large_threshold=*/15);
  EXPECT_EQ(policy.Choose(holes, 20), PhysicalAddress{100});  // first fit from bottom
}

TEST(TwoEndedTest, SmallRequestsCarvedFromTopOfHighestHole) {
  FreeList holes = ThreeHoles();
  TwoEndedPlacement policy(/*large_threshold=*/15);
  // Small request: top of hole [200,220) => address 220-5 = 215.
  EXPECT_EQ(policy.Choose(holes, 5), PhysicalAddress{215});
}

TEST(TwoEndedTest, SmallRequestFallsBackWhenHighHolesTooSmall) {
  FreeList holes;
  holes.Insert(Block{PhysicalAddress{0}, 100});
  holes.Insert(Block{PhysicalAddress{200}, 4});
  TwoEndedPlacement policy(/*large_threshold=*/50);
  EXPECT_EQ(policy.Choose(holes, 8), PhysicalAddress{92});  // top of the low hole
}

TEST(TwoEndedTest, ThresholdBoundaryIsLarge) {
  FreeList holes = ThreeHoles();
  TwoEndedPlacement policy(/*large_threshold=*/10);
  EXPECT_EQ(policy.Choose(holes, 10), PhysicalAddress{0});  // >= threshold: bottom
}

TEST(PlacementFactoryTest, BuildsEveryPolicyKind) {
  for (PlacementStrategyKind kind :
       {PlacementStrategyKind::kFirstFit, PlacementStrategyKind::kNextFit,
        PlacementStrategyKind::kBestFit, PlacementStrategyKind::kWorstFit,
        PlacementStrategyKind::kTwoEnded}) {
    const auto policy = MakePlacementPolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
  }
}

TEST(PlacementFactoryDeathTest, RejectsWholeAllocatorKinds) {
  EXPECT_DEATH(MakePlacementPolicy(PlacementStrategyKind::kBuddy), "whole-allocator");
}

TEST(PlacementPolicyTest, EmptyFreeListAlwaysFails) {
  FreeList holes;
  FirstFitPlacement first;
  BestFitPlacement best;
  WorstFitPlacement worst;
  NextFitPlacement next;
  TwoEndedPlacement two(16);
  EXPECT_FALSE(first.Choose(holes, 1).has_value());
  EXPECT_FALSE(best.Choose(holes, 1).has_value());
  EXPECT_FALSE(worst.Choose(holes, 1).has_value());
  EXPECT_FALSE(next.Choose(holes, 1).has_value());
  EXPECT_FALSE(two.Choose(holes, 1).has_value());
}

}  // namespace
}  // namespace dsa
