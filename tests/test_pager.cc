// Unit tests for the pager: fault handling, eviction, write-back, advice,
// prefetch, and the ATLAS vacant-frame discipline.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/paging/pager.h"
#include "src/paging/replacement_simple.h"

namespace dsa {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  static constexpr WordCount kPage = 64;
  static constexpr std::size_t kFrames = 3;

  std::unique_ptr<Pager> MakePager(PagerConfig config,
                                   std::unique_ptr<FetchPolicy> fetch = nullptr,
                                   bool with_advice = false) {
    backing_ = std::make_unique<BackingStore>(
        MakeDrumLevel("drum", 1u << 16, /*word_time=*/2, /*rotational_delay=*/100));
    channel_ = std::make_unique<TransferChannel>();
    advice_ = with_advice ? std::make_unique<AdviceRegistry>() : nullptr;
    if (fetch == nullptr) {
      fetch = std::make_unique<DemandFetch>();
    }
    return std::make_unique<Pager>(config, backing_.get(), channel_.get(),
                                   std::make_unique<LruReplacement>(), std::move(fetch),
                                   advice_.get());
  }

  PagerConfig DefaultConfig() const {
    PagerConfig config;
    config.page_words = kPage;
    config.frames = kFrames;
    return config;
  }

  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<AdviceRegistry> advice_;
};

TEST_F(PagerTest, FirstTouchFaultsSecondHits) {
  auto pager = MakePager(DefaultConfig());
  const auto first = pager->Access(PageId{1}, AccessKind::kRead, 0);
  EXPECT_TRUE(first->faulted);
  EXPECT_GT(first->wait_cycles, 0u);
  const auto second = pager->Access(PageId{1}, AccessKind::kRead, first->wait_cycles + 1);
  EXPECT_FALSE(second->faulted);
  EXPECT_EQ(second->wait_cycles, 0u);
  EXPECT_EQ(pager->stats().accesses, 2u);
  EXPECT_EQ(pager->stats().faults, 1u);
}

TEST_F(PagerTest, WaitMatchesDrumTiming) {
  auto pager = MakePager(DefaultConfig());
  const auto outcome = pager->Access(PageId{0}, AccessKind::kRead, 0);
  EXPECT_EQ(outcome->wait_cycles, 100u + 2 * kPage);  // rotation + words
}

TEST_F(PagerTest, EvictionHappensWhenFramesExhausted) {
  auto pager = MakePager(DefaultConfig());
  Cycles now = 0;
  for (std::uint64_t p = 0; p < kFrames; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  EXPECT_EQ(pager->frames().free_count(), 0u);
  // Page 3 evicts the LRU page 0.
  now += pager->Access(PageId{3}, AccessKind::kRead, now)->wait_cycles + 1;
  EXPECT_FALSE(pager->IsResident(PageId{0}));
  EXPECT_TRUE(pager->IsResident(PageId{3}));
  EXPECT_EQ(pager->stats().evictions, 1u);
}

TEST_F(PagerTest, DirtyEvictionWritesBack) {
  auto pager = MakePager(DefaultConfig());
  Cycles now = 0;
  now += pager->Access(PageId{0}, AccessKind::kWrite, now)->wait_cycles + 1;
  for (std::uint64_t p = 1; p <= kFrames; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  EXPECT_EQ(pager->stats().writebacks, 1u);
  EXPECT_TRUE(backing_->Contains(0));  // page 0's dirty copy reached the drum
}

TEST_F(PagerTest, CleanEvictionSkipsWriteBack) {
  auto pager = MakePager(DefaultConfig());
  Cycles now = 0;
  for (std::uint64_t p = 0; p <= kFrames; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  EXPECT_EQ(pager->stats().writebacks, 0u);
}

TEST_F(PagerTest, KeepOneFrameVacantRestoresReserve) {
  PagerConfig config = DefaultConfig();
  config.keep_one_frame_vacant = true;
  auto pager = MakePager(config);
  Cycles now = 0;
  for (std::uint64_t p = 0; p < 5; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
    EXPECT_GE(pager->frames().free_count(), 1u)
        << "vacant frame not maintained after page " << p;
  }
}

TEST_F(PagerTest, PrefetchFillsOnlyFreeFrames) {
  PagerConfig config = DefaultConfig();
  auto pager = MakePager(config, std::make_unique<PrefetchFetch>(8, 1u << 20));
  const auto outcome = pager->Access(PageId{0}, AccessKind::kRead, 0);
  EXPECT_TRUE(outcome->faulted);
  // 3 frames: the demanded page plus at most 2 prefetched neighbours.
  EXPECT_EQ(outcome->extra_fetches, kFrames - 1);
  EXPECT_TRUE(pager->IsResident(PageId{1}));
  EXPECT_TRUE(pager->IsResident(PageId{2}));
  EXPECT_FALSE(pager->IsResident(PageId{3}));
  EXPECT_EQ(pager->stats().extra_fetches, kFrames - 1);
}

TEST_F(PagerTest, PrefetchNeverEvicts) {
  auto pager = MakePager(DefaultConfig(), std::make_unique<PrefetchFetch>(8, 1u << 20));
  Cycles now = 0;
  now += pager->Access(PageId{0}, AccessKind::kRead, now)->wait_cycles + 1;  // fills 0,1,2
  const std::uint64_t evictions_before = pager->stats().evictions;
  now += pager->Access(PageId{10}, AccessKind::kRead, now)->wait_cycles + 1;
  // The demand eviction is allowed; prefetch found no free frame and stopped.
  EXPECT_EQ(pager->stats().evictions, evictions_before + 1);
  EXPECT_FALSE(pager->IsResident(PageId{11}));
}

TEST_F(PagerTest, PageValidatorFiltersSpeculation) {
  auto pager = MakePager(DefaultConfig(), std::make_unique<PrefetchFetch>(8, 1u << 20));
  pager->SetPageValidator([](PageId page) { return page.value != 1; });
  pager->Access(PageId{0}, AccessKind::kRead, 0);
  EXPECT_FALSE(pager->IsResident(PageId{1}));
  EXPECT_TRUE(pager->IsResident(PageId{2}));
}

TEST_F(PagerTest, WontNeedAdviceReleasesAtNextFault) {
  auto pager = MakePager(DefaultConfig(), nullptr, /*with_advice=*/true);
  Cycles now = 0;
  for (std::uint64_t p = 0; p < kFrames; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  pager->AdviseWontNeed(PageId{1});
  now += pager->Access(PageId{9}, AccessKind::kRead, now)->wait_cycles + 1;
  EXPECT_FALSE(pager->IsResident(PageId{1}));
  EXPECT_EQ(pager->stats().advised_releases, 1u);
  // The advised release supplied the frame: no policy eviction was needed.
  EXPECT_TRUE(pager->IsResident(PageId{0}));
  EXPECT_TRUE(pager->IsResident(PageId{2}));
}

TEST_F(PagerTest, AccessSupersedesWontNeed) {
  auto pager = MakePager(DefaultConfig(), nullptr, /*with_advice=*/true);
  Cycles now = 0;
  now += pager->Access(PageId{1}, AccessKind::kRead, now)->wait_cycles + 1;
  pager->AdviseWontNeed(PageId{1});
  now += pager->Access(PageId{1}, AccessKind::kRead, now)->wait_cycles + 1;  // re-touch
  now += pager->Access(PageId{2}, AccessKind::kRead, now)->wait_cycles + 1;
  EXPECT_TRUE(pager->IsResident(PageId{1})) << "advice outlived a contradicting access";
}

TEST_F(PagerTest, KeepResidentPinsAgainstReplacement) {
  auto pager = MakePager(DefaultConfig(), nullptr, /*with_advice=*/true);
  Cycles now = 0;
  now += pager->Access(PageId{0}, AccessKind::kRead, now)->wait_cycles + 1;
  pager->AdviseKeepResident(PageId{0});
  for (std::uint64_t p = 1; p < 10; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  EXPECT_TRUE(pager->IsResident(PageId{0}));
}

TEST_F(PagerTest, ReleaseEvictsImmediately) {
  auto pager = MakePager(DefaultConfig());
  Cycles now = 0;
  now += pager->Access(PageId{0}, AccessKind::kWrite, now)->wait_cycles + 1;
  pager->Release(PageId{0}, now);
  EXPECT_FALSE(pager->IsResident(PageId{0}));
  EXPECT_EQ(pager->stats().writebacks, 1u);  // dirty release still writes back
}

TEST_F(PagerTest, ResidentWordsTracksOccupancy) {
  auto pager = MakePager(DefaultConfig());
  EXPECT_EQ(pager->ResidentWords(), 0u);
  Cycles now = 0;
  now += pager->Access(PageId{0}, AccessKind::kRead, now)->wait_cycles + 1;
  EXPECT_EQ(pager->ResidentWords(), kPage);
  now += pager->Access(PageId{1}, AccessKind::kRead, now)->wait_cycles + 1;
  EXPECT_EQ(pager->ResidentWords(), 2 * kPage);
}

TEST_F(PagerTest, ChannelQueueingLengthensWaits) {
  auto pager = MakePager(DefaultConfig());
  // Two faults issued at the same instant: the second transfer queues.
  const auto first = pager->Access(PageId{0}, AccessKind::kRead, 0);
  const auto second = pager->Access(PageId{1}, AccessKind::kRead, 0);
  EXPECT_GT(second->wait_cycles, first->wait_cycles);
}

TEST_F(PagerTest, FrameOfReportsMapping) {
  auto pager = MakePager(DefaultConfig());
  EXPECT_FALSE(pager->FrameOf(PageId{3}).has_value());
  pager->Access(PageId{3}, AccessKind::kRead, 0);
  ASSERT_TRUE(pager->FrameOf(PageId{3}).has_value());
}

TEST_F(PagerTest, ResidencyCallbacksFire) {
  auto pager = MakePager(DefaultConfig());
  std::vector<std::pair<std::uint64_t, bool>> events;  // (page, loaded)
  pager->SetResidencyCallbacks(
      [&events](PageId page, FrameId) { events.emplace_back(page.value, true); },
      [&events](PageId page, FrameId) { events.emplace_back(page.value, false); });
  Cycles now = 0;
  for (std::uint64_t p = 0; p <= kFrames; ++p) {
    now += pager->Access(PageId{p}, AccessKind::kRead, now)->wait_cycles + 1;
  }
  ASSERT_EQ(events.size(), kFrames + 2);  // 4 loads + 1 evict
  EXPECT_EQ(events.back().second, true);
  EXPECT_EQ(events[kFrames], (std::pair<std::uint64_t, bool>{0, false}));
}

}  // namespace
}  // namespace dsa
