// Unit tests for the observability layer: the ring-buffered EventTracer,
// the JSONL/CSV exporters and parser, the TraceReplayVerifier's violation
// classes, and the MetricsRegistry.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"

namespace dsa {
namespace {

// ---------------------------------------------------------------- tracer --

TEST(EventTracerTest, StampsEventsWithWatermarkClock) {
  EventTracer tracer(/*capacity=*/0);
  tracer.AdvanceClock(10);
  tracer.Emit(EventKind::kPageFault, 1);
  tracer.AdvanceClock(5);  // backwards: ignored
  tracer.Emit(EventKind::kPageFault, 2);
  tracer.AdvanceClock(20);
  tracer.Emit(EventKind::kPageFault, 3);

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 10u);
  EXPECT_EQ(events[1].time, 10u);  // watermark held, not rewound
  EXPECT_EQ(events[2].time, 20u);
  EXPECT_EQ(tracer.now(), 20u);
}

TEST(EventTracerTest, RingOverwritesOldestAndCountsDrops) {
  EventTracer tracer(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(EventKind::kPageFault, i);
  }
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.size(), 4u);

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: pages 6,7,8,9 survived.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(EventTracerTest, UnboundedCapacityRetainsEverything) {
  EventTracer tracer(/*capacity=*/0);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    tracer.Emit(EventKind::kAlloc, i, 1);
  }
  EXPECT_EQ(tracer.emitted(), 100000u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.Snapshot().size(), 100000u);
}

TEST(EventTracerTest, DisabledTracerEmitsNothing) {
  EventTracer tracer(/*capacity=*/0);
  tracer.set_enabled(false);
  DSA_TRACE_EMIT(&tracer, EventKind::kPageFault, 1);
  EXPECT_EQ(tracer.emitted(), 0u);
  tracer.set_enabled(true);
  DSA_TRACE_EMIT(&tracer, EventKind::kPageFault, 1);
  // With -DDSA_TRACE=0 every emission site (including the one above)
  // compiles out; with tracing built in, the enabled check must hold.
  EXPECT_EQ(tracer.emitted(), DSA_TRACE ? 1u : 0u);
}

TEST(EventTracerTest, EmitMacroToleratesNullTracer) {
  EventTracer* tracer = nullptr;
  DSA_TRACE_EMIT(tracer, EventKind::kPageFault, 1);  // must not crash
  DSA_TRACE_CLOCK(tracer, 99);
}

TEST(EventTracerTest, SinkSeesEveryEventEvenWhenRingDrops) {
  EventTracer tracer(/*capacity=*/2);
  std::vector<TraceEvent> sunk;
  tracer.SetSink([&](const TraceEvent& event) { sunk.push_back(event); });
  for (std::uint64_t i = 0; i < 8; ++i) {
    tracer.Emit(EventKind::kFree, i);
  }
  EXPECT_EQ(sunk.size(), 8u);
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(EventTracerTest, ClearForgetsEventsButKeepsClockWatermark) {
  EventTracer tracer(/*capacity=*/4);
  tracer.AdvanceClock(123);
  tracer.Emit(EventKind::kPageFault, 1);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.now(), 123u);  // clock is not part of the ring
  tracer.Emit(EventKind::kPageFault, 2);
  EXPECT_EQ(tracer.Snapshot()[0].time, 123u);
}

// -------------------------------------------------------------- exporters --

TEST(EventExportTest, JsonlUsesPerKindFieldNames) {
  TraceEvent fault{4, EventKind::kPageFault, 9, 0, 0};
  EXPECT_EQ(EventToJson(fault), R"({"t": 4, "kind": "page-fault", "page": 9})");

  TraceEvent start{4, EventKind::kTransferStart, 9, 0, 1};
  EXPECT_EQ(EventToJson(start),
            R"({"t": 4, "kind": "transfer-start", "page": 9, "level": 0, "dir": 1})");

  TraceEvent sched{7, EventKind::kScheduleSwitch, kNoJob, 2, 0};
  EXPECT_EQ(EventToJson(sched),
            R"({"t": 7, "kind": "schedule-switch", "from": 18446744073709551615, "to": 2})");
}

TEST(EventExportTest, JsonlRoundTripsThroughParser) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kPageFault, 3, 0, 0});
  events.push_back({2, EventKind::kTransferStart, 3, 0, 0});
  events.push_back({9, EventKind::kTransferComplete, 3, 0, 700});
  events.push_back({9, EventKind::kFrameLoad, 3, 1, 0});
  events.push_back({12, EventKind::kAlloc, 4096, 128, 0});
  events.push_back({15, EventKind::kCompaction, 7, 2048, 0});
  events.push_back({20, EventKind::kFaultRecovery, 3,
                    static_cast<std::uint64_t>(RecoveryAction::kRetry), 0});

  const std::string jsonl = EventsToJsonl(events);
  const auto parsed = ParseEventsJsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value(), events);
  // And the re-export is byte-identical: parse/export form a bijection.
  EXPECT_EQ(EventsToJsonl(parsed.value()), jsonl);
}

TEST(EventExportTest, ParserSkipsBlankLinesAndReportsBadOnes) {
  const auto ok = ParseEventsJsonl("\n{\"t\": 1, \"kind\": \"page-fault\", \"page\": 2}\n\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value().size(), 1u);

  const auto bad_kind = ParseEventsJsonl(R"({"t": 1, "kind": "not-a-kind", "page": 2})");
  ASSERT_FALSE(bad_kind.has_value());
  EXPECT_EQ(bad_kind.error().line, 1u);

  const auto garbage = ParseEventsJsonl(
      "{\"t\": 1, \"kind\": \"page-fault\", \"page\": 2}\nnot json\n");
  ASSERT_FALSE(garbage.has_value());
  EXPECT_EQ(garbage.error().line, 2u);
}

TEST(EventExportTest, CsvHasFixedHeaderAndPositionalSlots) {
  std::vector<TraceEvent> events;
  events.push_back({5, EventKind::kVictimChosen, 11, 3, 0});
  std::ostringstream out;
  WriteEventsCsv(events, &out);
  EXPECT_EQ(out.str(), "t,kind,a,b,c\n5,victim-chosen,11,3,0\n");
}

TEST(EventExportTest, EveryKindHasAStableWireName) {
  for (int k = 0; k <= static_cast<int>(EventKind::kDeferredCoalesce); ++k) {
    const EventKind kind = static_cast<EventKind>(k);
    EventKind back;
    ASSERT_TRUE(EventKindFromString(ToString(kind), &back)) << ToString(kind);
    EXPECT_EQ(back, kind);
  }
  EventKind out;
  EXPECT_FALSE(EventKindFromString("bogus", &out));
}

// --------------------------------------------------------------- verifier --

std::vector<TraceViolation> Verify(const std::vector<TraceEvent>& events,
                                   std::optional<std::size_t> frame_count = std::nullopt) {
  TraceVerifierConfig config;
  config.frame_count = frame_count;
  return TraceReplayVerifier(config).Verify(events);
}

bool HasViolation(const std::vector<TraceViolation>& violations, const std::string& needle) {
  for (const TraceViolation& v : violations) {
    if (v.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(TraceVerifierTest, AcceptsLawfulStream) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kPageFault, 7, 0, 0});
  events.push_back({1, EventKind::kTransferStart, 7, 0, 0});
  events.push_back({1, EventKind::kTransferComplete, 7, 0, 700});
  events.push_back({1, EventKind::kFrameLoad, 7, 0, 0});
  events.push_back({2, EventKind::kVictimChosen, 7, 0, 0});
  events.push_back({2, EventKind::kFrameEvict, 7, 0, 0});
  events.push_back({3, EventKind::kFrameRetire, 0, 0, 0});
  EXPECT_TRUE(Verify(events, 1).empty());
}

TEST(TraceVerifierTest, CatchesBackwardsClock) {
  std::vector<TraceEvent> events;
  events.push_back({10, EventKind::kPageFault, 1, 0, 0});
  events.push_back({9, EventKind::kPageFault, 2, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "clock moved backwards"));
}

TEST(TraceVerifierTest, CatchesDoubleOpenTransfer) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kTransferStart, 7, 0, 0});
  events.push_back({2, EventKind::kTransferStart, 7, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "already in flight"));
}

TEST(TraceVerifierTest, CatchesCompleteWithoutStart) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kTransferComplete, 7, 0, 100});
  EXPECT_TRUE(HasViolation(Verify(events), "without a matching start"));
}

TEST(TraceVerifierTest, CatchesDanglingTransferAtEndOfStream) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kTransferStart, 7, 1, 1});
  EXPECT_TRUE(HasViolation(Verify(events), "still open at end of stream"));
}

TEST(TraceVerifierTest, TransferKeysDistinguishPageAndLevel) {
  // Same page on two levels, same level on two pages: all four must pair
  // independently.
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kTransferStart, 7, 0, 0});
  events.push_back({1, EventKind::kTransferStart, 7, 1, 0});
  events.push_back({1, EventKind::kTransferStart, 8, 0, 0});
  events.push_back({2, EventKind::kTransferComplete, 7, 0, 10});
  events.push_back({2, EventKind::kTransferComplete, 7, 1, 10});
  events.push_back({2, EventKind::kTransferComplete, 8, 0, 10});
  EXPECT_TRUE(Verify(events).empty());
}

TEST(TraceVerifierTest, CatchesTrafficOnRetiredFrame) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameRetire, 3, 0, 0});
  events.push_back({2, EventKind::kFrameLoad, 9, 3, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "retired frame"));
}

TEST(TraceVerifierTest, CatchesDoubleRetire) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameRetire, 3, 0, 0});
  events.push_back({2, EventKind::kFrameRetire, 3, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "retired twice"));
}

TEST(TraceVerifierTest, CatchesLoadIntoOccupiedFrame) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, 7, 0, 0});
  events.push_back({2, EventKind::kFrameLoad, 8, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "occupied frame"));
}

TEST(TraceVerifierTest, CatchesEvictionOfVacantFrameAndWrongPage) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameEvict, 7, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "vacant frame"));

  events.clear();
  events.push_back({1, EventKind::kFrameLoad, 7, 0, 0});
  events.push_back({2, EventKind::kFrameEvict, 8, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "not resident"));
}

TEST(TraceVerifierTest, CatchesVictimFromWrongFrame) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, 7, 0, 0});
  events.push_back({2, EventKind::kVictimChosen, 9, 0, 0});
  EXPECT_TRUE(HasViolation(Verify(events), "victim chosen"));
}

TEST(TraceVerifierTest, CatchesFrameCountOverflow) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, 7, 0, 0});
  events.push_back({1, EventKind::kFrameLoad, 8, 1, 0});
  events.push_back({1, EventKind::kFrameLoad, 9, 2, 0});
  EXPECT_TRUE(HasViolation(Verify(events, 2), "exceed the frame count"));
  EXPECT_TRUE(Verify(events, 3).empty());  // same stream, enough frames
}

// The load-control rule: between kJobDeactivate and kJobReactivate a job
// owns no frames.  Page ids carry the owning job above `page_job_shift`.
std::vector<TraceViolation> VerifyJobs(const std::vector<TraceEvent>& events) {
  TraceVerifierConfig config;
  config.page_job_shift = 8;  // job = page >> 8 in these tests
  return TraceReplayVerifier(config).Verify(events);
}

TEST(TraceVerifierTest, AcceptsLawfulDeactivationCycle) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, /*page=*/(2u << 8) | 5, 0, 0});
  events.push_back({2, EventKind::kFrameEvict, (2u << 8) | 5, 0, 0});
  events.push_back({2, EventKind::kJobDeactivate, 2, 1, 0});
  events.push_back({3, EventKind::kJobReactivate, 2, 0, 0});
  events.push_back({4, EventKind::kFrameLoad, (2u << 8) | 5, 0, 0});
  EXPECT_TRUE(VerifyJobs(events).empty());
}

TEST(TraceVerifierTest, CatchesLoadForDeactivatedJob) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kJobDeactivate, 2, 0, 0});
  events.push_back({2, EventKind::kFrameLoad, (2u << 8) | 5, 0, 0});
  EXPECT_TRUE(HasViolation(VerifyJobs(events), "deactivated job"));
  // Another job's pages remain loadable.
  events.back().a = (3u << 8) | 5;
  EXPECT_TRUE(VerifyJobs(events).empty());
}

TEST(TraceVerifierTest, CatchesDeactivationWithFramesStillHeld) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, (2u << 8) | 5, 0, 0});
  events.push_back({2, EventKind::kJobDeactivate, 2, 0, 0});
  EXPECT_TRUE(HasViolation(VerifyJobs(events), "still holds a frame"));
}

TEST(TraceVerifierTest, CatchesUnbalancedDeactivation) {
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kJobDeactivate, 2, 0, 0});
  events.push_back({2, EventKind::kJobDeactivate, 2, 0, 0});
  EXPECT_TRUE(HasViolation(VerifyJobs(events), "deactivated twice"));

  events.clear();
  events.push_back({1, EventKind::kJobReactivate, 2, 0, 0});
  EXPECT_TRUE(HasViolation(VerifyJobs(events), "was not deactivated"));
}

TEST(TraceVerifierTest, JobRuleInertWithoutShift) {
  // Without page_job_shift the verifier cannot attribute pages to jobs, so
  // only the pairing of deactivate/reactivate is checked.
  std::vector<TraceEvent> events;
  events.push_back({1, EventKind::kFrameLoad, (2u << 8) | 5, 0, 0});
  events.push_back({2, EventKind::kJobDeactivate, 2, 0, 0});
  events.push_back({3, EventKind::kFrameLoad, (2u << 8) | 6, 1, 0});
  EXPECT_TRUE(Verify(events).empty());
}

TEST(TraceVerifierTest, ViolationCountIsBounded) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back({1, EventKind::kTransferComplete, static_cast<std::uint64_t>(i), 0, 0});
  }
  TraceVerifierConfig config;
  config.max_violations = 16;
  EXPECT_EQ(TraceReplayVerifier(config).Verify(events).size(), 16u);
}

// ---------------------------------------------------------------- metrics --

TEST(MetricsRegistryTest, CountersAndGaugesRegisterOnFirstUse) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.Has("x/count"));
  registry.GetCounter("x/count")->Increment(3);
  registry.GetGauge("x/rate")->Set(0.5);
  EXPECT_TRUE(registry.Has("x/count"));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.CounterValue("x/count"), 3u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("x/rate"), 0.5);
}

TEST(MetricsRegistryTest, AbsentMetricsReadAsZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("never"), 0.0);
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossGrowth) {
  MetricsRegistry registry;
  MetricCounter* first = registry.GetCounter("first");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  first->Increment(7);
  EXPECT_EQ(registry.CounterValue("first"), 7u);
  EXPECT_EQ(registry.GetCounter("first"), first);  // same slot on re-lookup
}

TEST(MetricsRegistryTest, EntriesPreserveRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b");
  registry.GetGauge("a");
  registry.GetCounter("c");
  const auto entries = registry.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "b");
  EXPECT_EQ(entries[1].name, "a");
  EXPECT_EQ(entries[2].name, "c");
}

}  // namespace
}  // namespace dsa
