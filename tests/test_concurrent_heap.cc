// Property tests on the lock-free fixed-size allocator family
// (src/exec/concurrent_heap.h): exactly-once allocation under threads
// hammering acquire/release, ABA regression with a scripted interleaving,
// arena refill/drain invariants, and block conservation against the
// sequential model.
//
// The *Stress* suites additionally run 10x with rotating seeds under the
// thread-sanitizer CI job (ctest -L stress drives --gtest_repeat=10; a
// process-global repeat counter folds into each repeat's seed, and
// DSA_STRESS_SEED reseeds the whole family for reproduction).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/core/rng.h"
#include "src/exec/concurrent_heap.h"
#include "src/exec/lane_binder.h"
#include "src/exec/thread_pool.h"

namespace dsa {
namespace {

// Stress thread count: DSA_JOBS when set (the TSan job exports 4), with a
// floor of 4 so narrow hosts still interleave enough to be interesting.
unsigned StressThreads() { return std::max(4u, JobsFromEnv(HardwareJobs())); }

// Per-repeat seed base: --gtest_repeat reruns in-process, so the counter
// advances every repetition and each pass hammers a different schedule.
std::uint64_t NextStressSeed() {
  static std::uint64_t repeat = 0;
  std::uint64_t base = 0x5eedULL;
  if (const char* env = std::getenv("DSA_STRESS_SEED")) {
    base = std::strtoull(env, nullptr, 10);
  }
  return base + 0x9e3779b97f4a7c15ULL * ++repeat;
}

// --- ConcurrentBlockPool basics ---------------------------------------------

TEST(ConcurrentBlockPoolTest, GrowAcquireReleaseRoundTrip) {
  ConcurrentBlockPool pool(/*block_words=*/64);
  EXPECT_EQ(pool.capacity(), 0u);
  std::uint32_t index = ConcurrentBlockPool::kNull;
  EXPECT_FALSE(pool.TryAcquire(&index));

  pool.GrowSerial(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.FreeCountApprox(), 4u);

  std::vector<std::uint32_t> taken;
  while (pool.TryAcquire(&index)) {
    taken.push_back(index);
  }
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_EQ(pool.FreeCountApprox(), 0u);
  // Every block granted exactly once.
  std::vector<bool> seen(4, false);
  for (std::uint32_t i : taken) {
    ASSERT_LT(i, 4u);
    EXPECT_FALSE(seen[i]) << "block " << i << " granted twice";
    seen[i] = true;
  }

  for (std::uint32_t i : taken) {
    pool.Release(i);
  }
  EXPECT_EQ(pool.FreeCountApprox(), 4u);
  const ConcurrentBlockPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 4u);
  EXPECT_EQ(stats.releases, 4u);
}

TEST(ConcurrentBlockPoolTest, LifoOrderWhenSerial) {
  ConcurrentBlockPool pool(8);
  pool.GrowSerial(3);
  std::uint32_t a = 0;
  ASSERT_TRUE(pool.TryAcquire(&a));
  pool.Release(a);
  std::uint32_t b = 0;
  ASSERT_TRUE(pool.TryAcquire(&b));
  EXPECT_EQ(a, b) << "a serial pop after a push must see the pushed block";
}

TEST(ConcurrentBlockPoolTest, GrowExtendsWithoutDisturbingHeldBlocks) {
  ConcurrentBlockPool pool(8);
  pool.GrowSerial(2);
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  ASSERT_TRUE(pool.TryAcquire(&a));
  ASSERT_TRUE(pool.TryAcquire(&b));
  pool.GrowSerial(2);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.FreeCountApprox(), 2u);
  pool.Release(a);
  pool.Release(b);
  // All four distinct blocks now acquirable.
  std::vector<bool> seen(4, false);
  std::uint32_t index = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.TryAcquire(&index));
    ASSERT_LT(index, 4u);
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
  EXPECT_FALSE(pool.TryAcquire(&index));
}

// --- ABA regression ---------------------------------------------------------

TEST(ConcurrentBlockPoolTest, AbaInterleavingFailsStaleCas) {
  // The classic hazard, scripted: thread T reads head (top = A, next = B).
  // Before T's CAS lands, another thread pops A, pops B, and pushes A back —
  // the head *index* is A again, so an unversioned CAS would succeed and
  // install B as top even though B is checked out (lost-block corruption).
  ConcurrentBlockPool pool(16);
  pool.GrowSerial(3);

  const std::uint64_t stale_head = pool.TestOnlyHead();
  const std::uint32_t top_a = ConcurrentBlockPool::HeadIndex(stale_head);

  std::uint32_t a = 0;
  std::uint32_t b = 0;
  ASSERT_TRUE(pool.TryAcquire(&a));
  ASSERT_TRUE(pool.TryAcquire(&b));
  ASSERT_EQ(a, top_a);
  pool.Release(a);

  // Same top index, different version.
  const std::uint64_t now_head = pool.TestOnlyHead();
  ASSERT_EQ(ConcurrentBlockPool::HeadIndex(now_head), top_a);
  ASSERT_NE(ConcurrentBlockPool::HeadVersion(now_head),
            ConcurrentBlockPool::HeadVersion(stale_head));

  // T's CAS from the stale read must fail.
  const std::uint64_t stale_desired = ConcurrentBlockPool::PackHead(
      ConcurrentBlockPool::HeadVersion(stale_head) + 1, b);
  EXPECT_FALSE(pool.TestOnlyCasHead(stale_head, stale_desired))
      << "versioned head let a stale CAS through: ABA protection is broken";

  // The stack survived: exactly A and the untouched third block remain.
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  ASSERT_TRUE(pool.TryAcquire(&x));
  ASSERT_TRUE(pool.TryAcquire(&y));
  EXPECT_EQ(x, a);
  std::uint32_t none = 0;
  EXPECT_FALSE(pool.TryAcquire(&none));
  EXPECT_NE(y, b) << "B leaked back onto the stack while checked out";
}

TEST(ConcurrentBlockPoolTest, VersionAdvancesOnEverySuccessfulCas) {
  ConcurrentBlockPool pool(16);
  pool.GrowSerial(1);
  std::uint32_t last_version = ConcurrentBlockPool::HeadVersion(pool.TestOnlyHead());
  for (int i = 0; i < 8; ++i) {
    std::uint32_t index = 0;
    ASSERT_TRUE(pool.TryAcquire(&index));
    const std::uint32_t after_pop = ConcurrentBlockPool::HeadVersion(pool.TestOnlyHead());
    EXPECT_GT(after_pop, last_version);
    pool.Release(index);
    const std::uint32_t after_push = ConcurrentBlockPool::HeadVersion(pool.TestOnlyHead());
    EXPECT_GT(after_push, after_pop);
    last_version = after_push;
  }
}

// --- exactly-once under threads ---------------------------------------------

TEST(ConcurrentHeapStressTest, ExactlyOnceAllocationUnderThreads) {
  const unsigned threads = StressThreads();
  const std::uint64_t seed = NextStressSeed();
  constexpr std::size_t kBlocks = 64;
  constexpr int kIterations = 4000;

  ConcurrentBlockPool pool(32);
  pool.GrowSerial(kBlocks);

  // owners[i] counts concurrent holders of block i; any transition away
  // from {0,1} is a double grant or a phantom release.
  std::vector<std::atomic<int>> owners(kBlocks);
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(seed);
      Rng stream = rng.Fork(w);
      std::vector<std::uint32_t> held;
      for (int i = 0; i < kIterations; ++i) {
        const bool prefer_acquire = stream.Chance(0.55);
        if ((prefer_acquire || held.empty()) && held.size() < 8) {
          std::uint32_t index = 0;
          if (pool.TryAcquire(&index)) {
            if (owners[index].fetch_add(1) != 0) {
              corrupt = true;  // double grant
            }
            held.push_back(index);
          }
        } else if (!held.empty()) {
          const std::size_t pick =
              static_cast<std::size_t>(stream.Below(held.size()));
          const std::uint32_t index = held[pick];
          held[pick] = held.back();
          held.pop_back();
          if (owners[index].fetch_sub(1) != 1) {
            corrupt = true;
          }
          pool.Release(index);
        }
      }
      for (const std::uint32_t index : held) {
        if (owners[index].fetch_sub(1) != 1) {
          corrupt = true;
        }
        pool.Release(index);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }

  EXPECT_FALSE(corrupt.load()) << "a block was granted to two holders at once";
  // Conservation against the sequential model: every block came home.
  EXPECT_EQ(pool.FreeCountApprox(), kBlocks);
  const ConcurrentBlockPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, stats.releases);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(owners[i].load(), 0) << "block " << i << " still held after join";
  }
  // And the full population is still acquirable, each block exactly once.
  std::vector<bool> seen(kBlocks, false);
  std::uint32_t index = 0;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    ASSERT_TRUE(pool.TryAcquire(&index));
    ASSERT_LT(index, kBlocks);
    EXPECT_FALSE(seen[index]) << "block " << index << " duplicated in the free stack";
    seen[index] = true;
  }
  EXPECT_FALSE(pool.TryAcquire(&index));
}

TEST(ConcurrentHeapStressTest, ArenasConserveBlocksAcrossLanes) {
  const unsigned threads = StressThreads();
  const std::uint64_t seed = NextStressSeed();

  // Two size classes; word conservation is checked per class, so an arena
  // returning a block to the wrong class would trip the accounting.
  std::vector<HeapClassSpec> classes = {{64, 96}, {256, 32}};
  ConcurrentFixedHeap heap(classes);
  const std::size_t total_small = heap.pool(0).capacity();
  const std::size_t total_large = heap.pool(1).capacity();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(seed + 1);
      Rng stream = rng.Fork2(1, w);
      LaneArena arena(&heap, /*refill_batch=*/4, /*high_watermark=*/8);
      std::vector<BlockRef> held;
      for (int i = 0; i < 3000; ++i) {
        if ((stream.Chance(0.6) || held.empty()) && held.size() < 12) {
          const std::size_t words = stream.Chance(0.8) ? 64 : 256;
          BlockRef ref;
          if (arena.TryAllocate(words, &ref)) {
            held.push_back(ref);
          }
        } else if (!held.empty()) {
          const std::size_t pick =
              static_cast<std::size_t>(stream.Below(held.size()));
          arena.Free(held[pick]);
          held[pick] = held.back();
          held.pop_back();
        }
      }
      for (const BlockRef& ref : held) {
        arena.Free(ref);
      }
      arena.Drain();
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }

  EXPECT_EQ(heap.OutstandingApprox(), 0u);
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), total_small);
  EXPECT_EQ(heap.pool(1).FreeCountApprox(), total_large);
}

// --- heap escalation --------------------------------------------------------

TEST(ConcurrentFixedHeapTest, EscalatesToLargerClassWhenExactClassDry) {
  std::vector<HeapClassSpec> classes = {{64, 2}, {256, 2}};
  ConcurrentFixedHeap heap(classes);
  ASSERT_EQ(heap.class_count(), 2u);
  EXPECT_EQ(heap.ClassFor(1), 0u);
  EXPECT_EQ(heap.ClassFor(64), 0u);
  EXPECT_EQ(heap.ClassFor(65), 1u);
  EXPECT_EQ(heap.ClassFor(257), ConcurrentFixedHeap::kNoClass);

  BlockRef refs[4];
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(heap.TryAllocate(64, &refs[i]));
    EXPECT_EQ(refs[i].size_class, 0u);
  }
  ASSERT_TRUE(heap.TryAllocate(64, &refs[2]));
  EXPECT_EQ(refs[2].size_class, 1u) << "exhausted class must escalate";
  EXPECT_EQ(heap.stats().escalations, 1u);
  ASSERT_TRUE(heap.TryAllocate(200, &refs[3]));
  EXPECT_EQ(refs[3].size_class, 1u);
  BlockRef none;
  EXPECT_FALSE(heap.TryAllocate(64, &none)) << "both classes empty";
  EXPECT_FALSE(heap.TryAllocate(1u << 20, &none)) << "no class fits";
  for (BlockRef& ref : refs) {
    heap.Free(ref);
  }
  EXPECT_EQ(heap.OutstandingApprox(), 0u);
}

TEST(ConcurrentFixedHeapTest, DuplicateClassSpecsMergeAndSortAscending) {
  std::vector<HeapClassSpec> classes = {{256, 1}, {64, 2}, {256, 3}};
  ConcurrentFixedHeap heap(classes);
  ASSERT_EQ(heap.class_count(), 2u);
  EXPECT_EQ(heap.pool(0).block_words(), 64u);
  EXPECT_EQ(heap.pool(0).capacity(), 2u);
  EXPECT_EQ(heap.pool(1).block_words(), 256u);
  EXPECT_EQ(heap.pool(1).capacity(), 4u);
}

// --- arena refill/drain invariants ------------------------------------------

TEST(LaneArenaTest, RefillPullsOneBatchAndServesFromCache) {
  ConcurrentFixedHeap heap({{64, 32}});
  LaneArena arena(&heap, /*refill_batch=*/4, /*high_watermark=*/8);

  BlockRef ref;
  ASSERT_TRUE(arena.TryAllocate(64, &ref));
  // One burst of refill_batch blocks left the shared pool; one is held,
  // batch-1 are cached.
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 32u - 4u);
  EXPECT_EQ(arena.CachedCount(), 3u);
  EXPECT_EQ(arena.stats().refills, 1u);
  EXPECT_EQ(arena.stats().refill_blocks, 4u);

  // The next three allocations are pure cache hits: no shared-pool traffic.
  BlockRef more[3];
  for (BlockRef& m : more) {
    ASSERT_TRUE(arena.TryAllocate(64, &m));
  }
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 32u - 4u);
  EXPECT_EQ(arena.CachedCount(), 0u);
  EXPECT_EQ(arena.stats().cache_hits, 3u);
  EXPECT_EQ(arena.stats().refills, 1u);

  arena.Free(ref);
  for (BlockRef& m : more) {
    arena.Free(m);
  }
  arena.Drain();
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 32u);
}

TEST(LaneArenaTest, WatermarkDrainKeepsHalfAndReturnsRest) {
  ConcurrentFixedHeap heap({{64, 32}});
  LaneArena arena(&heap, /*refill_batch=*/2, /*high_watermark=*/6);

  // Hold 9 blocks, then free them all: the 7th free crosses the watermark.
  std::vector<BlockRef> held(9);
  for (BlockRef& ref : held) {
    ASSERT_TRUE(arena.TryAllocate(64, &ref));
  }
  for (BlockRef& ref : held) {
    arena.Free(ref);
  }
  // Crossing the watermark drains down to watermark/2 cached blocks.
  EXPECT_LE(arena.CachedCount(), 6u);
  EXPECT_GE(arena.stats().drains, 1u);

  arena.Drain();
  EXPECT_EQ(arena.CachedCount(), 0u);
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 32u);
  EXPECT_EQ(heap.OutstandingApprox(), 0u);
}

TEST(LaneArenaTest, ShortRefillStillServesWhenPoolNearlyDry) {
  ConcurrentFixedHeap heap({{64, 2}});
  LaneArena arena(&heap, /*refill_batch=*/8, /*high_watermark=*/16);
  BlockRef a;
  BlockRef b;
  ASSERT_TRUE(arena.TryAllocate(64, &a));  // burst comes back short (2 < 8)
  ASSERT_TRUE(arena.TryAllocate(64, &b));
  BlockRef none;
  EXPECT_FALSE(arena.TryAllocate(64, &none));
  arena.Free(a);
  arena.Free(b);
  arena.Drain();
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 2u);
}

// --- the frame binder -------------------------------------------------------

TEST(LaneFrameBinderTest, LedgerTracksOneBlockPerOccupiedFrame) {
  ConcurrentFixedHeap heap({{256, 8}});
  LaneFrameBinder binder(&heap, /*page_words=*/256);

  binder.AcquireFrameBlock(FrameId{0});
  binder.AcquireFrameBlock(FrameId{3});
  EXPECT_EQ(binder.held_count(), 2u);
  EXPECT_EQ(heap.OutstandingApprox(), 2u);

  binder.ReleaseFrameBlock(FrameId{0});
  EXPECT_EQ(binder.held_count(), 1u);

  binder.AcquireFrameBlock(FrameId{5});
  binder.ReleaseAllFrameBlocks();
  EXPECT_EQ(binder.held_count(), 0u);
  EXPECT_EQ(heap.OutstandingApprox(), 0u);
  EXPECT_EQ(binder.acquired_total(), 3u);
  EXPECT_EQ(binder.released_total(), 3u);
}

TEST(LaneFrameBinderTest, ArenaRoutingDrainsCleanly) {
  ConcurrentFixedHeap heap({{256, 64}});
  LaneArena arena(&heap, 4, 8);
  LaneFrameBinder binder(&heap, 256);
  binder.SetArena(&arena);
  for (std::size_t f = 0; f < 16; ++f) {
    binder.AcquireFrameBlock(FrameId{f});
  }
  for (std::size_t f = 0; f < 16; ++f) {
    binder.ReleaseFrameBlock(FrameId{f});
  }
  binder.SetArena(nullptr);
  arena.Drain();
  EXPECT_EQ(heap.OutstandingApprox(), 0u);
  EXPECT_EQ(heap.pool(0).FreeCountApprox(), 64u);
}

}  // namespace
}  // namespace dsa
