// Unit tests for src/trace: generators, allocation traces, and trace IO.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "src/trace/allocation.h"
#include "src/trace/reference.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"

namespace dsa {
namespace {

// --- ReferenceTrace helpers ----------------------------------------------------

TEST(ReferenceTraceTest, NameExtentIsMaxPlusOne) {
  ReferenceTrace trace;
  trace.refs = {{Name{3}, AccessKind::kRead}, {Name{10}, AccessKind::kWrite}};
  EXPECT_EQ(trace.NameExtent(), 11u);
}

TEST(ReferenceTraceTest, EmptyTraceHasZeroExtent) {
  ReferenceTrace trace;
  EXPECT_EQ(trace.NameExtent(), 0u);
  EXPECT_TRUE(trace.empty());
}

TEST(ReferenceTraceTest, PageStringDividesBySize) {
  ReferenceTrace trace;
  trace.refs = {{Name{0}, AccessKind::kRead},
                {Name{511}, AccessKind::kRead},
                {Name{512}, AccessKind::kRead},
                {Name{1024}, AccessKind::kRead}};
  const auto pages = trace.PageString(512);
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_EQ(pages[0], PageId{0});
  EXPECT_EQ(pages[1], PageId{0});
  EXPECT_EQ(pages[2], PageId{1});
  EXPECT_EQ(pages[3], PageId{2});
}

TEST(ReferenceTraceTest, DistinctPagesCountsUnique) {
  ReferenceTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.refs.push_back({Name{static_cast<std::uint64_t>(i % 20)}, AccessKind::kRead});
  }
  EXPECT_EQ(trace.DistinctPages(10), 2u);
  EXPECT_EQ(trace.DistinctPages(1), 20u);
}

// --- Generators -----------------------------------------------------------------

TEST(SyntheticTraceTest, SequentialWrapsAroundExtent) {
  SequentialTraceParams params;
  params.extent = 10;
  params.length = 25;
  const ReferenceTrace trace = MakeSequentialTrace(params);
  ASSERT_EQ(trace.size(), 25u);
  EXPECT_EQ(trace.refs[0].name, Name{0});
  EXPECT_EQ(trace.refs[9].name, Name{9});
  EXPECT_EQ(trace.refs[10].name, Name{0});
  EXPECT_EQ(trace.refs[24].name, Name{4});
}

TEST(SyntheticTraceTest, GeneratorsAreDeterministic) {
  RandomTraceParams params;
  params.length = 1000;
  const ReferenceTrace a = MakeRandomTrace(params);
  const ReferenceTrace b = MakeRandomTrace(params);
  EXPECT_EQ(a.refs, b.refs);
}

TEST(SyntheticTraceTest, RandomStaysInExtent) {
  RandomTraceParams params;
  params.extent = 100;
  params.length = 5000;
  const ReferenceTrace trace = MakeRandomTrace(params);
  for (const Reference& ref : trace.refs) {
    EXPECT_LT(ref.name.value, 100u);
  }
}

TEST(SyntheticTraceTest, WriteFractionRoughlyHolds) {
  RandomTraceParams params;
  params.length = 50000;
  params.write_fraction = 0.4;
  const ReferenceTrace trace = MakeRandomTrace(params);
  std::size_t writes = 0;
  for (const Reference& ref : trace.refs) {
    if (ref.kind == AccessKind::kWrite) {
      ++writes;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / trace.size(), 0.4, 0.02);
}

TEST(SyntheticTraceTest, LoopTraceRepeatsItsBody) {
  LoopTraceParams params;
  params.extent = 1 << 16;
  params.body_words = 100;
  params.advance_words = 50;
  params.iterations = 3;
  params.length = 600;
  const ReferenceTrace trace = MakeLoopTrace(params);
  // The first three sweeps cover the same 100 words.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(trace.refs[i].name, trace.refs[i + 100].name);
    EXPECT_EQ(trace.refs[i].name, trace.refs[i + 200].name);
  }
  // The fourth sweep starts 50 words later.
  EXPECT_EQ(trace.refs[300].name, Name{50});
}

TEST(SyntheticTraceTest, WorkingSetStaysWithinPhaseRegions) {
  WorkingSetTraceParams params;
  params.extent = 1 << 14;
  params.region_words = 128;
  params.regions_per_phase = 4;
  params.phases = 3;
  params.phase_length = 1000;
  const ReferenceTrace trace = MakeWorkingSetTrace(params);
  ASSERT_EQ(trace.size(), 3000u);
  // Each phase touches at most regions_per_phase distinct regions.
  for (std::size_t phase = 0; phase < 3; ++phase) {
    std::unordered_set<std::uint64_t> regions;
    for (std::size_t i = phase * 1000; i < (phase + 1) * 1000; ++i) {
      regions.insert(trace.refs[i].name.value / 128);
    }
    EXPECT_LE(regions.size(), 4u);
  }
}

TEST(SyntheticTraceTest, MatrixRowVsColumnMajorTouchSameCells) {
  MatrixTraceParams params;
  params.rows = 16;
  params.cols = 8;
  params.passes = 1;
  params.column_major = false;
  const ReferenceTrace row_major = MakeMatrixTrace(params);
  params.column_major = true;
  const ReferenceTrace col_major = MakeMatrixTrace(params);
  ASSERT_EQ(row_major.size(), col_major.size());
  std::unordered_set<std::uint64_t> a, b;
  for (const Reference& r : row_major.refs) {
    a.insert(r.name.value);
  }
  for (const Reference& r : col_major.refs) {
    b.insert(r.name.value);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 128u);
}

TEST(SyntheticTraceTest, MatrixColumnMajorStridesByCols) {
  MatrixTraceParams params;
  params.rows = 4;
  params.cols = 8;
  params.passes = 1;
  params.column_major = true;
  const ReferenceTrace trace = MakeMatrixTrace(params);
  EXPECT_EQ(trace.refs[0].name, Name{0});
  EXPECT_EQ(trace.refs[1].name, Name{8});
  EXPECT_EQ(trace.refs[2].name, Name{16});
}

TEST(SyntheticTraceTest, ZipfSkewsTowardLowNames) {
  ZipfTraceParams params;
  params.extent = 1000;
  params.length = 50000;
  params.theta = 0.99;
  const ReferenceTrace trace = MakeZipfTrace(params);
  std::size_t in_head = 0;
  for (const Reference& ref : trace.refs) {
    EXPECT_LT(ref.name.value, 1000u);
    if (ref.name.value < 100) {
      ++in_head;
    }
  }
  // Under strong skew the first 10% of names draw well over half the refs.
  EXPECT_GT(static_cast<double>(in_head) / trace.size(), 0.5);
}

TEST(SyntheticTraceTest, ConcatenatePreservesOrderAndLabels) {
  SequentialTraceParams a_params;
  a_params.extent = 4;
  a_params.length = 4;
  RandomTraceParams b_params;
  b_params.extent = 4;
  b_params.length = 3;
  const ReferenceTrace joined =
      Concatenate(MakeSequentialTrace(a_params), MakeRandomTrace(b_params));
  EXPECT_EQ(joined.size(), 7u);
  EXPECT_EQ(joined.label, "sequential+random");
  EXPECT_EQ(joined.refs[0].name, Name{0});
}

// --- Allocation traces -------------------------------------------------------------

TEST(AllocationTraceTest, GeneratorIsDeterministic) {
  AllocationTraceParams params;
  params.operations = 2000;
  EXPECT_EQ(MakeAllocationTrace(params).ops, MakeAllocationTrace(params).ops);
}

TEST(AllocationTraceTest, FreesOnlyLiveObjects) {
  AllocationTraceParams params;
  params.operations = 5000;
  const AllocationTrace trace = MakeAllocationTrace(params);
  std::unordered_set<std::uint64_t> live;
  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      EXPECT_TRUE(live.insert(op.request).second) << "request id reused";
      EXPECT_GE(op.size, params.min_size);
      EXPECT_LE(op.size, params.max_size);
    } else {
      EXPECT_TRUE(live.erase(op.request)) << "free of dead object";
    }
  }
}

TEST(AllocationTraceTest, SteadyStateHoversNearTarget) {
  AllocationTraceParams params;
  params.operations = 20000;
  params.target_live = 100;
  const AllocationTrace trace = MakeAllocationTrace(params);
  std::size_t live = 0;
  std::size_t max_live = 0;
  for (const AllocOp& op : trace.ops) {
    live += op.kind == AllocOpKind::kAllocate ? 1 : 0;
    live -= op.kind == AllocOpKind::kFree ? 1 : 0;
    max_live = std::max(max_live, live);
  }
  EXPECT_GE(max_live, 100u);
  EXPECT_LT(max_live, 300u);  // hovers, does not run away
}

TEST(AllocationTraceTest, FixedDistributionIsConstant) {
  AllocationTraceParams params;
  params.distribution = SizeDistribution::kFixed;
  params.mean_size = 64.0;
  params.operations = 500;
  const AllocationTrace trace = MakeAllocationTrace(params);
  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      EXPECT_EQ(op.size, 64u);
    }
  }
}

TEST(AllocationTraceTest, BimodalUsesOnlyTwoSizes) {
  AllocationTraceParams params;
  params.distribution = SizeDistribution::kBimodal;
  params.small_size = 8;
  params.large_size = 512;
  params.operations = 2000;
  const AllocationTrace trace = MakeAllocationTrace(params);
  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      EXPECT_TRUE(op.size == 8 || op.size == 512);
    }
  }
}

TEST(AllocationTraceTest, PeakLiveWordsMatchesManualReplay) {
  AllocationTraceParams params;
  params.operations = 3000;
  const AllocationTrace trace = MakeAllocationTrace(params);
  WordCount live = 0;
  WordCount peak = 0;
  std::unordered_map<std::uint64_t, WordCount> sizes;
  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      sizes[op.request] = op.size;
      live += op.size;
      peak = std::max(peak, live);
    } else {
      live -= sizes[op.request];
    }
  }
  EXPECT_EQ(trace.PeakLiveWords(), peak);
}

// --- Trace IO ------------------------------------------------------------------------

TEST(TraceIoTest, ReferenceRoundTrip) {
  RandomTraceParams params;
  params.length = 500;
  const ReferenceTrace original = MakeRandomTrace(params);
  std::stringstream buffer;
  WriteReferenceTrace(original, &buffer);
  const auto parsed = ReadReferenceTrace(&buffer);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->label, original.label);
  EXPECT_EQ(parsed->refs, original.refs);
}

TEST(TraceIoTest, AllocationRoundTrip) {
  AllocationTraceParams params;
  params.operations = 500;
  const AllocationTrace original = MakeAllocationTrace(params);
  std::stringstream buffer;
  WriteAllocationTrace(original, &buffer);
  const auto parsed = ReadAllocationTrace(&buffer);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->label, original.label);
  EXPECT_EQ(parsed->ops, original.ops);
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in("# comment\n\nlabel t\nref 5 w\n  # indented comment\nref 6 r\n");
  const auto parsed = ReadReferenceTrace(&in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->refs.size(), 2u);
  EXPECT_EQ(parsed->refs[0].name, Name{5});
  EXPECT_EQ(parsed->refs[0].kind, AccessKind::kWrite);
}

TEST(TraceIoTest, BadAccessKindReportsLine) {
  std::stringstream in("ref 1 q\n");
  const auto parsed = ReadReferenceTrace(&in);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().line, 1u);
  EXPECT_NE(parsed.error().message.find("bad access kind"), std::string::npos);
}

TEST(TraceIoTest, UnknownVerbIsAnError) {
  std::stringstream in("label x\nfetch 3\n");
  const auto parsed = ReadReferenceTrace(&in);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().line, 2u);
}

TEST(TraceIoTest, AllocWithZeroSizeRejected) {
  std::stringstream in("alloc 1 0\n");
  const auto parsed = ReadAllocationTrace(&in);
  ASSERT_FALSE(parsed.has_value());
}

}  // namespace
}  // namespace dsa
