// Unit tests for the binary buddy allocator.

#include <gtest/gtest.h>

#include "src/alloc/buddy.h"

namespace dsa {
namespace {

TEST(BuddyTest, RoundsRequestsUpToPowersOfTwo) {
  BuddyAllocator alloc(1024);
  EXPECT_EQ(alloc.OrderFor(1), 0);
  EXPECT_EQ(alloc.OrderFor(2), 1);
  EXPECT_EQ(alloc.OrderFor(3), 2);
  EXPECT_EQ(alloc.OrderFor(64), 6);
  EXPECT_EQ(alloc.OrderFor(65), 7);
}

TEST(BuddyTest, MinOrderEnforced) {
  BuddyAllocator alloc(1024, /*min_order=*/4);
  EXPECT_EQ(alloc.OrderFor(1), 4);
  const auto block = alloc.Allocate(1);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->size, 16u);
}

TEST(BuddyTest, GrantedBlockIsPowerOfTwoAndTracked) {
  BuddyAllocator alloc(1024);
  const auto block = alloc.Allocate(100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->size, 128u);
  EXPECT_EQ(alloc.live_words(), 100u);
  EXPECT_EQ(alloc.reserved_words(), 128u);
  // Internal fragmentation from rounding: (128-100)/128.
  EXPECT_NEAR(alloc.Fragmentation().InternalFragmentation(), 28.0 / 128.0, 1e-12);
}

TEST(BuddyTest, SplitsProduceFreeBuddies) {
  BuddyAllocator alloc(1024);
  alloc.Allocate(1);  // splits 1024 down to order 0
  // One free buddy at each order 0..9.
  for (int order = 0; order <= 9; ++order) {
    EXPECT_EQ(alloc.FreeBlocksAtOrder(order), 1u) << "order " << order;
  }
  EXPECT_EQ(alloc.FreeBlocksAtOrder(10), 0u);
}

TEST(BuddyTest, FreeCoalescesBackToTop) {
  BuddyAllocator alloc(1024);
  const auto block = alloc.Allocate(1);
  alloc.Free(block->addr);
  EXPECT_EQ(alloc.FreeBlocksAtOrder(10), 1u);
  for (int order = 0; order < 10; ++order) {
    EXPECT_EQ(alloc.FreeBlocksAtOrder(order), 0u);
  }
}

TEST(BuddyTest, BuddiesOnlyMergeWithTheirPartner) {
  BuddyAllocator alloc(64);
  const auto a = alloc.Allocate(16);  // [0,16)
  const auto b = alloc.Allocate(16);  // [16,32)
  const auto c = alloc.Allocate(16);  // [32,48)
  ASSERT_TRUE(a && b && c);
  alloc.Free(b->addr);
  // b's buddy (a) is live, so no merge: one free 16 at order 4 plus [48,64).
  EXPECT_EQ(alloc.FreeBlocksAtOrder(4), 2u);
  alloc.Free(a->addr);
  // a+b merge to a 32; its buddy [32,64) is half-live so no further merge.
  EXPECT_EQ(alloc.FreeBlocksAtOrder(5), 1u);
  alloc.Free(c->addr);
  EXPECT_EQ(alloc.FreeBlocksAtOrder(6), 1u);  // everything back together
}

TEST(BuddyTest, FailsWhenNoBlockBigEnough) {
  BuddyAllocator alloc(64);
  ASSERT_TRUE(alloc.Allocate(33).has_value());  // takes the whole 64 block
  EXPECT_FALSE(alloc.Allocate(1).has_value());
  EXPECT_EQ(alloc.stats().failures, 1u);
}

TEST(BuddyTest, OversizedRequestFailsCleanly) {
  BuddyAllocator alloc(64);
  EXPECT_FALSE(alloc.Allocate(65).has_value());
  EXPECT_EQ(alloc.live_words(), 0u);
}

TEST(BuddyTest, HoleSizesMergesAdjacentFreeRuns) {
  BuddyAllocator alloc(64);
  const auto a = alloc.Allocate(16);
  const auto b = alloc.Allocate(16);
  ASSERT_TRUE(a && b);
  (void)b;
  alloc.Free(a->addr);
  // Free space: [0,16) and [32,64) — adjacent blocks [32,48),[48,64) read as
  // one hole even if stored separately internally.
  const auto holes = alloc.HoleSizes();
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], 16u);
  EXPECT_EQ(holes[1], 32u);
}

TEST(BuddyDeathTest, NonPowerOfTwoCapacityRejected) {
  EXPECT_DEATH(BuddyAllocator alloc(1000), "power of two");
}

TEST(BuddyDeathTest, UnknownFreeAborts) {
  BuddyAllocator alloc(64);
  EXPECT_DEATH(alloc.Free(PhysicalAddress{0}), "unknown block");
}

TEST(BuddyTest, StatsDistinguishRequestedFromGranted) {
  BuddyAllocator alloc(1024);
  alloc.Allocate(100);
  alloc.Allocate(100);
  EXPECT_EQ(alloc.stats().words_requested, 200u);
  EXPECT_EQ(alloc.stats().words_allocated, 256u);
}

}  // namespace
}  // namespace dsa
