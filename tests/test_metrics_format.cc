// Pins the byte format of the MetricsRegistry-backed report renderer and
// the numeric formatters it leans on.  RenderVmReport replaced the literal
// printf block in dsa_sim; these tests are the contract that the swap stays
// byte-identical, so downstream tooling that parses report text never sees
// a formatting drift.

#include <gtest/gtest.h>

#include <string>

#include "src/obs/vm_metrics.h"
#include "src/stats/table.h"

namespace dsa {
namespace {

VmReport SampleReport() {
  VmReport report;
  report.references = 60000;
  report.faults = 128;
  report.bounds_violations = 2;
  report.writebacks = 31;
  report.total_cycles = 1234567;
  report.compute_cycles = 60000;
  report.translation_cycles = 120000;
  report.wait_cycles = 987654;
  report.space_time.active = 1.5e9;
  report.space_time.waiting = 0.5e9;
  report.peak_resident_words = 16384;
  report.tlb_hit_rate = 0.9541;
  return report;
}

TEST(VmMetricsFormatTest, ReportBlockIsByteStable) {
  const std::string out = RenderVmReport(SampleReport(), "paged linear", "workload-x");
  const std::string expected =
      "system           paged linear\n"
      "workload         workload-x (60000 references)\n"
      "faults           128  (rate 0.00213)\n"
      "bounds traps     2\n"
      "write-backs      31\n"
      "total cycles     1234567\n"
      "mean map cost    2.00 cycles/ref\n"
      "wait fraction    0.800\n"
      "space-time       active 1.500e+09, waiting 5.000e+08 (waiting 25.0%)\n"
      "peak residency   16384 words\n"
      "assoc hit rate   0.954\n";
  EXPECT_EQ(out, expected);
}

TEST(VmMetricsFormatTest, TlbLineOnlyWhenHitRatePositive) {
  VmReport report = SampleReport();
  report.tlb_hit_rate = 0.0;
  const std::string out = RenderVmReport(report, "s", "w");
  EXPECT_EQ(out.find("assoc hit rate"), std::string::npos);
}

TEST(VmMetricsFormatTest, ZeroReportRendersZeroRatesNotNans) {
  const std::string out = RenderVmReport(VmReport{}, "s", "w");
  EXPECT_NE(out.find("faults           0  (rate 0.00000)\n"), std::string::npos);
  EXPECT_NE(out.find("wait fraction    0.000\n"), std::string::npos);
  EXPECT_NE(out.find("space-time       active 0.000e+00, waiting 0.000e+00 (waiting 0.0%)\n"),
            std::string::npos);
}

TEST(VmMetricsFormatTest, FillThenRenderMatchesConvenienceWrapper) {
  const VmReport report = SampleReport();
  MetricsRegistry registry;
  FillVmMetrics(report, &registry);
  EXPECT_EQ(RenderVmMetricsReport(registry, "sys", "load"),
            RenderVmReport(report, "sys", "load"));
}

TEST(VmMetricsFormatTest, FillVmMetricsRoundsOnceIntoGauges) {
  // The gauge holds the same derived value the report prints — a dashboard
  // scraping the registry and a human reading the report agree.
  const VmReport report = SampleReport();
  MetricsRegistry registry;
  FillVmMetrics(report, &registry);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("vm/fault_rate"), report.FaultRate());
  EXPECT_DOUBLE_EQ(registry.GaugeValue("vm/wait_fraction"), report.WaitFraction());
  EXPECT_EQ(registry.CounterValue("vm/references"), 60000u);
  EXPECT_EQ(registry.CounterValue("vm/reliability/lost_pages"), 0u);
}

TEST(VmMetricsFormatTest, FillMultiprogramMetricsFlattensReport) {
  MultiprogramReport report;
  report.degree = 4;
  report.total_cycles = 100000;
  report.cpu_busy_cycles = 60000;
  report.cpu_idle_cycles = 30000;
  report.context_switch_cycles = 10000;
  report.faults = 321;
  report.deactivations = 5;
  report.reactivations = 4;
  report.controller_decisions = 9;
  report.reliability.retries = 7;
  JobReport job;
  job.references = 5000;
  job.blocked_cycles = 1200;
  job.queued_cycles = 800;
  report.jobs.assign(2, job);

  MetricsRegistry registry;
  FillMultiprogramMetrics(report, &registry);
  EXPECT_EQ(registry.CounterValue("sched/degree"), 4u);
  EXPECT_EQ(registry.CounterValue("sched/deactivations"), 5u);
  EXPECT_EQ(registry.CounterValue("sched/reactivations"), 4u);
  EXPECT_EQ(registry.CounterValue("sched/controller_decisions"), 9u);
  EXPECT_EQ(registry.CounterValue("sched/blocked_fault_cycles"), 2400u);
  EXPECT_EQ(registry.CounterValue("sched/queued_cycles"), 1600u);
  EXPECT_EQ(registry.CounterValue("sched/reliability/retries"), 7u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("sched/cpu_utilization"), 0.6);
}

TEST(NumericFormatTest, FormatFixedNeverPrintsNegativeZero) {
  EXPECT_EQ(FormatFixed(-0.0, 3), "0.000");
  EXPECT_EQ(FormatFixed(-1e-9, 3), "0.000");
  EXPECT_EQ(FormatFixed(-0.0004, 3), "0.000");
  EXPECT_EQ(FormatFixed(0.0005, 3), "0.001");  // plain round-half-up survives
}

TEST(NumericFormatTest, FormatScientificNeverPrintsNegativeZero) {
  EXPECT_EQ(FormatScientific(-0.0, 3), "0.000e+00");
  EXPECT_EQ(FormatScientific(1.5e9, 3), "1.500e+09");
}

}  // namespace
}  // namespace dsa
