// VariableAllocator unit tests plus the cross-policy property suite: under
// random allocate/free churn, no allocator may ever hand out overlapping
// blocks, lose words, or miscount fragmentation.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/alloc/buddy.h"
#include "src/alloc/compaction.h"
#include "src/alloc/rice_chain.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/rng.h"
#include "src/stats/summary.h"
#include "src/trace/allocation.h"

namespace dsa {
namespace {

TEST(VariableAllocatorTest, AllocatesAndFrees) {
  VariableAllocator alloc(1000, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  const auto block = alloc.Allocate(100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->addr, PhysicalAddress{0});
  EXPECT_EQ(block->size, 100u);
  EXPECT_EQ(alloc.live_words(), 100u);
  alloc.Free(block->addr);
  EXPECT_EQ(alloc.live_words(), 0u);
  EXPECT_EQ(alloc.free_list().total_free(), 1000u);
  EXPECT_EQ(alloc.free_list().hole_count(), 1u);  // coalesced back to one hole
}

TEST(VariableAllocatorTest, FailureLeavesStateUntouched) {
  VariableAllocator alloc(100, MakePlacementPolicy(PlacementStrategyKind::kBestFit));
  ASSERT_TRUE(alloc.Allocate(60).has_value());
  EXPECT_FALSE(alloc.Allocate(50).has_value());
  EXPECT_EQ(alloc.stats().failures, 1u);
  EXPECT_EQ(alloc.live_words(), 60u);
}

TEST(VariableAllocatorTest, ExternalFragmentationBlocksLargeRequests) {
  VariableAllocator alloc(100, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  // Allocate 10x10, free every other one: 50 words free, largest hole 10.
  std::vector<PhysicalAddress> blocks;
  for (int i = 0; i < 10; ++i) {
    blocks.push_back(alloc.Allocate(10)->addr);
  }
  for (int i = 0; i < 10; i += 2) {
    alloc.Free(blocks[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(alloc.free_list().total_free(), 50u);
  EXPECT_FALSE(alloc.Allocate(11).has_value());  // despite 50 free words
  const auto frag = alloc.Fragmentation();
  EXPECT_DOUBLE_EQ(frag.ExternalFragmentation(), 0.8);
}

TEST(VariableAllocatorTest, LiveBlocksReportedInAddressOrder) {
  VariableAllocator alloc(1000, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  alloc.Allocate(10);
  alloc.Allocate(20);
  alloc.Allocate(30);
  const auto blocks = alloc.LiveBlocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_LT(blocks[0].addr.value, blocks[1].addr.value);
  EXPECT_LT(blocks[1].addr.value, blocks[2].addr.value);
  EXPECT_EQ(alloc.LiveBlockSize(blocks[1].addr), 20u);
}

TEST(VariableAllocatorTest, RelocateMovesBlock) {
  VariableAllocator alloc(1000, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  const auto a = alloc.Allocate(10);
  const auto b = alloc.Allocate(10);
  ASSERT_TRUE(a && b);
  alloc.Free(a->addr);  // hole at [0,10)
  alloc.Relocate(b->addr, PhysicalAddress{0});
  const auto blocks = alloc.LiveBlocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].addr, PhysicalAddress{0});
  EXPECT_TRUE(alloc.free_list().RangeIsFree(PhysicalAddress{10}, 990));
}

TEST(VariableAllocatorTest, RelocateWithOverlapSlidesDown) {
  VariableAllocator alloc(100, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  const auto a = alloc.Allocate(10);
  const auto b = alloc.Allocate(50);
  ASSERT_TRUE(a && b);
  alloc.Free(a->addr);
  // Slide the 50-word block from 10 down to 5: destination overlaps source.
  alloc.Relocate(b->addr, PhysicalAddress{5});
  EXPECT_EQ(alloc.LiveBlocks()[0].addr, PhysicalAddress{5});
}

TEST(VariableAllocatorDeathTest, FreeOfUnknownBlockAborts) {
  VariableAllocator alloc(100, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  EXPECT_DEATH(alloc.Free(PhysicalAddress{5}), "unknown block");
}

TEST(VariableAllocatorTest, NameIncludesPolicy) {
  VariableAllocator alloc(100, MakePlacementPolicy(PlacementStrategyKind::kBestFit));
  EXPECT_EQ(alloc.name(), "variable/best-fit");
}

// --- Cross-allocator property suite ---------------------------------------------

enum class AllocatorFlavour {
  kFirstFit,
  kNextFit,
  kBestFit,
  kWorstFit,
  kTwoEnded,
  kBuddy,
  kRiceChain,
};

std::unique_ptr<Allocator> MakeFlavour(AllocatorFlavour flavour, WordCount capacity) {
  switch (flavour) {
    case AllocatorFlavour::kFirstFit:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
    case AllocatorFlavour::kNextFit:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(PlacementStrategyKind::kNextFit));
    case AllocatorFlavour::kBestFit:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(PlacementStrategyKind::kBestFit));
    case AllocatorFlavour::kWorstFit:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(PlacementStrategyKind::kWorstFit));
    case AllocatorFlavour::kTwoEnded:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(PlacementStrategyKind::kTwoEnded, 64));
    case AllocatorFlavour::kBuddy:
      return std::make_unique<BuddyAllocator>(capacity);
    case AllocatorFlavour::kRiceChain:
      return std::make_unique<RiceChainAllocator>(capacity);
  }
  return nullptr;
}

class AllocatorPropertyTest : public ::testing::TestWithParam<AllocatorFlavour> {};

// Invariant: live blocks never overlap and never leave [0, capacity), and
// requested words are conserved, across thousands of random churn steps.
TEST_P(AllocatorPropertyTest, NoOverlapNoLeakUnderChurn) {
  constexpr WordCount kCapacity = 1 << 14;
  auto alloc = MakeFlavour(GetParam(), kCapacity);

  AllocationTraceParams params;
  params.operations = 6000;
  params.max_size = 512;
  params.target_live = 40;
  params.seed = 1234;
  const AllocationTrace trace = MakeAllocationTrace(params);

  std::map<std::uint64_t, Block> by_request;      // request id -> granted block
  std::map<std::uint64_t, WordCount> live_spans;  // start -> granted size

  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      const auto block = alloc->Allocate(op.size);
      if (!block.has_value()) {
        continue;  // over-capacity requests may fail; that is not a bug
      }
      EXPECT_GE(block->size, op.size);
      EXPECT_LE(block->addr.value + block->size, kCapacity) << "block beyond capacity";
      // Overlap check against the address-ordered live map.
      auto next = live_spans.upper_bound(block->addr.value);
      if (next != live_spans.end()) {
        EXPECT_LE(block->addr.value + block->size, next->first) << "overlaps successor";
      }
      if (next != live_spans.begin()) {
        auto prev = std::prev(next);
        EXPECT_LE(prev->first + prev->second, block->addr.value) << "overlaps predecessor";
      }
      live_spans.emplace(block->addr.value, block->size);
      by_request.emplace(op.request, *block);
    } else {
      auto it = by_request.find(op.request);
      if (it == by_request.end()) {
        continue;  // the allocation had failed
      }
      alloc->Free(it->second.addr);
      live_spans.erase(it->second.addr.value);
      // The request sizes were recorded by the trace generator.
      by_request.erase(it);
    }
  }

  // Conservation: live words as seen by the allocator match requested sizes
  // for variable allocators, and reserved covers every live span for all.
  WordCount span_words = 0;
  for (const auto& [start, size] : live_spans) {
    span_words += size;
  }
  EXPECT_EQ(alloc->reserved_words(), span_words);
  EXPECT_LE(alloc->live_words(), alloc->reserved_words());
}

// Invariant: freeing everything restores one maximal hole (full coalescing).
TEST_P(AllocatorPropertyTest, FullFreeRestoresOneHole) {
  constexpr WordCount kCapacity = 1 << 12;
  auto alloc = MakeFlavour(GetParam(), kCapacity);
  Rng rng(77);
  std::vector<PhysicalAddress> blocks;
  for (int round = 0; round < 50; ++round) {
    const auto block = alloc->Allocate(rng.Between(1, 100));
    if (block.has_value()) {
      blocks.push_back(block->addr);
    }
  }
  for (PhysicalAddress addr : blocks) {
    alloc->Free(addr);
  }
  EXPECT_EQ(alloc->live_words(), 0u);
  const auto holes = alloc->HoleSizes();
  WordCount total = 0;
  for (WordCount h : holes) {
    total += h;
  }
  EXPECT_EQ(total, kCapacity);
  // Buddy and Rice report contiguity after their own coalescing rules; a
  // fully freed heap must still read as one hole.
  ASSERT_EQ(holes.size(), 1u) << "free storage did not coalesce";
  EXPECT_EQ(holes[0], kCapacity);
}

// Invariant: the allocator's fragmentation report is internally consistent.
TEST_P(AllocatorPropertyTest, FragmentationReportConsistent) {
  constexpr WordCount kCapacity = 1 << 13;
  auto alloc = MakeFlavour(GetParam(), kCapacity);
  Rng rng(99);
  std::vector<PhysicalAddress> blocks;
  for (int round = 0; round < 200; ++round) {
    if (!blocks.empty() && rng.Chance(0.4)) {
      const std::size_t i = rng.Below(blocks.size());
      alloc->Free(blocks[i]);
      blocks[i] = blocks.back();
      blocks.pop_back();
    } else {
      const auto block = alloc->Allocate(rng.Between(1, 200));
      if (block.has_value()) {
        blocks.push_back(block->addr);
      }
    }
  }
  const auto frag = alloc->Fragmentation();
  EXPECT_EQ(frag.capacity, kCapacity);
  EXPECT_EQ(frag.free + alloc->reserved_words(), kCapacity);
  EXPECT_LE(frag.largest_free, frag.free);
  EXPECT_GE(frag.ExternalFragmentation(), 0.0);
  EXPECT_LE(frag.ExternalFragmentation(), 1.0);
  EXPECT_GE(frag.InternalFragmentation(), 0.0);
}

// The fifty-percent rule (Knuth's formulation of the equilibrium the paper's
// §Uniformity appeals to via Wald: "analysis or experimentation can often be
// used to show that the storage utilization will remain at an acceptable
// level"): under first-fit churn with rare exact fits, the hole count settles
// near half the live-block count.
TEST(FiftyPercentRuleTest, FirstFitEquilibriumHoleRatio) {
  constexpr WordCount kCapacity = 1 << 18;
  VariableAllocator alloc(kCapacity, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
  Rng rng(2024);
  std::vector<PhysicalAddress> live;
  RunningSummary ratio;
  for (int op = 0; op < 120000; ++op) {
    // Hover around 400 live blocks of irregular size (exact fits rare).
    const bool do_free = !live.empty() && (live.size() >= 400 ? rng.Chance(0.55)
                                                              : rng.Chance(0.25));
    if (do_free) {
      const std::size_t i = rng.Below(live.size());
      alloc.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (auto block = alloc.Allocate(rng.Between(17, 331))) {
      live.push_back(block->addr);
    }
    if (op > 40000 && op % 500 == 0 && !live.empty()) {
      ratio.Add(static_cast<double>(alloc.free_list().hole_count()) /
                static_cast<double>(live.size()));
    }
  }
  ASSERT_GT(ratio.count(), 50u);
  // Knuth predicts ~0.5; accept the equilibrium band.
  EXPECT_GT(ratio.mean(), 0.25);
  EXPECT_LT(ratio.mean(), 0.85);
}

// Compaction after arbitrary churn always restores a single hole and keeps
// every live block intact, with contents preserved through the core store.
TEST(CompactionChurnPropertyTest, AlwaysRestoresOneHolePreservingContents) {
  constexpr WordCount kCapacity = 1 << 12;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    VariableAllocator alloc(kCapacity, MakePlacementPolicy(PlacementStrategyKind::kFirstFit));
    CoreStore store(kCapacity);
    Rng rng(seed);
    std::map<std::uint64_t, Word> tags;  // block start -> tag written to its words
    std::vector<Block> live;
    for (int op = 0; op < 400; ++op) {
      if (!live.empty() && rng.Chance(0.45)) {
        const std::size_t i = rng.Below(live.size());
        tags.erase(live[i].addr.value);
        alloc.Free(live[i].addr);
        live[i] = live.back();
        live.pop_back();
      } else if (auto block = alloc.Allocate(rng.Between(4, 64))) {
        const Word tag = (seed << 32) | static_cast<Word>(op);
        store.Fill(block->addr, block->size, tag);
        tags.emplace(block->addr.value, tag);
        live.push_back(*block);
      }
    }
    CompactionEngine engine(CpuPackingChannel());
    std::map<std::uint64_t, std::uint64_t> moves;  // old -> new
    engine.Compact(&alloc, &store,
                   [&moves](PhysicalAddress from, PhysicalAddress to, WordCount size) {
                     (void)size;
                     moves.emplace(from.value, to.value);
                   });
    EXPECT_LE(alloc.free_list().hole_count(), 1u) << "seed " << seed;
    for (const Block& block : live) {
      const std::uint64_t where =
          moves.contains(block.addr.value) ? moves[block.addr.value] : block.addr.value;
      const Word expected = tags.at(block.addr.value);
      for (WordCount w = 0; w < block.size; ++w) {
        ASSERT_EQ(store.Read(PhysicalAddress{where + w}), expected)
            << "seed " << seed << " block@" << block.addr.value << " word " << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFlavours, AllocatorPropertyTest,
                         ::testing::Values(AllocatorFlavour::kFirstFit,
                                           AllocatorFlavour::kNextFit,
                                           AllocatorFlavour::kBestFit,
                                           AllocatorFlavour::kWorstFit,
                                           AllocatorFlavour::kTwoEnded,
                                           AllocatorFlavour::kBuddy,
                                           AllocatorFlavour::kRiceChain),
                         [](const ::testing::TestParamInfo<AllocatorFlavour>& info) {
                           switch (info.param) {
                             case AllocatorFlavour::kFirstFit:
                               return "FirstFit";
                             case AllocatorFlavour::kNextFit:
                               return "NextFit";
                             case AllocatorFlavour::kBestFit:
                               return "BestFit";
                             case AllocatorFlavour::kWorstFit:
                               return "WorstFit";
                             case AllocatorFlavour::kTwoEnded:
                               return "TwoEnded";
                             case AllocatorFlavour::kBuddy:
                               return "Buddy";
                             case AllocatorFlavour::kRiceChain:
                               return "RiceChain";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace dsa
