// Unit tests for src/stats: summaries, percentiles, histograms, tables, and
// fragmentation metrics.

#include <gtest/gtest.h>

#include "src/stats/fragmentation.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace dsa {
namespace {

// --- RunningSummary -----------------------------------------------------------

TEST(RunningSummaryTest, EmptyIsZero) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningSummaryTest, SingleValue) {
  RunningSummary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningSummaryTest, KnownMoments) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningSummaryTest, NegativeValues) {
  RunningSummary s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

// --- Percentiles ----------------------------------------------------------------

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Percentile(50), 0.0);
}

TEST(PercentilesTest, NearestRankOnSmallSample) {
  Percentiles p;
  for (double x : {15.0, 20.0, 35.0, 40.0, 50.0}) {
    p.Add(x);
  }
  EXPECT_EQ(p.Percentile(30), 20.0);
  EXPECT_EQ(p.Percentile(40), 20.0);
  EXPECT_EQ(p.Percentile(50), 35.0);
  EXPECT_EQ(p.Percentile(100), 50.0);
  EXPECT_EQ(p.Percentile(0), 15.0);
}

TEST(PercentilesTest, MedianOfSequence) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) {
    p.Add(static_cast<double>(i));
  }
  EXPECT_EQ(p.Median(), 51.0);
}

TEST(PercentilesTest, UnsortedInsertOrder) {
  Percentiles p;
  p.Add(9.0);
  p.Add(1.0);
  p.Add(5.0);
  EXPECT_EQ(p.Percentile(0), 1.0);
  EXPECT_EQ(p.Percentile(100), 9.0);
}

// --- LogHistogram ---------------------------------------------------------------

TEST(LogHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LogHistogram::BucketFor(0), 0);
  EXPECT_EQ(LogHistogram::BucketFor(1), 1);
  EXPECT_EQ(LogHistogram::BucketFor(2), 2);
  EXPECT_EQ(LogHistogram::BucketFor(3), 2);
  EXPECT_EQ(LogHistogram::BucketFor(4), 3);
  EXPECT_EQ(LogHistogram::BucketFor(1024), 11);
  EXPECT_EQ(LogHistogram::BucketFor(1025), 11);
}

TEST(LogHistogramTest, BucketLowInvertsBucketFor) {
  for (int b = 1; b < 20; ++b) {
    EXPECT_EQ(LogHistogram::BucketFor(LogHistogram::BucketLow(b)), b);
  }
}

TEST(LogHistogramTest, CountsAccumulate) {
  LogHistogram h;
  h.Add(1);
  h.Add(1);
  h.Add(100);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(LogHistogram::BucketFor(100)), 1u);
}

TEST(LogHistogramTest, RenderShowsNonEmptyBuckets) {
  LogHistogram h;
  h.Add(5);
  const std::string text = h.Render();
  EXPECT_NE(text.find("[4, 7]"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

// --- Table ---------------------------------------------------------------------

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table t({"a", "bb"});
  t.AddRow().AddCell(std::uint64_t{1}).AddCell("x");
  const std::string text = t.Render();
  EXPECT_NE(text.find("| a | bb |"), std::string::npos);
  EXPECT_NE(text.find("| 1 | x  |"), std::string::npos);
  EXPECT_NE(text.find("|---|"), std::string::npos);
}

TEST(TableTest, ColumnWidthsFollowWidestCell) {
  Table t({"h"});
  t.AddRow().AddCell("wide-cell");
  const std::string text = t.Render();
  EXPECT_NE(text.find("| h         |"), std::string::npos);
}

TEST(TableTest, FixedPointFormatting) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
  Table t({"v"});
  t.AddRow().AddCell(0.5, 3);
  EXPECT_NE(t.Render().find("0.500"), std::string::npos);
}

TEST(TableTest, RowCountTracksRows) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow().AddCell("1");
  t.AddRow().AddCell("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableDeathTest, TooManyCellsAborts) {
  Table t({"only"});
  t.AddRow().AddCell("one");
  EXPECT_DEATH(t.AddCell("two"), "more cells");
}

// --- FragmentationReport ----------------------------------------------------------

TEST(FragmentationTest, NoHolesMeansNoExternalFragmentation) {
  const auto report = ReportFromHoles(1000, 600, 600, {});
  EXPECT_EQ(report.ExternalFragmentation(), 0.0);
  EXPECT_EQ(report.free, 0u);
}

TEST(FragmentationTest, SingleHoleIsUnfragmented) {
  const auto report = ReportFromHoles(1000, 600, 600, {400});
  EXPECT_EQ(report.ExternalFragmentation(), 0.0);
  EXPECT_EQ(report.largest_free, 400u);
}

TEST(FragmentationTest, ScatteredHolesAreFragmented) {
  const auto report = ReportFromHoles(1000, 600, 600, {100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(report.ExternalFragmentation(), 0.75);
  EXPECT_EQ(report.hole_count, 4u);
}

TEST(FragmentationTest, InternalFragmentationFromRounding) {
  // 600 words requested, 800 handed out (e.g. page rounding).
  const auto report = ReportFromHoles(1000, 600, 800, {200});
  EXPECT_DOUBLE_EQ(report.InternalFragmentation(), 0.25);
}

TEST(FragmentationTest, TotalWasteFraction) {
  const auto report = ReportFromHoles(1000, 600, 800, {200});
  EXPECT_DOUBLE_EQ(report.TotalWasteFraction(), 0.4);
}

TEST(FragmentationTest, ZeroCapacityIsSafe) {
  const auto report = ReportFromHoles(0, 0, 0, {});
  EXPECT_EQ(report.TotalWasteFraction(), 0.0);
  EXPECT_EQ(report.InternalFragmentation(), 0.0);
}

}  // namespace
}  // namespace dsa
