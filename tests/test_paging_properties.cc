// Property suite over the replacement strategies: the classic theorems the
// implementations must reproduce — OPT's lower bound, LRU's stack (inclusion)
// property, FIFO's Belady anomaly, and the equal-fault regime when memory
// covers the whole working set.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

// Runs a page reference string through a pager with `frames` frames and the
// given policy; returns the fault count.  Timing is trivialised (latency-free
// backing, no channel) so only the replacement decisions matter.
std::uint64_t CountFaults(const std::vector<PageId>& refs, std::size_t frames,
                          ReplacementStrategyKind kind, ReplacementOptions options = {}) {
  BackingStore backing(MakeDrumLevel("drum", 1u << 22, /*word_time=*/0,
                                     /*rotational_delay=*/0));
  PagerConfig config;
  config.page_words = 1;
  config.frames = frames;
  if (kind == ReplacementStrategyKind::kOpt) {
    options.page_string = refs;
  }
  Pager pager(config, &backing, /*channel=*/nullptr, MakeReplacementPolicy(kind, options),
              std::make_unique<DemandFetch>(), /*advice=*/nullptr);
  Cycles now = 0;
  for (const PageId page : refs) {
    pager.Access(page, AccessKind::kRead, now);
    ++now;
  }
  return pager.stats().faults;
}

std::vector<PageId> Pages(std::initializer_list<std::uint64_t> values) {
  std::vector<PageId> refs;
  for (std::uint64_t v : values) {
    refs.push_back(PageId{v});
  }
  return refs;
}

// The canonical Belady anomaly string.
std::vector<PageId> BeladyString() {
  return Pages({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
}

TEST(PagingTheoremsTest, FifoShowsBeladysAnomaly) {
  const auto refs = BeladyString();
  const std::uint64_t with3 = CountFaults(refs, 3, ReplacementStrategyKind::kFifo);
  const std::uint64_t with4 = CountFaults(refs, 4, ReplacementStrategyKind::kFifo);
  EXPECT_EQ(with3, 9u);
  EXPECT_EQ(with4, 10u);
  EXPECT_GT(with4, with3) << "more frames must fault MORE on the anomaly string";
}

TEST(PagingTheoremsTest, LruIsImmuneToTheAnomalyString) {
  const auto refs = BeladyString();
  const std::uint64_t with3 = CountFaults(refs, 3, ReplacementStrategyKind::kLru);
  const std::uint64_t with4 = CountFaults(refs, 4, ReplacementStrategyKind::kLru);
  EXPECT_LE(with4, with3);
}

TEST(PagingTheoremsTest, OptOnBeladyStringIsKnownOptimal) {
  const auto refs = BeladyString();
  EXPECT_EQ(CountFaults(refs, 3, ReplacementStrategyKind::kOpt), 7u);
  EXPECT_EQ(CountFaults(refs, 4, ReplacementStrategyKind::kOpt), 6u);
}

// Parameterization over (trace kind, frame count) for the OPT-bound and
// related invariants.
struct PropertyCase {
  std::string name;
  std::vector<PageId> refs;
};

std::vector<PropertyCase> PropertyCases() {
  std::vector<PropertyCase> cases;
  {
    WorkingSetTraceParams params;
    params.extent = 1 << 13;
    params.region_words = 128;
    params.regions_per_phase = 6;
    params.phases = 5;
    params.phase_length = 3000;
    cases.push_back({"working_set", MakeWorkingSetTrace(params).PageString(128)});
  }
  {
    LoopTraceParams params;
    params.extent = 1 << 13;
    params.body_words = 1024;
    params.advance_words = 512;
    params.iterations = 4;
    params.length = 15000;
    cases.push_back({"loop", MakeLoopTrace(params).PageString(128)});
  }
  {
    RandomTraceParams params;
    params.extent = 1 << 12;
    params.length = 15000;
    cases.push_back({"random", MakeRandomTrace(params).PageString(128)});
  }
  {
    SequentialTraceParams params;
    params.extent = 1 << 12;
    params.length = 15000;
    cases.push_back({"sequential", MakeSequentialTrace(params).PageString(128)});
  }
  return cases;
}

class ReplacementPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static const std::vector<PropertyCase>& Cases() {
    static const std::vector<PropertyCase>* cases =
        new std::vector<PropertyCase>(PropertyCases());
    return *cases;
  }
  const PropertyCase& Case() const { return Cases()[std::get<0>(GetParam())]; }
  std::size_t frames() const { return std::get<1>(GetParam()); }
};

// No online policy may beat Belady's offline optimum.
TEST_P(ReplacementPropertyTest, NoOnlinePolicyBeatsOpt) {
  const auto& refs = Case().refs;
  const std::uint64_t opt = CountFaults(refs, frames(), ReplacementStrategyKind::kOpt);
  for (ReplacementStrategyKind kind : OnlineReplacementKinds()) {
    const std::uint64_t faults = CountFaults(refs, frames(), kind);
    EXPECT_GE(faults, opt) << "policy " << ToString(kind) << " on " << Case().name;
  }
}

// LRU's inclusion property: faults never increase with more frames.
TEST_P(ReplacementPropertyTest, LruFaultsMonotoneInMemory) {
  const auto& refs = Case().refs;
  const std::uint64_t smaller = CountFaults(refs, frames(), ReplacementStrategyKind::kLru);
  const std::uint64_t larger =
      CountFaults(refs, frames() * 2, ReplacementStrategyKind::kLru);
  EXPECT_LE(larger, smaller) << Case().name;
}

// OPT is a stack algorithm too.
TEST_P(ReplacementPropertyTest, OptFaultsMonotoneInMemory) {
  const auto& refs = Case().refs;
  const std::uint64_t smaller = CountFaults(refs, frames(), ReplacementStrategyKind::kOpt);
  const std::uint64_t larger =
      CountFaults(refs, frames() * 2, ReplacementStrategyKind::kOpt);
  EXPECT_LE(larger, smaller) << Case().name;
}

// Every policy sees exactly the compulsory misses once memory covers the
// whole page population.
TEST_P(ReplacementPropertyTest, OnlyCompulsoryMissesWhenMemoryCoversAll) {
  const auto& refs = Case().refs;
  std::set<std::uint64_t> distinct;
  for (const PageId page : refs) {
    distinct.insert(page.value);
  }
  const std::size_t enough = distinct.size() + 1;
  for (ReplacementStrategyKind kind : OnlineReplacementKinds()) {
    if (kind == ReplacementStrategyKind::kWorkingSet) {
      continue;  // releases pages voluntarily, so it may refault by design
    }
    EXPECT_EQ(CountFaults(refs, enough, kind), distinct.size())
        << "policy " << ToString(kind) << " on " << Case().name;
  }
}

// Fault counts are deterministic given the seed-bearing options.
TEST_P(ReplacementPropertyTest, DeterministicFaultCounts) {
  const auto& refs = Case().refs;
  for (ReplacementStrategyKind kind : OnlineReplacementKinds()) {
    const std::uint64_t a = CountFaults(refs, frames(), kind);
    const std::uint64_t b = CountFaults(refs, frames(), kind);
    EXPECT_EQ(a, b) << "policy " << ToString(kind);
  }
}

std::string PropertyCaseName(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>& info) {
  static const char* kNames[] = {"WorkingSet", "Loop", "Random", "Sequential"};
  return std::string(kNames[std::get<0>(info.param)]) + "x" +
         std::to_string(std::get<1>(info.param)) + "frames";
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndMemories, ReplacementPropertyTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),  // trace index
                       ::testing::Values(4u, 8u, 16u)),    // frames
    PropertyCaseName);

// The ATLAS learning policy's raison d'etre: on loop-structured programs it
// beats LRU (which evicts exactly the page about to recur).
TEST(AtlasLearningPropertyTest, BeatsLruOnCyclicSweeps) {
  // A strict cyclic sweep over 12 pages with 8 frames: LRU faults on every
  // reference after warm-up; a predictor that learns the loop period must
  // do strictly better.
  std::vector<PageId> refs;
  for (int lap = 0; lap < 50; ++lap) {
    for (std::uint64_t p = 0; p < 12; ++p) {
      for (int rep = 0; rep < 8; ++rep) {  // several touches per residence
        refs.push_back(PageId{p});
      }
    }
  }
  const std::uint64_t lru = CountFaults(refs, 8, ReplacementStrategyKind::kLru);
  const std::uint64_t atlas = CountFaults(refs, 8, ReplacementStrategyKind::kAtlasLearning);
  EXPECT_LT(atlas, lru);
}

}  // namespace
}  // namespace dsa
