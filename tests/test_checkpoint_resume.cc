// Kill-and-resume matrix for the crash-consistent service mode.
//
// The headline guarantee: a ServiceLoop stopped cold after K commits (no
// flush, no goodbye — the in-process stand-in for SIGKILL) and restarted
// from its checkpoint directory produces final per-tenant reports, event
// JSONL files, and SERVICE.txt that are BYTE-identical to an uninterrupted
// run.  The kill-point matrix is sharded over the SweepRunner, so the suite
// doubles as a jobs>1 determinism check.
//
// Alongside: the store's corruption taxonomy (torn member, flipped byte,
// stale version, checksum/manifest mismatch -> typed quarantine records,
// fresh-start completion, never a crash — pinned with a death test), and
// the --batch skip-and-report regression (malformed tenants are skipped,
// reported, and change the exit code without stopping the loadable cells).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fsio.h"
#include "src/core/snapshot.h"
#include "src/exec/sweep_runner.h"
#include "src/serve/batch.h"
#include "src/serve/checkpoint_store.h"
#include "src/serve/service.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

namespace fs = std::filesystem;

SystemSpec ServeSpec() {
  SystemSpec spec;
  spec.label = "resume-test";
  spec.core_words = 2048;
  spec.page_words = 128;  // 16 frames
  spec.tlb_entries = 4;
  spec.backing_level = MakeDrumLevel("drum", 1u << 17, /*word_time=*/2,
                                     /*rotational_delay=*/500);
  return spec;
}

// A scratch tree that cleans up after itself; every test gets its own.
struct Scratch {
  explicit Scratch(const std::string& tag)
      : root(fs::temp_directory_path() /
             ("dsa_resume_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(root);
    fs::create_directories(root / "spool");
  }
  ~Scratch() {
    std::error_code ec;
    fs::remove_all(root, ec);
  }
  std::string Spool() const { return (root / "spool").string(); }
  std::string Out(const std::string& name) const { return (root / name).string(); }

  fs::path root;
};

void SpoolTenant(const Scratch& scratch, const std::string& name,
                 std::uint64_t seed, std::size_t phase_length = 900) {
  WorkingSetTraceParams params;
  params.extent = 1 << 13;
  params.region_words = 128;
  // More regions than the 16 core frames, so every tenant faults steadily
  // and the service clock advances fast enough to cross many commit
  // cadences within these short traces.
  params.regions_per_phase = 20;
  params.phase_length = phase_length;
  params.phases = 3;
  params.seed = seed;
  const ReferenceTrace trace = MakeWorkingSetTrace(params);
  std::ofstream out(fs::path(scratch.Spool()) / name);
  ASSERT_TRUE(out) << name;
  WriteReferenceTrace(trace, &out);
}

void SpoolThreeTenants(const Scratch& scratch) {
  SpoolTenant(scratch, "alpha.trace", 11);
  SpoolTenant(scratch, "beta.trace", 22, /*phase_length=*/1200);
  SpoolTenant(scratch, "gamma.trace", 33, /*phase_length=*/600);
}

ServeConfig ConfigFor(const Scratch& scratch, const std::string& tag) {
  ServeConfig config;
  config.spool_dir = scratch.Spool();
  config.out_dir = scratch.Out(tag + ".out");
  config.checkpoint_dir = scratch.Out(tag + ".ckpt");
  config.checkpoint_every = 20000;
  config.rescan_spool = false;  // the spool is fully populated up front
  return config;
}

// Reads every file of a directory into name -> bytes, for whole-tree
// byte comparison.
std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files[entry.path().filename().string()] = std::move(bytes);
  }
  return files;
}

void ExpectSameTree(const std::map<std::string, std::string>& expected,
                    const std::map<std::string, std::string>& actual,
                    const std::string& context) {
  std::vector<std::string> expected_names;
  for (const auto& [name, bytes] : expected) {
    expected_names.push_back(name);
  }
  std::vector<std::string> actual_names;
  for (const auto& [name, bytes] : actual) {
    actual_names.push_back(name);
  }
  ASSERT_EQ(expected_names, actual_names) << context;
  for (const auto& [name, bytes] : expected) {
    EXPECT_EQ(bytes, actual.at(name)) << context << ": " << name
                                      << " differs from the uninterrupted run";
  }
}

// Runs the service to completion with no interruptions; the reference tree.
std::map<std::string, std::string> StraightThroughTree(const Scratch& scratch,
                                                       const std::string& tag) {
  ServeConfig config = ConfigFor(scratch, tag);
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  EXPECT_TRUE(outcome.has_value());
  if (outcome.has_value()) {
    EXPECT_TRUE(outcome->finished);
    EXPECT_EQ(outcome->tenants_completed, 3u);
    EXPECT_EQ(outcome->tenants_rejected, 0u);
  }
  return SlurpDir(config.out_dir);
}

TEST(CheckpointResumeTest, KillPointMatrixIsByteIdenticalShardedOverJobs) {
  Scratch scratch("matrix");
  SpoolThreeTenants(scratch);

  ServeConfig ref_config = ConfigFor(scratch, "ref");
  std::uint64_t total_commits = 0;
  {
    ServiceLoop loop(ServeSpec(), ref_config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->finished);
    ASSERT_EQ(outcome->tenants_completed, 3u);
    total_commits = outcome->commits;
  }
  const auto expected = SlurpDir(ref_config.out_dir);
  ASSERT_GE(total_commits, 6u) << "cadence too coarse for a six-point matrix";

  // Kill at six points spread across the run's actual commit count; each
  // cell restarts until the loop finishes and then compares the whole
  // output tree.  SweepRunner shards the cells across workers — every cell
  // owns its own directories.
  std::vector<int> kill_points = {
      1,
      2,
      static_cast<int>(total_commits / 4),
      static_cast<int>(total_commits / 2),
      static_cast<int>(2 * total_commits / 3),
      static_cast<int>(total_commits - 1)};
  // Dedupe: two cells at the same kill point would share scratch
  // directories and race.
  std::sort(kill_points.begin(), kill_points.end());
  kill_points.erase(std::unique(kill_points.begin(), kill_points.end()),
                    kill_points.end());
  ASSERT_GE(kill_points.size(), 4u);
  SweepRunner runner(/*jobs=*/4);
  const std::vector<std::string> failures =
      runner.Run(kill_points.size(), [&](std::size_t cell) {
        const std::string tag = "kill" + std::to_string(kill_points[cell]);
        ServeConfig config = ConfigFor(scratch, tag);
        config.stop_after_commits = kill_points[cell];
        // First run: dies mid-flight (finished == false), nothing flushed
        // beyond its committed cuts.
        {
          ServiceLoop loop(ServeSpec(), config);
          auto outcome = loop.Run();
          if (!outcome.has_value()) {
            return tag + ": kill run errored: " + outcome.error().Describe();
          }
          if (outcome->finished) {
            return tag + ": expected the loop to stop at the kill point";
          }
        }
        // Restart(s): keep resuming until the loop reports completion, as
        // the daemon supervisor would.
        config.stop_after_commits = -1;
        std::size_t resumed = 0;
        for (int attempt = 0; attempt < 4; ++attempt) {
          ServiceLoop loop(ServeSpec(), config);
          auto outcome = loop.Run();
          if (!outcome.has_value()) {
            return tag + ": resume errored: " + outcome.error().Describe();
          }
          resumed += outcome->tenants_resumed;
          if (!outcome->quarantined.empty()) {
            return tag + ": unexpected quarantine on a clean kill";
          }
          if (outcome->finished) {
            const auto actual = SlurpDir(config.out_dir);
            for (const auto& [name, bytes] : expected) {
              auto it = actual.find(name);
              if (it == actual.end()) {
                return tag + ": missing output " + name;
              }
              if (it->second != bytes) {
                return tag + ": " + name + " differs from uninterrupted run";
              }
            }
            if (actual.size() != expected.size()) {
              return tag + ": extra outputs";
            }
            // Early and mid-run kills must actually resume tenants from
            // the checkpoint; a kill near the end may legitimately find
            // every tenant already completed and committed.
            if (static_cast<std::uint64_t>(kill_points[cell]) <= total_commits / 2 &&
                resumed == 0) {
              return tag + ": nothing was actually resumed from checkpoint";
            }
            return std::string();
          }
        }
        return tag + ": loop never finished";
      });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(CheckpointResumeTest, ResumeAfterEveryCommitOfAShortRun) {
  // Exhaustive single-tenant variant: kill after EVERY commit index the
  // straight-through run performs, resume, compare.
  Scratch scratch("every");
  SpoolTenant(scratch, "solo.trace", 77);

  ServeConfig ref_config = ConfigFor(scratch, "ref");
  std::uint64_t total_commits = 0;
  {
    ServiceLoop loop(ServeSpec(), ref_config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->finished);
    total_commits = outcome->commits;
  }
  const auto expected = SlurpDir(ref_config.out_dir);
  ASSERT_GE(total_commits, 3u) << "cadence too coarse to exercise resume";

  std::size_t resumed_total = 0;
  for (std::uint64_t k = 1; k < total_commits; ++k) {
    const std::string tag = "at" + std::to_string(k);
    ServeConfig config = ConfigFor(scratch, tag);
    config.stop_after_commits = static_cast<int>(k);
    {
      ServiceLoop loop(ServeSpec(), config);
      auto outcome = loop.Run();
      ASSERT_TRUE(outcome.has_value()) << tag;
      ASSERT_FALSE(outcome->finished) << tag;
    }
    config.stop_after_commits = -1;
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value()) << tag;
    ASSERT_TRUE(outcome->finished) << tag;
    // A kill after the tenant's completion commit legitimately resumes
    // nothing (only finished state was checkpointed); mid-run kills must
    // resume the tenant, and most kill points are mid-run.
    resumed_total += outcome->tenants_resumed;
    ExpectSameTree(expected, SlurpDir(config.out_dir), tag);
  }
  EXPECT_GE(resumed_total, total_commits / 2)
      << "most kill points should land mid-run and actually resume";
}

TEST(DeltaCheckpointResumeTest, MixedChainKillMatrixAcrossLanesIsByteIdentical) {
  // The delta cadence must be invisible to the output: a kill landing on a
  // delta cut leaves [full, delta...] chains on disk, and the restarted
  // service restores through them to finish byte-identical to the all-full
  // reference — at every lane count, at every kill point.
  Scratch scratch("deltamatrix");
  SpoolThreeTenants(scratch);

  ServeConfig ref_config = ConfigFor(scratch, "ref");  // checkpoint_full_every = 1
  std::uint64_t total_commits = 0;
  {
    ServiceLoop loop(ServeSpec(), ref_config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->finished);
    total_commits = outcome->commits;
  }
  const auto expected = SlurpDir(ref_config.out_dir);
  ASSERT_GE(total_commits, 6u) << "cadence too coarse for a delta matrix";

  std::vector<int> kill_points = {1, 2, 3,
                                  static_cast<int>(total_commits / 2),
                                  static_cast<int>(total_commits - 1)};
  std::sort(kill_points.begin(), kill_points.end());
  kill_points.erase(std::unique(kill_points.begin(), kill_points.end()),
                    kill_points.end());
  const std::vector<unsigned> lane_grid = {1, 2, 4};
  const std::size_t cells = kill_points.size() * lane_grid.size();
  SweepRunner runner(/*jobs=*/4);
  const std::vector<std::string> failures =
      runner.Run(cells, [&](std::size_t cell) -> std::string {
        const int k = kill_points[cell % kill_points.size()];
        const unsigned lanes = lane_grid[cell / kill_points.size()];
        const std::string tag =
            "dl" + std::to_string(lanes) + "k" + std::to_string(k);
        ServeConfig config = ConfigFor(scratch, tag);
        config.checkpoint_full_every = 3;
        config.lanes = lanes;
        config.stop_after_commits = k;
        {
          ServiceLoop loop(ServeSpec(), config);
          auto outcome = loop.Run();
          if (!outcome.has_value()) {
            return tag + ": kill run errored: " + outcome.error().Describe();
          }
          if (outcome->finished) {
            return tag + ": expected the loop to stop at the kill point";
          }
        }
        // Commit i (0-based) is full iff i % 3 == 0, so a kill whose last
        // commit was a delta must leave delta links in the manifest — the
        // mixed chain this matrix exists to restore through.
        if ((k - 1) % 3 != 0) {
          auto manifest = ReadFileBytes(
              (fs::path(config.checkpoint_dir) / "MANIFEST").string());
          if (!manifest.has_value()) {
            return tag + ": unreadable manifest after kill";
          }
          if (manifest.value().find(" d ") == std::string::npos) {
            return tag + ": expected a delta link in the killed manifest";
          }
        }
        config.stop_after_commits = -1;
        std::size_t resumed = 0;
        for (int attempt = 0; attempt < 4; ++attempt) {
          ServiceLoop loop(ServeSpec(), config);
          auto outcome = loop.Run();
          if (!outcome.has_value()) {
            return tag + ": resume errored: " + outcome.error().Describe();
          }
          resumed += outcome->tenants_resumed;
          if (!outcome->quarantined.empty()) {
            return tag + ": unexpected quarantine on a clean kill";
          }
          if (outcome->finished) {
            const auto actual = SlurpDir(config.out_dir);
            if (actual.size() != expected.size()) {
              return tag + ": output tree size differs";
            }
            for (const auto& [name, bytes] : expected) {
              auto it = actual.find(name);
              if (it == actual.end()) {
                return tag + ": missing output " + name;
              }
              if (it->second != bytes) {
                return tag + ": " + name + " differs from the all-full run";
              }
            }
            if (static_cast<std::uint64_t>(k) <= total_commits / 2 &&
                resumed == 0) {
              return tag + ": nothing was actually resumed from the chain";
            }
            return std::string();
          }
        }
        return tag + ": loop never finished";
      });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

// ---------------------------------------------------------------------------
// Corruption: damaged checkpoints quarantine, report typed errors, and the
// service completes from a fresh start with byte-identical outputs.

fs::path FirstMember(const fs::path& ckpt) {
  std::vector<fs::path> members;
  for (const auto& entry : fs::directory_iterator(ckpt)) {
    if (entry.path().extension() == ".ckpt") {
      members.push_back(entry.path());
    }
  }
  EXPECT_FALSE(members.empty()) << "no members in " << ckpt;
  std::sort(members.begin(), members.end());
  return members.front();
}

void RunCorruptionCase(const std::string& tag,
                       void (*mutate)(const fs::path& ckpt),
                       SnapshotErrorKind expected_kind, bool expect_quarantine) {
  Scratch scratch(tag);
  SpoolThreeTenants(scratch);
  const auto expected = StraightThroughTree(scratch, "ref");

  ServeConfig config = ConfigFor(scratch, tag);
  config.stop_after_commits = 2;
  {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_FALSE(outcome->finished);
  }
  mutate(fs::path(config.checkpoint_dir));

  config.stop_after_commits = -1;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  ASSERT_TRUE(outcome.has_value()) << outcome.error().Describe();
  ASSERT_TRUE(outcome->finished);
  EXPECT_EQ(outcome->tenants_resumed, 0u)
      << tag << ": a damaged cut must never be partially resumed";
  if (expect_quarantine) {
    ASSERT_FALSE(outcome->quarantined.empty()) << tag;
    bool kind_seen = false;
    for (const std::string& reason : outcome->quarantined) {
      if (reason.find(ToString(expected_kind)) != std::string::npos) {
        kind_seen = true;
      }
    }
    EXPECT_TRUE(kind_seen) << tag << ": expected a '" << ToString(expected_kind)
                           << "' quarantine record";
    // The damaged cut is preserved for forensics, renamed aside.
    bool quarantine_file = false;
    for (const auto& entry : fs::directory_iterator(config.checkpoint_dir)) {
      if (entry.path().extension() == ".quarantine") {
        quarantine_file = true;
      }
    }
    EXPECT_TRUE(quarantine_file) << tag;
  }
  ExpectSameTree(expected, SlurpDir(config.out_dir), tag);
}

TEST(CheckpointCorruptionTest, TruncatedMemberQuarantinesWholeCut) {
  RunCorruptionCase(
      "trunc",
      [](const fs::path& ckpt) {
        const fs::path member = FirstMember(ckpt);
        const auto size = fs::file_size(member);
        fs::resize_file(member, size / 2);
      },
      SnapshotErrorKind::kTruncated, /*expect_quarantine=*/true);
}

TEST(CheckpointCorruptionTest, FlippedByteQuarantinesWholeCut) {
  RunCorruptionCase(
      "flip",
      [](const fs::path& ckpt) {
        const fs::path member = FirstMember(ckpt);
        std::fstream f(member, std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(64);
        char c = 0;
        f.get(c);
        f.seekp(64);
        f.put(static_cast<char>(c ^ 0x20));
      },
      SnapshotErrorKind::kBadChecksum, /*expect_quarantine=*/true);
}

TEST(CheckpointCorruptionTest, StaleContainerVersionQuarantinesWholeCut) {
  RunCorruptionCase(
      "stale",
      [](const fs::path& ckpt) {
        // Rewrite one member with a bumped container version; the manifest
        // checksum is updated to match so the STALENESS (not the checksum)
        // is what the recovery must catch.
        const fs::path member = FirstMember(ckpt);
        std::ifstream in(member, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
        std::ofstream out(member, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.close();
        // Patch the manifest line for this member with the new checksum.
        const fs::path manifest = ckpt / "MANIFEST";
        std::ifstream min(manifest);
        std::string text((std::istreambuf_iterator<char>(min)),
                         std::istreambuf_iterator<char>());
        min.close();
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(Fnv64(bytes)));
        const std::string name = member.filename().string();
        // Member file names are "<member>.<gen>.ckpt"; manifest lines are
        // "member <name> <gen> <f|d> <bytes> <fnv64-hex>".  Patch only the
        // line for this member at this generation, keeping its chain kind.
        std::string stem = name.substr(0, name.rfind('.'));  // drop .ckpt
        const std::string gen = stem.substr(stem.rfind('.') + 1);
        const std::string member_name = stem.substr(0, stem.rfind('.'));
        std::string patched;
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
          std::istringstream tok(line);
          std::string tag, lname, lgen, lkind;
          if ((tok >> tag >> lname >> lgen >> lkind) && tag == "member" &&
              lname == member_name && lgen == gen) {
            patched += "member " + member_name + " " + gen + " " + lkind +
                       " " + std::to_string(bytes.size()) + " " + hex + "\n";
          } else {
            patched += line + "\n";
          }
        }
        std::ofstream mout(manifest, std::ios::trunc);
        mout << patched;
      },
      SnapshotErrorKind::kStaleVersion, /*expect_quarantine=*/true);
}

TEST(CheckpointCorruptionTest, ManifestChecksumMismatchQuarantinesWholeCut) {
  RunCorruptionCase(
      "manifest",
      [](const fs::path& ckpt) {
        // Corrupt the manifest's recorded checksum instead of the member.
        const fs::path manifest = ckpt / "MANIFEST";
        std::ifstream in(manifest);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        // Flip the last hex digit of the final member line.
        const std::size_t pos = text.rfind("member ");
        ASSERT_NE(pos, std::string::npos);
        const std::size_t digit = text.find('\n', pos) - 1;
        text[digit] = text[digit] == '0' ? '1' : '0';
        std::ofstream out(manifest, std::ios::trunc);
        out << text;
      },
      SnapshotErrorKind::kBadChecksum, /*expect_quarantine=*/true);
}

TEST(CheckpointCorruptionTest, GarbageManifestQuarantinesWholeCut) {
  RunCorruptionCase(
      "garbage",
      [](const fs::path& ckpt) {
        std::ofstream out(ckpt / "MANIFEST", std::ios::trunc);
        out << "not a manifest at all\n";
      },
      SnapshotErrorKind::kBadMagic, /*expect_quarantine=*/true);
}

TEST(CheckpointCorruptionTest, UnreadableMemberUnderInjectedIoErrorQuarantines) {
  // The store cannot tell a rotted member from an unreadable one, and must
  // not try: a persistent injected EIO on every .ckpt read makes the whole
  // cut quarantine as kIo, and the service then completes from a fresh
  // start with byte-identical outputs.
  Scratch scratch("ioerr");
  SpoolThreeTenants(scratch);
  const auto expected = StraightThroughTree(scratch, "ref");

  ServeConfig config = ConfigFor(scratch, "ioerr");
  // The default checkpoint dir is named "<tag>.ckpt", which the .ckpt path
  // filter below would match for EVERY file in the store (MANIFEST
  // included); keep the filter on member files only.
  config.checkpoint_dir = scratch.Out("ioerr.store");
  config.stop_after_commits = 2;
  {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_FALSE(outcome->finished);
  }

  FsFaultConfig schedule;
  FsFaultWindow window;
  window.first_op = 1;
  window.ops = 0;  // persistent
  window.err = EIO;
  window.path_contains = ".ckpt";  // only the member reads; MANIFEST parses fine
  schedule.windows.push_back(window);
  FaultInjectingFs faulty(&SystemFs(), schedule);
  CheckpointStore store(config.checkpoint_dir, &faulty);
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.has_value()) << recovered.error().Describe();
  ASSERT_FALSE(recovered->quarantined.empty());
  EXPECT_TRUE(recovered->members.empty())
      << "an unreadable member must invalidate the whole cut";
  bool io_kind_seen = false;
  for (const auto& [path, error] : recovered->quarantined) {
    if (error.kind == SnapshotErrorKind::kIo) {
      io_kind_seen = true;
    }
  }
  EXPECT_TRUE(io_kind_seen) << "expected a kIo quarantine record";

  // The quarantine renamed the cut aside through the (faulty) fs; resuming
  // with a healthy one must fresh-start and finish byte-identical.
  config.stop_after_commits = -1;
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  ASSERT_TRUE(outcome.has_value()) << outcome.error().Describe();
  ASSERT_TRUE(outcome->finished);
  EXPECT_EQ(outcome->tenants_resumed, 0u);
  ExpectSameTree(expected, SlurpDir(config.out_dir), "ioerr");
}

TEST(CheckpointCorruptionTest, RandomizedMemberFuzzNeverCrashes) {
  // Deterministic fuzz: flip one byte at a spread of offsets across a real
  // member file.  Every variant must recover-with-quarantine or
  // recover-as-empty — never abort, never resume damaged state.
  Scratch scratch("fuzz");
  SpoolTenant(scratch, "solo.trace", 5);
  ServeConfig config = ConfigFor(scratch, "fuzz");
  config.stop_after_commits = 1;
  {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
  }
  const fs::path ckpt(config.checkpoint_dir);
  const fs::path member = FirstMember(ckpt);
  std::ifstream in(member, std::ios::binary);
  const std::string pristine((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  const fs::path manifest = ckpt / "MANIFEST";
  std::ifstream min(manifest, std::ios::binary);
  const std::string manifest_pristine((std::istreambuf_iterator<char>(min)),
                                      std::istreambuf_iterator<char>());
  min.close();

  for (std::size_t step = 0; step < 64; ++step) {
    const std::size_t at = (pristine.size() * step) / 64;
    std::string bent = pristine;
    bent[at] = static_cast<char>(bent[at] ^ (1u << (step % 8)));
    {
      std::ofstream out(member, std::ios::binary | std::ios::trunc);
      out.write(bent.data(), static_cast<std::streamsize>(bent.size()));
    }
    CheckpointStore store(ckpt.string());
    auto recovered = store.Recover();
    ASSERT_TRUE(recovered.has_value()) << "offset " << at;
    if (recovered->quarantined.empty()) {
      // The flip landed on a byte the container does not cover only if it
      // produced an identical file — impossible for a real flip.
      ADD_FAILURE() << "flip at " << at << " went undetected";
    }
    // Restore the pristine cut (quarantine renamed the files aside).
    {
      std::ofstream out(member, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(pristine.size()));
      std::ofstream mout(manifest, std::ios::binary | std::ios::trunc);
      mout.write(manifest_pristine.data(),
                 static_cast<std::streamsize>(manifest_pristine.size()));
    }
    for (const auto& entry : fs::directory_iterator(ckpt)) {
      if (entry.path().extension() == ".quarantine") {
        fs::remove(entry.path());
      }
    }
  }
}

TEST(DeltaCheckpointCorruptionTest, BitFlipInAnyChainMemberQuarantinesWholeChain) {
  // Flip one byte in EVERY member file of a mixed full+delta chain, one
  // cell per file (sharded over the SweepRunner).  A damaged link — head or
  // delta — must quarantine, and the restarted service must either fall
  // back to the last intact full cut (damage newer than the base) or fresh
  // start (the base itself damaged), finishing byte-identical either way.
  Scratch scratch("deltafuzz");
  SpoolThreeTenants(scratch);
  const auto expected = StraightThroughTree(scratch, "ref");

  // Killed after 4 commits at full_every=4 the store holds a full head plus
  // three delta links per live member — the deepest chain this config makes.
  auto kill_run = [&](const std::string& tag, ServeConfig* config) -> std::string {
    *config = ConfigFor(scratch, tag);
    config->checkpoint_full_every = 4;
    config->stop_after_commits = 4;
    ServiceLoop loop(ServeSpec(), *config);
    auto outcome = loop.Run();
    if (!outcome.has_value()) {
      return tag + ": kill run errored: " + outcome.error().Describe();
    }
    if (outcome->finished) {
      return tag + ": finished before the kill point; trace too short";
    }
    return std::string();
  };

  // Prototype run: the member layout is deterministic, so one run names the
  // fuzz cells for everyone.
  std::vector<std::string> files;
  {
    ServeConfig config;
    ASSERT_EQ(kill_run("dfproto", &config), std::string());
    for (const auto& entry : fs::directory_iterator(config.checkpoint_dir)) {
      if (entry.path().extension() == ".ckpt") {
        files.push_back(entry.path().filename().string());
      }
    }
    std::sort(files.begin(), files.end());
  }
  ASSERT_GE(files.size(), 5u) << "expected mixed full+delta chains to fuzz";

  SweepRunner runner(/*jobs=*/4);
  const std::vector<std::string> failures =
      runner.Run(files.size(), [&](std::size_t cell) -> std::string {
        const std::string tag = "dfz" + std::to_string(cell);
        ServeConfig config;
        if (std::string err = kill_run(tag, &config); !err.empty()) {
          return err;
        }
        const fs::path ckpt(config.checkpoint_dir);
        const fs::path victim = ckpt / files[cell];
        if (!fs::exists(victim)) {
          return tag + ": member layout not deterministic: " + files[cell];
        }
        // "<member>.<gen>.ckpt" names its generation; the manifest's base
        // line says which generation the store may fall back to.
        std::string stem = files[cell].substr(0, files[cell].rfind('.'));
        const std::uint64_t gen = std::stoull(stem.substr(stem.rfind('.') + 1));
        std::uint64_t base = 0;
        {
          std::ifstream min(ckpt / "MANIFEST");
          std::string line;
          while (std::getline(min, line)) {
            if (line.rfind("base ", 0) == 0) {
              base = std::stoull(line.substr(5));
            }
          }
        }
        if (base == 0) {
          return tag + ": manifest lacks a base line";
        }
        {
          std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
          const auto mid = static_cast<std::streamoff>(fs::file_size(victim) / 2);
          f.seekg(mid);
          char c = 0;
          f.get(c);
          f.seekp(mid);
          f.put(static_cast<char>(c ^ 0x40));
        }
        config.stop_after_commits = -1;
        bool first_resume = true;
        std::size_t resumed = 0;
        for (int attempt = 0; attempt < 4; ++attempt) {
          ServiceLoop loop(ServeSpec(), config);
          auto outcome = loop.Run();
          if (!outcome.has_value()) {
            return tag + ": resume errored: " + outcome.error().Describe();
          }
          if (first_resume && outcome->quarantined.empty()) {
            return tag + ": flip in " + files[cell] + " went unquarantined";
          }
          first_resume = false;
          resumed += outcome->tenants_resumed;
          if (outcome->finished) {
            if (gen > base && resumed == 0) {
              return tag + ": damage above the base must fall back to the "
                           "full cut, not fresh-start";
            }
            const auto actual = SlurpDir(config.out_dir);
            if (actual.size() != expected.size()) {
              return tag + ": output tree size differs";
            }
            for (const auto& [name, bytes] : expected) {
              auto it = actual.find(name);
              if (it == actual.end()) {
                return tag + ": missing output " + name;
              }
              if (it->second != bytes) {
                return tag + ": " + name + " differs after chain damage";
              }
            }
            return std::string();
          }
        }
        return tag + ": loop never finished";
      });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(CheckpointCorruptionTest, SecondIncidentUniquifiesQuarantineNames) {
  // Quarantine is evidence preservation: a second incident at the same
  // member must not clobber the first incident's *.quarantine file — the
  // rename uniquifies to *.quarantine.1 instead.
  Scratch scratch("twice");
  SpoolTenant(scratch, "solo.trace", 5);
  ServeConfig config = ConfigFor(scratch, "twice");
  config.stop_after_commits = 1;
  {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
  }
  const fs::path ckpt(config.checkpoint_dir);
  const auto pristine = SlurpDir(ckpt.string());
  const fs::path member = FirstMember(ckpt);
  const std::string member_name = member.filename().string();

  auto corrupt_member = [&](char mask) {
    std::string bent = pristine.at(member_name);
    bent[bent.size() / 2] = static_cast<char>(bent[bent.size() / 2] ^ mask);
    std::ofstream out(member, std::ios::binary | std::ios::trunc);
    out.write(bent.data(), static_cast<std::streamsize>(bent.size()));
    return bent;
  };
  auto restore_store = [&] {
    for (const auto& [name, bytes] : pristine) {
      std::ofstream out(ckpt / name, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
  };

  const std::string first_bent = corrupt_member(0x01);
  {
    CheckpointStore store(ckpt.string());
    auto recovered = store.Recover();
    ASSERT_TRUE(recovered.has_value()) << recovered.error().Describe();
    ASSERT_FALSE(recovered->quarantined.empty());
  }
  const fs::path q0(member.string() + ".quarantine");
  ASSERT_TRUE(fs::exists(q0)) << "first incident left no evidence";

  restore_store();
  const std::string second_bent = corrupt_member(0x02);
  {
    CheckpointStore store(ckpt.string());
    auto recovered = store.Recover();
    ASSERT_TRUE(recovered.has_value()) << recovered.error().Describe();
    ASSERT_FALSE(recovered->quarantined.empty());
  }
  const fs::path q1(member.string() + ".quarantine.1");
  ASSERT_TRUE(fs::exists(q1))
      << "second incident must uniquify, not clobber or drop";
  const auto evidence = SlurpDir(ckpt.string());
  EXPECT_EQ(evidence.at(member_name + ".quarantine"), first_bent)
      << "first incident's evidence was clobbered";
  EXPECT_EQ(evidence.at(member_name + ".quarantine.1"), second_bent);
}

// ---------------------------------------------------------------------------
// Store-level delta chain protocol.

TEST(CheckpointStoreDeltaTest, DeltaCommitAppendsChainAndRecoversIt) {
  Scratch scratch("storedelta");
  const std::string dir = scratch.Out("store");

  SectionedSnapshotWriter w1;
  w1.Begin("s")->U64(1);
  const SectionBaseline baseline = w1.Digest();
  SectionedSnapshotWriter w2;
  w2.Begin("s")->U64(2);

  CheckpointStore store(dir);
  {
    auto recovered = store.Recover();
    ASSERT_TRUE(recovered.has_value()) << recovered.error().Describe();
    EXPECT_EQ(recovered->generation, 0u);
  }
  store.Stage("m", w1.SealFull());
  ASSERT_TRUE(store.Commit(CutKind::kFull).has_value());
  store.StageDelta("m", w2.SealDelta(baseline));
  ASSERT_TRUE(store.Commit(CutKind::kDelta).has_value());
  EXPECT_EQ(store.generation(), 2u);
  EXPECT_EQ(store.base_generation(), 1u);

  CheckpointStore reopened(dir);
  auto recovered = reopened.Recover();
  ASSERT_TRUE(recovered.has_value()) << recovered.error().Describe();
  EXPECT_EQ(recovered->generation, 2u);
  EXPECT_EQ(recovered->base_generation, 1u);
  EXPECT_FALSE(recovered->fell_back);
  EXPECT_TRUE(recovered->quarantined.empty());
  ASSERT_EQ(recovered->members.count("m"), 1u);
  ASSERT_EQ(recovered->members.at("m").size(), 2u)
      << "the chain must come back full-head-first with its delta link";
  auto resolved = ResolveSectionChain(recovered->members.at("m"));
  ASSERT_TRUE(resolved.has_value()) << resolved.error().Describe();
  SectionSource src = std::move(resolved.value());
  SnapshotReader s = src.Open("s");
  EXPECT_EQ(s.U64(), 2u) << "the delta link's value must win";
  EXPECT_TRUE(src.Close(&s, "s"));
}

TEST(CheckpointStoreDeltaTest, MisusedDeltaStagingIsTypedAtCommit) {
  Scratch scratch("storemisuse");
  const std::string dir = scratch.Out("store");
  SectionedSnapshotWriter w;
  w.Begin("s")->U64(7);
  const std::string full = w.SealFull();

  CheckpointStore store(dir);
  ASSERT_TRUE(store.Recover().has_value());

  // kDelta before any committed base quietly promotes to a full cut — the
  // first commit of a process seeds the chains.
  store.Stage("m", full);
  ASSERT_TRUE(store.Commit(CutKind::kDelta).has_value());
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.base_generation(), 1u);

  // A delta link for a member with no committed chain is a typed error.
  store.Stage("m", full);
  store.StageDelta("ghost", full);
  {
    auto status = store.Commit(CutKind::kDelta);
    ASSERT_FALSE(status.has_value());
    EXPECT_EQ(status.error().kind, SnapshotErrorKind::kBadValue);
  }

  // A delta-staged member inside a FULL cut is a typed error too: a full
  // cut re-seals everything, a delta fragment has no base there.
  store.StageDelta("m", full);
  {
    auto status = store.Commit(CutKind::kFull);
    ASSERT_FALSE(status.has_value());
    EXPECT_EQ(status.error().kind, SnapshotErrorKind::kBadValue);
  }
}

TEST(CheckpointCorruptionDeathTest, CorruptStoreExitsCleanlyNotViaAbort) {
  // Pin the no-abort discipline with a real process boundary: recovering a
  // mangled store and then serving to completion must exit 0.
  Scratch scratch("death");
  SpoolTenant(scratch, "solo.trace", 9);
  ServeConfig config = ConfigFor(scratch, "death");
  config.stop_after_commits = 1;
  {
    ServiceLoop loop(ServeSpec(), config);
    auto outcome = loop.Run();
    ASSERT_TRUE(outcome.has_value());
  }
  const fs::path member = FirstMember(fs::path(config.checkpoint_dir));
  {
    std::ofstream out(member, std::ios::binary | std::ios::trunc);
    out << "garbage that is definitely not a sealed snapshot";
  }
  config.stop_after_commits = -1;
  EXPECT_EXIT(
      {
        ServiceLoop loop(ServeSpec(), config);
        auto outcome = loop.Run();
        const bool ok = outcome.has_value() && outcome->finished &&
                        !outcome->quarantined.empty();
        std::_Exit(ok ? 0 : 5);
      },
      ::testing::ExitedWithCode(0), "");
}

// ---------------------------------------------------------------------------
// Batch skip-and-report regression.

TEST(BatchSkipAndReportTest, MalformedTenantIsSkippedReportedAndChangesExitCode) {
  Scratch scratch("batch");
  SpoolThreeTenants(scratch);
  {
    std::ofstream bad(fs::path(scratch.Spool()) / "bad.trace");
    bad << "ref ok r\nthis line does not parse\n";
  }
  BatchOptions options;
  options.dir = scratch.Spool();
  options.jobs = 2;
  ::testing::internal::CaptureStdout();
  const int with_bad = RunBatch(ServeSpec(), options);
  const std::string stdout_text = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(with_bad, 3) << "rejected tenants must be distinguishable";
  EXPECT_NE(stdout_text.find("rejected (skipped)"), std::string::npos);
  EXPECT_NE(stdout_text.find("3 of 4 tenants ran, 1 rejected"), std::string::npos)
      << stdout_text;

  fs::remove(fs::path(scratch.Spool()) / "bad.trace");
  ::testing::internal::CaptureStdout();
  const int all_good = RunBatch(ServeSpec(), options);
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(all_good, 0) << "with every tenant loadable the exit code is 0";
}

TEST(BatchSkipAndReportTest, UnreadableTraceIsSkippedNotFatal) {
  Scratch scratch("batchdir");
  SpoolTenant(scratch, "good.trace", 3);
  fs::create_directories(fs::path(scratch.Spool()) / "subdir.trace");  // not a file
  {
    std::ofstream empty(fs::path(scratch.Spool()) / "empty.trace");
  }
  BatchOptions options;
  options.dir = scratch.Spool();
  options.jobs = 1;
  ::testing::internal::CaptureStdout();
  const int code = RunBatch(ServeSpec(), options);
  ::testing::internal::GetCapturedStdout();
  // The empty trace parses as zero references (valid); the directory entry
  // is not a regular file and is not a cell at all.
  EXPECT_EQ(code, 0);
}

TEST(ServeRejectionTest, MalformedSpoolFileIsRejectedOthersServe) {
  Scratch scratch("reject");
  SpoolThreeTenants(scratch);
  {
    std::ofstream bad(fs::path(scratch.Spool()) / "bad.trace");
    bad << "not a reference trace\n";
  }
  ServeConfig config = ConfigFor(scratch, "serve");
  ServiceLoop loop(ServeSpec(), config);
  auto outcome = loop.Run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->finished);
  EXPECT_EQ(outcome->tenants_completed, 3u);
  EXPECT_EQ(outcome->tenants_rejected, 1u);
  ASSERT_EQ(outcome->rejected.size(), 1u);
  EXPECT_NE(outcome->rejected[0].find("bad.trace"), std::string::npos);
  EXPECT_NE(outcome->rejected[0].find("line 1"), std::string::npos);
}

TEST(ServeRejectionTest, NonPagedLinearSpecIsATypedError) {
  Scratch scratch("family");
  SpoolTenant(scratch, "solo.trace", 1);
  SystemSpec spec = ServeSpec();
  spec.characteristics.name_space = NameSpaceKind::kSymbolicallySegmented;
  spec.characteristics.unit = AllocationUnit::kVariableBlocks;
  ServeConfig config = ConfigFor(scratch, "family");
  ServiceLoop loop(spec, config);
  auto outcome = loop.Run();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, SnapshotErrorKind::kBadValue);
}

}  // namespace
}  // namespace dsa
