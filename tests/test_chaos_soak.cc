// Chaos soak harness: a deterministic seed matrix crossing overload degrees
// x storage-fault schedules x scheduler/load-control configurations.  Every
// run's event stream is replayed through the TraceReplayVerifier (frame
// conservation, transfer pairing, and the load-control rule: a deactivated
// job holds zero frames until reactivated), and checked for liveness — no
// lost or starved job, every reference retired.  Each cell is then re-run
// from the same seeds and must replay bit-identically.
//
// The matrix is 3 configs x 4 fault schedules x 3 degrees = 36 runs (the
// acceptance floor is 32).  DSA_SOAK_FULL=1 lengthens every job trace for
// overnight soaking; the default sizing keeps the suite in CI range.  A
// concurrent-lanes axis additionally packages the config x fault cells as
// job groups over the multi-lane executor (shared lock-free heap) at lanes
// 1, 2, and 4, pinning byte-equality and verifier-cleanliness under chaos.
//
// The 36 cells are independent (each owns its simulator, tracer, and seed
// stream), so they run sharded over the SweepRunner — DSA_JOBS workers,
// defaulting to the hardware width; every gtest assertion happens after the
// sweep, on index-ordered results, so the pass/fail report is identical at
// any worker count.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/sched/multi_lane.h"
#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

constexpr std::size_t kFrames = 8;  // 2048-word core, 256-word pages

std::size_t JobLength() {
  return std::getenv("DSA_SOAK_FULL") != nullptr ? 20000 : 2500;
}

struct ControlCase {
  const char* name;
  SchedulerKind scheduler;
  LoadControlPolicy policy;
  std::size_t fixed_cap;  // only for kFixed
};

const ControlCase kControls[] = {
    {"rr-adaptive", SchedulerKind::kRoundRobin, LoadControlPolicy::kAdaptiveFaultRate, 0},
    {"ra-working-set", SchedulerKind::kResidencyAware,
     LoadControlPolicy::kWorkingSetAdmission, 0},
    {"rr-fixed-2", SchedulerKind::kRoundRobin, LoadControlPolicy::kFixed, 2},
};

struct FaultCase {
  const char* name;
  FaultRates rates;
};

const FaultCase kFaults[] = {
    {"clean", {}},
    {"transient", {.transient_transfer = 0.08}},
    {"bad-sectors", {.permanent_slot = 0.02}},
    {"mixed", {.transient_transfer = 0.03, .permanent_slot = 0.005, .frame_failure = 2e-4}},
};

const std::size_t kDegrees[] = {4, 8, 12};

MultiprogramConfig SoakConfig(const ControlCase& control, const FaultCase& faults,
                              std::uint64_t seed, EventTracer* tracer) {
  MultiprogramConfig config;
  config.core_words = kFrames * 256;
  config.page_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                       /*rotational_delay=*/2000);
  config.quantum = 800;
  config.context_switch_cycles = 10;
  config.scheduler = control.scheduler;
  config.load_control.policy = control.policy;
  if (control.policy == LoadControlPolicy::kFixed) {
    config.load_control.max_active = control.fixed_cap;
  } else if (control.policy == LoadControlPolicy::kAdaptiveFaultRate) {
    config.load_control.window = 20000;
    config.load_control.min_window_references = 32;
    config.load_control.high_fault_rate = 0.05;
    config.load_control.low_fault_rate = 0.02;
    config.load_control.hysteresis = 5000;
  } else {
    config.load_control.working_set_tau = 4000;
    config.load_control.hysteresis = 2000;
  }
  config.fault_injection.rates = faults.rates;
  config.fault_injection.seed = seed;
  config.tracer = tracer;
  return config;
}

// One matrix cell: run, capture, return (events, report).  Job traces and
// the fault schedule are pure functions of `seed`, so calling this twice
// with the same arguments must produce identical streams.
struct SoakOutcome {
  std::vector<TraceEvent> events;
  MultiprogramReport report;
};

SoakOutcome RunCell(const ControlCase& control, const FaultCase& faults,
                    std::size_t degree, std::uint64_t seed) {
  EventTracer tracer(/*capacity=*/0);
  MultiprogrammingSimulator sim(SoakConfig(control, faults, seed, &tracer));
  for (std::size_t j = 0; j < degree; ++j) {
    LoopTraceParams params;
    params.extent = 2048;
    params.body_words = 512;
    params.advance_words = 256;
    params.iterations = 3;
    params.length = JobLength();
    params.seed = seed * 1000003 + j;  // per-job stream, still seed-pure
    sim.AddJob("soak-" + std::to_string(j), MakeLoopTrace(params));
  }
  SoakOutcome outcome;
  outcome.report = sim.Run();
  outcome.events = tracer.Snapshot();
  return outcome;
}

// The flattened matrix: cell index -> (control, fault schedule, degree,
// seed).  The seed formula matches the historical serial loop (cells are
// numbered in the same nesting order), so the matrix's fault schedules are
// unchanged by the parallel port.
struct MatrixCell {
  const ControlCase* control;
  const FaultCase* faults;
  std::size_t degree;
  std::uint64_t seed;
  std::string name;
};

std::vector<MatrixCell> MatrixCells() {
  std::vector<MatrixCell> cells;
  std::size_t index = 0;
  for (const ControlCase& control : kControls) {
    for (const FaultCase& faults : kFaults) {
      for (const std::size_t degree : kDegrees) {
        MatrixCell cell;
        cell.control = &control;
        cell.faults = &faults;
        cell.degree = degree;
        cell.seed = 0x50a4u ^ (index * 0x9e3779b9u);
        cell.name = std::string(control.name) + "/" + faults.name + "/degree-" +
                    std::to_string(degree);
        cells.push_back(std::move(cell));
        ++index;
      }
    }
  }
  return cells;
}

TEST(ChaosSoakTest, MatrixSurvivesVerifierAndReplay) {
  const std::vector<MatrixCell> cells = MatrixCells();

  // Run every cell twice (capture + reseeded replay) across the sweep
  // executor; assertions run afterwards on the index-ordered slots so the
  // gtest report never depends on scheduling.
  struct CellOutcome {
    SoakOutcome first;
    SoakOutcome second;
  };
  SweepRunner runner(JobsFromEnv(/*fallback=*/HardwareJobs()));
  const std::vector<CellOutcome> outcomes =
      runner.Run(cells.size(), [&](std::size_t i) {
        const MatrixCell& cell = cells[i];
        CellOutcome outcome;
        outcome.first = RunCell(*cell.control, *cell.faults, cell.degree, cell.seed);
        outcome.second = RunCell(*cell.control, *cell.faults, cell.degree, cell.seed);
        return outcome;
      });

  std::size_t runs = 0;
  std::uint64_t injected_events = 0;  // across every non-clean schedule
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& cell = cells[i];
    const SoakOutcome& first = outcomes[i].first;
    SCOPED_TRACE(cell.name);
    ++runs;

    // Structural invariants, replayed from the event stream alone.
    TraceVerifierConfig verifier_config;
    verifier_config.frame_count = kFrames;
    verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
    const auto violations = TraceReplayVerifier(verifier_config).Verify(first.events);
    EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);

    // Liveness: every job retires every reference and finishes; nothing
    // stays swapped out.
    ASSERT_EQ(first.report.jobs.size(), cell.degree);
    for (const JobReport& job : first.report.jobs) {
      EXPECT_EQ(job.references, JobLength()) << job.label;
      EXPECT_GT(job.finish_time, 0u) << job.label;
      EXPECT_LE(job.blocked_cycles + job.queued_cycles, first.report.total_cycles)
          << job.label;
    }
    EXPECT_EQ(first.report.deactivations, first.report.reactivations);
    if (cell.faults->rates.Any()) {
      injected_events += first.report.reliability.transient_errors +
                         first.report.reliability.slot_failures +
                         first.report.reliability.frame_failures;
    } else {
      EXPECT_TRUE(first.report.reliability.Quiet());
    }

    // Determinism: the same seeds replay to the same stream, byte for
    // byte, and the same report counters.
    const SoakOutcome& second = outcomes[i].second;
    EXPECT_EQ(first.events, second.events);
    EXPECT_EQ(first.report.total_cycles, second.report.total_cycles);
    EXPECT_EQ(first.report.faults, second.report.faults);
    EXPECT_EQ(first.report.deactivations, second.report.deactivations);
  }
  EXPECT_GE(runs, 32u) << "the soak matrix shrank below the acceptance floor";
  // Guard against a silently inert injector: across the 27 non-clean cells
  // the fault schedules must actually have struck.
  EXPECT_GT(injected_events, 0u) << "no fault schedule produced a single event";
}

TEST(ChaosSoakTest, ConcurrentLanesSurviveFaultsAndStayByteIdentical) {
  // The concurrent-lanes axis: the same overload + fault-injection chaos,
  // but with the matrix's config cells packaged as job groups stepped
  // CONCURRENTLY over one shared lock-free heap.  Every lane width must
  // reproduce the lanes=1 bytes, every group stream must replay through the
  // verifier, and the shared heap must balance to zero after the run.
  std::vector<LaneGroupSpec> groups;
  std::size_t index = 0;
  for (const ControlCase& control : kControls) {
    for (const FaultCase& faults : kFaults) {
      LaneGroupSpec spec;
      spec.label = std::string(control.name) + "/" + faults.name;
      const std::uint64_t seed = 0xc0a4u ^ (index * 0x9e3779b9u);
      EventTracer* no_tracer = nullptr;
      spec.config = SoakConfig(control, faults, seed, no_tracer);
      const std::size_t degree = kDegrees[index % 3];
      for (std::size_t j = 0; j < degree; ++j) {
        LoopTraceParams params;
        params.extent = 2048;
        params.body_words = 512;
        params.advance_words = 256;
        params.iterations = 3;
        params.length = JobLength() / 2;
        params.seed = seed * 1000003 + j;
        spec.jobs.emplace_back("lane-soak-" + std::to_string(j),
                               MakeLoopTrace(params));
      }
      groups.push_back(std::move(spec));
      ++index;
    }
  }

  const MultiLaneOutcome reference =
      MultiLaneSimulator(MultiLaneConfig{.lanes = 1}, groups).Run();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SCOPED_TRACE(groups[g].label);
    TraceVerifierConfig verifier_config;
    verifier_config.frame_count = kFrames;
    verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
    const auto violations =
        TraceReplayVerifier(verifier_config).Verify(reference.groups[g].events);
    EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);
    EXPECT_EQ(reference.groups[g].blocks_acquired,
              reference.groups[g].blocks_released);
  }

  for (const unsigned lanes : {2u, 4u}) {
    const MultiLaneOutcome outcome =
        MultiLaneSimulator(MultiLaneConfig{.lanes = lanes}, groups).Run();
    ASSERT_EQ(outcome.groups.size(), reference.groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) + " " + groups[g].label);
      EXPECT_EQ(outcome.groups[g].events_jsonl, reference.groups[g].events_jsonl);
      EXPECT_EQ(outcome.groups[g].report.total_cycles,
                reference.groups[g].report.total_cycles);
      EXPECT_EQ(outcome.groups[g].report.faults, reference.groups[g].report.faults);
      EXPECT_EQ(outcome.groups[g].blocks_acquired,
                reference.groups[g].blocks_acquired);
    }
    EXPECT_EQ(outcome.merged_metrics_table, reference.merged_metrics_table);
    EXPECT_EQ(outcome.merged_events, reference.merged_events);
    EXPECT_EQ(outcome.heap_outstanding, 0u) << "lanes=" << lanes;
  }
}

TEST(ChaosSoakTest, OverloadEngagesTheController) {
  // At the top degree the adaptive cell must actually exercise the swap-out
  // path — otherwise the verifier's load-control rule is vacuous.
  const SoakOutcome outcome =
      RunCell(kControls[0], kFaults[0], /*degree=*/12, /*seed=*/0x50a4);
  EXPECT_GT(outcome.report.deactivations, 0u);
}

}  // namespace
}  // namespace dsa
