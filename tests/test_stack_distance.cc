// Tests for Mattson stack-distance analysis — including exact agreement
// with the simulated LRU pager at every memory size (the library's
// strongest internal cross-check).

#include <gtest/gtest.h>

#include <memory>

#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/paging/stack_distance.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

std::vector<PageId> Pages(std::initializer_list<std::uint64_t> values) {
  std::vector<PageId> refs;
  for (std::uint64_t v : values) {
    refs.push_back(PageId{v});
  }
  return refs;
}

std::uint64_t SimulatedLruFaults(const std::vector<PageId>& refs, std::size_t frames) {
  BackingStore backing(MakeDrumLevel("drum", 1u << 22, 0, 0));
  PagerConfig config;
  config.page_words = 1;
  config.frames = frames;
  Pager pager(config, &backing, nullptr,
              MakeReplacementPolicy(ReplacementStrategyKind::kLru),
              std::make_unique<DemandFetch>(), nullptr);
  Cycles now = 0;
  for (const PageId page : refs) {
    pager.Access(page, AccessKind::kRead, now++);
  }
  return pager.stats().faults;
}

TEST(StackDistanceTest, HandComputedDistances) {
  // String: a b c a b b c  -> distances: inf inf inf 3 3 1 3
  const auto profile = ComputeStackDistances(Pages({0, 1, 2, 0, 1, 1, 2}));
  EXPECT_EQ(profile.cold_references, 3u);
  EXPECT_EQ(profile.total_references, 7u);
  ASSERT_EQ(profile.distance_counts.size(), 3u);
  EXPECT_EQ(profile.distance_counts[0], 1u);  // distance 1: the repeated b
  EXPECT_EQ(profile.distance_counts[1], 0u);
  EXPECT_EQ(profile.distance_counts[2], 3u);  // distance 3: a, b, c re-touches
}

TEST(StackDistanceTest, FaultsAtMatchesByHand) {
  const auto profile = ComputeStackDistances(Pages({0, 1, 2, 0, 1, 1, 2}));
  EXPECT_EQ(profile.FaultsAt(1), 3u + 3u);  // only the distance-1 hit survives
  EXPECT_EQ(profile.FaultsAt(2), 3u + 3u);
  EXPECT_EQ(profile.FaultsAt(3), 3u);  // everything but cold misses hits
  EXPECT_EQ(profile.FaultsAt(10), 3u);
}

TEST(StackDistanceTest, FaultCurveMatchesFaultsAt) {
  WorkingSetTraceParams params;
  params.extent = 1 << 12;
  params.region_words = 64;
  params.regions_per_phase = 6;
  params.phases = 3;
  params.phase_length = 2000;
  const auto refs = MakeWorkingSetTrace(params).PageString(64);
  const auto profile = ComputeStackDistances(refs);
  const auto curve = profile.FaultCurve(64);
  for (std::size_t m = 1; m <= 64; ++m) {
    EXPECT_EQ(curve[m], profile.FaultsAt(m)) << "at " << m << " frames";
  }
}

TEST(StackDistanceTest, ExactAgreementWithSimulatedLru) {
  // The keystone check: analysis and simulation are two independent
  // implementations of LRU; they must produce identical fault counts at
  // every memory size, on every workload shape.
  std::vector<std::vector<PageId>> workloads;
  {
    WorkingSetTraceParams params;
    params.extent = 1 << 13;
    params.region_words = 128;
    params.regions_per_phase = 5;
    params.phases = 4;
    params.phase_length = 4000;
    workloads.push_back(MakeWorkingSetTrace(params).PageString(128));
  }
  {
    LoopTraceParams params;
    params.extent = 1 << 13;
    params.body_words = 2048;
    params.advance_words = 512;
    params.iterations = 4;
    params.length = 16000;
    workloads.push_back(MakeLoopTrace(params).PageString(128));
  }
  {
    RandomTraceParams params;
    params.extent = 1 << 12;
    params.length = 16000;
    workloads.push_back(MakeRandomTrace(params).PageString(128));
  }
  for (const auto& refs : workloads) {
    const auto profile = ComputeStackDistances(refs);
    for (const std::size_t frames : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      EXPECT_EQ(profile.FaultsAt(frames), SimulatedLruFaults(refs, frames))
          << frames << " frames";
    }
  }
}

TEST(StackDistanceTest, SequentialSweepIsAllColdThenAllDistanceN) {
  // 3 laps over 8 pages: lap 1 cold, laps 2-3 all at distance 8.
  std::vector<PageId> refs;
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      refs.push_back(PageId{p});
    }
  }
  const auto profile = ComputeStackDistances(refs);
  EXPECT_EQ(profile.cold_references, 8u);
  ASSERT_EQ(profile.distance_counts.size(), 8u);
  EXPECT_EQ(profile.distance_counts[7], 16u);
  // Classic cyclic result: with fewer than 8 frames LRU faults on everything.
  EXPECT_EQ(profile.FaultsAt(7), 24u);
  EXPECT_EQ(profile.FaultsAt(8), 8u);
}

TEST(StackDistanceTest, DistinctPagesEqualsColdMisses) {
  RandomTraceParams params;
  params.extent = 500;
  params.length = 20000;
  const auto refs = MakeRandomTrace(params).PageString(1);
  const auto profile = ComputeStackDistances(refs);
  EXPECT_EQ(profile.DistinctPages(), 500u);  // all 500 names drawn at this length
}

}  // namespace
}  // namespace dsa
