// Integration tests for the multiprogramming simulator.

#include <gtest/gtest.h>

#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

MultiprogramConfig SmallConfig() {
  MultiprogramConfig config;
  config.core_words = 4096;
  config.page_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                       /*rotational_delay=*/2000);
  config.quantum = 1000;
  config.context_switch_cycles = 10;
  return config;
}

ReferenceTrace SmallJob(std::uint64_t seed) {
  LoopTraceParams params;
  params.extent = 2048;
  params.body_words = 512;
  params.advance_words = 256;
  params.iterations = 3;
  params.length = 5000;
  params.seed = seed;
  return MakeLoopTrace(params);
}

TEST(MultiprogrammingTest, SingleJobRunsToCompletion) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("solo", SmallJob(1));
  const MultiprogramReport report = sim.Run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].references, 5000u);
  EXPECT_GT(report.jobs[0].faults, 0u);
  EXPECT_GT(report.total_cycles, 5000u);
}

TEST(MultiprogrammingTest, SoloJobIdlesThroughPageWaits) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("solo", SmallJob(1));
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.cpu_idle_cycles, 0u) << "with one job every page wait idles the CPU";
  EXPECT_LT(report.CpuUtilization(), 1.0);
}

TEST(MultiprogrammingTest, SecondJobOverlapsPageWaits) {
  MultiprogrammingSimulator one(SmallConfig());
  one.AddJob("a", SmallJob(1));
  const MultiprogramReport solo = one.Run();

  MultiprogrammingSimulator two(SmallConfig());
  two.AddJob("a", SmallJob(1));
  two.AddJob("b", SmallJob(2));
  const MultiprogramReport pair = two.Run();

  EXPECT_GT(pair.CpuUtilization(), solo.CpuUtilization());
  EXPECT_GT(pair.Throughput(), solo.Throughput() * 1.2);
}

TEST(MultiprogrammingTest, EveryReferenceRetiredAtAnyDegree) {
  for (std::size_t degree = 1; degree <= 4; ++degree) {
    MultiprogrammingSimulator sim(SmallConfig());
    for (std::size_t j = 0; j < degree; ++j) {
      sim.AddJob("job", SmallJob(j + 1));
    }
    const MultiprogramReport report = sim.Run();
    for (const JobReport& job : report.jobs) {
      EXPECT_EQ(job.references, 5000u) << "degree " << degree;
      EXPECT_GT(job.finish_time, 0u);
    }
  }
}

TEST(MultiprogrammingTest, SpaceTimeSplitsActiveAndBlocked) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_GT(job.space_time.active, 0.0);
    EXPECT_GT(job.space_time.waiting, 0.0);
    EXPECT_GT(job.blocked_cycles, 0u);
  }
  EXPECT_GT(report.TotalSpaceTime(), 0.0);
}

TEST(MultiprogrammingTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    MultiprogrammingSimulator sim(SmallConfig());
    sim.AddJob("a", SmallJob(1));
    sim.AddJob("b", SmallJob(2));
    return sim.Run();
  };
  const MultiprogramReport first = run_once();
  const MultiprogramReport second = run_once();
  EXPECT_EQ(first.total_cycles, second.total_cycles);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.cpu_busy_cycles, second.cpu_busy_cycles);
}

TEST(MultiprogrammingTest, ContextSwitchCostsAccounted) {
  MultiprogramConfig config = SmallConfig();
  config.context_switch_cycles = 100;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.context_switch_cycles, 0u);
  EXPECT_EQ(report.context_switch_cycles % 100, 0u);
}

TEST(MultiprogrammingTest, CoreContentionRaisesFaults) {
  // Jobs that fit alone but not together must fault more when packed.
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // 8 frames; each job's loop body spans 2-3 pages
  MultiprogrammingSimulator one(config);
  one.AddJob("a", SmallJob(1));
  const std::uint64_t solo_faults = one.Run().faults;

  MultiprogrammingSimulator four(config);
  for (int j = 0; j < 4; ++j) {
    four.AddJob("j", SmallJob(static_cast<std::uint64_t>(j) + 1));
  }
  const MultiprogramReport packed = four.Run();
  EXPECT_GT(packed.faults, 4 * solo_faults);
}

TEST(MultiprogrammingTest, LoadControlCapsActiveJobs) {
  // With max_active=1 the jobs run strictly one after another: each job's
  // faults equal its solo faults, and total faults equal degree x solo.
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // tight: interleaving would thrash
  MultiprogrammingSimulator solo(config);
  solo.AddJob("solo", SmallJob(1));
  const std::uint64_t solo_faults = solo.Run().faults;

  MultiprogramConfig serial_config = config;
  serial_config.max_active = 1;
  MultiprogrammingSimulator serial(serial_config);
  for (int j = 0; j < 4; ++j) {
    serial.AddJob("job", SmallJob(1));  // identical jobs
  }
  const MultiprogramReport report = serial.Run();
  EXPECT_EQ(report.faults, 4 * solo_faults);
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
}

TEST(MultiprogrammingTest, LoadControlBeatsThrashingUnderPressure) {
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;
  MultiprogrammingSimulator packed(config);
  MultiprogramConfig controlled_config = config;
  controlled_config.max_active = 1;
  MultiprogrammingSimulator controlled(controlled_config);
  for (std::size_t j = 0; j < 4; ++j) {
    packed.AddJob("job", SmallJob(j + 1));
    controlled.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport thrashing = packed.Run();
  const MultiprogramReport calm = controlled.Run();
  EXPECT_LT(calm.faults, thrashing.faults);
  EXPECT_LT(calm.total_cycles, thrashing.total_cycles);
}

TEST(MultiprogrammingTest, ResidencyAwareSchedulerRunsToCompletion) {
  MultiprogramConfig config = SmallConfig();
  config.scheduler = SchedulerKind::kResidencyAware;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
}

TEST(MultiprogrammingDeathTest, EmptyRunAborts) {
  MultiprogrammingSimulator sim(SmallConfig());
  EXPECT_DEATH(sim.Run(), "nothing to run");
}

}  // namespace
}  // namespace dsa
