// Integration tests for the multiprogramming simulator.

#include <gtest/gtest.h>

#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace dsa {
namespace {

MultiprogramConfig SmallConfig() {
  MultiprogramConfig config;
  config.core_words = 4096;
  config.page_words = 256;
  config.backing_level = MakeDrumLevel("drum", 1u << 16, /*word_time=*/2,
                                       /*rotational_delay=*/2000);
  config.quantum = 1000;
  config.context_switch_cycles = 10;
  return config;
}

ReferenceTrace SmallJob(std::uint64_t seed) {
  LoopTraceParams params;
  params.extent = 2048;
  params.body_words = 512;
  params.advance_words = 256;
  params.iterations = 3;
  params.length = 5000;
  params.seed = seed;
  return MakeLoopTrace(params);
}

TEST(MultiprogrammingTest, SingleJobRunsToCompletion) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("solo", SmallJob(1));
  const MultiprogramReport report = sim.Run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].references, 5000u);
  EXPECT_GT(report.jobs[0].faults, 0u);
  EXPECT_GT(report.total_cycles, 5000u);
}

TEST(MultiprogrammingTest, SoloJobIdlesThroughPageWaits) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("solo", SmallJob(1));
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.cpu_idle_cycles, 0u) << "with one job every page wait idles the CPU";
  EXPECT_LT(report.CpuUtilization(), 1.0);
}

TEST(MultiprogrammingTest, SecondJobOverlapsPageWaits) {
  MultiprogrammingSimulator one(SmallConfig());
  one.AddJob("a", SmallJob(1));
  const MultiprogramReport solo = one.Run();

  MultiprogrammingSimulator two(SmallConfig());
  two.AddJob("a", SmallJob(1));
  two.AddJob("b", SmallJob(2));
  const MultiprogramReport pair = two.Run();

  EXPECT_GT(pair.CpuUtilization(), solo.CpuUtilization());
  EXPECT_GT(pair.Throughput(), solo.Throughput() * 1.2);
}

TEST(MultiprogrammingTest, EveryReferenceRetiredAtAnyDegree) {
  for (std::size_t degree = 1; degree <= 4; ++degree) {
    MultiprogrammingSimulator sim(SmallConfig());
    for (std::size_t j = 0; j < degree; ++j) {
      sim.AddJob("job", SmallJob(j + 1));
    }
    const MultiprogramReport report = sim.Run();
    for (const JobReport& job : report.jobs) {
      EXPECT_EQ(job.references, 5000u) << "degree " << degree;
      EXPECT_GT(job.finish_time, 0u);
    }
  }
}

TEST(MultiprogrammingTest, SpaceTimeSplitsActiveAndBlocked) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_GT(job.space_time.active, 0.0);
    EXPECT_GT(job.space_time.waiting, 0.0);
    EXPECT_GT(job.blocked_cycles, 0u);
  }
  EXPECT_GT(report.TotalSpaceTime(), 0.0);
}

TEST(MultiprogrammingTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    MultiprogrammingSimulator sim(SmallConfig());
    sim.AddJob("a", SmallJob(1));
    sim.AddJob("b", SmallJob(2));
    return sim.Run();
  };
  const MultiprogramReport first = run_once();
  const MultiprogramReport second = run_once();
  EXPECT_EQ(first.total_cycles, second.total_cycles);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.cpu_busy_cycles, second.cpu_busy_cycles);
}

TEST(MultiprogrammingTest, ContextSwitchCostsAccounted) {
  MultiprogramConfig config = SmallConfig();
  config.context_switch_cycles = 100;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.context_switch_cycles, 0u);
  EXPECT_EQ(report.context_switch_cycles % 100, 0u);
}

TEST(MultiprogrammingTest, CoreContentionRaisesFaults) {
  // Jobs that fit alone but not together must fault more when packed.
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // 8 frames; each job's loop body spans 2-3 pages
  MultiprogrammingSimulator one(config);
  one.AddJob("a", SmallJob(1));
  const std::uint64_t solo_faults = one.Run().faults;

  MultiprogrammingSimulator four(config);
  for (int j = 0; j < 4; ++j) {
    four.AddJob("j", SmallJob(static_cast<std::uint64_t>(j) + 1));
  }
  const MultiprogramReport packed = four.Run();
  EXPECT_GT(packed.faults, 4 * solo_faults);
}

TEST(MultiprogrammingTest, LoadControlCapsActiveJobs) {
  // With max_active=1 the jobs run strictly one after another: each job's
  // faults equal its solo faults, and total faults equal degree x solo.
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // tight: interleaving would thrash
  MultiprogrammingSimulator solo(config);
  solo.AddJob("solo", SmallJob(1));
  const std::uint64_t solo_faults = solo.Run().faults;

  MultiprogramConfig serial_config = config;
  serial_config.max_active = 1;
  MultiprogrammingSimulator serial(serial_config);
  for (int j = 0; j < 4; ++j) {
    serial.AddJob("job", SmallJob(1));  // identical jobs
  }
  const MultiprogramReport report = serial.Run();
  EXPECT_EQ(report.faults, 4 * solo_faults);
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
}

TEST(MultiprogrammingTest, LoadControlBeatsThrashingUnderPressure) {
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;
  MultiprogrammingSimulator packed(config);
  MultiprogramConfig controlled_config = config;
  controlled_config.max_active = 1;
  MultiprogrammingSimulator controlled(controlled_config);
  for (std::size_t j = 0; j < 4; ++j) {
    packed.AddJob("job", SmallJob(j + 1));
    controlled.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport thrashing = packed.Run();
  const MultiprogramReport calm = controlled.Run();
  EXPECT_LT(calm.faults, thrashing.faults);
  EXPECT_LT(calm.total_cycles, thrashing.total_cycles);
}

TEST(MultiprogrammingTest, ResidencyAwareSchedulerRunsToCompletion) {
  MultiprogramConfig config = SmallConfig();
  config.scheduler = SchedulerKind::kResidencyAware;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
}

TEST(MultiprogrammingDeathTest, EmptyRunAborts) {
  MultiprogrammingSimulator sim(SmallConfig());
  EXPECT_DEATH(sim.Run(), "nothing to run");
}

TEST(MultiprogrammingDeathTest, RejectsDegenerateConfigs) {
  MultiprogramConfig zero_page = SmallConfig();
  zero_page.page_words = 0;
  EXPECT_DEATH(MultiprogrammingSimulator{zero_page}, "page_words");

  MultiprogramConfig tiny_core = SmallConfig();
  tiny_core.core_words = 128;  // below one 256-word page: zero frames
  EXPECT_DEATH(MultiprogrammingSimulator{tiny_core}, "zero frames");

  MultiprogramConfig zero_quantum = SmallConfig();
  zero_quantum.quantum = 0;
  EXPECT_DEATH(MultiprogrammingSimulator{zero_quantum}, "quantum");

  MultiprogramConfig zero_cpr = SmallConfig();
  zero_cpr.cycles_per_reference = 0;
  EXPECT_DEATH(MultiprogrammingSimulator{zero_cpr}, "cycles_per_reference");

  MultiprogramConfig disagree = SmallConfig();
  disagree.max_active = 2;
  disagree.load_control.max_active = 3;
  EXPECT_DEATH(MultiprogrammingSimulator{disagree}, "disagree");
}

TEST(MultiprogrammingDeathTest, CapAboveDegreeAborts) {
  MultiprogramConfig config = SmallConfig();
  config.max_active = 3;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  EXPECT_DEATH(sim.Run(), "exceeds the multiprogramming degree");
}

// ----------------------------------------------------- blocked-time split --

TEST(MultiprogrammingTest, BlockedCyclesSplitFaultVersusQueued) {
  MultiprogramConfig config = SmallConfig();
  config.max_active = 1;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    // blocked_cycles keeps its legacy fault-only meaning; queued time is a
    // separate counter, never folded in.
    EXPECT_GT(job.blocked_cycles, 0u) << job.label;
    EXPECT_LE(job.blocked_cycles + job.queued_cycles, report.total_cycles) << job.label;
  }
  // The second job waits its turn behind the serial cap; the first never
  // queues at all.
  EXPECT_EQ(report.jobs[0].queued_cycles, 0u);
  EXPECT_GT(report.jobs[1].queued_cycles, 0u);
}

TEST(MultiprogrammingTest, FixedCapBlockedCyclesMatchUngatedMeaning) {
  // The legacy static cap must report the same blocked_cycles as a truly
  // serial run of the same job: queueing behind the cap lands in
  // queued_cycles, never in the legacy fault-wait metric.
  MultiprogrammingSimulator solo(SmallConfig());
  solo.AddJob("solo", SmallJob(1));
  const MultiprogramReport alone = solo.Run();

  MultiprogramConfig capped = SmallConfig();
  capped.max_active = 1;
  MultiprogrammingSimulator serial(capped);
  serial.AddJob("a", SmallJob(1));
  serial.AddJob("b", SmallJob(1));
  const MultiprogramReport report = serial.Run();
  EXPECT_EQ(report.jobs[0].blocked_cycles, alone.jobs[0].blocked_cycles);
  EXPECT_EQ(report.jobs[1].blocked_cycles, alone.jobs[0].blocked_cycles);
}

TEST(MultiprogrammingTest, UngatedRunNeverQueues) {
  MultiprogrammingSimulator sim(SmallConfig());
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.queued_cycles, 0u);
    EXPECT_EQ(job.deactivations, 0u);
  }
  EXPECT_EQ(report.deactivations, 0u);
  EXPECT_EQ(report.controller_decisions, 0u);
}

// ------------------------------------------------- per-job fault injection --

TEST(MultiprogrammingTest, PerJobRetriesSumToPagerReliability) {
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // overcommitted: steady transfer traffic
  config.fault_injection.rates.transient_transfer = 0.2;
  config.fault_injection.seed = 17;
  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  sim.AddJob("c", SmallJob(3));
  sim.AddJob("d", SmallJob(4));
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.reliability.retries, 0u);
  std::uint64_t retries = 0;
  std::uint64_t relocations = 0;
  for (const JobReport& job : report.jobs) {
    retries += job.retries;
    relocations += job.relocations;
  }
  EXPECT_EQ(retries, report.reliability.retries);
  EXPECT_EQ(relocations,
            report.reliability.relocations + report.reliability.spill_relocations);
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);  // retries never lose work
  }
  EXPECT_GT(retries, 0u) << "at least one job must have seen a retry";
}

// -------------------------------------------------- adaptive load control --

MultiprogramConfig AdaptiveConfig() {
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // 8 frames: four 2-3 page jobs thrash
  config.load_control.policy = LoadControlPolicy::kAdaptiveFaultRate;
  config.load_control.window = 20000;
  config.load_control.min_window_references = 32;
  config.load_control.high_fault_rate = 0.05;
  config.load_control.low_fault_rate = 0.02;
  config.load_control.hysteresis = 5000;
  return config;
}

TEST(MultiprogrammingTest, AdaptiveControllerShedsAndRecovers) {
  MultiprogrammingSimulator sim(AdaptiveConfig());
  for (std::size_t j = 0; j < 4; ++j) {
    sim.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport report = sim.Run();
  EXPECT_GT(report.deactivations, 0u) << "overload must trigger swap-outs";
  EXPECT_EQ(report.deactivations, report.reactivations)
      << "every shed job is eventually readmitted and finishes";
  EXPECT_GT(report.controller_decisions, 0u);
  std::uint64_t per_job = 0;
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
    per_job += job.deactivations;
  }
  EXPECT_EQ(per_job, report.deactivations);
}

TEST(MultiprogrammingTest, AdaptiveControllerCutsFaultsUnderOverload) {
  MultiprogramConfig uncontrolled = SmallConfig();
  uncontrolled.core_words = 2048;
  MultiprogrammingSimulator packed(uncontrolled);
  MultiprogrammingSimulator adaptive(AdaptiveConfig());
  for (std::size_t j = 0; j < 4; ++j) {
    packed.AddJob("job", SmallJob(j + 1));
    adaptive.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport thrashing = packed.Run();
  const MultiprogramReport controlled = adaptive.Run();
  EXPECT_LT(controlled.faults, thrashing.faults);
}

TEST(MultiprogrammingTest, AdaptiveTracePassesLoadControlVerifier) {
  EventTracer tracer(/*capacity=*/0);
  MultiprogramConfig config = AdaptiveConfig();
  config.tracer = &tracer;
  MultiprogrammingSimulator sim(config);
  for (std::size_t j = 0; j < 4; ++j) {
    sim.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport report = sim.Run();
  ASSERT_GT(report.deactivations, 0u);

  TraceVerifierConfig verifier_config;
  verifier_config.frame_count = 8;
  verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
  const auto violations = TraceReplayVerifier(verifier_config).Verify(tracer.Snapshot());
  EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);

  std::uint64_t deactivate_events = 0;
  std::uint64_t decision_events = 0;
  for (const TraceEvent& event : tracer.Snapshot()) {
    deactivate_events += event.kind == EventKind::kJobDeactivate;
    decision_events += event.kind == EventKind::kLoadControl;
  }
  EXPECT_EQ(deactivate_events, report.deactivations);
  EXPECT_EQ(decision_events, report.controller_decisions);
}

TEST(MultiprogrammingTest, WorkingSetAdmissionCompletesAndVerifies) {
  EventTracer tracer(/*capacity=*/0);
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;
  config.load_control.policy = LoadControlPolicy::kWorkingSetAdmission;
  config.load_control.working_set_tau = 4000;
  config.load_control.hysteresis = 2000;
  config.tracer = &tracer;
  MultiprogrammingSimulator sim(config);
  for (std::size_t j = 0; j < 4; ++j) {
    sim.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
  TraceVerifierConfig verifier_config;
  verifier_config.frame_count = 8;
  verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
  const auto violations = TraceReplayVerifier(verifier_config).Verify(tracer.Snapshot());
  EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);
}

TEST(MultiprogrammingTest, ShedNeverPicksAJobBlockedOnItsFinalReference) {
  // Regression: a job that faults on its *final* reference is completing,
  // not thrashing.  The victim scan used to consider it (it often has
  // minimal residency); deactivating it collided with the post-slice
  // completion check, counting the job done twice, so the run loop could
  // exit with other jobs unfinished.
  // The timing that exposes it: the detector window (512) is shorter than a
  // drum wait (~2500 cycles), so the window empties while the long job
  // blocks and admission re-opens; the admitted one-shot's own reference is
  // then the only one in the window (min_window_references = 1), making the
  // fault rate instantly hot, and the short shed hysteresis lets the shed
  // fire at that very fault — with the one-shot itself, holding one fresh
  // page against the long job's several, as the minimal-residency victim.
  MultiprogramConfig config = SmallConfig();
  config.core_words = 2048;  // 8 frames
  config.load_control.policy = LoadControlPolicy::kAdaptiveFaultRate;
  config.load_control.window = 512;
  config.load_control.min_window_references = 1;
  config.load_control.high_fault_rate = 0.02;
  config.load_control.low_fault_rate = 0.01;
  config.load_control.hysteresis = 50;
  config.load_control.shed_hysteresis = 5;
  MultiprogrammingSimulator sim(config);
  // One long job keeps the system under load; single-reference jobs fault
  // cold on their only (and final) reference.
  sim.AddJob("long", SmallJob(1));
  for (std::uint64_t j = 0; j < 3; ++j) {
    ReferenceTrace trace;
    trace.label = "one-shot";
    trace.refs.push_back(Reference{Name{j * 256}, AccessKind::kRead});
    sim.AddJob(trace.label, std::move(trace));
  }
  const MultiprogramReport report = sim.Run();
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_EQ(report.jobs[0].references, 5000u) << "long job lost work";
  for (std::size_t j = 1; j < report.jobs.size(); ++j) {
    EXPECT_EQ(report.jobs[j].references, 1u) << "one-shot " << j;
    EXPECT_GT(report.jobs[j].finish_time, 0u);
  }
  EXPECT_GT(report.deactivations, 0u) << "the scenario must actually shed";
  EXPECT_EQ(report.deactivations, report.reactivations);
}

TEST(MultiprogrammingTest, AdaptiveRunIsDeterministic) {
  auto run_once = [] {
    EventTracer tracer(/*capacity=*/0);
    MultiprogramConfig config = AdaptiveConfig();
    config.tracer = &tracer;
    MultiprogrammingSimulator sim(config);
    for (std::size_t j = 0; j < 4; ++j) {
      sim.AddJob("job", SmallJob(j + 1));
    }
    sim.Run();
    return tracer.Snapshot();
  };
  EXPECT_EQ(run_once(), run_once()) << "event streams must replay bit-identically";
}

// ------------------------------------------------ residency-aware coverage --

TEST(MultiprogrammingTest, ResidencyAwareMatchesRoundRobinForOneJob) {
  // With a single job there is nothing to prefer: both schedulers must make
  // identical decisions, cycle for cycle.
  auto run_with = [](SchedulerKind kind) {
    MultiprogramConfig config = SmallConfig();
    config.scheduler = kind;
    MultiprogrammingSimulator sim(config);
    sim.AddJob("solo", SmallJob(1));
    return sim.Run();
  };
  const MultiprogramReport rr = run_with(SchedulerKind::kRoundRobin);
  const MultiprogramReport ra = run_with(SchedulerKind::kResidencyAware);
  EXPECT_EQ(rr.faults, ra.faults);
  EXPECT_EQ(rr.total_cycles, ra.total_cycles);
  EXPECT_EQ(rr.cpu_busy_cycles, ra.cpu_busy_cycles);
}

TEST(MultiprogrammingTest, ResidencyAwareIsDeterministic) {
  auto run_once = [] {
    MultiprogramConfig config = SmallConfig();
    config.scheduler = SchedulerKind::kResidencyAware;
    MultiprogrammingSimulator sim(config);
    sim.AddJob("a", SmallJob(1));
    sim.AddJob("b", SmallJob(2));
    sim.AddJob("c", SmallJob(3));
    return sim.Run();
  };
  const MultiprogramReport first = run_once();
  const MultiprogramReport second = run_once();
  EXPECT_EQ(first.total_cycles, second.total_cycles);
  EXPECT_EQ(first.faults, second.faults);
  for (std::size_t j = 0; j < first.jobs.size(); ++j) {
    EXPECT_EQ(first.jobs[j].finish_time, second.jobs[j].finish_time);
  }
}

TEST(MultiprogrammingTest, ResidencyAwareTracePassesVerifier) {
  EventTracer tracer(/*capacity=*/0);
  MultiprogramConfig config = SmallConfig();
  config.scheduler = SchedulerKind::kResidencyAware;
  config.core_words = 2048;
  config.tracer = &tracer;
  MultiprogrammingSimulator sim(config);
  for (std::size_t j = 0; j < 3; ++j) {
    sim.AddJob("job", SmallJob(j + 1));
  }
  const MultiprogramReport report = sim.Run();
  for (const JobReport& job : report.jobs) {
    EXPECT_EQ(job.references, 5000u);
  }
  TraceVerifierConfig verifier_config;
  verifier_config.frame_count = 8;
  verifier_config.page_job_shift = MultiprogrammingSimulator::kJobShift;
  const auto violations = TraceReplayVerifier(verifier_config).Verify(tracer.Snapshot());
  EXPECT_TRUE(violations.empty()) << TraceReplayVerifier::Describe(violations);
}

// ------------------------------------------------- SystemBuilder bridge --

TEST(MultiprogrammingTest, BuildMultiprogramConfigLiftsSystemSpec) {
  SystemSpec spec;
  spec.label = "bridge";
  spec.core_words = 2048;
  spec.page_words = 256;
  spec.replacement = ReplacementStrategyKind::kClock;
  MultiprogramSpec mp;
  mp.scheduler = SchedulerKind::kResidencyAware;
  mp.load_control.policy = LoadControlPolicy::kAdaptiveFaultRate;
  const MultiprogramConfig config = BuildMultiprogramConfig(spec, mp);
  EXPECT_EQ(config.core_words, 2048u);
  EXPECT_EQ(config.page_words, 256u);
  EXPECT_EQ(config.replacement, ReplacementStrategyKind::kClock);
  EXPECT_EQ(config.scheduler, SchedulerKind::kResidencyAware);
  EXPECT_EQ(config.load_control.policy, LoadControlPolicy::kAdaptiveFaultRate);

  MultiprogrammingSimulator sim(config);
  sim.AddJob("a", SmallJob(1));
  sim.AddJob("b", SmallJob(2));
  const MultiprogramReport report = sim.Run();
  EXPECT_EQ(report.jobs[0].references, 5000u);
  EXPECT_EQ(report.jobs[1].references, 5000u);
}

TEST(MultiprogrammingDeathTest, BridgeRejectsVariableBlockSpecs) {
  SystemSpec spec;
  spec.characteristics.unit = AllocationUnit::kVariableBlocks;
  EXPECT_DEATH(BuildMultiprogramConfig(spec, MultiprogramSpec{}), "fixed-size units");
}

}  // namespace
}  // namespace dsa
