// Experiment E10 (ablations): the design choices DESIGN.md calls out,
// each varied in isolation.
//
//   A. ATLAS's vacant-frame discipline — "the replacement strategy ... is
//      used to ensure that one page frame is kept vacant, ready for the next
//      page demand": on vs off, same machine, same workload.
//   B. Advice budget — how many advised pages ride along per fault.
//   C. Working-set window tau — residency vs refault trade.
//   D. The 360/67 ninth (instruction-counter) register — on vs off.

#include <cstdio>
#include <string>

#include "src/core/rng.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"

namespace {

dsa::ReferenceTrace Workload() {
  dsa::WorkingSetTraceParams params;
  params.extent = 32768;
  params.region_words = 256;
  params.regions_per_phase = 16;
  params.phases = 6;
  params.phase_length = 10000;
  return dsa::MakeWorkingSetTrace(params);
}

}  // namespace

int main() {
  std::printf("== E10: ablations of surveyed design choices ==\n\n");
  const dsa::ReferenceTrace trace = Workload();

  // --- A: the vacant frame ---------------------------------------------------
  {
    dsa::Table table({"vacant frame kept", "faults", "mean wait per fault (cyc)",
                      "total wait (cyc)", "peak resident (words)"});
    for (const bool keep_vacant : {false, true}) {
      dsa::PagedVmConfig config;
      config.label = "atlas-ablation";
      config.address_bits = 16;
      config.core_words = 8192;
      config.page_words = 512;
      config.mapper = dsa::PagedMapperKind::kAtlasRegisters;
      config.replacement = dsa::ReplacementStrategyKind::kAtlasLearning;
      config.keep_one_frame_vacant = keep_vacant;
      config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 4, 6000);
      const dsa::VmReport report = dsa::PagedLinearVm(config).Run(trace);
      table.AddRow()
          .AddCell(keep_vacant ? "yes (ATLAS)" : "no")
          .AddCell(report.faults)
          .AddCell(report.faults == 0 ? 0.0
                                      : static_cast<double>(report.wait_cycles) /
                                            static_cast<double>(report.faults),
                   0)
          .AddCell(report.wait_cycles)
          .AddCell(report.peak_resident_words);
    }
    std::printf("A. ATLAS vacant-frame discipline:\n%s\n", table.Render().c_str());
  }

  // --- B: advice budget --------------------------------------------------------
  {
    dsa::Table table({"advice budget/fault", "faults", "extra fetches", "total wait (cyc)"});
    for (const std::size_t budget : {1u, 2u, 4u, 8u, 16u}) {
      dsa::PagedVmConfig config;
      config.label = "advice-ablation";
      config.address_bits = 16;
      config.core_words = 8192;
      config.page_words = 512;
      config.accept_advice = true;
      config.fetch = dsa::FetchStrategyKind::kAdvised;
      config.advice_fetch_budget = budget;
      config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 4, 6000);
      dsa::PagedLinearVm vm(config);
      // Advise the next phase's hot pages at each phase boundary.
      dsa::VmReport reset = vm.Run(dsa::ReferenceTrace{"reset", {}});
      (void)reset;
      std::size_t i = 0;
      for (const dsa::Reference& ref : trace.refs) {
        if (i % 10000 == 9900 && i + 200 < trace.refs.size() && i > 300) {
          // The program description knows the phase change: release the
          // pages of the dying phase and pre-declare the coming one.
          for (std::size_t back = i - 300; back < i; ++back) {
            vm.AdviseWontNeed(trace.refs[back].name);
          }
          for (std::size_t peek = i + 100; peek < i + 200; ++peek) {
            vm.AdviseWillNeed(trace.refs[peek].name);
          }
        }
        vm.Step(ref);
        ++i;
      }
      const dsa::VmReport report = vm.Snapshot();
      table.AddRow()
          .AddCell(static_cast<std::uint64_t>(budget))
          .AddCell(report.faults)
          .AddCell(vm.pager().stats().extra_fetches)
          .AddCell(report.wait_cycles);
    }
    std::printf("B. advised-fetch budget sweep:\n%s\n", table.Render().c_str());
  }

  // --- C: working-set window -----------------------------------------------------
  {
    dsa::Table table({"tau (cyc)", "faults", "policy releases", "peak resident (words)",
                      "space-time total"});
    for (const dsa::Cycles tau : {dsa::Cycles{2000}, dsa::Cycles{20000}, dsa::Cycles{200000},
                                  dsa::Cycles{2000000}}) {
      dsa::PagedVmConfig config;
      config.label = "ws-ablation";
      config.address_bits = 16;
      config.core_words = 16384;
      config.page_words = 512;
      config.replacement = dsa::ReplacementStrategyKind::kWorkingSet;
      config.replacement_options.working_set_tau = tau;
      config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 4, 6000);
      dsa::PagedLinearVm vm(config);
      const dsa::VmReport report = vm.Run(trace);
      table.AddRow()
          .AddCell(tau)
          .AddCell(report.faults)
          .AddCell(vm.pager().stats().policy_releases)
          .AddCell(report.peak_resident_words)
          .AddCell(report.space_time.total(), 0);
    }
    std::printf("C. working-set window sweep:\n%s\n", table.Render().c_str());
  }

  // --- D: the ninth associative register ---------------------------------------------
  {
    dsa::Table table({"IC register", "mean map cost (cyc/ref)", "execute share of refs"});
    // An execute-heavy trace: instruction fetches walk lines, data scatter.
    dsa::ReferenceTrace code_trace;
    code_trace.label = "code+data";
    dsa::Rng rng(23);
    for (int i = 0; i < 60000; ++i) {
      if (i % 4 != 3) {
        // Straight-line code in a 2K region.
        code_trace.refs.push_back(
            {dsa::Name{(static_cast<std::uint64_t>(i) * 2) % 2048}, dsa::AccessKind::kExecute});
      } else {
        code_trace.refs.push_back({dsa::Name{4096 + rng.Below(16384)}, dsa::AccessKind::kRead});
      }
    }
    for (const bool ic_register : {false, true}) {
      dsa::PagedSegmentedVmConfig config;
      config.label = "ic-ablation";
      config.segment_bits = 4;
      config.offset_bits = 16;
      config.core_words = 32768;
      config.page_words = 1024;
      config.tlb_entries = 0;  // isolate the ninth register's contribution
      config.dedicated_execute_register = ic_register;
      config.workload_segment_words = 32768;
      config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 1000);
      const dsa::VmReport report = dsa::PagedSegmentedVm(config).Run(code_trace);
      table.AddRow()
          .AddCell(ic_register ? "present (360/67)" : "absent")
          .AddCell(report.MeanTranslationCost(), 2)
          .AddCell("0.75");
    }
    std::printf("D. instruction-counter register:\n%s\n", table.Render().c_str());
  }

  std::printf("Shape check: (A) the vacant frame's price is visible — one frame of\n"
              "residency lost, hence more faults on a tight core; its payoff (victim\n"
              "write-backs off the fault path) only outweighs that when victims are\n"
              "dirty and core is not scarce, which is why ATLAS paired it with a\n"
              "dedicated drum organisation.  (B) once paired with releases, a larger\n"
              "advice budget converts faults into piggybacked fetches until the advice\n"
              "is exhausted; (C) a small tau shrinks residency at the price of\n"
              "refaults, a large tau is plain LRU; (D) the ninth register pays for\n"
              "straight-line code even with no general associative memory at all.\n");
  return 0;
}
