// Lane-scaling curve of the concurrent multi-lane simulator.
//
// Runs a fixed 8-group installation (mixed schedulers, two page sizes, one
// fault-injected group — every group an independent MultiprogrammingSimulator
// contending for the shared lock-free heap) at 1, 2, and 4 lanes, plus the
// hardware width in full mode, and records the wall-clock curve in
// BENCH_concurrent.json.  Two properties are checked, one hard and one
// hardware-gated (the bench_parallel discipline, one level down):
//
//   identity   every lanes>1 run must produce per-group event JSONL, merged
//              metrics, and merged renamed event streams BYTE-identical to
//              lanes=1, and the shared heap must balance to zero blocks
//              outstanding — violation exits non-zero at any lane count;
//   speedup    on a machine with >= 4 hardware threads, the full-length run
//              at 4 lanes must be >= 2x faster than serial.  Skipped in
//              --quick mode and on narrower machines (a 1-core container
//              cannot exhibit parallel speedup; identity still holds).
//
// The quick lane list is fixed at {1, 2, 4} — deliberately host-independent,
// so the stripped BENCH_concurrent.quick.json is a valid value-diff
// reference on any machine (diff_bench.sh).  The full file adds the
// hardware width and is structure-diffed only (strip_timing.py --structure).
// CAS-retry/refill counts are genuine contention measurements — they vary
// run to run by design and live on the "contention" line, which
// strip_timing.py drops whole.
//
// Usage: bench_concurrent [--quick] [--out PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "src/exec/thread_pool.h"
#include "src/sched/multi_lane.h"
#include "src/trace/synthetic.h"
#include "src/vm/system_builder.h"

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

constexpr std::size_t kGroups = 8;

std::vector<dsa::LaneGroupSpec> BuildGroups(std::size_t job_length) {
  std::vector<dsa::LaneGroupSpec> groups;
  for (std::size_t g = 0; g < kGroups; ++g) {
    dsa::LaneGroupSpec spec;
    spec.label = "group-" + std::to_string(g);
    spec.config.page_words = g % 2 == 0 ? 256 : 128;
    spec.config.core_words = spec.config.page_words * (6 + g % 4);
    spec.config.backing_level = dsa::MakeDrumLevel(
        "drum", 1u << 16, /*word_time=*/2, /*rotational_delay=*/2000);
    spec.config.quantum = 800;
    spec.config.context_switch_cycles = 10;
    spec.config.scheduler = g % 2 == 0 ? dsa::SchedulerKind::kRoundRobin
                                       : dsa::SchedulerKind::kResidencyAware;
    spec.config.load_control.policy = dsa::LoadControlPolicy::kAdaptiveFaultRate;
    spec.config.load_control.window = 20000;
    spec.config.load_control.min_window_references = 32;
    spec.config.load_control.high_fault_rate = 0.05;
    spec.config.load_control.low_fault_rate = 0.02;
    spec.config.load_control.hysteresis = 5000;
    if (g == 3) {
      spec.config.fault_injection.rates = {.transient_transfer = 0.03,
                                           .permanent_slot = 0.005};
      spec.config.fault_injection.seed = 0xbe57u;
    }
    for (std::size_t j = 0; j < 3; ++j) {
      dsa::LoopTraceParams params;
      params.extent = 2048;
      params.body_words = 512;
      params.advance_words = 256;
      params.iterations = 3;
      params.length = job_length;
      params.seed = 0xc0ccu * 1000003 + g * 131 + j;
      spec.jobs.emplace_back("g" + std::to_string(g) + "-j" + std::to_string(j),
                             dsa::MakeLoopTrace(params));
    }
    groups.push_back(std::move(spec));
  }
  return groups;
}

// The deterministic residue of one run, reduced to bytes for the identity
// gate: per-group serialized events plus the merged table.
std::string DeterministicBytes(const dsa::MultiLaneOutcome& outcome) {
  std::string bytes;
  for (const dsa::LaneGroupResult& group : outcome.groups) {
    bytes += group.events_jsonl;
  }
  bytes += outcome.merged_metrics_table;
  return bytes;
}

struct LanePoint {
  unsigned lanes{0};
  double seconds{0.0};
  double speedup{1.0};
  bool identical{true};
  std::uint64_t cas_retries{0};
  std::uint64_t escalations{0};
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_concurrent.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t job_length = quick ? 2500 : 15000;
  const unsigned hardware = dsa::HardwareJobs();
  // Quick mode keeps the lane list host-independent so the stripped output
  // is a cross-machine value-diff reference; full mode adds the hardware
  // width (and is structure-diffed only).
  std::vector<unsigned> lane_counts = {1, 2, 4};
  if (!quick) {
    lane_counts.push_back(hardware);
  }
  std::sort(lane_counts.begin(), lane_counts.end());
  lane_counts.erase(std::unique(lane_counts.begin(), lane_counts.end()),
                    lane_counts.end());

  const std::vector<dsa::LaneGroupSpec> groups = BuildGroups(job_length);
  std::uint64_t total_refs = 0;
  for (const dsa::LaneGroupSpec& spec : groups) {
    total_refs += spec.jobs.size() * job_length;
  }

  std::printf("== bench_concurrent: multi-lane shared-heap scaling ==\n");
  std::printf("   groups=%zu job_refs=%zu hardware_concurrency=%u (%s)\n\n", kGroups,
              job_length, hardware, quick ? "quick" : "full");
  std::printf("  %6s %9s %12s %8s %10s %12s\n", "lanes", "seconds", "refs/sec",
              "speedup", "identical", "cas_retries");

  std::string serial_bytes;
  std::uint64_t blocks_acquired = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t faults = 0;
  std::vector<LanePoint> points;
  bool all_identical = true;
  bool balanced = true;
  for (const unsigned lanes : lane_counts) {
    dsa::MultiLaneConfig config;
    config.lanes = lanes;
    const auto start = std::chrono::steady_clock::now();
    const dsa::MultiLaneOutcome outcome = dsa::MultiLaneSimulator(config, groups).Run();
    LanePoint point;
    point.lanes = lanes;
    point.seconds = Elapsed(start);
    const std::string bytes = DeterministicBytes(outcome);
    if (lanes == 1) {
      serial_bytes = bytes;
      total_cycles = 0;
      faults = 0;
      blocks_acquired = 0;
      for (const dsa::LaneGroupResult& group : outcome.groups) {
        total_cycles += group.report.total_cycles;
        faults += group.report.faults;
        blocks_acquired += group.blocks_acquired;
      }
    }
    point.identical = bytes == serial_bytes;
    all_identical = all_identical && point.identical;
    balanced = balanced && outcome.heap_outstanding == 0;
    point.cas_retries = outcome.heap_stats.cas_retries;
    point.escalations = outcome.heap_stats.escalations;
    point.speedup = point.seconds > 0.0 && !points.empty()
                        ? points.front().seconds / point.seconds
                        : 1.0;
    std::printf("  %6u %9.3f %12.0f %8.2f %10s %12llu\n", point.lanes, point.seconds,
                point.seconds > 0 ? static_cast<double>(total_refs) / point.seconds : 0.0,
                point.speedup, point.identical ? "yes" : "NO",
                static_cast<unsigned long long>(point.cas_retries));
    points.push_back(point);
  }

  double speedup_at_4 = 0.0;
  for (const LanePoint& point : points) {
    if (point.lanes == 4) {
      speedup_at_4 = point.speedup;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_concurrent\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  // No hardware_concurrency here: the host stamp above records it (and is
  // stripped), so the quick file stays a cross-machine value-diff reference.
  std::fprintf(out, "  \"config\": {\"groups\": %zu, \"job_refs\": %zu},\n",
               kGroups, job_length);
  // Deterministic work summary: byte-stable at every lane width (the
  // identity gate makes these the same numbers lanes=1 produced).
  std::fprintf(out,
               "  \"work\": {\"total_refs\": %llu, \"total_cycles\": %llu, "
               "\"faults\": %llu, \"blocks_acquired\": %llu},\n",
               static_cast<unsigned long long>(total_refs),
               static_cast<unsigned long long>(total_cycles),
               static_cast<unsigned long long>(faults),
               static_cast<unsigned long long>(blocks_acquired));
  std::fprintf(out, "  \"lanes\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LanePoint& point = points[i];
    std::fprintf(out,
                 "    {\"lanes\": %u, \"seconds\": %.6f, \"refs_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"identical_to_serial\": %s}%s\n",
                 point.lanes, point.seconds,
                 point.seconds > 0 ? static_cast<double>(total_refs) / point.seconds : 0.0,
                 point.speedup, point.identical ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Contention telemetry (per final lane width): genuinely nondeterministic
  // under threads; strip_timing.py drops this line whole.
  std::fprintf(out,
               "  \"contention\": {\"cas_retries\": %llu, \"escalations\": %llu},\n",
               static_cast<unsigned long long>(points.back().cas_retries),
               static_cast<unsigned long long>(points.back().escalations));
  std::fprintf(out,
               "  \"summary\": {\"identical_at_every_width\": %s, "
               "\"heap_balanced\": %s, \"speedup\": %.3f}\n}\n",
               all_identical ? "true" : "false", balanced ? "true" : "false",
               speedup_at_4);
  std::fclose(out);
  std::printf("\n  wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "multi-lane run diverged from the serial run — determinism broken\n");
    return 1;
  }
  if (!balanced) {
    std::fprintf(stderr, "shared heap left blocks outstanding after drain\n");
    return 1;
  }
  if (!quick && hardware >= 4 && speedup_at_4 < 2.0) {
    std::fprintf(stderr,
                 "speedup at 4 lanes is %.2fx on a %u-wide machine (need >= 2x)\n",
                 speedup_at_4, hardware);
    return 1;
  }
  if (hardware < 4) {
    std::printf("  note: only %u hardware thread(s); speedup gate skipped (identity "
                "still enforced)\n",
                hardware);
  }
  return 0;
}
