// Experiment E4: replacement strategies against Belady's optimum.
//
// "A detailed evaluation of several replacement strategies for the case of
// uniform units of allocation has been given by Belady [1]."  Fault-rate
// curves for every surveyed policy (plus working-set) across memory sizes
// and workload shapes, with the offline OPT bound in the last column.
//
// The workload x frames x policy grid is 128 independent cells, each a pure
// function of (trace, frames, policy); --jobs / DSA_JOBS shards them over a
// SweepRunner whose index-ordered slots keep the rendered tables identical
// at any worker count.
//
// Usage: bench_replacement [--jobs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"

namespace {

std::uint64_t CountFaults(const std::vector<dsa::PageId>& refs, std::size_t frames,
                          dsa::ReplacementStrategyKind kind) {
  dsa::BackingStore backing(dsa::MakeDrumLevel("drum", 1u << 22, 0, 0));
  dsa::PagerConfig config;
  config.page_words = 1;
  config.frames = frames;
  dsa::ReplacementOptions options;
  if (kind == dsa::ReplacementStrategyKind::kOpt) {
    options.page_string = refs;
  }
  options.working_set_tau = 4096;
  dsa::Pager pager(config, &backing, nullptr, dsa::MakeReplacementPolicy(kind, options),
                   std::make_unique<dsa::DemandFetch>(), nullptr);
  dsa::Cycles now = 0;
  for (const dsa::PageId page : refs) {
    pager.Access(page, dsa::AccessKind::kRead, now++);
  }
  return pager.stats().faults;
}

constexpr std::size_t kFrameSweep[] = {8, 16, 32, 64};
constexpr std::size_t kNumFrameSweep = sizeof(kFrameSweep) / sizeof(kFrameSweep[0]);

constexpr dsa::ReplacementStrategyKind kKinds[] = {
    dsa::ReplacementStrategyKind::kFifo,          dsa::ReplacementStrategyKind::kLru,
    dsa::ReplacementStrategyKind::kRandom,        dsa::ReplacementStrategyKind::kClock,
    dsa::ReplacementStrategyKind::kAtlasLearning, dsa::ReplacementStrategyKind::kM44Class,
    dsa::ReplacementStrategyKind::kWorkingSet,    dsa::ReplacementStrategyKind::kOpt};
constexpr std::size_t kNumKinds = sizeof(kKinds) / sizeof(kKinds[0]);

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = dsa::JobsFromEnv(/*fallback=*/1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) {
        jobs = dsa::HardwareJobs();
      }
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== E4: replacement strategies vs Belady OPT (faults per 100k refs) ==\n\n");

  struct Workload {
    std::string label;
    std::vector<dsa::PageId> refs;
  };
  std::vector<Workload> workloads;
  {
    dsa::WorkingSetTraceParams params;
    params.extent = 1 << 15;
    params.region_words = 256;
    params.regions_per_phase = 10;
    params.phases = 10;
    params.phase_length = 10000;
    workloads.push_back({"working-set", dsa::MakeWorkingSetTrace(params).PageString(256)});
  }
  {
    dsa::LoopTraceParams params;
    params.extent = 1 << 15;
    params.body_words = 6144;
    params.advance_words = 2048;
    params.iterations = 6;
    params.length = 100000;
    workloads.push_back({"loop", dsa::MakeLoopTrace(params).PageString(256)});
  }
  {
    dsa::ZipfTraceParams params;
    params.extent = 1 << 15;
    params.length = 100000;
    workloads.push_back({"zipf", dsa::MakeZipfTrace(params).PageString(256)});
  }
  {
    dsa::RandomTraceParams params;
    params.extent = 1 << 14;
    params.length = 100000;
    workloads.push_back({"random", dsa::MakeRandomTrace(params).PageString(256)});
  }

  // Flatten workload x frames x kind into one cell index; the traces are
  // shared read-only across cells.
  const std::size_t cells = workloads.size() * kNumFrameSweep * kNumKinds;
  dsa::SweepRunner runner(jobs);
  const std::vector<std::uint64_t> faults = runner.Run(cells, [&](std::size_t i) {
    const std::size_t w = i / (kNumFrameSweep * kNumKinds);
    const std::size_t f = (i / kNumKinds) % kNumFrameSweep;
    const std::size_t k = i % kNumKinds;
    return CountFaults(workloads[w].refs, kFrameSweep[f], kKinds[k]);
  });

  std::size_t cell = 0;
  for (const Workload& workload : workloads) {
    std::printf("workload: %s (%zu refs)\n", workload.label.c_str(), workload.refs.size());
    dsa::Table table({"frames", "fifo", "lru", "random", "clock", "atlas-learning",
                      "m44-class", "working-set", "OPT (bound)"});
    for (std::size_t f = 0; f < kNumFrameSweep; ++f) {
      auto& row = table.AddRow().AddCell(static_cast<std::uint64_t>(kFrameSweep[f]));
      for (std::size_t k = 0; k < kNumKinds; ++k) {
        row.AddCell(faults[cell++]);
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("Shape check (Belady [1] / paper): OPT lower-bounds every column; history-\n"
              "guided policies (LRU, clock, M44 classes) beat random on locality-bearing\n"
              "workloads and all converge on the random workload where history is\n"
              "worthless; the ATLAS learning program excels on the loop workload it was\n"
              "designed around.\n");
  return 0;
}
