// Experiment F3 (Figure 3): storage utilization with demand paging — the
// space-time product.
//
// "If page fetching is a slow process, a large part of the space-time
// product for a program may well be due to space occupied while the program
// is inactive awaiting further pages."  The figure's two shadings (program
// active / program awaiting page) are reproduced here as the active/waiting
// split of the space-time integral, swept over the page-fetch time.

#include <cstdio>

#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

int main() {
  std::printf("== F3: space-time product under demand paging (Fig. 3) ==\n\n");

  dsa::WorkingSetTraceParams workload;
  workload.extent = 32768;
  workload.region_words = 256;
  workload.regions_per_phase = 20;
  workload.phases = 6;
  workload.phase_length = 10000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(workload);

  dsa::Table table({"page fetch time (cyc)", "fetch/instr ratio", "faults", "wait fraction",
                    "space-time active", "space-time waiting", "waiting share %"});

  // Sweep the startup latency of the backing store from core-like to
  // disk-like.  Page transfer itself adds 512 x 2 cycles on top.
  for (dsa::Cycles latency : {dsa::Cycles{16}, dsa::Cycles{128}, dsa::Cycles{1024},
                              dsa::Cycles{8192}, dsa::Cycles{65536}}) {
    dsa::PagedVmConfig config;
    config.label = "fig3";
    config.address_bits = 16;
    config.core_words = 16384;
    config.page_words = 512;
    config.backing_level = dsa::MakeDrumLevel("backing", 1u << 18, /*word_time=*/2, latency);
    config.replacement = dsa::ReplacementStrategyKind::kLru;
    dsa::PagedLinearVm vm(config);
    const dsa::VmReport report = vm.Run(trace);

    const dsa::Cycles fetch_time = latency + 2 * config.page_words;
    table.AddRow()
        .AddCell(fetch_time)
        .AddCell(static_cast<double>(fetch_time), 0)
        .AddCell(report.faults)
        .AddCell(report.WaitFraction(), 3)
        .AddCell(report.space_time.active, 0)
        .AddCell(report.space_time.waiting, 0)
        .AddCell(100.0 * report.space_time.WaitingFraction(), 1);
  }

  std::printf("%s\n", table.Render().c_str());

  // Second axis of the figure's argument: with a generous core allotment,
  // "further pages are not demanded too frequently" and the waiting shading
  // shrinks even on slow storage.
  std::printf("core allotment sweep at fixed (slow) fetch time:\n");
  dsa::Table core_table({"core words", "frames", "faults", "waiting share %"});
  for (dsa::WordCount core : {dsa::WordCount{4096}, dsa::WordCount{8192},
                              dsa::WordCount{16384}, dsa::WordCount{32768}}) {
    dsa::PagedVmConfig config;
    config.label = "fig3-core";
    config.address_bits = 16;
    config.core_words = core;
    config.page_words = 512;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 8192);
    config.replacement = dsa::ReplacementStrategyKind::kLru;
    const dsa::VmReport report = dsa::PagedLinearVm(config).Run(trace);
    core_table.AddRow()
        .AddCell(core)
        .AddCell(static_cast<std::uint64_t>(core / 512))
        .AddCell(report.faults)
        .AddCell(100.0 * report.space_time.WaitingFraction(), 1);
  }
  std::printf("%s\n", core_table.Render().c_str());

  std::printf("Shape check (paper): the waiting share of the space-time product grows\n"
              "monotonically with page-fetch time and shrinks with core allotment —\n"
              "\"demand paging can be quite effective ... when the time taken to fetch a\n"
              "page is very small\", and dangerous otherwise.\n");
  return 0;
}
