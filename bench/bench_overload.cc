// Overload sweep: multiprogramming degree past the thrashing cliff, with
// and without closed-loop load control.
//
// A 16-frame core runs identical loop jobs whose working sets are ~4 pages,
// so roughly four jobs coexist before replacement starts stealing live
// pages.  The sweep raises the degree from 1 to 16 under three regimes:
//
//   uncontrolled   every job active at once (the paper's warning case:
//                  "entirely independent decisions ... as to processor
//                  scheduling and storage allocation");
//   adaptive       the fault-rate-knee controller sheds and readmits jobs
//                  with hysteresis (kAdaptiveFaultRate);
//   working-set    admission by estimated working sets against core
//                  capacity (kWorkingSetAdmission).
//
// Past the knee the uncontrolled curve's CPU utilisation collapses — the
// serialised drum channel saturates with re-fetches of stolen pages — while
// the controlled curves hold near their peak.  The run exits non-zero if
// either property fails, so CI catches a regressed controller.
//
// Every value in BENCH_overload.json is a pure function of the seeds — no
// wall-clock readings — so reruns are byte-identical.
//
// Usage: bench_overload [--quick] [--out PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"

namespace {

constexpr dsa::WordCount kPageWords = 256;
constexpr std::size_t kFrames = 16;

constexpr std::size_t kDegrees[] = {1, 2, 3, 4, 6, 8, 12, 16};
constexpr std::size_t kNumDegrees = sizeof(kDegrees) / sizeof(kDegrees[0]);

const char* const kPolicies[] = {"uncontrolled", "adaptive", "working-set"};
constexpr std::size_t kNumPolicies = 3;

struct Cell {
  std::size_t degree{0};
  double cpu_utilization{0.0};
  double throughput{0.0};
  std::uint64_t faults{0};
  std::uint64_t deactivations{0};
  std::uint64_t reactivations{0};
  dsa::Cycles total_cycles{0};
};

dsa::MultiprogramConfig ConfigFor(std::size_t policy) {
  dsa::MultiprogramConfig config;
  config.core_words = kFrames * kPageWords;
  config.page_words = kPageWords;
  config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, /*word_time=*/1,
                                            /*rotational_delay=*/300);
  config.quantum = 2000;
  config.context_switch_cycles = 20;
  if (policy == 1) {
    config.load_control.policy = dsa::LoadControlPolicy::kAdaptiveFaultRate;
    config.load_control.window = 10000;
    // High enough that the cold-start compulsory-fault transient (a few
    // faults over the first few hundred references) cannot trip the knee;
    // real thrash sustains thousands of references per window.
    config.load_control.min_window_references = 1500;
    // Healthy steady-state fault rate for the loop workload is ~1e-4 (one
    // new page per body sweep); even mild overcommit sustains ~4e-3.  The
    // knee sits between them: a failed probe must trip the shed within a
    // window or two, not linger in semi-thrash under the high-water mark.
    config.load_control.high_fault_rate = 0.002;
    config.load_control.low_fault_rate = 0.0005;
    config.load_control.hysteresis = 20000;
    config.load_control.shed_hysteresis = 3000;
  } else if (policy == 2) {
    config.load_control.policy = dsa::LoadControlPolicy::kWorkingSetAdmission;
    config.load_control.working_set_tau = 8000;
    config.load_control.hysteresis = 6000;
  }
  return config;
}

Cell RunCell(std::size_t policy, std::size_t degree, std::size_t job_length) {
  dsa::MultiprogrammingSimulator sim(ConfigFor(policy));
  for (std::size_t j = 0; j < degree; ++j) {
    dsa::LoopTraceParams params;
    params.extent = 2048;
    params.body_words = 512;    // ~2-3 resident pages per job
    params.advance_words = 256;
    params.iterations = 8;      // 4096 refs per one-page slide: heavy reuse
    params.length = job_length;
    params.seed = 1967 + j;
    sim.AddJob("job-" + std::to_string(j), MakeLoopTrace(params));
  }
  const dsa::MultiprogramReport report = sim.Run();
  Cell cell;
  cell.degree = degree;
  cell.cpu_utilization = report.CpuUtilization();
  cell.throughput = report.Throughput();
  cell.faults = report.faults;
  cell.deactivations = report.deactivations;
  cell.reactivations = report.reactivations;
  cell.total_cycles = report.total_cycles;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t job_length = quick ? 6000 : 30000;

  std::printf("== bench_overload: degree sweep past the thrashing cliff ==\n");
  std::printf("   frames=%zu page_words=%llu job_refs=%zu (%s)\n\n", kFrames,
              static_cast<unsigned long long>(kPageWords), job_length,
              quick ? "quick" : "full");
  std::printf("  %-13s %6s %8s %9s %10s %8s\n", "policy", "degree", "cpu-util",
              "thruput", "faults", "sheds");

  std::vector<Cell> results[kNumPolicies];
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
      const Cell cell = RunCell(p, kDegrees[d], job_length);
      results[p].push_back(cell);
      std::printf("  %-13s %6zu %8.4f %9.5f %10llu %8llu\n", kPolicies[p], cell.degree,
                  cell.cpu_utilization, cell.throughput,
                  static_cast<unsigned long long>(cell.faults),
                  static_cast<unsigned long long>(cell.deactivations));
    }
  }

  // The knee: the degree where the uncontrolled curve peaks.  Past it the
  // uncontrolled utilisation must fall away while adaptive holds.
  std::size_t knee_index = 0;
  for (std::size_t d = 1; d < kNumDegrees; ++d) {
    if (results[0][d].cpu_utilization > results[0][knee_index].cpu_utilization) {
      knee_index = d;
    }
  }
  const std::size_t knee_degree = kDegrees[knee_index];
  const double uncontrolled_peak = results[0][knee_index].cpu_utilization;
  const double uncontrolled_tail = results[0][kNumDegrees - 1].cpu_utilization;

  double adaptive_peak = 0.0;
  for (const Cell& cell : results[1]) {
    adaptive_peak = std::max(adaptive_peak, cell.cpu_utilization);
  }
  // Adaptive utilisation at the smallest swept degree >= 2x the knee.
  std::size_t probe_index = kNumDegrees - 1;
  for (std::size_t d = 0; d < kNumDegrees; ++d) {
    if (kDegrees[d] >= 2 * knee_degree) {
      probe_index = d;
      break;
    }
  }
  const double adaptive_at_2x = results[1][probe_index].cpu_utilization;

  std::printf("\n  knee: degree %zu (uncontrolled peak %.4f, tail %.4f)\n", knee_degree,
              uncontrolled_peak, uncontrolled_tail);
  std::printf("  adaptive: peak %.4f, at degree %zu (>=2x knee) %.4f\n", adaptive_peak,
              kDegrees[probe_index], adaptive_at_2x);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_overload\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(out,
               "  \"config\": {\"frames\": %zu, \"page_words\": %llu, "
               "\"job_refs\": %zu, \"quantum\": 2000, \"trace\": \"loop\", "
               "\"trace_seed_base\": 1967},\n",
               kFrames, static_cast<unsigned long long>(kPageWords), job_length);
  std::fprintf(out, "  \"sweeps\": {\n");
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    std::fprintf(out, "    \"%s\": [\n", kPolicies[p]);
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
      const Cell& cell = results[p][d];
      std::fprintf(out,
                   "      {\"degree\": %zu, \"cpu_utilization\": %.6f, "
                   "\"throughput\": %.6f, \"faults\": %llu, \"deactivations\": %llu, "
                   "\"reactivations\": %llu, \"total_cycles\": %llu}%s\n",
                   cell.degree, cell.cpu_utilization, cell.throughput,
                   static_cast<unsigned long long>(cell.faults),
                   static_cast<unsigned long long>(cell.deactivations),
                   static_cast<unsigned long long>(cell.reactivations),
                   static_cast<unsigned long long>(cell.total_cycles),
                   d + 1 < kNumDegrees ? "," : "");
    }
    std::fprintf(out, "    ]%s\n", p + 1 < kNumPolicies ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"summary\": {\"knee_degree\": %zu, \"uncontrolled_peak\": %.6f, "
               "\"uncontrolled_tail\": %.6f, \"adaptive_peak\": %.6f, "
               "\"adaptive_at_2x_knee\": %.6f}\n}\n",
               knee_degree, uncontrolled_peak, uncontrolled_tail, adaptive_peak,
               adaptive_at_2x);
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  // Acceptance: the cliff exists, and the controller removes it.
  bool ok = true;
  if (uncontrolled_tail >= 0.9 * uncontrolled_peak) {
    std::fprintf(stderr, "no thrashing cliff: uncontrolled tail %.4f vs peak %.4f\n",
                 uncontrolled_tail, uncontrolled_peak);
    ok = false;
  }
  if (adaptive_at_2x < 0.9 * adaptive_peak) {
    std::fprintf(stderr,
                 "adaptive control collapsed: %.4f at degree %zu vs peak %.4f "
                 "(must stay within 10%%)\n",
                 adaptive_at_2x, kDegrees[probe_index], adaptive_peak);
    ok = false;
  }
  return ok ? 0 : 1;
}
