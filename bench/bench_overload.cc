// Overload sweep: multiprogramming degree past the thrashing cliff, with
// and without closed-loop load control.
//
// A 16-frame core runs identical loop jobs whose working sets are ~4 pages,
// so roughly four jobs coexist before replacement starts stealing live
// pages.  The sweep raises the degree from 1 to 16 under three regimes:
//
//   uncontrolled   every job active at once (the paper's warning case:
//                  "entirely independent decisions ... as to processor
//                  scheduling and storage allocation");
//   adaptive       the fault-rate-knee controller sheds and readmits jobs
//                  with hysteresis (kAdaptiveFaultRate);
//   working-set    admission by estimated working sets against core
//                  capacity (kWorkingSetAdmission).
//
// Past the knee the uncontrolled curve's CPU utilisation collapses — the
// serialised drum channel saturates with re-fetches of stolen pages — while
// the controlled curves hold near their peak.  The run exits non-zero if
// either property fails, so CI catches a regressed controller.
//
// Every value in BENCH_overload.json is a pure function of the seeds — no
// wall-clock readings — so reruns are byte-identical.  The 24 cells are
// independent, so --jobs (or DSA_JOBS) shards them across cores; the
// index-ordered slots of the SweepRunner keep the output byte-identical at
// any worker count (bench/overload_sweep.h holds the shared cell
// definitions; bench_parallel measures the sweep-level speedup).
//
// Usage: bench_overload [--quick] [--out PATH] [--jobs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "bench/overload_sweep.h"
#include "src/exec/thread_pool.h"

namespace {

using overload_sweep::Cell;
using overload_sweep::kDegrees;
using overload_sweep::kFrames;
using overload_sweep::kNumDegrees;
using overload_sweep::kNumPolicies;
using overload_sweep::kPageWords;
using overload_sweep::kPolicies;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_overload.json";
  unsigned jobs = dsa::JobsFromEnv(/*fallback=*/1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) {
        jobs = dsa::HardwareJobs();
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t job_length = quick ? 6000 : 30000;

  std::printf("== bench_overload: degree sweep past the thrashing cliff ==\n");
  std::printf("   frames=%zu page_words=%llu job_refs=%zu (%s, jobs=%u)\n\n", kFrames,
              static_cast<unsigned long long>(kPageWords), job_length,
              quick ? "quick" : "full", jobs);
  std::printf("  %-13s %6s %8s %9s %10s %8s\n", "policy", "degree", "cpu-util",
              "thruput", "faults", "sheds");

  const std::vector<std::vector<Cell>> results = overload_sweep::RunSweep(job_length, jobs);
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
      const Cell& cell = results[p][d];
      std::printf("  %-13s %6zu %8.4f %9.5f %10llu %8llu\n", kPolicies[p], cell.degree,
                  cell.cpu_utilization, cell.throughput,
                  static_cast<unsigned long long>(cell.faults),
                  static_cast<unsigned long long>(cell.deactivations));
    }
  }

  // The knee: the degree where the uncontrolled curve peaks.  Past it the
  // uncontrolled utilisation must fall away while adaptive holds.
  std::size_t knee_index = 0;
  for (std::size_t d = 1; d < kNumDegrees; ++d) {
    if (results[0][d].cpu_utilization > results[0][knee_index].cpu_utilization) {
      knee_index = d;
    }
  }
  const std::size_t knee_degree = kDegrees[knee_index];
  const double uncontrolled_peak = results[0][knee_index].cpu_utilization;
  const double uncontrolled_tail = results[0][kNumDegrees - 1].cpu_utilization;

  double adaptive_peak = 0.0;
  for (const Cell& cell : results[1]) {
    adaptive_peak = std::max(adaptive_peak, cell.cpu_utilization);
  }
  // Adaptive utilisation at the smallest swept degree >= 2x the knee.
  std::size_t probe_index = kNumDegrees - 1;
  for (std::size_t d = 0; d < kNumDegrees; ++d) {
    if (kDegrees[d] >= 2 * knee_degree) {
      probe_index = d;
      break;
    }
  }
  const double adaptive_at_2x = results[1][probe_index].cpu_utilization;

  std::printf("\n  knee: degree %zu (uncontrolled peak %.4f, tail %.4f)\n", knee_degree,
              uncontrolled_peak, uncontrolled_tail);
  std::printf("  adaptive: peak %.4f, at degree %zu (>=2x knee) %.4f\n", adaptive_peak,
              kDegrees[probe_index], adaptive_at_2x);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_overload\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"frames\": %zu, \"page_words\": %llu, "
               "\"job_refs\": %zu, \"quantum\": 2000, \"trace\": \"loop\", "
               "\"trace_seed_base\": 1967},\n",
               kFrames, static_cast<unsigned long long>(kPageWords), job_length);
  std::fprintf(out, "  \"sweeps\": {\n");
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    std::fprintf(out, "    \"%s\": [\n", kPolicies[p]);
    for (std::size_t d = 0; d < kNumDegrees; ++d) {
      const Cell& cell = results[p][d];
      std::fprintf(out,
                   "      {\"degree\": %zu, \"cpu_utilization\": %.6f, "
                   "\"throughput\": %.6f, \"faults\": %llu, \"deactivations\": %llu, "
                   "\"reactivations\": %llu, \"total_cycles\": %llu}%s\n",
                   cell.degree, cell.cpu_utilization, cell.throughput,
                   static_cast<unsigned long long>(cell.faults),
                   static_cast<unsigned long long>(cell.deactivations),
                   static_cast<unsigned long long>(cell.reactivations),
                   static_cast<unsigned long long>(cell.total_cycles),
                   d + 1 < kNumDegrees ? "," : "");
    }
    std::fprintf(out, "    ]%s\n", p + 1 < kNumPolicies ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"summary\": {\"knee_degree\": %zu, \"uncontrolled_peak\": %.6f, "
               "\"uncontrolled_tail\": %.6f, \"adaptive_peak\": %.6f, "
               "\"adaptive_at_2x_knee\": %.6f}\n}\n",
               knee_degree, uncontrolled_peak, uncontrolled_tail, adaptive_peak,
               adaptive_at_2x);
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  // Acceptance: the cliff exists, and the controller removes it.
  bool ok = true;
  if (uncontrolled_tail >= 0.9 * uncontrolled_peak) {
    std::fprintf(stderr, "no thrashing cliff: uncontrolled tail %.4f vs peak %.4f\n",
                 uncontrolled_tail, uncontrolled_peak);
    ok = false;
  }
  if (adaptive_at_2x < 0.9 * adaptive_peak) {
    std::fprintf(stderr,
                 "adaptive control collapsed: %.4f at degree %zu vs peak %.4f "
                 "(must stay within 10%%)\n",
                 adaptive_at_2x, kDegrees[probe_index], adaptive_peak);
    ok = false;
  }
  return ok ? 0 : 1;
}
