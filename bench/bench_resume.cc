// Checkpoint save/load cost versus simulator state size (EXPERIMENTS.md E15).
//
// Each grid cell builds a PagedLinearVm at a given frame count, steps a
// working-set trace far enough to populate the frame table, allocator,
// binmaps, and metrics with real mid-run state, then measures:
//
//   state_bytes     the sealed snapshot size (deterministic — part of the
//                   committed reference; growth should track frame count.
//                   The 24-bit address mapper's page table sets a constant
//                   floor, so the per-frame slope sits on a large base)
//   save_seconds    wall-clock to serialize + seal, best of several reps
//   load_seconds    wall-clock to verify + restore into a fresh instance
//
// On top of the flat measurements each cell runs the DELTA curve: a
// sectioned full cut is sealed and digested, the VM re-steps a steady-state
// stretch of trace (the resident working set, so only touched page-table
// chunks and the pager/clock/tally sections go stale), and a delta cut is
// sealed against the digest:
//
//   full_bytes          sectioned full seal size (slightly above state_bytes
//                       — section names + framing)
//   delta_bytes         delta seal size after the steady-state stretch
//   delta_save_seconds  best-of-reps delta serialize + seal (dirty-chunk
//                       caching should put this well under save_seconds)
//   delta_load_seconds  resolve [full, delta] chain + restore a fresh VM
//
// The gate is the property the service mode stands on, checked in every
// cell: the restored VM must RE-SERIALIZE TO THE IDENTICAL BYTES, and
// stepping both instances another stretch of trace must produce identical
// reports.  The delta path gates the same way — a VM restored through the
// [full, delta] chain must re-seal (sectioned, full) byte-identically with
// the stepped original.  Either divergence exits non-zero, so check.sh and
// CI catch a serialization regression even if no unit test names the broken
// field.  Cells at 4096 frames and below additionally gate
// delta_bytes * 5 <= full_bytes (ISSUE 10's compression floor); at 16384
// frames the pager's recency lists — which go stale on every reference —
// dominate the dirty set and the honest ratio is ~3x, so that cell reports
// the ratio without gating it.
//
// Usage: bench_resume [--quick] [--out PATH]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_meta.h"
#include "src/core/snapshot.h"
#include "src/obs/vm_metrics.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"
#include "src/vm/system_builder.h"

namespace {

constexpr dsa::WordCount kPageWords = 64;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dsa::SystemSpec SpecForFrames(std::size_t frames) {
  dsa::SystemSpec spec;
  spec.label = "bench-resume";
  spec.core_words = static_cast<dsa::WordCount>(frames) * kPageWords;
  spec.page_words = kPageWords;
  spec.tlb_entries = 8;
  // The drum scales with the core it backs, so state_bytes tracks the
  // simulated machine's size instead of a fixed worst-case name space.
  const dsa::WordCount drum_words =
      static_cast<dsa::WordCount>(frames) * kPageWords * 4;
  spec.backing_level = dsa::MakeDrumLevel("drum", drum_words, /*word_time=*/2,
                                          /*rotational_delay=*/500);
  return spec;
}

dsa::ReferenceTrace TraceForFrames(std::size_t frames, std::size_t refs) {
  dsa::WorkingSetTraceParams params;
  // Working set ~1.5x core so replacement stays busy and most frames end up
  // holding a page with real LRU/FIFO list positions to serialize.
  params.extent = static_cast<dsa::WordCount>(frames) * kPageWords * 3 / 2;
  params.region_words = kPageWords;
  params.regions_per_phase = frames / 2 + 1;
  params.phases = 4;
  params.phase_length = refs / 4;
  params.seed = 0xbe7c4;
  return dsa::MakeWorkingSetTrace(params);
}

struct Cell {
  std::size_t frames{0};
  std::size_t refs{0};
  std::size_t state_bytes{0};
  double save_seconds{0};
  double load_seconds{0};
  std::size_t full_bytes{0};
  std::size_t delta_bytes{0};
  double delta_save_seconds{0};
  double delta_load_seconds{0};
  bool delta_identical{false};
  bool gate_ok{false};
};

// The >=5x delta compression gate applies where the page table dominates
// the snapshot; above this the pager's recency lists (stale on every
// reference) dominate the dirty set and the ratio honestly sits near 3x.
constexpr std::size_t kDeltaRatioGateMaxFrames = 4096;

Cell RunCell(std::size_t frames, std::size_t refs, int reps) {
  Cell cell;
  cell.frames = frames;
  cell.refs = refs;

  const dsa::SystemSpec spec = SpecForFrames(frames);
  const dsa::ReferenceTrace trace = TraceForFrames(frames, refs);
  dsa::PagedLinearVm vm(dsa::PagedConfigFromSpec(spec));
  // Step to a mid-run cut, holding back a tail for the continuation check.
  const std::size_t cut = trace.refs.size() * 3 / 4;
  for (std::size_t i = 0; i < cut; ++i) {
    vm.Step(trace.refs[i]);
  }

  // Save cost: best-of-reps, each rep a full serialize + seal.
  std::string sealed;
  double best_save = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    dsa::SnapshotWriter w;
    vm.SaveState(&w);
    sealed = w.Seal();
    const double dt = Now() - t0;
    if (rep == 0 || dt < best_save) {
      best_save = dt;
    }
  }
  cell.state_bytes = sealed.size();
  cell.save_seconds = best_save;

  // Load cost: header verification + full restore into a fresh instance.
  double best_load = 0;
  for (int rep = 0; rep < reps; ++rep) {
    dsa::PagedLinearVm fresh(dsa::PagedConfigFromSpec(spec));
    const double t0 = Now();
    dsa::SnapshotReader r(sealed);
    fresh.LoadState(&r);
    const double dt = Now() - t0;
    if (!r.ok() || !r.AtEnd()) {
      std::fprintf(stderr, "bench_resume: load failed at %zu frames: %s\n",
                   frames, r.error().Describe().c_str());
      return cell;
    }
    if (rep == 0 || dt < best_load) {
      best_load = dt;
    }
  }
  cell.load_seconds = best_load;

  // Gate 1: the restored instance re-serializes to the identical bytes.
  dsa::PagedLinearVm restored(dsa::PagedConfigFromSpec(spec));
  {
    dsa::SnapshotReader r(sealed);
    restored.LoadState(&r);
    if (!r.ok() || !r.AtEnd()) {
      return cell;
    }
  }
  dsa::SnapshotWriter again;
  restored.SaveState(&again);
  if (again.Seal() != sealed) {
    std::fprintf(stderr,
                 "bench_resume: GATE: restored state re-serializes "
                 "differently at %zu frames\n",
                 frames);
    return cell;
  }

  // Gate 2: both instances step the trace tail to identical reports.
  for (std::size_t i = cut; i < trace.refs.size(); ++i) {
    vm.Step(trace.refs[i]);
    restored.Step(trace.refs[i]);
  }
  const std::string a =
      RenderVmReport(vm.Snapshot(), Describe(vm.characteristics()), "tail");
  const std::string b = RenderVmReport(restored.Snapshot(),
                                       Describe(restored.characteristics()), "tail");
  if (a != b) {
    std::fprintf(stderr,
                 "bench_resume: GATE: continuation diverged at %zu frames\n",
                 frames);
    return cell;
  }

  // --- Delta curve.  `vm` now sits at the end of the trace; treat that as
  // the full cut, then re-step a steady-state stretch (the tail again — the
  // resident working set, the service's common case between cuts) and seal
  // the change as a delta.
  dsa::SectionedSnapshotWriter full_w;
  vm.SaveSections(&full_w);
  const dsa::SectionBaseline baseline = full_w.Digest();
  const std::string full_sealed = full_w.SealFull();
  cell.full_bytes = full_sealed.size();

  const std::size_t stretch = trace.refs.size() - cut;
  const std::size_t replay_from = trace.refs.size() - stretch;
  for (std::size_t i = replay_from; i < trace.refs.size(); ++i) {
    vm.Step(trace.refs[i]);
  }

  std::string delta_sealed;
  double best_delta_save = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    dsa::SectionedSnapshotWriter dw;
    vm.SaveSections(&dw);
    delta_sealed = dw.SealDelta(baseline);
    const double dt = Now() - t0;
    if (rep == 0 || dt < best_delta_save) {
      best_delta_save = dt;
    }
  }
  cell.delta_bytes = delta_sealed.size();
  cell.delta_save_seconds = best_delta_save;

  // Restore through the [full, delta] chain, best-of-reps timing.
  double best_delta_load = 0;
  for (int rep = 0; rep < reps; ++rep) {
    dsa::PagedLinearVm chained(dsa::PagedConfigFromSpec(spec));
    const double t0 = Now();
    auto resolved = dsa::ResolveSectionChain({full_sealed, delta_sealed});
    if (!resolved.has_value()) {
      std::fprintf(stderr, "bench_resume: delta chain resolve failed at %zu "
                   "frames: %s\n",
                   frames, resolved.error().Describe().c_str());
      return cell;
    }
    dsa::SectionSource src = std::move(resolved.value());
    chained.LoadSections(&src);
    src.FailIfUnopened();
    const double dt = Now() - t0;
    if (!src.ok()) {
      std::fprintf(stderr, "bench_resume: delta restore failed at %zu "
                   "frames: %s\n",
                   frames, src.error().Describe().c_str());
      return cell;
    }
    if (rep == 0 || dt < best_delta_load) {
      best_delta_load = dt;
    }
    if (rep + 1 == reps) {
      // Gate 3: the chain-restored VM re-seals (sectioned full) to the
      // identical bytes as the stepped original.
      dsa::SectionedSnapshotWriter lhs;
      vm.SaveSections(&lhs);
      dsa::SectionedSnapshotWriter rhs;
      chained.SaveSections(&rhs);
      cell.delta_identical = lhs.SealFull() == rhs.SealFull();
      if (!cell.delta_identical) {
        std::fprintf(stderr,
                     "bench_resume: GATE: delta-chain restore diverged at "
                     "%zu frames\n",
                     frames);
        return cell;
      }
    }
  }
  cell.delta_load_seconds = best_delta_load;

  // Gate 4: delta commits write >=5x fewer bytes than full cuts in the
  // page-table-dominated regime (see kDeltaRatioGateMaxFrames).
  if (frames <= kDeltaRatioGateMaxFrames &&
      cell.delta_bytes * 5 > cell.full_bytes) {
    std::fprintf(stderr,
                 "bench_resume: GATE: delta/full ratio %.2f below 5x at %zu "
                 "frames (%zu delta vs %zu full bytes)\n",
                 cell.delta_bytes > 0
                     ? static_cast<double>(cell.full_bytes) /
                           static_cast<double>(cell.delta_bytes)
                     : 0.0,
                 frames, cell.delta_bytes, cell.full_bytes);
    return cell;
  }

  cell.gate_ok = true;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::size_t> frame_grid = {64, 256, 1024};
  if (!quick) {
    frame_grid.push_back(4096);
    frame_grid.push_back(16384);
  }
  const std::size_t refs = quick ? 20000 : 100000;
  const int reps = quick ? 3 : 7;

  std::vector<Cell> cells;
  bool gate_failed = false;
  for (std::size_t frames : frame_grid) {
    const Cell cell = RunCell(frames, refs, reps);
    if (!cell.gate_ok) {
      gate_failed = true;
    }
    cells.push_back(cell);
  }

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "bench_resume: cannot open %s\n", out_path);
    return 2;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_resume\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"page_words\": %llu, \"refs_per_cell\": %zu, "
               "\"reps\": %d},\n",
               static_cast<unsigned long long>(kPageWords), refs, reps);
  std::fprintf(out, "  \"grid\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double ratio = c.delta_bytes > 0
                             ? static_cast<double>(c.full_bytes) /
                                   static_cast<double>(c.delta_bytes)
                             : 0.0;
    std::fprintf(out,
                 "    {\"frames\": %zu, \"state_bytes\": %zu, "
                 "\"save_seconds\": %.6f, \"load_seconds\": %.6f, "
                 "\"full_bytes\": %zu, \"delta_bytes\": %zu, "
                 "\"delta_ratio\": %.2f, \"delta_save_seconds\": %.6f, "
                 "\"delta_load_seconds\": %.6f, \"delta_identical\": %s, "
                 "\"restore_identical\": %s}%s\n",
                 c.frames, c.state_bytes, c.save_seconds, c.load_seconds,
                 c.full_bytes, c.delta_bytes, ratio, c.delta_save_seconds,
                 c.delta_load_seconds, c.delta_identical ? "true" : "false",
                 c.gate_ok ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gate\": {\"byte_identical_restore\": %s}\n",
               gate_failed ? "false" : "true");
  std::fprintf(out, "}\n");
  if (out != stdout) {
    std::fclose(out);
  }
  if (gate_failed) {
    std::fprintf(stderr, "bench_resume: restore gate FAILED\n");
    return 1;
  }
  return 0;
}
