// Sweep-level speedup of the deterministic parallel executor.
//
// Runs the bench_overload degree sweep (24 independent cells, shared cell
// definitions in bench/overload_sweep.h) at 1, 2, 4, and hardware-width
// workers, and records the wall-clock speedup curve in BENCH_parallel.json.
// Two properties are checked, one hard and one hardware-gated:
//
//   identity   every jobs>1 sweep must produce results bit-identical to
//              the jobs=1 serial sweep (the executor's whole point) —
//              violation exits non-zero at any worker count;
//   speedup    on a machine with >= 4 hardware threads, the full-length
//              sweep at 4 workers must be >= 2x faster than serial.  The
//              gate is skipped in --quick mode (cells too short to time
//              reliably on shared CI hardware) and on narrower machines
//              (a 1-core container cannot exhibit parallel speedup, and
//              pretending otherwise would be noise).
//
// Wall-clock fields use the shared stripped names (seconds, refs_per_sec,
// speedup) so scripts/strip_timing.py removes them if this JSON is ever
// diffed; everything else in the file is machine-dependent context
// (hardware_concurrency, worker list), which is why BENCH_parallel.json is
// a recorded curve, not a bench-diff reference.
//
// Usage: bench_parallel [--quick] [--out PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "bench/overload_sweep.h"
#include "src/exec/thread_pool.h"

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct WorkerPoint {
  unsigned jobs{0};
  double seconds{0.0};
  double speedup{1.0};
  bool identical{true};
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t job_length = quick ? 6000 : 30000;
  const unsigned hardware = dsa::HardwareJobs();
  std::vector<unsigned> worker_counts = {1, 2, 4, hardware};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(std::unique(worker_counts.begin(), worker_counts.end()),
                      worker_counts.end());

  std::printf("== bench_parallel: overload sweep speedup vs worker count ==\n");
  std::printf("   cells=%zu job_refs=%zu hardware_concurrency=%u (%s)\n\n",
              overload_sweep::kNumCells, job_length, hardware, quick ? "quick" : "full");
  std::printf("  %6s %9s %12s %8s %10s\n", "jobs", "seconds", "refs/sec", "speedup",
              "identical");

  const std::uint64_t sweep_refs = overload_sweep::SweepReferences(job_length);
  std::vector<std::vector<overload_sweep::Cell>> serial_results;
  std::vector<WorkerPoint> points;
  bool all_identical = true;
  for (const unsigned jobs : worker_counts) {
    const auto start = std::chrono::steady_clock::now();
    const auto results = overload_sweep::RunSweep(job_length, jobs);
    WorkerPoint point;
    point.jobs = jobs;
    point.seconds = Elapsed(start);
    if (jobs == 1) {
      serial_results = results;
    }
    point.identical = results == serial_results;
    all_identical = all_identical && point.identical;
    point.speedup = point.seconds > 0.0 && !points.empty()
                        ? points.front().seconds / point.seconds
                        : 1.0;
    std::printf("  %6u %9.3f %12.0f %8.2f %10s\n", point.jobs, point.seconds,
                point.seconds > 0 ? static_cast<double>(sweep_refs) / point.seconds : 0.0,
                point.speedup, point.identical ? "yes" : "NO");
    points.push_back(point);
  }

  double speedup_at_4 = 0.0;
  for (const WorkerPoint& point : points) {
    if (point.jobs == 4) {
      speedup_at_4 = point.speedup;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_parallel\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"sweep\": \"overload-degree\", \"cells\": %zu, "
               "\"job_refs\": %zu, \"hardware_concurrency\": %u},\n",
               overload_sweep::kNumCells, job_length, hardware);
  std::fprintf(out, "  \"workers\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const WorkerPoint& point = points[i];
    std::fprintf(out,
                 "    {\"jobs\": %u, \"seconds\": %.6f, \"refs_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"identical_to_serial\": %s}%s\n",
                 point.jobs, point.seconds,
                 point.seconds > 0 ? static_cast<double>(sweep_refs) / point.seconds : 0.0,
                 point.speedup, point.identical ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"summary\": {\"identical_at_every_width\": %s, "
               "\"speedup\": %.3f}\n}\n",
               all_identical ? "true" : "false", speedup_at_4);
  std::fclose(out);
  std::printf("\n  wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "parallel sweep diverged from the serial sweep — determinism broken\n");
    return 1;
  }
  if (!quick && hardware >= 4 && speedup_at_4 < 2.0) {
    std::fprintf(stderr,
                 "speedup at 4 workers is %.2fx on a %u-wide machine (need >= 2x)\n",
                 speedup_at_4, hardware);
    return 1;
  }
  if (hardware < 4) {
    std::printf("  note: only %u hardware thread(s); speedup gate skipped (identity "
                "still enforced)\n",
                hardware);
  }
  return 0;
}
