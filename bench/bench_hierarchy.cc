// Experiment E9 (extension): fetch strategy over several storage levels.
//
// "An additional complexity in fetch strategies arises when there are
// several levels of working storage ...  there is the problem of whether a
// given item should be fetched to a higher storage level, since this will be
// worthwhile only if the item is going to be used frequently."
//
// Sweep 1 prices the drum staging level: with no staging (evictions go
// straight to disk), every refault pays the disk; with staging, the reuse
// tail is served at drum speed.  Sweep 2 varies the drum's size.

#include <cstdio>
#include <memory>

#include "src/paging/hierarchy_pager.h"
#include "src/paging/replacement_simple.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"

namespace {

dsa::HierarchyPagerConfig BaseConfig() {
  dsa::HierarchyPagerConfig config;
  config.page_words = 512;
  config.frames = 16;      // 8K words of core
  config.drum_pages = 32;  // 16K words of drum staging
  config.drum_level = dsa::MakeDrumLevel("drum", 1u << 18, /*word_time=*/2,
                                         /*rotational_delay=*/3000);
  config.disk_level = dsa::MakeDiskLevel("disk", 1u << 24, /*word_time=*/4,
                                         /*seek_plus_rotation=*/40000);
  return config;
}

struct RunResult {
  dsa::HierarchyPagerStats stats;
};

RunResult Drive(const dsa::HierarchyPagerConfig& config, const dsa::ReferenceTrace& trace) {
  dsa::HierarchyPager pager(config, std::make_unique<dsa::LruReplacement>());
  dsa::Cycles now = 0;
  for (const dsa::Reference& ref : trace.refs) {
    now += *pager.Access(dsa::PageId{ref.name.value / config.page_words}, ref.kind, now) + 1;
  }
  return RunResult{pager.stats()};
}

}  // namespace

int main() {
  std::printf("== E9 (extension): paging over a drum+disk hierarchy ==\n\n");

  dsa::WorkingSetTraceParams workload;
  workload.extent = 65536;  // 128 pages over 16 frames: heavy reuse traffic
  workload.region_words = 512;
  workload.regions_per_phase = 12;
  workload.phases = 8;
  workload.phase_length = 10000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(workload);

  std::printf("staging policy at fixed drum size (%zu pages):\n", BaseConfig().drum_pages);
  dsa::Table policy_table({"eviction target", "promote on disk fault", "faults", "drum hits",
                           "disk hits", "drum service %", "total wait (cyc)"});
  struct PolicyCase {
    const char* label;
    dsa::DemotionPolicy demotion;
    bool promote;
  };
  for (const PolicyCase& c :
       {PolicyCase{"disk only (no staging)", dsa::DemotionPolicy::kAlwaysDisk, false},
        PolicyCase{"disk, promote reused", dsa::DemotionPolicy::kAlwaysDisk, true},
        PolicyCase{"drum staging", dsa::DemotionPolicy::kAlwaysDrum, true}}) {
    dsa::HierarchyPagerConfig config = BaseConfig();
    config.demotion = c.demotion;
    config.promote_on_disk_fault = c.promote;
    const RunResult result = Drive(config, trace);
    policy_table.AddRow()
        .AddCell(c.label)
        .AddCell(c.promote ? "yes" : "no")
        .AddCell(result.stats.faults)
        .AddCell(result.stats.drum_hits)
        .AddCell(result.stats.disk_hits)
        .AddCell(100.0 * result.stats.DrumServiceFraction(), 1)
        .AddCell(result.stats.wait_cycles);
  }
  std::printf("%s\n", policy_table.Render().c_str());

  std::printf("drum size sweep under drum staging:\n");
  dsa::Table size_table({"drum pages", "demotions", "drum service %", "total wait (cyc)"});
  for (const std::size_t pages : {4u, 16u, 64u, 256u}) {
    dsa::HierarchyPagerConfig config = BaseConfig();
    config.drum_pages = pages;
    const RunResult result = Drive(config, trace);
    size_table.AddRow()
        .AddCell(static_cast<std::uint64_t>(pages))
        .AddCell(result.stats.demotions)
        .AddCell(100.0 * result.stats.DrumServiceFraction(), 1)
        .AddCell(result.stats.wait_cycles);
  }
  std::printf("%s\n", size_table.Render().c_str());

  std::printf("Shape check (paper): staging frequently reused pages at the faster level\n"
              "moves most fault service from disk to drum, cutting total wait; the drum\n"
              "earns its keep in proportion to its size until it covers the reuse set.\n"
              "Fetching an item to a higher level pays exactly when it is reused.\n");
  return 0;
}
