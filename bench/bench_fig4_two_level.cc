// Experiment F4 (Figure 4): the two-level mapping scheme and its associative
// memory.
//
// "A small associative memory is used to contain the locations of recently
// accessed pages in order to reduce the overhead caused by the mapping
// process."  Sweeping the associative memory's size shows how few entries
// buy back almost all of the two-table overhead — the 360/67 shipped eight.

#include <cstdio>

#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_segmented_vm.h"

int main() {
  std::printf("== F4: two-level mapping with an associative memory (Fig. 4) ==\n\n");

  dsa::WorkingSetTraceParams workload;
  workload.extent = 65536;
  workload.region_words = 256;
  workload.regions_per_phase = 16;
  workload.phases = 6;
  workload.phase_length = 10000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(workload);

  dsa::Table table({"assoc entries", "hit rate", "mean map cost (cyc/ref)",
                    "map cost vs no-assoc %", "faults"});

  double no_assoc_cost = 0.0;
  for (std::size_t entries : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    dsa::PagedSegmentedVmConfig config;
    config.label = "fig4";
    config.segment_bits = 8;
    config.offset_bits = 16;
    config.core_words = 32768;
    config.page_words = 1024;
    config.tlb_entries = entries;
    config.workload_segment_words = 8192;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 20, 2, 6000);
    config.replacement = dsa::ReplacementStrategyKind::kClock;
    dsa::PagedSegmentedVm vm(config);
    const dsa::VmReport report = vm.Run(trace);
    if (entries == 0) {
      no_assoc_cost = report.MeanTranslationCost();
    }
    table.AddRow()
        .AddCell(static_cast<std::uint64_t>(entries))
        .AddCell(report.tlb_hit_rate, 3)
        .AddCell(report.MeanTranslationCost(), 2)
        .AddCell(100.0 * report.MeanTranslationCost() / no_assoc_cost, 1)
        .AddCell(report.faults);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): without the associative memory every reference pays\n"
              "two extra core references (segment table + page table); a handful of\n"
              "entries recovers most of it — \"if it were not for such mechanisms, the\n"
              "cost in extra addressing time ... would often be unacceptable.\"\n");
  return 0;
}
