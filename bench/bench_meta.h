// Shared machine-context stamp for bench JSON headers.
//
// Every bench output records the hardware it ran on (core count) and the
// run mode, so a committed full-run reference can be read for what it is —
// e.g. a speedup curve captured on a 1-core container is context, not a
// regression.  The stamp is machine-dependent by design; strip_timing.py
// removes the whole "host" line before any byte comparison, which also
// keeps the stripped quick references stable across machines.

#ifndef BENCH_BENCH_META_H_
#define BENCH_BENCH_META_H_

#include <cstdio>
#include <thread>

namespace bench_meta {

// Writes `  "host": {"nproc": N, "mode": "quick|full"},` as one line, meant
// to sit directly after the "quick" field of a bench JSON header.
inline void WriteHostStamp(std::FILE* out, bool quick) {
  unsigned nproc = std::thread::hardware_concurrency();
  if (nproc == 0) {
    nproc = 1;
  }
  std::fprintf(out, "  \"host\": {\"nproc\": %u, \"mode\": \"%s\"},\n", nproc,
               quick ? "quick" : "full");
}

}  // namespace bench_meta

#endif  // BENCH_BENCH_META_H_
