// Experiment E3: placement strategies for variable units.
//
// "A common and frequently satisfactory strategy is to place the information
// in the smallest space which is sufficient to contain it.  An alternative
// strategy, which involves less bookkeeping, is to place large blocks ...
// starting at one end of storage and small blocks starting at the other
// end.  A further alternative is given in Appendix A.4 [the Rice chain]."
//
// Every placement design runs the same churn streams at high occupancy;
// reported: how long each survives before its first unsatisfiable request,
// steady-state external fragmentation, and the bookkeeping (search length).

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/alloc/buddy.h"
#include "src/alloc/rice_chain.h"
#include "src/alloc/variable_allocator.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"
#include "src/trace/allocation.h"

namespace {

constexpr dsa::WordCount kCapacity = 1 << 16;

struct RunResult {
  std::uint64_t failures{0};
  std::uint64_t satisfied{0};
  double mean_external_frag{0.0};
  double mean_holes{0.0};
  double mean_search_length{0.0};
  double utilisation{0.0};  // mean live/capacity over samples
};

RunResult Drive(dsa::Allocator* alloc, const dsa::AllocationTrace& trace,
                const dsa::PlacementPolicy* policy) {
  RunResult result;
  std::unordered_map<std::uint64_t, dsa::PhysicalAddress> live;
  dsa::RunningSummary frag;
  dsa::RunningSummary holes;
  dsa::RunningSummary utilisation;
  std::size_t op_index = 0;
  for (const dsa::AllocOp& op : trace.ops) {
    if (op.kind == dsa::AllocOpKind::kAllocate) {
      const auto block = alloc->Allocate(op.size);
      if (block.has_value()) {
        live.emplace(op.request, block->addr);
        ++result.satisfied;
      } else {
        ++result.failures;
      }
    } else if (auto it = live.find(op.request); it != live.end()) {
      alloc->Free(it->second);
      live.erase(it);
    }
    if (++op_index % 500 == 0) {
      const auto report = alloc->Fragmentation();
      frag.Add(report.ExternalFragmentation());
      holes.Add(static_cast<double>(report.hole_count));
      utilisation.Add(static_cast<double>(alloc->live_words()) /
                      static_cast<double>(kCapacity));
    }
  }
  result.mean_external_frag = frag.mean();
  result.mean_holes = holes.mean();
  result.utilisation = utilisation.mean();
  if (policy != nullptr) {
    result.mean_search_length = policy->MeanSearchLength();
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== E3: placement strategies at high occupancy ==\n\n");

  struct Shape {
    const char* label;
    dsa::SizeDistribution distribution;
  };
  const Shape shapes[] = {
      {"exponential", dsa::SizeDistribution::kExponential},
      {"bimodal", dsa::SizeDistribution::kBimodal},
  };

  for (const Shape& shape : shapes) {
    dsa::AllocationTraceParams params;
    params.operations = 60000;
    params.distribution = shape.distribution;
    params.mean_size = 160.0;
    params.min_size = 1;
    params.max_size = 2048;
    params.small_size = 48;
    params.large_size = 2048;
    params.large_fraction = 0.1;
    // Hold live volume near 85% of capacity so placement quality matters.
    params.target_live = 350;
    params.seed = 17;
    const dsa::AllocationTrace trace = dsa::MakeAllocationTrace(params);

    std::printf("request sizes: %s (peak demand %llu of %llu words)\n", shape.label,
                static_cast<unsigned long long>(trace.PeakLiveWords()),
                static_cast<unsigned long long>(kCapacity));
    dsa::Table table({"strategy", "satisfied", "failures", "mean ext. frag", "mean holes",
                      "mean search length", "mean utilisation %"});

    for (dsa::PlacementStrategyKind kind :
         {dsa::PlacementStrategyKind::kFirstFit, dsa::PlacementStrategyKind::kNextFit,
          dsa::PlacementStrategyKind::kBestFit, dsa::PlacementStrategyKind::kWorstFit,
          dsa::PlacementStrategyKind::kTwoEnded}) {
      dsa::VariableAllocator alloc(kCapacity, dsa::MakePlacementPolicy(kind, 256));
      const RunResult result = Drive(&alloc, trace, &alloc.policy());
      table.AddRow()
          .AddCell(ToString(kind))
          .AddCell(result.satisfied)
          .AddCell(result.failures)
          .AddCell(result.mean_external_frag, 3)
          .AddCell(result.mean_holes, 1)
          .AddCell(result.mean_search_length, 1)
          .AddCell(100.0 * result.utilisation, 1);
    }
    {
      dsa::BuddyAllocator buddy(kCapacity);
      const RunResult result = Drive(&buddy, trace, nullptr);
      table.AddRow()
          .AddCell("buddy")
          .AddCell(result.satisfied)
          .AddCell(result.failures)
          .AddCell(result.mean_external_frag, 3)
          .AddCell(result.mean_holes, 1)
          .AddCell("n/a")
          .AddCell(100.0 * result.utilisation, 1);
    }
    {
      dsa::RiceChainAllocator rice(kCapacity);
      const RunResult result = Drive(&rice, trace, nullptr);
      const double search = rice.stats().allocations == 0
                                ? 0.0
                                : static_cast<double>(rice.chain_blocks_examined()) /
                                      static_cast<double>(rice.stats().allocations);
      table.AddRow()
          .AddCell("rice-chain")
          .AddCell(result.satisfied)
          .AddCell(result.failures)
          .AddCell(result.mean_external_frag, 3)
          .AddCell(result.mean_holes, 1)
          .AddCell(search, 1)
          .AddCell(100.0 * result.utilisation, 1);
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf("Shape check (paper): best-fit is \"frequently satisfactory\" (few failures,\n"
              "moderate search); worst-fit degrades fastest; two-ended trades a little\n"
              "fragmentation for shorter searches; the Rice chain survives via combining\n"
              "at the cost of longer sequential searches under pressure.\n");
  return 0;
}
