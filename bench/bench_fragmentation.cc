// Experiment E1: "paging just obscures the problem [of fragmentation],
// since the fragmentation occurs within pages."
//
// The same allocation request stream is replayed against a variable-unit
// allocator (external fragmentation, no internal waste), a paged store
// (internal waste, no external fragmentation), and a buddy system (some of
// both).  Each run continues until the first unsatisfiable request; the
// utilisation ceiling — live words per capacity word at that moment — puts
// the three designs' losses on one scale.

#include <cstdio>
#include <memory>
#include <unordered_map>

#include "src/alloc/buddy.h"
#include "src/alloc/variable_allocator.h"
#include "src/stats/table.h"
#include "src/trace/allocation.h"

namespace {

constexpr dsa::WordCount kCapacity = 1 << 16;
constexpr dsa::WordCount kPageWords = 512;

struct Outcome {
  std::size_t ops_to_failure{0};
  dsa::WordCount live_at_failure{0};
  double internal_frag{0.0};
  double external_frag{0.0};
};

// Replays ops until the first failure against a real allocator.
Outcome ReplayAllocator(dsa::Allocator* alloc, const dsa::AllocationTrace& trace) {
  Outcome out;
  std::unordered_map<std::uint64_t, dsa::PhysicalAddress> live;
  for (const dsa::AllocOp& op : trace.ops) {
    ++out.ops_to_failure;
    if (op.kind == dsa::AllocOpKind::kAllocate) {
      const auto block = alloc->Allocate(op.size);
      if (!block.has_value()) {
        break;
      }
      live.emplace(op.request, block->addr);
    } else if (auto it = live.find(op.request); it != live.end()) {
      alloc->Free(it->second);
      live.erase(it);
    }
  }
  out.live_at_failure = alloc->live_words();
  const auto frag = alloc->Fragmentation();
  out.internal_frag = frag.InternalFragmentation();
  out.external_frag = frag.ExternalFragmentation();
  return out;
}

// The paged store: every request takes ceil(size/page) whole frames.  There
// is never external fragmentation — any free frame serves — but the unused
// tail of each request's final page is pure internal waste.
Outcome ReplayPaged(const dsa::AllocationTrace& trace) {
  Outcome out;
  const std::size_t total_frames = kCapacity / kPageWords;
  std::size_t frames_used = 0;
  dsa::WordCount live = 0;
  std::unordered_map<std::uint64_t, std::pair<std::size_t, dsa::WordCount>> objects;
  for (const dsa::AllocOp& op : trace.ops) {
    ++out.ops_to_failure;
    if (op.kind == dsa::AllocOpKind::kAllocate) {
      const std::size_t frames =
          static_cast<std::size_t>((op.size + kPageWords - 1) / kPageWords);
      if (frames_used + frames > total_frames) {
        break;
      }
      frames_used += frames;
      live += op.size;
      objects.emplace(op.request, std::make_pair(frames, op.size));
    } else if (auto it = objects.find(op.request); it != objects.end()) {
      frames_used -= it->second.first;
      live -= it->second.second;
      objects.erase(it);
    }
  }
  out.live_at_failure = live;
  const dsa::WordCount allocated = frames_used * kPageWords;
  out.internal_frag =
      allocated == 0 ? 0.0
                     : static_cast<double>(allocated - live) / static_cast<double>(allocated);
  out.external_frag = 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("== E1: fragmentation — variable units vs paging vs buddy ==\n\n");

  dsa::Table table({"request sizes", "system", "ops to 1st failure", "live words at failure",
                    "utilisation ceiling %", "internal frag %", "external frag %"});

  struct Shape {
    const char* label;
    dsa::SizeDistribution distribution;
    double mean;
  };
  const Shape shapes[] = {
      {"exponential (mean 128)", dsa::SizeDistribution::kExponential, 128.0},
      {"uniform [1, 1024]", dsa::SizeDistribution::kUniform, 0.0},
      {"bimodal 32/2048", dsa::SizeDistribution::kBimodal, 0.0},
  };

  for (const Shape& shape : shapes) {
    dsa::AllocationTraceParams params;
    params.operations = 200000;
    params.distribution = shape.distribution;
    params.mean_size = shape.mean;
    params.min_size = 1;
    params.max_size = 1024;
    params.large_fraction = 0.08;
    params.small_size = 32;
    params.large_size = 2048;
    if (shape.distribution == dsa::SizeDistribution::kBimodal) {
      params.max_size = 2048;
    }
    params.target_live = 1u << 20;  // never reached: pure pressure ramp + light churn
    params.seed = 31;
    const dsa::AllocationTrace trace = dsa::MakeAllocationTrace(params);

    auto add_row = [&](const char* system, const Outcome& out) {
      table.AddRow()
          .AddCell(shape.label)
          .AddCell(system)
          .AddCell(static_cast<std::uint64_t>(out.ops_to_failure))
          .AddCell(out.live_at_failure)
          .AddCell(100.0 * static_cast<double>(out.live_at_failure) /
                       static_cast<double>(kCapacity),
                   1)
          .AddCell(100.0 * out.internal_frag, 1)
          .AddCell(100.0 * out.external_frag, 1);
    };

    dsa::VariableAllocator best_fit(
        kCapacity, dsa::MakePlacementPolicy(dsa::PlacementStrategyKind::kBestFit));
    add_row("variable best-fit", ReplayAllocator(&best_fit, trace));
    add_row("paged (512-word frames)", ReplayPaged(trace));
    dsa::BuddyAllocator buddy(kCapacity);
    add_row("buddy", ReplayAllocator(&buddy, trace));
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): paging shows zero external fragmentation but pays for\n"
              "it inside pages (internal %%), hitting its ceiling early when requests are\n"
              "small relative to the frame; the variable-unit store wastes nothing inside\n"
              "blocks but strands free words between them.  Fragmentation is conserved,\n"
              "not eliminated — it is only moved.\n");
  return 0;
}
