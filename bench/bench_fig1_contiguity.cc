// Experiment F1 (Figure 1): artificial name contiguity.
//
// Paper: "a set of separate blocks of locations, whose absolute addresses
// are contiguous, can then be made to correspond to a single set of
// contiguous names."  The cost is "reduced speed of addressing".
//
// Part 1 shows the problem: after churn, a variable-unit heap has plenty of
// free words but no contiguous run — a large contiguous-name request is
// unsatisfiable without a mapping device.
// Part 2 shows the mechanism: the same scattered blocks stitched into one
// contiguous name range by a Fig. 2 block table, with the per-access price.

#include <cstdio>
#include <vector>

#include "src/alloc/variable_allocator.h"
#include "src/core/rng.h"
#include "src/map/block_table.h"
#include "src/map/mapper.h"
#include "src/stats/table.h"

namespace {

constexpr dsa::WordCount kCapacity = 1 << 16;
constexpr dsa::WordCount kBlockWords = 512;
constexpr dsa::WordCount kWantWords = 8192;  // the contiguous region the program needs

}  // namespace

int main() {
  std::printf("== F1: artificial contiguity (Fig. 1) ==\n\n");

  // Fragment a 64K-word store: churn small allocations until free space is
  // scattered.
  dsa::VariableAllocator heap(kCapacity,
                              dsa::MakePlacementPolicy(dsa::PlacementStrategyKind::kFirstFit));
  dsa::Rng rng(42);
  std::vector<dsa::PhysicalAddress> live;
  for (int op = 0; op < 20000; ++op) {
    if (!live.empty() && rng.Chance(0.45)) {
      const std::size_t i = rng.Below(live.size());
      heap.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (auto block = heap.Allocate(rng.Between(16, 384))) {
      live.push_back(block->addr);
    }
  }
  // Drain to ~50% occupancy: plenty of free words, scattered into holes.
  while (!live.empty() && heap.live_words() > kCapacity / 2) {
    const std::size_t i = rng.Below(live.size());
    heap.Free(live[i]);
    live[i] = live.back();
    live.pop_back();
  }
  const auto frag = heap.Fragmentation();
  std::printf("after churn: %llu of %llu words free, largest hole %llu, %zu holes, "
              "external fragmentation %.2f\n",
              static_cast<unsigned long long>(frag.free),
              static_cast<unsigned long long>(frag.capacity),
              static_cast<unsigned long long>(frag.largest_free), frag.hole_count,
              frag.ExternalFragmentation());

  const bool direct_possible = heap.free_list().largest_hole() >= kWantWords;
  std::printf("contiguous %llu-word request without mapping: %s\n",
              static_cast<unsigned long long>(kWantWords),
              direct_possible ? "satisfiable" : "UNSATISFIABLE (no hole is large enough)");

  // Stitch scattered 512-word blocks into one contiguous name range.
  dsa::BlockTableMapper mapper(kBlockWords, kWantWords / kBlockWords);
  std::size_t stitched = 0;
  while (stitched < kWantWords / kBlockWords) {
    const auto block = heap.Allocate(kBlockWords);
    if (!block.has_value()) {
      break;
    }
    mapper.SetBlock(stitched, block->addr);
    ++stitched;
  }
  std::printf("with a block-table mapping device: stitched %zu scattered %llu-word blocks "
              "into names [0, %llu)\n\n",
              stitched, static_cast<unsigned long long>(kBlockWords),
              static_cast<unsigned long long>(stitched * kBlockWords));

  if (stitched == 0) {
    std::fprintf(stderr, "churn left no block-sized holes; nothing to measure\n");
    return 1;
  }

  // Measure the addressing price: direct (identity) vs mapped access.
  dsa::IdentityMapper identity(kCapacity);
  dsa::Table table({"access pattern", "mapper", "accesses", "faults", "mean cost (cyc/access)"});
  const dsa::WordCount extent = stitched * kBlockWords;

  auto run = [&](const char* pattern, dsa::AddressMapper* m, bool random) {
    dsa::Rng pattern_rng(7);
    std::uint64_t accesses = 0;
    for (int i = 0; i < 200000; ++i) {
      const dsa::Name name{random ? pattern_rng.Below(extent)
                                  : static_cast<std::uint64_t>(i) % extent};
      const auto t = m->Translate(name, dsa::AccessKind::kRead, i);
      if (t.has_value()) {
        ++accesses;
      }
    }
    table.AddRow()
        .AddCell(pattern)
        .AddCell(m->name())
        .AddCell(accesses)
        .AddCell(m->faults())
        .AddCell(m->MeanTranslationCost(), 2);
  };
  run("sequential", &identity, false);
  run("sequential", &mapper, false);
  run("random", &identity, true);
  run("random", &mapper, true);

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): the mapped sweep never faults despite scattered physical\n"
              "blocks — name contiguity without address contiguity — at a fixed per-access\n"
              "translation surcharge over direct addressing.\n");
  return 0;
}
