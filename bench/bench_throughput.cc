// Reference-throughput harness: how many simulated references per second
// the engine sustains, and how much the O(1)/O(log n) hot-path data
// structures buy over the original full-scan implementations.
//
// Two measurements:
//
//   1. Full system — a large synthetic trace replayed through a complete
//      `PagedLinearVm` (translate + pager + replacement + timing model) on
//      the 64Ki-frame LRU configuration, for an eviction-heavy random
//      workload and a locality-heavy Zipf workload.
//   2. Engine comparison — the same page string driven through two pagers
//      that differ only in the replacement engine: the intrusive-list LRU
//      (O(1) victim choice) against the retained full-scan reference
//      (O(frames) victim choice).  Fault counts must agree exactly; the
//      refs/second ratio is the speedup this PR's tentpole claims.
//
// Results are emitted human-readably on stdout and machine-readably as JSON
// (default BENCH_throughput.json in the working directory — run from the
// repo root so future PRs accumulate a perf trajectory).
//
// Usage: bench_throughput [--quick] [--out PATH]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_naive.h"
#include "src/paging/replacement_simple.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

namespace {

// The 64Ki-frame LRU configuration the acceptance target names.
constexpr dsa::WordCount kPageWords = 64;
constexpr std::size_t kFrames = 64 * 1024;
constexpr int kAddressBits = 24;  // 262,144 pages: a 4x-overcommitted core

struct Measurement {
  std::string label;
  std::uint64_t references{0};
  std::uint64_t faults{0};
  double seconds{0.0};
  double RefsPerSec() const { return seconds > 0 ? references / seconds : 0.0; }
};

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

dsa::PagedVmConfig SystemConfig() {
  dsa::PagedVmConfig config;
  config.label = "throughput-64Ki-lru";
  config.address_bits = kAddressBits;
  config.page_words = kPageWords;
  config.core_words = kFrames * kPageWords;
  config.replacement = dsa::ReplacementStrategyKind::kLru;
  config.fetch = dsa::FetchStrategyKind::kDemand;
  return config;
}

Measurement RunSystem(const std::string& label, const dsa::ReferenceTrace& trace) {
  dsa::PagedLinearVm vm(SystemConfig());
  const auto start = std::chrono::steady_clock::now();
  const dsa::VmReport report = vm.Run(trace);
  Measurement m;
  m.label = label;
  m.references = report.references;
  m.faults = report.faults;
  m.seconds = Elapsed(start);
  return m;
}

// Replays a bare page string through a pager built around `policy`; the
// engine-only measurement that isolates victim-selection cost.
Measurement RunEngine(const std::string& label, const std::vector<dsa::PageId>& refs,
                      std::unique_ptr<dsa::ReplacementPolicy> policy) {
  dsa::BackingStore backing(
      dsa::MakeDrumLevel("drum", dsa::WordCount{1} << kAddressBits, /*word_time=*/0,
                         /*rotational_delay=*/0));
  dsa::PagerConfig config;
  config.page_words = kPageWords;
  config.frames = kFrames;
  dsa::Pager pager(config, &backing, nullptr, std::move(policy),
                   std::make_unique<dsa::DemandFetch>(), nullptr);
  const auto start = std::chrono::steady_clock::now();
  dsa::Cycles now = 0;
  for (const dsa::PageId page : refs) {
    pager.Access(page, dsa::AccessKind::kRead, now++);
  }
  Measurement m;
  m.label = label;
  m.references = refs.size();
  m.faults = pager.stats().faults;
  m.seconds = Elapsed(start);
  return m;
}

void PrintMeasurement(const Measurement& m) {
  std::printf("  %-28s %10llu refs  %9llu faults  %8.3f s  %12.0f refs/s\n", m.label.c_str(),
              static_cast<unsigned long long>(m.references),
              static_cast<unsigned long long>(m.faults), m.seconds, m.RefsPerSec());
}

void WriteJsonMeasurement(std::FILE* out, const char* key, const Measurement& m,
                          bool trailing_comma) {
  std::fprintf(out,
               "    \"%s\": {\"references\": %llu, \"faults\": %llu, \"seconds\": %.6f, "
               "\"refs_per_sec\": %.1f}%s\n",
               key, static_cast<unsigned long long>(m.references),
               static_cast<unsigned long long>(m.faults), m.seconds, m.RefsPerSec(),
               trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  // The engine slice must run well past the point where all 64Ki frames
  // fill (~87k uniform-random references) or no evictions happen and the
  // full-scan engine never pays its O(frames)-per-fault cost.  Past that
  // point every fault charges the naive engine a 64Ki-entry sweep.
  const std::size_t system_refs = quick ? 200000 : 2000000;
  const std::size_t engine_refs = quick ? 95000 : 150000;

  std::printf("== bench_throughput: 64Ki-frame LRU configuration ==\n");
  std::printf("   frames=%zu page_words=%llu address_bits=%d (%s)\n\n", kFrames,
              static_cast<unsigned long long>(kPageWords), kAddressBits,
              quick ? "quick" : "full");

  // --- full-system replays --------------------------------------------------
  dsa::RandomTraceParams random_params;
  random_params.extent = dsa::WordCount{1} << kAddressBits;
  random_params.length = system_refs;
  random_params.seed = 41;
  const dsa::ReferenceTrace random_trace = MakeRandomTrace(random_params);

  dsa::ZipfTraceParams zipf_params;
  zipf_params.extent = dsa::WordCount{1} << kAddressBits;
  zipf_params.length = system_refs;
  zipf_params.seed = 42;
  const dsa::ReferenceTrace zipf_trace = MakeZipfTrace(zipf_params);

  std::printf("full vm::System replay:\n");
  const Measurement sys_random = RunSystem("system/uniform-random", random_trace);
  PrintMeasurement(sys_random);
  const Measurement sys_zipf = RunSystem("system/zipf-locality", zipf_trace);
  PrintMeasurement(sys_zipf);

  // --- engine comparison: O(1) list LRU vs the retained full-scan LRU ------
  std::vector<dsa::PageId> page_string = random_trace.PageString(kPageWords);
  if (page_string.size() > engine_refs) {
    page_string.resize(engine_refs);
  }

  std::printf("\nreplacement-engine comparison (%zu refs):\n", page_string.size());
  const Measurement engine_fast =
      RunEngine("engine/lru-intrusive-list", page_string, std::make_unique<dsa::LruReplacement>());
  PrintMeasurement(engine_fast);
  const Measurement engine_naive =
      RunEngine("engine/lru-full-scan", page_string, std::make_unique<dsa::ScanLruReplacement>());
  PrintMeasurement(engine_naive);

  const bool fault_parity = engine_fast.faults == engine_naive.faults;
  const double speedup =
      engine_naive.RefsPerSec() > 0 ? engine_fast.RefsPerSec() / engine_naive.RefsPerSec() : 0.0;
  std::printf("\n  fault parity: %s   speedup: %.1fx\n", fault_parity ? "ok" : "MISMATCH",
              speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_throughput\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"frames\": %zu, \"page_words\": %llu, \"address_bits\": %d, "
               "\"replacement\": \"lru\", \"fetch\": \"demand\"},\n",
               kFrames, static_cast<unsigned long long>(kPageWords), kAddressBits);
  std::fprintf(out, "  \"system\": {\n");
  WriteJsonMeasurement(out, "uniform_random", sys_random, true);
  WriteJsonMeasurement(out, "zipf_locality", sys_zipf, false);
  std::fprintf(out, "  },\n  \"engine_comparison\": {\n");
  WriteJsonMeasurement(out, "lru_intrusive_list", engine_fast, true);
  WriteJsonMeasurement(out, "lru_full_scan", engine_naive, true);
  std::fprintf(out, "    \"fault_parity\": %s,\n    \"speedup\": %.2f\n  }\n}\n",
               fault_parity ? "true" : "false", speedup);
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  return fault_parity ? 0 : 1;
}
