// Micro-benchmarks (google-benchmark) for the library's hot operations:
// address translation paths, allocator operations, and trace generation.
// These measure *simulator* throughput (how fast experiments run), not
// simulated cycles — the cycle costs are the other harnesses' business.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/alloc/buddy.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/rng.h"
#include "src/map/associative_memory.h"
#include "src/map/page_table.h"
#include "src/map/two_level.h"
#include "src/trace/synthetic.h"

namespace dsa {
namespace {

void BM_PageTableTranslateTlbHit(benchmark::State& state) {
  PageTableMapper mapper(512, 1024, 16);
  mapper.Map(PageId{0}, FrameId{0});
  mapper.Translate(Name{0}, AccessKind::kRead, 0);  // warm the TLB
  Cycles now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.Translate(Name{5}, AccessKind::kRead, now++));
  }
}
BENCHMARK(BM_PageTableTranslateTlbHit);

void BM_PageTableTranslateTlbMiss(benchmark::State& state) {
  PageTableMapper mapper(512, 1024, 4);
  for (std::uint64_t p = 0; p < 64; ++p) {
    mapper.Map(PageId{p}, FrameId{p % 32});
  }
  Cycles now = 0;
  std::uint64_t page = 0;
  for (auto _ : state) {
    // Stride past the 4-entry TLB so every probe misses.
    page = (page + 8) % 64;
    benchmark::DoNotOptimize(
        mapper.Translate(Name{page * 512 + 3}, AccessKind::kRead, now++));
  }
}
BENCHMARK(BM_PageTableTranslateTlbMiss);

void BM_TwoLevelTranslate(benchmark::State& state) {
  SegmentPageMapper mapper(6, 14, 512, static_cast<std::size_t>(state.range(0)));
  mapper.DefineSegment(SegmentId{1}, 8192);
  for (std::uint64_t p = 0; p < 16; ++p) {
    mapper.MapPage(SegmentId{1}, PageId{p}, FrameId{p});
  }
  Cycles now = 0;
  std::uint64_t offset = 0;
  for (auto _ : state) {
    offset = (offset + 517) % 8192;
    benchmark::DoNotOptimize(
        mapper.TranslateSegmented({SegmentId{1}, offset}, AccessKind::kRead, now++));
  }
}
BENCHMARK(BM_TwoLevelTranslate)->Arg(0)->Arg(8);

void BM_AssociativeLookup(benchmark::State& state) {
  AssociativeMemory memory(static_cast<std::size_t>(state.range(0)));
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(state.range(0)); ++k) {
    memory.Insert(k, k, k);
  }
  Cycles now = 100;
  std::uint64_t key = 0;
  for (auto _ : state) {
    key = (key + 1) % static_cast<std::uint64_t>(state.range(0));
    benchmark::DoNotOptimize(memory.Lookup(key, now++));
  }
}
BENCHMARK(BM_AssociativeLookup)->Arg(8)->Arg(44);

void BM_VariableAllocatorChurn(benchmark::State& state) {
  VariableAllocator alloc(1 << 18, MakePlacementPolicy(PlacementStrategyKind::kBestFit));
  Rng rng(3);
  std::vector<PhysicalAddress> live;
  for (auto _ : state) {
    if (!live.empty() && rng.Chance(0.5)) {
      const std::size_t i = rng.Below(live.size());
      alloc.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (auto block = alloc.Allocate(rng.Between(8, 256))) {
      live.push_back(block->addr);
    }
  }
}
BENCHMARK(BM_VariableAllocatorChurn);

void BM_BuddyAllocatorChurn(benchmark::State& state) {
  BuddyAllocator alloc(1 << 18);
  Rng rng(3);
  std::vector<PhysicalAddress> live;
  for (auto _ : state) {
    if (!live.empty() && rng.Chance(0.5)) {
      const std::size_t i = rng.Below(live.size());
      alloc.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (auto block = alloc.Allocate(rng.Between(8, 256))) {
      live.push_back(block->addr);
    }
  }
}
BENCHMARK(BM_BuddyAllocatorChurn);

void BM_WorkingSetTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    WorkingSetTraceParams params;
    params.extent = 1 << 14;
    params.phase_length = 1000;
    params.phases = 4;
    benchmark::DoNotOptimize(MakeWorkingSetTrace(params));
  }
}
BENCHMARK(BM_WorkingSetTraceGeneration);

}  // namespace
}  // namespace dsa

BENCHMARK_MAIN();
