// Experiment E5: fetch strategies and overlapping page waits.
//
// Part 1 — when to fetch: demand vs spatial prefetch vs advised fetch on
// workloads that reward or punish lookahead.
// Part 2 — the multiprogramming rescue: "the time spent on fetching pages
// can normally be overlapped with the execution of other programs."

#include <cstdio>

#include "src/sched/multiprogramming.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

namespace {

dsa::PagedVmConfig BaseConfig() {
  dsa::PagedVmConfig config;
  config.address_bits = 16;
  config.core_words = 16384;
  config.page_words = 512;
  config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 6000);
  config.replacement = dsa::ReplacementStrategyKind::kLru;
  return config;
}

void RunFetchRow(dsa::Table* table, const char* workload_label,
                 const dsa::ReferenceTrace& trace, dsa::FetchStrategyKind fetch,
                 std::size_t window) {
  dsa::PagedVmConfig config = BaseConfig();
  config.fetch = fetch;
  config.prefetch_window = window;
  config.label = "fetch";
  dsa::PagedLinearVm vm(config);
  const dsa::VmReport report = vm.Run(trace);
  std::string strategy = ToString(fetch);
  if (fetch == dsa::FetchStrategyKind::kPrefetch) {
    strategy += " w=" + std::to_string(window);
  }
  table->AddRow()
      .AddCell(workload_label)
      .AddCell(strategy)
      .AddCell(report.faults)
      .AddCell(vm.pager().stats().extra_fetches)
      .AddCell(report.wait_cycles)
      .AddCell(report.space_time.total(), 0)
      .AddCell(100.0 * report.space_time.WaitingFraction(), 1);
}

}  // namespace

int main() {
  std::printf("== E5 part 1: fetch strategies ==\n\n");

  dsa::SequentialTraceParams seq;
  seq.extent = 1 << 16;
  seq.length = 60000;
  const dsa::ReferenceTrace sequential = MakeSequentialTrace(seq);

  dsa::WorkingSetTraceParams ws;
  ws.extent = 1 << 16;
  ws.region_words = 256;
  ws.regions_per_phase = 16;
  ws.phases = 6;
  ws.phase_length = 10000;
  const dsa::ReferenceTrace scattered = MakeWorkingSetTrace(ws);

  dsa::Table fetch_table({"workload", "fetch strategy", "demand faults", "extra fetches",
                          "wait cycles", "space-time total", "waiting share %"});
  for (const auto& [label, trace] :
       {std::pair<const char*, const dsa::ReferenceTrace*>{"sequential", &sequential},
        std::pair<const char*, const dsa::ReferenceTrace*>{"scattered", &scattered}}) {
    RunFetchRow(&fetch_table, label, *trace, dsa::FetchStrategyKind::kDemand, 0);
    RunFetchRow(&fetch_table, label, *trace, dsa::FetchStrategyKind::kPrefetch, 2);
    RunFetchRow(&fetch_table, label, *trace, dsa::FetchStrategyKind::kPrefetch, 8);
  }
  std::printf("%s\n", fetch_table.Render().c_str());

  std::printf("== E5 part 2: multiprogramming overlap of page waits ==\n\n");
  dsa::Table overlap_table({"degree", "CPU utilisation", "throughput (refs/cyc)",
                            "faults", "per-job space-time", "makespan (cyc)"});
  for (std::size_t degree = 1; degree <= 8; ++degree) {
    dsa::MultiprogramConfig config;
    config.core_words = 24576;
    config.page_words = 512;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 6000);
    config.replacement = dsa::ReplacementStrategyKind::kLru;
    config.quantum = 4000;
    dsa::MultiprogrammingSimulator sim(config);
    for (std::size_t j = 0; j < degree; ++j) {
      dsa::LoopTraceParams params;
      params.extent = 8192;
      params.body_words = 2048;
      params.advance_words = 1024;
      params.iterations = 4;
      params.length = 25000;
      params.seed = 50 + j;
      sim.AddJob("job", dsa::MakeLoopTrace(params));
    }
    const dsa::MultiprogramReport report = sim.Run();
    overlap_table.AddRow()
        .AddCell(static_cast<std::uint64_t>(degree))
        .AddCell(report.CpuUtilization(), 3)
        .AddCell(report.Throughput(), 5)
        .AddCell(report.faults)
        .AddCell(report.TotalSpaceTime() / static_cast<double>(degree), 0)
        .AddCell(report.total_cycles);
  }
  std::printf("%s\n", overlap_table.Render().c_str());

  std::printf("Shape check (paper): prefetch pays on the sequential sweep (fewer demand\n"
              "faults at modest extra transfers) and buys little on scattered phases;\n"
              "CPU utilisation climbs with multiprogramming degree while waits overlap,\n"
              "then sags once the shared core makes the jobs fault against each other —\n"
              "per-job space-time swelling all the way.\n");
  return 0;
}
