// Graceful-degradation harness: replay one fixed trace while core frames
// retire on a schedule, and watch the engine degrade instead of die.
//
// A 256-frame LRU pager with a fault injector (small transient-transfer and
// permanent-slot rates) replays a fixed Zipf trace in stages.  Before each
// stage a batch of frames is taken out of service via Pager::RetireFrame —
// the externally-reported parity failure path — so the surviving-frame count
// steps down from 256 to 32.  Per stage the bench emits the fault rate,
// stall time, and space-time product (Fig. 3) against surviving frames; the
// cumulative ReliabilityStats (retries, relocations, retired frames, lost
// pages) land at the end.
//
// Every value in BENCH_degradation.json is a function of (seed, trace,
// schedule) only — no wall-clock readings — so reruns are byte-identical.
//
// Usage: bench_degradation [--quick] [--out PATH]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "src/mem/fault_injection.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_simple.h"
#include "src/trace/synthetic.h"
#include "src/vm/space_time.h"

namespace {

constexpr dsa::WordCount kPageWords = 64;
constexpr std::size_t kFrames = 256;
constexpr std::size_t kPages = 2048;  // 8x-overcommitted core

// Surviving-frame target at the start of each stage.
constexpr std::size_t kStageFrames[] = {256, 224, 192, 160, 128, 96, 64, 32};
constexpr std::size_t kStages = sizeof(kStageFrames) / sizeof(kStageFrames[0]);

struct StageResult {
  std::size_t surviving_frames{0};
  std::uint64_t references{0};
  std::uint64_t faults{0};
  std::uint64_t failed_accesses{0};
  dsa::Cycles wait_cycles{0};
  dsa::SpaceTime space_time;
  double FaultRate() const {
    return references == 0 ? 0.0
                           : static_cast<double>(faults) / static_cast<double>(references);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_degradation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t total_refs = quick ? 80000 : 800000;
  const std::size_t stage_refs = total_refs / kStages;

  dsa::ZipfTraceParams zipf_params;
  zipf_params.extent = kPages * kPageWords;
  zipf_params.length = total_refs;
  zipf_params.seed = 1967;
  const std::vector<dsa::PageId> page_string =
      MakeZipfTrace(zipf_params).PageString(kPageWords);

  dsa::BackingStore backing(
      dsa::MakeDrumLevel("drum", kPages * kPageWords, /*word_time=*/2,
                         /*rotational_delay=*/3000));
  dsa::TransferChannel channel;

  dsa::FaultInjectorConfig fault_config;
  fault_config.seed = 0x19670de9ULL;  // fixed: reruns are byte-identical
  fault_config.max_retries = 3;
  fault_config.rates.transient_transfer = 0.002;
  fault_config.rates.permanent_slot = 0.0002;
  dsa::FaultInjector injector(fault_config);

  dsa::PagerConfig pager_config;
  pager_config.page_words = kPageWords;
  pager_config.frames = kFrames;
  dsa::Pager pager(pager_config, &backing, &channel,
                   std::make_unique<dsa::LruReplacement>(),
                   std::make_unique<dsa::DemandFetch>(), nullptr, &injector);

  std::printf("== bench_degradation: staged frame retirement under fault injection ==\n");
  std::printf("   frames=%zu page_words=%llu pages=%zu refs=%zu (%s)\n", kFrames,
              static_cast<unsigned long long>(kPageWords), kPages, total_refs,
              quick ? "quick" : "full");
  std::printf("   rates: transient=%g permanent_slot=%g max_retries=%d\n\n",
              fault_config.rates.transient_transfer, fault_config.rates.permanent_slot,
              fault_config.max_retries);
  std::printf("  %7s %10s %9s %7s %11s %14s %9s\n", "frames", "refs", "faults", "f-rate",
              "wait-cyc", "space-time", "failed");

  dsa::Cycles now = 0;
  std::size_t next_ref = 0;
  std::vector<StageResult> stages;
  for (std::size_t stage = 0; stage < kStages; ++stage) {
    // Retire frames down to this stage's target (lowest frame ids first; the
    // pager evicts any resident page and keeps running).
    const std::size_t target = kStageFrames[stage];
    for (std::size_t f = 0; f < kFrames && pager.frames().usable_frame_count() > target; ++f) {
      pager.RetireFrame(dsa::FrameId{f}, now);
    }

    StageResult result;
    result.surviving_frames = pager.frames().usable_frame_count();
    const std::uint64_t faults_before = pager.stats().faults;
    const std::uint64_t failed_before = pager.stats().reliability.failed_accesses;
    const dsa::Cycles wait_before = pager.stats().wait_cycles;
    dsa::SpaceTimeAccumulator space_time;

    const std::size_t end = std::min(next_ref + stage_refs, page_string.size());
    for (; next_ref < end; ++next_ref) {
      // One reference in four writes, so dirty evictions exercise the
      // write-back retry/relocation paths too.
      const dsa::AccessKind kind =
          next_ref % 4 == 0 ? dsa::AccessKind::kWrite : dsa::AccessKind::kRead;
      const auto outcome = pager.Access(page_string[next_ref], kind, now);
      const dsa::Cycles wait =
          outcome.has_value() ? outcome->wait_cycles : outcome.error().wait_cycles;
      space_time.Accumulate(pager.ResidentWords(), 1, /*waiting=*/false);
      if (wait > 0) {
        space_time.Accumulate(pager.ResidentWords(), wait, /*waiting=*/true);
      }
      now += wait + 1;
      ++result.references;
    }
    result.faults = pager.stats().faults - faults_before;
    result.failed_accesses = pager.stats().reliability.failed_accesses - failed_before;
    result.wait_cycles = pager.stats().wait_cycles - wait_before;
    result.space_time = space_time.product();
    stages.push_back(result);

    std::printf("  %7zu %10llu %9llu %7.4f %11llu %14.3e %9llu\n", result.surviving_frames,
                static_cast<unsigned long long>(result.references),
                static_cast<unsigned long long>(result.faults), result.FaultRate(),
                static_cast<unsigned long long>(result.wait_cycles),
                result.space_time.total(),
                static_cast<unsigned long long>(result.failed_accesses));
  }

  const dsa::ReliabilityStats& rel = pager.stats().reliability;
  std::printf("\n  reliability: %s\n", rel.Describe().c_str());
  std::printf("  retired=%llu residual=%llu (of %zu)\n",
              static_cast<unsigned long long>(rel.retired_frames),
              static_cast<unsigned long long>(rel.residual_frames), kFrames);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_degradation\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"frames\": %zu, \"page_words\": %llu, \"pages\": %zu, "
               "\"replacement\": \"lru\", \"trace\": \"zipf\", \"trace_seed\": %llu, "
               "\"injector_seed\": %llu, \"max_retries\": %d, "
               "\"transient_rate\": %g, \"permanent_slot_rate\": %g},\n",
               kFrames, static_cast<unsigned long long>(kPageWords), kPages,
               static_cast<unsigned long long>(zipf_params.seed),
               static_cast<unsigned long long>(fault_config.seed), fault_config.max_retries,
               fault_config.rates.transient_transfer, fault_config.rates.permanent_slot);
  std::fprintf(out, "  \"stages\": [\n");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageResult& s = stages[i];
    std::fprintf(out,
                 "    {\"surviving_frames\": %zu, \"references\": %llu, \"faults\": %llu, "
                 "\"fault_rate\": %.6f, \"failed_accesses\": %llu, \"wait_cycles\": %llu, "
                 "\"space_time_active\": %.1f, \"space_time_waiting\": %.1f}%s\n",
                 s.surviving_frames, static_cast<unsigned long long>(s.references),
                 static_cast<unsigned long long>(s.faults), s.FaultRate(),
                 static_cast<unsigned long long>(s.failed_accesses),
                 static_cast<unsigned long long>(s.wait_cycles), s.space_time.active,
                 s.space_time.waiting, i + 1 < stages.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"reliability\": {\"transient_errors\": %llu, \"retries\": %llu, "
               "\"retry_cycles\": %llu, \"slot_failures\": %llu, \"relocations\": %llu, "
               "\"spill_relocations\": %llu, \"frame_failures\": %llu, "
               "\"retired_frames\": %llu, \"residual_frames\": %llu, "
               "\"failed_accesses\": %llu, \"lost_pages\": %llu}\n}\n",
               static_cast<unsigned long long>(rel.transient_errors),
               static_cast<unsigned long long>(rel.retries),
               static_cast<unsigned long long>(rel.retry_cycles),
               static_cast<unsigned long long>(rel.slot_failures),
               static_cast<unsigned long long>(rel.relocations),
               static_cast<unsigned long long>(rel.spill_relocations),
               static_cast<unsigned long long>(rel.frame_failures),
               static_cast<unsigned long long>(rel.retired_frames),
               static_cast<unsigned long long>(rel.residual_frames),
               static_cast<unsigned long long>(rel.failed_accesses),
               static_cast<unsigned long long>(rel.lost_pages));
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  // The degradation run must end with the scheduled capacity still in
  // service and every stage completed without an abort.
  const bool ok = rel.retired_frames == kFrames - kStageFrames[kStages - 1] &&
                  rel.residual_frames == kStageFrames[kStages - 1];
  if (!ok) {
    std::fprintf(stderr, "retirement schedule not honoured\n");
  }
  return ok ? 0 : 1;
}
