// Experiment E8: symbolically vs linearly segmented name spaces.
//
// "One does not need to search a dictionary for a group of available
// contiguous segment names, and more importantly, one does not have to
// reallocate names when the dictionary has become fragmented ...  A
// symbolically segmented name space consequently involves far less
// bookkeeping than a linearly segmented name space."
//
// Both name spaces absorb the same segment-population churn, with objects
// that need runs of k adjacent segment names (multi-segment arrays indexed
// across names — the one feature linear naming buys).  Measured: dictionary
// bookkeeping operations, allocation failures caused purely by *name*
// fragmentation, and the name-space hole structure.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/naming/linearly_segmented.h"
#include "src/naming/symbolic.h"
#include "src/stats/table.h"

namespace {

// One multi-segment object as each name space sees it.
struct Object {
  std::uint64_t run_length{1};
  std::optional<dsa::SegmentId> linear_run;  // nullopt if the run allocation failed
  std::vector<std::string> symbols;          // empty if the symbolic create failed
};

}  // namespace

int main() {
  std::printf("== E8: segment-name bookkeeping — linear vs symbolic ==\n\n");

  dsa::Table table({"max run length", "churn ops", "linear: bookkeeping ops",
                    "linear: run failures", "linear: name holes", "linear: largest free run",
                    "symbolic: bookkeeping ops", "symbolic: failures"});

  for (const std::uint64_t kmax : {2u, 8u, 32u}) {
    constexpr int kOps = 30000;
    // 10-bit segment-name space (1024 names); objects need 1..kmax adjacent
    // names, so frees of small runs pockmark the dictionary for large ones.
    dsa::LinearlySegmentedNameSpace linear(10, 16);
    dsa::SymbolicSegmentDirectory symbolic(1024);
    dsa::Rng rng(kmax * 101);

    std::vector<Object> live;
    std::uint64_t live_names = 0;
    std::uint64_t symbolic_failures = 0;
    std::uint64_t next_object = 0;

    for (int op = 0; op < kOps; ++op) {
      // Hold occupancy near 85% of the 1024 names: failures below that line
      // are fragmentation, not exhaustion.
      const bool over_target = live_names >= 870;
      if (!live.empty() && (over_target || rng.Chance(0.45))) {
        const std::size_t i = rng.Below(live.size());
        Object& object = live[i];
        if (object.linear_run.has_value()) {
          linear.FreeRun(*object.linear_run, object.run_length);
        }
        for (const std::string& symbol : object.symbols) {
          symbolic.Destroy(symbol);
        }
        live_names -= object.run_length;
        live[i] = std::move(live.back());
        live.pop_back();
        continue;
      }

      Object object;
      object.run_length = rng.Between(1, kmax);
      // Linear side: run_length *contiguous* names (counts failures itself).
      object.linear_run = linear.AllocateRun(object.run_length);
      // Symbolic side: any run_length fresh symbols.
      bool symbolic_ok = true;
      for (std::uint64_t part = 0; part < object.run_length; ++part) {
        const std::string symbol =
            "obj" + std::to_string(next_object) + "." + std::to_string(part);
        if (!symbolic.Create(symbol).has_value()) {
          symbolic_ok = false;
          break;
        }
        object.symbols.push_back(symbol);
      }
      if (!symbolic_ok) {
        ++symbolic_failures;
        for (const std::string& symbol : object.symbols) {
          symbolic.Destroy(symbol);
        }
        object.symbols.clear();
      }
      ++next_object;
      live_names += object.run_length;
      live.push_back(std::move(object));
    }

    table.AddRow()
        .AddCell(kmax)
        .AddCell(static_cast<std::uint64_t>(kOps))
        .AddCell(linear.bookkeeping_ops())
        .AddCell(linear.run_failures())
        .AddCell(static_cast<std::uint64_t>(linear.name_hole_count()))
        .AddCell(linear.largest_free_run())
        .AddCell(symbolic.bookkeeping_ops())
        .AddCell(symbolic_failures);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): with short runs the two designs cost alike; as\n"
              "objects span more adjacent names, the linear dictionary's searches\n"
              "lengthen and runs fail from pure name fragmentation (free names exist,\n"
              "contiguous runs do not) while the symbolic directory stays flat-cost and\n"
              "only fails when genuinely full — \"far less bookkeeping\".\n");
  return 0;
}
