// Experiment E11 (conclusion i): integrating storage allocation with
// scheduling.
//
// "It cannot be stressed too strongly that the strategies of storage
// allocation must be fully integrated with the overall strategies for
// allocating and scheduling the computer system resources.  For example, a
// system in which entirely independent decisions are taken as to processor
// scheduling and storage allocation is unlikely to perform acceptably in any
// but the most undemanding of environments."
//
// The same over-committed job mix runs under (a) storage-blind round-robin
// and (b) a residency-aware scheduler that prefers the ready job with the
// most storage investment.  Core pressure is swept from undemanding to
// severe; the integrated scheduler's edge should appear exactly where the
// paper predicts — under pressure.

#include <cstdio>

#include "src/sched/multiprogramming.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"

namespace {

dsa::MultiprogramReport RunMix(dsa::SchedulerKind scheduler, std::size_t max_active,
                               dsa::WordCount core_words) {
  dsa::MultiprogramConfig config;
  config.scheduler = scheduler;
  config.max_active = max_active;
  config.core_words = core_words;
  config.page_words = 512;
  config.backing_level = dsa::MakeDrumLevel("drum", 1u << 20, 2, 6000);
  config.replacement = dsa::ReplacementStrategyKind::kLru;
  config.quantum = 3000;
  dsa::MultiprogrammingSimulator sim(config);
  for (std::size_t j = 0; j < 6; ++j) {
    dsa::WorkingSetTraceParams params;
    params.extent = 8192;
    params.region_words = 256;
    params.regions_per_phase = 10;
    params.phases = 4;
    params.phase_length = 6000;
    params.seed = 400 + j;
    sim.AddJob("job", dsa::MakeWorkingSetTrace(params));
  }
  return sim.Run();
}

}  // namespace

int main() {
  std::printf("== E11: independent vs integrated scheduling decisions ==\n\n");

  dsa::Table table({"core words", "pressure", "scheduler", "faults", "CPU utilisation",
                    "throughput (refs/cyc)", "makespan (cyc)"});
  for (const dsa::WordCount core : {dsa::WordCount{32768}, dsa::WordCount{16384},
                                    dsa::WordCount{8192}, dsa::WordCount{4096}}) {
    const char* pressure = core >= 32768 ? "undemanding"
                           : core >= 16384 ? "moderate"
                           : core >= 8192  ? "heavy"
                                           : "severe";
    struct SchedulerCase {
      const char* label;
      dsa::SchedulerKind kind;
      std::size_t max_active;
    };
    for (const SchedulerCase& c :
         {SchedulerCase{"round-robin, all 6 active (independent)",
                        dsa::SchedulerKind::kRoundRobin, 0},
          SchedulerCase{"residency-aware dispatch", dsa::SchedulerKind::kResidencyAware, 0},
          SchedulerCase{"load-controlled, 2 active (integrated)",
                        dsa::SchedulerKind::kRoundRobin, 2}}) {
      const dsa::MultiprogramReport report = RunMix(c.kind, c.max_active, core);
      table.AddRow()
          .AddCell(core)
          .AddCell(pressure)
          .AddCell(c.label)
          .AddCell(report.faults)
          .AddCell(report.CpuUtilization(), 3)
          .AddCell(report.Throughput(), 5)
          .AddCell(report.total_cycles);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): with core to spare the schedulers tie — \"the most\n"
              "undemanding of environments\".  Under pressure the storage-blind rotation\n"
              "spreads frames across all six jobs and thrashes; the integrated decision\n"
              "(admit only as many jobs as core can hold) concentrates storage and keeps\n"
              "throughput up.  Allocation and scheduling decisions must be made together.\n");
  return 0;
}
