// The overload degree sweep shared by bench_overload (the thrashing-cliff
// experiment) and bench_parallel (the sweep-level speedup curve): 3 load
// control policies x 8 multiprogramming degrees = 24 independent cells,
// each a pure function of its seeds.  Flattening the (policy, degree) grid
// into a single cell index lets a SweepRunner shard it across cores while
// the index-ordered result slots keep the emitted JSON byte-identical to
// the serial run.

#ifndef BENCH_OVERLOAD_SWEEP_H_
#define BENCH_OVERLOAD_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/sweep_runner.h"
#include "src/sched/multiprogramming.h"
#include "src/trace/synthetic.h"

namespace overload_sweep {

constexpr dsa::WordCount kPageWords = 256;
constexpr std::size_t kFrames = 16;

constexpr std::size_t kDegrees[] = {1, 2, 3, 4, 6, 8, 12, 16};
constexpr std::size_t kNumDegrees = sizeof(kDegrees) / sizeof(kDegrees[0]);

inline const char* const kPolicies[] = {"uncontrolled", "adaptive", "working-set"};
constexpr std::size_t kNumPolicies = 3;
constexpr std::size_t kNumCells = kNumPolicies * kNumDegrees;

struct Cell {
  std::size_t degree{0};
  double cpu_utilization{0.0};
  double throughput{0.0};
  std::uint64_t faults{0};
  std::uint64_t deactivations{0};
  std::uint64_t reactivations{0};
  dsa::Cycles total_cycles{0};

  bool operator==(const Cell&) const = default;
};

inline dsa::MultiprogramConfig ConfigFor(std::size_t policy) {
  dsa::MultiprogramConfig config;
  config.core_words = kFrames * kPageWords;
  config.page_words = kPageWords;
  config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, /*word_time=*/1,
                                            /*rotational_delay=*/300);
  config.quantum = 2000;
  config.context_switch_cycles = 20;
  if (policy == 1) {
    config.load_control.policy = dsa::LoadControlPolicy::kAdaptiveFaultRate;
    config.load_control.window = 10000;
    // High enough that the cold-start compulsory-fault transient (a few
    // faults over the first few hundred references) cannot trip the knee;
    // real thrash sustains thousands of references per window.
    config.load_control.min_window_references = 1500;
    // Healthy steady-state fault rate for the loop workload is ~1e-4 (one
    // new page per body sweep); even mild overcommit sustains ~4e-3.  The
    // knee sits between them: a failed probe must trip the shed within a
    // window or two, not linger in semi-thrash under the high-water mark.
    config.load_control.high_fault_rate = 0.002;
    config.load_control.low_fault_rate = 0.0005;
    config.load_control.hysteresis = 20000;
    config.load_control.shed_hysteresis = 3000;
  } else if (policy == 2) {
    config.load_control.policy = dsa::LoadControlPolicy::kWorkingSetAdmission;
    config.load_control.working_set_tau = 8000;
    config.load_control.hysteresis = 6000;
  }
  return config;
}

inline Cell RunCell(std::size_t policy, std::size_t degree, std::size_t job_length) {
  dsa::MultiprogrammingSimulator sim(ConfigFor(policy));
  for (std::size_t j = 0; j < degree; ++j) {
    dsa::LoopTraceParams params;
    params.extent = 2048;
    params.body_words = 512;    // ~2-3 resident pages per job
    params.advance_words = 256;
    params.iterations = 8;      // 4096 refs per one-page slide: heavy reuse
    params.length = job_length;
    params.seed = 1967 + j;
    sim.AddJob("job-" + std::to_string(j), MakeLoopTrace(params));
  }
  const dsa::MultiprogramReport report = sim.Run();
  Cell cell;
  cell.degree = degree;
  cell.cpu_utilization = report.CpuUtilization();
  cell.throughput = report.Throughput();
  cell.faults = report.faults;
  cell.deactivations = report.deactivations;
  cell.reactivations = report.reactivations;
  cell.total_cycles = report.total_cycles;
  return cell;
}

// The whole grid, sharded `jobs`-wide; results[policy][degree_index].
// Byte-identical output for any worker count: cell i writes only slot i,
// and the grid is re-folded in index order afterwards.
inline std::vector<std::vector<Cell>> RunSweep(std::size_t job_length, unsigned jobs) {
  dsa::SweepRunner runner(jobs);
  const std::vector<Cell> flat = runner.Run(kNumCells, [&](std::size_t i) {
    return RunCell(i / kNumDegrees, kDegrees[i % kNumDegrees], job_length);
  });
  std::vector<std::vector<Cell>> grid(kNumPolicies);
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    grid[p].assign(flat.begin() + static_cast<std::ptrdiff_t>(p * kNumDegrees),
                   flat.begin() + static_cast<std::ptrdiff_t>((p + 1) * kNumDegrees));
  }
  return grid;
}

// References every job of every cell retires over the sweep (for the
// refs-per-second rate bench_parallel reports).
inline std::uint64_t SweepReferences(std::size_t job_length) {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < kNumDegrees; ++d) {
    total += static_cast<std::uint64_t>(kDegrees[d]) * job_length;
  }
  return total * kNumPolicies;
}

}  // namespace overload_sweep

#endif  // BENCH_OVERLOAD_SWEEP_H_
