// Experiment E6: storage packing and the autonomous channel.
//
// "The need to speed up the process of storage packing to reduce
// fragmentation is sometimes catered for by fast autonomous storage to
// storage channel operations."  Part 1 prices compaction under the CPU copy
// loop vs the autonomous channel across heap sizes.  Part 2 shows compaction
// earning its keep inside a segment manager: fragmented core that would
// otherwise force evictions (and refetches) is packed instead.

#include <cstdio>
#include <vector>

#include "src/alloc/compaction.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/rng.h"
#include "src/seg/segment_manager.h"
#include "src/stats/table.h"

namespace {

// Builds a fragmented heap at ~`live_fraction` occupancy with object churn.
void Fragment(dsa::VariableAllocator* alloc, double live_fraction, std::uint64_t seed) {
  dsa::Rng rng(seed);
  std::vector<dsa::PhysicalAddress> live;
  const dsa::WordCount target =
      static_cast<dsa::WordCount>(static_cast<double>(alloc->capacity()) * live_fraction);
  for (int op = 0; op < 60000; ++op) {
    const bool want_free = alloc->live_words() > target || (!live.empty() && rng.Chance(0.35));
    if (want_free && !live.empty()) {
      const std::size_t i = rng.Below(live.size());
      alloc->Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (auto block = alloc->Allocate(rng.Between(16, 512))) {
      live.push_back(block->addr);
    }
  }
}

}  // namespace

int main() {
  std::printf("== E6 part 1: compaction cost — CPU copy loop vs autonomous channel ==\n\n");

  dsa::Table cost_table({"heap words", "live %", "holes before", "words moved",
                         "CPU-loop cycles", "autonomous cycles", "autonomous CPU cycles",
                         "speedup"});
  for (dsa::WordCount heap : {dsa::WordCount{1} << 14, dsa::WordCount{1} << 16,
                              dsa::WordCount{1} << 18}) {
    for (double live_fraction : {0.5, 0.8}) {
      // Two identical heaps, one per channel flavour.
      dsa::VariableAllocator cpu_heap(
          heap, dsa::MakePlacementPolicy(dsa::PlacementStrategyKind::kFirstFit));
      dsa::VariableAllocator dma_heap(
          heap, dsa::MakePlacementPolicy(dsa::PlacementStrategyKind::kFirstFit));
      Fragment(&cpu_heap, live_fraction, 5);
      Fragment(&dma_heap, live_fraction, 5);

      dsa::CompactionEngine cpu_engine(dsa::CpuPackingChannel());
      dsa::CompactionEngine dma_engine(dsa::AutonomousPackingChannel());
      const dsa::CompactionResult cpu = cpu_engine.Compact(&cpu_heap, nullptr);
      const dsa::CompactionResult dma = dma_engine.Compact(&dma_heap, nullptr);

      cost_table.AddRow()
          .AddCell(heap)
          .AddCell(100.0 * live_fraction, 0)
          .AddCell(static_cast<std::uint64_t>(cpu.holes_before))
          .AddCell(cpu.words_moved)
          .AddCell(cpu.move_cycles)
          .AddCell(dma.move_cycles)
          .AddCell(dma.cpu_cycles)
          .AddCell(static_cast<double>(cpu.move_cycles) /
                       static_cast<double>(dma.move_cycles == 0 ? 1 : dma.move_cycles),
                   2);
    }
  }
  std::printf("%s\n", cost_table.Render().c_str());

  std::printf("== E6 part 2: compaction vs eviction inside a segment manager ==\n\n");
  dsa::Table policy_table({"corrective action", "segment faults", "evictions", "compactions",
                           "words compacted", "wait cycles", "compaction cycles"});
  for (const bool compact : {false, true}) {
    dsa::BackingStore backing(dsa::MakeDrumLevel("drum", 1u << 20, 2, 6000));
    dsa::SegmentManagerConfig config;
    config.core_words = 16384;
    config.max_segment_extent = 2048;
    config.placement = dsa::PlacementStrategyKind::kBestFit;
    config.compact_on_fragmentation = compact;
    config.packing = dsa::AutonomousPackingChannel();
    dsa::SegmentManager manager(config, &backing, nullptr);

    // Segment churn: a rotating population of odd-sized segments.
    dsa::Rng rng(9);
    std::vector<dsa::SegmentId> segments;
    dsa::Cycles now = 0;
    for (int op = 0; op < 20000; ++op) {
      ++now;
      if (segments.size() > 24 && rng.Chance(0.4)) {
        const std::size_t i = rng.Below(segments.size());
        manager.Destroy(segments[i]);
        segments[i] = segments.back();
        segments.pop_back();
      } else if (rng.Chance(0.5)) {
        const dsa::SegmentId seg = manager.Create(rng.Between(64, 2048));
        segments.push_back(seg);
        (void)manager.Access(seg, 0, dsa::AccessKind::kWrite, now);
      } else if (!segments.empty()) {
        const dsa::SegmentId seg = segments[rng.Below(segments.size())];
        (void)manager.Access(seg, 0, dsa::AccessKind::kRead, now);
      }
    }
    const dsa::SegmentManagerStats& stats = manager.stats();
    policy_table.AddRow()
        .AddCell(compact ? "compact on fragmentation" : "evict only")
        .AddCell(stats.segment_faults)
        .AddCell(stats.evictions)
        .AddCell(stats.compactions)
        .AddCell(stats.words_compacted)
        .AddCell(stats.wait_cycles)
        .AddCell(stats.compaction_cycles);
  }
  std::printf("%s\n", policy_table.Render().c_str());

  std::printf("Shape check (paper): the autonomous channel moves words ~4x faster than\n"
              "the CPU loop and leaves the CPU free; with compaction enabled the segment\n"
              "manager trades cheap in-core moves for expensive drum round-trips —\n"
              "fewer evictions and less waiting at the price of packing cycles.\n");
  return 0;
}
