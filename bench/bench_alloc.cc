// Allocator × trace fragmentation/latency grid (EXPERIMENTS.md E14).
//
// Every allocator design replays every workload trace through the common
// Allocator interface, and each cell reports the two axes the paper's
// placement discussion trades against each other:
//
//   latency        mean deterministic bookkeeping cycles per allocation and
//                  per free, under the shared tariff of src/alloc/cost.h
//                  (never wall-clock — the grid must be byte-identical at
//                  any --jobs width);
//   fragmentation  external fragmentation sampled across the run (mean,
//                  max, final) plus mean internal waste.
//
// The gate encodes the segregated-fit design claim: on the zipf and phase
// traces (the size-locality workloads quick lists are built for) the
// segregated allocator must beat best-fit on mean allocation cycles while
// matching or improving its mean external fragmentation.  Gate violation
// exits non-zero, so check.sh and CI catch a regression in either axis.
//
// Cells are independent pure functions of (allocator spec, trace), so
// --jobs (or DSA_JOBS) shards the grid across cores; results land in
// index-ordered slots and the JSON is bit-identical at any width.
//
// Usage: bench_alloc [--quick] [--out PATH] [--jobs N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_meta.h"
#include "src/alloc/allocator_factory.h"
#include "src/exec/sweep_runner.h"
#include "src/exec/thread_pool.h"
#include "src/stats/fragmentation.h"
#include "src/trace/allocation.h"

namespace {

constexpr dsa::WordCount kCapacity = 1u << 16;
constexpr dsa::WordCount kSlabChunk = 2048;  // the traces' largest request

struct AllocatorSpec {
  const char* label;
  dsa::PlacementStrategyKind kind;
  bool eager_coalescing;  // segregated-fit with quick lists disabled
};

constexpr AllocatorSpec kAllocators[] = {
    {"first-fit", dsa::PlacementStrategyKind::kFirstFit, false},
    {"next-fit", dsa::PlacementStrategyKind::kNextFit, false},
    {"best-fit", dsa::PlacementStrategyKind::kBestFit, false},
    {"buddy", dsa::PlacementStrategyKind::kBuddy, false},
    {"slab-pool", dsa::PlacementStrategyKind::kSlabPool, false},
    {"segregated-fit", dsa::PlacementStrategyKind::kSegregatedFit, false},
    {"segregated-eager", dsa::PlacementStrategyKind::kSegregatedFit, true},
};
constexpr std::size_t kNumAllocators = sizeof(kAllocators) / sizeof(kAllocators[0]);

std::unique_ptr<dsa::Allocator> BuildAllocator(const AllocatorSpec& spec) {
  dsa::AllocatorBuildOptions options;
  options.slab.chunk_words = kSlabChunk;
  if (spec.eager_coalescing) {
    options.segregated.quick_list_capacity = 0;
  }
  return dsa::MakeAllocator(spec.kind, kCapacity, options);
}

std::vector<dsa::AllocationTrace> BuildTraces(bool quick) {
  const std::size_t ops = quick ? 4000 : 20000;
  std::vector<dsa::AllocationTrace> traces;

  dsa::AllocationTraceParams uniform;
  uniform.operations = ops;
  uniform.distribution = dsa::SizeDistribution::kUniform;
  uniform.min_size = 1;
  uniform.max_size = 512;
  uniform.target_live = 128;
  uniform.seed = 101;
  traces.push_back(dsa::MakeAllocationTrace(uniform));

  dsa::AllocationTraceParams zipf;
  zipf.operations = ops;
  zipf.distribution = dsa::SizeDistribution::kZipf;
  zipf.min_size = 8;
  zipf.max_size = 2048;
  zipf.zipf_theta = 1.1;
  zipf.zipf_distinct_sizes = 32;
  zipf.target_live = 300;
  zipf.seed = 102;
  traces.push_back(dsa::MakeAllocationTrace(zipf));

  dsa::PhaseTraceParams phase;
  phase.operations = ops;
  phase.seed = 103;
  traces.push_back(dsa::MakePhaseAllocationTrace(phase));

  dsa::MeasuredTraceParams measured;
  measured.allocations = quick ? 2500 : 10000;
  measured.seed = 104;
  traces.push_back(dsa::MakeMeasuredAllocationTrace(measured));

  return traces;
}

struct CellResult {
  std::string allocator;
  std::string trace;
  std::uint64_t allocations{0};
  std::uint64_t failures{0};
  double mean_alloc_cycles{0.0};
  double mean_free_cycles{0.0};
  double ext_frag_mean{0.0};
  double ext_frag_max{0.0};
  double ext_frag_final{0.0};
  double internal_frag_mean{0.0};
  std::uint64_t quick_hits{0};
  std::uint64_t deferred_drains{0};
  double seconds{0.0};
};

CellResult RunCell(const AllocatorSpec& spec, const dsa::AllocationTrace& trace) {
  const auto start = std::chrono::steady_clock::now();
  const std::unique_ptr<dsa::Allocator> alloc = BuildAllocator(spec);

  std::unordered_map<std::uint64_t, dsa::PhysicalAddress> placed;
  constexpr std::size_t kSampleEvery = 64;
  double frag_sum = 0.0;
  double frag_max = 0.0;
  double internal_sum = 0.0;
  std::size_t samples = 0;

  std::size_t op_index = 0;
  for (const dsa::AllocOp& op : trace.ops) {
    if (op.kind == dsa::AllocOpKind::kAllocate) {
      if (const auto block = alloc->Allocate(op.size)) {
        placed.emplace(op.request, block->addr);
      }
    } else {
      const auto it = placed.find(op.request);
      if (it != placed.end()) {  // frees of failed allocations are skipped
        alloc->Free(it->second);
        placed.erase(it);
      }
    }
    if (++op_index % kSampleEvery == 0) {
      const dsa::FragmentationReport report = alloc->Fragmentation();
      const double ext = report.ExternalFragmentation();
      frag_sum += ext;
      frag_max = ext > frag_max ? ext : frag_max;
      internal_sum += report.InternalFragmentation();
      ++samples;
    }
  }

  const dsa::AllocatorStats& stats = alloc->stats();
  CellResult result;
  result.allocator = spec.label;
  result.trace = trace.label;
  result.allocations = stats.allocations;
  result.failures = stats.failures;
  result.mean_alloc_cycles = stats.MeanAllocCycles();
  result.mean_free_cycles = stats.MeanFreeCycles();
  result.ext_frag_mean = samples > 0 ? frag_sum / static_cast<double>(samples) : 0.0;
  result.ext_frag_max = frag_max;
  result.ext_frag_final = alloc->Fragmentation().ExternalFragmentation();
  result.internal_frag_mean =
      samples > 0 ? internal_sum / static_cast<double>(samples) : 0.0;
  if (const auto* seg = dynamic_cast<const dsa::SegregatedFitAllocator*>(alloc.get())) {
    result.quick_hits = seg->quick_stats().quick_hits;
    result.deferred_drains = seg->quick_stats().drains;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

struct Gate {
  std::string trace;
  double seg_cycles{0.0};
  double best_fit_cycles{0.0};
  double seg_frag{0.0};
  double best_fit_frag{0.0};
  bool pass{false};
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_alloc.json";
  unsigned jobs = dsa::JobsFromEnv(/*fallback=*/1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) {
        jobs = dsa::HardwareJobs();
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<dsa::AllocationTrace> traces = BuildTraces(quick);
  const std::size_t cells = kNumAllocators * traces.size();

  std::printf("== bench_alloc: allocator x trace fragmentation/latency grid ==\n");
  std::printf("   capacity=%llu allocators=%zu traces=%zu (%s, jobs=%u)\n\n",
              static_cast<unsigned long long>(kCapacity), kNumAllocators, traces.size(),
              quick ? "quick" : "full", jobs);

  dsa::SweepRunner runner(jobs);
  const std::vector<CellResult> grid = runner.Run(cells, [&](std::size_t i) {
    return RunCell(kAllocators[i / traces.size()], traces[i % traces.size()]);
  });

  std::printf("  %-17s %-15s %9s %7s %9s %9s %9s %9s\n", "allocator", "trace", "allocs",
              "fails", "cyc/alloc", "cyc/free", "extfrag", "intfrag");
  for (const CellResult& cell : grid) {
    std::printf("  %-17s %-15s %9llu %7llu %9.2f %9.2f %9.4f %9.4f\n",
                cell.allocator.c_str(), cell.trace.c_str(),
                static_cast<unsigned long long>(cell.allocations),
                static_cast<unsigned long long>(cell.failures), cell.mean_alloc_cycles,
                cell.mean_free_cycles, cell.ext_frag_mean, cell.internal_frag_mean);
  }

  // The design-claim gates: segregated-fit vs best-fit on the
  // size-locality traces.
  auto find_cell = [&](const char* allocator, const std::string& trace) -> const CellResult* {
    for (const CellResult& cell : grid) {
      if (cell.allocator == allocator && cell.trace == trace) {
        return &cell;
      }
    }
    return nullptr;
  };
  std::vector<Gate> gates;
  bool all_pass = true;
  for (const char* trace_label : {"alloc-zipf", "alloc-phase"}) {
    const CellResult* seg = find_cell("segregated-fit", trace_label);
    const CellResult* best = find_cell("best-fit", trace_label);
    Gate gate;
    gate.trace = trace_label;
    if (seg != nullptr && best != nullptr) {
      gate.seg_cycles = seg->mean_alloc_cycles;
      gate.best_fit_cycles = best->mean_alloc_cycles;
      gate.seg_frag = seg->ext_frag_mean;
      gate.best_fit_frag = best->ext_frag_mean;
      gate.pass = gate.seg_cycles < gate.best_fit_cycles &&
                  gate.seg_frag <= gate.best_fit_frag;
    }
    all_pass = all_pass && gate.pass;
    gates.push_back(gate);
  }

  std::printf("\n  gates (segregated-fit vs best-fit):\n");
  for (const Gate& gate : gates) {
    std::printf("    %-15s cycles %.2f vs %.2f, extfrag %.4f vs %.4f -> %s\n",
                gate.trace.c_str(), gate.seg_cycles, gate.best_fit_cycles, gate.seg_frag,
                gate.best_fit_frag, gate.pass ? "pass" : "FAIL");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_alloc\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench_meta::WriteHostStamp(out, quick);
  std::fprintf(out,
               "  \"config\": {\"capacity\": %llu, \"allocators\": %zu, \"traces\": %zu, "
               "\"slab_chunk_words\": %llu},\n",
               static_cast<unsigned long long>(kCapacity), kNumAllocators, traces.size(),
               static_cast<unsigned long long>(kSlabChunk));
  std::fprintf(out, "  \"grid\": [\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CellResult& cell = grid[i];
    std::fprintf(out,
                 "    {\"allocator\": \"%s\", \"trace\": \"%s\", \"allocations\": %llu, "
                 "\"failures\": %llu, \"mean_alloc_cycles\": %.4f, "
                 "\"mean_free_cycles\": %.4f, \"ext_frag_mean\": %.6f, "
                 "\"ext_frag_max\": %.6f, \"ext_frag_final\": %.6f, "
                 "\"internal_frag_mean\": %.6f, \"quick_hits\": %llu, "
                 "\"deferred_drains\": %llu, \"seconds\": %.6f}%s\n",
                 cell.allocator.c_str(), cell.trace.c_str(),
                 static_cast<unsigned long long>(cell.allocations),
                 static_cast<unsigned long long>(cell.failures), cell.mean_alloc_cycles,
                 cell.mean_free_cycles, cell.ext_frag_mean, cell.ext_frag_max,
                 cell.ext_frag_final, cell.internal_frag_mean,
                 static_cast<unsigned long long>(cell.quick_hits),
                 static_cast<unsigned long long>(cell.deferred_drains), cell.seconds,
                 i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gates\": [\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& gate = gates[i];
    std::fprintf(out,
                 "    {\"trace\": \"%s\", \"segregated_cycles\": %.4f, "
                 "\"best_fit_cycles\": %.4f, \"segregated_frag\": %.6f, "
                 "\"best_fit_frag\": %.6f, \"pass\": %s}%s\n",
                 gate.trace.c_str(), gate.seg_cycles, gate.best_fit_cycles, gate.seg_frag,
                 gate.best_fit_frag, gate.pass ? "true" : "false",
                 i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"summary\": {\"all_gates_pass\": %s}\n}\n",
               all_pass ? "true" : "false");
  std::fclose(out);
  std::printf("\n  wrote %s\n", out_path.c_str());

  if (!all_pass) {
    std::fprintf(stderr,
                 "segregated-fit failed its latency/fragmentation gate vs best-fit\n");
    return 1;
  }
  return 0;
}
