// Experiment E7: the cost of addressing sophistication, and facility (vi).
//
// "The basic disadvantage of a segmented name space over a linear name space
// is the added complexity of the addressing mechanism ... this increase can
// be considerably reduced by the use of sophisticated hardware mechanisms."
// The full ladder — absolute addressing, relocation+limit, one-level paging,
// two-level segmentation+paging — each without and with a small associative
// memory, on one locality workload.

#include <cstdio>

#include "src/map/relocation_limit.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"

namespace {

const dsa::ReferenceTrace& Workload() {
  static const dsa::ReferenceTrace* trace = [] {
    dsa::WorkingSetTraceParams params;
    params.extent = 1 << 15;
    params.region_words = 256;
    params.regions_per_phase = 12;
    params.phases = 5;
    params.phase_length = 10000;
    return new dsa::ReferenceTrace(dsa::MakeWorkingSetTrace(params));
  }();
  return *trace;
}

}  // namespace

int main() {
  std::printf("== E7: addressing overhead across the mechanism ladder ==\n\n");

  dsa::Table table({"addressing mechanism", "assoc memory", "mean map cost (cyc/ref)",
                    "assoc hit rate", "relocatable?", "bounds checked?",
                    "artificial contiguity?"});

  // Rung 0: absolute addresses (early machines) — free, and rigid.
  table.AddRow()
      .AddCell("absolute (names are addresses)")
      .AddCell("-")
      .AddCell(0.0, 2)
      .AddCell("-")
      .AddCell("no")
      .AddCell("no")
      .AddCell("no");

  // Rung 1: relocation + limit registers.
  {
    dsa::RelocationLimitMapper mapper(dsa::PhysicalAddress{0}, 1u << 15);
    for (const dsa::Reference& ref : Workload().refs) {
      mapper.Translate(ref.name, ref.kind, 0);
    }
    table.AddRow()
        .AddCell("relocation + limit registers")
        .AddCell("-")
        .AddCell(mapper.MeanTranslationCost(), 2)
        .AddCell("-")
        .AddCell("yes (whole program)")
        .AddCell("yes (one limit)")
        .AddCell("no");
  }

  // Rungs 2-3: one-level paging without/with TLB.
  for (const std::size_t tlb : {0u, 8u}) {
    dsa::PagedVmConfig config;
    config.label = "ladder";
    config.address_bits = 15;
    config.core_words = 32768;  // everything resident: measure pure map cost
    config.page_words = 512;
    config.tlb_entries = tlb;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 100);
    dsa::PagedLinearVm vm(config);
    const dsa::VmReport report = vm.Run(Workload());
    table.AddRow()
        .AddCell("page table (linear names)")
        .AddCell(tlb == 0 ? "none" : "8 entries")
        .AddCell(report.MeanTranslationCost(), 2)
        .AddCell(tlb == 0 ? std::string("-") : dsa::FormatFixed(report.tlb_hit_rate, 3))
        .AddCell("yes (per page)")
        .AddCell("name-space limit")
        .AddCell("yes");
  }

  // Rungs 4-5: segment + page tables without/with TLB.
  for (const std::size_t tlb : {0u, 8u}) {
    dsa::PagedSegmentedVmConfig config;
    config.label = "ladder";
    config.segment_bits = 7;
    config.offset_bits = 13;
    config.core_words = 32768;
    config.page_words = 512;
    config.tlb_entries = tlb;
    config.workload_segment_words = 4096;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, 2, 100);
    dsa::PagedSegmentedVm vm(config);
    const dsa::VmReport report = vm.Run(Workload());
    table.AddRow()
        .AddCell("segment + page tables (Fig. 4)")
        .AddCell(tlb == 0 ? "none" : "8 entries")
        .AddCell(report.MeanTranslationCost(), 2)
        .AddCell(tlb == 0 ? std::string("-") : dsa::FormatFixed(report.tlb_hit_rate, 3))
        .AddCell("yes (per page)")
        .AddCell("yes (per segment)")
        .AddCell("yes");
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): each rung of function (relocation, protection, per-\n"
              "segment bounds, artificial contiguity) adds cycles per reference; the\n"
              "8-entry associative memory collapses the two-table cost back toward the\n"
              "relocation-register price — the mechanism that makes segmentation viable.\n");
  return 0;
}
