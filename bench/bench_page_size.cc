// Experiment E2: choosing the size of the uniform allocation unit.
//
// "If it is too small, there will be an unacceptable amount of overhead.  If
// it is too large, too much space will be wasted."  The sweep measures both
// arms on one workload: overhead = faults (each costs a fixed trap/fetch
// start-up) plus mapping-table core words; waste = internal fragmentation
// for a realistic object population.

#include <cstdio>

#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

int main() {
  std::printf("== E2: page-size sweep — overhead vs waste ==\n\n");

  dsa::WorkingSetTraceParams workload;
  workload.extent = 65536;
  workload.region_words = 300;  // object-sized regions, deliberately unaligned
  workload.regions_per_phase = 24;
  workload.phases = 6;
  workload.phase_length = 10000;
  const dsa::ReferenceTrace trace = dsa::MakeWorkingSetTrace(workload);

  // The object population whose tails waste page interiors: one 300-word
  // object per region touched.
  const double objects = 24 * 6;
  const double object_words = 300;

  dsa::Table table({"page size", "frames", "faults", "fault overhead (cyc)",
                    "table words", "internal waste (words)", "waste % of live"});

  for (dsa::WordCount page : {dsa::WordCount{32}, dsa::WordCount{64}, dsa::WordCount{128},
                              dsa::WordCount{256}, dsa::WordCount{512}, dsa::WordCount{1024},
                              dsa::WordCount{2048}, dsa::WordCount{4096},
                              dsa::WordCount{8192}}) {
    dsa::PagedVmConfig config;
    config.label = "page-sweep";
    config.address_bits = 17;
    config.core_words = 16384;
    config.page_words = page;
    config.backing_level = dsa::MakeDrumLevel("drum", 1u << 18, /*word_time=*/2,
                                              /*rotational_delay=*/6000);
    config.replacement = dsa::ReplacementStrategyKind::kLru;
    dsa::PagedLinearVm vm(config);
    const dsa::VmReport report = vm.Run(trace);

    const std::uint64_t table_words = (1u << 17) / page;  // one map entry per page
    // Internal waste: each object occupies ceil(300/page) pages.
    const double pages_per_object =
        static_cast<double>((300 + page - 1) / page);
    const double waste = objects * (pages_per_object * static_cast<double>(page) - object_words);
    table.AddRow()
        .AddCell(page)
        .AddCell(static_cast<std::uint64_t>(16384 / page))
        .AddCell(report.faults)
        .AddCell(report.wait_cycles)
        .AddCell(table_words)
        .AddCell(waste, 0)
        .AddCell(100.0 * waste / (objects * object_words), 1);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): the fault column is U-shaped — tiny pages fault on\n"
              "every object tail and bloat the mapping table; huge pages leave the fixed\n"
              "core too few frames and thrash — while internal waste rises monotonically\n"
              "with page size.  The unit size is \"one of the problems of designing a\n"
              "system based on a uniform unit\"; ATLAS chose 512, MULTICS hedged with\n"
              "1024+64.\n");
  return 0;
}
