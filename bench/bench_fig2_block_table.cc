// Experiment F2 (Figure 2): the simple block-table mapping scheme.
//
// "The mapping is usually based on the use of a group of the most
// significant bits of the name."  The block size choice trades the mapping
// table's own core consumption against internal waste in the final block of
// every mapped object — the same tension the page-size discussion expands.

#include <cstdio>

#include "src/map/block_table.h"
#include "src/stats/table.h"

int main() {
  std::printf("== F2: simple block-table mapping (Fig. 2) ==\n\n");

  // Map a 24-bit name space for a resident program population of 100
  // objects averaging 1,500 words (stand-ins for routines/arrays).
  constexpr dsa::WordCount kNameSpace = 1u << 24;
  constexpr std::size_t kObjects = 100;
  constexpr dsa::WordCount kMeanObjectWords = 1500;

  dsa::Table table({"block size (words)", "table entries", "table words",
                    "mean access cost (cyc)", "internal waste (words)",
                    "waste % of live"});

  for (dsa::WordCount block = 64; block <= 8192; block *= 2) {
    const std::size_t entries = static_cast<std::size_t>(kNameSpace / block);
    dsa::BlockTableMapper mapper(block, entries);
    // Bind the first few blocks and sample the access cost.
    mapper.SetBlock(0, dsa::PhysicalAddress{0});
    for (int i = 0; i < 1000; ++i) {
      mapper.Translate(dsa::Name{static_cast<std::uint64_t>(i) % block},
                       dsa::AccessKind::kRead, 0);
    }
    // Internal waste: each object's final block is on average half unused.
    const dsa::WordCount live = kObjects * kMeanObjectWords;
    const dsa::WordCount waste = kObjects * block / 2;
    table.AddRow()
        .AddCell(block)
        .AddCell(static_cast<std::uint64_t>(entries))
        .AddCell(mapper.TableWords())
        .AddCell(mapper.MeanTranslationCost(), 2)
        .AddCell(waste)
        .AddCell(100.0 * static_cast<double>(waste) / static_cast<double>(live), 1);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check (paper): access cost is flat (one table reference + one add)\n"
              "regardless of block size; the costs that move are the table's own core\n"
              "words (shrinking as blocks grow) and the half-block-per-object internal\n"
              "waste (growing as blocks grow) — \"if it is too small, there will be an\n"
              "unacceptable amount of overhead.  If it is too large, too much space will\n"
              "be wasted.\"\n");
  return 0;
}
