// Experiment T-A (Appendix A.1-A.7): the machine survey as a measured table.
//
// The seven machines are independent simulation cells; --jobs / DSA_JOBS
// shards them over the SweepRunner (row order, and therefore the rendered
// tables, are identical at any worker count).
//
// Usage: bench_survey [--jobs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/exec/thread_pool.h"
#include "src/machines/survey.h"

int main(int argc, char** argv) {
  unsigned jobs = dsa::JobsFromEnv(/*fallback=*/1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) {
        jobs = dsa::HardwareJobs();
      }
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== T-A: the appendix survey, measured ==\n\n");
  const auto rows = dsa::RunSurvey(/*pressure=*/2.0, /*length=*/60000, /*seed=*/7, jobs);
  std::printf("%s\n", dsa::RenderSurvey(rows).c_str());
  std::printf("Shape check (paper): the seven machines occupy distinct points of the\n"
              "four-axis design space; machines with small associative memories (B8500,\n"
              "MULTICS, 360/67) show high hit rates and correspondingly low mapping cost;\n"
              "segment-unit machines trade mapping simplicity for fetch-size variance.\n");
  return 0;
}
