// Experiment T-A (Appendix A.1-A.7): the machine survey as a measured table.

#include <cstdio>

#include "src/machines/survey.h"

int main() {
  std::printf("== T-A: the appendix survey, measured ==\n\n");
  const auto rows = dsa::RunSurvey(/*pressure=*/2.0, /*length=*/60000, /*seed=*/7);
  std::printf("%s\n", dsa::RenderSurvey(rows).c_str());
  std::printf("Shape check (paper): the seven machines occupy distinct points of the\n"
              "four-axis design space; machines with small associative memories (B8500,\n"
              "MULTICS, 360/67) show high hit rates and correspondingly low mapping cost;\n"
              "segment-unit machines trade mapping simplicity for fetch-size variance.\n");
  return 0;
}
