#include "src/mem/storage_level.h"

namespace dsa {

const char* ToString(StorageLevelKind kind) {
  switch (kind) {
    case StorageLevelKind::kCore:
      return "core";
    case StorageLevelKind::kDrum:
      return "drum";
    case StorageLevelKind::kDisk:
      return "disk";
    case StorageLevelKind::kTape:
      return "tape";
  }
  return "?";
}

StorageLevel MakeCoreLevel(std::string name, WordCount capacity, Cycles word_time) {
  return StorageLevel{std::move(name), StorageLevelKind::kCore, capacity, word_time, 0};
}

StorageLevel MakeDrumLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles rotational_delay) {
  return StorageLevel{std::move(name), StorageLevelKind::kDrum, capacity, word_time,
                      rotational_delay};
}

StorageLevel MakeDiskLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles seek_plus_rotation) {
  return StorageLevel{std::move(name), StorageLevelKind::kDisk, capacity, word_time,
                      seek_plus_rotation};
}

StorageLevel MakeTapeLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles positioning) {
  return StorageLevel{std::move(name), StorageLevelKind::kTape, capacity, word_time, positioning};
}

}  // namespace dsa
