#include "src/mem/fault_injection.h"

namespace dsa {

const char* ToString(TransferFaultKind kind) {
  switch (kind) {
    case TransferFaultKind::kNone:
      return "none";
    case TransferFaultKind::kTransient:
      return "transient";
    case TransferFaultKind::kPermanentSlot:
      return "permanent-slot";
  }
  return "?";
}

const FaultRates& FaultInjector::RatesFor(std::size_t level) const {
  auto it = config_.level_rates.find(level);
  return it != config_.level_rates.end() ? it->second : config_.rates;
}

TransferFaultKind FaultInjector::DrawTransferFault(std::size_t level) {
  const FaultRates& rates = RatesFor(level);
  if (rates.transient_transfer <= 0.0 && rates.permanent_slot <= 0.0) {
    // Zero-rate levels consume no randomness, so an injector that is quiet
    // on one level does not perturb the fault schedule of another.
    return TransferFaultKind::kNone;
  }
  const double u = rng_.NextDouble();
  if (u < rates.transient_transfer) {
    return TransferFaultKind::kTransient;
  }
  if (u < rates.transient_transfer + rates.permanent_slot) {
    return TransferFaultKind::kPermanentSlot;
  }
  return TransferFaultKind::kNone;
}

bool FaultInjector::DrawFrameFailure() {
  if (config_.rates.frame_failure <= 0.0) {
    return false;
  }
  return rng_.Chance(config_.rates.frame_failure);
}

}  // namespace dsa
