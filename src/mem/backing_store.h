// Backing storage (drum/disk/tape) holding pages or segments by slot id.
//
// Content is kept so transfers round-trip; timing comes from the level spec.
// Slots are sized by the caller (a page for paging systems, a whole segment
// for the B5000/Rice machines).

#ifndef SRC_MEM_BACKING_STORE_H_
#define SRC_MEM_BACKING_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/mem/storage_level.h"

namespace dsa {

class BackingStore {
 public:
  using SlotId = std::uint64_t;

  explicit BackingStore(StorageLevel level) : level_(std::move(level)) {}

  const StorageLevel& level() const { return level_; }

  // True if the slot has ever been stored (an unstored slot reads as zeros,
  // modelling the zero-fill of a first-touch page).
  bool Contains(SlotId slot) const { return slots_.contains(slot); }

  // Writes `data` to `slot`, charging transfer time for data.size() words.
  Cycles Store(SlotId slot, std::vector<Word> data);

  // Reads `words` words of `slot` into `out` (zero-filled when absent),
  // charging transfer time.
  Cycles Fetch(SlotId slot, WordCount words, std::vector<Word>* out) const;

  // Drops a slot without a transfer (a destroyed segment's backing copy).
  void Discard(SlotId slot) { slots_.erase(slot); }

  // Words currently occupied across all slots.
  WordCount OccupiedWords() const;

  std::size_t slot_count() const { return slots_.size(); }

  // Lifetime transfer accounting.
  std::uint64_t stores() const { return stores_; }
  std::uint64_t fetches() const { return fetches_; }
  Cycles busy_cycles() const { return busy_cycles_; }

 private:
  StorageLevel level_;
  std::unordered_map<SlotId, std::vector<Word>> slots_;
  mutable std::uint64_t stores_{0};
  mutable std::uint64_t fetches_{0};
  mutable Cycles busy_cycles_{0};
};

}  // namespace dsa

#endif  // SRC_MEM_BACKING_STORE_H_
