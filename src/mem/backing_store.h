// Backing storage (drum/disk/tape) holding pages or segments by slot id.
//
// Content is kept so transfers round-trip; timing comes from the level spec.
// Slots are sized by the caller (a page for paging systems, a whole segment
// for the B5000/Rice machines).
//
// Fault injection (src/mem/fault_injection.h) can retire individual slots as
// permanently bad — a drum sector whose parity check fails for good.  A bad
// slot keeps refusing reads and writes; the resilience layer relocates its
// page to a spare slot allocated here, above the caller's id range.

#ifndef SRC_MEM_BACKING_STORE_H_
#define SRC_MEM_BACKING_STORE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/snapshot.h"
#include "src/core/types.h"
#include "src/mem/storage_level.h"

namespace dsa {

class BackingStore {
 public:
  using SlotId = std::uint64_t;

  // Spare slots hand out ids from here upward so they can never collide
  // with caller-chosen slot ids (page / segment numbers).
  static constexpr SlotId kSpareSlotBase = SlotId{1} << 62;

  explicit BackingStore(StorageLevel level) : level_(std::move(level)) {}

  const StorageLevel& level() const { return level_; }

  // True if the slot has ever been stored (an unstored slot reads as zeros,
  // modelling the zero-fill of a first-touch page).
  bool Contains(SlotId slot) const { return slots_.contains(slot); }

  // Writes `data` to `slot`, charging transfer time for data.size() words.
  Cycles Store(SlotId slot, std::vector<Word> data);

  // Reads `words` words of `slot` into `out` (zero-filled when absent),
  // charging transfer time.
  Cycles Fetch(SlotId slot, WordCount words, std::vector<Word>* out) const;

  // Drops a slot without a transfer (a destroyed segment's backing copy).
  void Discard(SlotId slot);

  // Retires `slot` permanently: its content is lost and Store/Fetch against
  // it must not be issued again (the resilience layer relocates instead).
  void MarkBad(SlotId slot);
  bool IsBad(SlotId slot) const { return bad_slots_.contains(slot); }
  std::size_t bad_slot_count() const { return bad_slots_.size(); }

  // Allocates a fresh spare slot for a relocated page, or nullopt when the
  // level cannot hold `words` more (the caller then spills to the next
  // level, or records the page as lost).
  std::optional<SlotId> AllocateSpareSlot(WordCount words);

  // True if `words` more would still fit under the level's capacity.
  bool HasRoomFor(WordCount words) const {
    return occupied_words_ + words <= level_.capacity_words;
  }

  // Words currently occupied across all slots.
  WordCount OccupiedWords() const { return occupied_words_; }

  std::size_t slot_count() const { return slots_.size(); }

  // Checkpoint serialization: slot contents (sorted by slot id so the bytes
  // are deterministic regardless of hash-table iteration order), bad slots,
  // the spare-slot cursor, and the transfer counters.  The level spec itself
  // is construction-time configuration and is not serialized.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

  // Lifetime transfer accounting.
  std::uint64_t stores() const { return stores_; }
  std::uint64_t fetches() const { return fetches_; }
  Cycles busy_cycles() const { return busy_cycles_; }

 private:
  StorageLevel level_;
  std::unordered_map<SlotId, std::vector<Word>> slots_;
  std::unordered_set<SlotId> bad_slots_;
  SlotId next_spare_{kSpareSlotBase};
  WordCount occupied_words_{0};
  mutable std::uint64_t stores_{0};
  mutable std::uint64_t fetches_{0};
  mutable Cycles busy_cycles_{0};
};

}  // namespace dsa

#endif  // SRC_MEM_BACKING_STORE_H_
