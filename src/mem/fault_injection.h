// Seeded, deterministic storage fault injection.
//
// The 1967 machines this library models ran on hardware that failed
// constantly: drums missed revolutions, sectors went bad, core planes took
// parity hits.  The FaultInjector reintroduces those adverse conditions as a
// first-class, fully reproducible subsystem: every fault is drawn from one
// dsa::Rng stream (splitmix64 -> xoshiro256**, identical on every platform),
// so a fixed seed and a fixed reference trace produce a byte-identical fault
// schedule — and byte-identical ReliabilityStats — on every run.
//
// Three fault classes, matching what the resilience layer can survive:
//
//   * transient transfer errors (drum parity / missed revolution): the
//     transfer is retried on the same channel, charging a fresh TransferTime
//     including rotational latency;
//   * permanent slot failures (bad sector): the BackingStore slot is retired
//     and the page relocates to a spare slot, or spills to the next backing
//     level when the store is full;
//   * core frame failures (parity hit): the frame is retired from service
//     via FrameTable::RetireFrame and the pager runs on with one fewer
//     frame.
//
// All rates default to zero, and a zero-rate injector is bit-identical in
// observable behaviour to having no injector at all (enforced by
// tests/test_fault_injection.cc).

#ifndef SRC_MEM_FAULT_INJECTION_H_
#define SRC_MEM_FAULT_INJECTION_H_

#include <cstdint>
#include <map>

#include "src/core/rng.h"

namespace dsa {

// Per-transfer / per-load fault probabilities.  A transfer draws one fault
// kind per attempt; a frame draws a parity failure per page landing.
struct FaultRates {
  double transient_transfer{0.0};  // per transfer attempt
  double permanent_slot{0.0};      // per transfer attempt
  double frame_failure{0.0};       // per page landed in a core frame

  bool Any() const {
    return transient_transfer > 0.0 || permanent_slot > 0.0 || frame_failure > 0.0;
  }
};

struct FaultInjectorConfig {
  std::uint64_t seed{0xfa117ab1e5eedULL};
  // Retries a faulting transfer before the access gives up and reports a
  // PageAccessError.  Also bounds relocation attempts on a store.
  int max_retries{3};
  // Default rates for every backing level (and the core frames).
  FaultRates rates{};
  // Per-backing-level overrides, keyed by level index (0 = the flat pager's
  // single store, or the hierarchy pager's drum; 1 = its disk; ...).
  std::map<std::size_t, FaultRates> level_rates{};
};

// What one transfer attempt did.
enum class TransferFaultKind : std::uint8_t {
  kNone,           // the transfer completed
  kTransient,      // parity / missed revolution: retry on the same channel
  kPermanentSlot,  // bad sector: retire the slot, relocate the page
};

const char* ToString(TransferFaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config)
      : config_(std::move(config)), rng_(config_.seed) {}
  virtual ~FaultInjector() = default;

  // Draws the outcome of one transfer attempt against backing level `level`.
  // Virtual so tests can script exact fault sequences.
  virtual TransferFaultKind DrawTransferFault(std::size_t level);

  // Draws whether the core frame that just received a page takes a parity
  // hit and must be retired.
  virtual bool DrawFrameFailure();

  int max_retries() const { return config_.max_retries; }
  const FaultInjectorConfig& config() const { return config_; }

  // Checkpoint hooks: the only mutable state is the fault stream's position.
  // The config is construction-time and is not serialized.
  RngState rng_state() const { return rng_.State(); }
  void RestoreRngState(const RngState& state) { rng_.Restore(state); }

 private:
  const FaultRates& RatesFor(std::size_t level) const;

  FaultInjectorConfig config_;
  Rng rng_;
};

}  // namespace dsa

#endif  // SRC_MEM_FAULT_INJECTION_H_
