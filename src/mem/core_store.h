// The physical working store: a bounds-checked array of words.
//
// Contents are real (not just counted) so that compaction and page transfers
// can be verified end-to-end: after any sequence of moves, the words a
// program wrote must still be the words it reads back.

#ifndef SRC_MEM_CORE_STORE_H_
#define SRC_MEM_CORE_STORE_H_

#include <vector>

#include "src/core/assert.h"
#include "src/core/types.h"
#include "src/mem/storage_level.h"

namespace dsa {

class CoreStore {
 public:
  explicit CoreStore(StorageLevel level)
      : level_(std::move(level)), words_(level_.capacity_words, Word{0}) {
    DSA_ASSERT(level_.kind == StorageLevelKind::kCore, "CoreStore needs a core-level spec");
  }

  explicit CoreStore(WordCount capacity)
      : CoreStore(MakeCoreLevel("core", capacity, /*word_time=*/1)) {}

  const StorageLevel& level() const { return level_; }
  WordCount capacity() const { return level_.capacity_words; }

  Word Read(PhysicalAddress addr) const {
    DSA_ASSERT(addr.value < words_.size(), "core read out of bounds");
    return words_[addr.value];
  }

  void Write(PhysicalAddress addr, Word value) {
    DSA_ASSERT(addr.value < words_.size(), "core write out of bounds");
    words_[addr.value] = value;
  }

  // Copies `count` words from `src` to `dst` within core.  Overlapping moves
  // behave like std::memmove (needed when compaction slides a block down over
  // its own tail).  Returns the CPU cost at `cycles_per_word_copied`.
  Cycles Move(PhysicalAddress src, PhysicalAddress dst, WordCount count,
              Cycles cycles_per_word_copied);

  // Bulk accessors used by page/segment transfer paths.
  void ReadRange(PhysicalAddress addr, WordCount count, std::vector<Word>* out) const;
  void WriteRange(PhysicalAddress addr, const std::vector<Word>& data);
  void Fill(PhysicalAddress addr, WordCount count, Word value);

 private:
  StorageLevel level_;
  std::vector<Word> words_;
};

}  // namespace dsa

#endif  // SRC_MEM_CORE_STORE_H_
