#include "src/mem/hierarchy.h"

#include <sstream>

namespace dsa {

std::string StorageHierarchy::Describe() const {
  std::ostringstream out;
  const StorageLevel& core_level = core_->level();
  out << core_level.name << " (" << ToString(core_level.kind) << ", "
      << core_level.capacity_words << " words)";
  for (const auto& level : backing_) {
    const StorageLevel& spec = level->level();
    out << " + " << spec.name << " (" << ToString(spec.kind) << ", " << spec.capacity_words
        << " words, latency " << spec.access_latency << ", " << spec.cycles_per_word
        << " cyc/word)";
  }
  return out.str();
}

}  // namespace dsa
