#include "src/mem/backing_store.h"

namespace dsa {

Cycles BackingStore::Store(SlotId slot, std::vector<Word> data) {
  const Cycles cost = level_.TransferTime(data.size());
  slots_[slot] = std::move(data);
  ++stores_;
  busy_cycles_ += cost;
  return cost;
}

Cycles BackingStore::Fetch(SlotId slot, WordCount words, std::vector<Word>* out) const {
  const Cycles cost = level_.TransferTime(words);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    out->assign(words, Word{0});
  } else {
    *out = it->second;
    out->resize(words, Word{0});
  }
  ++fetches_;
  busy_cycles_ += cost;
  return cost;
}

WordCount BackingStore::OccupiedWords() const {
  WordCount total = 0;
  for (const auto& [slot, data] : slots_) {
    total += data.size();
  }
  return total;
}

}  // namespace dsa
