#include "src/mem/backing_store.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

Cycles BackingStore::Store(SlotId slot, std::vector<Word> data) {
  DSA_ASSERT(!IsBad(slot), "storing to a retired slot");
  const Cycles cost = level_.TransferTime(data.size());
  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    occupied_words_ -= it->second.size();
  }
  occupied_words_ += data.size();
  slots_[slot] = std::move(data);
  ++stores_;
  busy_cycles_ += cost;
  return cost;
}

Cycles BackingStore::Fetch(SlotId slot, WordCount words, std::vector<Word>* out) const {
  DSA_ASSERT(!IsBad(slot), "fetching from a retired slot");
  const Cycles cost = level_.TransferTime(words);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    out->assign(words, Word{0});
  } else {
    *out = it->second;
    out->resize(words, Word{0});
  }
  ++fetches_;
  busy_cycles_ += cost;
  return cost;
}

void BackingStore::Discard(SlotId slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    occupied_words_ -= it->second.size();
    slots_.erase(it);
  }
}

void BackingStore::MarkBad(SlotId slot) {
  Discard(slot);
  bad_slots_.insert(slot);
}

std::optional<BackingStore::SlotId> BackingStore::AllocateSpareSlot(WordCount words) {
  if (!HasRoomFor(words)) {
    return std::nullopt;
  }
  return next_spare_++;
}

void BackingStore::SaveState(SnapshotWriter* w) const {
  std::vector<SlotId> ids;
  ids.reserve(slots_.size());
  for (const auto& [id, words] : slots_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  w->U64(ids.size());
  for (SlotId id : ids) {
    const std::vector<Word>& words = slots_.at(id);
    w->U64(id);
    w->U64(words.size());
    for (Word word : words) {
      w->U64(word);
    }
  }
  std::vector<SlotId> bad(bad_slots_.begin(), bad_slots_.end());
  std::sort(bad.begin(), bad.end());
  w->U64(bad.size());
  for (SlotId id : bad) {
    w->U64(id);
  }
  w->U64(next_spare_);
  w->U64(occupied_words_);
  w->U64(stores_);
  w->U64(fetches_);
  w->U64(busy_cycles_);
}

void BackingStore::LoadState(SnapshotReader* r) {
  const std::uint64_t slot_count = r->Count(level_.capacity_words + 1);
  std::unordered_map<SlotId, std::vector<Word>> slots;
  slots.reserve(slot_count);
  WordCount total_words = 0;
  for (std::uint64_t i = 0; i < slot_count && r->ok(); ++i) {
    const SlotId id = r->U64();
    const std::uint64_t words = r->Count(level_.capacity_words);
    std::vector<Word> data;
    data.reserve(words);
    for (std::uint64_t j = 0; j < words && r->ok(); ++j) {
      data.push_back(r->U64());
    }
    total_words += data.size();
    if (!slots.emplace(id, std::move(data)).second) {
      r->Fail(SnapshotErrorKind::kBadValue, "duplicate backing-store slot id");
      return;
    }
  }
  const std::uint64_t bad_count = r->Count(level_.capacity_words + 1);
  std::unordered_set<SlotId> bad;
  bad.reserve(bad_count);
  for (std::uint64_t i = 0; i < bad_count && r->ok(); ++i) {
    bad.insert(r->U64());
  }
  const SlotId next_spare = r->U64();
  const WordCount occupied = r->U64();
  const std::uint64_t stores = r->U64();
  const std::uint64_t fetches = r->U64();
  const Cycles busy = r->U64();
  if (r->ok() && occupied != total_words) {
    r->Fail(SnapshotErrorKind::kBadValue, "occupied-words does not match slot contents");
  }
  if (r->ok() && next_spare < kSpareSlotBase) {
    r->Fail(SnapshotErrorKind::kBadValue, "spare-slot cursor below the spare base");
  }
  if (!r->ok()) {
    return;
  }
  slots_ = std::move(slots);
  bad_slots_ = std::move(bad);
  next_spare_ = next_spare;
  occupied_words_ = occupied;
  stores_ = stores;
  fetches_ = fetches;
  busy_cycles_ = busy;
}

}  // namespace dsa
