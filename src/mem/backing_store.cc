#include "src/mem/backing_store.h"

#include "src/core/assert.h"

namespace dsa {

Cycles BackingStore::Store(SlotId slot, std::vector<Word> data) {
  DSA_ASSERT(!IsBad(slot), "storing to a retired slot");
  const Cycles cost = level_.TransferTime(data.size());
  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    occupied_words_ -= it->second.size();
  }
  occupied_words_ += data.size();
  slots_[slot] = std::move(data);
  ++stores_;
  busy_cycles_ += cost;
  return cost;
}

Cycles BackingStore::Fetch(SlotId slot, WordCount words, std::vector<Word>* out) const {
  DSA_ASSERT(!IsBad(slot), "fetching from a retired slot");
  const Cycles cost = level_.TransferTime(words);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    out->assign(words, Word{0});
  } else {
    *out = it->second;
    out->resize(words, Word{0});
  }
  ++fetches_;
  busy_cycles_ += cost;
  return cost;
}

void BackingStore::Discard(SlotId slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) {
    occupied_words_ -= it->second.size();
    slots_.erase(it);
  }
}

void BackingStore::MarkBad(SlotId slot) {
  Discard(slot);
  bad_slots_.insert(slot);
}

std::optional<BackingStore::SlotId> BackingStore::AllocateSpareSlot(WordCount words) {
  if (!HasRoomFor(words)) {
    return std::nullopt;
  }
  return next_spare_++;
}

}  // namespace dsa
