// Transfer channels.
//
// Two kinds appear in the paper:
//   * the I/O channel between working and backing storage, whose occupancy
//     determines how much page-fetch time multiprogramming can overlap; and
//   * the "fast autonomous storage to storage channel operations" offered as
//     special hardware for storage packing (hardware facility iii).

#ifndef SRC_MEM_CHANNEL_H_
#define SRC_MEM_CHANNEL_H_

#include <algorithm>
#include <cstdint>

#include "src/core/snapshot.h"
#include "src/core/types.h"
#include "src/mem/storage_level.h"

namespace dsa {

// A channel that serialises transfers: a request issued at time t completes
// at max(t, busy_until) + duration.  The CPU is free during the transfer —
// that freedom is exactly what the multiprogramming experiments measure.
class TransferChannel {
 public:
  struct Completion {
    Cycles start;   // when the transfer began moving data
    Cycles finish;  // when the data is available
  };

  // Schedules a transfer of `words` against `level`, issued at `now`.
  Completion Schedule(const StorageLevel& level, WordCount words, Cycles now) {
    const Cycles start = std::max(now, busy_until_);
    const Cycles duration = level.TransferTime(words);
    busy_until_ = start + duration;
    ++transfers_;
    busy_cycles_ += duration;
    if (start > now) {
      queueing_cycles_ += start - now;
    }
    return Completion{start, busy_until_};
  }

  Cycles busy_until() const { return busy_until_; }
  std::uint64_t transfers() const { return transfers_; }
  Cycles busy_cycles() const { return busy_cycles_; }
  Cycles queueing_cycles() const { return queueing_cycles_; }

  void Reset() {
    busy_until_ = 0;
    transfers_ = 0;
    busy_cycles_ = 0;
    queueing_cycles_ = 0;
  }

  void SaveState(SnapshotWriter* w) const {
    w->U64(busy_until_);
    w->U64(transfers_);
    w->U64(busy_cycles_);
    w->U64(queueing_cycles_);
  }
  void LoadState(SnapshotReader* r) {
    const Cycles busy_until = r->U64();
    const std::uint64_t transfers = r->U64();
    const Cycles busy_cycles = r->U64();
    const Cycles queueing_cycles = r->U64();
    if (!r->ok()) {
      return;
    }
    busy_until_ = busy_until;
    transfers_ = transfers;
    busy_cycles_ = busy_cycles;
    queueing_cycles_ = queueing_cycles;
  }

 private:
  Cycles busy_until_{0};
  std::uint64_t transfers_{0};
  Cycles busy_cycles_{0};
  Cycles queueing_cycles_{0};
};

// Cost model for in-core block moves during compaction: either the CPU
// copies word by word, or an autonomous storage-to-storage channel does it
// at a faster per-word rate with a fixed setup cost, leaving the CPU free.
struct PackingChannel {
  bool autonomous{false};
  Cycles setup_cycles{0};          // per-move start-up (channel program setup)
  Cycles cycles_per_word{4};       // CPU copy costs ~load+store+bookkeeping

  Cycles MoveCost(WordCount words) const {
    if (words == 0) {
      return 0;
    }
    return setup_cycles + words * cycles_per_word;
  }
};

// The paper-era CPU copy loop: no setup, expensive per word.
inline PackingChannel CpuPackingChannel() { return PackingChannel{false, 0, 4}; }

// Autonomous hardware: setup cost, then one cycle per word, CPU-free.
inline PackingChannel AutonomousPackingChannel() { return PackingChannel{true, 64, 1}; }

}  // namespace dsa

#endif  // SRC_MEM_CHANNEL_H_
