// A complete storage hierarchy: one core store, one or more backing levels,
// and the channels connecting them.

#ifndef SRC_MEM_HIERARCHY_H_
#define SRC_MEM_HIERARCHY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/assert.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/core_store.h"

namespace dsa {

class StorageHierarchy {
 public:
  explicit StorageHierarchy(StorageLevel core_level)
      : core_(std::make_unique<CoreStore>(std::move(core_level))) {}

  // Adds a backing level with its own channel; returns its index.
  std::size_t AddBackingLevel(StorageLevel level) {
    backing_.push_back(std::make_unique<BackingStore>(std::move(level)));
    channels_.emplace_back(std::make_unique<TransferChannel>());
    return backing_.size() - 1;
  }

  CoreStore& core() { return *core_; }
  const CoreStore& core() const { return *core_; }

  std::size_t backing_level_count() const { return backing_.size(); }

  BackingStore& backing(std::size_t index) {
    DSA_ASSERT(index < backing_.size(), "backing level index out of range");
    return *backing_[index];
  }
  const BackingStore& backing(std::size_t index) const {
    DSA_ASSERT(index < backing_.size(), "backing level index out of range");
    return *backing_[index];
  }

  TransferChannel& channel(std::size_t index) {
    DSA_ASSERT(index < channels_.size(), "channel index out of range");
    return *channels_[index];
  }

  // One-line inventory, e.g. for machine descriptions.
  std::string Describe() const;

 private:
  std::unique_ptr<CoreStore> core_;
  std::vector<std::unique_ptr<BackingStore>> backing_;
  std::vector<std::unique_ptr<TransferChannel>> channels_;
};

}  // namespace dsa

#endif  // SRC_MEM_HIERARCHY_H_
