// Timing and capacity model for one level of a storage hierarchy.
//
// "The choice of suitable strategies will depend highly upon the environment
// in which they are to be used and in particular the characteristics of the
// various storage levels and their interconnections."  This struct carries
// exactly those characteristics; machine models in src/machines instantiate
// it with the parameters the paper quotes (ATLAS core+drum, M44 core+1301
// disk, MULTICS core+drum+disk, ...).

#ifndef SRC_MEM_STORAGE_LEVEL_H_
#define SRC_MEM_STORAGE_LEVEL_H_

#include <string>

#include "src/core/types.h"

namespace dsa {

enum class StorageLevelKind : std::uint8_t {
  kCore,  // directly addressable working storage
  kDrum,  // rotational backing storage, no seek
  kDisk,  // rotational backing storage with seek
  kTape,  // sequential backing storage (Rice machine)
};

struct StorageLevel {
  std::string name;
  StorageLevelKind kind{StorageLevelKind::kCore};
  WordCount capacity_words{0};

  // Cost in cycles of accessing one word once a transfer is under way.
  Cycles cycles_per_word{1};
  // Fixed cost in cycles to start a transfer (average rotational delay for a
  // drum, seek+rotation for a disk, rewind-free positioning for tape).
  Cycles access_latency{0};

  // Cycles to move `words` to/from this level, including start-up latency.
  Cycles TransferTime(WordCount words) const {
    return access_latency + words * cycles_per_word;
  }
};

const char* ToString(StorageLevelKind kind);

// Convenience constructors with characteristic shapes.  `word_time` is the
// per-word transfer cost in cycles.
StorageLevel MakeCoreLevel(std::string name, WordCount capacity, Cycles word_time);
StorageLevel MakeDrumLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles rotational_delay);
StorageLevel MakeDiskLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles seek_plus_rotation);
StorageLevel MakeTapeLevel(std::string name, WordCount capacity, Cycles word_time,
                           Cycles positioning);

}  // namespace dsa

#endif  // SRC_MEM_STORAGE_LEVEL_H_
