#include "src/mem/core_store.h"

#include <cstring>

namespace dsa {

Cycles CoreStore::Move(PhysicalAddress src, PhysicalAddress dst, WordCount count,
                       Cycles cycles_per_word_copied) {
  if (count == 0) {
    return 0;
  }
  DSA_ASSERT(src.value + count <= words_.size(), "core move source out of bounds");
  DSA_ASSERT(dst.value + count <= words_.size(), "core move destination out of bounds");
  std::memmove(&words_[dst.value], &words_[src.value], count * sizeof(Word));
  return count * cycles_per_word_copied;
}

void CoreStore::ReadRange(PhysicalAddress addr, WordCount count, std::vector<Word>* out) const {
  DSA_ASSERT(addr.value + count <= words_.size(), "core range read out of bounds");
  out->assign(words_.begin() + static_cast<std::ptrdiff_t>(addr.value),
              words_.begin() + static_cast<std::ptrdiff_t>(addr.value + count));
}

void CoreStore::WriteRange(PhysicalAddress addr, const std::vector<Word>& data) {
  DSA_ASSERT(addr.value + data.size() <= words_.size(), "core range write out of bounds");
  std::memcpy(&words_[addr.value], data.data(), data.size() * sizeof(Word));
}

void CoreStore::Fill(PhysicalAddress addr, WordCount count, Word value) {
  DSA_ASSERT(addr.value + count <= words_.size(), "core fill out of bounds");
  for (WordCount i = 0; i < count; ++i) {
    words_[addr.value + i] = value;
  }
}

}  // namespace dsa
