#include "src/seg/codeword.h"

#include "src/core/assert.h"

namespace dsa {

WordCount IndexRegisterFile::Get(std::size_t reg) const {
  DSA_ASSERT(reg < kRegisters, "index register out of range");
  return regs_[reg];
}

void IndexRegisterFile::Set(std::size_t reg, WordCount value) {
  DSA_ASSERT(reg < kRegisters, "index register out of range");
  regs_[reg] = value;
}

Expected<PhysicalAddress, Fault> ResolveCodeword(const Codeword& codeword,
                                                 const IndexRegisterFile& registers,
                                                 WordCount offset) {
  const WordCount effective = offset + registers.Get(codeword.index_register);
  if (effective >= codeword.extent) {
    Fault fault;
    fault.kind = FaultKind::kBoundsViolation;
    fault.name = Name{effective};
    return MakeUnexpected(fault);
  }
  if (!codeword.presence) {
    Fault fault;
    fault.kind = FaultKind::kSegmentNotPresent;
    fault.name = Name{effective};
    return MakeUnexpected(fault);
  }
  return PhysicalAddress{codeword.base.value + effective};
}

}  // namespace dsa
