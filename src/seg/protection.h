// Segment protection and sharing.
//
// "Segments form a very convenient unit for purposes of information
// protection and sharing, between programs."  A protection word per segment
// says which access kinds each program may perform; a shared segment simply
// carries different protections for different programs (e.g. the MULTICS
// pure-procedure convention: owner writes, everyone executes).

#ifndef SRC_SEG_PROTECTION_H_
#define SRC_SEG_PROTECTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/core/types.h"

namespace dsa {

struct SegmentProtection {
  bool read{true};
  bool write{true};
  bool execute{true};

  bool Permits(AccessKind kind) const {
    switch (kind) {
      case AccessKind::kRead:
        return read;
      case AccessKind::kWrite:
        return write;
      case AccessKind::kExecute:
        return execute;
    }
    return false;
  }

  bool operator==(const SegmentProtection&) const = default;
};

inline SegmentProtection ReadOnlyProtection() { return {true, false, false}; }
inline SegmentProtection PureProcedureProtection() { return {true, false, true}; }
inline SegmentProtection FullAccessProtection() { return {true, true, true}; }

std::string Describe(const SegmentProtection& protection);

// Per-program protections for shared segments: (program, segment) -> rights.
// A segment with no entry for a program is inaccessible to it; the owner is
// recorded at sharing time with whatever rights it retains.
class SharingDirectory {
 public:
  void Grant(JobId program, SegmentId segment, SegmentProtection protection);
  void Revoke(JobId program, SegmentId segment);

  // The rights `program` holds on `segment` (no entry => no access).
  SegmentProtection RightsOf(JobId program, SegmentId segment) const;
  bool HasAccess(JobId program, SegmentId segment) const;

  // Number of programs holding any right on `segment`.
  std::size_t SharerCount(SegmentId segment) const;

 private:
  static std::uint64_t Key(JobId program, SegmentId segment) {
    return (static_cast<std::uint64_t>(program.value) << 48) | segment.value;
  }

  std::unordered_map<std::uint64_t, SegmentProtection> rights_;
  std::unordered_map<std::uint64_t, std::size_t> sharers_;  // segment -> count
};

}  // namespace dsa

#endif  // SRC_SEG_PROTECTION_H_
