// B5000 descriptors and the Program Reference Table (Appendix A.3).
//
// "Each program in the system has associated with it a Program Reference
// Table (PRT) ...  Every segment of the program is represented by an entry
// in this table.  This entry gives the base address and extent of the
// segment, and an indication of whether the segment is currently in working
// storage."

#ifndef SRC_SEG_DESCRIPTOR_H_
#define SRC_SEG_DESCRIPTOR_H_

#include <optional>
#include <vector>

#include "src/core/types.h"

namespace dsa {

struct Descriptor {
  bool presence{false};        // segment currently in working storage?
  PhysicalAddress base;        // meaningful when present
  WordCount extent{0};
};

class ProgramReferenceTable {
 public:
  explicit ProgramReferenceTable(std::size_t entries) : table_(entries) {}

  std::size_t size() const { return table_.size(); }

  // Allocates the lowest unused PRT slot for a new segment.
  std::optional<std::size_t> AllocateEntry(WordCount extent);
  void ReleaseEntry(std::size_t index);

  const Descriptor& entry(std::size_t index) const;
  bool EntryInUse(std::size_t index) const;

  void MarkPresent(std::size_t index, PhysicalAddress base);
  void MarkAbsent(std::size_t index);
  void SetExtent(std::size_t index, WordCount extent);

 private:
  struct Slot {
    bool in_use{false};
    Descriptor descriptor;
  };

  Slot& SlotAt(std::size_t index);

  std::vector<Slot> table_;
};

}  // namespace dsa

#endif  // SRC_SEG_DESCRIPTOR_H_
