#include "src/seg/descriptor.h"

#include "src/core/assert.h"

namespace dsa {

ProgramReferenceTable::Slot& ProgramReferenceTable::SlotAt(std::size_t index) {
  DSA_ASSERT(index < table_.size(), "PRT index out of range");
  return table_[index];
}

std::optional<std::size_t> ProgramReferenceTable::AllocateEntry(WordCount extent) {
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (!table_[i].in_use) {
      table_[i].in_use = true;
      table_[i].descriptor = Descriptor{};
      table_[i].descriptor.extent = extent;
      return i;
    }
  }
  return std::nullopt;
}

void ProgramReferenceTable::ReleaseEntry(std::size_t index) {
  Slot& slot = SlotAt(index);
  DSA_ASSERT(slot.in_use, "releasing an unused PRT entry");
  slot = Slot{};
}

const Descriptor& ProgramReferenceTable::entry(std::size_t index) const {
  DSA_ASSERT(index < table_.size(), "PRT index out of range");
  DSA_ASSERT(table_[index].in_use, "reading an unused PRT entry");
  return table_[index].descriptor;
}

bool ProgramReferenceTable::EntryInUse(std::size_t index) const {
  DSA_ASSERT(index < table_.size(), "PRT index out of range");
  return table_[index].in_use;
}

void ProgramReferenceTable::MarkPresent(std::size_t index, PhysicalAddress base) {
  Slot& slot = SlotAt(index);
  DSA_ASSERT(slot.in_use, "marking an unused PRT entry");
  slot.descriptor.presence = true;
  slot.descriptor.base = base;
}

void ProgramReferenceTable::MarkAbsent(std::size_t index) {
  Slot& slot = SlotAt(index);
  DSA_ASSERT(slot.in_use, "marking an unused PRT entry");
  slot.descriptor.presence = false;
}

void ProgramReferenceTable::SetExtent(std::size_t index, WordCount extent) {
  Slot& slot = SlotAt(index);
  DSA_ASSERT(slot.in_use, "resizing an unused PRT entry");
  slot.descriptor.extent = extent;
}

}  // namespace dsa
