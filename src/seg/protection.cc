#include "src/seg/protection.h"

#include "src/core/assert.h"

namespace dsa {

std::string Describe(const SegmentProtection& protection) {
  std::string out;
  out += protection.read ? 'r' : '-';
  out += protection.write ? 'w' : '-';
  out += protection.execute ? 'x' : '-';
  return out;
}

void SharingDirectory::Grant(JobId program, SegmentId segment, SegmentProtection protection) {
  const std::uint64_t key = Key(program, segment);
  if (!rights_.contains(key)) {
    ++sharers_[segment.value];
  }
  rights_[key] = protection;
}

void SharingDirectory::Revoke(JobId program, SegmentId segment) {
  const std::uint64_t key = Key(program, segment);
  if (rights_.erase(key) > 0) {
    auto it = sharers_.find(segment.value);
    DSA_ASSERT(it != sharers_.end() && it->second > 0, "sharer count underflow");
    if (--it->second == 0) {
      sharers_.erase(it);
    }
  }
}

SegmentProtection SharingDirectory::RightsOf(JobId program, SegmentId segment) const {
  auto it = rights_.find(Key(program, segment));
  if (it == rights_.end()) {
    return SegmentProtection{false, false, false};
  }
  return it->second;
}

bool SharingDirectory::HasAccess(JobId program, SegmentId segment) const {
  return rights_.contains(Key(program, segment));
}

std::size_t SharingDirectory::SharerCount(SegmentId segment) const {
  auto it = sharers_.find(segment.value);
  return it == sharers_.end() ? 0 : it->second;
}

}  // namespace dsa
