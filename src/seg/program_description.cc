#include "src/seg/program_description.h"

namespace dsa {

void ProgramDescription::Update(SegmentDirective directive) {
  for (SegmentDirective& existing : directives_) {
    if (existing.segment == directive.segment) {
      existing = directive;
      return;
    }
  }
  directives_.push_back(directive);
}

Cycles ProgramDescription::ApplyTo(SegmentManager* manager, Cycles now) const {
  Cycles transfer = 0;
  for (const SegmentDirective& d : directives_) {
    if (!manager->Exists(d.segment)) {
      continue;
    }
    if (d.medium == PreferredMedium::kWorkingStorage) {
      transfer += manager->AdviseWillNeed(d.segment, now);
      if (!d.may_be_overlaid && manager->IsResident(d.segment)) {
        manager->AdviseKeepResident(d.segment);
      }
    } else {
      if (d.may_be_overlaid) {
        manager->RevokeKeepResident(d.segment);
      }
    }
  }
  return transfer;
}

}  // namespace dsa
