// Segment-unit storage management: "the segment is used directly as the
// unit of allocation.  Each segment is fetched when reference is first made
// to information in the segment."  (B5000, Rice.)
//
// The manager owns a variable-unit allocator over core, a backing store for
// absent segments, a segment replacement strategy, and (optionally) a
// compaction engine for when free storage is plentiful but fragmented.

#ifndef SRC_SEG_SEGMENT_MANAGER_H_
#define SRC_SEG_SEGMENT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/alloc/compaction.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/expected.h"
#include "src/core/strategy.h"
#include "src/core/types.h"
#include "src/map/fault.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/seg/protection.h"

namespace dsa {

// How the manager picks a resident segment to overlay.
enum class SegmentReplacementKind : std::uint8_t {
  kCyclic,  // "a replacement strategy which was essentially cyclical" (B5000)
  kLru,
  // Rice: prefers segments with a backing copy and not used since last
  // considered (a second-chance sweep over use sensors).
  kRiceSecondChance,
};

struct SegmentManagerConfig {
  WordCount core_words{24000};  // a typical B5000 working store
  WordCount max_segment_extent{1024};
  PlacementStrategyKind placement{PlacementStrategyKind::kBestFit};
  SegmentReplacementKind replacement{SegmentReplacementKind::kCyclic};
  // Compact instead of evicting when total free space would satisfy the
  // request but no hole does.
  bool compact_on_fragmentation{false};
  PackingChannel packing{};  // move-cost model when compacting
};

struct SegmentAccessOutcome {
  PhysicalAddress address;   // resolved absolute address of the item
  bool segment_fault{false};
  Cycles wait_cycles{0};
};

struct SegmentManagerStats {
  std::uint64_t accesses{0};
  std::uint64_t segment_faults{0};
  std::uint64_t evictions{0};
  std::uint64_t writebacks{0};
  std::uint64_t compactions{0};
  WordCount words_compacted{0};
  Cycles wait_cycles{0};
  Cycles compaction_cycles{0};

  double FaultRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(segment_faults) / static_cast<double>(accesses);
  }
};

class SegmentManager {
 public:
  SegmentManager(SegmentManagerConfig config, BackingStore* backing, TransferChannel* channel);

  // Attaches the shared event tracer (wired through to the allocator and the
  // compaction engine).  Transfer events use the segment id in the page slot
  // and level 0 (segmented systems have a single backing level).
  void SetTracer(EventTracer* tracer) {
    tracer_ = tracer;
    allocator_.SetTracer(tracer);
    compactor_.SetTracer(tracer);
  }

  // Declares a segment (descriptor only; fetched on first reference).
  SegmentId Create(WordCount extent);
  void Destroy(SegmentId segment);

  // Dynamic segments: "the extent of each segment can be varied during
  // execution by special program directives."  A resident grown segment is
  // re-placed (and may fault storage out to make room).
  Expected<SegmentAccessOutcome, Fault> Resize(SegmentId segment, WordCount extent, Cycles now);

  // One reference to (segment, offset).  Bounds-checked; fetches the whole
  // segment on first touch; may evict/compact to make room.
  Expected<SegmentAccessOutcome, Fault> Access(SegmentId segment, WordCount offset,
                                               AccessKind kind, Cycles now);

  // Protection: "segments form a very convenient unit for purposes of
  // information protection".  Forbidden access kinds fault instead of
  // resolving (and do not fetch an absent segment).
  void SetProtection(SegmentId segment, SegmentProtection protection);
  SegmentProtection ProtectionOf(SegmentId segment) const;

  // Predictive directives at segment granularity.
  void AdviseKeepResident(SegmentId segment);
  void RevokeKeepResident(SegmentId segment);
  void AdviseWontNeed(SegmentId segment, Cycles now);
  // "Will shortly be needed": fetch now if room can be made without evicting.
  Cycles AdviseWillNeed(SegmentId segment, Cycles now);

  bool IsResident(SegmentId segment) const;
  bool Exists(SegmentId segment) const { return segments_.contains(segment.value); }
  WordCount ExtentOf(SegmentId segment) const;
  WordCount ResidentWords() const { return allocator_.live_words(); }
  std::size_t segment_count() const { return segments_.size(); }

  const SegmentManagerStats& stats() const { return stats_; }
  const VariableAllocator& allocator() const { return allocator_; }

 private:
  struct SegmentInfo {
    WordCount extent{0};
    bool present{false};
    PhysicalAddress base;      // meaningful when present
    bool modified{false};
    bool pinned{false};
    bool use{false};           // second-chance sensor
    bool has_backing_copy{false};
    Cycles last_use{0};
    SegmentProtection protection{};
  };

  SegmentInfo& InfoFor(SegmentId segment);
  const SegmentInfo& InfoFor(SegmentId segment) const;

  // Makes a core block of `size` available, evicting/compacting as needed.
  // Returns the block, or nullopt if even evicting everything cannot help.
  std::optional<Block> MakeRoom(WordCount size, Cycles now, SegmentId requester);

  // Picks a resident, unpinned victim != requester; nullopt if none.
  std::optional<SegmentId> ChooseVictim(SegmentId requester);

  // Evicts `victim`, writing back if modified; returns channel-side cost.
  void Evict(SegmentId victim, Cycles now);

  // Fetches `segment` into `block`; returns the program-visible wait.
  Cycles FetchInto(SegmentId segment, Block block, Cycles now);

  void CompactCore(Cycles now);

  SegmentManagerConfig config_;
  EventTracer* tracer_{nullptr};
  BackingStore* backing_;
  TransferChannel* channel_;
  VariableAllocator allocator_;
  CompactionEngine compactor_;
  std::unordered_map<std::uint64_t, SegmentInfo> segments_;
  std::unordered_map<std::uint64_t, SegmentId> resident_by_base_;
  std::uint64_t next_segment_id_{0};
  std::uint64_t cyclic_cursor_{0};
  SegmentManagerStats stats_;
};

}  // namespace dsa

#endif  // SRC_SEG_SEGMENT_MANAGER_H_
