// Rice University codewords (Appendix A.4, after Iliffe & Jodeit).
//
// "Codewords are used to provide a compact characterization of individual
// program or data segments, and are thus approximately analogous to the
// descriptors, or PRT elements, used in the B5000 system.  Probably the
// major difference ... is that codewords contain an index register address.
// When the codeword is used to access a segment, the contents of the
// specified index register are automatically added to the segment base
// address given in the codeword."

#ifndef SRC_SEG_CODEWORD_H_
#define SRC_SEG_CODEWORD_H_

#include <array>
#include <optional>

#include "src/core/expected.h"
#include "src/core/types.h"
#include "src/map/fault.h"

namespace dsa {

struct Codeword {
  bool presence{false};
  PhysicalAddress base;
  WordCount extent{0};
  std::size_t index_register{0};  // automatically added on access
};

// The machine's index registers, any of which a codeword may name.
class IndexRegisterFile {
 public:
  static constexpr std::size_t kRegisters = 8;

  WordCount Get(std::size_t reg) const;
  void Set(std::size_t reg, WordCount value);

 private:
  std::array<WordCount, kRegisters> regs_{};
};

// Resolves codeword + offset + auto-index into a physical address, with
// bounds checking against the segment extent.  The equivalent operation on
// the B5000 "would have to be programmed explicitly" — the auto-indexing is
// the hardware assist being modelled.
Expected<PhysicalAddress, Fault> ResolveCodeword(const Codeword& codeword,
                                                 const IndexRegisterFile& registers,
                                                 WordCount offset);

}  // namespace dsa

#endif  // SRC_SEG_CODEWORD_H_
