// The Rice University storage image, with the Iliffe-Jodeit bookkeeping
// held *in storage words*, exactly as Appendix A.4 describes:
//
//   "Segments are initially placed sequentially in storage in a block of
//   contiguous locations, the first of which is a 'back reference' to the
//   codeword of the segment.  When a segment loses its significance the
//   block in which it was stored is designated as 'inactive,' and its first
//   word set up with the size of the block and the location of the next
//   inactive block in storage."
//
// RiceChainAllocator (src/alloc/rice_chain.h) models the same algorithm
// with out-of-band metadata for speed; this image is the fidelity check —
// every chain link, back reference, and codeword lives in the CoreStore and
// survives round-trips through it.
//
// Word encodings (64-bit simulator words):
//   codeword      : presence(bit 63) | base(bits 62..32) | extent(bits 31..0)
//   active header : kActiveTag(bit 63) | codeword slot(bits 31..0)
//   inactive hdr  : block size(bits 62..32) | next block address(bits 31..0)
// Block sizes include the header word; kNullLink terminates the chain.

#ifndef SRC_SEG_RICE_IMAGE_H_
#define SRC_SEG_RICE_IMAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/alloc/block.h"
#include "src/mem/core_store.h"
#include "src/seg/codeword.h"

namespace dsa {

class RiceStorageImage {
 public:
  static constexpr std::uint64_t kNullLink = 0xffffffffull;

  // The store's first `codeword_slots` words hold the codeword table; the
  // rest is the data region, initialised as one inactive block.
  RiceStorageImage(CoreStore* store, std::size_t codeword_slots);

  // Activates segment `slot` with `extent` payload words: searches the
  // stored chain sequentially, carves a block (header + payload), writes the
  // back reference and the codeword.  Returns the payload base address, or
  // nullopt when no inactive block suffices even after combining.
  std::optional<PhysicalAddress> Activate(std::size_t slot, WordCount extent);

  // Deactivates segment `slot`: threads its block onto the chain head and
  // clears the codeword's presence bit.
  void Deactivate(std::size_t slot);

  // "An attempt is made to ... find groups of adjacent inactive blocks which
  // can be combined."  Returns true if any blocks merged.
  bool CombineAdjacent();

  // Decodes the stored codeword for `slot`.
  Codeword ReadCodeword(std::size_t slot) const;

  // Walks the stored chain; asserts on any malformed link.
  std::vector<Block> ChainBlocks() const;

  // True iff every present segment's block header points back at its
  // codeword slot — the invariant that makes relocation by block possible.
  bool BackReferencesIntact() const;

  std::size_t codeword_slots() const { return codeword_slots_; }
  WordCount data_region_words() const { return store_->capacity() - codeword_slots_; }

 private:
  static Word EncodeCodeword(const Codeword& codeword);
  static Codeword DecodeCodeword(Word word);
  static Word EncodeInactive(WordCount size, std::uint64_t next);
  static Word EncodeActive(std::size_t slot);

  void WriteCodeword(std::size_t slot, const Codeword& codeword);

  CoreStore* store_;
  std::size_t codeword_slots_;
  std::uint64_t chain_head_{kNullLink};
};

}  // namespace dsa

#endif  // SRC_SEG_RICE_IMAGE_H_
