#include "src/seg/segment_manager.h"

#include <algorithm>
#include <vector>

#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

SegmentManager::SegmentManager(SegmentManagerConfig config, BackingStore* backing,
                               TransferChannel* channel)
    : config_(config),
      backing_(backing),
      channel_(channel),
      allocator_(config.core_words, MakePlacementPolicy(config.placement)),
      compactor_(config.packing) {
  DSA_ASSERT(backing_ != nullptr, "segment manager needs a backing store");
  DSA_ASSERT(config_.max_segment_extent <= config_.core_words,
             "segments must fit working storage when the segment is the allocation unit");
}

SegmentManager::SegmentInfo& SegmentManager::InfoFor(SegmentId segment) {
  auto it = segments_.find(segment.value);
  DSA_ASSERT(it != segments_.end(), "unknown segment");
  return it->second;
}

const SegmentManager::SegmentInfo& SegmentManager::InfoFor(SegmentId segment) const {
  auto it = segments_.find(segment.value);
  DSA_ASSERT(it != segments_.end(), "unknown segment");
  return it->second;
}

SegmentId SegmentManager::Create(WordCount extent) {
  DSA_ASSERT(extent > 0, "segments are nonempty");
  DSA_ASSERT(extent <= config_.max_segment_extent, "segment exceeds the maximum extent");
  const SegmentId id{next_segment_id_++};
  SegmentInfo info;
  info.extent = extent;
  segments_.emplace(id.value, info);
  return id;
}

void SegmentManager::Destroy(SegmentId segment) {
  SegmentInfo& info = InfoFor(segment);
  if (info.present) {
    resident_by_base_.erase(info.base.value);
    allocator_.Free(info.base);
  }
  if (info.has_backing_copy) {
    backing_->Discard(segment.value);
  }
  segments_.erase(segment.value);
}

bool SegmentManager::IsResident(SegmentId segment) const { return InfoFor(segment).present; }

WordCount SegmentManager::ExtentOf(SegmentId segment) const { return InfoFor(segment).extent; }

std::optional<SegmentId> SegmentManager::ChooseVictim(SegmentId requester) {
  std::vector<SegmentId> candidates;
  for (const auto& [id, info] : segments_) {
    if (info.present && !info.pinned && id != requester.value) {
      candidates.push_back(SegmentId{id});
    }
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  std::sort(candidates.begin(), candidates.end());

  switch (config_.replacement) {
    case SegmentReplacementKind::kCyclic: {
      // Sweep segment ids cyclically from the cursor.
      for (SegmentId c : candidates) {
        if (c.value >= cyclic_cursor_) {
          cyclic_cursor_ = c.value + 1;
          return c;
        }
      }
      cyclic_cursor_ = candidates.front().value + 1;
      return candidates.front();
    }
    case SegmentReplacementKind::kLru: {
      SegmentId victim = candidates.front();
      for (SegmentId c : candidates) {
        if (InfoFor(c).last_use < InfoFor(victim).last_use) {
          victim = c;
        }
      }
      return victim;
    }
    case SegmentReplacementKind::kRiceSecondChance: {
      // "Takes into account whether a copy of a segment exists in backing
      // storage and whether or not a segment has been used since it was last
      // considered for replacement."  Preference order: clean+unused,
      // unused, clean, anything — clearing use sensors as they are passed.
      for (int pass = 0; pass < 2; ++pass) {
        for (SegmentId c : candidates) {
          SegmentInfo& info = InfoFor(c);
          if (info.use) {
            info.use = false;  // second chance
            continue;
          }
          if (info.has_backing_copy && !info.modified) {
            return c;  // free to discard
          }
          if (pass == 1) {
            return c;  // unused but needs a write-back
          }
        }
      }
      return candidates.front();
    }
  }
  return candidates.front();
}

void SegmentManager::Evict(SegmentId victim, Cycles now) {
  SegmentInfo& info = InfoFor(victim);
  DSA_ASSERT(info.present, "evicting an absent segment");
  if (info.modified || !info.has_backing_copy) {
    ++stats_.writebacks;
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, victim.value, /*level=*/0,
                   /*direction=*/1);
    std::vector<Word> data(info.extent, Word{0});
    if (channel_ != nullptr) {
      channel_->Schedule(backing_->level(), info.extent, now);
    }
    [[maybe_unused]] const Cycles store_cycles = backing_->Store(victim.value, std::move(data));
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, victim.value, /*level=*/0,
                   store_cycles);
    info.has_backing_copy = true;
    info.modified = false;
  }
  resident_by_base_.erase(info.base.value);
  allocator_.Free(info.base);
  info.present = false;
  ++stats_.evictions;
}

void SegmentManager::CompactCore(Cycles now) {
  (void)now;
  const CompactionResult result = compactor_.Compact(
      &allocator_, /*store=*/nullptr,
      [this](PhysicalAddress from, PhysicalAddress to, WordCount size) {
        (void)size;
        auto it = resident_by_base_.find(from.value);
        DSA_ASSERT(it != resident_by_base_.end(), "moved block is not a resident segment");
        const SegmentId segment = it->second;
        resident_by_base_.erase(it);
        resident_by_base_.emplace(to.value, segment);
        InfoFor(segment).base = to;  // the only stored absolute address
      });
  ++stats_.compactions;
  stats_.words_compacted += result.words_moved;
  stats_.compaction_cycles += result.move_cycles;
}

std::optional<Block> SegmentManager::MakeRoom(WordCount size, Cycles now, SegmentId requester) {
  for (;;) {
    if (auto block = allocator_.Allocate(size)) {
      return block;
    }
    // Enough free words but no hole big enough => fragmentation; compact if
    // the configuration allows, otherwise fall through to eviction.
    if (config_.compact_on_fragmentation && allocator_.free_list().total_free() >= size &&
        allocator_.free_list().largest_hole() < size) {
      CompactCore(now);
      continue;
    }
    const std::optional<SegmentId> victim = ChooseVictim(requester);
    if (!victim.has_value()) {
      return std::nullopt;
    }
    Evict(*victim, now);
  }
}

Cycles SegmentManager::FetchInto(SegmentId segment, Block block, Cycles now) {
  SegmentInfo& info = InfoFor(segment);
  DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, segment.value, /*level=*/0,
                 /*direction=*/0);
  std::vector<Word> data;
  Cycles wait = 0;
  if (channel_ != nullptr) {
    const TransferChannel::Completion done =
        channel_->Schedule(backing_->level(), info.extent, now);
    wait = done.finish - now;
    backing_->Fetch(segment.value, info.extent, &data);
  } else {
    wait = backing_->Fetch(segment.value, info.extent, &data);
  }
  DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, segment.value, /*level=*/0, wait);
  info.present = true;
  info.base = block.addr;
  resident_by_base_.emplace(block.addr.value, segment);
  return wait;
}

Expected<SegmentAccessOutcome, Fault> SegmentManager::Access(SegmentId segment, WordCount offset,
                                                             AccessKind kind, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  ++stats_.accesses;
  auto it = segments_.find(segment.value);
  if (it == segments_.end()) {
    Fault fault;
    fault.kind = FaultKind::kInvalidSegment;
    fault.segment = segment;
    return MakeUnexpected(fault);
  }
  SegmentInfo& info = it->second;
  if (offset >= info.extent) {
    // The automatic subscript check segmentation buys.
    Fault fault;
    fault.kind = FaultKind::kBoundsViolation;
    fault.segment = segment;
    fault.name = Name{offset};
    return MakeUnexpected(fault);
  }

  if (!info.protection.Permits(kind)) {
    Fault fault;
    fault.kind = FaultKind::kProtectionViolation;
    fault.segment = segment;
    fault.name = Name{offset};
    return MakeUnexpected(fault);
  }

  SegmentAccessOutcome outcome;
  if (!info.present) {
    ++stats_.segment_faults;
    DSA_TRACE_EMIT(tracer_, EventKind::kSegmentFault, segment.value, info.extent);
    outcome.segment_fault = true;
    const std::optional<Block> block = MakeRoom(info.extent, now, segment);
    if (!block.has_value()) {
      Fault fault;
      fault.kind = FaultKind::kSegmentNotPresent;
      fault.segment = segment;
      return MakeUnexpected(fault);
    }
    outcome.wait_cycles = FetchInto(segment, *block, now);
    stats_.wait_cycles += outcome.wait_cycles;
  }

  info.use = true;
  info.last_use = now + outcome.wait_cycles;
  if (kind == AccessKind::kWrite) {
    info.modified = true;
  }
  outcome.address = PhysicalAddress{info.base.value + offset};
  return outcome;
}

Expected<SegmentAccessOutcome, Fault> SegmentManager::Resize(SegmentId segment, WordCount extent,
                                                             Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  DSA_ASSERT(extent > 0, "segments are nonempty");
  if (extent > config_.max_segment_extent) {
    Fault fault;
    fault.kind = FaultKind::kBoundsViolation;
    fault.segment = segment;
    fault.name = Name{extent};
    return MakeUnexpected(fault);
  }
  SegmentInfo& info = InfoFor(segment);
  SegmentAccessOutcome outcome;
  if (!info.present || extent <= info.extent) {
    // Absent segments just change their declared extent; shrinking a
    // resident segment keeps it in place (the tail is abandoned at the next
    // eviction — matching descriptor semantics, which carry one base+extent).
    info.extent = extent;
    if (info.present) {
      outcome.address = info.base;
    }
    // A stale backing copy of the old size is superseded on next write-back.
    return outcome;
  }
  // Growing a resident segment: obtain a new block, logically move the
  // contents, release the old one.
  const Block old_block{info.base, info.extent};
  const std::optional<Block> grown = MakeRoom(extent, now, segment);
  if (!grown.has_value()) {
    Fault fault;
    fault.kind = FaultKind::kSegmentNotPresent;
    fault.segment = segment;
    return MakeUnexpected(fault);
  }
  resident_by_base_.erase(old_block.addr.value);
  allocator_.Free(old_block.addr);
  resident_by_base_.emplace(grown->addr.value, segment);
  info.base = grown->addr;
  info.extent = extent;
  info.modified = true;
  outcome.address = grown->addr;
  outcome.wait_cycles = config_.packing.MoveCost(old_block.size);
  stats_.wait_cycles += outcome.wait_cycles;
  return outcome;
}

void SegmentManager::SetProtection(SegmentId segment, SegmentProtection protection) {
  InfoFor(segment).protection = protection;
}

SegmentProtection SegmentManager::ProtectionOf(SegmentId segment) const {
  return InfoFor(segment).protection;
}

void SegmentManager::AdviseKeepResident(SegmentId segment) { InfoFor(segment).pinned = true; }

void SegmentManager::RevokeKeepResident(SegmentId segment) { InfoFor(segment).pinned = false; }

void SegmentManager::AdviseWontNeed(SegmentId segment, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  SegmentInfo& info = InfoFor(segment);
  if (info.present && !info.pinned) {
    Evict(segment, now);
  }
}

Cycles SegmentManager::AdviseWillNeed(SegmentId segment, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  SegmentInfo& info = InfoFor(segment);
  if (info.present) {
    return 0;
  }
  // Advisory: fetch only if a hole already fits — never evict for advice.
  if (auto block = allocator_.Allocate(info.extent)) {
    return FetchInto(segment, *block, now);
  }
  return 0;
}

}  // namespace dsa
