// ACSI-MATIC "program descriptions" (the paper's cited pioneering work on
// predictive information): "programs were accompanied by 'program
// descriptions,' which could be varied dynamically, and which specified, for
// example, (i) which storage medium a particular segment was to be in when
// it was used, and (ii) permissions and restrictions on the overlaying of
// groups of segments.  Storage allocation strategies were then based on the
// analysis of these descriptions."

#ifndef SRC_SEG_PROGRAM_DESCRIPTION_H_
#define SRC_SEG_PROGRAM_DESCRIPTION_H_

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/seg/segment_manager.h"

namespace dsa {

enum class PreferredMedium : std::uint8_t {
  kWorkingStorage,  // keep in core while in use
  kBackingStorage,  // acceptable to hold on drum/disk until demanded
};

struct SegmentDirective {
  SegmentId segment;
  PreferredMedium medium{PreferredMedium::kBackingStorage};
  bool may_be_overlaid{true};  // restriction on overlaying this segment
};

// A dynamically variable description of a program's storage behaviour.
class ProgramDescription {
 public:
  void Add(SegmentDirective directive) { directives_.push_back(directive); }

  // Directives can be "varied dynamically": replaces any prior directive for
  // the same segment.
  void Update(SegmentDirective directive);

  const std::vector<SegmentDirective>& directives() const { return directives_; }

  // Analyses the description and applies it to a segment manager: segments
  // preferring working storage are prefetched (advisorily) and pinned when
  // overlaying is restricted; the rest are left to demand fetching.
  // Returns prefetch transfer cycles incurred.
  Cycles ApplyTo(SegmentManager* manager, Cycles now) const;

 private:
  std::vector<SegmentDirective> directives_;
};

}  // namespace dsa

#endif  // SRC_SEG_PROGRAM_DESCRIPTION_H_
