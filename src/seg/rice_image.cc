#include "src/seg/rice_image.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

namespace {

constexpr std::uint64_t kActiveTag = std::uint64_t{1} << 63;
constexpr std::uint64_t kPresenceBit = std::uint64_t{1} << 63;

}  // namespace

RiceStorageImage::RiceStorageImage(CoreStore* store, std::size_t codeword_slots)
    : store_(store), codeword_slots_(codeword_slots) {
  DSA_ASSERT(store_ != nullptr, "image needs a core store");
  DSA_ASSERT(codeword_slots_ > 0, "need at least one codeword slot");
  DSA_ASSERT(store_->capacity() > codeword_slots_ + 1, "no data region");
  // Codeword table: all absent.
  for (std::size_t slot = 0; slot < codeword_slots_; ++slot) {
    store_->Write(PhysicalAddress{slot}, EncodeCodeword(Codeword{}));
  }
  // Data region: one inactive block spanning everything.
  chain_head_ = codeword_slots_;
  store_->Write(PhysicalAddress{chain_head_},
                EncodeInactive(data_region_words(), kNullLink));
}

Word RiceStorageImage::EncodeCodeword(const Codeword& codeword) {
  DSA_ASSERT(codeword.base.value < (std::uint64_t{1} << 31), "codeword base too large to encode");
  DSA_ASSERT(codeword.extent < (std::uint64_t{1} << 32), "codeword extent too large to encode");
  Word word = (codeword.base.value << 32) | codeword.extent;
  if (codeword.presence) {
    word |= kPresenceBit;
  }
  return word;
}

Codeword RiceStorageImage::DecodeCodeword(Word word) {
  Codeword codeword;
  codeword.presence = (word & kPresenceBit) != 0;
  codeword.base = PhysicalAddress{(word >> 32) & 0x7fffffffull};
  codeword.extent = word & 0xffffffffull;
  return codeword;
}

Word RiceStorageImage::EncodeInactive(WordCount size, std::uint64_t next) {
  DSA_ASSERT(size < (std::uint64_t{1} << 31), "inactive block too large to encode");
  DSA_ASSERT(next <= kNullLink, "chain link too large to encode");
  return (size << 32) | next;
}

Word RiceStorageImage::EncodeActive(std::size_t slot) {
  return kActiveTag | static_cast<std::uint64_t>(slot);
}

void RiceStorageImage::WriteCodeword(std::size_t slot, const Codeword& codeword) {
  DSA_ASSERT(slot < codeword_slots_, "codeword slot out of range");
  store_->Write(PhysicalAddress{slot}, EncodeCodeword(codeword));
}

Codeword RiceStorageImage::ReadCodeword(std::size_t slot) const {
  DSA_ASSERT(slot < codeword_slots_, "codeword slot out of range");
  return DecodeCodeword(store_->Read(PhysicalAddress{slot}));
}

std::optional<PhysicalAddress> RiceStorageImage::Activate(std::size_t slot, WordCount extent) {
  DSA_ASSERT(extent > 0, "segments are nonempty");
  DSA_ASSERT(!ReadCodeword(slot).presence, "segment already active");
  const WordCount needed = extent + 1;  // header + payload

  for (int attempt = 0; attempt < 2; ++attempt) {
    // Sequential search of the stored chain.
    std::uint64_t prev = kNullLink;
    std::uint64_t cur = chain_head_;
    while (cur != kNullLink) {
      const Word header = store_->Read(PhysicalAddress{cur});
      const WordCount size = header >> 32;
      const std::uint64_t next = header & 0xffffffffull;
      if (size >= needed) {
        const WordCount leftover = size - needed;
        std::uint64_t replacement = next;
        if (leftover >= 1) {
          // "If any unused space is left over it replaces the original
          // inactive block in the chain."  (A leftover needs at least its
          // header word.)
          const std::uint64_t leftover_addr = cur + needed;
          store_->Write(PhysicalAddress{leftover_addr}, EncodeInactive(leftover, next));
          replacement = leftover_addr;
        }
        if (prev == kNullLink) {
          chain_head_ = replacement;
        } else {
          const Word prev_header = store_->Read(PhysicalAddress{prev});
          store_->Write(PhysicalAddress{prev},
                        EncodeInactive(prev_header >> 32, replacement));
        }
        // Back reference, then the codeword.
        store_->Write(PhysicalAddress{cur}, EncodeActive(slot));
        Codeword codeword;
        codeword.presence = true;
        codeword.base = PhysicalAddress{cur + 1};
        codeword.extent = extent;
        WriteCodeword(slot, codeword);
        return codeword.base;
      }
      prev = cur;
      cur = next;
    }
    if (attempt == 0 && !CombineAdjacent()) {
      break;  // combining cannot help; fail now
    }
  }
  return std::nullopt;
}

void RiceStorageImage::Deactivate(std::size_t slot) {
  Codeword codeword = ReadCodeword(slot);
  DSA_ASSERT(codeword.presence, "deactivating an absent segment");
  const std::uint64_t block = codeword.base.value - 1;
  DSA_ASSERT((store_->Read(PhysicalAddress{block}) & kActiveTag) != 0,
             "block header is not an active back reference");
  store_->Write(PhysicalAddress{block}, EncodeInactive(codeword.extent + 1, chain_head_));
  chain_head_ = block;
  codeword.presence = false;
  WriteCodeword(slot, codeword);
}

std::vector<Block> RiceStorageImage::ChainBlocks() const {
  std::vector<Block> blocks;
  std::uint64_t cur = chain_head_;
  std::size_t guard = 0;
  while (cur != kNullLink) {
    DSA_ASSERT(cur >= codeword_slots_ && cur < store_->capacity(), "chain link out of range");
    DSA_ASSERT(++guard <= store_->capacity(), "chain contains a cycle");
    const Word header = store_->Read(PhysicalAddress{cur});
    DSA_ASSERT((header & kActiveTag) == 0, "chain links through an active block");
    blocks.push_back(Block{PhysicalAddress{cur}, header >> 32});
    cur = header & 0xffffffffull;
  }
  return blocks;
}

bool RiceStorageImage::CombineAdjacent() {
  std::vector<Block> blocks = ChainBlocks();
  if (blocks.size() < 2) {
    return false;
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.addr.value < b.addr.value; });
  std::vector<Block> merged;
  merged.reserve(blocks.size());
  for (const Block& block : blocks) {
    if (!merged.empty() && merged.back().end() == block.addr.value) {
      merged.back().size += block.size;
    } else {
      merged.push_back(block);
    }
  }
  if (merged.size() == blocks.size()) {
    return false;
  }
  // Rewrite the chain in address order through the stored headers.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const std::uint64_t next = i + 1 < merged.size() ? merged[i + 1].addr.value : kNullLink;
    store_->Write(merged[i].addr, EncodeInactive(merged[i].size, next));
  }
  chain_head_ = merged.front().addr.value;
  return true;
}

bool RiceStorageImage::BackReferencesIntact() const {
  for (std::size_t slot = 0; slot < codeword_slots_; ++slot) {
    const Codeword codeword = ReadCodeword(slot);
    if (!codeword.presence) {
      continue;
    }
    const Word header = store_->Read(PhysicalAddress{codeword.base.value - 1});
    if ((header & kActiveTag) == 0 || (header & 0xffffffffull) != slot) {
      return false;
    }
  }
  return true;
}

}  // namespace dsa
