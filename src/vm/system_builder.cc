#include "src/vm/system_builder.h"

#include "src/core/assert.h"
#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"
#include "src/vm/segmented_vm.h"

namespace dsa {

namespace {

SegmentReplacementKind SegmentReplacementFor(ReplacementStrategyKind kind) {
  switch (kind) {
    case ReplacementStrategyKind::kLru:
      return SegmentReplacementKind::kLru;
    case ReplacementStrategyKind::kClock:
      return SegmentReplacementKind::kCyclic;
    default:
      // Segment-unit systems of the era offered cyclic or second-chance
      // sweeps; map anything else onto the Rice variant.
      return SegmentReplacementKind::kRiceSecondChance;
  }
}

}  // namespace

bool SpecIsBuildable(const SystemSpec& spec) {
  const Characteristics& c = spec.characteristics;
  if (c.name_space == NameSpaceKind::kLinear && c.unit == AllocationUnit::kVariableBlocks) {
    return false;
  }
  if (c.name_space == NameSpaceKind::kSymbolicallySegmented &&
      c.unit != AllocationUnit::kVariableBlocks) {
    // Symbolic segments over pages would be MULTICS-with-symbols; the
    // hardware surveyed implements it with linear segment names underneath,
    // which is what PagedSegmentedVm models.  Treat as buildable via that
    // family.
    return true;
  }
  return true;
}

bool SpecIsPagedLinear(const SystemSpec& spec) {
  return SpecIsBuildable(spec) &&
         spec.characteristics.name_space == NameSpaceKind::kLinear &&
         spec.characteristics.unit != AllocationUnit::kVariableBlocks;
}

PagedVmConfig PagedConfigFromSpec(const SystemSpec& spec) {
  DSA_ASSERT(SpecIsPagedLinear(spec), "spec does not select the paged linear family");
  const bool advice = spec.characteristics.predictive == PredictiveInformation::kAccepted;
  if (spec.fetch == FetchStrategyKind::kAdvised) {
    DSA_ASSERT(advice, "advised fetch requires the predictive characteristic");
  }
  PagedVmConfig config;
  config.label = spec.label;
  config.core_words = spec.core_words;
  config.page_words = spec.page_words;
  config.backing_level = spec.backing_level;
  config.tlb_entries = spec.tlb_entries;
  config.replacement = spec.replacement;
  config.fetch = spec.fetch;
  config.accept_advice = advice;
  config.cycles_per_reference = spec.cycles_per_reference;
  config.reported_unit = spec.characteristics.unit;
  config.fault_injection = spec.fault_injection;
  config.tracer = spec.tracer;
  return config;
}

std::unique_ptr<StorageAllocationSystem> BuildSystem(const SystemSpec& spec) {
  DSA_ASSERT(SpecIsBuildable(spec),
             "a linear name space with variable allocation units has no relocation handle; "
             "pick another point of the design space");
  DSA_ASSERT(spec.page_words > 0, "page_words must be positive");
  DSA_ASSERT(spec.core_words >= spec.page_words,
             "core_words below one page leaves zero frames");
  DSA_ASSERT(spec.cycles_per_reference > 0, "cycles_per_reference must be positive");
  const Characteristics& c = spec.characteristics;
  const bool advice = c.predictive == PredictiveInformation::kAccepted;

  if (c.unit == AllocationUnit::kVariableBlocks) {
    // Segment = unit of allocation (B5000/Rice family).
    SegmentedVmConfig config;
    config.label = spec.label;
    config.core_words = spec.core_words;
    config.max_segment_extent = spec.max_segment_extent;
    config.workload_segment_words = spec.workload_segment_words;
    config.backing_level = spec.backing_level;
    config.placement = spec.placement;
    config.replacement = SegmentReplacementFor(spec.replacement);
    config.symbolic_names = c.name_space == NameSpaceKind::kSymbolicallySegmented;
    config.descriptor_cache_entries = spec.tlb_entries;
    config.accept_advice = advice;
    config.cycles_per_reference = spec.cycles_per_reference;
    config.tracer = spec.tracer;
    return std::make_unique<SegmentedVm>(config);
  }

  if (c.name_space == NameSpaceKind::kLinear) {
    return std::make_unique<PagedLinearVm>(PagedConfigFromSpec(spec));
  }

  // Segmented name space over paged storage: the Fig. 4 family.
  PagedSegmentedVmConfig config;
  config.label = spec.label;
  config.core_words = spec.core_words;
  config.page_words = spec.page_words;
  config.backing_level = spec.backing_level;
  config.tlb_entries = spec.tlb_entries;
  config.replacement = spec.replacement;
  config.fetch = spec.fetch;
  config.accept_advice = advice;
  config.workload_segment_words = spec.workload_segment_words;
  config.cycles_per_reference = spec.cycles_per_reference;
  config.reported_unit = c.unit;
  config.fault_injection = spec.fault_injection;
  config.tracer = spec.tracer;
  return std::make_unique<PagedSegmentedVm>(config);
}

}  // namespace dsa
