// The paged virtual memory system: a large linear name space over a smaller
// core store, with artificial contiguity from a page-mapping device and
// demand (or predictive) fetching — the ATLAS/M44/44X shape.

#ifndef SRC_VM_PAGED_VM_H_
#define SRC_VM_PAGED_VM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/clock.h"
#include "src/map/cost_model.h"
#include "src/map/mapper.h"
#include "src/map/page_table.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/fault_injection.h"
#include "src/naming/linear.h"
#include "src/paging/advice.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/vm/system.h"

namespace dsa {

// Which address-mapping hardware performs the artificial contiguity.
enum class PagedMapperKind : std::uint8_t {
  kPageTable,       // in-core table, optional associative memory in front
  kAtlasRegisters,  // one page-address register per frame (ATLAS)
};

struct PagedVmConfig {
  std::string label{"paged-vm"};
  int address_bits{24};
  WordCount core_words{16384};
  WordCount page_words{512};
  StorageLevel backing_level{MakeDrumLevel("drum", 98304, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  PagedMapperKind mapper{PagedMapperKind::kPageTable};
  std::size_t tlb_entries{0};
  MappingCostModel mapping_costs{};

  ReplacementStrategyKind replacement{ReplacementStrategyKind::kLru};
  ReplacementOptions replacement_options{};
  FetchStrategyKind fetch{FetchStrategyKind::kDemand};
  std::size_t prefetch_window{2};
  std::size_t advice_fetch_budget{4};
  bool accept_advice{false};
  bool keep_one_frame_vacant{false};

  // Storage fault model (zero rates: bit-identical to a fault-free run).
  FaultInjectorConfig fault_injection{};

  // Optional shared event tracer (not owned); attached to the pager and the
  // frame table on Reset.  Null: no tracing.
  EventTracer* tracer{nullptr};

  // Optional shared-storage binder (not owned); attached to the pager's
  // frame table on Reset, so this VM's resident frames are backed by blocks
  // from a heap shared across concurrent lanes.  Reset first drops any
  // blocks the binder still holds for the torn-down pager.  Null: frames
  // are purely notional.
  FrameBackingBinder* frame_binder{nullptr};

  // Compute cost of one reference besides mapping (instruction execution).
  Cycles cycles_per_reference{1};
  // Reported allocation-unit flavour: a machine with more than one frame
  // size is formally non-uniform even when this model pages at one size.
  AllocationUnit reported_unit{AllocationUnit::kUniformPages};
};

class PagedLinearVm : public StorageAllocationSystem {
 public:
  explicit PagedLinearVm(PagedVmConfig config);

  VmReport Run(const ReferenceTrace& trace) override;
  std::string name() const override { return config_.label; }
  Characteristics characteristics() const override;

  // Executes a single reference against the current state (Run loops this).
  // Returns the stall incurred.
  Cycles Step(const Reference& ref);

  // Predictive directives (no-ops unless accept_advice).
  void AdviseWillNeed(Name name);
  void AdviseWontNeed(Name name);
  void AdviseKeepResident(Name name);

  const Pager& pager() const { return *pager_; }
  const AddressMapper& mapper() const { return *mapper_; }
  const Clock& clock() const { return clock_; }
  const PagedVmConfig& config() const { return config_; }

  // Report for everything stepped so far (Run resets state first).
  VmReport Snapshot() const;

  // Rebuilds all internal state from scratch (Run calls this; service-mode
  // callers that drive Step directly call it once before the first step).
  void Reset();

  // Checkpoint serialization of the complete mid-run state: the clock, every
  // storage component, the mapper, the pager (frame table, replacement
  // decision state, residency), the fault stream position, the advice
  // registry, the space-time integrals, and the step counters.  LoadState
  // expects a freshly Reset() system built from the identical config; any
  // inconsistency is reported through the reader.  After a successful load,
  // Step produces the bit-identical continuation of the checkpointed run.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

  // Sectioned serialization for incremental checkpoints: the same complete
  // state split into content-addressed sections (vm.clock, vm.backing,
  // vm.channel, vm.rng, vm.advice, the mapper's map.* sections, vm.pager,
  // vm.tally), so a delta seal re-emits only the sections that changed
  // since the last committed cut.  Field order inside each section matches
  // the flat path exactly; LoadSections has the flat path's contract
  // (freshly built identical config, all-or-nothing application of the
  // clock/rng/tally block).
  void SaveSections(SectionedSnapshotWriter* w) const;
  void LoadSections(SectionSource* src);

 private:
  PageId PageOf(Name name) const { return PageId{name.value / config_.page_words}; }

  PagedVmConfig config_;
  LinearNameSpace names_;
  Clock clock_;
  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<AdviceRegistry> advice_;
  std::unique_ptr<AddressMapper> mapper_;
  std::unique_ptr<Pager> pager_;
  SpaceTimeAccumulator space_time_;

  std::uint64_t references_{0};
  std::uint64_t bounds_violations_{0};
  Cycles compute_cycles_{0};
  Cycles translation_cycles_{0};
  Cycles wait_cycles_{0};
  WordCount peak_resident_{0};
};

}  // namespace dsa

#endif  // SRC_VM_PAGED_VM_H_
