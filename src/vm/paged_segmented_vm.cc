#include "src/vm/paged_segmented_vm.h"

#include <algorithm>

#include "src/core/assert.h"
#include "src/paging/fetch.h"

namespace dsa {

PagedSegmentedVm::PagedSegmentedVm(PagedSegmentedVmConfig config) : config_(std::move(config)) {
  DSA_ASSERT(config_.core_words % config_.page_words == 0,
             "core must hold an integral number of page frames");
  DSA_ASSERT(config_.workload_segment_words <= (WordCount{1} << config_.offset_bits),
             "workload segments exceed the maximum segment extent");
  Reset();
}

void PagedSegmentedVm::Reset() {
  clock_.Reset();
  backing_ = std::make_unique<BackingStore>(config_.backing_level);
  channel_ = std::make_unique<TransferChannel>();
  // Always attached: zero rates draw nothing and change nothing.
  injector_ = std::make_unique<FaultInjector>(config_.fault_injection);
  advice_ = config_.accept_advice ? std::make_unique<AdviceRegistry>() : nullptr;
  defined_segments_.clear();

  mapper_ = std::make_unique<SegmentPageMapper>(config_.segment_bits, config_.offset_bits,
                                                config_.page_words, config_.tlb_entries,
                                                config_.mapping_costs,
                                                config_.dedicated_execute_register);

  PagerConfig pager_config;
  pager_config.page_words = config_.page_words;
  pager_config.frames = static_cast<std::size_t>(config_.core_words / config_.page_words);

  std::unique_ptr<FetchPolicy> fetch;
  switch (config_.fetch) {
    case FetchStrategyKind::kDemand:
      fetch = std::make_unique<DemandFetch>();
      break;
    case FetchStrategyKind::kPrefetch:
      // Lookahead within the segment: keys for consecutive pages of one
      // segment are consecutive integers, so the window stays in-segment for
      // all but the last page (the pager drops nonresident oddballs cheaply).
      fetch = std::make_unique<PrefetchFetch>(config_.prefetch_window,
                                              std::uint64_t{1} << 62);
      break;
    case FetchStrategyKind::kAdvised:
      DSA_ASSERT(config_.accept_advice, "advised fetch requires accept_advice");
      fetch = std::make_unique<AdvisedFetch>(advice_.get(), config_.advice_fetch_budget);
      break;
  }

  auto replacement = MakeReplacementPolicy(config_.replacement, config_.replacement_options);
  pager_ = std::make_unique<Pager>(pager_config, backing_.get(), channel_.get(),
                                   std::move(replacement), std::move(fetch), advice_.get(),
                                   injector_.get());
  pager_->SetTracer(config_.tracer);

  SegmentPageMapper* raw = mapper_.get();
  pager_->SetResidencyCallbacks(
      [raw](PageId key, FrameId frame) {
        raw->MapPage(SegmentId{key.value >> 32}, PageId{key.value & 0xffffffffu}, frame);
      },
      [raw](PageId key, FrameId frame) {
        (void)frame;
        raw->UnmapPage(SegmentId{key.value >> 32}, PageId{key.value & 0xffffffffu});
      });

  // Speculative fetches must stay inside a defined segment's page table.
  const WordCount seg_pages =
      (config_.workload_segment_words + config_.page_words - 1) / config_.page_words;
  const auto* defined = &defined_segments_;
  pager_->SetPageValidator([seg_pages, defined](PageId key) {
    const std::uint64_t segment = key.value >> 32;
    const std::uint64_t page = key.value & 0xffffffffu;
    return defined->contains(segment) && page < seg_pages;
  });

  space_time_ = SpaceTimeAccumulator{};
  references_ = 0;
  bounds_violations_ = 0;
  compute_cycles_ = 0;
  translation_cycles_ = 0;
  wait_cycles_ = 0;
  peak_resident_ = 0;
}

SegmentedName PagedSegmentedVm::Slice(Name name) const {
  SegmentedName out;
  out.segment = SegmentId{name.value / config_.workload_segment_words};
  out.offset = name.value % config_.workload_segment_words;
  return out;
}

void PagedSegmentedVm::EnsureSegment(SegmentId segment) {
  if (defined_segments_.contains(segment.value)) {
    return;
  }
  DSA_ASSERT(segment.value < mapper_->max_segments(),
             "workload needs more segments than the name space provides");
  mapper_->DefineSegment(segment, config_.workload_segment_words);
  defined_segments_.insert(segment.value);
}

VmReport PagedSegmentedVm::Run(const ReferenceTrace& trace) {
  Reset();
  for (const Reference& ref : trace.refs) {
    ++references_;
    clock_.Advance(config_.cycles_per_reference);
    compute_cycles_ += config_.cycles_per_reference;
    space_time_.Accumulate(pager_->ResidentWords(), config_.cycles_per_reference,
                           /*waiting=*/false);

    const SegmentedName split = Slice(ref.name);
    EnsureSegment(split.segment);

    TranslationResult first = mapper_->TranslateSegmented(split, ref.kind, clock_.now());
    Cycles map_cost = first.has_value() ? first->cost : first.error().detection_cost;
    translation_cycles_ += map_cost;
    clock_.Advance(map_cost);
    space_time_.Accumulate(pager_->ResidentWords(), map_cost, /*waiting=*/false);

    if (!first.has_value()) {
      const Fault& fault = first.error();
      if (fault.kind == FaultKind::kBoundsViolation ||
          fault.kind == FaultKind::kInvalidSegment) {
        ++bounds_violations_;
        continue;
      }
      DSA_ASSERT(fault.kind == FaultKind::kPageNotPresent,
                 "unexpected fault kind in paged-segmented VM");
    }

    const PageAccessResult result = pager_->Access(PageKeyOf(split), ref.kind, clock_.now());
    if (!result.has_value()) {
      // Unrecoverable access: the stall was paid, the page never arrived,
      // and the reference is abandoned.
      const Cycles lost_wait = result.error().wait_cycles;
      space_time_.Accumulate(pager_->ResidentWords(), lost_wait, /*waiting=*/true);
      clock_.Advance(lost_wait);
      wait_cycles_ += lost_wait;
      peak_resident_ = std::max(peak_resident_, pager_->ResidentWords());
      continue;
    }
    const PageAccessOutcome& outcome = *result;
    if (outcome.faulted) {
      space_time_.Accumulate(pager_->ResidentWords(), outcome.wait_cycles, /*waiting=*/true);
      clock_.Advance(outcome.wait_cycles);
      wait_cycles_ += outcome.wait_cycles;

      TranslationResult retry = mapper_->TranslateSegmented(split, ref.kind, clock_.now());
      DSA_ASSERT(retry.has_value(), "translation must succeed after the page is loaded");
      translation_cycles_ += retry->cost;
      clock_.Advance(retry->cost);
      space_time_.Accumulate(pager_->ResidentWords(), retry->cost, /*waiting=*/false);
    }
    peak_resident_ = std::max(peak_resident_, pager_->ResidentWords());
  }

  VmReport report;
  report.label = config_.label + " / " + trace.label;
  report.references = references_;
  report.faults = pager_->stats().faults;
  report.bounds_violations = bounds_violations_;
  report.writebacks = pager_->stats().writebacks;
  report.total_cycles = clock_.now();
  report.compute_cycles = compute_cycles_;
  report.translation_cycles = translation_cycles_;
  report.wait_cycles = wait_cycles_;
  report.space_time = space_time_.product();
  report.peak_resident_words = peak_resident_;
  report.reliability = pager_->stats().reliability;
  if (config_.tlb_entries > 0) {
    report.tlb_hit_rate = mapper_->tlb().HitRate();
  }
  return report;
}

Characteristics PagedSegmentedVm::characteristics() const {
  Characteristics c;
  c.name_space = NameSpaceKind::kLinearlySegmented;
  c.predictive = config_.accept_advice ? PredictiveInformation::kAccepted
                                       : PredictiveInformation::kNotAccepted;
  c.prediction_source =
      config_.accept_advice ? PredictionSource::kProgrammer : PredictionSource::kNone;
  c.contiguity = ArtificialContiguity::kProvided;
  c.unit = config_.reported_unit;
  return c;
}

void PagedSegmentedVm::AdviseWillNeed(SegmentedName name) {
  EnsureSegment(name.segment);
  pager_->AdviseWillNeed(PageKeyOf(name));
}

void PagedSegmentedVm::AdviseWontNeed(SegmentedName name) {
  pager_->AdviseWontNeed(PageKeyOf(name));
}

void PagedSegmentedVm::AdviseKeepResident(SegmentedName name) {
  EnsureSegment(name.segment);
  pager_->AdviseKeepResident(PageKeyOf(name));
}

}  // namespace dsa
