// The space-time product (Figure 3).
//
// "A more significant measure of a strategy's effectiveness is the
// space-time product.  A program which is awaiting arrival of a further page
// will, unless extra page transmission is introduced, continue to occupy
// working storage."  The accumulator splits the integral of resident words
// over time into the figure's two shadings: space held while the program is
// *active* and space held while it *awaits pages*.

#ifndef SRC_VM_SPACE_TIME_H_
#define SRC_VM_SPACE_TIME_H_

#include "src/core/types.h"

namespace dsa {

struct SpaceTime {
  // Units: word-cycles.
  double active{0.0};
  double waiting{0.0};

  double total() const { return active + waiting; }

  // Fraction of the space-time product spent awaiting pages — the paper's
  // "danger of demand paging in unsuitable environments" in one number.
  double WaitingFraction() const {
    const double t = total();
    return t == 0.0 ? 0.0 : waiting / t;
  }
};

class SpaceTimeAccumulator {
 public:
  // Charges `words` of residency held for `cycles`, attributed to activity
  // or page-waiting.
  void Accumulate(WordCount words, Cycles cycles, bool waiting) {
    const double wt = static_cast<double>(words) * static_cast<double>(cycles);
    if (waiting) {
      product_.waiting += wt;
    } else {
      product_.active += wt;
    }
  }

  const SpaceTime& product() const { return product_; }

  // Checkpoint restore: the accumulator is two doubles, set wholesale.
  void Restore(const SpaceTime& product) { product_ = product; }

 private:
  SpaceTime product_;
};

}  // namespace dsa

#endif  // SRC_VM_SPACE_TIME_H_
