#include "src/vm/segmented_vm.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

SegmentedVm::SegmentedVm(SegmentedVmConfig config)
    : config_(std::move(config)), descriptor_cache_(config_.descriptor_cache_entries) {
  DSA_ASSERT(config_.workload_segment_words > 0, "workload segment size must be positive");
  DSA_ASSERT(config_.workload_segment_words <= config_.max_segment_extent,
             "workload segments exceed the machine's segment limit");
  Reset();
}

void SegmentedVm::Reset() {
  clock_.Reset();
  backing_ = std::make_unique<BackingStore>(config_.backing_level);
  channel_ = std::make_unique<TransferChannel>();

  SegmentManagerConfig mgr;
  mgr.core_words = config_.core_words;
  mgr.max_segment_extent = config_.max_segment_extent;
  mgr.placement = config_.placement;
  mgr.replacement = config_.replacement;
  mgr.compact_on_fragmentation = config_.compact_on_fragmentation;
  mgr.packing = config_.packing;
  manager_ = std::make_unique<SegmentManager>(mgr, backing_.get(), channel_.get());
  manager_->SetTracer(config_.tracer);

  directory_ = SymbolicSegmentDirectory{};
  workload_segments_.clear();
  descriptor_cache_ = AssociativeMemory(config_.descriptor_cache_entries);
  space_time_ = SpaceTimeAccumulator{};
  references_ = 0;
  bounds_violations_ = 0;
  compute_cycles_ = 0;
  translation_cycles_ = 0;
  wait_cycles_ = 0;
  peak_resident_ = 0;
}

SegmentId SegmentedVm::SegmentFor(Name name) {
  const std::uint64_t slice = name.value / config_.workload_segment_words;
  auto it = workload_segments_.find(slice);
  if (it != workload_segments_.end()) {
    return it->second;
  }
  const SegmentId segment = manager_->Create(config_.workload_segment_words);
  if (config_.symbolic_names) {
    // The compiler's symbol for this block; the directory's bookkeeping
    // counters feed experiment E8.
    const auto bound = directory_.Create("slice-" + std::to_string(slice));
    DSA_ASSERT(bound.has_value(), "segment directory full");
  }
  workload_segments_.emplace(slice, segment);
  return segment;
}

VmReport SegmentedVm::Run(const ReferenceTrace& trace) {
  Reset();
  for (const Reference& ref : trace.refs) {
    ++references_;
    clock_.Advance(config_.cycles_per_reference);
    compute_cycles_ += config_.cycles_per_reference;
    space_time_.Accumulate(manager_->ResidentWords(), config_.cycles_per_reference,
                           /*waiting=*/false);

    const SegmentId segment = SegmentFor(ref.name);
    const WordCount offset = ref.name.value % config_.workload_segment_words;

    // Descriptor lookup: PRT reference from core unless cached.
    Cycles map_cost = 0;
    if (descriptor_cache_.capacity() > 0) {
      map_cost += config_.mapping_costs.associative_search;
      if (!descriptor_cache_.Lookup(segment.value, clock_.now())) {
        map_cost += config_.mapping_costs.core_reference;
        descriptor_cache_.Insert(segment.value, /*value=*/1, clock_.now());
      }
    } else {
      map_cost += config_.mapping_costs.core_reference;
    }
    translation_cycles_ += map_cost;
    clock_.Advance(map_cost);
    space_time_.Accumulate(manager_->ResidentWords(), map_cost, /*waiting=*/false);

    const auto outcome = manager_->Access(segment, offset, ref.kind, clock_.now());
    if (!outcome.has_value()) {
      DSA_ASSERT(outcome.error().kind == FaultKind::kBoundsViolation,
                 "segment allocation failed outright");
      ++bounds_violations_;
      continue;
    }
    if (outcome->segment_fault) {
      space_time_.Accumulate(manager_->ResidentWords(), outcome->wait_cycles, /*waiting=*/true);
      clock_.Advance(outcome->wait_cycles);
      wait_cycles_ += outcome->wait_cycles;
    }
    peak_resident_ = std::max(peak_resident_, manager_->ResidentWords());
  }

  VmReport report;
  report.label = config_.label + " / " + trace.label;
  report.references = references_;
  report.faults = manager_->stats().segment_faults;
  report.bounds_violations = bounds_violations_;
  report.writebacks = manager_->stats().writebacks;
  report.total_cycles = clock_.now();
  report.compute_cycles = compute_cycles_;
  report.translation_cycles = translation_cycles_;
  report.wait_cycles = wait_cycles_;
  report.space_time = space_time_.product();
  report.peak_resident_words = peak_resident_;
  if (config_.descriptor_cache_entries > 0) {
    report.tlb_hit_rate = descriptor_cache_.HitRate();
  }
  return report;
}

Characteristics SegmentedVm::characteristics() const {
  Characteristics c;
  c.name_space = config_.symbolic_names ? NameSpaceKind::kSymbolicallySegmented
                                        : NameSpaceKind::kLinearlySegmented;
  c.predictive = config_.accept_advice ? PredictiveInformation::kAccepted
                                       : PredictiveInformation::kNotAccepted;
  c.prediction_source =
      config_.accept_advice ? PredictionSource::kProgrammer : PredictionSource::kNone;
  c.contiguity = ArtificialContiguity::kNone;  // segments are address-contiguous in core
  c.unit = AllocationUnit::kVariableBlocks;
  return c;
}

void SegmentedVm::AdviseKeepResident(Name name) {
  if (config_.accept_advice) {
    manager_->AdviseKeepResident(SegmentFor(name));
  }
}

void SegmentedVm::AdviseWontNeed(Name name) {
  if (config_.accept_advice) {
    manager_->AdviseWontNeed(SegmentFor(name), clock_.now());
  }
}

Cycles SegmentedVm::AdviseWillNeed(Name name) {
  if (!config_.accept_advice) {
    return 0;
  }
  return manager_->AdviseWillNeed(SegmentFor(name), clock_.now());
}

}  // namespace dsa
