// Static, preplanned overlays — the Introduction's pre-VM baseline.
//
// "The simplest strategies involved preplanned allocation and overlaying on
// the basis of worst case estimates of storage requirements."  The plan
// divides the name space into fixed regions of which a fixed number fit in
// core; touching a non-resident region swaps the *whole region* over the
// least recently used slot.  Automatic systems are judged against this.

#ifndef SRC_VM_OVERLAY_H_
#define SRC_VM_OVERLAY_H_

#include <cstdint>

#include "src/core/types.h"
#include "src/mem/storage_level.h"
#include "src/trace/reference.h"

namespace dsa {

struct OverlayPlanConfig {
  WordCount region_words{2048};     // the worst-case planning unit
  std::size_t resident_regions{4};  // how many regions core holds at once
  StorageLevel backing{MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                     /*rotational_delay=*/6000)};
  Cycles cycles_per_reference{1};
};

struct OverlayReport {
  std::uint64_t references{0};
  std::uint64_t overlay_swaps{0};
  WordCount words_transferred{0};
  Cycles total_cycles{0};
  Cycles transfer_cycles{0};

  double SwapRate() const {
    return references == 0 ? 0.0
                           : static_cast<double>(overlay_swaps) /
                                 static_cast<double>(references);
  }
};

class StaticOverlayPlan {
 public:
  explicit StaticOverlayPlan(OverlayPlanConfig config);

  // Replays the trace under the plan's overlaying discipline.
  OverlayReport Run(const ReferenceTrace& trace) const;

  const OverlayPlanConfig& config() const { return config_; }
  // Core the plan reserves (its worst-case estimate).
  WordCount PlannedCoreWords() const {
    return config_.region_words * config_.resident_regions;
  }

 private:
  OverlayPlanConfig config_;
};

}  // namespace dsa

#endif  // SRC_VM_OVERLAY_H_
