// SystemBuilder: turns a point in the paper's four-axis design space into a
// runnable storage allocation system.
//
// "The selection of a particular combination of the four basic
// characteristics ... provides a preliminary system specification.  No
// detailed specification ... would however be complete without a description
// of the basic strategies it incorporates."  A SystemSpec is therefore a
// Characteristics value plus the three strategies (fetch, placement,
// replacement) and capacity/timing parameters; Build() maps it to one of the
// three architecture families the library implements.

#ifndef SRC_VM_SYSTEM_BUILDER_H_
#define SRC_VM_SYSTEM_BUILDER_H_

#include <memory>
#include <string>

#include "src/core/characteristics.h"
#include "src/core/strategy.h"
#include "src/mem/fault_injection.h"
#include "src/mem/storage_level.h"
#include "src/vm/paged_vm.h"
#include "src/vm/system.h"

namespace dsa {

class EventTracer;

struct SystemSpec {
  std::string label{"custom-system"};
  Characteristics characteristics{};

  // Strategies (each applies where the architecture uses it).
  FetchStrategyKind fetch{FetchStrategyKind::kDemand};
  PlacementStrategyKind placement{PlacementStrategyKind::kBestFit};
  ReplacementStrategyKind replacement{ReplacementStrategyKind::kLru};

  // Capacities and timing.
  WordCount core_words{16384};
  WordCount page_words{512};         // uniform/mixed units
  WordCount max_segment_extent{1024};  // variable units
  WordCount workload_segment_words{512};
  StorageLevel backing_level{MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  std::size_t tlb_entries{8};
  Cycles cycles_per_reference{1};

  // Storage fault model for the paged families (zero rates: fault-free).
  // The segment-unit family has no paging channel to inject into and
  // ignores it.
  FaultInjectorConfig fault_injection{};

  // Optional shared event tracer (not owned), threaded into whichever
  // family Build() selects.  Null: no tracing.
  EventTracer* tracer{nullptr};
};

// Builds the system family implied by the characteristics:
//   * linear + uniform pages            -> PagedLinearVm
//   * linearly segmented + pages/mixed  -> PagedSegmentedVm (Fig. 4)
//   * any segmented + variable blocks   -> SegmentedVm (segment = unit)
//   * linear + variable blocks is rejected: with no mapping device and no
//     segments, variable-unit allocation has nothing to relocate by — the
//     combination the paper notes was never usefully built.
std::unique_ptr<StorageAllocationSystem> BuildSystem(const SystemSpec& spec);

// True if Build() accepts this point of the design space.
bool SpecIsBuildable(const SystemSpec& spec);

// True when Build() would select the PagedLinearVm family (a linear name
// space with non-variable units) — the family whose complete state is
// checkpointable, which is what service mode (src/serve) requires.
bool SpecIsPagedLinear(const SystemSpec& spec);

// The PagedVmConfig Build() derives for a paged-linear spec.  Exposed so
// the service loop can construct the concrete PagedLinearVm (rather than
// the type-erased StorageAllocationSystem) and reach its
// SaveState/LoadState.  The spec must satisfy SpecIsPagedLinear.
PagedVmConfig PagedConfigFromSpec(const SystemSpec& spec);

}  // namespace dsa

#endif  // SRC_VM_SYSTEM_BUILDER_H_
