// The paged-segmented virtual memory system (MULTICS / IBM 360/67 shape):
// a linearly segmented name space whose segments are themselves paged, with
// the Fig. 4 two-level mapping and a small associative memory in front.
//
// "Unlike the B5000 system, the segment is not the unit of allocation.
// Instead allocation is performed by a variant of the standard paging
// technique."

#ifndef SRC_VM_PAGED_SEGMENTED_VM_H_
#define SRC_VM_PAGED_SEGMENTED_VM_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "src/core/clock.h"
#include "src/map/two_level.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/fault_injection.h"
#include "src/paging/advice.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/vm/system.h"

namespace dsa {

struct PagedSegmentedVmConfig {
  std::string label{"paged-segmented-vm"};
  int segment_bits{12};    // MULTICS: up to 256K segments; model scaled
  int offset_bits{18};     // max segment extent 256K words
  WordCount core_words{131072};
  WordCount page_words{1024};
  StorageLevel backing_level{MakeDrumLevel("drum", 1u << 22, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  std::size_t tlb_entries{16};
  // The 360/67's ninth associative register for the instruction counter.
  bool dedicated_execute_register{false};
  MappingCostModel mapping_costs{};
  ReplacementStrategyKind replacement{ReplacementStrategyKind::kClock};
  ReplacementOptions replacement_options{};
  FetchStrategyKind fetch{FetchStrategyKind::kDemand};
  std::size_t prefetch_window{2};
  std::size_t advice_fetch_budget{4};
  bool accept_advice{false};
  // Storage fault model (zero rates: bit-identical to a fault-free run).
  FaultInjectorConfig fault_injection{};
  // Optional shared event tracer (not owned); attached to the pager and the
  // frame table on Reset.  Null: no tracing.
  EventTracer* tracer{nullptr};
  // How linear workload traces are sliced into segments.
  WordCount workload_segment_words{4096};
  Cycles cycles_per_reference{1};
  // Reported allocation-unit flavour: MULTICS uses two page sizes, making it
  // formally non-uniform even though this model pages at one size.
  AllocationUnit reported_unit{AllocationUnit::kUniformPages};
};

class PagedSegmentedVm : public StorageAllocationSystem {
 public:
  explicit PagedSegmentedVm(PagedSegmentedVmConfig config);

  VmReport Run(const ReferenceTrace& trace) override;
  std::string name() const override { return config_.label; }
  Characteristics characteristics() const override;

  // Predictive directives at (segment, page-in-segment) granularity.
  void AdviseWillNeed(SegmentedName name);
  void AdviseWontNeed(SegmentedName name);
  void AdviseKeepResident(SegmentedName name);

  const Pager& pager() const { return *pager_; }
  const SegmentPageMapper& mapper() const { return *mapper_; }
  const PagedSegmentedVmConfig& config() const { return config_; }

 private:
  void Reset();
  SegmentedName Slice(Name name) const;
  void EnsureSegment(SegmentId segment);
  std::uint64_t KeyOf(SegmentId segment, PageId page) const {
    return (segment.value << 32) | page.value;
  }
  // The pager's opaque page key for a (segment, offset) pair.
  PageId PageKeyOf(SegmentedName name) const {
    return PageId{KeyOf(name.segment, PageId{name.offset / config_.page_words})};
  }

  PagedSegmentedVmConfig config_;
  Clock clock_;
  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<AdviceRegistry> advice_;
  std::unique_ptr<SegmentPageMapper> mapper_;
  std::unique_ptr<Pager> pager_;
  std::unordered_set<std::uint64_t> defined_segments_;
  SpaceTimeAccumulator space_time_;

  std::uint64_t references_{0};
  std::uint64_t bounds_violations_{0};
  Cycles compute_cycles_{0};
  Cycles translation_cycles_{0};
  Cycles wait_cycles_{0};
  WordCount peak_resident_{0};
};

}  // namespace dsa

#endif  // SRC_VM_PAGED_SEGMENTED_VM_H_
