#include "src/vm/paged_vm.h"

#include <algorithm>

#include "src/core/assert.h"
#include "src/core/snapshot.h"
#include "src/paging/backing_binder.h"
#include "src/paging/fetch.h"

namespace dsa {

namespace {

std::unique_ptr<FetchPolicy> MakeFetchPolicy(const PagedVmConfig& config,
                                             AdviceRegistry* advice,
                                             std::uint64_t page_count) {
  switch (config.fetch) {
    case FetchStrategyKind::kDemand:
      return std::make_unique<DemandFetch>();
    case FetchStrategyKind::kPrefetch:
      return std::make_unique<PrefetchFetch>(config.prefetch_window, page_count);
    case FetchStrategyKind::kAdvised:
      DSA_ASSERT(advice != nullptr, "advised fetch requires accept_advice");
      return std::make_unique<AdvisedFetch>(advice, config.advice_fetch_budget);
  }
  DSA_ASSERT(false, "unknown fetch strategy");
  return nullptr;
}

}  // namespace

PagedLinearVm::PagedLinearVm(PagedVmConfig config)
    : config_(std::move(config)), names_(config_.address_bits) {
  DSA_ASSERT(config_.core_words % config_.page_words == 0,
             "core must hold an integral number of page frames");
  Reset();
}

void PagedLinearVm::Reset() {
  clock_.Reset();
  backing_ = std::make_unique<BackingStore>(config_.backing_level);
  channel_ = std::make_unique<TransferChannel>();
  // Always attached: zero rates draw nothing and change nothing.
  injector_ = std::make_unique<FaultInjector>(config_.fault_injection);
  advice_ = config_.accept_advice ? std::make_unique<AdviceRegistry>() : nullptr;

  const std::size_t frames = static_cast<std::size_t>(config_.core_words / config_.page_words);
  const std::uint64_t page_count =
      (names_.MaxExtent() + config_.page_words - 1) / config_.page_words;

  PagerConfig pager_config;
  pager_config.page_words = config_.page_words;
  pager_config.frames = frames;
  pager_config.keep_one_frame_vacant = config_.keep_one_frame_vacant;

  auto replacement =
      MakeReplacementPolicy(config_.replacement, config_.replacement_options);
  auto fetch = MakeFetchPolicy(config_, advice_.get(), page_count);
  pager_ = std::make_unique<Pager>(pager_config, backing_.get(), channel_.get(),
                                   std::move(replacement), std::move(fetch), advice_.get(),
                                   injector_.get());
  pager_->SetTracer(config_.tracer);
  if (config_.frame_binder != nullptr) {
    // Blocks held for the torn-down pager go back first; the fresh table
    // then re-acquires as pages load.
    config_.frame_binder->ReleaseAllFrameBlocks();
    pager_->SetBackingBinder(config_.frame_binder);
  }

  switch (config_.mapper) {
    case PagedMapperKind::kPageTable: {
      auto mapper = std::make_unique<PageTableMapper>(
          config_.page_words, static_cast<std::size_t>(page_count), config_.tlb_entries,
          config_.mapping_costs);
      PageTableMapper* raw = mapper.get();
      pager_->SetResidencyCallbacks(
          [raw](PageId page, FrameId frame) { raw->Map(page, frame); },
          [raw](PageId page, FrameId frame) {
            (void)frame;
            raw->Unmap(page);
          });
      mapper_ = std::move(mapper);
      break;
    }
    case PagedMapperKind::kAtlasRegisters: {
      auto mapper = std::make_unique<AtlasPageRegisterMapper>(config_.page_words, frames,
                                                              config_.mapping_costs);
      AtlasPageRegisterMapper* raw = mapper.get();
      pager_->SetResidencyCallbacks(
          [raw](PageId page, FrameId frame) { raw->LoadFrame(frame, page); },
          [raw](PageId page, FrameId frame) {
            (void)page;
            raw->ClearFrame(frame);
          });
      mapper_ = std::move(mapper);
      break;
    }
  }

  space_time_ = SpaceTimeAccumulator{};
  references_ = 0;
  bounds_violations_ = 0;
  compute_cycles_ = 0;
  translation_cycles_ = 0;
  wait_cycles_ = 0;
  peak_resident_ = 0;
}

Cycles PagedLinearVm::Step(const Reference& ref) {
  ++references_;

  // Instruction execution.
  clock_.Advance(config_.cycles_per_reference);
  compute_cycles_ += config_.cycles_per_reference;
  space_time_.Accumulate(pager_->ResidentWords(), config_.cycles_per_reference,
                         /*waiting=*/false);

  if (!names_.Contains(ref.name)) {
    ++bounds_violations_;
    return 0;
  }

  // First translation attempt.  A miss is the invalid-access trap that
  // triggers the fetch strategy.
  Cycles stall = 0;
  TranslationResult first = mapper_->Translate(ref.name, ref.kind, clock_.now());
  Cycles map_cost = first.has_value() ? first->cost : first.error().detection_cost;
  translation_cycles_ += map_cost;
  clock_.Advance(map_cost);
  space_time_.Accumulate(pager_->ResidentWords(), map_cost, /*waiting=*/false);

  if (!first.has_value()) {
    const Fault& fault = first.error();
    if (fault.kind == FaultKind::kBoundsViolation || fault.kind == FaultKind::kInvalidName) {
      ++bounds_violations_;
      return 0;
    }
    DSA_ASSERT(fault.kind == FaultKind::kPageNotPresent, "unexpected fault kind in paged VM");
  }

  // Drive the pager; on the hit path this only refreshes sensors/recency.
  const PageAccessResult result = pager_->Access(PageOf(ref.name), ref.kind, clock_.now());
  if (!result.has_value()) {
    // Unrecoverable access: the program stalled through every retry and got
    // nothing.  It resumes without the page (the reference is abandoned).
    const Cycles lost_wait = result.error().wait_cycles;
    space_time_.Accumulate(pager_->ResidentWords(), lost_wait, /*waiting=*/true);
    clock_.Advance(lost_wait);
    wait_cycles_ += lost_wait;
    peak_resident_ = std::max(peak_resident_, pager_->ResidentWords());
    return stall + lost_wait;
  }
  const PageAccessOutcome& outcome = *result;
  if (outcome.faulted) {
    // The program occupies storage while awaiting the page — the waiting
    // shading of Fig. 3.  Residency during the wait includes the newly
    // loaded page(s).
    space_time_.Accumulate(pager_->ResidentWords(), outcome.wait_cycles, /*waiting=*/true);
    clock_.Advance(outcome.wait_cycles);
    wait_cycles_ += outcome.wait_cycles;
    stall += outcome.wait_cycles;

    // Retry the translation after the trap handler completes.
    TranslationResult retry = mapper_->Translate(ref.name, ref.kind, clock_.now());
    DSA_ASSERT(retry.has_value(), "translation must succeed after the page is loaded");
    translation_cycles_ += retry->cost;
    clock_.Advance(retry->cost);
    space_time_.Accumulate(pager_->ResidentWords(), retry->cost, /*waiting=*/false);
  }

  peak_resident_ = std::max(peak_resident_, pager_->ResidentWords());
  return stall;
}

VmReport PagedLinearVm::Run(const ReferenceTrace& trace) {
  Reset();
  for (const Reference& ref : trace.refs) {
    Step(ref);
  }
  VmReport report = Snapshot();
  report.label = config_.label + " / " + trace.label;
  return report;
}

VmReport PagedLinearVm::Snapshot() const {
  VmReport report;
  report.label = config_.label;
  report.references = references_;
  report.faults = pager_->stats().faults;
  report.bounds_violations = bounds_violations_;
  report.writebacks = pager_->stats().writebacks;
  report.total_cycles = clock_.now();
  report.compute_cycles = compute_cycles_;
  report.translation_cycles = translation_cycles_;
  report.wait_cycles = wait_cycles_;
  report.space_time = space_time_.product();
  report.peak_resident_words = peak_resident_;
  report.reliability = pager_->stats().reliability;
  if (config_.mapper == PagedMapperKind::kPageTable && config_.tlb_entries > 0) {
    report.tlb_hit_rate = static_cast<const PageTableMapper&>(*mapper_).tlb().HitRate();
  }
  return report;
}

Characteristics PagedLinearVm::characteristics() const {
  Characteristics c;
  c.name_space = NameSpaceKind::kLinear;
  c.predictive = config_.accept_advice ? PredictiveInformation::kAccepted
                                       : PredictiveInformation::kNotAccepted;
  c.prediction_source =
      config_.accept_advice ? PredictionSource::kProgrammer : PredictionSource::kNone;
  c.contiguity = ArtificialContiguity::kProvided;
  c.unit = config_.reported_unit;
  return c;
}

void PagedLinearVm::SaveState(SnapshotWriter* w) const {
  w->U64(clock_.now());
  backing_->SaveState(w);
  channel_->SaveState(w);
  SaveRngState(w, injector_->rng_state());
  w->Bool(advice_ != nullptr);
  if (advice_ != nullptr) {
    advice_->SaveState(w);
  }
  switch (config_.mapper) {
    case PagedMapperKind::kPageTable:
      static_cast<const PageTableMapper&>(*mapper_).SaveState(w);
      break;
    case PagedMapperKind::kAtlasRegisters:
      static_cast<const AtlasPageRegisterMapper&>(*mapper_).SaveState(w);
      break;
  }
  pager_->SaveState(w);
  w->F64(space_time_.product().active);
  w->F64(space_time_.product().waiting);
  w->U64(references_);
  w->U64(bounds_violations_);
  w->U64(compute_cycles_);
  w->U64(translation_cycles_);
  w->U64(wait_cycles_);
  w->U64(peak_resident_);
}

void PagedLinearVm::LoadState(SnapshotReader* r) {
  const Cycles now = r->U64();
  backing_->LoadState(r);
  channel_->LoadState(r);
  const RngState injector_rng = LoadRngState(r);
  const bool has_advice = r->Bool();
  if (r->ok() && has_advice != (advice_ != nullptr)) {
    r->Fail(SnapshotErrorKind::kBadValue, "advice registry presence disagrees with config");
    return;
  }
  if (advice_ != nullptr) {
    advice_->LoadState(r);
  }
  switch (config_.mapper) {
    case PagedMapperKind::kPageTable:
      static_cast<PageTableMapper&>(*mapper_).LoadState(r);
      break;
    case PagedMapperKind::kAtlasRegisters:
      static_cast<AtlasPageRegisterMapper&>(*mapper_).LoadState(r);
      break;
  }
  pager_->LoadState(r);
  SpaceTime space_time;
  space_time.active = r->F64();
  space_time.waiting = r->F64();
  const std::uint64_t references = r->U64();
  const std::uint64_t bounds_violations = r->U64();
  const Cycles compute_cycles = r->U64();
  const Cycles translation_cycles = r->U64();
  const Cycles wait_cycles = r->U64();
  const WordCount peak_resident = r->U64();
  if (!r->ok()) {
    return;
  }
  injector_->RestoreRngState(injector_rng);
  clock_.Reset();
  clock_.AdvanceTo(now);
  space_time_.Restore(space_time);
  references_ = references;
  bounds_violations_ = bounds_violations;
  compute_cycles_ = compute_cycles;
  translation_cycles_ = translation_cycles;
  wait_cycles_ = wait_cycles;
  peak_resident_ = peak_resident;
}

void PagedLinearVm::SaveSections(SectionedSnapshotWriter* w) const {
  w->Begin("vm.clock")->U64(clock_.now());
  backing_->SaveState(w->Begin("vm.backing"));
  channel_->SaveState(w->Begin("vm.channel"));
  SaveRngState(w->Begin("vm.rng"), injector_->rng_state());
  {
    SnapshotWriter* s = w->Begin("vm.advice");
    s->Bool(advice_ != nullptr);
    if (advice_ != nullptr) {
      advice_->SaveState(s);
    }
  }
  switch (config_.mapper) {
    case PagedMapperKind::kPageTable:
      static_cast<const PageTableMapper&>(*mapper_).SaveSections(w);
      break;
    case PagedMapperKind::kAtlasRegisters:
      // The atlas map is one register per frame — already small; a single
      // head section keeps it content-addressed without chunking.
      static_cast<const AtlasPageRegisterMapper&>(*mapper_).SaveState(w->Begin("map.head"));
      break;
  }
  pager_->SaveState(w->Begin("vm.pager"));
  {
    SnapshotWriter* s = w->Begin("vm.tally");
    s->F64(space_time_.product().active);
    s->F64(space_time_.product().waiting);
    s->U64(references_);
    s->U64(bounds_violations_);
    s->U64(compute_cycles_);
    s->U64(translation_cycles_);
    s->U64(wait_cycles_);
    s->U64(peak_resident_);
  }
}

void PagedLinearVm::LoadSections(SectionSource* src) {
  Cycles now = 0;
  {
    SnapshotReader r = src->Open("vm.clock");
    now = r.U64();
    src->Close(&r, "vm.clock");
  }
  {
    SnapshotReader r = src->Open("vm.backing");
    backing_->LoadState(&r);
    src->Close(&r, "vm.backing");
  }
  {
    SnapshotReader r = src->Open("vm.channel");
    channel_->LoadState(&r);
    src->Close(&r, "vm.channel");
  }
  RngState injector_rng{};
  {
    SnapshotReader r = src->Open("vm.rng");
    injector_rng = LoadRngState(&r);
    src->Close(&r, "vm.rng");
  }
  {
    SnapshotReader r = src->Open("vm.advice");
    const bool has_advice = r.Bool();
    if (r.ok() && has_advice != (advice_ != nullptr)) {
      r.Fail(SnapshotErrorKind::kBadValue, "advice registry presence disagrees with config");
    }
    if (r.ok() && advice_ != nullptr) {
      advice_->LoadState(&r);
    }
    src->Close(&r, "vm.advice");
  }
  switch (config_.mapper) {
    case PagedMapperKind::kPageTable:
      static_cast<PageTableMapper&>(*mapper_).LoadSections(src);
      break;
    case PagedMapperKind::kAtlasRegisters: {
      SnapshotReader r = src->Open("map.head");
      static_cast<AtlasPageRegisterMapper&>(*mapper_).LoadState(&r);
      src->Close(&r, "map.head");
      break;
    }
  }
  {
    SnapshotReader r = src->Open("vm.pager");
    pager_->LoadState(&r);
    src->Close(&r, "vm.pager");
  }
  SpaceTime space_time;
  std::uint64_t references = 0, bounds_violations = 0;
  Cycles compute_cycles = 0, translation_cycles = 0, wait_cycles = 0;
  WordCount peak_resident = 0;
  {
    SnapshotReader r = src->Open("vm.tally");
    space_time.active = r.F64();
    space_time.waiting = r.F64();
    references = r.U64();
    bounds_violations = r.U64();
    compute_cycles = r.U64();
    translation_cycles = r.U64();
    wait_cycles = r.U64();
    peak_resident = r.U64();
    src->Close(&r, "vm.tally");
  }
  if (!src->ok()) {
    return;
  }
  injector_->RestoreRngState(injector_rng);
  clock_.Reset();
  clock_.AdvanceTo(now);
  space_time_.Restore(space_time);
  references_ = references;
  bounds_violations_ = bounds_violations;
  compute_cycles_ = compute_cycles;
  translation_cycles_ = translation_cycles;
  wait_cycles_ = wait_cycles;
  peak_resident_ = peak_resident;
}

void PagedLinearVm::AdviseWillNeed(Name name) { pager_->AdviseWillNeed(PageOf(name)); }

void PagedLinearVm::AdviseWontNeed(Name name) { pager_->AdviseWontNeed(PageOf(name)); }

void PagedLinearVm::AdviseKeepResident(Name name) { pager_->AdviseKeepResident(PageOf(name)); }

}  // namespace dsa
