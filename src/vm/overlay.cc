#include "src/vm/overlay.h"

#include <optional>
#include <vector>

#include "src/core/assert.h"

namespace dsa {

StaticOverlayPlan::StaticOverlayPlan(OverlayPlanConfig config) : config_(std::move(config)) {
  DSA_ASSERT(config_.region_words > 0, "overlay regions are nonempty");
  DSA_ASSERT(config_.resident_regions > 0, "the plan must keep at least one region in core");
}

OverlayReport StaticOverlayPlan::Run(const ReferenceTrace& trace) const {
  OverlayReport report;
  std::vector<std::optional<std::uint64_t>> resident(config_.resident_regions);
  std::vector<Cycles> last_use(config_.resident_regions, 0);

  for (const Reference& ref : trace.refs) {
    ++report.references;
    report.total_cycles += config_.cycles_per_reference;
    const std::uint64_t region = ref.name.value / config_.region_words;

    std::size_t found = config_.resident_regions;
    for (std::size_t s = 0; s < config_.resident_regions; ++s) {
      if (resident[s] == region) {
        found = s;
        break;
      }
    }
    if (found == config_.resident_regions) {
      // Overlay the least recently used slot with the whole demanded region
      // — the worst-case transfer the plan committed to.
      std::size_t victim = 0;
      for (std::size_t s = 1; s < config_.resident_regions; ++s) {
        if (last_use[s] < last_use[victim]) {
          victim = s;
        }
      }
      resident[victim] = region;
      found = victim;
      ++report.overlay_swaps;
      report.words_transferred += config_.region_words;
      const Cycles transfer = config_.backing.TransferTime(config_.region_words);
      report.total_cycles += transfer;
      report.transfer_cycles += transfer;
    }
    last_use[found] = report.total_cycles;
  }
  return report;
}

}  // namespace dsa
