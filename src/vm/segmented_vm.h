// The segment-unit virtual memory system (B5000/Rice shape): a segmented
// name space, segments fetched whole on first reference, variable-unit
// allocation in core.
//
// To run the common linear reference traces, the system lays the linear
// workload out as consecutive segments of a fixed declared extent — the
// compiler's job on the real machines ("programs in the B5000 are segmented
// by compilers at the level of ALGOL blocks").

#ifndef SRC_VM_SEGMENTED_VM_H_
#define SRC_VM_SEGMENTED_VM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/clock.h"
#include "src/map/associative_memory.h"
#include "src/map/cost_model.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/naming/symbolic.h"
#include "src/seg/segment_manager.h"
#include "src/vm/system.h"

namespace dsa {

struct SegmentedVmConfig {
  std::string label{"segmented-vm"};
  WordCount core_words{24000};
  WordCount max_segment_extent{1024};     // the B5000's hard limit
  WordCount workload_segment_words{512};  // how the adapter slices linear traces
  StorageLevel backing_level{MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  PlacementStrategyKind placement{PlacementStrategyKind::kBestFit};
  SegmentReplacementKind replacement{SegmentReplacementKind::kCyclic};
  bool compact_on_fragmentation{false};
  PackingChannel packing{};
  bool symbolic_names{true};  // B5000 true; 360/67-style linear segment names false
  // Descriptor lookup cost: one core reference for the PRT entry, unless the
  // descriptor cache (B8500 thin-film memory) hits.
  MappingCostModel mapping_costs{};
  std::size_t descriptor_cache_entries{0};
  // Whether segment-level predictive directives are accepted (ACSI-MATIC
  // program descriptions; the advisory API below is refused otherwise).
  bool accept_advice{false};
  // Optional shared event tracer (not owned); attached to the segment
  // manager (and its allocator/compactor) on Reset.  Null: no tracing.
  EventTracer* tracer{nullptr};
  Cycles cycles_per_reference{1};
};

class SegmentedVm : public StorageAllocationSystem {
 public:
  explicit SegmentedVm(SegmentedVmConfig config);

  VmReport Run(const ReferenceTrace& trace) override;
  std::string name() const override { return config_.label; }
  Characteristics characteristics() const override;

  const SegmentManager& manager() const { return *manager_; }

  // Predictive directives at workload-segment granularity (no-ops unless
  // accept_advice): `name` selects the workload slice containing it.
  void AdviseKeepResident(Name name);
  void AdviseWontNeed(Name name);
  Cycles AdviseWillNeed(Name name);
  const AssociativeMemory& descriptor_cache() const { return descriptor_cache_; }
  const SegmentedVmConfig& config() const { return config_; }

 private:
  void Reset();
  // Lazily creates the workload segment covering `name`.
  SegmentId SegmentFor(Name name);

  SegmentedVmConfig config_;
  Clock clock_;
  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<SegmentManager> manager_;
  SymbolicSegmentDirectory directory_;
  std::unordered_map<std::uint64_t, SegmentId> workload_segments_;  // slice index -> segment
  AssociativeMemory descriptor_cache_;
  SpaceTimeAccumulator space_time_;

  std::uint64_t references_{0};
  std::uint64_t bounds_violations_{0};
  Cycles compute_cycles_{0};
  Cycles translation_cycles_{0};
  Cycles wait_cycles_{0};
  WordCount peak_resident_{0};
};

}  // namespace dsa

#endif  // SRC_VM_SEGMENTED_VM_H_
