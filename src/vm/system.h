// The common face of every complete storage allocation system built from
// this library: run a reference trace, report what happened.  Machines
// (src/machines), the SystemBuilder, and the survey harness all speak this
// interface.

#ifndef SRC_VM_SYSTEM_H_
#define SRC_VM_SYSTEM_H_

#include <cstdint>
#include <string>

#include "src/core/characteristics.h"
#include "src/core/types.h"
#include "src/stats/reliability.h"
#include "src/trace/reference.h"
#include "src/vm/space_time.h"

namespace dsa {

struct VmReport {
  std::string label;
  std::uint64_t references{0};
  std::uint64_t faults{0};            // page or segment faults
  std::uint64_t bounds_violations{0};
  std::uint64_t writebacks{0};
  Cycles total_cycles{0};             // simulated end time
  Cycles compute_cycles{0};           // instruction execution
  Cycles translation_cycles{0};       // address-mapping overhead
  Cycles wait_cycles{0};              // stalls awaiting transfers
  SpaceTime space_time;
  WordCount peak_resident_words{0};
  double tlb_hit_rate{0.0};           // 0 when no associative memory exists
  // Fault-injection outcome (all-zero quiet on fault-free runs).
  ReliabilityStats reliability;

  double FaultRate() const {
    return references == 0 ? 0.0
                           : static_cast<double>(faults) / static_cast<double>(references);
  }
  // Mean cycles of mapping overhead per reference (experiment E7's metric).
  double MeanTranslationCost() const {
    return references == 0 ? 0.0
                           : static_cast<double>(translation_cycles) /
                                 static_cast<double>(references);
  }
  // Fraction of wall time the program was stalled on transfers.
  double WaitFraction() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(wait_cycles) /
                                   static_cast<double>(total_cycles);
  }
};

class StorageAllocationSystem {
 public:
  virtual ~StorageAllocationSystem() = default;

  // Executes the trace from a cold start and reports.
  virtual VmReport Run(const ReferenceTrace& trace) = 0;

  virtual std::string name() const = 0;
  virtual Characteristics characteristics() const = 0;
};

}  // namespace dsa

#endif  // SRC_VM_SYSTEM_H_
