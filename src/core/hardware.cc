#include "src/core/hardware.h"

namespace dsa {

const char* ToString(HardwareFacility f) {
  switch (f) {
    case HardwareFacility::kAddressMapping:
      return "address mapping";
    case HardwareFacility::kBoundViolationDetection:
      return "bound violation detection";
    case HardwareFacility::kStoragePacking:
      return "storage packing";
    case HardwareFacility::kInformationGathering:
      return "information gathering";
    case HardwareFacility::kInvalidAccessTrapping:
      return "invalid access trapping";
    case HardwareFacility::kAddressingOverheadReduction:
      return "addressing overhead reduction";
  }
  return "?";
}

std::string HardwareFacilitySet::Describe() const {
  static constexpr HardwareFacility kAll[] = {
      HardwareFacility::kAddressMapping,          HardwareFacility::kBoundViolationDetection,
      HardwareFacility::kStoragePacking,          HardwareFacility::kInformationGathering,
      HardwareFacility::kInvalidAccessTrapping,   HardwareFacility::kAddressingOverheadReduction,
  };
  std::string out;
  for (HardwareFacility f : kAll) {
    if (Has(f)) {
      if (!out.empty()) {
        out += ", ";
      }
      out += ToString(f);
    }
  }
  if (out.empty()) {
    out = "(none)";
  }
  return out;
}

}  // namespace dsa
