// A minimal expected<T, E> for fallible operations on simulator hot paths.
//
// C++20 has no std::expected; exceptions are deliberately avoided for
// translation faults because a page fault is the *normal* control flow of a
// demand-paging system, not an error.

#ifndef SRC_CORE_EXPECTED_H_
#define SRC_CORE_EXPECTED_H_

#include <utility>
#include <variant>

#include "src/core/assert.h"

namespace dsa {

// Tag wrapper distinguishing an error value from a success value when the
// two types coincide.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<E> MakeUnexpected(E e) {
  return Unexpected<E>{std::move(e)};
}

// Holds either a value of type T or an error of type E.
template <typename T, typename E>
class Expected {
 public:
  // Implicit conversions mirror std::expected usability: `return value;` and
  // `return MakeUnexpected(err);` both work.
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Expected(Unexpected<E> e) : storage_(std::in_place_index<1>, std::move(e.error)) {}  // NOLINT

  bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() {
    DSA_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(storage_);
  }
  const T& value() const {
    DSA_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(storage_);
  }

  E& error() {
    DSA_ASSERT(!has_value(), "Expected::error() on value");
    return std::get<1>(storage_);
  }
  const E& error() const {
    DSA_ASSERT(!has_value(), "Expected::error() on value");
    return std::get<1>(storage_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const& { return has_value() ? std::get<0>(storage_) : fallback; }
  // Rvalue overload: moves the contained value out instead of copying, so
  // `FallibleOp().value_or(default)` costs no copy for heavy T.
  T value_or(T fallback) && {
    return has_value() ? std::move(std::get<0>(storage_)) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

// Success carrier for operations that produce no value, only an error; the
// dsa analogue of absl::Status.  `Status<E>` is Expected<Monostate, E>, and
// `Ok()` is its success value:
//
//   Status<PageAccessError> WriteBack(...);
//   if (auto status = WriteBack(...); !status) { handle(status.error()); }
struct Monostate {
  friend bool operator==(Monostate, Monostate) { return true; }
};

template <typename E>
using Status = Expected<Monostate, E>;

inline Monostate Ok() { return Monostate{}; }

}  // namespace dsa

#endif  // SRC_CORE_EXPECTED_H_
