// The simulated machine clock.
//
// All dsa time is discrete and deterministic: the clock only moves when a
// component charges cycles to it.  Nothing in the library reads wall-clock
// time, so every experiment is exactly reproducible.

#ifndef SRC_CORE_CLOCK_H_
#define SRC_CORE_CLOCK_H_

#include "src/core/assert.h"
#include "src/core/types.h"

namespace dsa {

class Clock {
 public:
  Clock() = default;

  // Current simulated time.
  Cycles now() const { return now_; }

  // Advances time by `delta` cycles.
  void Advance(Cycles delta) { now_ += delta; }

  // Advances time to `t`, which must not be in the past.
  void AdvanceTo(Cycles t) {
    DSA_ASSERT(t >= now_, "Clock cannot move backwards");
    now_ = t;
  }

  // Resets to time zero (used between experiment repetitions).
  void Reset() { now_ = 0; }

 private:
  Cycles now_{0};
};

}  // namespace dsa

#endif  // SRC_CORE_CLOCK_H_
