// Versioned, checksummed binary snapshots — the serialization substrate of
// the crash-consistent service mode (src/serve).
//
// A snapshot is a byte string with a fixed header
//
//   magic "DSASNAP1" | format version u32 | payload length u64 | fnv64(payload)
//
// followed by the payload: fixed-width little-endian primitives written by
// SnapshotWriter and read back by SnapshotReader.  Components serialize
// themselves with SaveState(SnapshotWriter*) / LoadState(SnapshotReader*)
// member functions; every container is written in a deterministic order
// (address order, registration order, list order), so a snapshot of a given
// state is byte-identical on every platform — the property that lets the
// kill-and-resume soak compare checkpoints and outputs byte for byte.
//
// Failure discipline: a corrupt, truncated, stale, or tampered snapshot is
// DATA, not a bug.  Nothing in this layer aborts; the reader latches the
// first error (typed SnapshotError) and every subsequent Read returns a
// zero value, so load paths are straight-line code with one ok() check at
// the end.  DSA_ASSERT is deliberately absent from every load path.

#ifndef SRC_CORE_SNAPSHOT_H_
#define SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/expected.h"

namespace dsa {

// The snapshot container format version.  Bump on any layout change; a
// reader faced with a different version reports kStaleVersion instead of
// guessing at field offsets.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

enum class SnapshotErrorKind : std::uint8_t {
  kTruncated,     // fewer bytes than the header or payload promised
  kBadMagic,      // not a snapshot at all
  kStaleVersion,  // written by a different format version
  kBadChecksum,   // payload bytes do not hash to the recorded fnv64
  kBadValue,      // a field parsed but violates a structural invariant
  kIo,            // the underlying file could not be read or written
};

const char* ToString(SnapshotErrorKind kind);

struct SnapshotError {
  SnapshotErrorKind kind{SnapshotErrorKind::kBadValue};
  std::string detail;

  std::string Describe() const;
};

// FNV-1a 64-bit over a byte range; the snapshot payload checksum.
std::uint64_t Fnv64(std::string_view bytes);

class SnapshotWriter {
 public:
  void U8(std::uint8_t v) { payload_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  // Doubles are bit-cast through u64: the simulator's doubles are pure
  // functions of integer state, so bit-exact round-tripping is both
  // achievable and required.
  void F64(double v);
  void Str(const std::string& s);
  void Bytes(std::string_view bytes);

  // Finalized snapshot: header + payload.
  std::string Seal() const;

  // Raw payload without the container header; leaves the writer empty.
  // The sectioned writer uses this to frame component bodies as sections.
  std::string TakePayload() { return std::move(payload_); }

  std::size_t payload_size() const { return payload_.size(); }

 private:
  std::string payload_;
};

class SnapshotReader {
 public:
  // Verifies magic, version, length, and checksum before any field reads;
  // a reader constructed over corrupt bytes starts out already failed.
  explicit SnapshotReader(std::string_view sealed);

  bool ok() const { return ok_; }
  const SnapshotError& error() const { return error_; }

  // Latches `kind` as this reader's error (first failure wins).  Component
  // LoadState implementations call this for structural violations.
  void Fail(SnapshotErrorKind kind, std::string detail);

  // Primitive reads.  After a failure they return zero values and never
  // touch out-of-range memory, so callers need no per-field checks.
  std::uint8_t U8();
  bool Bool() { return U8() != 0; }
  std::uint32_t U32();
  std::uint64_t U64();
  double F64();
  std::string Str();

  // A U64 that must fit a size the caller is about to allocate; anything
  // above `limit` fails the reader (a corrupt length must not become a
  // multi-gigabyte allocation).
  std::uint64_t Count(std::uint64_t limit);

  // True when every payload byte has been consumed (load paths end with
  // this to reject trailing garbage).
  bool AtEnd() const { return !ok_ || pos_ == payload_.size(); }

  // A reader over a raw payload (no container header, no checksum).  Section
  // bodies live inside an already-verified container, so they carry no
  // header of their own; SectionSource::Open hands them out through this.
  // The view must outlive the reader.
  static SnapshotReader ForPayload(std::string_view payload);

 private:
  SnapshotReader() = default;

  bool Need(std::size_t n);

  std::string_view payload_;
  std::size_t pos_{0};
  bool ok_{true};
  SnapshotError error_;
};

// ---------------------------------------------------------------------------
// Sectioned snapshots — the substrate of incremental (delta) checkpoints.
//
// A sectioned snapshot lives inside the same DSASNAP1 container; its payload
// is a sequence of named sections:
//
//   u8 kind (0 full | 1 delta) | u64 section count |
//   per section: str name | u8 tag (0 inline | 1 ref) |
//                inline -> bytes body | ref -> u64 fnv64(body)
//
// A FULL seal inlines every section body.  A DELTA seal compares each body's
// fnv64 against a baseline (the digest of the previous committed cut) and
// replaces unchanged bodies with their hash — dirty tracking by content, so
// a section that did not change costs ~its name plus 17 bytes.  A chain
// [full, delta, delta...] resolves newest-ref-wins: each ref must hash-match
// the body it resolves to, which catches a delta applied over the wrong base
// as kBadChecksum rather than silently restoring mixed state.

// Per-section content hashes of a sealed cut; the baseline a later delta
// seal diffs against.  Empty baseline => every section is emitted inline.
struct SectionBaseline {
  std::map<std::string, std::uint64_t> hashes;

  bool empty() const { return hashes.empty(); }
};

// Builds a sectioned snapshot.  Components stream into Begin()'s writer just
// like the flat SaveState path; cached pre-serialized bodies go in via
// Section() without re-encoding.
class SectionedSnapshotWriter {
 public:
  // Opens a new section; the returned writer is valid until the next Begin/
  // Section/Seal/Digest call.  Section names must be unique within a seal.
  SnapshotWriter* Begin(const std::string& name);

  // Adds a section from an already-serialized body (a raw payload, no
  // container header) — the delta path's cache hit.
  void Section(const std::string& name, std::string body);

  // Every section inline.
  std::string SealFull();

  // Sections whose fnv64 matches `base` become hash references; changed or
  // baseline-absent sections stay inline.
  std::string SealDelta(const SectionBaseline& base);

  // Content hashes of all sections added so far — the baseline for the next
  // delta once this seal commits.
  SectionBaseline Digest();

 private:
  void Finish();
  std::string SealKind(std::uint8_t kind, const SectionBaseline* base) const;

  std::vector<std::pair<std::string, std::string>> sections_;  // (name, body)
  SnapshotWriter current_;
  std::string current_name_;
  bool open_{false};
};

// The resolved view of a checkpoint chain: section name -> body bytes, in
// the head cut's section order.  Load paths Open() each section they expect
// and Close() it when done; like SnapshotReader, the first failure latches
// and everything after reads as empty, so restores stay straight-line.
class SectionSource {
 public:
  bool ok() const { return ok_; }
  const SnapshotError& error() const { return error_; }
  void Fail(SnapshotErrorKind kind, std::string detail);

  bool Has(const std::string& name) const;

  // Reader over the named section's raw body; a missing name latches
  // kBadValue and returns an empty (already-failed) reader.
  SnapshotReader Open(const std::string& name);

  // Folds the section reader's outcome into this source: a read error or
  // trailing bytes latch here.  Returns ok().
  bool Close(SnapshotReader* reader, const std::string& name);

  // Latches kBadValue if any section was never opened — a restore must
  // account for every byte of the chain it trusted.
  void FailIfUnopened();

  std::size_t section_count() const { return sections_.size(); }

 private:
  friend Expected<SectionSource, SnapshotError> ResolveSectionChain(
      const std::vector<std::string>& links);

  std::vector<std::pair<std::string, std::string>> sections_;  // (name, body)
  std::map<std::string, std::size_t> index_;
  std::set<std::string> opened_;
  bool ok_{true};
  SnapshotError error_;
};

// Resolves a checkpoint chain — links[0] a full sectioned seal, each later
// link a delta over its predecessor — into the final section bodies.  Fails
// typed on: a non-full head, a delta head, a ref naming a section absent
// from the resolved base (kBadValue), or a ref whose recorded hash does not
// match the base body (kBadChecksum — the mis-chained-delta detector).
Expected<SectionSource, SnapshotError> ResolveSectionChain(
    const std::vector<std::string>& links);

class Fs;

// Writes `sealed` to `path` crash-atomically through `fs` (see Fs in
// src/core/fsio.h): write to `<path>.tmp`, flush to disk, rename over
// `path`, fsync the parent directory.  A reader never observes a torn file —
// it sees the old content or the new, which is the foundation the checkpoint
// store's manifest protocol builds on.  FsError collapses to kIo here; the
// two-argument forms run against the process-wide RealFs.
Status<SnapshotError> WriteFileAtomic(Fs* fs, const std::string& path,
                                      std::string_view sealed);
Status<SnapshotError> WriteFileAtomic(const std::string& path, std::string_view sealed);

// Reads a whole file; kIo when it cannot be opened or read.
Expected<std::string, SnapshotError> ReadFileBytes(Fs* fs, const std::string& path);
Expected<std::string, SnapshotError> ReadFileBytes(const std::string& path);

}  // namespace dsa

#endif  // SRC_CORE_SNAPSHOT_H_
