// Versioned, checksummed binary snapshots — the serialization substrate of
// the crash-consistent service mode (src/serve).
//
// A snapshot is a byte string with a fixed header
//
//   magic "DSASNAP1" | format version u32 | payload length u64 | fnv64(payload)
//
// followed by the payload: fixed-width little-endian primitives written by
// SnapshotWriter and read back by SnapshotReader.  Components serialize
// themselves with SaveState(SnapshotWriter*) / LoadState(SnapshotReader*)
// member functions; every container is written in a deterministic order
// (address order, registration order, list order), so a snapshot of a given
// state is byte-identical on every platform — the property that lets the
// kill-and-resume soak compare checkpoints and outputs byte for byte.
//
// Failure discipline: a corrupt, truncated, stale, or tampered snapshot is
// DATA, not a bug.  Nothing in this layer aborts; the reader latches the
// first error (typed SnapshotError) and every subsequent Read returns a
// zero value, so load paths are straight-line code with one ok() check at
// the end.  DSA_ASSERT is deliberately absent from every load path.

#ifndef SRC_CORE_SNAPSHOT_H_
#define SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/expected.h"

namespace dsa {

// The snapshot container format version.  Bump on any layout change; a
// reader faced with a different version reports kStaleVersion instead of
// guessing at field offsets.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

enum class SnapshotErrorKind : std::uint8_t {
  kTruncated,     // fewer bytes than the header or payload promised
  kBadMagic,      // not a snapshot at all
  kStaleVersion,  // written by a different format version
  kBadChecksum,   // payload bytes do not hash to the recorded fnv64
  kBadValue,      // a field parsed but violates a structural invariant
  kIo,            // the underlying file could not be read or written
};

const char* ToString(SnapshotErrorKind kind);

struct SnapshotError {
  SnapshotErrorKind kind{SnapshotErrorKind::kBadValue};
  std::string detail;

  std::string Describe() const;
};

// FNV-1a 64-bit over a byte range; the snapshot payload checksum.
std::uint64_t Fnv64(std::string_view bytes);

class SnapshotWriter {
 public:
  void U8(std::uint8_t v) { payload_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  // Doubles are bit-cast through u64: the simulator's doubles are pure
  // functions of integer state, so bit-exact round-tripping is both
  // achievable and required.
  void F64(double v);
  void Str(const std::string& s);
  void Bytes(std::string_view bytes);

  // Finalized snapshot: header + payload.
  std::string Seal() const;

  std::size_t payload_size() const { return payload_.size(); }

 private:
  std::string payload_;
};

class SnapshotReader {
 public:
  // Verifies magic, version, length, and checksum before any field reads;
  // a reader constructed over corrupt bytes starts out already failed.
  explicit SnapshotReader(std::string_view sealed);

  bool ok() const { return ok_; }
  const SnapshotError& error() const { return error_; }

  // Latches `kind` as this reader's error (first failure wins).  Component
  // LoadState implementations call this for structural violations.
  void Fail(SnapshotErrorKind kind, std::string detail);

  // Primitive reads.  After a failure they return zero values and never
  // touch out-of-range memory, so callers need no per-field checks.
  std::uint8_t U8();
  bool Bool() { return U8() != 0; }
  std::uint32_t U32();
  std::uint64_t U64();
  double F64();
  std::string Str();

  // A U64 that must fit a size the caller is about to allocate; anything
  // above `limit` fails the reader (a corrupt length must not become a
  // multi-gigabyte allocation).
  std::uint64_t Count(std::uint64_t limit);

  // True when every payload byte has been consumed (load paths end with
  // this to reject trailing garbage).
  bool AtEnd() const { return !ok_ || pos_ == payload_.size(); }

 private:
  bool Need(std::size_t n);

  std::string_view payload_;
  std::size_t pos_{0};
  bool ok_{true};
  SnapshotError error_;
};

class Fs;

// Writes `sealed` to `path` crash-atomically through `fs` (see Fs in
// src/core/fsio.h): write to `<path>.tmp`, flush to disk, rename over
// `path`, fsync the parent directory.  A reader never observes a torn file —
// it sees the old content or the new, which is the foundation the checkpoint
// store's manifest protocol builds on.  FsError collapses to kIo here; the
// two-argument forms run against the process-wide RealFs.
Status<SnapshotError> WriteFileAtomic(Fs* fs, const std::string& path,
                                      std::string_view sealed);
Status<SnapshotError> WriteFileAtomic(const std::string& path, std::string_view sealed);

// Reads a whole file; kIo when it cannot be opened or read.
Expected<std::string, SnapshotError> ReadFileBytes(Fs* fs, const std::string& path);
Expected<std::string, SnapshotError> ReadFileBytes(const std::string& path);

}  // namespace dsa

#endif  // SRC_CORE_SNAPSHOT_H_
