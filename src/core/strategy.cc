#include "src/core/strategy.h"

namespace dsa {

const char* ToString(FetchStrategyKind kind) {
  switch (kind) {
    case FetchStrategyKind::kDemand:
      return "demand";
    case FetchStrategyKind::kPrefetch:
      return "prefetch";
    case FetchStrategyKind::kAdvised:
      return "advised";
  }
  return "?";
}

const char* ToString(PlacementStrategyKind kind) {
  switch (kind) {
    case PlacementStrategyKind::kFirstFit:
      return "first-fit";
    case PlacementStrategyKind::kNextFit:
      return "next-fit";
    case PlacementStrategyKind::kBestFit:
      return "best-fit";
    case PlacementStrategyKind::kWorstFit:
      return "worst-fit";
    case PlacementStrategyKind::kTwoEnded:
      return "two-ended";
    case PlacementStrategyKind::kBuddy:
      return "buddy";
    case PlacementStrategyKind::kRiceChain:
      return "rice-chain";
    case PlacementStrategyKind::kSegregatedFit:
      return "segregated-fit";
    case PlacementStrategyKind::kSlabPool:
      return "slab-pool";
  }
  return "?";
}

const char* ToString(ReplacementStrategyKind kind) {
  switch (kind) {
    case ReplacementStrategyKind::kFifo:
      return "fifo";
    case ReplacementStrategyKind::kLru:
      return "lru";
    case ReplacementStrategyKind::kRandom:
      return "random";
    case ReplacementStrategyKind::kClock:
      return "clock";
    case ReplacementStrategyKind::kAtlasLearning:
      return "atlas-learning";
    case ReplacementStrategyKind::kM44Class:
      return "m44-class";
    case ReplacementStrategyKind::kWorkingSet:
      return "working-set";
    case ReplacementStrategyKind::kOpt:
      return "opt";
  }
  return "?";
}

}  // namespace dsa
