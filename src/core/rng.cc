#include "src/core/rng.h"

#include <cmath>

namespace dsa {

double Rng::LogApprox(double v) { return std::log(v); }

}  // namespace dsa
