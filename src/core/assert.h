// Always-on checked assertions for simulator invariants.
//
// The simulator is deterministic and cheap relative to the experiments it
// drives, so invariant checks stay enabled in release builds: a silently
// corrupted free list or frame table would invalidate every downstream
// measurement.

#ifndef SRC_CORE_ASSERT_H_
#define SRC_CORE_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace dsa {

[[noreturn]] inline void AssertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "DSA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dsa

// Checks `cond`; aborts with location and message on failure.  Always on.
#define DSA_ASSERT(cond, msg)                                \
  do {                                                       \
    if (!(cond)) {                                           \
      ::dsa::AssertFail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                        \
  } while (0)

// Shorthand for checks whose failure is self-explanatory.
#define DSA_CHECK(cond) DSA_ASSERT(cond, "")

#endif  // SRC_CORE_ASSERT_H_
