// The durable-IO seam: every filesystem operation the snapshot, checkpoint,
// serve, and batch layers perform goes through one `Fs` interface, so the
// whole durable surface can be fault-injected at syscall granularity.
//
// Three implementations:
//
//   * RealFs           — POSIX calls, the production path.  Its two write
//                        primitives carry the durability contract the
//                        checkpoint protocol depends on: Append truncates to
//                        the caller's offset before writing (a retried or
//                        torn append is invisible — the bytes land exactly
//                        once at exactly that offset) and fsyncs before
//                        returning; WriteFileAtomic is write-temp, fsync,
//                        rename, then fsync of the PARENT DIRECTORY, without
//                        which the rename itself is not durable.
//   * FaultInjectingFs — a decorator that counts every op and fails chosen
//                        ones from a deterministic schedule: fail-the-Nth-op
//                        windows (transient or persistent, EIO or ENOSPC),
//                        torn writes cut at a chosen byte, simulated crashes
//                        (the instance latches halted() and every later op
//                        fails fatally — the in-process stand-in for the
//                        process dying mid-syscall), plus a seeded random
//                        failure rate.  Same seed, same schedule, same run.
//   * RetryingFs       — a decorator implementing the bounded-exponential-
//                        backoff retry policy.  Backoff advances the SERVICE
//                        VIRTUAL CLOCK, not wall time, so a retried run is
//                        replayable cycle for cycle.  Only transient-class
//                        errno values (EIO, ENOSPC, EAGAIN, EINTR) retry;
//                        ENOENT-class misses pass straight through (a missing
//                        manifest is an answer, not a fault), and fatal
//                        (crash) errors never retry.
//
// Thread-safety: an Fs chain is used from ONE thread at a time.  The service
// loop performs all IO between parallel rounds, the batch fold is serial,
// and every sweep cell owns its own chain — which is also what keeps the op
// counter deterministic.

#ifndef SRC_CORE_FSIO_H_
#define SRC_CORE_FSIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/expected.h"
#include "src/core/rng.h"
#include "src/core/types.h"

namespace dsa {

enum class FsOpKind : std::uint8_t {
  kReadFile,
  kAppend,
  kWriteFileAtomic,
  kRename,
  kRemove,
  kListDir,
  kSyncDir,
  kTruncate,
  kCreateDirs,
  kFileSize,
};

const char* ToString(FsOpKind op);

struct FsError {
  FsOpKind op{FsOpKind::kReadFile};
  int err{0};          // errno value
  std::string detail;  // usually the path involved
  // A fatal error models a crash mid-operation: the op may have partially
  // happened, the process is as good as dead, and nothing may retry it.
  bool fatal{false};

  // "append: input/output error: <detail>" — human-readable, deterministic.
  std::string Describe() const;
};

// True for errno values worth retrying (transient media/space trouble);
// false for semantic misses like ENOENT, which are answers.
bool RetryableErrno(int err);

class Fs {
 public:
  virtual ~Fs() = default;

  // Whole-file read.
  virtual Expected<std::string, FsError> ReadFile(const std::string& path) = 0;
  // Durable append with an idempotence contract: the file is truncated to
  // `offset` first (discarding any torn tail a previous failed attempt
  // left), `bytes` are written there, and the file is fsynced.  Returns the
  // new file size — offset + bytes.size() — via a 64-bit stat, never ftell's
  // long.  Creates the file when absent.
  virtual Expected<std::uint64_t, FsError> Append(const std::string& path,
                                                  std::uint64_t offset,
                                                  std::string_view bytes) = 0;
  // Crash-atomic publish: write <path>.tmp, fsync it, rename over `path`,
  // fsync the parent directory.  A reader sees the old bytes or the new.
  virtual Status<FsError> WriteFileAtomic(const std::string& path,
                                          std::string_view bytes) = 0;
  virtual Status<FsError> Rename(const std::string& from, const std::string& to) = 0;
  virtual Status<FsError> Remove(const std::string& path) = 0;
  // Names (not paths) of the regular files in `dir`, sorted — directory
  // iteration order must never leak into outputs.
  virtual Expected<std::vector<std::string>, FsError> ListDir(const std::string& dir) = 0;
  // fsync of a directory fd: makes renames/unlinks within it durable.
  virtual Status<FsError> SyncDir(const std::string& dir) = 0;
  // Sets the file to exactly `size` bytes, creating it when absent.
  virtual Status<FsError> Truncate(const std::string& path, std::uint64_t size) = 0;
  virtual Status<FsError> CreateDirs(const std::string& dir) = 0;
  // 64-bit size; ENOENT when the file does not exist.
  virtual Expected<std::uint64_t, FsError> FileSize(const std::string& path) = 0;

  // True once a simulated crash latched: the process should stop doing IO
  // and exit the way a real crash would.
  virtual bool halted() const { return false; }
};

// POSIX implementation.
class RealFs : public Fs {
 public:
  Expected<std::string, FsError> ReadFile(const std::string& path) override;
  Expected<std::uint64_t, FsError> Append(const std::string& path, std::uint64_t offset,
                                          std::string_view bytes) override;
  Status<FsError> WriteFileAtomic(const std::string& path, std::string_view bytes) override;
  Status<FsError> Rename(const std::string& from, const std::string& to) override;
  Status<FsError> Remove(const std::string& path) override;
  Expected<std::vector<std::string>, FsError> ListDir(const std::string& dir) override;
  Status<FsError> SyncDir(const std::string& dir) override;
  Status<FsError> Truncate(const std::string& path, std::uint64_t size) override;
  Status<FsError> CreateDirs(const std::string& dir) override;
  Expected<std::uint64_t, FsError> FileSize(const std::string& path) override;
};

// The process-wide RealFs used when a caller passes no seam.
Fs& SystemFs();

// One deterministic failure window: ops are numbered from 1 in call order
// across the whole FaultInjectingFs instance.
struct FsFaultWindow {
  std::uint64_t first_op{0};  // 1-based index of the first failing op; 0: disabled
  std::uint64_t ops{1};       // window length; 0: persistent (never heals)
  int err{5 /* EIO */};       // errno to report (EIO or ENOSPC, typically)
  bool crash{false};          // latch halted() at the first hit
  // For write ops hit by this window: bytes of the payload that land on
  // disk before the failure (a torn write).  0 leaves no partial bytes.
  std::uint64_t torn_bytes{0};
  // Only ops whose path contains this substring match; empty matches all.
  std::string path_contains;
};

struct FsFaultConfig {
  std::vector<FsFaultWindow> windows;
  // Additionally fail each op with this probability, from `seed` — the
  // soak-style randomized schedule.  Deterministic per (seed, op index).
  double fail_rate{0.0};
  std::uint64_t seed{0};
  int random_err{5 /* EIO */};
};

class FaultInjectingFs : public Fs {
 public:
  explicit FaultInjectingFs(Fs* base, FsFaultConfig config = {});

  Expected<std::string, FsError> ReadFile(const std::string& path) override;
  Expected<std::uint64_t, FsError> Append(const std::string& path, std::uint64_t offset,
                                          std::string_view bytes) override;
  Status<FsError> WriteFileAtomic(const std::string& path, std::string_view bytes) override;
  Status<FsError> Rename(const std::string& from, const std::string& to) override;
  Status<FsError> Remove(const std::string& path) override;
  Expected<std::vector<std::string>, FsError> ListDir(const std::string& dir) override;
  Status<FsError> SyncDir(const std::string& dir) override;
  Status<FsError> Truncate(const std::string& path, std::uint64_t size) override;
  Status<FsError> CreateDirs(const std::string& dir) override;
  Expected<std::uint64_t, FsError> FileSize(const std::string& path) override;

  bool halted() const override { return halted_; }
  // Total ops decorated so far — the N a fault-point sweep iterates over.
  std::uint64_t ops_issued() const { return ops_; }
  std::uint64_t faults_injected() const { return faults_; }

 private:
  // Numbers the op and consults the schedule; when the op must fail, builds
  // the FsError (latching halted_ for crash windows) and, for write ops,
  // reports how many payload bytes to tear onto disk first.
  bool ShouldFail(FsOpKind op, const std::string& path, FsError* error,
                  std::uint64_t* torn_bytes);

  Fs* base_;
  FsFaultConfig config_;
  Rng rng_;
  std::uint64_t ops_{0};
  std::uint64_t faults_{0};
  bool halted_{false};
};

struct RetryPolicyConfig {
  int max_attempts{4};             // total tries per op; 1 disables retries
  Cycles initial_backoff{2048};    // virtual cycles before the first retry
  Cycles max_backoff{1u << 16};    // doubling cap
};

struct IoStats {
  std::uint64_t retries{0};  // re-attempts after a transient error
  std::uint64_t giveups{0};  // retryable-class ops that exhausted the budget
};

// Retry decorator.  `clock` (optional) is advanced by each backoff — the
// service passes its virtual clock so retried runs replay deterministically.
class RetryingFs : public Fs {
 public:
  RetryingFs(Fs* base, RetryPolicyConfig policy, Cycles* clock, IoStats* stats);

  Expected<std::string, FsError> ReadFile(const std::string& path) override;
  Expected<std::uint64_t, FsError> Append(const std::string& path, std::uint64_t offset,
                                          std::string_view bytes) override;
  Status<FsError> WriteFileAtomic(const std::string& path, std::string_view bytes) override;
  Status<FsError> Rename(const std::string& from, const std::string& to) override;
  Status<FsError> Remove(const std::string& path) override;
  Expected<std::vector<std::string>, FsError> ListDir(const std::string& dir) override;
  Status<FsError> SyncDir(const std::string& dir) override;
  Status<FsError> Truncate(const std::string& path, std::uint64_t size) override;
  Status<FsError> CreateDirs(const std::string& dir) override;
  Expected<std::uint64_t, FsError> FileSize(const std::string& path) override;

  bool halted() const override { return base_->halted(); }

 private:
  // Runs `op` up to max_attempts times.  Safe for every Fs op: Append's
  // truncate-to-offset contract and WriteFileAtomic's rewrite-the-temp make
  // the write ops idempotent, and the rest are naturally so.
  template <typename Result, typename Op>
  Result Retry(Op&& op);

  Fs* base_;
  RetryPolicyConfig policy_;
  Cycles* clock_;   // may be null (no virtual time to advance)
  IoStats* stats_;  // may be null
};

}  // namespace dsa

#endif  // SRC_CORE_FSIO_H_
