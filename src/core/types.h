// Fundamental value types shared by every dsa module.
//
// The paper is careful to distinguish the *name* a program uses from the
// *address* the machine uses ("Storage Addressing", "Artificial
// Contiguity").  We keep that distinction in the type system: `Name` is what
// programs emit, `PhysicalAddress` is what storage accepts, and only an
// address mapper may convert one to the other.

#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>

namespace dsa {

// One storage word.  Contents are opaque payload; the simulator moves them
// around (compaction, page transfers) but never interprets them.
using Word = std::uint64_t;

// A count of storage words.
using WordCount = std::uint64_t;

// Simulated time, in machine cycles.  One cycle is the cost of one
// register-to-register operation; storage levels express their latencies in
// cycles (see src/mem/storage_level.h).
using Cycles = std::uint64_t;

// A strongly typed integer identifier.  `Tag` makes PageId/FrameId/... into
// distinct, non-convertible types so a frame number can never be passed
// where a page number is expected.
template <typename Tag, typename Rep = std::uint64_t>
struct StrongId {
  using rep = Rep;

  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;
};

// The name of an informational item, as emitted by a program.  For a linear
// name space this is the integer name itself; for segmented name spaces the
// naming module packs/unpacks (segment, word) pairs into this representation.
struct NameTag {};
using Name = StrongId<NameTag>;

// An absolute address in physical working storage.
struct PhysicalAddressTag {};
using PhysicalAddress = StrongId<PhysicalAddressTag>;

// A page: the set of items that fit in one page frame.
struct PageTag {};
using PageId = StrongId<PageTag>;

// A page frame: one uniform-size block of physical working storage.
struct FrameTag {};
using FrameId = StrongId<FrameTag>;

// A segment, in the paper's sense: an ordered set of items declared to
// constitute a unit, with its own linear name space.
struct SegmentTag {};
using SegmentId = StrongId<SegmentTag>;

// A job (program) in the multiprogramming scheduler.
struct JobTag {};
using JobId = StrongId<JobTag, std::uint32_t>;

// The kind of storage access a reference performs.  Write accesses set the
// "modified" sensor the paper lists under information-gathering hardware.
enum class AccessKind : std::uint8_t {
  kRead,
  kWrite,
  kExecute,  // instruction fetch; read-like but mapped via its own TLB slot on the 360/67
};

inline const char* ToString(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kExecute:
      return "execute";
  }
  return "?";
}

}  // namespace dsa

// Hash support so strong ids can key unordered containers.
template <typename Tag, typename Rep>
struct std::hash<dsa::StrongId<Tag, Rep>> {
  std::size_t operator()(const dsa::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

#endif  // SRC_CORE_TYPES_H_
