// The paper's catalogue of special hardware facilities (section "Special
// Hardware Facilities"), used to describe machines in the appendix survey.

#ifndef SRC_CORE_HARDWARE_H_
#define SRC_CORE_HARDWARE_H_

#include <cstdint>
#include <string>

namespace dsa {

// One bit per facility the paper enumerates (i)-(vi).
enum class HardwareFacility : std::uint8_t {
  kAddressMapping = 0,            // (i)   mapping memory / associative mapping
  kBoundViolationDetection = 1,   // (ii)  base+limit checking
  kStoragePacking = 2,            // (iii) autonomous storage-to-storage channels
  kInformationGathering = 3,      // (iv)  use / modified sensors
  kInvalidAccessTrapping = 4,     // (v)   traps on absent information (demand paging)
  kAddressingOverheadReduction = 5,  // (vi) small associative memories (TLBs)
};

class HardwareFacilitySet {
 public:
  HardwareFacilitySet() = default;

  HardwareFacilitySet& Add(HardwareFacility f) {
    bits_ |= Bit(f);
    return *this;
  }

  bool Has(HardwareFacility f) const { return (bits_ & Bit(f)) != 0; }

  // Comma-separated short names, for survey tables.
  std::string Describe() const;

  bool operator==(const HardwareFacilitySet&) const = default;

 private:
  static std::uint8_t Bit(HardwareFacility f) {
    return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(f));
  }

  std::uint8_t bits_{0};
};

const char* ToString(HardwareFacility f);

}  // namespace dsa

#endif  // SRC_CORE_HARDWARE_H_
