#include "src/core/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>

namespace dsa {

namespace stdfs = std::filesystem;

const char* ToString(FsOpKind op) {
  switch (op) {
    case FsOpKind::kReadFile:
      return "read-file";
    case FsOpKind::kAppend:
      return "append";
    case FsOpKind::kWriteFileAtomic:
      return "write-file-atomic";
    case FsOpKind::kRename:
      return "rename";
    case FsOpKind::kRemove:
      return "remove";
    case FsOpKind::kListDir:
      return "list-dir";
    case FsOpKind::kSyncDir:
      return "sync-dir";
    case FsOpKind::kTruncate:
      return "truncate";
    case FsOpKind::kCreateDirs:
      return "create-dirs";
    case FsOpKind::kFileSize:
      return "file-size";
  }
  return "?";
}

namespace {

// Deterministic errno rendering: strerror() text varies by libc and locale,
// and these strings end up in quarantine records that tests compare.
std::string ErrnoText(int err) {
  switch (err) {
    case EIO:
      return "input/output error";
    case ENOSPC:
      return "no space left on device";
    case ENOENT:
      return "no such file or directory";
    case EACCES:
      return "permission denied";
    case EAGAIN:
      return "resource temporarily unavailable";
    case EINTR:
      return "interrupted";
    default:
      return "errno " + std::to_string(err);
  }
}

FsError Errno(FsOpKind op, const std::string& detail) {
  return FsError{op, errno == 0 ? EIO : errno, detail, false};
}

// Parent directory of `path` for the post-rename directory fsync.
std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace

std::string FsError::Describe() const {
  std::string out = ToString(op);
  out += ": ";
  out += ErrnoText(err);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  if (fatal) {
    out += " (fatal)";
  }
  return out;
}

bool RetryableErrno(int err) {
  return err == EIO || err == ENOSPC || err == EAGAIN || err == EINTR;
}

Expected<std::string, FsError> RealFs::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kReadFile, "cannot open " + path));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const FsError error = Errno(FsOpKind::kReadFile, "cannot read " + path);
      ::close(fd);
      return MakeUnexpected(error);
    }
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Expected<std::uint64_t, FsError> RealFs::Append(const std::string& path, std::uint64_t offset,
                                                std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kAppend, "cannot open " + path));
  }
  auto fail = [&](const std::string& what) {
    const FsError error = Errno(FsOpKind::kAppend, what + " " + path);
    ::close(fd);
    return MakeUnexpected(error);
  };
  // Truncating to the caller's offset first is the idempotence contract:
  // whatever a failed earlier attempt tore onto the tail is discarded, so a
  // retry lands the bytes exactly once at exactly this offset.
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    return fail("cannot truncate");
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::pwrite(fd, bytes.data() + written, bytes.size() - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return fail("cannot write");
    }
    written += static_cast<std::size_t>(n);
  }
  // The committed cut will record the returned offset; the bytes must be
  // durable before the manifest rename makes that offset authoritative.
  if (::fsync(fd) != 0) {
    return fail("cannot fsync");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return fail("cannot stat");
  }
  if (::close(fd) != 0) {
    return MakeUnexpected(Errno(FsOpKind::kAppend, "cannot close " + path));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status<FsError> RealFs::WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kWriteFileAtomic, "cannot open " + tmp));
  }
  auto fail = [&](const std::string& what, bool close_fd) {
    const FsError error = Errno(FsOpKind::kWriteFileAtomic, what);
    if (close_fd) {
      ::close(fd);
    }
    ::unlink(tmp.c_str());
    return MakeUnexpected(error);
  };
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return fail("cannot write " + tmp, true);
    }
    written += static_cast<std::size_t>(n);
  }
  // Flush to disk before the rename: the rename must never publish a name
  // whose bytes are still in flight.
  if (::fsync(fd) != 0) {
    return fail("cannot fsync " + tmp, true);
  }
  if (::close(fd) != 0) {
    return fail("cannot close " + tmp, false);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("cannot rename " + tmp + " over " + path, false);
  }
  // The rename is durable only once the parent directory's entry is on
  // disk; without this a power cut can roll the name back to the old bytes
  // even though the data blocks of the new file made it out.
  const std::string parent = ParentDir(path);
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kWriteFileAtomic, "cannot open dir " + parent));
  }
  if (::fsync(dir_fd) != 0) {
    const FsError error = Errno(FsOpKind::kWriteFileAtomic, "cannot fsync dir " + parent);
    ::close(dir_fd);
    return MakeUnexpected(error);
  }
  ::close(dir_fd);
  return Ok();
}

Status<FsError> RealFs::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return MakeUnexpected(Errno(FsOpKind::kRename, from + " -> " + to));
  }
  return Ok();
}

Status<FsError> RealFs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return MakeUnexpected(Errno(FsOpKind::kRemove, path));
  }
  return Ok();
}

Expected<std::vector<std::string>, FsError> RealFs::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    return MakeUnexpected(
        FsError{FsOpKind::kListDir, ec.value() == 0 ? EIO : ec.value(), dir, false});
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status<FsError> RealFs::SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kSyncDir, "cannot open " + dir));
  }
  if (::fsync(fd) != 0) {
    const FsError error = Errno(FsOpKind::kSyncDir, "cannot fsync " + dir);
    ::close(fd);
    return MakeUnexpected(error);
  }
  ::close(fd);
  return Ok();
}

Status<FsError> RealFs::Truncate(const std::string& path, std::uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return MakeUnexpected(Errno(FsOpKind::kTruncate, "cannot open " + path));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0 || ::fsync(fd) != 0) {
    const FsError error = Errno(FsOpKind::kTruncate, path);
    ::close(fd);
    return MakeUnexpected(error);
  }
  ::close(fd);
  return Ok();
}

Status<FsError> RealFs::CreateDirs(const std::string& dir) {
  std::error_code ec;
  stdfs::create_directories(dir, ec);
  if (ec) {
    return MakeUnexpected(
        FsError{FsOpKind::kCreateDirs, ec.value() == 0 ? EIO : ec.value(), dir, false});
  }
  return Ok();
}

Expected<std::uint64_t, FsError> RealFs::FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return MakeUnexpected(Errno(FsOpKind::kFileSize, path));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Fs& SystemFs() {
  static RealFs fs;
  return fs;
}

FaultInjectingFs::FaultInjectingFs(Fs* base, FsFaultConfig config)
    : base_(base), config_(std::move(config)), rng_(config_.seed) {}

bool FaultInjectingFs::ShouldFail(FsOpKind op, const std::string& path, FsError* error,
                                  std::uint64_t* torn_bytes) {
  const std::uint64_t index = ++ops_;
  *torn_bytes = 0;
  if (halted_) {
    // The crash already happened; whatever still runs in this process gets
    // the same fatal answer until it exits.
    *error = FsError{op, EIO, path + " (after simulated crash)", true};
    return true;
  }
  for (const FsFaultWindow& w : config_.windows) {
    if (w.first_op == 0 || index < w.first_op) {
      continue;
    }
    if (w.ops != 0 && index >= w.first_op + w.ops) {
      continue;
    }
    if (!w.path_contains.empty() && path.find(w.path_contains) == std::string::npos) {
      continue;
    }
    ++faults_;
    if (w.crash) {
      halted_ = true;
    }
    *error = FsError{op, w.err, path + " (injected at op " + std::to_string(index) + ")",
                     w.crash};
    *torn_bytes = w.torn_bytes;
    return true;
  }
  if (config_.fail_rate > 0.0) {
    // Forking per op index makes the draw a pure function of (seed, index):
    // the schedule does not shift when a retry changes how many draws came
    // before.
    Rng draw = rng_.Fork(index);
    if (draw.NextDouble() < config_.fail_rate) {
      ++faults_;
      *error = FsError{op, config_.random_err,
                       path + " (random fault at op " + std::to_string(index) + ")", false};
      return true;
    }
  }
  return false;
}

Expected<std::string, FsError> FaultInjectingFs::ReadFile(const std::string& path) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kReadFile, path, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->ReadFile(path);
}

Expected<std::uint64_t, FsError> FaultInjectingFs::Append(const std::string& path,
                                                          std::uint64_t offset,
                                                          std::string_view bytes) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kAppend, path, &error, &torn)) {
    if (torn > 0) {
      // The failure happened mid-write: a prefix of the payload is on disk.
      // Append's truncate-to-offset contract is exactly what heals this.
      (void)base_->Append(path, offset, bytes.substr(0, std::min<std::size_t>(
                                                            torn, bytes.size())));
    }
    return MakeUnexpected(std::move(error));
  }
  return base_->Append(path, offset, bytes);
}

Status<FsError> FaultInjectingFs::WriteFileAtomic(const std::string& path,
                                                  std::string_view bytes) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kWriteFileAtomic, path, &error, &torn)) {
    if (torn > 0) {
      // Tear the TEMP file: the rename never ran, so the published name
      // still holds the old bytes — the invariant the protocol promises.
      (void)base_->Append(path + ".tmp", 0,
                          bytes.substr(0, std::min<std::size_t>(torn, bytes.size())));
    }
    return MakeUnexpected(std::move(error));
  }
  return base_->WriteFileAtomic(path, bytes);
}

Status<FsError> FaultInjectingFs::Rename(const std::string& from, const std::string& to) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kRename, from, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->Rename(from, to);
}

Status<FsError> FaultInjectingFs::Remove(const std::string& path) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kRemove, path, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->Remove(path);
}

Expected<std::vector<std::string>, FsError> FaultInjectingFs::ListDir(const std::string& dir) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kListDir, dir, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->ListDir(dir);
}

Status<FsError> FaultInjectingFs::SyncDir(const std::string& dir) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kSyncDir, dir, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->SyncDir(dir);
}

Status<FsError> FaultInjectingFs::Truncate(const std::string& path, std::uint64_t size) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kTruncate, path, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->Truncate(path, size);
}

Status<FsError> FaultInjectingFs::CreateDirs(const std::string& dir) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kCreateDirs, dir, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->CreateDirs(dir);
}

Expected<std::uint64_t, FsError> FaultInjectingFs::FileSize(const std::string& path) {
  FsError error;
  std::uint64_t torn = 0;
  if (ShouldFail(FsOpKind::kFileSize, path, &error, &torn)) {
    return MakeUnexpected(std::move(error));
  }
  return base_->FileSize(path);
}

RetryingFs::RetryingFs(Fs* base, RetryPolicyConfig policy, Cycles* clock, IoStats* stats)
    : base_(base), policy_(policy), clock_(clock), stats_(stats) {}

template <typename Result, typename Op>
Result RetryingFs::Retry(Op&& op) {
  Cycles backoff = policy_.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    Result result = op();
    if (result.has_value()) {
      return result;
    }
    const FsError& error = result.error();
    // ENOENT-class misses are answers (a missing manifest, an empty event
    // log); fatal means the simulated process is already dead.  Neither
    // burns virtual time on backoff.
    if (error.fatal || base_->halted() || !RetryableErrno(error.err)) {
      return result;
    }
    if (attempt >= policy_.max_attempts) {
      if (stats_ != nullptr) {
        ++stats_->giveups;
      }
      return result;
    }
    if (stats_ != nullptr) {
      ++stats_->retries;
    }
    if (clock_ != nullptr) {
      *clock_ += backoff;
    }
    backoff = std::min<Cycles>(backoff * 2, policy_.max_backoff);
  }
}

Expected<std::string, FsError> RetryingFs::ReadFile(const std::string& path) {
  return Retry<Expected<std::string, FsError>>([&] { return base_->ReadFile(path); });
}

Expected<std::uint64_t, FsError> RetryingFs::Append(const std::string& path,
                                                    std::uint64_t offset,
                                                    std::string_view bytes) {
  return Retry<Expected<std::uint64_t, FsError>>(
      [&] { return base_->Append(path, offset, bytes); });
}

Status<FsError> RetryingFs::WriteFileAtomic(const std::string& path, std::string_view bytes) {
  return Retry<Status<FsError>>([&] { return base_->WriteFileAtomic(path, bytes); });
}

Status<FsError> RetryingFs::Rename(const std::string& from, const std::string& to) {
  return Retry<Status<FsError>>([&] { return base_->Rename(from, to); });
}

Status<FsError> RetryingFs::Remove(const std::string& path) {
  return Retry<Status<FsError>>([&] { return base_->Remove(path); });
}

Expected<std::vector<std::string>, FsError> RetryingFs::ListDir(const std::string& dir) {
  return Retry<Expected<std::vector<std::string>, FsError>>(
      [&] { return base_->ListDir(dir); });
}

Status<FsError> RetryingFs::SyncDir(const std::string& dir) {
  return Retry<Status<FsError>>([&] { return base_->SyncDir(dir); });
}

Status<FsError> RetryingFs::Truncate(const std::string& path, std::uint64_t size) {
  return Retry<Status<FsError>>([&] { return base_->Truncate(path, size); });
}

Status<FsError> RetryingFs::CreateDirs(const std::string& dir) {
  return Retry<Status<FsError>>([&] { return base_->CreateDirs(dir); });
}

Expected<std::uint64_t, FsError> RetryingFs::FileSize(const std::string& path) {
  return Retry<Expected<std::uint64_t, FsError>>([&] { return base_->FileSize(path); });
}

}  // namespace dsa
