#include "src/core/snapshot.h"

#include <cstring>

#include "src/core/fsio.h"

namespace dsa {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;  // magic, version, length, fnv

void AppendLe(std::string* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ParseLe(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* ToString(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kTruncated:
      return "truncated";
    case SnapshotErrorKind::kBadMagic:
      return "bad-magic";
    case SnapshotErrorKind::kStaleVersion:
      return "stale-version";
    case SnapshotErrorKind::kBadChecksum:
      return "bad-checksum";
    case SnapshotErrorKind::kBadValue:
      return "bad-value";
    case SnapshotErrorKind::kIo:
      return "io";
  }
  return "?";
}

std::string SnapshotError::Describe() const {
  std::string out = ToString(kind);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::uint64_t Fnv64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SnapshotWriter::U32(std::uint32_t v) { AppendLe(&payload_, v, 4); }

void SnapshotWriter::U64(std::uint64_t v) { AppendLe(&payload_, v, 8); }

void SnapshotWriter::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  payload_.append(s);
}

void SnapshotWriter::Bytes(std::string_view bytes) {
  U64(bytes.size());
  payload_.append(bytes);
}

std::string SnapshotWriter::Seal() const {
  std::string out;
  out.reserve(kHeaderBytes + payload_.size());
  out.append(kMagic, sizeof(kMagic));
  AppendLe(&out, kSnapshotFormatVersion, 4);
  AppendLe(&out, payload_.size(), 8);
  AppendLe(&out, Fnv64(payload_), 8);
  out.append(payload_);
  return out;
}

SnapshotReader::SnapshotReader(std::string_view sealed) {
  if (sealed.size() < kHeaderBytes) {
    Fail(SnapshotErrorKind::kTruncated, "shorter than the snapshot header");
    return;
  }
  if (std::memcmp(sealed.data(), kMagic, sizeof(kMagic)) != 0) {
    Fail(SnapshotErrorKind::kBadMagic, "missing DSASNAP1 magic");
    return;
  }
  const std::uint64_t version = ParseLe(sealed.data() + 8, 4);
  if (version != kSnapshotFormatVersion) {
    Fail(SnapshotErrorKind::kStaleVersion,
         "format version " + std::to_string(version) + ", expected " +
             std::to_string(kSnapshotFormatVersion));
    return;
  }
  const std::uint64_t length = ParseLe(sealed.data() + 12, 8);
  const std::uint64_t checksum = ParseLe(sealed.data() + 20, 8);
  if (sealed.size() - kHeaderBytes != length) {
    Fail(SnapshotErrorKind::kTruncated,
         "payload holds " + std::to_string(sealed.size() - kHeaderBytes) +
             " bytes, header promised " + std::to_string(length));
    return;
  }
  payload_ = sealed.substr(kHeaderBytes);
  if (Fnv64(payload_) != checksum) {
    Fail(SnapshotErrorKind::kBadChecksum, "payload bytes do not match the recorded fnv64");
    payload_ = {};
  }
}

void SnapshotReader::Fail(SnapshotErrorKind kind, std::string detail) {
  if (!ok_) {
    return;  // first failure wins
  }
  ok_ = false;
  error_.kind = kind;
  error_.detail = std::move(detail);
}

bool SnapshotReader::Need(std::size_t n) {
  if (!ok_) {
    return false;
  }
  if (payload_.size() - pos_ < n) {
    Fail(SnapshotErrorKind::kTruncated, "field read past the end of the payload");
    return false;
  }
  return true;
}

std::uint8_t SnapshotReader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return static_cast<std::uint8_t>(static_cast<unsigned char>(payload_[pos_++]));
}

std::uint32_t SnapshotReader::U32() {
  if (!Need(4)) {
    return 0;
  }
  const std::uint64_t v = ParseLe(payload_.data() + pos_, 4);
  pos_ += 4;
  return static_cast<std::uint32_t>(v);
}

std::uint64_t SnapshotReader::U64() {
  if (!Need(8)) {
    return 0;
  }
  const std::uint64_t v = ParseLe(payload_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double SnapshotReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  const std::uint64_t n = U64();
  if (!Need(n)) {
    return {};
  }
  std::string s(payload_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::uint64_t SnapshotReader::Count(std::uint64_t limit) {
  const std::uint64_t n = U64();
  if (ok_ && n > limit) {
    Fail(SnapshotErrorKind::kBadValue,
         "count " + std::to_string(n) + " exceeds limit " + std::to_string(limit));
    return 0;
  }
  return ok_ ? n : 0;
}

SnapshotReader SnapshotReader::ForPayload(std::string_view payload) {
  SnapshotReader r;
  r.payload_ = payload;
  return r;
}

namespace {

constexpr std::uint8_t kSectionedFull = 0;
constexpr std::uint8_t kSectionedDelta = 1;
constexpr std::uint8_t kSectionInline = 0;
constexpr std::uint8_t kSectionRef = 1;

// A corrupt section count must not become a huge allocation; real cuts hold
// a handful of VM sections plus one page-table chunk per 4096 pages.
constexpr std::uint64_t kMaxSections = 1u << 20;

}  // namespace

SnapshotWriter* SectionedSnapshotWriter::Begin(const std::string& name) {
  Finish();
  current_name_ = name;
  open_ = true;
  return &current_;
}

void SectionedSnapshotWriter::Section(const std::string& name, std::string body) {
  Finish();
  sections_.emplace_back(name, std::move(body));
}

void SectionedSnapshotWriter::Finish() {
  if (!open_) {
    return;
  }
  sections_.emplace_back(std::move(current_name_), current_.TakePayload());
  current_name_.clear();
  open_ = false;
}

std::string SectionedSnapshotWriter::SealKind(std::uint8_t kind,
                                              const SectionBaseline* base) const {
  SnapshotWriter w;
  w.U8(kind);
  w.U64(sections_.size());
  for (const auto& [name, body] : sections_) {
    w.Str(name);
    std::uint64_t hash = 0;
    bool as_ref = false;
    if (base != nullptr) {
      hash = Fnv64(body);
      auto it = base->hashes.find(name);
      as_ref = it != base->hashes.end() && it->second == hash;
    }
    if (as_ref) {
      w.U8(kSectionRef);
      w.U64(hash);
    } else {
      w.U8(kSectionInline);
      w.Bytes(body);
    }
  }
  return w.Seal();
}

std::string SectionedSnapshotWriter::SealFull() {
  Finish();
  return SealKind(kSectionedFull, nullptr);
}

std::string SectionedSnapshotWriter::SealDelta(const SectionBaseline& base) {
  Finish();
  return SealKind(kSectionedDelta, &base);
}

SectionBaseline SectionedSnapshotWriter::Digest() {
  Finish();
  SectionBaseline digest;
  for (const auto& [name, body] : sections_) {
    digest.hashes[name] = Fnv64(body);
  }
  return digest;
}

void SectionSource::Fail(SnapshotErrorKind kind, std::string detail) {
  if (!ok_) {
    return;  // first failure wins
  }
  ok_ = false;
  error_.kind = kind;
  error_.detail = std::move(detail);
}

bool SectionSource::Has(const std::string& name) const {
  return index_.find(name) != index_.end();
}

SnapshotReader SectionSource::Open(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    Fail(SnapshotErrorKind::kBadValue, "checkpoint chain has no section '" + name + "'");
    SnapshotReader dead = SnapshotReader::ForPayload({});
    dead.Fail(SnapshotErrorKind::kBadValue, "section '" + name + "' absent");
    return dead;
  }
  opened_.insert(name);
  return SnapshotReader::ForPayload(sections_[it->second].second);
}

bool SectionSource::Close(SnapshotReader* reader, const std::string& name) {
  if (ok_) {
    if (!reader->ok()) {
      Fail(reader->error().kind, "section '" + name + "': " + reader->error().detail);
    } else if (!reader->AtEnd()) {
      Fail(SnapshotErrorKind::kBadValue, "section '" + name + "' has trailing bytes");
    }
  }
  return ok_;
}

void SectionSource::FailIfUnopened() {
  if (!ok_) {
    return;
  }
  for (const auto& [name, body] : sections_) {
    if (opened_.find(name) == opened_.end()) {
      Fail(SnapshotErrorKind::kBadValue, "unconsumed section '" + name + "'");
      return;
    }
  }
}

namespace {

struct ParsedSection {
  std::string name;
  bool ref{false};
  std::string body;    // inline
  std::uint64_t hash{0};  // ref
};

Expected<std::vector<ParsedSection>, SnapshotError> ParseSectioned(
    const std::string& sealed, bool expect_delta, std::size_t link_index) {
  SnapshotReader r(sealed);
  const std::uint8_t kind = r.U8();
  if (r.ok() && kind != kSectionedFull && kind != kSectionedDelta) {
    r.Fail(SnapshotErrorKind::kBadValue,
           "unknown sectioned-snapshot kind " + std::to_string(kind));
  }
  if (r.ok() && (kind == kSectionedDelta) != expect_delta) {
    r.Fail(SnapshotErrorKind::kBadValue,
           expect_delta ? "chain link " + std::to_string(link_index) +
                              " is a full cut where a delta belongs"
                        : "chain head is a delta cut with no base");
  }
  const std::uint64_t count = r.Count(kMaxSections);
  std::vector<ParsedSection> sections;
  sections.reserve(r.ok() ? static_cast<std::size_t>(count) : 0);
  for (std::uint64_t i = 0; r.ok() && i < count; ++i) {
    ParsedSection s;
    s.name = r.Str();
    const std::uint8_t tag = r.U8();
    if (tag == kSectionInline) {
      s.body = r.Str();  // Bytes and Str share the length-prefixed encoding
    } else if (tag == kSectionRef) {
      s.ref = true;
      s.hash = r.U64();
    } else if (r.ok()) {
      r.Fail(SnapshotErrorKind::kBadValue,
             "unknown section tag " + std::to_string(tag) + " in '" + s.name + "'");
    }
    if (r.ok()) {
      sections.push_back(std::move(s));
    }
  }
  if (r.ok() && !r.AtEnd()) {
    r.Fail(SnapshotErrorKind::kBadValue, "trailing bytes after the last section");
  }
  if (!r.ok()) {
    return MakeUnexpected(r.error());
  }
  return sections;
}

}  // namespace

Expected<SectionSource, SnapshotError> ResolveSectionChain(
    const std::vector<std::string>& links) {
  if (links.empty()) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kBadValue, "empty checkpoint chain"});
  }
  SectionSource src;
  for (std::size_t i = 0; i < links.size(); ++i) {
    auto parsed = ParseSectioned(links[i], /*expect_delta=*/i > 0, i);
    if (!parsed.has_value()) {
      return MakeUnexpected(parsed.error());
    }
    if (i == 0) {
      for (auto& s : parsed.value()) {
        if (!src.index_.emplace(s.name, src.sections_.size()).second) {
          return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                              "duplicate section '" + s.name + "'"});
        }
        src.sections_.emplace_back(std::move(s.name), std::move(s.body));
      }
      continue;
    }
    // A delta link REPLACES the section set: inline sections carry new
    // bodies, refs pin unchanged predecessors by hash, and a section the
    // delta does not name is dropped (the cut no longer contains it).
    std::vector<std::pair<std::string, std::string>> next;
    std::map<std::string, std::size_t> next_index;
    for (auto& s : parsed.value()) {
      std::string body;
      if (s.ref) {
        auto it = src.index_.find(s.name);
        if (it == src.index_.end()) {
          return MakeUnexpected(SnapshotError{
              SnapshotErrorKind::kBadValue,
              "delta link " + std::to_string(i) + " references section '" + s.name +
                  "' absent from its base"});
        }
        body = src.sections_[it->second].second;
        if (Fnv64(body) != s.hash) {
          return MakeUnexpected(SnapshotError{
              SnapshotErrorKind::kBadChecksum,
              "delta link " + std::to_string(i) + " reference '" + s.name +
                  "' does not hash-match its base (mis-chained delta?)"});
        }
      } else {
        body = std::move(s.body);
      }
      if (!next_index.emplace(s.name, next.size()).second) {
        return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                            "duplicate section '" + s.name + "'"});
      }
      next.emplace_back(std::move(s.name), std::move(body));
    }
    src.sections_ = std::move(next);
    src.index_ = std::move(next_index);
  }
  return src;
}

Status<SnapshotError> WriteFileAtomic(Fs* fs, const std::string& path,
                                      std::string_view sealed) {
  if (auto status = fs->WriteFileAtomic(path, sealed); !status.has_value()) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kIo, status.error().Describe()});
  }
  return Ok();
}

Status<SnapshotError> WriteFileAtomic(const std::string& path, std::string_view sealed) {
  return WriteFileAtomic(&SystemFs(), path, sealed);
}

Expected<std::string, SnapshotError> ReadFileBytes(Fs* fs, const std::string& path) {
  auto bytes = fs->ReadFile(path);
  if (!bytes.has_value()) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kIo, bytes.error().Describe()});
  }
  return std::move(bytes.value());
}

Expected<std::string, SnapshotError> ReadFileBytes(const std::string& path) {
  return ReadFileBytes(&SystemFs(), path);
}

}  // namespace dsa
