#include "src/core/snapshot.h"

#include <cstring>

#include "src/core/fsio.h"

namespace dsa {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;  // magic, version, length, fnv

void AppendLe(std::string* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ParseLe(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* ToString(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kTruncated:
      return "truncated";
    case SnapshotErrorKind::kBadMagic:
      return "bad-magic";
    case SnapshotErrorKind::kStaleVersion:
      return "stale-version";
    case SnapshotErrorKind::kBadChecksum:
      return "bad-checksum";
    case SnapshotErrorKind::kBadValue:
      return "bad-value";
    case SnapshotErrorKind::kIo:
      return "io";
  }
  return "?";
}

std::string SnapshotError::Describe() const {
  std::string out = ToString(kind);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::uint64_t Fnv64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SnapshotWriter::U32(std::uint32_t v) { AppendLe(&payload_, v, 4); }

void SnapshotWriter::U64(std::uint64_t v) { AppendLe(&payload_, v, 8); }

void SnapshotWriter::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  payload_.append(s);
}

void SnapshotWriter::Bytes(std::string_view bytes) {
  U64(bytes.size());
  payload_.append(bytes);
}

std::string SnapshotWriter::Seal() const {
  std::string out;
  out.reserve(kHeaderBytes + payload_.size());
  out.append(kMagic, sizeof(kMagic));
  AppendLe(&out, kSnapshotFormatVersion, 4);
  AppendLe(&out, payload_.size(), 8);
  AppendLe(&out, Fnv64(payload_), 8);
  out.append(payload_);
  return out;
}

SnapshotReader::SnapshotReader(std::string_view sealed) {
  if (sealed.size() < kHeaderBytes) {
    Fail(SnapshotErrorKind::kTruncated, "shorter than the snapshot header");
    return;
  }
  if (std::memcmp(sealed.data(), kMagic, sizeof(kMagic)) != 0) {
    Fail(SnapshotErrorKind::kBadMagic, "missing DSASNAP1 magic");
    return;
  }
  const std::uint64_t version = ParseLe(sealed.data() + 8, 4);
  if (version != kSnapshotFormatVersion) {
    Fail(SnapshotErrorKind::kStaleVersion,
         "format version " + std::to_string(version) + ", expected " +
             std::to_string(kSnapshotFormatVersion));
    return;
  }
  const std::uint64_t length = ParseLe(sealed.data() + 12, 8);
  const std::uint64_t checksum = ParseLe(sealed.data() + 20, 8);
  if (sealed.size() - kHeaderBytes != length) {
    Fail(SnapshotErrorKind::kTruncated,
         "payload holds " + std::to_string(sealed.size() - kHeaderBytes) +
             " bytes, header promised " + std::to_string(length));
    return;
  }
  payload_ = sealed.substr(kHeaderBytes);
  if (Fnv64(payload_) != checksum) {
    Fail(SnapshotErrorKind::kBadChecksum, "payload bytes do not match the recorded fnv64");
    payload_ = {};
  }
}

void SnapshotReader::Fail(SnapshotErrorKind kind, std::string detail) {
  if (!ok_) {
    return;  // first failure wins
  }
  ok_ = false;
  error_.kind = kind;
  error_.detail = std::move(detail);
}

bool SnapshotReader::Need(std::size_t n) {
  if (!ok_) {
    return false;
  }
  if (payload_.size() - pos_ < n) {
    Fail(SnapshotErrorKind::kTruncated, "field read past the end of the payload");
    return false;
  }
  return true;
}

std::uint8_t SnapshotReader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return static_cast<std::uint8_t>(static_cast<unsigned char>(payload_[pos_++]));
}

std::uint32_t SnapshotReader::U32() {
  if (!Need(4)) {
    return 0;
  }
  const std::uint64_t v = ParseLe(payload_.data() + pos_, 4);
  pos_ += 4;
  return static_cast<std::uint32_t>(v);
}

std::uint64_t SnapshotReader::U64() {
  if (!Need(8)) {
    return 0;
  }
  const std::uint64_t v = ParseLe(payload_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double SnapshotReader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  const std::uint64_t n = U64();
  if (!Need(n)) {
    return {};
  }
  std::string s(payload_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::uint64_t SnapshotReader::Count(std::uint64_t limit) {
  const std::uint64_t n = U64();
  if (ok_ && n > limit) {
    Fail(SnapshotErrorKind::kBadValue,
         "count " + std::to_string(n) + " exceeds limit " + std::to_string(limit));
    return 0;
  }
  return ok_ ? n : 0;
}

Status<SnapshotError> WriteFileAtomic(Fs* fs, const std::string& path,
                                      std::string_view sealed) {
  if (auto status = fs->WriteFileAtomic(path, sealed); !status.has_value()) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kIo, status.error().Describe()});
  }
  return Ok();
}

Status<SnapshotError> WriteFileAtomic(const std::string& path, std::string_view sealed) {
  return WriteFileAtomic(&SystemFs(), path, sealed);
}

Expected<std::string, SnapshotError> ReadFileBytes(Fs* fs, const std::string& path) {
  auto bytes = fs->ReadFile(path);
  if (!bytes.has_value()) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kIo, bytes.error().Describe()});
  }
  return std::move(bytes.value());
}

Expected<std::string, SnapshotError> ReadFileBytes(const std::string& path) {
  return ReadFileBytes(&SystemFs(), path);
}

}  // namespace dsa
