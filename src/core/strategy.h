// Names for the paper's three strategy problem areas.
//
// The concrete strategy interfaces live with the data they operate on
// (src/paging/replacement.h, src/paging/fetch.h, src/alloc/placement.h);
// these enums are the configuration-level vocabulary used by SystemBuilder
// and the machine descriptions.

#ifndef SRC_CORE_STRATEGY_H_
#define SRC_CORE_STRATEGY_H_

#include <cstdint>

namespace dsa {

// "There exist many strategies governing when to fetch information."
enum class FetchStrategyKind : std::uint8_t {
  kDemand,        // fetch at the moment of reference (demand paging / B5000 segment fetch)
  kPrefetch,      // fetch before need, from spatial lookahead
  kAdvised,       // fetch before need, from explicit predictive directives
};

// "Once it is decided that some information is to be fetched ... some
// strategy is needed for deciding where to put the information."
enum class PlacementStrategyKind : std::uint8_t {
  kFirstFit,
  kNextFit,
  kBestFit,    // "the smallest space which is sufficient to contain it"
  kWorstFit,
  kTwoEnded,   // "large blocks ... at one end of storage and small blocks ... at the other"
  kBuddy,
  kRiceChain,      // Appendix A.4: sequential placement + inactive-block chain
  kSegregatedFit,  // segregated size-class free lists + quick lists (post-paper design)
  kSlabPool,       // fixed-size chunk pool (uniform unit inside a variable-unit world)
};

// "A replacement strategy is used to determine which informational units
// should be overlayed."
enum class ReplacementStrategyKind : std::uint8_t {
  kFifo,
  kLru,
  kRandom,
  kClock,          // "essentially cyclical" (B5000)
  kAtlasLearning,  // the ATLAS learning program (Kilburn et al.)
  kM44Class,       // usage-frequency + modified classes, random tie-break (M44/44X)
  kWorkingSet,     // Denning-style extension; see DESIGN.md
  kOpt,            // Belady's offline optimal bound
};

const char* ToString(FetchStrategyKind kind);
const char* ToString(PlacementStrategyKind kind);
const char* ToString(ReplacementStrategyKind kind);

}  // namespace dsa

#endif  // SRC_CORE_STRATEGY_H_
