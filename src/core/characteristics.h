// The paper's primary contribution: a four-axis characterisation of dynamic
// storage allocation systems.
//
//   1. Name space            — linear / linearly segmented / symbolically segmented
//   2. Predictive information — whether advisory directives about future use are accepted
//   3. Artificial contiguity  — whether a mapping device gives name contiguity
//                               without address contiguity
//   4. Uniformity of unit     — uniform page frames / variable-size blocks / mixed
//
// The axes are "to a large degree, mutually independent"; `Characteristics`
// is the product type, and `SystemBuilder` (src/vm/system_builder.h) turns
// any point of the space into a runnable system.

#ifndef SRC_CORE_CHARACTERISTICS_H_
#define SRC_CORE_CHARACTERISTICS_H_

#include <cstdint>
#include <string>

namespace dsa {

// Axis 1: the structure of the set of names a program may use.
enum class NameSpaceKind : std::uint8_t {
  // Names are the integers 0..n; possibly relocated via a base/limit pair.
  kLinear,
  // (segment, word) pairs where segment names are themselves ordered integers
  // packed into the most significant address bits (IBM 360/67, MULTICS
  // hardware).  Indexing across segment names is possible, so segment-name
  // allocation has the same fragmentation problems as storage allocation.
  kLinearlySegmented,
  // (segment, word) pairs where segment names are unordered symbols
  // (Burroughs B5000).  No name contiguity, hence far less bookkeeping.
  kSymbolicallySegmented,
};

// Axis 2: whether the system accepts advisory predictions of future storage
// use ("program descriptions" in ACSI-MATIC; the two special M44/44X
// instructions; the MULTICS keep/will-need/wont-need directives).
enum class PredictiveInformation : std::uint8_t {
  kNotAccepted,
  kAccepted,
};

// Who supplies predictions when they are accepted.  The paper judges
// compiler-supplied predictions differently from user-supplied ones.
enum class PredictionSource : std::uint8_t {
  kNone,
  kProgrammer,
  kCompiler,
};

// Axis 3: whether a mapping device provides name contiguity without address
// contiguity (Figs. 1 and 2), usually exploited to disguise the actual
// extent of working storage ("virtual storage systems").
enum class ArtificialContiguity : std::uint8_t {
  kNone,
  kProvided,
};

// Axis 4: the uniformity of the unit of storage allocation.
enum class AllocationUnit : std::uint8_t {
  // Equal-size page frames (ATLAS, M44/44X, 360/67).
  kUniformPages,
  // Block size follows the allocation request (B5000, Rice).
  kVariableBlocks,
  // More than one page-frame size (MULTICS with 64- and 1024-word pages);
  // formally non-uniform, so fragmentation provisions are still required.
  kMixedPages,
};

// A point in the paper's design space.
struct Characteristics {
  NameSpaceKind name_space{NameSpaceKind::kLinear};
  PredictiveInformation predictive{PredictiveInformation::kNotAccepted};
  PredictionSource prediction_source{PredictionSource::kNone};
  ArtificialContiguity contiguity{ArtificialContiguity::kNone};
  AllocationUnit unit{AllocationUnit::kUniformPages};

  bool operator==(const Characteristics&) const = default;
};

// The combination the authors "tend to favor" in the summary section:
// symbolic segmentation, predictions accepted, mapping only where essential,
// and non-uniform units sized to small segments.
Characteristics AuthorsFavoredCharacteristics();

const char* ToString(NameSpaceKind kind);
const char* ToString(PredictiveInformation predictive);
const char* ToString(PredictionSource source);
const char* ToString(ArtificialContiguity contiguity);
const char* ToString(AllocationUnit unit);

// One human-readable line, e.g. for the appendix survey table.
std::string Describe(const Characteristics& c);

}  // namespace dsa

#endif  // SRC_CORE_CHARACTERISTICS_H_
