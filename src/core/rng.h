// Deterministic pseudo-random number generation for workload synthesis and
// randomised policies (e.g. the M44/44X replacement algorithm, which
// "selects at random from a set of equally acceptable candidates").
//
// splitmix64 seeds an xoshiro256** core: small, fast, and identical on every
// platform, so traces and experiments reproduce bit-for-bit.

#ifndef SRC_CORE_RNG_H_
#define SRC_CORE_RNG_H_

#include <array>
#include <cstdint>

#include "src/core/assert.h"
#include "src/core/snapshot.h"

namespace dsa {

// The complete externalized state of an Rng: the Seed() argument (retained
// for Fork() lineage, so a restored generator forks the same child streams)
// plus the four xoshiro256** state words.  A value type on purpose — the
// checkpoint layer serializes it, and Restore() is the only way back in.
struct RngState {
  std::uint64_t seed{0};
  std::array<std::uint64_t, 4> words{};

  friend bool operator==(const RngState&, const RngState&) = default;
};

// Snapshot helpers shared by everything that checkpoints a generator.
inline void SaveRngState(SnapshotWriter* w, const RngState& state) {
  w->U64(state.seed);
  for (std::uint64_t word : state.words) {
    w->U64(word);
  }
}

inline RngState LoadRngState(SnapshotReader* r) {
  RngState state;
  state.seed = r->U64();
  for (std::uint64_t& word : state.words) {
    word = r->U64();
  }
  return state;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // A generator is a stream, not a value: implicit copies are deleted
  // because a copied generator silently decorrelates from a replayed run
  // the moment either copy draws — exactly the bug a parallel sweep makes
  // likely.  Hand a cell its own stream with Fork(); moving is fine (the
  // source is left reseeded, not aliased).
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Re-seeds the generator deterministically from a single value.
  void Seed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(&x);
    }
  }

  // Stream split: derives an independent child generator from this
  // generator's seed and a stream index, via a double splitmix64 mix.  The
  // derivation is a pure function of (seed, stream) — it neither draws from
  // nor perturbs the parent, so any completion order of forked cells leaves
  // every stream identical.  Child state is seeded through a different
  // splitmix64 trajectory than the parent's (the stream index is folded in
  // with a second Weyl constant), so parent and child sequences do not
  // overlap over any practical draw horizon; tests/test_core.cc pins this
  // over 2^17 draws.
  // Explicit stream capture and resumption for checkpoint/restore.  Copying
  // a generator stays deleted — State()/Restore() are deliberate acts with a
  // serialization boundary between them, not a way to alias a live stream.
  // A restored generator draws the identical continuation sequence and
  // forks identical children (tests/test_snapshot.cc pins both over 2^17
  // draws).
  RngState State() const { return RngState{seed_, state_}; }
  void Restore(const RngState& state) {
    seed_ = state.seed;
    state_ = state.words;
  }

  Rng Fork(std::uint64_t stream) const {
    std::uint64_t x = seed_;
    std::uint64_t mixed = SplitMix64(&x) ^ (0xd1b54a32d192ed03ULL * (stream + 1));
    return Rng(SplitMix64(&mixed));
  }

  // Hierarchical stream split for two-level parallel structure (lane/group
  // outer, job/cell inner): Fork2(a, b) is Fork(a).Fork(b) — still a pure
  // function of (seed, a, b), so any execution order of lanes and any lane
  // count leaves every (group, job) stream identical.  Distinctness across a
  // (2^8 x 2^8) grid, and against the flat Fork streams, is pinned by
  // tests/test_core.cc.
  Rng Fork2(std::uint64_t outer, std::uint64_t inner) const {
    return Fork(outer).Fork(inner);
  }

  // Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound).  `bound` must be nonzero.
  std::uint64_t Below(std::uint64_t bound) {
    DSA_ASSERT(bound != 0, "Rng::Below(0)");
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform value in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    DSA_ASSERT(lo <= hi, "Rng::Between: lo > hi");
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Geometric-ish positive size with the given mean, capped at `max`.
  // Used by allocation-trace generators for exponential request sizes.
  std::uint64_t ExponentialSize(double mean, std::uint64_t max) {
    DSA_ASSERT(mean > 0.0, "ExponentialSize: nonpositive mean");
    double u = NextDouble();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    // Inverse-CDF of the exponential distribution, shifted to be >= 1.
    const double x = 1.0 - mean * LogApprox(1.0 - u);
    auto size = static_cast<std::uint64_t>(x);
    if (size < 1) {
      size = 1;
    }
    if (size > max) {
      size = max;
    }
    return size;
  }

 private:
  static std::uint64_t SplitMix64(std::uint64_t* x) {
    std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t Rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  // Natural log via the standard library would be fine; a local wrapper keeps
  // <cmath> out of this header's interface.
  static double LogApprox(double v);

  std::uint64_t seed_{0};  // the Seed() argument, retained for Fork()
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dsa

#endif  // SRC_CORE_RNG_H_
