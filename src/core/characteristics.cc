#include "src/core/characteristics.h"

#include <sstream>

namespace dsa {

Characteristics AuthorsFavoredCharacteristics() {
  Characteristics c;
  c.name_space = NameSpaceKind::kSymbolicallySegmented;
  c.predictive = PredictiveInformation::kAccepted;
  c.prediction_source = PredictionSource::kProgrammer;
  c.contiguity = ArtificialContiguity::kProvided;  // "used if it is essential, to provide large segments"
  c.unit = AllocationUnit::kVariableBlocks;        // "nonuniform units ... corresponding closely to the size of small segments"
  return c;
}

const char* ToString(NameSpaceKind kind) {
  switch (kind) {
    case NameSpaceKind::kLinear:
      return "linear";
    case NameSpaceKind::kLinearlySegmented:
      return "linearly segmented";
    case NameSpaceKind::kSymbolicallySegmented:
      return "symbolically segmented";
  }
  return "?";
}

const char* ToString(PredictiveInformation predictive) {
  switch (predictive) {
    case PredictiveInformation::kNotAccepted:
      return "not accepted";
    case PredictiveInformation::kAccepted:
      return "accepted";
  }
  return "?";
}

const char* ToString(PredictionSource source) {
  switch (source) {
    case PredictionSource::kNone:
      return "none";
    case PredictionSource::kProgrammer:
      return "programmer";
    case PredictionSource::kCompiler:
      return "compiler";
  }
  return "?";
}

const char* ToString(ArtificialContiguity contiguity) {
  switch (contiguity) {
    case ArtificialContiguity::kNone:
      return "none";
    case ArtificialContiguity::kProvided:
      return "provided";
  }
  return "?";
}

const char* ToString(AllocationUnit unit) {
  switch (unit) {
    case AllocationUnit::kUniformPages:
      return "uniform pages";
    case AllocationUnit::kVariableBlocks:
      return "variable blocks";
    case AllocationUnit::kMixedPages:
      return "mixed page sizes";
  }
  return "?";
}

std::string Describe(const Characteristics& c) {
  std::ostringstream out;
  out << "name space: " << ToString(c.name_space) << "; predictions: " << ToString(c.predictive);
  if (c.predictive == PredictiveInformation::kAccepted) {
    out << " (" << ToString(c.prediction_source) << ")";
  }
  out << "; artificial contiguity: " << ToString(c.contiguity)
      << "; allocation unit: " << ToString(c.unit);
  return out.str();
}

}  // namespace dsa
