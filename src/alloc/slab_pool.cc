#include "src/alloc/slab_pool.h"

#include "src/alloc/cost.h"
#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

SlabPoolAllocator::SlabPoolAllocator(WordCount capacity, SlabPoolConfig config)
    : capacity_((capacity / config.chunk_words) * config.chunk_words),
      config_(config),
      chunk_requested_(capacity / config.chunk_words, 0) {
  DSA_ASSERT(config_.chunk_words > 0, "slab pool needs nonzero chunk size");
  DSA_ASSERT(!chunk_requested_.empty(), "slab pool needs at least one chunk");
  // Seed the stack so chunk 0 is granted first.
  free_stack_.reserve(chunk_requested_.size());
  for (std::size_t i = chunk_requested_.size(); i-- > 0;) {
    free_stack_.push_back(i);
  }
}

std::optional<Block> SlabPoolAllocator::Allocate(WordCount size) {
  DSA_ASSERT(size > 0, "cannot allocate zero words");
  ++stats_.allocations;
  stats_.words_requested += size;
  stats_.alloc_cycles += alloc_cost::kClassIndex + alloc_cost::kProbe;
  if (size > config_.chunk_words || free_stack_.empty()) {
    ++stats_.failures;
    return std::nullopt;
  }
  const std::uint64_t chunk = free_stack_.back();
  free_stack_.pop_back();
  chunk_requested_[chunk] = size;
  live_words_ += size;
  reserved_words_ += config_.chunk_words;
  stats_.words_allocated += config_.chunk_words;
  const std::uint64_t addr = chunk * config_.chunk_words;
  DSA_TRACE_EMIT(tracer_, EventKind::kAlloc, addr, size);
  return Block{PhysicalAddress{addr}, config_.chunk_words};
}

void SlabPoolAllocator::Free(PhysicalAddress addr) {
  DSA_ASSERT(addr.value % config_.chunk_words == 0, "free of misaligned slab address");
  const std::uint64_t chunk = addr.value / config_.chunk_words;
  DSA_ASSERT(chunk < chunk_requested_.size() && chunk_requested_[chunk] != 0,
             "free of unknown chunk");
  const WordCount requested = chunk_requested_[chunk];
  chunk_requested_[chunk] = 0;
  free_stack_.push_back(chunk);
  live_words_ -= requested;
  reserved_words_ -= config_.chunk_words;
  ++stats_.frees;
  stats_.free_cycles += alloc_cost::kProbe;
  DSA_TRACE_EMIT(tracer_, EventKind::kFree, addr.value, requested);
}

std::vector<WordCount> SlabPoolAllocator::HoleSizes() const {
  std::vector<WordCount> holes;
  WordCount run = 0;
  for (const WordCount requested : chunk_requested_) {
    if (requested == 0) {
      run += config_.chunk_words;
    } else if (run > 0) {
      holes.push_back(run);
      run = 0;
    }
  }
  if (run > 0) {
    holes.push_back(run);
  }
  return holes;
}

}  // namespace dsa
