// Variable-unit allocator: an address-ordered free list driven by a
// pluggable placement policy.  This is the allocation engine of the
// B5000-style systems where "the unit of allocation ... directly reflects
// the allocation request".

#ifndef SRC_ALLOC_VARIABLE_ALLOCATOR_H_
#define SRC_ALLOC_VARIABLE_ALLOCATOR_H_

#include <map>
#include <memory>

#include "src/alloc/allocator.h"
#include "src/alloc/compactible.h"
#include "src/alloc/free_list.h"
#include "src/alloc/placement.h"

namespace dsa {

class VariableAllocator : public Allocator, public Compactible {
 public:
  VariableAllocator(WordCount capacity, std::unique_ptr<PlacementPolicy> policy);

  std::optional<Block> Allocate(WordCount size) override;
  void Free(PhysicalAddress addr) override;

  std::string name() const override;
  WordCount capacity() const override { return capacity_; }
  WordCount live_words() const override { return live_words_; }
  WordCount reserved_words() const override { return live_words_; }
  std::vector<WordCount> HoleSizes() const override { return free_.HoleSizes(); }
  const AllocatorStats& stats() const override { return stats_; }

  const PlacementPolicy& policy() const { return *policy_; }
  const FreeList& free_list() const { return free_; }

  // Compactible: live blocks in address order (compaction input).
  std::vector<Block> LiveBlocks() const override;
  std::size_t HoleCount() const override { return free_.hole_count(); }

  // Size of the live block starting at `addr`; asserts it exists.
  WordCount LiveBlockSize(PhysicalAddress addr) const;

  // Compaction support: atomically relocates the live block at `from` to
  // `to`, updating the free list.  The destination must be free (other than
  // any overlap with the block itself, which slide-down compaction creates).
  void Relocate(PhysicalAddress from, PhysicalAddress to) override;

 private:
  WordCount capacity_;
  std::unique_ptr<PlacementPolicy> policy_;
  FreeList free_;
  std::map<std::uint64_t, WordCount> live_;  // start address -> size
  WordCount live_words_{0};
  AllocatorStats stats_;
};

}  // namespace dsa

#endif  // SRC_ALLOC_VARIABLE_ALLOCATOR_H_
