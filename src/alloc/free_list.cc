#include "src/alloc/free_list.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

FreeList::FreeList(WordCount capacity) {
  if (capacity > 0) {
    holes_.emplace(0, capacity);
    by_size_.emplace(capacity, 0);
    total_free_ = capacity;
  }
}

void FreeList::Insert(Block hole) {
  DSA_ASSERT(hole.size > 0, "cannot insert an empty hole");
  const std::uint64_t start = hole.addr.value;
  const std::uint64_t end = start + hole.size;

  // The first hole at or after `start`.
  auto after = holes_.lower_bound(start);
  // The hole before it, if any.
  auto before = after == holes_.begin() ? holes_.end() : std::prev(after);

  if (before != holes_.end()) {
    DSA_ASSERT(before->first + before->second <= start, "hole overlaps predecessor (double free?)");
  }
  if (after != holes_.end()) {
    DSA_ASSERT(end <= after->first, "hole overlaps successor (double free?)");
  }

  std::uint64_t new_start = start;
  std::uint64_t new_end = end;
  if (before != holes_.end() && before->first + before->second == start) {
    new_start = before->first;
    by_size_.erase({before->second, before->first});
    holes_.erase(before);
  }
  if (after != holes_.end() && after->first == end) {
    new_end = after->first + after->second;
    by_size_.erase({after->second, after->first});
    holes_.erase(after);
  }
  holes_.emplace(new_start, new_end - new_start);
  by_size_.emplace(new_end - new_start, new_start);
  total_free_ += hole.size;
}

void FreeList::TakeRange(PhysicalAddress addr, WordCount size) {
  DSA_ASSERT(size > 0, "cannot take an empty range");
  const std::uint64_t start = addr.value;
  const std::uint64_t end = start + size;

  auto it = holes_.upper_bound(start);
  DSA_ASSERT(it != holes_.begin(), "range not inside any hole");
  --it;
  const std::uint64_t hole_start = it->first;
  const std::uint64_t hole_end = it->first + it->second;
  DSA_ASSERT(hole_start <= start && end <= hole_end, "range not inside a single hole");

  by_size_.erase({it->second, it->first});
  holes_.erase(it);
  if (hole_start < start) {
    holes_.emplace(hole_start, start - hole_start);
    by_size_.emplace(start - hole_start, hole_start);
  }
  if (end < hole_end) {
    holes_.emplace(end, hole_end - end);
    by_size_.emplace(hole_end - end, end);
  }
  total_free_ -= size;
}

bool FreeList::RangeIsFree(PhysicalAddress addr, WordCount size) const {
  if (size == 0) {
    return true;
  }
  auto it = holes_.upper_bound(addr.value);
  if (it == holes_.begin()) {
    return false;
  }
  --it;
  return it->first <= addr.value && addr.value + size <= it->first + it->second;
}

WordCount FreeList::largest_hole() const {
  return by_size_.empty() ? 0 : by_size_.rbegin()->first;
}

std::optional<PhysicalAddress> FreeList::SmallestHoleAtLeast(WordCount size) const {
  const auto it = by_size_.lower_bound({size, 0});
  if (it == by_size_.end()) {
    return std::nullopt;
  }
  return PhysicalAddress{it->second};
}

std::optional<PhysicalAddress> FreeList::LargestHoleAtLeast(WordCount size) const {
  if (by_size_.empty() || by_size_.rbegin()->first < size) {
    return std::nullopt;
  }
  // Lowest-addressed hole of the maximum size.
  const auto it = by_size_.lower_bound({by_size_.rbegin()->first, 0});
  return PhysicalAddress{it->second};
}

std::vector<WordCount> FreeList::HoleSizes() const {
  std::vector<WordCount> sizes;
  sizes.reserve(holes_.size());
  for (const auto& [start, size] : holes_) {
    sizes.push_back(size);
  }
  return sizes;
}

std::vector<Block> FreeList::Holes() const {
  std::vector<Block> holes;
  holes.reserve(holes_.size());
  for (const auto& [start, size] : holes_) {
    holes.push_back(Block{PhysicalAddress{start}, size});
  }
  return holes;
}

void FreeList::SaveState(SnapshotWriter* w) const {
  w->U64(holes_.size());
  for (const auto& [start, size] : holes_) {
    w->U64(start);
    w->U64(size);
  }
}

void FreeList::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->Count(std::uint64_t{1} << 32);
  HoleMap holes;
  std::set<std::pair<WordCount, std::uint64_t>> by_size;
  WordCount total = 0;
  bool first = true;
  std::uint64_t prev_end = 0;
  for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
    const std::uint64_t start = r->U64();
    const WordCount size = r->U64();
    if (!r->ok()) {
      return;
    }
    if (size == 0) {
      r->Fail(SnapshotErrorKind::kBadValue, "zero-sized hole");
      return;
    }
    // Strictly increasing and never touching: adjacent holes would mean the
    // coalescing invariant was broken when the snapshot was taken.
    if (!first && start <= prev_end) {
      r->Fail(SnapshotErrorKind::kBadValue, "holes out of order, overlapping, or uncoalesced");
      return;
    }
    first = false;
    prev_end = start + size;
    holes.emplace_hint(holes.end(), start, size);
    by_size.emplace(size, start);
    total += size;
  }
  if (!r->ok()) {
    return;
  }
  holes_ = std::move(holes);
  by_size_ = std::move(by_size);
  total_free_ = total;
}

}  // namespace dsa
