#include "src/alloc/free_list.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

FreeList::FreeList(WordCount capacity) {
  if (capacity > 0) {
    holes_.emplace(0, capacity);
    total_free_ = capacity;
  }
}

void FreeList::Insert(Block hole) {
  DSA_ASSERT(hole.size > 0, "cannot insert an empty hole");
  const std::uint64_t start = hole.addr.value;
  const std::uint64_t end = start + hole.size;

  // The first hole at or after `start`.
  auto after = holes_.lower_bound(start);
  // The hole before it, if any.
  auto before = after == holes_.begin() ? holes_.end() : std::prev(after);

  if (before != holes_.end()) {
    DSA_ASSERT(before->first + before->second <= start, "hole overlaps predecessor (double free?)");
  }
  if (after != holes_.end()) {
    DSA_ASSERT(end <= after->first, "hole overlaps successor (double free?)");
  }

  std::uint64_t new_start = start;
  std::uint64_t new_end = end;
  if (before != holes_.end() && before->first + before->second == start) {
    new_start = before->first;
    holes_.erase(before);
  }
  if (after != holes_.end() && after->first == end) {
    new_end = after->first + after->second;
    holes_.erase(after);
  }
  holes_.emplace(new_start, new_end - new_start);
  total_free_ += hole.size;
}

void FreeList::TakeRange(PhysicalAddress addr, WordCount size) {
  DSA_ASSERT(size > 0, "cannot take an empty range");
  const std::uint64_t start = addr.value;
  const std::uint64_t end = start + size;

  auto it = holes_.upper_bound(start);
  DSA_ASSERT(it != holes_.begin(), "range not inside any hole");
  --it;
  const std::uint64_t hole_start = it->first;
  const std::uint64_t hole_end = it->first + it->second;
  DSA_ASSERT(hole_start <= start && end <= hole_end, "range not inside a single hole");

  holes_.erase(it);
  if (hole_start < start) {
    holes_.emplace(hole_start, start - hole_start);
  }
  if (end < hole_end) {
    holes_.emplace(end, hole_end - end);
  }
  total_free_ -= size;
}

bool FreeList::RangeIsFree(PhysicalAddress addr, WordCount size) const {
  if (size == 0) {
    return true;
  }
  auto it = holes_.upper_bound(addr.value);
  if (it == holes_.begin()) {
    return false;
  }
  --it;
  return it->first <= addr.value && addr.value + size <= it->first + it->second;
}

WordCount FreeList::largest_hole() const {
  WordCount largest = 0;
  for (const auto& [start, size] : holes_) {
    largest = std::max(largest, size);
  }
  return largest;
}

std::vector<WordCount> FreeList::HoleSizes() const {
  std::vector<WordCount> sizes;
  sizes.reserve(holes_.size());
  for (const auto& [start, size] : holes_) {
    sizes.push_back(size);
  }
  return sizes;
}

std::vector<Block> FreeList::Holes() const {
  std::vector<Block> holes;
  holes.reserve(holes_.size());
  for (const auto& [start, size] : holes_) {
    holes.push_back(Block{PhysicalAddress{start}, size});
  }
  return holes;
}

}  // namespace dsa
