#include "src/alloc/variable_allocator.h"

#include "src/alloc/cost.h"
#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

namespace {

// Index-probing policies (best/worst fit) answer from the free list's
// balanced by-size index; their honest search cost is the tree depth, not
// the single "hole examined" they report.
bool UsesSizeIndex(const PlacementPolicy& policy) {
  return policy.kind() == PlacementStrategyKind::kBestFit ||
         policy.kind() == PlacementStrategyKind::kWorstFit;
}

}  // namespace

VariableAllocator::VariableAllocator(WordCount capacity, std::unique_ptr<PlacementPolicy> policy)
    : capacity_(capacity), policy_(std::move(policy)), free_(capacity) {
  DSA_ASSERT(capacity_ > 0, "allocator needs nonzero capacity");
  DSA_ASSERT(policy_ != nullptr, "allocator needs a placement policy");
}

std::optional<Block> VariableAllocator::Allocate(WordCount size) {
  DSA_ASSERT(size > 0, "cannot allocate zero words");
  ++stats_.allocations;
  stats_.words_requested += size;
  const std::uint64_t examined_before = policy_->holes_examined();
  const std::optional<PhysicalAddress> addr = policy_->Choose(free_, size);
  stats_.alloc_cycles +=
      UsesSizeIndex(*policy_)
          ? alloc_cost::TreeDescent(free_.hole_count())
          : (policy_->holes_examined() - examined_before) * alloc_cost::kProbe;
  if (!addr.has_value()) {
    ++stats_.failures;
    return std::nullopt;
  }
  free_.TakeRange(*addr, size);
  // Carving also re-files any remainder in the by-size index.
  stats_.alloc_cycles += alloc_cost::kCarve + alloc_cost::TreeDescent(free_.hole_count());
  live_.emplace(addr->value, size);
  live_words_ += size;
  stats_.words_allocated += size;
  DSA_TRACE_EMIT(tracer_, EventKind::kAlloc, addr->value, size);
  return Block{*addr, size};
}

void VariableAllocator::Free(PhysicalAddress addr) {
  auto it = live_.find(addr.value);
  DSA_ASSERT(it != live_.end(), "free of unknown block");
  const WordCount size = it->second;
  live_.erase(it);
  live_words_ -= size;
  ++stats_.frees;
  DSA_TRACE_EMIT(tracer_, EventKind::kFree, addr.value, size);
  const std::size_t holes_before = free_.hole_count();
  free_.Insert(Block{addr, size});
  // Inserting adds one hole; every coalescing merge removes one back.
  const std::size_t merges = holes_before + 1 - free_.hole_count();
  stats_.free_cycles += alloc_cost::TreeDescent(free_.hole_count()) +
                        static_cast<Cycles>(merges) * alloc_cost::kMerge;
  policy_->NoteFree(addr, size);
}

std::string VariableAllocator::name() const {
  return std::string("variable/") + policy_->name();
}

std::vector<Block> VariableAllocator::LiveBlocks() const {
  std::vector<Block> blocks;
  blocks.reserve(live_.size());
  for (const auto& [start, size] : live_) {
    blocks.push_back(Block{PhysicalAddress{start}, size});
  }
  return blocks;
}

WordCount VariableAllocator::LiveBlockSize(PhysicalAddress addr) const {
  auto it = live_.find(addr.value);
  DSA_ASSERT(it != live_.end(), "LiveBlockSize of unknown block");
  return it->second;
}

void VariableAllocator::Relocate(PhysicalAddress from, PhysicalAddress to) {
  if (from == to) {
    return;
  }
  auto it = live_.find(from.value);
  DSA_ASSERT(it != live_.end(), "relocate of unknown block");
  const WordCount size = it->second;
  // Temporarily free the block; the destination must then be wholly free
  // (i.e. overlap only the block's own old extent or existing holes).
  live_.erase(it);
  free_.Insert(Block{from, size});
  DSA_ASSERT(free_.RangeIsFree(to, size), "relocation destination is not free");
  free_.TakeRange(to, size);
  live_.emplace(to.value, size);
}

}  // namespace dsa
