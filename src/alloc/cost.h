// The deterministic cycle-cost model of allocator bookkeeping.
//
// bench_alloc's "allocation latency" must be a pure function of the trace
// and the allocator (byte-identical at any --jobs width), so it cannot be
// wall-clock.  Instead every allocator charges cycles for the data-structure
// work a request performs, with one shared tariff:
//
//   * examining one free-list node, quick-list entry, or buddy level costs
//     one cycle (the paper's own search-length metric);
//   * descending a balanced size index (FreeList's by-size tree) costs the
//     tree depth — a best-fit "single probe" is really ceil(log2(n+1))
//     comparisons;
//   * carving a remainder or merging one boundary-tag neighbour costs one
//     cycle (constant-time pointer/tag surgery).
//
// The model intentionally favours nothing: segregated fits win on it only
// by doing less bookkeeping per request, which is the design's actual
// claim.  Wall-clock per-cell timings are also reported by bench_alloc but
// stripped before any byte comparison.

#ifndef SRC_ALLOC_COST_H_
#define SRC_ALLOC_COST_H_

#include <bit>

#include "src/core/types.h"

namespace dsa::alloc_cost {

inline constexpr Cycles kProbe = 1;       // look at one list node / level / entry
inline constexpr Cycles kClassIndex = 1;  // O(1) size -> class table lookup
inline constexpr Cycles kCarve = 1;       // split a block, write the new tags
inline constexpr Cycles kMerge = 1;       // one boundary-tag coalesce

// Depth of a balanced tree over n keys (>= 1 even when empty: the miss
// still costs the root comparison).
inline Cycles TreeDescent(std::size_t n) {
  return static_cast<Cycles>(std::bit_width(n + 1));
}

}  // namespace dsa::alloc_cost

#endif  // SRC_ALLOC_COST_H_
