// Binary buddy allocator.
//
// The buddy system is the classic compromise between uniform and variable
// units: requests are rounded to powers of two, so external fragmentation is
// bounded at the cost of internal waste — the same trade the paper's
// page-size discussion makes, realised inside a variable-unit design.  It
// serves as the third point of comparison in the fragmentation experiments.

#ifndef SRC_ALLOC_BUDDY_H_
#define SRC_ALLOC_BUDDY_H_

#include <map>
#include <set>
#include <vector>

#include "src/alloc/allocator.h"

namespace dsa {

class BuddyAllocator : public Allocator {
 public:
  // `capacity` must be a power of two; `min_order` is the smallest block
  // granted (2^min_order words).
  BuddyAllocator(WordCount capacity, int min_order = 0);

  std::optional<Block> Allocate(WordCount size) override;
  void Free(PhysicalAddress addr) override;

  std::string name() const override { return "buddy"; }
  WordCount capacity() const override { return capacity_; }
  WordCount live_words() const override { return live_words_; }
  WordCount reserved_words() const override { return reserved_words_; }
  std::vector<WordCount> HoleSizes() const override;
  const AllocatorStats& stats() const override { return stats_; }

  // Number of free blocks at a given order (test/diagnostic hook).
  std::size_t FreeBlocksAtOrder(int order) const;

  // Rounds a request up to the granted order.
  int OrderFor(WordCount size) const;

 private:
  static constexpr int kMaxOrders = 48;

  WordCount capacity_;
  int min_order_;
  int max_order_;
  // free_[k] holds start addresses of free blocks of size 2^k.
  std::vector<std::set<std::uint64_t>> free_;
  // start address -> {order, requested size}
  struct LiveBlock {
    int order;
    WordCount requested;
  };
  std::map<std::uint64_t, LiveBlock> live_;
  WordCount live_words_{0};
  WordCount reserved_words_{0};
  AllocatorStats stats_;
};

}  // namespace dsa

#endif  // SRC_ALLOC_BUDDY_H_
