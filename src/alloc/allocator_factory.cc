#include "src/alloc/allocator_factory.h"

#include "src/alloc/buddy.h"
#include "src/alloc/rice_chain.h"
#include "src/alloc/variable_allocator.h"
#include "src/core/assert.h"

namespace dsa {

std::unique_ptr<Allocator> MakeAllocator(PlacementStrategyKind kind, WordCount capacity,
                                         const AllocatorBuildOptions& options) {
  switch (kind) {
    case PlacementStrategyKind::kFirstFit:
    case PlacementStrategyKind::kNextFit:
    case PlacementStrategyKind::kBestFit:
    case PlacementStrategyKind::kWorstFit:
    case PlacementStrategyKind::kTwoEnded:
      return std::make_unique<VariableAllocator>(
          capacity, MakePlacementPolicy(kind, options.large_threshold));
    case PlacementStrategyKind::kBuddy:
      return std::make_unique<BuddyAllocator>(capacity, options.buddy_min_order);
    case PlacementStrategyKind::kRiceChain:
      return std::make_unique<RiceChainAllocator>(capacity);
    case PlacementStrategyKind::kSegregatedFit:
      return std::make_unique<SegregatedFitAllocator>(capacity, options.segregated);
    case PlacementStrategyKind::kSlabPool:
      return std::make_unique<SlabPoolAllocator>(capacity, options.slab);
  }
  DSA_ASSERT(false, "MakeAllocator: unknown strategy kind");
  return nullptr;
}

}  // namespace dsa
