// The free-storage bookkeeping shared by every variable-unit allocator: an
// address-ordered set of holes with automatic coalescing of adjacent frees.
//
// Coalescing is the invariant that makes "numerous little sets of contiguous
// locations" (the paper's definition of fragmentation) a meaningful metric:
// two adjacent holes are always recorded as one.
//
// Alongside the address-ordered map (the coalescing source of truth) the
// list maintains a size-ordered secondary index, so best-fit and worst-fit
// placement resolve in O(log holes) instead of scanning every hole.  The
// index orders by (size, address); ties on size therefore resolve to the
// lowest address, exactly as an address-ordered scan would.

#ifndef SRC_ALLOC_FREE_LIST_H_
#define SRC_ALLOC_FREE_LIST_H_

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/alloc/block.h"
#include "src/core/snapshot.h"
#include "src/core/types.h"

namespace dsa {

class FreeList {
 public:
  using HoleMap = std::map<std::uint64_t, WordCount>;  // start address -> size
  using const_iterator = HoleMap::const_iterator;

  FreeList() = default;

  // Initialises with one hole covering [0, capacity).
  explicit FreeList(WordCount capacity);

  // Inserts a hole, coalescing with any adjacent holes.  The range must not
  // overlap an existing hole (that would mean a double free).
  void Insert(Block hole);

  // Removes [addr, addr+size), which must lie entirely inside one hole.
  // The hole is split in up to two remainders.
  void TakeRange(PhysicalAddress addr, WordCount size);

  // True if the given range is entirely free.
  bool RangeIsFree(PhysicalAddress addr, WordCount size) const;

  const_iterator begin() const { return holes_.begin(); }
  const_iterator end() const { return holes_.end(); }

  std::size_t hole_count() const { return holes_.size(); }
  WordCount total_free() const { return total_free_; }
  WordCount largest_hole() const;
  bool empty() const { return holes_.empty(); }

  // O(log holes) placement queries over the size index.
  //
  // Best fit: start of the smallest hole of at least `size` words (lowest
  // address among equally sized holes), or nullopt when nothing fits.
  std::optional<PhysicalAddress> SmallestHoleAtLeast(WordCount size) const;
  // Worst fit: start of the largest hole, provided it holds at least `size`
  // words (lowest address among equally sized holes), or nullopt.
  std::optional<PhysicalAddress> LargestHoleAtLeast(WordCount size) const;

  std::vector<WordCount> HoleSizes() const;
  std::vector<Block> Holes() const;

  void Clear() {
    holes_.clear();
    by_size_.clear();
    total_free_ = 0;
  }

  // Checkpoint serialization: the address-ordered hole map is the source of
  // truth; the size index and the free-word total are rebuilt on load.
  // LoadState validates the coalescing invariant (holes strictly ordered,
  // never adjacent or overlapping) and reports violations via the reader.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  HoleMap holes_;
  // (size, start address) for every hole in holes_.
  std::set<std::pair<WordCount, std::uint64_t>> by_size_;
  WordCount total_free_{0};
};

}  // namespace dsa

#endif  // SRC_ALLOC_FREE_LIST_H_
