// Fixed-size chunk pool: the uniform-unit end of the paper's
// uniform-vs-variable spectrum, packaged behind the Allocator interface so
// the bench grid can price its trade directly.  Every request is granted
// one chunk; allocation and free are a stack push/pop — no search, no
// coalescing, no external fragmentation — and the entire cost of that
// simplicity is internal waste (chunk_words - requested) plus a hard
// ceiling on request size.

#ifndef SRC_ALLOC_SLAB_POOL_H_
#define SRC_ALLOC_SLAB_POOL_H_

#include <string>
#include <vector>

#include "src/alloc/allocator.h"

namespace dsa {

struct SlabPoolConfig {
  WordCount chunk_words{64};
};

class SlabPoolAllocator : public Allocator {
 public:
  // `capacity` is truncated to a whole number of chunks.
  explicit SlabPoolAllocator(WordCount capacity, SlabPoolConfig config = {});

  std::optional<Block> Allocate(WordCount size) override;
  void Free(PhysicalAddress addr) override;

  std::string name() const override {
    return "slab-pool/" + std::to_string(config_.chunk_words);
  }
  WordCount capacity() const override { return capacity_; }
  WordCount live_words() const override { return live_words_; }
  WordCount reserved_words() const override { return reserved_words_; }
  // Maximal runs of contiguous free chunks (holes never fragment below the
  // chunk size, the design's whole point).
  std::vector<WordCount> HoleSizes() const override;
  const AllocatorStats& stats() const override { return stats_; }

  WordCount chunk_words() const { return config_.chunk_words; }
  std::size_t free_chunks() const { return free_stack_.size(); }

 private:
  WordCount capacity_;
  SlabPoolConfig config_;
  // requested words per chunk index; 0 = free.
  std::vector<WordCount> chunk_requested_;
  // LIFO free stack of chunk indices (top = most recently freed, so reuse
  // is hottest-first, like a real slab's per-CPU magazine).
  std::vector<std::uint64_t> free_stack_;
  WordCount live_words_{0};
  WordCount reserved_words_{0};
  AllocatorStats stats_;
};

}  // namespace dsa

#endif  // SRC_ALLOC_SLAB_POOL_H_
