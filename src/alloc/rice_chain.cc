#include "src/alloc/rice_chain.h"

#include <algorithm>

#include "src/alloc/cost.h"
#include "src/core/assert.h"

namespace dsa {

RiceChainAllocator::RiceChainAllocator(WordCount capacity) : capacity_(capacity) {
  DSA_ASSERT(capacity_ > 0, "allocator needs nonzero capacity");
  chain_.push_back(Block{PhysicalAddress{0}, capacity_});
}

std::optional<Block> RiceChainAllocator::TryAllocate(WordCount size) {
  for (auto it = chain_.begin(); it != chain_.end(); ++it) {
    ++chain_blocks_examined_;
    if (it->size < size) {
      continue;
    }
    const PhysicalAddress addr = it->addr;
    if (it->size == size) {
      chain_.erase(it);
    } else {
      // "If any unused space is left over it replaces the original inactive
      // block in the chain."
      it->addr = PhysicalAddress{it->addr.value + size};
      it->size -= size;
    }
    live_.emplace(addr.value, size);
    live_words_ += size;
    stats_.words_allocated += size;
    return Block{addr, size};
  }
  return std::nullopt;
}

bool RiceChainAllocator::CombineAdjacent() {
  if (chain_.size() < 2) {
    return false;
  }
  stats_.alloc_cycles += chain_.size() * alloc_cost::kProbe;  // walk the chain
  std::vector<Block> blocks(chain_.begin(), chain_.end());
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.addr.value < b.addr.value; });
  std::vector<Block> merged;
  merged.reserve(blocks.size());
  for (const Block& b : blocks) {
    if (!merged.empty() && merged.back().end() == b.addr.value) {
      merged.back().size += b.size;
    } else {
      merged.push_back(b);
    }
  }
  if (merged.size() == blocks.size()) {
    return false;
  }
  ++combines_;
  stats_.alloc_cycles += (blocks.size() - merged.size()) * alloc_cost::kMerge;
  chain_.assign(merged.begin(), merged.end());
  return true;
}

std::optional<Block> RiceChainAllocator::Allocate(WordCount size) {
  DSA_ASSERT(size > 0, "cannot allocate zero words");
  ++stats_.allocations;
  stats_.words_requested += size;
  const std::uint64_t examined_before = chain_blocks_examined_;

  std::optional<Block> block = TryAllocate(size);
  if (!block && CombineAdjacent()) {
    block = TryAllocate(size);
  }
  // "If this fails a replacement algorithm ... is applied iteratively until
  // a block of sufficient size is released."
  if (!block && replacement_hook_) {
    while (true) {
      ++replacement_invocations_;
      if (!replacement_hook_(this)) {
        break;
      }
      CombineAdjacent();
      if ((block = TryAllocate(size))) {
        break;
      }
    }
  }
  stats_.alloc_cycles +=
      (chain_blocks_examined_ - examined_before) * alloc_cost::kProbe +
      (block ? alloc_cost::kCarve : 0);
  if (!block) {
    ++stats_.failures;
  }
  return block;
}

void RiceChainAllocator::Free(PhysicalAddress addr) {
  auto it = live_.find(addr.value);
  DSA_ASSERT(it != live_.end(), "free of unknown block");
  const WordCount size = it->second;
  live_.erase(it);
  live_words_ -= size;
  ++stats_.frees;
  stats_.free_cycles += alloc_cost::kProbe;  // thread at the chain head
  // The newly inactive block is threaded at the head of the chain (its first
  // word holding the size and next-pointer in the real machine).
  chain_.push_front(Block{addr, size});
}

std::vector<WordCount> RiceChainAllocator::HoleSizes() const {
  // Measure *contiguous* free extents, not raw chain entries: the chain may
  // hold adjacent uncombined blocks which are one hole physically.
  std::vector<Block> blocks(chain_.begin(), chain_.end());
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.addr.value < b.addr.value; });
  std::vector<WordCount> merged;
  std::uint64_t run_end = 0;
  for (const Block& b : blocks) {
    if (!merged.empty() && run_end == b.addr.value) {
      merged.back() += b.size;
    } else {
      merged.push_back(b.size);
    }
    run_end = b.end();
  }
  return merged;
}

std::vector<Block> RiceChainAllocator::LiveBlocks() const {
  std::vector<Block> blocks;
  blocks.reserve(live_.size());
  for (const auto& [start, size] : live_) {
    blocks.push_back(Block{PhysicalAddress{start}, size});
  }
  return blocks;
}

}  // namespace dsa
