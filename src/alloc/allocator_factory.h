// One constructor over every allocator design, keyed by the configuration
// enum — benches and tests sweep PlacementStrategyKind values through this
// instead of hand-wiring each concrete class.
//
// Policy kinds (first/next/best/worst/two-ended) build a VariableAllocator
// around the matching PlacementPolicy; whole-allocator kinds (buddy,
// rice-chain, segregated-fit, slab-pool) build their own class.

#ifndef SRC_ALLOC_ALLOCATOR_FACTORY_H_
#define SRC_ALLOC_ALLOCATOR_FACTORY_H_

#include <memory>

#include "src/alloc/allocator.h"
#include "src/alloc/segregated_fit.h"
#include "src/alloc/slab_pool.h"
#include "src/core/strategy.h"

namespace dsa {

struct AllocatorBuildOptions {
  // kTwoEnded: requests of at least this many words are "large".
  WordCount large_threshold{256};
  // kBuddy: smallest granted order (2^min_order words).
  int buddy_min_order{0};
  SegregatedFitConfig segregated{};
  SlabPoolConfig slab{};
};

std::unique_ptr<Allocator> MakeAllocator(PlacementStrategyKind kind, WordCount capacity,
                                         const AllocatorBuildOptions& options = {});

}  // namespace dsa

#endif  // SRC_ALLOC_ALLOCATOR_FACTORY_H_
